GO ?= go

.PHONY: all build vet lint test race check bench benchall repro examples clean

all: build vet test

# check is the pre-merge gate: vet + the generated-docs lint, build, the
# full test suite under the race detector — the parallel analytics engine
# (internal/par and every kernel on it) and the concurrent HTTP serving
# layer rely on -race to enforce their data-race guarantees on every change
# — and one short-mode pass over the benchmarks (-benchtime 1x) so
# benchmark code cannot bit-rot.
check: lint
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# lint runs go vet plus the generated-documentation consistency tests: the
# CLI help, the `schema -methods` table and the README/EXPERIMENTS method
# sections must all match the sdc registry (testdata/methods.golden pins
# the rendered table), the -protect table — including the dp flags
# -epsilon/-delta/-budget/-principal — must match the sdcquery protection
# list (testdata/protections.golden), and the serve command's flag surface
# — including the sustained-load knobs -querylogcap/-cachecap/-ratelimit/
# -burst — must match testdata/serveflags.golden. Regenerate the goldens
# with `go test ./cmd/privacy3d -update`.
lint:
	$(GO) vet ./...
	$(GO) test ./cmd/privacy3d -run 'TestMethodTableGolden|TestProtectionTableGolden|TestProtectionTableFlagsExist|TestServeFlagsGolden|TestHelpListsEveryMethod|TestProtectionHelpMatchesParser'

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the perf gate of the parallel engines: benchlinkage times the
# linkage/MDAV hot paths on a 50k-row synthetic workload, benchpir times
# the word-parallel PIR answer kernels (IT-PIR on a 64 MiB database, CPIR,
# end-to-end RangeStats) across worker counts, benchserve drives a
# Zipf query workload against the statistical server across client counts,
# recording sustained QPS and p50/p99 latency, and benchstore compares the
# columnar segment store's indexed path against the compiled row scan at
# 100k/1M rows (cache disabled, so every query is a miss), requiring ≥ 5×
# on selective predicates at 1M plus a pinned-snapshot stability check
# under concurrent ingest. All four hard-fail unless every parallel/cached/
# indexed/batched result is byte-identical to the sequential/uncached/scan/
# per-query reference, and record their trajectories in BENCH_linkage.json /
# BENCH_pir.json / BENCH_serve.json / BENCH_store.json. On multi-core
# machines benchpir and benchstore additionally require real worker scaling
# (-minscaling 2: ≥ 2× at max workers vs workers=1); on a single CPU that
# gate degrades to a warning recorded in the JSON.
bench:
	$(GO) run ./cmd/benchlinkage -rows 50000 -workers 1,2,4,8 -out BENCH_linkage.json
	$(GO) run ./cmd/benchpir -blocks 65536 -blocksize 1024 -workers 1,2,4,8 -minscaling 2 -out BENCH_pir.json
	$(GO) run ./cmd/benchserve -rows 20000 -queries 512 -clients 1,2,8 -duration 1s -out BENCH_serve.json
	$(GO) run ./cmd/benchstore -rows 100000,1000000 -workers 1,2,8 -minscaling 2 -out BENCH_store.json

# benchall runs the full go-test benchmark battery (the paper experiments).
benchall:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and worked example of the paper.
repro:
	$(GO) run ./cmd/tablegen -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clinicaltrial
	$(GO) run ./examples/searchengine
	$(GO) run ./examples/collaborative
	$(GO) run ./examples/hippocratic
	$(GO) run ./examples/rulehiding

clean:
	$(GO) clean ./...

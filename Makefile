GO ?= go

.PHONY: all build vet test race check bench repro examples clean

all: build vet test

# check is the pre-merge gate: vet, build, and the full test suite under the
# race detector — the concurrent HTTP serving layer (internal/obs,
# sdcquery/pir front ends) relies on -race to enforce its data-race
# guarantees on every change.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and worked example of the paper.
repro:
	$(GO) run ./cmd/tablegen -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clinicaltrial
	$(GO) run ./examples/searchengine
	$(GO) run ./examples/collaborative
	$(GO) run ./examples/hippocratic
	$(GO) run ./examples/rulehiding

clean:
	$(GO) clean ./...

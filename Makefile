GO ?= go

.PHONY: all build vet test race bench repro examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and worked example of the paper.
repro:
	$(GO) run ./cmd/tablegen -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clinicaltrial
	$(GO) run ./examples/searchengine
	$(GO) run ./examples/collaborative
	$(GO) run ./examples/hippocratic
	$(GO) run ./examples/rulehiding

clean:
	$(GO) clean ./...

package privacy3d

import (
	"testing"
	"time"
)

// The sweep test exercises every facade wrapper end to end on a small
// workload, pinning the public API surface.

func TestFacadeMaskingSweep(t *testing.T) {
	d := SyntheticTrial(TrialConfig{N: 120, Seed: 2})
	qi := d.QuasiIdentifiers()
	rng := NewRand(3)

	if _, _, err := MicroaggregateVariable(d, MicroaggOptions(3), 0.2); err != nil {
		t.Errorf("MicroaggregateVariable: %v", err)
	}
	if _, err := Condense(d, qi, 2, rng); err != nil {
		t.Errorf("Condense: %v", err)
	}
	if _, err := AddCorrelatedNoise(d, qi, 0.3, rng); err != nil {
		t.Errorf("AddCorrelatedNoise: %v", err)
	}
	if _, err := RankSwap(d, qi, 5, rng); err != nil {
		t.Errorf("RankSwap: %v", err)
	}
	if _, _, err := MondrianMask(d, qi, 4); err != nil {
		t.Errorf("MondrianMask: %v", err)
	}
	if _, _, err := TopBottomCode(d, qi[0], 0.05, 0.95); err != nil {
		t.Errorf("TopBottomCode: %v", err)
	}
	if _, err := RoundTo(d, qi, 5); err != nil {
		t.Errorf("RoundTo: %v", err)
	}
	if _, _, err := EnforcePSensitive(d, 2, 2); err != nil {
		t.Errorf("EnforcePSensitive: %v", err)
	}
	noisy, err := AddNoise(d, qi, 0.5, NewRand(7))
	if err != nil {
		t.Fatalf("AddNoise: %v", err)
	}
	levels := map[string]float64{}
	for _, j := range qi {
		levels[d.Attr(j).Name] = 5
	}
	if _, err := Denoise(noisy, qi, levels); err != nil {
		t.Errorf("Denoise: %v", err)
	}
	if _, err := MeasureRegressionUtility(d, noisy, qi, d.Index("blood_pressure")); err != nil {
		t.Errorf("MeasureRegressionUtility: %v", err)
	}
}

func TestFacadeGeneralization(t *testing.T) {
	d := Dataset2()
	hh, err := NewNumericHierarchy("height", 100, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewNumericHierarchy("weight", 0, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	hier := map[int]*Hierarchy{d.Index("height"): hh, d.Index("weight"): hw}
	out, res, err := AnonymizeByGeneralization(d, d.QuasiIdentifiers(), hier, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if KAnonymity(out, out.QuasiIdentifiers()) < 3 {
		t.Error("generalization did not reach k=3")
	}
	if res.Height == 0 {
		t.Error("expected non-trivial generalization height")
	}
}

func TestFacadeCryptoSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("key generation in short mode")
	}
	key, err := GeneratePaillier(512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &key.PaillierPublicKey
	c, err := pk.Encrypt(pk.EncodeSigned(41))
	if err != nil {
		t.Fatal(err)
	}
	one, err := pk.Encrypt(pk.EncodeSigned(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := key.Decrypt(pk.AddCipher(c, one))
	if err != nil {
		t.Fatal(err)
	}
	if pk.DecodeSigned(m) != 42 {
		t.Errorf("homomorphic sum = %d", pk.DecodeSigned(m))
	}
}

func TestFacadeSecureID3AndVerticalNB(t *testing.T) {
	attrs := []Attribute{
		{Name: "a", Kind: Nominal},
		{Name: "label", Kind: Nominal},
	}
	rng := NewRand(5)
	parts := []*Dataset{NewDataset(attrs...), NewDataset(attrs...)}
	for i := 0; i < 200; i++ {
		a, label := "x", "n"
		if rng.Float64() < 0.5 {
			a = "y"
		}
		if a == "y" && rng.Float64() < 0.8 {
			label = "p"
		}
		parts[i%2].MustAppend(a, label)
	}
	tree, nw, err := SecureID3(parts, "label", 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || len(nw.Transcript()) == 0 {
		t.Error("secure ID3 returned no tree or transcript")
	}
	// Vertical NB across the same parties (each sees its own column plus
	// the label — a degenerate but valid vertical split).
	vparts, err := TrainVerticalNB([]*Dataset{parts[0], parts[0]}, "label")
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := NewSMCNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ClassifyVertical(nw2, vparts, []string{"n", "p"}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != "n" && got != "p" {
		t.Errorf("classified %q", got)
	}
}

func TestFacadeKeywordAndStatPIR(t *testing.T) {
	db, err := NewKeywordDB(map[string][]byte{"k1": []byte("v1"), "k2": []byte("v2")}, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Lookup("k2", 3)
	if err != nil || !ok || string(v) != "v2" {
		t.Errorf("keyword lookup = %q ok=%v err=%v", v, ok, err)
	}
	var xe, ye []float64
	for e := 150.0; e <= 190; e += 5 {
		xe = append(xe, e)
	}
	for e := 60.0; e <= 115; e += 5 {
		ye = append(ye, e)
	}
	sdb, err := BuildStatDB(Dataset2(), "height", "weight", "blood_pressure", xe, ye, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sdb.RangeStats(150, 165, 105, 115, 5)
	if err != nil || res.Count != 1 {
		t.Errorf("stat PIR count = %v err=%v", res.Count, err)
	}
}

func TestFacadeScenariosAndUtility(t *testing.T) {
	for name, f := range map[string]func() ([]QuadrantResult, error){
		"S2": Section2Scenarios, "S3": Section3Scenarios, "S4": Section4Scenarios,
	} {
		rs, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rs {
			if !r.Holds {
				t.Errorf("%s/%s does not hold", name, r.ID)
			}
		}
	}
	rows, err := UtilityVsDimensions(3, 7)
	if err != nil || len(rows) != 4 {
		t.Errorf("UtilityVsDimensions: %d rows, err %v", len(rows), err)
	}
}

func TestFacadeHippocratic(t *testing.T) {
	store, err := NewHippocraticStore(Dataset2(), []HippocraticRule{
		{Attribute: "height", Purpose: "research", Retention: 24 * time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	store.ConsentAll("research")
	out, err := store.Access("analyst", "research", []string{"height"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 9 {
		t.Errorf("hippocratic access rows = %d", out.Rows())
	}
	if len(store.Audit()) != 1 {
		t.Error("access not audited")
	}
}

func TestFacadeTreeTraining(t *testing.T) {
	attrs := []Attribute{
		{Name: "x", Kind: Numeric},
		{Name: "label", Kind: Nominal},
	}
	d := NewDataset(attrs...)
	rng := NewRand(11)
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 100
		label := "lo"
		if x > 50 {
			label = "hi"
		}
		d.MustAppend(x, label)
	}
	tree, err := TrainTree(d, "label", TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc, _ := tree.Accuracy(d, "label"); acc < 0.98 {
		t.Errorf("tree accuracy = %v", acc)
	}
	noisy := d.Clone()
	for i := 0; i < noisy.Rows(); i++ {
		noisy.SetFloat(i, 0, noisy.Float(i, 0)+20*rng.NormFloat64())
	}
	if _, err := TrainTreeOnReconstructed(noisy, "label", map[string]float64{"x": 20}, 20, TreeOptions{}); err != nil {
		t.Errorf("TrainTreeOnReconstructed: %v", err)
	}
}

func TestFacadeNewMaskings(t *testing.T) {
	d := SyntheticTrial(TrialConfig{N: 150, Seed: 6})
	qi := d.QuasiIdentifiers()
	if _, _, err := MicroaggregateProjection(d, MicroaggOptions(3)); err != nil {
		t.Errorf("MicroaggregateProjection: %v", err)
	}
	if _, err := AddMultiplicativeNoise(d, qi, 0.05, NewRand(9)); err != nil {
		t.Errorf("AddMultiplicativeNoise: %v", err)
	}
}

package privacy3d_test

import (
	"fmt"

	"privacy3d"
)

// Example reproduces the paper's headline storyline in a few lines: check
// the Table 1 fixtures, mask for k-anonymity, and measure re-identification.
func Example() {
	d1 := privacy3d.Dataset1()
	d2 := privacy3d.Dataset2()
	fmt.Println("Dataset 1 k-anonymity:", privacy3d.KAnonymity(d1, d1.QuasiIdentifiers()))
	fmt.Println("Dataset 2 k-anonymity:", privacy3d.KAnonymity(d2, d2.QuasiIdentifiers()))

	masked, _, err := privacy3d.Microaggregate(d2, privacy3d.MicroaggOptions(3))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("after microaggregation:", privacy3d.KAnonymity(masked, masked.QuasiIdentifiers()))
	// Output:
	// Dataset 1 k-anonymity: 3
	// Dataset 2 k-anonymity: 1
	// after microaggregation: 3
}

// ExampleParseQuery parses the exact queries of the paper's Section 3
// attack and evaluates them against Dataset 2.
func ExampleParseQuery() {
	d := privacy3d.Dataset2()
	count, _ := privacy3d.ParseQuery("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")
	avg, _ := privacy3d.ParseQuery("SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105")
	c, _ := count.Evaluate(d)
	a, _ := avg.Evaluate(d)
	fmt.Printf("COUNT = %.0f, AVG = %.0f mmHg\n", c, a)
	// Output:
	// COUNT = 1, AVG = 146 mmHg
}

// ExampleSecureSum adds three private values without revealing them.
func ExampleSecureSum() {
	nw, err := privacy3d.NewSMCNetwork(3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	inputs := []privacy3d.FieldElem{
		privacy3d.EncodeFieldInt(17),
		privacy3d.EncodeFieldInt(5),
		privacy3d.EncodeFieldInt(20),
	}
	total, err := privacy3d.SecureSum(nw, inputs, []uint64{1, 2, 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("joint total:", privacy3d.DecodeFieldInt(total))
	// Output:
	// joint total: 42
}

// ExampleNewTracker runs the Schlörer tracker against a size-restricted
// statistical database, reproducing the classic inference-control failure.
func ExampleNewTracker() {
	srv, err := privacy3d.NewQueryServer(privacy3d.Dataset2(), privacy3d.ServerConfig{
		Protection: privacy3d.SizeRestriction, MinSetSize: 3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tr := privacy3d.NewTracker(srv,
		privacy3d.Predicate{{Col: "height", Op: privacy3d.Lt, V: 176}},
		privacy3d.Cond{Col: "weight", Op: privacy3d.Gt, V: 105})
	res, err := tr.Infer("blood_pressure")
	if err != nil {
		fmt.Println("blocked:", err)
		return
	}
	fmt.Printf("tracked: %.0f record(s), blood pressure %.0f\n", res.Count, res.Sum)
	// Output:
	// tracked: 1 record(s), blood pressure 146
}

// ExampleNewITClient retrieves a block from replicated PIR servers without
// revealing which one.
func ExampleNewITClient() {
	blocks := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charl")}
	s1, _ := privacy3d.NewITServer(blocks)
	s2, _ := privacy3d.NewITServer(blocks)
	client, err := privacy3d.NewITClient([]*privacy3d.ITServer{s1, s2}, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	block, _ := client.Retrieve(1)
	fmt.Printf("%s\n", block)
	// Output:
	// bravo
}

// ExamplePaperTable2 prints a cell of the paper's qualitative scoring.
func ExamplePaperTable2() {
	paper := privacy3d.PaperTable2()
	g := paper[privacy3d.ClassCryptoPPDM]
	fmt.Println(g.Respondent, g.Owner, g.User)
	// Output:
	// high high none
}

package privacy3d

// The benchmark harness regenerates every table and worked example of the
// paper (see DESIGN.md's per-experiment index). Each benchmark reports, via
// b.ReportMetric, the headline quantity of its experiment so `go test
// -bench` output doubles as the measured side of EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/core"
	"privacy3d/internal/dataset"
	"privacy3d/internal/microagg"
	"privacy3d/internal/noise"
	"privacy3d/internal/pir"
	"privacy3d/internal/risk"
	"privacy3d/internal/sdcquery"
	"privacy3d/internal/smc"
)

// BenchmarkTable1Anonymity — experiment E-T1a/E-T1b: verifying the
// k-anonymity properties of the two Table 1 fixtures.
func BenchmarkTable1Anonymity(b *testing.B) {
	d1, d2 := dataset.Dataset1(), dataset.Dataset2()
	var k1, k2 int
	for i := 0; i < b.N; i++ {
		k1 = anonymity.K(d1, d1.QuasiIdentifiers())
		k2 = anonymity.K(d2, d2.QuasiIdentifiers())
	}
	b.ReportMetric(float64(k1), "k(dataset1)")
	b.ReportMetric(float64(k2), "k(dataset2)")
}

// BenchmarkSection2Quadrants — experiment E-S2: the respondent-vs-owner
// independence scenarios.
func BenchmarkSection2Quadrants(b *testing.B) {
	holds := 0
	for i := 0; i < b.N; i++ {
		rs, err := core.Section2Scenarios()
		if err != nil {
			b.Fatal(err)
		}
		holds = 0
		for _, r := range rs {
			if r.Holds {
				holds++
			}
		}
	}
	b.ReportMetric(float64(holds), "quadrants-held")
}

// BenchmarkSection3Quadrants — experiment E-S3.
func BenchmarkSection3Quadrants(b *testing.B) {
	holds := 0
	for i := 0; i < b.N; i++ {
		rs, err := core.Section3Scenarios()
		if err != nil {
			b.Fatal(err)
		}
		holds = 0
		for _, r := range rs {
			if r.Holds {
				holds++
			}
		}
	}
	b.ReportMetric(float64(holds), "quadrants-held")
}

// BenchmarkSection4Quadrants — experiment E-S4.
func BenchmarkSection4Quadrants(b *testing.B) {
	holds := 0
	for i := 0; i < b.N; i++ {
		rs, err := core.Section4Scenarios()
		if err != nil {
			b.Fatal(err)
		}
		holds = 0
		for _, r := range rs {
			if r.Holds {
				holds++
			}
		}
	}
	b.ReportMetric(float64(holds), "quadrants-held")
}

// BenchmarkPIRStatsAttack — experiment E-S3c: the paper's PIR COUNT/AVG
// attack on Dataset 2.
func BenchmarkPIRStatsAttack(b *testing.B) {
	d := dataset.Dataset2()
	var xe, ye []float64
	for e := 150.0; e <= 190; e += 5 {
		xe = append(xe, e)
	}
	for e := 60.0; e <= 115; e += 5 {
		ye = append(ye, e)
	}
	db, err := pir.BuildStatDB(d, "height", "weight", "blood_pressure", xe, ye, 2)
	if err != nil {
		b.Fatal(err)
	}
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := db.RangeStats(150, 165, 105, 115, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		avg, err = res.Avg()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(avg, "disclosed-bp-mmHg")
}

// BenchmarkTable2Scoring — experiment E-T2: the empirical regeneration of
// the paper's Table 2 plus the DP extension row. The reported metric is
// the number of rows whose measured grades match the reference table
// (9 = full reproduction: the paper's 8 plus DP).
func BenchmarkTable2Scoring(b *testing.B) {
	matched := 0
	for i := 0; i < b.N; i++ {
		ev, err := core.NewEvaluator(core.DefaultEvalConfig())
		if err != nil {
			b.Fatal(err)
		}
		ms, err := ev.Table2()
		if err != nil {
			b.Fatal(err)
		}
		ref := core.ReferenceTable2()
		matched = 0
		for _, m := range ms {
			if m.Grades == ref[m.Class] {
				matched++
			}
		}
	}
	b.ReportMetric(float64(matched), "rows-matching-reference")
}

// BenchmarkUtilityVsDimensions — experiment E-X1 (Section 6): information
// loss as privacy dimensions are added.
func BenchmarkUtilityVsDimensions(b *testing.B) {
	var last []core.UtilityRow
	for i := 0; i < b.N; i++ {
		rows, err := core.UtilityVsDimensions(3, 41)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	b.ReportMetric(last[1].InfoLoss, "loss-1dim")
	b.ReportMetric(last[3].InfoLoss, "loss-3dim")
}

// BenchmarkMDAVSweep — experiment E-X2: the risk/utility trade-off of
// microaggregation across k.
func BenchmarkMDAVSweep(b *testing.B) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 600, Seed: 7})
	for _, k := range []int{2, 3, 5, 10, 25} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var il, link float64
			for i := 0; i < b.N; i++ {
				masked, res, err := microagg.Mask(d, microagg.NewOptions(k))
				if err != nil {
					b.Fatal(err)
				}
				rep, err := risk.DistanceLinkage(d, masked, d.QuasiIdentifiers())
				if err != nil {
					b.Fatal(err)
				}
				il, link = res.IL(), rep.Rate
			}
			b.ReportMetric(il, "info-loss")
			b.ReportMetric(link, "linkage-rate")
		})
	}
}

// BenchmarkNoiseReconstruction — substrate of E-S2c: AS2000 EM
// reconstruction fidelity.
func BenchmarkNoiseReconstruction(b *testing.B) {
	rng := dataset.NewRand(13)
	n := 2000
	x := make([]float64, n)
	w := make([]float64, n)
	for i := range x {
		x[i] = dataset.Normal(rng, 50, 10)
		w[i] = x[i] + 15*rng.NormFloat64()
	}
	rec := noise.NewReconstructor(30, 15)
	var tv float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rec.Reconstruct(w)
		if err != nil {
			b.Fatal(err)
		}
		tv = res.TVDistanceTo(x)
	}
	b.ReportMetric(tv, "tv-to-truth")
}

// BenchmarkNoiseDisclosureSweep — experiment E-X3: the [11]
// rare-combination disclosure effect across dimensionality.
func BenchmarkNoiseDisclosureSweep(b *testing.B) {
	for _, dims := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("dims=%d", dims), func(b *testing.B) {
			d := dataset.SyntheticCensus(dataset.CensusConfig{N: 800, Dims: dims, Seed: 17})
			cols := make([]int, dims)
			for j := range cols {
				cols[j] = j
			}
			var rate float64
			for i := 0; i < b.N; i++ {
				m, err := noise.AddUncorrelated(d, cols, 0.05, dataset.NewRand(23))
				if err != nil {
					b.Fatal(err)
				}
				rep, err := noise.SparseDisclosure(d.NumericMatrix(cols), m.NumericMatrix(cols), 4, 1)
				if err != nil {
					b.Fatal(err)
				}
				rate = rep.DisclosureRate
			}
			b.ReportMetric(rate, "disclosure-rate")
		})
	}
}

// BenchmarkPIRSchemes — experiment E-X4: retrieval cost of the PIR schemes
// versus trivial download.
func BenchmarkPIRSchemes(b *testing.B) {
	blocks := make([][]byte, 256)
	for i := range blocks {
		blocks[i] = []byte{byte(i), byte(i >> 8), 0, 0}
	}
	b.Run("itpir-2server", func(b *testing.B) {
		s0, _ := pir.NewITServer(blocks)
		s1, _ := pir.NewITServer(blocks)
		client, err := pir.NewITClient([]*pir.ITServer{s0, s1}, 3)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := client.Retrieve(i % len(blocks)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(client.CommunicationBits()), "comm-bits")
	})
	b.Run("itpir-4server", func(b *testing.B) {
		servers := make([]*pir.ITServer, 4)
		for s := range servers {
			servers[s], _ = pir.NewITServer(blocks)
		}
		client, err := pir.NewITClient(servers, 5)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := client.Retrieve(i % len(blocks)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(client.CommunicationBits()), "comm-bits")
	})
	b.Run("cpir-qr", func(b *testing.B) {
		bits := make([]bool, 1024)
		for i := range bits {
			bits[i] = i%3 == 0
		}
		srv, err := pir.NewCPIRServer(bits)
		if err != nil {
			b.Fatal(err)
		}
		client, err := pir.NewCPIRClient(512)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, cols := srv.Shape()
			if _, err := client.RetrieveBit(srv, i%rows, i%cols); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trivial-download", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := 0
			for _, blk := range blocks {
				total += len(blk)
			}
			if total == 0 {
				b.Fatal("empty")
			}
		}
		b.ReportMetric(float64(len(blocks)*len(blocks[0])*8), "comm-bits")
	})
}

// BenchmarkTrackerAttack and BenchmarkAuditVsTracker — experiment E-X5:
// tracker success under size restriction vs auditing.
func BenchmarkTrackerAttack(b *testing.B) {
	var inferred float64
	for i := 0; i < b.N; i++ {
		srv, err := sdcquery.NewServer(dataset.Dataset2(), sdcquery.Config{Protection: sdcquery.SizeRestriction, MinSetSize: 3})
		if err != nil {
			b.Fatal(err)
		}
		tr := sdcquery.NewTracker(srv,
			sdcquery.Predicate{{Col: "height", Op: sdcquery.Lt, V: 176}},
			sdcquery.Cond{Col: "weight", Op: sdcquery.Gt, V: 105})
		res, err := tr.Infer("blood_pressure")
		if err != nil {
			b.Fatal(err)
		}
		inferred = res.Sum
	}
	b.ReportMetric(inferred, "disclosed-bp-mmHg")
}

func BenchmarkAuditVsTracker(b *testing.B) {
	blocked := 0.0
	for i := 0; i < b.N; i++ {
		srv, err := sdcquery.NewServer(dataset.Dataset2(), sdcquery.Config{Protection: sdcquery.Auditing})
		if err != nil {
			b.Fatal(err)
		}
		tr := sdcquery.NewTracker(srv,
			sdcquery.Predicate{{Col: "height", Op: sdcquery.Lt, V: 176}},
			sdcquery.Cond{Col: "weight", Op: sdcquery.Gt, V: 105})
		if _, err := tr.Infer("blood_pressure"); err != nil {
			blocked = 1
		} else {
			blocked = 0
		}
	}
	b.ReportMetric(blocked, "attack-blocked")
}

// BenchmarkSecureID3 — substrate of E-S4a: the crypto-PPDM protocol.
func BenchmarkSecureID3(b *testing.B) {
	ev, err := core.NewEvaluator(core.DefaultEvalConfig())
	if err != nil {
		b.Fatal(err)
	}
	_ = ev
	attrs := []dataset.Attribute{
		{Name: "a", Kind: dataset.Nominal},
		{Name: "b", Kind: dataset.Nominal},
		{Name: "class", Kind: dataset.Nominal},
	}
	rng := dataset.NewRand(3)
	parts := []*dataset.Dataset{dataset.New(attrs...), dataset.New(attrs...)}
	for i := 0; i < 400; i++ {
		a, bb := "x", "u"
		if rng.Float64() < 0.5 {
			a = "y"
		}
		if rng.Float64() < 0.5 {
			bb = "v"
		}
		cl := "n"
		if a == "y" && rng.Float64() < 0.8 {
			cl = "p"
		}
		parts[i%2].MustAppend(a, bb, cl)
	}
	b.ResetTimer()
	var msgs int
	for i := 0; i < b.N; i++ {
		_, nw, err := smc.SecureID3(parts, "class", 4, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		msgs = len(nw.Transcript())
	}
	b.ReportMetric(float64(msgs), "protocol-msgs")
}

// BenchmarkSecureSum — the aggregation primitive of crypto PPDM.
func BenchmarkSecureSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nw, err := smc.NewNetwork(4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := smc.SecureSum(nw, []smc.Elem{1, 2, 3, 4}, []uint64{1, 2, 3, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroaggregation measures the core masking path.
func BenchmarkMicroaggregation(b *testing.B) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 2000, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := microagg.Mask(d, microagg.NewOptions(3)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelines — the paper's Section 6 research question: compare
// holistic compositions on the three dimensions and utility.
func BenchmarkPipelines(b *testing.B) {
	ev, err := core.NewEvaluator(core.DefaultEvalConfig())
	if err != nil {
		b.Fatal(err)
	}
	var rep core.PipelineReport
	for i := 0; i < b.N; i++ {
		rep, err = ev.EvaluatePipeline(core.RecommendedPipeline(3), core.Medium)
		if err != nil {
			b.Fatal(err)
		}
	}
	ok := 0.0
	if rep.SatisfiesAll {
		ok = 1
	}
	b.ReportMetric(ok, "satisfies-all-dims")
	b.ReportMetric(rep.InfoLoss, "info-loss")
}

// BenchmarkPSI — the private-set-intersection substrate.
func BenchmarkPSI(b *testing.B) {
	setA := make([]string, 50)
	setB := make([]string, 50)
	for i := range setA {
		setA[i] = fmt.Sprintf("patient-%03d", i)
		setB[i] = fmt.Sprintf("patient-%03d", i+25)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		alice, err := smc.NewPSIParty(setA)
		if err != nil {
			b.Fatal(err)
		}
		bob, err := smc.NewPSIParty(setB)
		if err != nil {
			b.Fatal(err)
		}
		n = len(smc.Intersect(alice, bob))
	}
	b.ReportMetric(float64(n), "intersection-size")
}

// BenchmarkSecureCompare — the millionaires' protocol.
func BenchmarkSecureCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := smc.SecureCompare(uint32(i%256), 100, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMDAV compares variable-size against fixed-size grouping cost.
func BenchmarkVMDAV(b *testing.B) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 1000, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := microagg.MaskVariable(d, microagg.NewOptions(3), 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbabilisticLinkage — the Fellegi–Sunter attack cost.
func BenchmarkProbabilisticLinkage(b *testing.B) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 150, Seed: 5, ExtraQI: 2})
	m, err := noise.AddUncorrelated(d, d.QuasiIdentifiers(), 0.2, dataset.NewRand(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		rep, err := risk.ProbabilisticLinkage(d, m, d.QuasiIdentifiers(), risk.ProbLinkageConfig{})
		if err != nil {
			b.Fatal(err)
		}
		rate = rep.Rate
	}
	b.ReportMetric(rate, "linkage-rate")
}

// BenchmarkParseQuery — the query-language front end.
func BenchmarkParseQuery(b *testing.B) {
	const q = "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105 AND aids = 'N'"
	for i := 0; i < b.N; i++ {
		if _, err := sdcquery.ParseQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroaggVariants — ablation E-X6: MDAV vs V-MDAV vs projected
// optimal microaggregation at equal k.
func BenchmarkMicroaggVariants(b *testing.B) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 800, Seed: 9})
	run := func(b *testing.B, mask func() (microagg.Result, error)) {
		var il float64
		for i := 0; i < b.N; i++ {
			res, err := mask()
			if err != nil {
				b.Fatal(err)
			}
			il = res.IL()
		}
		b.ReportMetric(il, "info-loss")
	}
	b.Run("mdav", func(b *testing.B) {
		run(b, func() (microagg.Result, error) {
			_, r, err := microagg.Mask(d, microagg.NewOptions(4))
			return r, err
		})
	})
	b.Run("vmdav", func(b *testing.B) {
		run(b, func() (microagg.Result, error) {
			_, r, err := microagg.MaskVariable(d, microagg.NewOptions(4), 0.2)
			return r, err
		})
	})
	b.Run("projection", func(b *testing.B) {
		run(b, func() (microagg.Result, error) {
			_, r, err := microagg.MaskProjection(d, microagg.NewOptions(4))
			return r, err
		})
	})
}

module privacy3d

go 1.23

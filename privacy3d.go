// Package privacy3d is a Go implementation of the three-dimensional
// conceptual framework for database privacy of Domingo-Ferrer (SDM/VLDB
// workshop 2007), together with every technology class the framework
// covers: statistical disclosure control (k-anonymity, microaggregation,
// generalization, noise addition, rank swapping, interactive query
// control), privacy-preserving data mining (non-cryptographic and
// cryptographic, including secure multiparty computation over secret
// shares and Paillier encryption), and private information retrieval
// (information-theoretic and computational).
//
// The package is a facade: it re-exports the stable public API of the
// internal subsystem packages so downstream users program against a single
// import path.
//
//	release, rep, err := privacy3d.Microaggregate(data, privacy3d.MicroaggOptions(3))
//	eval, _ := privacy3d.NewEvaluator(privacy3d.DefaultEvalConfig())
//	table, _ := eval.Table2()
//
// The three privacy dimensions — whose privacy a technology protects — are
// Respondent (the individuals behind the records), Owner (the holder of the
// dataset) and User (the issuer of queries). See DESIGN.md for the full
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
package privacy3d

import (
	"context"
	"math/rand/v2"
	"net/http"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/core"
	"privacy3d/internal/dataset"
	"privacy3d/internal/dp"
	"privacy3d/internal/generalize"
	"privacy3d/internal/hippocratic"
	"privacy3d/internal/microagg"
	"privacy3d/internal/mining"
	"privacy3d/internal/noise"
	"privacy3d/internal/pir"
	"privacy3d/internal/randresp"
	"privacy3d/internal/risk"
	"privacy3d/internal/rulehide"
	"privacy3d/internal/sdc"
	"privacy3d/internal/sdcquery"
	"privacy3d/internal/smc"
	"privacy3d/internal/swap"
)

// --- data model ---------------------------------------------------------

// Dataset is the shared tabular microdata model.
type Dataset = dataset.Dataset

// Attribute describes one column: name, role and kind.
type Attribute = dataset.Attribute

// Attribute roles (whose disclosure function a column has).
const (
	Identifier      = dataset.Identifier
	QuasiIdentifier = dataset.QuasiIdentifier
	Confidential    = dataset.Confidential
	NonConfidential = dataset.NonConfidential
)

// Attribute kinds (value domains).
const (
	Numeric = dataset.Numeric
	Ordinal = dataset.Ordinal
	Nominal = dataset.Nominal
)

// NewDataset creates an empty dataset with the given schema.
func NewDataset(attrs ...Attribute) *Dataset { return dataset.New(attrs...) }

// Dataset1 and Dataset2 are the paper's Table 1 toy patient datasets.
func Dataset1() *Dataset { return dataset.Dataset1() }

// Dataset2 returns the non-k-anonymous Table 1 dataset (right side).
func Dataset2() *Dataset { return dataset.Dataset2() }

// TrialConfig parameterises SyntheticTrial.
type TrialConfig = dataset.TrialConfig

// SyntheticTrial generates a clinical-trial population like Table 1's.
func SyntheticTrial(cfg TrialConfig) *Dataset { return dataset.SyntheticTrial(cfg) }

// NewRand returns the deterministic PRNG used throughout the library.
func NewRand(seed uint64) *rand.Rand { return dataset.NewRand(seed) }

// --- the framework (the paper's contribution) ---------------------------

// Dimension identifies whose privacy is considered.
type Dimension = core.Dimension

// The three dimensions.
const (
	Respondent = core.Respondent
	Owner      = core.Owner
	User       = core.User
)

// Grade is the paper's qualitative scale (none … high).
type Grade = core.Grade

// Grades of Table 2.
const (
	GradeNone       = core.None
	GradeLow        = core.Low
	GradeMedium     = core.Medium
	GradeMediumHigh = core.MediumHigh
	GradeHigh       = core.High
)

// Class is a Table 2 technology class.
type Class = core.Class

// The eight technology classes of Table 2, plus the DP extension row.
const (
	ClassSDC                    = core.SDC
	ClassUseSpecificPPDM        = core.UseSpecificPPDM
	ClassGenericPPDM            = core.GenericPPDM
	ClassCryptoPPDM             = core.CryptoPPDM
	ClassPIR                    = core.PIR
	ClassSDCPlusPIR             = core.SDCPlusPIR
	ClassUseSpecificPPDMPlusPIR = core.UseSpecificPPDMPlusPIR
	ClassGenericPPDMPlusPIR     = core.GenericPPDMPlusPIR
	ClassDP                     = core.DP
)

// Classes lists the Table 2 rows in paper order.
func Classes() []Class { return core.Classes() }

// AllClasses lists every implemented class: the paper's eight rows plus DP.
func AllClasses() []Class { return core.AllClasses() }

// PaperTable2 returns the paper's published grades.
func PaperTable2() map[Class]core.Grades { return core.PaperTable2() }

// ReferenceTable2 returns the paper's grades extended with this
// repository's reference grades for the DP row.
func ReferenceTable2() map[Class]core.Grades { return core.ReferenceTable2() }

// EvalConfig parameterises the empirical evaluator; Evaluator measures the
// three dimensions of each technology class by attack simulation.
type (
	EvalConfig  = core.EvalConfig
	Evaluator   = core.Evaluator
	Measurement = core.Measurement
	Scores      = core.Scores
	GradeSet    = core.Grades
)

// DefaultEvalConfig returns the calibration used by EXPERIMENTS.md.
func DefaultEvalConfig() EvalConfig { return core.DefaultEvalConfig() }

// NewEvaluator builds the evaluation workload.
func NewEvaluator(cfg EvalConfig) (*Evaluator, error) { return core.NewEvaluator(cfg) }

// NewEvaluatorFor runs the three-dimensional attack battery on your own
// dataset (≥ 100 records, ≥ 2 numeric quasi-identifiers, ≥ 1 numeric
// confidential attribute).
func NewEvaluatorFor(d *Dataset, cfg EvalConfig) (*Evaluator, error) {
	return core.NewEvaluatorFor(d, cfg)
}

// QuadrantResult is a measured Section 2–4 independence scenario.
type QuadrantResult = core.QuadrantResult

// Section2Scenarios, Section3Scenarios and Section4Scenarios reproduce the
// paper's worked independence arguments.
func Section2Scenarios() ([]QuadrantResult, error) { return core.Section2Scenarios() }

// Section3Scenarios reproduces the respondent-vs-user scenarios, including
// the PIR COUNT/AVG attack of Section 3.
func Section3Scenarios() ([]QuadrantResult, error) { return core.Section3Scenarios() }

// Section4Scenarios reproduces the owner-vs-user scenarios.
func Section4Scenarios() ([]QuadrantResult, error) { return core.Section4Scenarios() }

// UtilityRow and UtilityVsDimensions implement experiment E-X1 (utility
// impact of protecting more dimensions, the paper's Section 6 question).
type UtilityRow = core.UtilityRow

// UtilityVsDimensions measures information loss per protected dimension.
func UtilityVsDimensions(k int, seed uint64) ([]UtilityRow, error) {
	return core.UtilityVsDimensions(k, seed)
}

// Pipeline composes masking stages and an access mode into a candidate
// holistic solution; Stage is one masking step; PipelineReport is its
// three-dimensional evaluation.
type (
	Pipeline       = core.Pipeline
	Stage          = core.Stage
	PipelineReport = core.PipelineReport
)

// RecommendedPipeline returns the paper's Section 6 recipe
// (k-anonymization + PPDM noise + PIR).
func RecommendedPipeline(k int) Pipeline { return core.RecommendedPipeline(k) }

// --- anonymity properties ------------------------------------------------

// AnonymityReport summarises k-anonymity, p-sensitivity, l-diversity and
// t-closeness of a dataset.
type AnonymityReport = anonymity.Report

// AnalyzeAnonymity computes an AnonymityReport over the dataset's declared
// quasi-identifiers and confidential attributes.
func AnalyzeAnonymity(d *Dataset) AnonymityReport { return anonymity.Analyze(d) }

// KAnonymity returns the anonymity level of d over cols.
func KAnonymity(d *Dataset, cols []int) int { return anonymity.K(d, cols) }

// IsPSensitiveKAnonymous checks p-sensitive k-anonymity.
func IsPSensitiveKAnonymous(d *Dataset, cols, confCols []int, k, p int) bool {
	return anonymity.IsPSensitiveKAnonymous(d, cols, confCols, k, p)
}

// EnforcePSensitive upgrades a release to p-sensitive k-anonymity by
// merging violating equivalence classes (paper footnote 3).
func EnforcePSensitive(d *Dataset, k, p int) (*Dataset, int, error) {
	return anonymity.EnforcePSensitive(d, k, p)
}

// --- unified protection-method registry -----------------------------------

// SDCMethod is one registered protection method: a self-describing schema
// plus a context-aware Apply. SDCParams carries the uniform parameters and
// SDCReport the uniform outcome of any method.
type (
	SDCMethod = sdc.Method
	SDCSchema = sdc.Schema
	SDCParams = sdc.Params
	SDCReport = sdc.Report
)

// SDCMethods lists every registered method sorted by name — the eight
// technology classes of the paper are all reachable here.
func SDCMethods() []SDCMethod { return sdc.List() }

// SDCMethodNames lists the registered method names.
func SDCMethodNames() []string { return sdc.Names() }

// LookupSDCMethod resolves a registered method by name.
func LookupSDCMethod(name string) (SDCMethod, error) { return sdc.Lookup(name) }

// Protect masks d with the named registered method. Cancelling ctx stops the
// masking at its next chunk boundary; randomized methods require a non-nil
// rng.
func Protect(ctx context.Context, method string, d *Dataset, p SDCParams, rng *rand.Rand) (*Dataset, SDCReport, error) {
	return sdc.Apply(ctx, method, d, p, rng)
}

// ProtectSeed is Protect with a deterministic rng derived from seed — the
// same call always produces the same release bytes.
func ProtectSeed(ctx context.Context, method string, d *Dataset, p SDCParams, seed uint64) (*Dataset, SDCReport, error) {
	return sdc.ApplySeed(ctx, method, d, p, seed)
}

// SDCMethodTable renders the registry as a Markdown table (the generated
// "Protection methods" documentation).
func SDCMethodTable() string { return sdc.MarkdownTable() }

// --- masking methods ------------------------------------------------------

// MicroaggResult reports the groups and information loss of a
// microaggregation run.
type MicroaggResult = microagg.Result

// MicroaggOpts configures Microaggregate.
type MicroaggOpts = microagg.Options

// MicroaggOptions returns conventional defaults for group size k.
func MicroaggOptions(k int) MicroaggOpts { return microagg.NewOptions(k) }

// Microaggregate masks quasi-identifiers by MDAV microaggregation; the
// result is k-anonymous on the masked columns.
func Microaggregate(d *Dataset, opt MicroaggOpts) (*Dataset, MicroaggResult, error) {
	return microagg.Mask(d, opt)
}

// MicroaggregateVariable masks with V-MDAV variable-size groups (gamma
// controls extension eagerness; 0.2 is a common default).
func MicroaggregateVariable(d *Dataset, opt MicroaggOpts, gamma float64) (*Dataset, MicroaggResult, error) {
	return microagg.MaskVariable(d, opt, gamma)
}

// MicroaggregateProjection masks via optimal univariate partitioning along
// the first principal component (the projected variant of [10]).
func MicroaggregateProjection(d *Dataset, opt MicroaggOpts) (*Dataset, MicroaggResult, error) {
	return microagg.MaskProjection(d, opt)
}

// Condense masks columns by Aggarwal–Yu condensation (synthetic records
// preserving group moments).
func Condense(d *Dataset, cols []int, k int, rng *rand.Rand) (*Dataset, error) {
	return microagg.Condense(d, cols, k, rng)
}

// AddNoise masks numeric columns with uncorrelated Gaussian noise of the
// given relative amplitude.
func AddNoise(d *Dataset, cols []int, amplitude float64, rng *rand.Rand) (*Dataset, error) {
	return noise.AddUncorrelated(d, cols, amplitude, rng)
}

// AddCorrelatedNoise masks numeric columns preserving their correlation
// structure.
func AddCorrelatedNoise(d *Dataset, cols []int, amplitude float64, rng *rand.Rand) (*Dataset, error) {
	return noise.AddCorrelated(d, cols, amplitude, rng)
}

// AddMultiplicativeNoise masks numeric columns with lognormal
// multiplicative noise exp(σ·Z).
func AddMultiplicativeNoise(d *Dataset, cols []int, sigma float64, rng *rand.Rand) (*Dataset, error) {
	return noise.AddMultiplicative(d, cols, sigma, rng)
}

// Denoise mounts the shrinkage estimation attack against a noise-masked
// release (known per-column noise levels); risk assessments should attack
// the denoised data.
func Denoise(noisy *Dataset, cols []int, noiseSD map[string]float64) (*Dataset, error) {
	return noise.Denoise(noisy, cols, noiseSD)
}

// RankSwap masks numeric columns by rank swapping within a p% window.
func RankSwap(d *Dataset, cols []int, p float64, rng *rand.Rand) (*Dataset, error) {
	return swap.RankSwap(d, cols, p, rng)
}

// Reconstructor recovers a masked distribution from noise-added data
// (Agrawal–Srikant 2000).
type Reconstructor = noise.Reconstructor

// NewReconstructor returns an EM reconstructor for the given histogram
// resolution and known noise level.
func NewReconstructor(bins int, noiseSD float64) *Reconstructor {
	return noise.NewReconstructor(bins, noiseSD)
}

// Hierarchy is a value generalization hierarchy for recoding.
type Hierarchy = generalize.Hierarchy

// NewNumericHierarchy builds an interval hierarchy for a numeric attribute.
func NewNumericHierarchy(name string, min, base float64, intervalLevels int) (*Hierarchy, error) {
	return generalize.NewNumericHierarchy(name, min, base, intervalLevels)
}

// AnonymizeByGeneralization finds the minimum-height generalization that
// achieves k-anonymity with at most maxSuppress suppressed records.
func AnonymizeByGeneralization(d *Dataset, qiCols []int, hierarchies map[int]*Hierarchy, k, maxSuppress int) (*Dataset, generalize.LatticeResult, error) {
	return generalize.Anonymize(d, qiCols, hierarchies, k, maxSuppress)
}

// MondrianMask k-anonymizes numeric quasi-identifiers by multidimensional
// median partitioning.
func MondrianMask(d *Dataset, qiCols []int, k int) (*Dataset, [][]int, error) {
	return generalize.MondrianMask(d, qiCols, k)
}

// TopBottomCode clamps a numeric column at its lowerQ/upperQ quantiles,
// recoding the identifiable tails.
func TopBottomCode(d *Dataset, col int, lowerQ, upperQ float64) (*Dataset, int, error) {
	return generalize.TopBottomCode(d, col, lowerQ, upperQ)
}

// RoundTo publishes numeric columns rounded to multiples of base.
func RoundTo(d *Dataset, cols []int, base float64) (*Dataset, error) {
	return generalize.RoundTo(d, cols, base)
}

// --- hippocratic databases -------------------------------------------------

// Hippocratic-database types (the paper's [3,4]): purpose-aware storage
// with consent, limited disclosure/retention and an audit trail.
type (
	HippocraticStore   = hippocratic.Store
	HippocraticRule    = hippocratic.Rule
	HippocraticAudit   = hippocratic.AccessRecord
	HippocraticPurpose = hippocratic.Purpose
)

// NewHippocraticStore wraps a dataset in purpose-aware access control.
func NewHippocraticStore(d *Dataset, rules []HippocraticRule, opts ...hippocratic.Option) (*HippocraticStore, error) {
	return hippocratic.NewStore(d, rules, opts...)
}

// --- disclosure risk and information loss --------------------------------

// LinkageReport is the outcome of a distance-based record-linkage attack.
type LinkageReport = risk.LinkageReport

// DistanceLinkage runs the standard record-linkage attack.
func DistanceLinkage(original, masked *Dataset, cols []int) (LinkageReport, error) {
	return risk.DistanceLinkage(original, masked, cols)
}

// ProbLinkageConfig parameterises the Fellegi–Sunter-style attack.
type ProbLinkageConfig = risk.ProbLinkageConfig

// ProbabilisticLinkage runs EM-based probabilistic record linkage.
func ProbabilisticLinkage(original, masked *Dataset, cols []int, cfg ProbLinkageConfig) (LinkageReport, error) {
	return risk.ProbabilisticLinkage(original, masked, cols, cfg)
}

// InfoLoss aggregates the information-loss components of a masking.
type InfoLoss = risk.InfoLoss

// MeasureInfoLoss compares original and masked data.
func MeasureInfoLoss(original, masked *Dataset, cols []int) (InfoLoss, error) {
	return risk.MeasureInfoLoss(original, masked, cols)
}

// Assessment is the complete one-call risk/utility report of a masked
// release; AssessConfig tunes it.
type (
	Assessment   = risk.Assessment
	AssessConfig = risk.AssessConfig
)

// AssessRelease runs the full disclosure-risk and information-loss battery.
func AssessRelease(original, masked *Dataset, cols []int, cfg AssessConfig) (Assessment, error) {
	return risk.Assess(original, masked, cols, cfg)
}

// RegressionUtility compares the same linear regression fitted on the
// original and masked releases.
type RegressionUtility = risk.RegressionUtility

// MeasureRegressionUtility fits target ~ regressors on both datasets.
func MeasureRegressionUtility(original, masked *Dataset, regressors []int, target int) (RegressionUtility, error) {
	return risk.MeasureRegressionUtility(original, masked, regressors, target)
}

// --- interactive statistical databases ------------------------------------

// Re-exported query-language types of the interactive SDC server.
type (
	Query       = sdcquery.Query
	Predicate   = sdcquery.Predicate
	Cond        = sdcquery.Cond
	Answer      = sdcquery.Answer
	QueryServer = sdcquery.Server
	Tracker     = sdcquery.Tracker
)

// Aggregates and operators of the query language.
const (
	Count = sdcquery.Count
	Sum   = sdcquery.Sum
	Avg   = sdcquery.Avg

	Lt = sdcquery.Lt
	Le = sdcquery.Le
	Gt = sdcquery.Gt
	Ge = sdcquery.Ge
	Eq = sdcquery.Eq
	Ne = sdcquery.Ne
)

// Server protections.
const (
	NoProtection        = sdcquery.NoProtection
	SizeRestriction     = sdcquery.SizeRestriction
	Auditing            = sdcquery.Auditing
	Perturbation        = sdcquery.Perturbation
	Camouflage          = sdcquery.Camouflage
	OverlapRestriction  = sdcquery.OverlapRestriction
	RandomSample        = sdcquery.RandomSample
	DifferentialPrivacy = sdcquery.DifferentialPrivacy
)

// Differential-privacy budget errors: AskAs under DifferentialPrivacy
// returns errors wrapping these (match with errors.Is / errors.As on
// *BudgetError).
var (
	ErrBudgetExhausted = dp.ErrBudgetExhausted
	ErrNoPrincipal     = dp.ErrNoPrincipal
)

// BudgetError details a refused differential-privacy charge: who asked,
// what it would have cost and how much ε is left.
type BudgetError = dp.BudgetError

// EpsilonLedger is the lock-striped per-(principal, dataset) ε-budget
// ledger behind the DifferentialPrivacy protection, exported for callers
// that meter their own mechanisms.
type EpsilonLedger = dp.Ledger

// NewEpsilonLedger returns a ledger granting each (principal, dataset)
// pair the given total ε budget.
func NewEpsilonLedger(budget float64) (*EpsilonLedger, error) { return dp.NewLedger(budget) }

// ServerConfig configures an interactive statistical database server.
type ServerConfig = sdcquery.Config

// NewQueryServer wraps a dataset in a protected query interface.
func NewQueryServer(d *Dataset, cfg ServerConfig) (*QueryServer, error) {
	return sdcquery.NewServer(d, cfg)
}

// NewTracker prepares Schlörer's individual tracker attack for target
// predicate a ∧ b.
func NewTracker(srv *QueryServer, a Predicate, b Cond) *Tracker {
	return sdcquery.NewTracker(srv, a, b)
}

// ParseQuery parses the SQL-ish statistical query dialect of the paper's
// examples, e.g. "SELECT AVG(blood_pressure) WHERE height < 165".
func ParseQuery(input string) (Query, error) { return sdcquery.ParseQuery(input) }

// --- PPDM ------------------------------------------------------------------

// Warner is Warner's randomized response scheme.
type Warner = randresp.Warner

// NewWarner validates and returns a Warner scheme with truth probability p.
func NewWarner(p float64) (*Warner, error) { return randresp.NewWarner(p) }

// Data-mining substrate types.
type (
	TreeNode    = mining.TreeNode
	TreeOptions = mining.TreeOptions
	Transaction = mining.Transaction
	Rule        = mining.Rule
	Itemset     = mining.Itemset
)

// TrainTree builds an ID3/C4.5-style decision tree.
func TrainTree(d *Dataset, target string, opt TreeOptions) (*TreeNode, error) {
	return mining.TrainTree(d, target, opt)
}

// TrainTreeOnReconstructed trains on noise-masked data via AS2000
// distribution reconstruction.
func TrainTreeOnReconstructed(noisy *Dataset, target string, noiseSD map[string]float64, bins int, opt TreeOptions) (*TreeNode, error) {
	return mining.TrainTreeOnReconstructed(noisy, target, noiseSD, bins, opt)
}

// MineRules mines association rules with single-item consequents.
func MineRules(txs []Transaction, minSupport int, minConfidence float64) ([]Rule, error) {
	return mining.MineRules(txs, minSupport, minConfidence)
}

// SensitiveRule designates an association rule to hide before release.
type SensitiveRule = rulehide.SensitiveRule

// HideRules sanitises transactions so the sensitive rules cannot be mined.
func HideRules(txs []Transaction, sensitive []SensitiveRule, minSupport int, minConfidence float64) ([]Transaction, rulehide.Report, error) {
	return rulehide.Hide(txs, sensitive, minSupport, minConfidence)
}

// --- secure multiparty computation ----------------------------------------

// SMC substrate types.
type (
	SMCNetwork         = smc.Network
	SMCMessage         = smc.Message
	PaillierPrivateKey = smc.PaillierPrivateKey
	PaillierPublicKey  = smc.PaillierPublicKey
)

// FieldElem is an element of the GF(2^61−1) prime field the secret-sharing
// protocols compute in.
type FieldElem = smc.Elem

// EncodeFieldInt embeds a signed integer into the field; DecodeFieldInt
// inverts it for values of moderate magnitude.
func EncodeFieldInt(v int64) FieldElem { return smc.EncodeInt(v) }

// DecodeFieldInt interprets a field element as a signed integer.
func DecodeFieldInt(e FieldElem) int64 { return smc.DecodeInt(e) }

// NewSMCNetwork creates a recording network for n in-process parties.
func NewSMCNetwork(n int) (*SMCNetwork, error) { return smc.NewNetwork(n) }

// SecureSum computes the sum of private inputs via additive secret sharing.
func SecureSum(nw *SMCNetwork, inputs []FieldElem, seeds []uint64) (FieldElem, error) {
	return smc.SecureSum(nw, inputs, seeds)
}

// SecureID3 builds a decision tree over horizontally partitioned data
// without pooling it (Lindell–Pinkas-style crypto PPDM).
func SecureID3(parts []*Dataset, target string, maxDepth int, seed uint64) (*TreeNode, *SMCNetwork, error) {
	return smc.SecureID3(parts, target, maxDepth, seed)
}

// GeneratePaillier creates a Paillier key pair.
func GeneratePaillier(bits int) (*PaillierPrivateKey, error) { return smc.GeneratePaillier(bits) }

// PSIParty is one side of the Diffie–Hellman private-set-intersection
// protocol.
type PSIParty = smc.PSIParty

// NewPSIParty creates a PSI party over its private set.
func NewPSIParty(set []string) (*PSIParty, error) { return smc.NewPSIParty(set) }

// PSIIntersect runs the full PSI protocol and returns the intersection.
func PSIIntersect(alice, bob *PSIParty) []string { return smc.Intersect(alice, bob) }

// SecureCompare solves Yao's millionaires' problem over a small domain via
// oblivious transfer: it reports whether a > b without revealing either.
func SecureCompare(a, b uint32, bits int) (bool, error) { return smc.SecureCompare(a, b, bits) }

// VerticalNBParty is one side of the vertically partitioned secure naive
// Bayes protocol.
type VerticalNBParty = smc.VerticalNBParty

// TrainVerticalNB trains per-party local models over vertically partitioned
// data sharing a target column.
func TrainVerticalNB(parts []*Dataset, target string) ([]*VerticalNBParty, error) {
	return smc.TrainVerticalNB(parts, target)
}

// ClassifyVertical jointly classifies a record via secure sums of the
// parties' log-likelihood shares.
func ClassifyVertical(nw *SMCNetwork, parties []*VerticalNBParty, classes []string, row int, seed uint64) (string, error) {
	return smc.ClassifyVertical(nw, parties, classes, row, seed)
}

// --- private information retrieval ----------------------------------------

// PIR types.
type (
	ITServer  = pir.ITServer
	ITClient  = pir.ITClient
	KeywordDB = pir.KeywordDB
	StatDB    = pir.StatDB
)

// NewITServer creates one replicated information-theoretic PIR server.
func NewITServer(blocks [][]byte) (*ITServer, error) { return pir.NewITServer(blocks) }

// NewITClient connects a client to k ≥ 2 non-colluding servers.
func NewITClient(servers []*ITServer, seed uint64) (*ITClient, error) {
	return pir.NewITClient(servers, seed)
}

// NewKeywordDB builds a keyword-PIR database over the entries.
func NewKeywordDB(entries map[string][]byte, numServers int) (*KeywordDB, error) {
	return pir.NewKeywordDB(entries, numServers)
}

// BuildStatDB builds the PIR-backed statistical database of the paper's
// Section 3 scenario.
func BuildStatDB(d *Dataset, xAttr, yAttr, targetAttr string, xEdges, yEdges []float64, numServers int) (*StatDB, error) {
	return pir.BuildStatDB(d, xAttr, yAttr, targetAttr, xEdges, yEdges, numServers)
}

// PIRHTTPServer adapts an ITServer to net/http so replicas can run as
// separate processes; PIRHTTPClient is the matching client.
type (
	PIRHTTPServer = pir.HTTPServer
	PIRHTTPClient = pir.HTTPClient
)

// NewPIRHTTPServer wraps an IT-PIR server for HTTP serving.
func NewPIRHTTPServer(srv *ITServer) *PIRHTTPServer { return pir.NewHTTPServer(srv) }

// NewPIRHTTPClient connects to replicated HTTP PIR servers. A nil client
// uses http.DefaultClient.
func NewPIRHTTPClient(urls []string, client *http.Client, seed uint64) (*PIRHTTPClient, error) {
	return pir.NewHTTPClient(urls, client, seed)
}

package privacy3d

import (
	"net/http/httptest"
	"sort"
	"testing"
)

func TestFacadePSIAndCompare(t *testing.T) {
	alice, err := NewPSIParty([]string{"p1", "p2", "p3"})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewPSIParty([]string{"p2", "p4"})
	if err != nil {
		t.Fatal(err)
	}
	got := PSIIntersect(alice, bob)
	sort.Strings(got)
	if len(got) != 1 || got[0] != "p2" {
		t.Errorf("intersection = %v", got)
	}
	greater, err := SecureCompare(9, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !greater {
		t.Error("9 > 4 not detected")
	}
}

func TestFacadePipeline(t *testing.T) {
	eval, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eval.EvaluatePipeline(RecommendedPipeline(3), GradeMedium)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SatisfiesAll {
		t.Errorf("recommended pipeline fails: %+v", rep)
	}
}

func TestFacadeProbabilisticLinkage(t *testing.T) {
	d := SyntheticTrial(TrialConfig{N: 80, Seed: 4, ExtraQI: 2})
	rep, err := ProbabilisticLinkage(d, d.Clone(), d.QuasiIdentifiers(), ProbLinkageConfig{Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rate < 0.9 {
		t.Errorf("identity probabilistic linkage = %v", rep.Rate)
	}
}

func TestFacadeHTTPPIR(t *testing.T) {
	blocks := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	s1, err := NewITServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewITServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	h1 := httptest.NewServer(NewPIRHTTPServer(s1))
	defer h1.Close()
	h2 := httptest.NewServer(NewPIRHTTPServer(s2))
	defer h2.Close()
	client, err := NewPIRHTTPClient([]string{h1.URL, h2.URL}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Retrieve(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bb" {
		t.Errorf("retrieved %q", got)
	}
}

func TestFacadeOverlapProtection(t *testing.T) {
	srv, err := NewQueryServer(Dataset2(), ServerConfig{Protection: OverlapRestriction, MinSetSize: 2, MaxOverlap: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(srv,
		Predicate{{Col: "height", Op: Lt, V: 176}},
		Cond{Col: "weight", Op: Gt, V: 105})
	if _, err := tr.Infer("blood_pressure"); err == nil {
		t.Error("overlap restriction should block the tracker")
	}
}

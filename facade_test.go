package privacy3d

import (
	"testing"
)

// The facade tests exercise the public API end to end the way README's
// quickstart does, guarding against drift between the facade and the
// internal packages.

func TestFacadeMaskingPipeline(t *testing.T) {
	d := SyntheticTrial(TrialConfig{N: 200, Seed: 1})
	masked, res, err := Microaggregate(d, MicroaggOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if KAnonymity(masked, masked.QuasiIdentifiers()) < 3 {
		t.Error("facade masking lost k-anonymity")
	}
	if res.IL() <= 0 {
		t.Error("no information loss reported")
	}
	link, err := DistanceLinkage(d, masked, d.QuasiIdentifiers())
	if err != nil {
		t.Fatal(err)
	}
	if link.Rate > 1.0/3+0.01 {
		t.Errorf("linkage %v above 1/k", link.Rate)
	}
	il, err := MeasureInfoLoss(d, masked, d.QuasiIdentifiers())
	if err != nil {
		t.Fatal(err)
	}
	if il.Overall() < 0 || il.Overall() > 1 {
		t.Errorf("info loss out of range: %v", il.Overall())
	}
}

func TestFacadeFixturesAndAnonymity(t *testing.T) {
	if KAnonymity(Dataset1(), Dataset1().QuasiIdentifiers()) != 3 {
		t.Error("Dataset1 should be 3-anonymous")
	}
	rep := AnalyzeAnonymity(Dataset2())
	if rep.K != 1 {
		t.Errorf("Dataset2 k = %d", rep.K)
	}
}

func TestFacadeQueryServerAndTracker(t *testing.T) {
	srv, err := NewQueryServer(Dataset2(), ServerConfig{Protection: SizeRestriction, MinSetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(srv,
		Predicate{{Col: "height", Op: Lt, V: 176}},
		Cond{Col: "weight", Op: Gt, V: 105})
	res, err := tr.Infer("blood_pressure")
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 146 || res.Count != 1 {
		t.Errorf("tracker inferred count=%v sum=%v", res.Count, res.Sum)
	}
}

func TestFacadeSMC(t *testing.T) {
	nw, err := NewSMCNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	total, err := SecureSum(nw,
		[]FieldElem{EncodeFieldInt(5), EncodeFieldInt(-2), EncodeFieldInt(4)},
		[]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if DecodeFieldInt(total) != 7 {
		t.Errorf("secure sum = %d", DecodeFieldInt(total))
	}
}

func TestFacadePIR(t *testing.T) {
	blocks := [][]byte{{1}, {2}, {3}, {4}}
	s0, err := NewITServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewITServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewITClient([]*ITServer{s0, s1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Retrieve(2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Errorf("retrieved %v", got)
	}
}

func TestFacadeFramework(t *testing.T) {
	if len(Classes()) != 8 {
		t.Error("expected the eight Table 2 classes")
	}
	paper := PaperTable2()
	if paper[ClassPIR].User != GradeHigh {
		t.Error("paper table broken")
	}
	rows, err := UtilityVsDimensions(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("utility rows = %d", len(rows))
	}
}

func TestFacadeMining(t *testing.T) {
	txs := []Transaction{
		{"a", "b"}, {"a", "b"}, {"a", "b"}, {"a", "c"}, {"b", "c"},
	}
	rules, err := MineRules(txs, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	sanitised, rep, err := HideRules(txs, []SensitiveRule{{
		Antecedent: Itemset{"a"}, Consequent: Itemset{"b"},
	}}, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ItemsRemoved == 0 {
		t.Error("hide removed nothing")
	}
	after, err := MineRules(sanitised, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "a" && r.Consequent[0] == "b" {
			t.Error("sensitive rule survived")
		}
	}
}

func TestFacadeWarner(t *testing.T) {
	w, err := NewWarner(0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(5)
	truth := make([]bool, 10000)
	for i := range truth {
		truth[i] = rng.Float64() < 0.25
	}
	est := w.EstimateProportion(w.Randomize(truth, rng))
	if est < 0.2 || est > 0.3 {
		t.Errorf("estimate = %v", est)
	}
}

// Quickstart: mask a microdata file for release and measure the three
// privacy dimensions of the resulting technology choice.
package main

import (
	"fmt"
	"log"

	"privacy3d"
)

func main() {
	log.SetFlags(0)
	// 1. A clinical-trial population: (height, weight) are
	//    quasi-identifiers, blood pressure and AIDS status confidential.
	data := privacy3d.SyntheticTrial(privacy3d.TrialConfig{N: 500, Seed: 1})
	fmt.Printf("original data: %d records — %s\n",
		data.Rows(), privacy3d.AnalyzeAnonymity(data))

	// 2. Mask the quasi-identifiers with MDAV microaggregation (k = 3):
	//    every released combination of key attributes is shared by at
	//    least three patients.
	masked, res, err := privacy3d.Microaggregate(data, privacy3d.MicroaggOptions(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("masked release: %s (information loss %.3f)\n",
		privacy3d.AnalyzeAnonymity(masked), res.IL())

	// 3. Quantify respondent privacy with the record-linkage attack and
	//    utility with the information-loss battery.
	link, err := privacy3d.DistanceLinkage(data, masked, data.QuasiIdentifiers())
	if err != nil {
		log.Fatal(err)
	}
	il, err := privacy3d.MeasureInfoLoss(data, masked, data.QuasiIdentifiers())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linkage re-identification rate: %.3f (bounded by 1/k = %.3f)\n", link.Rate, 1.0/3)
	fmt.Printf("overall information loss:       %.3f\n", il.Overall())

	// 4. Where does this technology sit in the three-dimensional
	//    framework? Evaluate the SDC class empirically.
	eval, err := privacy3d.NewEvaluator(privacy3d.DefaultEvalConfig())
	if err != nil {
		log.Fatal(err)
	}
	m, err := eval.Evaluate(privacy3d.ClassSDC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSDC in the 3-D framework: respondent=%s owner=%s user=%s\n",
		m.Grades.Respondent, m.Grades.Owner, m.Grades.User)
	fmt.Println("→ to add user privacy, serve the masked release through PIR (see examples/hippocratic)")
}

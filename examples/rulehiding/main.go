// Rulehiding shows the use-specific non-crypto PPDM scenario of the
// paper's owner-privacy dimension in a retail setting: a supermarket wants
// to share its transaction database with a market-analysis partner, but one
// association rule is a trade secret. The database is sanitised so the rule
// can no longer be mined, with measured side effects on the rest of the
// knowledge.
package main

import (
	"fmt"
	"log"

	"privacy3d"
)

func main() {
	log.SetFlags(0)
	rng := privacy3d.NewRand(2007)
	// Synthetic baskets with a strong planted rule: promo-coffee ⇒ brand-X
	// (the supermarket's secret promotion mechanics).
	var txs []privacy3d.Transaction
	catalog := []string{"milk", "bread", "eggs", "butter", "apples"}
	for i := 0; i < 500; i++ {
		var tr privacy3d.Transaction
		for _, item := range catalog {
			if rng.Float64() < 0.3 {
				tr = append(tr, item)
			}
		}
		if rng.Float64() < 0.35 {
			tr = append(tr, "promo-coffee")
			if rng.Float64() < 0.9 {
				tr = append(tr, "brand-x-filter")
			}
		}
		if len(tr) == 0 {
			tr = append(tr, "bag")
		}
		txs = append(txs, tr)
	}

	const minSup, minConf = 40, 0.7
	before, err := privacy3d.MineRules(txs, minSup, minConf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rules minable before sanitisation: %d\n", len(before))
	for _, r := range before[:min(4, len(before))] {
		fmt.Printf("  %s\n", r)
	}

	secret := privacy3d.SensitiveRule{
		Antecedent: privacy3d.Itemset{"promo-coffee"},
		Consequent: privacy3d.Itemset{"brand-x-filter"},
	}
	sanitised, rep, err := privacy3d.HideRules(txs, []privacy3d.SensitiveRule{secret}, minSup, minConf)
	if err != nil {
		log.Fatal(err)
	}
	after, err := privacy3d.MineRules(sanitised, minSup, minConf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsanitisation: %d item deletions, %d rules hidden, %d side-effect losses, %d ghost rules\n",
		rep.ItemsRemoved, len(rep.Hidden), rep.SideEffects, rep.GhostRules)
	fmt.Printf("rules minable after sanitisation: %d\n", len(after))
	for _, r := range after {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "promo-coffee" && r.Consequent[0] == "brand-x-filter" {
			log.Fatal("secret rule still minable!")
		}
	}
	fmt.Println("→ the trade-secret rule is gone; the partner still mines the ordinary basket structure.")
	fmt.Println("→ in the 3-D framework: owner privacy (medium-high), respondent n/a, user privacy none —")
	fmt.Println("  combine with PIR if the partner's queries must stay private too.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

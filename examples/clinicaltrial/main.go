// Clinicaltrial walks through the paper's own worked example: the two toy
// patient datasets of Table 1, the spontaneous 3-anonymity of Dataset 1,
// the re-identification risk of Dataset 2, its repair by generalization,
// and the Section 3 PIR COUNT/AVG attack.
package main

import (
	"fmt"
	"log"

	"privacy3d"
)

func main() {
	log.SetFlags(0)
	d1, d2 := privacy3d.Dataset1(), privacy3d.Dataset2()

	fmt.Println("== Dataset 1 (Table 1, left) ==")
	fmt.Print(d1)
	fmt.Printf("→ %s\n", privacy3d.AnalyzeAnonymity(d1))
	qi := d1.QuasiIdentifiers()
	conf := d1.ConfidentialAttrs()
	fmt.Printf("→ spontaneously 3-anonymous: %v; 2-sensitive 3-anonymous: %v\n\n",
		privacy3d.KAnonymity(d1, qi) >= 3,
		privacy3d.IsPSensitiveKAnonymous(d1, qi, conf, 3, 2))

	fmt.Println("== Dataset 2 (Table 1, right) ==")
	fmt.Print(d2)
	fmt.Printf("→ %s\n", privacy3d.AnalyzeAnonymity(d2))
	fmt.Println("→ releasing even a single record violates respondent privacy")

	// Repair Dataset 2 with minimal generalization (Samarati-style lattice
	// search over interval hierarchies).
	hh, err := privacy3d.NewNumericHierarchy("height", 100, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	hw, err := privacy3d.NewNumericHierarchy("weight", 0, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	hier := map[int]*privacy3d.Hierarchy{
		d2.Index("height"): hh,
		d2.Index("weight"): hw,
	}
	anon, res, err := privacy3d.AnonymizeByGeneralization(d2, d2.QuasiIdentifiers(), hier, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Dataset 2 after minimal 3-anonymization (levels %v, height %d) ==\n", res.Levels, res.Height)
	fmt.Print(anon)

	// The Section 3 attack: PIR-protected statistical queries on the raw
	// Dataset 2 re-identify the unique small-and-heavy respondent.
	fmt.Println("\n== Section 3: the PIR COUNT/AVG attack on raw Dataset 2 ==")
	var xe, ye []float64
	for e := 150.0; e <= 190; e += 5 {
		xe = append(xe, e)
	}
	for e := 60.0; e <= 115; e += 5 {
		ye = append(ye, e)
	}
	db, err := privacy3d.BuildStatDB(d2, "height", "weight", "blood_pressure", xe, ye, 2)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := db.RangeStats(150, 165, 105, 115, 7)
	if err != nil {
		log.Fatal(err)
	}
	avg, err := stats.Avg()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SELECT COUNT(*)            WHERE height < 165 AND weight > 105 → %.0f\n", stats.Count)
	fmt.Printf("SELECT AVG(blood_pressure) WHERE height < 165 AND weight > 105 → %.0f\n", avg)
	fmt.Printf("→ one respondent, blood pressure %.0f mmHg: serious hypertension disclosed,\n", avg)
	fmt.Printf("  while the PIR servers observed only %d uniformly random retrievals.\n", stats.CellsRetrieved)
	fmt.Println("→ user privacy without respondent privacy — the dimensions are independent.")
}

// Collaborative demonstrates the paper's owner-privacy dimension through
// cryptographic PPDM: three hospitals jointly train a decision tree on the
// union of their patient data without any of them revealing its records —
// only uniformly random secret shares cross the wire. The computed analysis
// is known to every party, which is exactly why the paper scores crypto
// PPDM "none" on user privacy.
package main

import (
	"fmt"
	"log"

	"privacy3d"
)

func main() {
	log.SetFlags(0)
	// Three hospitals, each with a private shard of categorical patient
	// data (horizontal partitioning, the Lindell–Pinkas setting).
	attrs := []privacy3d.Attribute{
		{Name: "smoker", Role: privacy3d.QuasiIdentifier, Kind: privacy3d.Nominal},
		{Name: "bmi_band", Role: privacy3d.QuasiIdentifier, Kind: privacy3d.Nominal},
		{Name: "hypertension", Role: privacy3d.Confidential, Kind: privacy3d.Nominal},
	}
	rng := privacy3d.NewRand(77)
	hospitals := make([]*privacy3d.Dataset, 3)
	for h := range hospitals {
		hospitals[h] = privacy3d.NewDataset(attrs...)
	}
	for i := 0; i < 900; i++ {
		smoker, bmi := "no", "mid"
		if rng.Float64() < 0.4 {
			smoker = "yes"
		}
		switch rng.IntN(3) {
		case 0:
			bmi = "low"
		case 2:
			bmi = "high"
		}
		p := 0.1
		if smoker == "yes" {
			p += 0.4
		}
		if bmi == "high" {
			p += 0.3
		}
		ht := "N"
		if rng.Float64() < p {
			ht = "Y"
		}
		hospitals[i%3].MustAppend(smoker, bmi, ht)
	}
	for h, d := range hospitals {
		fmt.Printf("hospital %d holds %d private records\n", h, d.Rows())
	}

	// Jointly train the tree; only secret shares travel.
	tree, nw, err := privacy3d.SecureID3(hospitals, "hypertension", 4, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoint decision tree trained (depth %d) — known to all parties\n", tree.Depth())

	// Inspect the transcript: what did the wire carry?
	transcript := nw.Transcript()
	shares, small := 0, 0
	for _, m := range transcript {
		if m.Round != "share" {
			continue
		}
		for _, e := range m.Payload {
			shares++
			if uint64(e) < 10_000 {
				small++
			}
		}
	}
	fmt.Printf("protocol messages: %d; share payloads: %d; payloads small enough to be raw counts: %d\n",
		len(transcript), shares, small)
	fmt.Println("→ owner privacy: the transcript is uniformly random noise to any observer.")

	// The secure-sum primitive on its own: pharmaceutical companies
	// totalling adverse-event counts without disclosing individual counts.
	nw2, err := privacy3d.NewSMCNetwork(3)
	if err != nil {
		log.Fatal(err)
	}
	counts := []int64{17, 5, 11}
	inputs := make([]privacy3d.FieldElem, len(counts))
	for i, c := range counts {
		inputs[i] = privacy3d.EncodeFieldInt(c)
	}
	total, err := privacy3d.SecureSum(nw2, inputs, []uint64{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecure sum of private adverse-event counts %v = %d\n", counts, privacy3d.DecodeFieldInt(total))
	fmt.Println("→ no user privacy though: the analysis (the sum) is known to all three parties.")
}

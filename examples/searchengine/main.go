// Searchengine reproduces the motivation of the paper's user-privacy
// dimension: the August 2006 AOL incident, where a released query log let
// observers profile users. A synthetic query log shows how much a plaintext
// server learns; the same workload through keyword PIR shows the server
// learning nothing.
package main

import (
	"fmt"
	"log"
	"sort"

	"privacy3d"

	"privacy3d/internal/dataset"
)

func main() {
	log.SetFlags(0)
	// A synthetic search log: users with topical biases, Zipf popularity.
	entries := dataset.SyntheticQueryLog(dataset.QueryLogConfig{
		Users: 8, Queries: 400, Topics: 60, Seed: 2006,
	})

	fmt.Println("== Plaintext search engine: the server's query log profiles users ==")
	profile := map[int]map[string]int{}
	for _, e := range entries {
		if profile[e.User] == nil {
			profile[e.User] = map[string]int{}
		}
		profile[e.User][e.Query]++
	}
	users := make([]int, 0, len(profile))
	for u := range profile {
		users = append(users, u)
	}
	sort.Ints(users)
	for _, u := range users[:4] {
		top, n := topQuery(profile[u])
		fmt.Printf("user %d: %d queries logged; most frequent: %q (%d times)\n",
			u, total(profile[u]), top, n)
	}
	fmt.Println("→ every user is profiled from the log — the AOL scenario.")

	// The same corpus behind keyword PIR: the user resolves keywords
	// privately; the servers observe only uniform subset vectors.
	fmt.Println("\n== The same index served through keyword PIR ==")
	index := map[string][]byte{}
	for t := 0; t < 60; t++ {
		key := fmt.Sprintf("topic-%03d", t)
		index[key] = []byte(fmt.Sprintf("results for %s", key))
	}
	db, err := privacy3d.NewKeywordDB(index, 2)
	if err != nil {
		log.Fatal(err)
	}
	lookups := 0
	for _, e := range entries[:50] {
		v, ok, err := db.Lookup(e.Query, uint64(lookups)+99)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			lookups++
			_ = v
		}
	}
	srvLog := db.Servers()[0].QueryLog()
	fmt.Printf("private lookups answered: %d\n", lookups)
	fmt.Printf("what server 0 logged: %d uniform subset vectors of %d bits each\n",
		len(srvLog), len(srvLog[0])*8)
	ones := 0
	for _, v := range srvLog {
		for _, b := range v {
			for k := 0; k < 8; k++ {
				if b>>k&1 == 1 {
					ones++
				}
			}
		}
	}
	frac := float64(ones) / float64(len(srvLog)*len(srvLog[0])*8)
	fmt.Printf("fraction of set bits in the logged vectors: %.3f (≈ 0.5 ⇒ independent of the keywords)\n", frac)
	fmt.Println("→ user privacy: the paper argues it is the only privacy a public search index needs.")
}

func topQuery(m map[string]int) (string, int) {
	keys := make([]string, 0, len(m))
	for q := range m {
		keys = append(keys, q)
	}
	sort.Strings(keys)
	best, n := "", -1
	for _, q := range keys {
		if m[q] > n {
			best, n = q, m[q]
		}
	}
	return best, n
}

func total(m map[string]int) int {
	s := 0
	for _, n := range m {
		s += n
	}
	return s
}

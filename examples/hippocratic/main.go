// Hippocratic builds the paper's Section 6 recipe for satisfying all three
// privacy dimensions at once — the "hippocratic database" style pipeline:
// a hospital's data is k-anonymized (respondent privacy), the remaining
// attributes are perturbed PPDM-style (owner privacy), and the release is
// served through PIR (user privacy). The example measures each dimension
// before and after, and the utility price paid.
package main

import (
	"fmt"
	"log"
	"math"

	"privacy3d"
)

func main() {
	log.SetFlags(0)
	hospital := privacy3d.SyntheticTrial(privacy3d.TrialConfig{N: 600, Seed: 3})
	qi := hospital.QuasiIdentifiers()
	bp := []int{hospital.Index("blood_pressure")}

	// The hippocratic substrate first: purpose-bound access with consent
	// and an audit trail, the [3,4] machinery the pipeline sits on.
	store, err := privacy3d.NewHippocraticStore(hospital, []privacy3d.HippocraticRule{
		{Attribute: "height", Purpose: "research"},
		{Attribute: "weight", Purpose: "research"},
		{Attribute: "blood_pressure", Purpose: "research"},
		{Attribute: "aids", Purpose: "research"},
	})
	if err != nil {
		log.Fatal(err)
	}
	store.ConsentAll("research")
	if _, err := store.Access("insurer", "premium-pricing", []string{"blood_pressure"}); err != nil {
		fmt.Printf("purpose limitation: insurer denied — %v\n", err)
	}
	fmt.Printf("audit trail entries so far: %d\n\n", len(store.Audit()))

	fmt.Println("== Stage 0: raw interactive database ==")
	link0, err := privacy3d.DistanceLinkage(hospital, hospital.Clone(), qi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("respondent: linkage %.2f | owner: everything released | user: every query logged\n", link0.Rate)

	fmt.Println("\n== Stage 1: k-anonymize the quasi-identifiers (respondent privacy) ==")
	masked, res, err := privacy3d.Microaggregate(hospital, privacy3d.MicroaggOptions(3))
	if err != nil {
		log.Fatal(err)
	}
	link1, err := privacy3d.DistanceLinkage(hospital, masked, qi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-anonymity: %d, linkage %.2f, information loss %.3f\n",
		privacy3d.KAnonymity(masked, qi), link1.Rate, res.IL())

	fmt.Println("\n== Stage 2: perturb the confidential attribute (owner privacy) ==")
	release, err := privacy3d.AddNoise(masked, bp, 0.35, privacy3d.NewRand(9))
	if err != nil {
		log.Fatal(err)
	}
	il, err := privacy3d.MeasureInfoLoss(hospital, release, append(append([]int{}, qi...), bp...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall information loss of the full release: %.3f\n", il.Overall())
	// The noise is removable in distribution (not per record): a data
	// miner can reconstruct f(blood pressure) for valid analyses.
	sd := 0.35 * stddev(hospital.NumColumn(bp[0]))
	rec, err := privacy3d.NewReconstructor(30, sd).Reconstruct(release.NumColumn(bp[0]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AS2000 reconstruction of the blood-pressure distribution: mean %.1f (true %.1f)\n",
		rec.Mean(), mean(hospital.NumColumn(bp[0])))

	fmt.Println("\n== Stage 3: serve the release through PIR (user privacy) ==")
	blocks := make([][]byte, release.Rows())
	for i := range blocks {
		blocks[i] = []byte(fmt.Sprintf("%6.1f %6.1f %6.1f",
			release.Float(i, 0), release.Float(i, 1), release.Float(i, bp[0])))
	}
	s0, err := privacy3d.NewITServer(blocks)
	if err != nil {
		log.Fatal(err)
	}
	s1, err := privacy3d.NewITServer(blocks)
	if err != nil {
		log.Fatal(err)
	}
	client, err := privacy3d.NewITClient([]*privacy3d.ITServer{s0, s1}, 11)
	if err != nil {
		log.Fatal(err)
	}
	record, err := client.Retrieve(123)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privately retrieved record 123: %q\n", record)
	fmt.Printf("server 0 observed: %d uniformly random query vector(s)\n", len(s0.QueryLog()))

	fmt.Println("\n== The three dimensions, end to end ==")
	fmt.Printf("respondent: linkage %.2f → %.2f (k-anonymous release)\n", link0.Rate, link1.Rate)
	fmt.Println("owner:      per-record values perturbed; only distributions reconstructible")
	fmt.Println("user:       queries hidden by PIR; servers see uniform noise")
	fmt.Printf("price:      information loss %.3f plus %d bits of PIR communication per lookup\n",
		il.Overall(), client.CommunicationBits())
}

func mean(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func stddev(x []float64) float64 {
	m := mean(x)
	var s float64
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(x)))
}

// Package noise implements noise-addition masking and the Agrawal–Srikant
// (SIGMOD 2000) distribution-reconstruction machinery — the paper's citation
// [5], the canonical use-specific non-crypto PPDM method — together with the
// high-dimensional sparse-cell disclosure effect of Domingo-Ferrer, Sebé &
// Castellà (PSD 2004), the paper's citation [11] and its "non-trivial case
// of owner privacy without respondent privacy".
package noise

import (
	"fmt"
	"math"
	"math/rand/v2"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// AddUncorrelated masks the given numeric columns of d by adding independent
// Gaussian noise with standard deviation amplitude·sd(column); it returns a
// masked clone. amplitude is the relative noise level (e.g. 0.5).
func AddUncorrelated(d *dataset.Dataset, cols []int, amplitude float64, rng *rand.Rand) (*dataset.Dataset, error) {
	if amplitude < 0 {
		return nil, fmt.Errorf("noise: amplitude must be ≥ 0, got %g", amplitude)
	}
	out := d.Clone()
	for _, j := range cols {
		col := out.NumColumn(j)
		sd := stats.StdDev(col) * amplitude
		for i := range col {
			col[i] += sd * rng.NormFloat64()
		}
	}
	return out, nil
}

// AddCorrelated masks the given numeric columns by adding multivariate
// Gaussian noise with covariance amplitude²·Σ, where Σ is the empirical
// covariance of the columns. Correlated masking preserves the correlation
// structure of the data (the property Kim's method and the SDC literature
// rely on for utility).
func AddCorrelated(d *dataset.Dataset, cols []int, amplitude float64, rng *rand.Rand) (*dataset.Dataset, error) {
	if amplitude < 0 {
		return nil, fmt.Errorf("noise: amplitude must be ≥ 0, got %g", amplitude)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("noise: no columns to mask")
	}
	data := d.NumericMatrix(cols)
	cov := stats.CovarianceMatrix(data)
	for j := range cov {
		for k := range cov[j] {
			cov[j][k] *= amplitude * amplitude
		}
		cov[j][j] += 1e-12
	}
	l, err := stats.Cholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("noise: covariance not positive definite: %w", err)
	}
	out := d.Clone()
	for i := 0; i < d.Rows(); i++ {
		z := make([]float64, len(cols))
		for t := range z {
			z[t] = rng.NormFloat64()
		}
		e := stats.MatVec(l, z)
		for t, j := range cols {
			out.SetFloat(i, j, d.Float(i, j)+e[t])
		}
	}
	return out, nil
}

// Laplace adds Laplace(b) noise to a value; exported for the query
// perturbation methods that reuse it.
func Laplace(rng *rand.Rand, b float64) float64 {
	u := rng.Float64() - 0.5
	return -b * math.Copysign(math.Log(1-2*math.Abs(u)), u)
}

// AddMultiplicative masks the given numeric columns by multiplying each
// value with a lognormal-ish factor exp(σ·Z), Z ~ N(0,1) — the standard
// multiplicative noise of the SDC handbook, which perturbs large values
// more than small ones (useful for skewed magnitudes like income).
func AddMultiplicative(d *dataset.Dataset, cols []int, sigma float64, rng *rand.Rand) (*dataset.Dataset, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("noise: sigma must be ≥ 0, got %g", sigma)
	}
	out := d.Clone()
	for _, j := range cols {
		if d.Attr(j).Kind != dataset.Numeric {
			return nil, fmt.Errorf("noise: column %q is not numeric", d.Attr(j).Name)
		}
		col := out.NumColumn(j)
		for i := range col {
			col[i] *= math.Exp(sigma * rng.NormFloat64())
		}
	}
	return out, nil
}

package noise

import (
	"fmt"
	"math"

	"privacy3d/internal/stats"
)

// Reconstructor recovers the distribution of an original variable X from
// noise-added observations W = X + Y, where the noise distribution of Y is
// known, using the Bayesian EM iteration of Agrawal & Srikant (SIGMOD 2000).
// This is the key property of [5] that the paper discusses: the owner can
// release W and data miners can still reconstruct f_X well enough to build
// decision trees — and, per [11], in high dimension that same property can
// re-disclose rare respondents.
type Reconstructor struct {
	// Bins is the number of histogram bins used for the estimate.
	Bins int
	// NoiseSD is the standard deviation of the Gaussian noise added.
	NoiseSD float64
	// MaxIter bounds the EM iterations; Tol stops early when the estimate
	// moves less than Tol in total variation.
	MaxIter int
	Tol     float64
}

// NewReconstructor returns a Reconstructor with the defaults used in the
// AS2000 experiments (100 iterations cap, 1e-4 TV tolerance).
func NewReconstructor(bins int, noiseSD float64) *Reconstructor {
	return &Reconstructor{Bins: bins, NoiseSD: noiseSD, MaxIter: 100, Tol: 1e-4}
}

// Result of a reconstruction.
type ReconstructResult struct {
	// Support holds the bin centers; Probs the reconstructed P(X ∈ bin).
	Support []float64
	Probs   []float64
	// Iterations actually run.
	Iterations int
}

// Reconstruct estimates the distribution of X from noisy observations w.
// The support is taken as [min(w) - 2σ, max(w) + 2σ] split into Bins bins.
func (r *Reconstructor) Reconstruct(w []float64) (*ReconstructResult, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("noise: no observations to reconstruct from")
	}
	lo, hi := stats.MinMax(w)
	return r.ReconstructRange(w, lo-2*r.NoiseSD, hi+2*r.NoiseSD)
}

// ReconstructRange is Reconstruct over an explicitly given support
// [lo, hi]. Sharing one support (and hence one bin grid) across several
// reconstructions — e.g. per-class reconstructions of the same attribute —
// keeps the resulting estimates on a common discretization.
func (r *Reconstructor) ReconstructRange(w []float64, lo, hi float64) (*ReconstructResult, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("noise: no observations to reconstruct from")
	}
	if r.Bins <= 0 || r.NoiseSD <= 0 {
		return nil, fmt.Errorf("noise: reconstructor needs Bins > 0 and NoiseSD > 0")
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("noise: reconstruction support [%g, %g] is empty", lo, hi)
	}
	support := make([]float64, r.Bins)
	width := (hi - lo) / float64(r.Bins)
	for b := range support {
		support[b] = lo + (float64(b)+0.5)*width
	}
	// Precompute noise densities: dens[i][b] = f_Y(w_i - support_b).
	dens := make([][]float64, len(w))
	for i, wi := range w {
		row := make([]float64, r.Bins)
		for b, xb := range support {
			row[b] = gaussPDF(wi-xb, r.NoiseSD)
		}
		dens[i] = row
	}
	// EM iteration: p'_b ∝ Σ_i p_b f_Y(w_i - x_b) / Σ_c p_c f_Y(w_i - x_c).
	p := make([]float64, r.Bins)
	for b := range p {
		p[b] = 1 / float64(r.Bins)
	}
	iters := 0
	for ; iters < r.MaxIter; iters++ {
		next := make([]float64, r.Bins)
		for i := range w {
			var denom float64
			for b := range p {
				denom += p[b] * dens[i][b]
			}
			if denom == 0 {
				continue
			}
			for b := range p {
				next[b] += p[b] * dens[i][b] / denom
			}
		}
		next = stats.Normalize(next)
		if stats.TotalVariation(p, next) < r.Tol {
			p = next
			iters++
			break
		}
		p = next
	}
	return &ReconstructResult{Support: support, Probs: p, Iterations: iters}, nil
}

func gaussPDF(x, sd float64) float64 {
	z := x / sd
	return math.Exp(-z*z/2) / (sd * math.Sqrt(2*math.Pi))
}

// Mean returns the mean of the reconstructed distribution.
func (res *ReconstructResult) Mean() float64 {
	var m float64
	for b, p := range res.Probs {
		m += p * res.Support[b]
	}
	return m
}

// CDFAt returns the reconstructed P(X ≤ x).
func (res *ReconstructResult) CDFAt(x float64) float64 {
	var c float64
	for b, p := range res.Probs {
		if res.Support[b] <= x {
			c += p
		}
	}
	return c
}

// TVDistanceTo returns the total-variation distance between the
// reconstructed distribution and the empirical distribution of the sample x
// binned on the same support. It is the reconstruction-fidelity measure used
// by the experiments.
func (res *ReconstructResult) TVDistanceTo(x []float64) float64 {
	emp := make([]float64, len(res.Support))
	if len(res.Support) < 2 {
		return math.NaN()
	}
	width := res.Support[1] - res.Support[0]
	lo := res.Support[0] - width/2
	for _, v := range x {
		b := int(math.Floor((v - lo) / width))
		if b < 0 {
			b = 0
		}
		if b >= len(emp) {
			b = len(emp) - 1
		}
		emp[b]++
	}
	return stats.TotalVariation(res.Probs, stats.Normalize(emp))
}

package noise

import (
	"fmt"

	"privacy3d/internal/stats"
)

// SparseDisclosure quantifies the high-dimensional disclosure effect of
// Domingo-Ferrer, Sebé & Castellà (PSD 2004), the paper's [11]: when noise
// is small enough that the joint distribution of the masked data still "fits
// the multidimensional histogram of the original data too well", records in
// sparse histogram cells — rare attribute combinations — are re-disclosed.
//
// Operationalisation: build a multidimensional histogram over the original
// records; a record in a cell with at most sparseThreshold occupants carries
// a rare combination. That combination counts as disclosed when the record's
// masked version still falls in the same cell, i.e. the rare combination is
// visible in the released data. The returned rate is disclosed records / n.
// As dimensionality grows (fixed relative noise), nearly every record
// becomes sparse and the rate rises — exactly the [11] effect; as noise
// grows the rate falls.
type SparseDisclosureReport struct {
	// SparseFraction is the share of records lying in sparse cells of the
	// original data.
	SparseFraction float64
	// DisclosureRate is the share of all records whose rare combination is
	// disclosed by the masked release.
	DisclosureRate float64
	// RetentionRate is, among sparse records, the share whose masked
	// version stays in the original cell.
	RetentionRate float64
}

// SparseDisclosure compares original and masked row-major matrices (same
// shape) with binsPerDim histogram bins per dimension.
func SparseDisclosure(original, masked [][]float64, binsPerDim int, sparseThreshold int64) (SparseDisclosureReport, error) {
	var rep SparseDisclosureReport
	if len(original) == 0 || len(original) != len(masked) {
		return rep, fmt.Errorf("noise: original and masked must be non-empty and same length (%d vs %d)", len(original), len(masked))
	}
	dims := len(original[0])
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for j := 0; j < dims; j++ {
		mins[j], maxs[j] = original[0][j], original[0][j]
		for _, row := range original {
			if row[j] < mins[j] {
				mins[j] = row[j]
			}
			if row[j] > maxs[j] {
				maxs[j] = row[j]
			}
		}
		if mins[j] == maxs[j] {
			maxs[j] = mins[j] + 1
		}
	}
	h, err := stats.NewMultiHistogram(mins, maxs, binsPerDim)
	if err != nil {
		return rep, err
	}
	for _, row := range original {
		h.Add(row)
	}
	// Occupancy of each cell in the masked release: a rare combination is
	// only disclosed if the release itself leaves it rare. k-anonymous
	// maskings put ≥ k identical records into the cell, so their masked
	// occupancy exceeds the threshold and nothing is disclosed.
	maskedOcc := map[string]int64{}
	for _, row := range masked {
		maskedOcc[h.CellKey(row)]++
	}
	sparse := h.SparseCells(sparseThreshold)
	var sparseRecords, disclosed int
	for i, row := range original {
		key := h.CellKey(row)
		if _, ok := sparse[key]; !ok {
			continue
		}
		sparseRecords++
		if h.CellKey(masked[i]) == key && maskedOcc[key] <= sparseThreshold {
			disclosed++
		}
	}
	n := float64(len(original))
	rep.SparseFraction = float64(sparseRecords) / n
	rep.DisclosureRate = float64(disclosed) / n
	if sparseRecords > 0 {
		rep.RetentionRate = float64(disclosed) / float64(sparseRecords)
	}
	return rep, nil
}

package noise

import (
	"fmt"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// Denoise mounts the standard estimation attack against additive noise
// masking (in the spirit of the Kargupta et al. critique of random
// perturbation): assuming the signal is roughly Gaussian and the noise
// level is known (or estimable), the MMSE estimate of the original value is
// the shrinkage
//
//	x̂ = μ_w + (σ_w² − σ_n²)/σ_w² · (w − μ_w)
//
// per column. Disclosure-risk assessments must be run against the denoised
// release, not the raw noisy one — otherwise noise masking looks safer than
// it is.
func Denoise(noisy *dataset.Dataset, cols []int, noiseSD map[string]float64) (*dataset.Dataset, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("noise: no columns to denoise")
	}
	out := noisy.Clone()
	for _, j := range cols {
		a := noisy.Attr(j)
		if a.Kind != dataset.Numeric {
			return nil, fmt.Errorf("noise: column %q is not numeric", a.Name)
		}
		sd, ok := noiseSD[a.Name]
		if !ok {
			return nil, fmt.Errorf("noise: no noise level for column %q", a.Name)
		}
		if sd < 0 {
			return nil, fmt.Errorf("noise: negative noise level for column %q", a.Name)
		}
		col := out.NumColumn(j)
		mu := stats.Mean(col)
		varW := stats.Variance(col)
		if varW <= 0 {
			continue
		}
		shrink := (varW - sd*sd) / varW
		if shrink < 0 {
			shrink = 0 // noise dominates; best estimate is the mean
		}
		for i, w := range col {
			col[i] = mu + shrink*(w-mu)
		}
	}
	return out, nil
}

package noise

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

func TestAddUncorrelatedPreservesMeanApprox(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 3000, Dims: 2, Seed: 1})
	rng := dataset.NewRand(2)
	m, err := AddUncorrelated(d, []int{0, 1}, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		mo, mm := stats.Mean(d.NumColumn(j)), stats.Mean(m.NumColumn(j))
		if math.Abs(mo-mm)/math.Abs(mo) > 0.02 {
			t.Errorf("col %d mean drifted %v → %v", j, mo, mm)
		}
		// Variance inflated by roughly (1 + amplitude²).
		vo, vm := stats.Variance(d.NumColumn(j)), stats.Variance(m.NumColumn(j))
		if vm <= vo {
			t.Errorf("col %d variance should inflate: %v → %v", j, vo, vm)
		}
	}
	if dataset.EqualValues(d, m) {
		t.Error("no noise added")
	}
	if _, err := AddUncorrelated(d, []int{0}, -1, rng); err == nil {
		t.Error("accepted negative amplitude")
	}
}

func TestAddUncorrelatedZeroAmplitudeIsIdentity(t *testing.T) {
	d := dataset.Dataset1()
	m, err := AddUncorrelated(d, d.QuasiIdentifiers(), 0, dataset.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if !dataset.EqualValues(d, m) {
		t.Error("amplitude 0 changed data")
	}
}

func TestAddCorrelatedPreservesCorrelation(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 5000, Dims: 3, Seed: 5, Corr: 0.8})
	cols := []int{0, 1, 2}
	rng := dataset.NewRand(7)
	m, err := AddCorrelated(d, cols, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	ro := stats.Correlation(d.NumColumn(0), d.NumColumn(1))
	rm := stats.Correlation(m.NumColumn(0), m.NumColumn(1))
	if math.Abs(ro-rm) > 0.07 {
		t.Errorf("correlation drifted %v → %v under correlated noise", ro, rm)
	}
	// Uncorrelated noise at the same amplitude attenuates the correlation
	// toward 0 by factor 1/(1+a²); verify correlated masking does better.
	mu, err := AddUncorrelated(d, cols, 0.5, dataset.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	ru := stats.Correlation(mu.NumColumn(0), mu.NumColumn(1))
	if math.Abs(ro-rm) > math.Abs(ro-ru) {
		t.Errorf("correlated noise (Δ=%v) should preserve correlation better than uncorrelated (Δ=%v)",
			math.Abs(ro-rm), math.Abs(ro-ru))
	}
	if _, err := AddCorrelated(d, nil, 0.5, rng); err == nil {
		t.Error("accepted empty column list")
	}
	if _, err := AddCorrelated(d, cols, -0.1, rng); err == nil {
		t.Error("accepted negative amplitude")
	}
}

func TestLaplaceSymmetricZeroMean(t *testing.T) {
	rng := dataset.NewRand(11)
	var s float64
	n := 20000
	for i := 0; i < n; i++ {
		s += Laplace(rng, 2)
	}
	if math.Abs(s/float64(n)) > 0.1 {
		t.Errorf("Laplace mean = %v, want ≈ 0", s/float64(n))
	}
}

func TestReconstructBimodal(t *testing.T) {
	// AS2000's headline property: the original distribution is recoverable
	// from noisy data. Use a bimodal X that plain noisy data obscures.
	rng := dataset.NewRand(13)
	n := 4000
	x := make([]float64, n)
	for i := range x {
		if i%2 == 0 {
			x[i] = dataset.Normal(rng, -5, 1)
		} else {
			x[i] = dataset.Normal(rng, 5, 1)
		}
	}
	noiseSD := 2.0
	w := make([]float64, n)
	for i := range w {
		w[i] = x[i] + noiseSD*rng.NormFloat64()
	}
	rec := NewReconstructor(40, noiseSD)
	res, err := rec.Reconstruct(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Error("no EM iterations ran")
	}
	// Reconstruction should be closer to the true distribution than the
	// raw noisy histogram is.
	tvRec := res.TVDistanceTo(x)
	empNoisy := res.TVDistanceTo(w)
	if tvRec >= empNoisy {
		t.Errorf("reconstruction TV %v not better than noisy empirical TV %v", tvRec, empNoisy)
	}
	// Mean preserved.
	if math.Abs(res.Mean()-stats.Mean(x)) > 0.5 {
		t.Errorf("reconstructed mean %v vs true %v", res.Mean(), stats.Mean(x))
	}
	// The reconstructed CDF should show the bimodal gap: little mass near 0.
	massMiddle := res.CDFAt(2) - res.CDFAt(-2)
	if massMiddle > 0.15 {
		t.Errorf("reconstruction did not recover bimodality: middle mass %v", massMiddle)
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := NewReconstructor(10, 1).Reconstruct(nil); err == nil {
		t.Error("accepted empty sample")
	}
	if _, err := NewReconstructor(0, 1).Reconstruct([]float64{1}); err == nil {
		t.Error("accepted 0 bins")
	}
	if _, err := NewReconstructor(10, 0).Reconstruct([]float64{1}); err == nil {
		t.Error("accepted 0 noise sd")
	}
}

func TestSparseDisclosureDimensionalityEffect(t *testing.T) {
	// The [11] effect: with fixed relative noise, higher dimensionality
	// yields a higher rare-combination disclosure rate.
	rate := func(dims int) float64 {
		d := dataset.SyntheticCensus(dataset.CensusConfig{N: 800, Dims: dims, Seed: 17})
		cols := make([]int, dims)
		for j := range cols {
			cols[j] = j
		}
		m, err := AddUncorrelated(d, cols, 0.05, dataset.NewRand(23))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := SparseDisclosure(d.NumericMatrix(cols), m.NumericMatrix(cols), 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rep.DisclosureRate
	}
	r2, r8 := rate(2), rate(8)
	if r8 <= r2 {
		t.Errorf("disclosure rate should grow with dimension: d=2 → %v, d=8 → %v", r2, r8)
	}
}

func TestSparseDisclosureNoiseEffect(t *testing.T) {
	// More noise, less disclosure.
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 800, Dims: 6, Seed: 29})
	cols := []int{0, 1, 2, 3, 4, 5}
	orig := d.NumericMatrix(cols)
	rate := func(amp float64) float64 {
		m, err := AddUncorrelated(d, cols, amp, dataset.NewRand(31))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := SparseDisclosure(orig, m.NumericMatrix(cols), 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rep.DisclosureRate
	}
	low, high := rate(0.02), rate(1.5)
	if high >= low {
		t.Errorf("disclosure should drop with noise: amp 0.02 → %v, amp 1.5 → %v", low, high)
	}
}

func TestSparseDisclosureValidation(t *testing.T) {
	if _, err := SparseDisclosure(nil, nil, 4, 1); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := SparseDisclosure([][]float64{{1}}, [][]float64{}, 4, 1); err == nil {
		t.Error("accepted length mismatch")
	}
	// Constant column must not divide by zero.
	o := [][]float64{{1, 5}, {2, 5}}
	m := [][]float64{{1, 5}, {2, 5}}
	rep, err := SparseDisclosure(o, m, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RetentionRate != 1 {
		t.Errorf("identity masking retention = %v, want 1", rep.RetentionRate)
	}
}

func TestDenoiseImprovesValueRecovery(t *testing.T) {
	// The attack the masking literature warns about: with heavy noise, the
	// shrinkage estimate is closer to the truth (in mean squared error)
	// than the raw noisy values.
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 3000, Dims: 2, Seed: 41})
	cols := []int{0, 1}
	amp := 1.0
	m, err := AddUncorrelated(d, cols, amp, dataset.NewRand(43))
	if err != nil {
		t.Fatal(err)
	}
	levels := map[string]float64{}
	for _, j := range cols {
		levels[d.Attr(j).Name] = amp * stats.StdDev(d.NumColumn(j))
	}
	den, err := Denoise(m, cols, levels)
	if err != nil {
		t.Fatal(err)
	}
	mse := func(rel *dataset.Dataset) float64 {
		var s float64
		for _, j := range cols {
			oc, rc := d.NumColumn(j), rel.NumColumn(j)
			for i := range oc {
				diff := oc[i] - rc[i]
				s += diff * diff
			}
		}
		return s
	}
	if mse(den) >= mse(m) {
		t.Errorf("denoising did not reduce MSE: %v vs %v", mse(den), mse(m))
	}
}

func TestDenoiseValidation(t *testing.T) {
	d := dataset.Dataset1()
	if _, err := Denoise(d, nil, nil); err == nil {
		t.Error("accepted empty columns")
	}
	if _, err := Denoise(d, []int{0}, map[string]float64{}); err == nil {
		t.Error("accepted missing noise level")
	}
	if _, err := Denoise(d, []int{0}, map[string]float64{"height": -1}); err == nil {
		t.Error("accepted negative noise level")
	}
	if _, err := Denoise(d, []int{d.Index("aids")}, map[string]float64{"aids": 1}); err == nil {
		t.Error("accepted categorical column")
	}
	// Noise dominating the signal shrinks to the mean, not beyond.
	one := dataset.New(dataset.Attribute{Name: "x", Kind: dataset.Numeric})
	one.MustAppend(1.0)
	one.MustAppend(2.0)
	out, err := Denoise(one, []int{0}, map[string]float64{"x": 100})
	if err != nil {
		t.Fatal(err)
	}
	if out.Float(0, 0) != 1.5 || out.Float(1, 0) != 1.5 {
		t.Errorf("over-noised denoise = %v, %v (want both 1.5)", out.Float(0, 0), out.Float(1, 0))
	}
}

func TestAddMultiplicative(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 2000, Dims: 1, Seed: 51})
	m, err := AddMultiplicative(d, []int{0}, 0.1, dataset.NewRand(53))
	if err != nil {
		t.Fatal(err)
	}
	// Signs preserved, relative perturbation bounded in probability.
	big, small := 0.0, 0.0
	for i := 0; i < d.Rows(); i++ {
		o, n := d.Float(i, 0), m.Float(i, 0)
		if o*n < 0 {
			t.Fatal("multiplicative noise flipped a sign")
		}
		rel := math.Abs(n-o) / math.Abs(o)
		if math.Abs(o) > 100 {
			big += rel
		} else {
			small += rel
		}
	}
	if big == 0 {
		t.Error("no large values perturbed")
	}
	if _, err := AddMultiplicative(d, []int{0}, -1, dataset.NewRand(1)); err == nil {
		t.Error("accepted negative sigma")
	}
	d2 := dataset.Dataset1()
	if _, err := AddMultiplicative(d2, []int{d2.Index("aids")}, 0.1, dataset.NewRand(1)); err == nil {
		t.Error("accepted categorical column")
	}
	same, err := AddMultiplicative(d, []int{0}, 0, dataset.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if !dataset.EqualValues(d, same) {
		t.Error("sigma 0 changed values")
	}
}

// Package par is the dependency-free parallel-execution substrate of the
// analytics engine: a bounded worker pool with chunked ForEach/MapReduce
// over index ranges. The linkage attacks, MDAV microaggregation and the
// Table 2 evaluator all fan their O(n²) scans out through this package.
//
// Determinism contract: work is split into fixed-size chunks whose size
// depends only on the problem size, never on the worker count. Per-chunk
// partial results are reduced sequentially in chunk order. Because
// floating-point addition is not associative, this fixed chunking is what
// makes every result bit-identical whether it ran on 1 worker or 64 — the
// property the parallel_test.go files across the repository pin down.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// chunkSize is the fixed number of indices per work unit. It is a constant
// of the engine (not a tuning knob) because the reduction order over chunks
// defines the numeric result; see the package comment.
const chunkSize = 512

// defaultWorkers holds the pool size used by the package-level functions:
// 0 means "GOMAXPROCS at call time".
var defaultWorkers atomic.Int64

// Workers returns the effective worker count of the default pool.
func Workers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers fixes the default pool size and returns the previous setting
// (0 = GOMAXPROCS). n ≤ 0 restores the GOMAXPROCS default. The CLI -workers
// flag and the property tests are its callers.
func SetWorkers(n int) (prev int) {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// Pool is a bounded worker pool. The zero value is ready to use and sized
// to GOMAXPROCS; NewPool pins an explicit size (tests use 1, 2, 8).
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker bound; n ≤ 0 means
// GOMAXPROCS at call time.
func NewPool(n int) *Pool {
	if n < 0 {
		n = 0
	}
	return &Pool{workers: n}
}

// Default returns a pool honouring the package-level SetWorkers setting.
func Default() *Pool { return &Pool{workers: int(defaultWorkers.Load())} }

// Workers returns the effective worker count of the pool.
func (p *Pool) Workers() int {
	if p != nil && p.workers > 0 {
		return p.workers
	}
	return runtime.GOMAXPROCS(0)
}

// numChunks returns how many fixed-size chunks cover [0, n).
func numChunks(n int) int { return (n + chunkSize - 1) / chunkSize }

// ChunkBounds returns the half-open index range of chunk c over [0, n).
func ChunkBounds(c, n int) (lo, hi int) {
	lo = c * chunkSize
	hi = lo + chunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// run executes exec(t) for every t in [0, tasks) on up to Workers()
// goroutines, pulling task indices from a shared atomic counter (work
// stealing keeps uneven chunks balanced). Panics in workers are captured
// and re-raised on the caller's goroutine.
func (p *Pool) run(tasks int, exec func(t int)) {
	if tasks <= 0 {
		return
	}
	w := p.Workers()
	if w > tasks {
		w = tasks
	}
	if w <= 1 {
		for t := 0; t < tasks; t++ {
			exec(t)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				exec(t)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("par: worker panicked: %v", panicked))
	}
}

// runCtx is run with cooperative cancellation: once ctx is done no further
// task is started — workers stop pulling from the shared counter, already
// running tasks finish — and the context's error is returned. Cancellation
// granularity is therefore one task (one fixed-size chunk for the chunked
// entry points), which is what lets a dropped HTTP connection stop an
// in-flight 50k-row scan within one chunk boundary instead of burning
// cores to completion.
func (p *Pool) runCtx(ctx context.Context, tasks int, exec func(t int)) error {
	if tasks <= 0 {
		return ctx.Err()
	}
	w := p.Workers()
	if w > tasks {
		w = tasks
	}
	if w <= 1 {
		for t := 0; t < tasks; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			exec(t)
		}
		return ctx.Err()
	}
	done := ctx.Done()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				select {
				case <-done:
					return
				default:
				}
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				exec(t)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("par: worker panicked: %v", panicked))
	}
	return ctx.Err()
}

// ForEachChunk calls fn(lo, hi) once for every fixed-size chunk covering
// [0, n). Chunks run concurrently; fn must only write state owned by its
// index range (or private per-call state).
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int)) {
	p.run(numChunks(n), func(c int) {
		lo, hi := ChunkBounds(c, n)
		fn(lo, hi)
	})
}

// ForEach calls fn(i) for every i in [0, n), chunked across the pool.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachChunkCtx is ForEachChunk with cooperative cancellation: no new
// chunk starts once ctx is done and ctx.Err() is returned. Chunks that
// already ran produced exactly the state the uncancelled run would have, so
// callers may retry or abandon freely.
func (p *Pool) ForEachChunkCtx(ctx context.Context, n int, fn func(lo, hi int)) error {
	return p.runCtx(ctx, numChunks(n), func(c int) {
		lo, hi := ChunkBounds(c, n)
		fn(lo, hi)
	})
}

// ForEachCtx is ForEach with cooperative cancellation at chunk granularity.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	return p.ForEachChunkCtx(ctx, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Tasks runs fn(i) for each i in [0, n) as one task per index, regardless
// of chunking — the fan-out primitive for a small number of coarse jobs
// (the eight Table 2 technology classes).
func (p *Pool) Tasks(n int, fn func(i int)) { p.run(n, fn) }

// TasksCtx is Tasks with cooperative cancellation: tasks not yet started
// when ctx is cancelled never run, and ctx.Err() is returned.
func (p *Pool) TasksCtx(ctx context.Context, n int, fn func(i int)) error {
	return p.runCtx(ctx, n, fn)
}

// MapChunks computes fn over every fixed-size chunk of [0, n) in parallel
// and returns the per-chunk results in chunk order, ready for a
// deterministic left-to-right reduction by the caller.
func MapChunks[T any](p *Pool, n int, fn func(lo, hi int) T) []T {
	out := make([]T, numChunks(n))
	p.run(len(out), func(c int) {
		lo, hi := ChunkBounds(c, n)
		out[c] = fn(lo, hi)
	})
	return out
}

// MapChunksCtx is MapChunks with cooperative cancellation. On cancellation
// it returns (nil, ctx.Err()): partially filled chunk results are never
// exposed, so a caller cannot accidentally fold an incomplete reduction.
func MapChunksCtx[T any](ctx context.Context, p *Pool, n int, fn func(lo, hi int) T) ([]T, error) {
	out := make([]T, numChunks(n))
	if err := p.runCtx(ctx, len(out), func(c int) {
		lo, hi := ChunkBounds(c, n)
		out[c] = fn(lo, hi)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// MapTasks computes fn over n coarse tasks in parallel and returns the
// per-task results in task order — the gather half of a scatter-gather.
// Callers fold the slice left-to-right for a worker-count-independent
// reduction: the same in-order discipline as MapChunks, at task
// granularity. The segment-shard scatter in internal/store rides on this.
func MapTasks[T any](p *Pool, n int, fn func(t int) T) []T {
	out := make([]T, n)
	p.run(n, func(t int) {
		out[t] = fn(t)
	})
	return out
}

// MapReduce maps fn over the fixed-size chunks of [0, n) in parallel and
// folds the partials left-to-right (chunk order) with reduce, starting
// from zero. The reduction order is independent of the worker count.
func MapReduce[T any](p *Pool, n int, zero T, fn func(lo, hi int) T, reduce func(acc, part T) T) T {
	acc := zero
	for _, part := range MapChunks(p, n, fn) {
		acc = reduce(acc, part)
	}
	return acc
}

// ForEach runs fn over [0, n) on the default pool.
func ForEach(n int, fn func(i int)) { Default().ForEach(n, fn) }

// ForEachChunk runs fn over the chunks of [0, n) on the default pool.
func ForEachChunk(n int, fn func(lo, hi int)) { Default().ForEachChunk(n, fn) }

// Tasks runs n coarse tasks on the default pool.
func Tasks(n int, fn func(i int)) { Default().Tasks(n, fn) }

// ForEachChunkCtx runs fn over the chunks of [0, n) on the default pool
// with cooperative cancellation.
func ForEachChunkCtx(ctx context.Context, n int, fn func(lo, hi int)) error {
	return Default().ForEachChunkCtx(ctx, n, fn)
}

// TasksCtx runs n coarse tasks on the default pool with cooperative
// cancellation.
func TasksCtx(ctx context.Context, n int, fn func(i int)) error {
	return Default().TasksCtx(ctx, n, fn)
}

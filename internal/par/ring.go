package par

import (
	"sync"
)

// Ring is a bounded, concurrency-safe ring buffer that retains the newest
// capacity items. It backs the PIR servers' query logs: a long-running
// replica must record its view of user activity (the user-privacy evaluator
// reads it) without letting an unbounded append grow until the process
// OOMs. When the buffer is full the oldest entry is overwritten and the
// drop counter advances, so observability can report exactly how much of
// the view was shed.
type Ring[T any] struct {
	mu      sync.Mutex
	buf     []T
	start   int   // index of the oldest retained entry
	n       int   // retained entries, ≤ cap(buf)
	dropped int64 // entries overwritten since creation
}

// NewRing returns a ring retaining at most capacity entries; capacity ≤ 0
// is normalised to 1 so Append is always safe.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Append records v, overwriting the oldest entry when full.
func (r *Ring[T]) Append(v T) {
	r.mu.Lock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
	} else {
		r.buf[r.start] = v
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained entries, oldest first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Len returns the number of retained entries.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many entries have been overwritten.
func (r *Ring[T]) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Cap returns the retention capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

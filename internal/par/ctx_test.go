package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachChunkCtxBackground(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var sum atomic.Int64
		err := p.ForEachChunkCtx(context.Background(), 5000, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want := int64(5000) * 4999 / 2; sum.Load() != want {
			t.Fatalf("workers=%d: sum = %d, want %d", workers, sum.Load(), want)
		}
	}
}

func TestForEachChunkCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var ran atomic.Int64
		err := p.ForEachChunkCtx(ctx, 100000, func(lo, hi int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d chunks ran under a pre-cancelled context", workers, ran.Load())
		}
	}
}

func TestForEachChunkCtxMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(4)
	n := 1 << 20
	var ran atomic.Int64
	err := p.ForEachChunkCtx(ctx, n, func(lo, hi int) {
		// Cancel from inside the first chunk: the remaining chunks must not
		// be scheduled (beyond the ones already claimed by a worker).
		if ran.Add(1) == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if total := int64(numChunks(n)); ran.Load() >= total {
		t.Fatalf("all %d chunks ran despite cancellation", total)
	}
}

func TestTasksCtxAndForEachCtx(t *testing.T) {
	var hits atomic.Int64
	if err := TasksCtx(context.Background(), 37, func(i int) { hits.Add(1) }); err != nil || hits.Load() != 37 {
		t.Fatalf("TasksCtx: hits = %d, err = %v", hits.Load(), err)
	}
	hits.Store(0)
	if err := Default().ForEachCtx(context.Background(), 1234, func(i int) { hits.Add(1) }); err != nil || hits.Load() != 1234 {
		t.Fatalf("ForEachCtx: hits = %d, err = %v", hits.Load(), err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := TasksCtx(ctx, 10, func(i int) { t.Error("task ran") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("TasksCtx pre-cancelled: err = %v", err)
	}
}

func TestMapChunksCtxNoPartialResults(t *testing.T) {
	p := NewPool(4)
	got, err := MapChunksCtx(context.Background(), p, 3000, func(lo, hi int) int { return hi - lo })
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range got {
		total += g
	}
	if total != 3000 {
		t.Fatalf("covered %d of 3000 indices", total)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err = MapChunksCtx(ctx, p, 3000, func(lo, hi int) int { return 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got != nil {
		t.Fatalf("cancelled MapChunksCtx returned partial results %v", got)
	}
}

func TestRunCtxPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate through ForEachChunkCtx")
		}
	}()
	NewPool(4).ForEachChunkCtx(context.Background(), 10000, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

package par

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		p := NewPool(w)
		for _, n := range []int{0, 1, chunkSize - 1, chunkSize, chunkSize + 1, 3*chunkSize + 17} {
			hits := make([]int32, n)
			p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestForEachChunkBoundsPartitionRange(t *testing.T) {
	n := 2*chunkSize + 99
	seen := make([]int32, n)
	NewPool(4).ForEachChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		if hi-lo > chunkSize {
			t.Errorf("chunk [%d, %d) exceeds fixed size %d", lo, hi, chunkSize)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, h := range seen {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
}

// TestMapReduceBitIdenticalAcrossWorkers pins the engine's determinism
// contract: chunked floating-point reductions give the same bits for every
// worker count because chunk size and reduction order are fixed.
func TestMapReduceBitIdenticalAcrossWorkers(t *testing.T) {
	n := 5*chunkSize + 123
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1 / float64(i+3)
	}
	sum := func(p *Pool) float64 {
		return MapReduce(p, n, 0.0,
			func(lo, hi int) float64 {
				var s float64
				for i := lo; i < hi; i++ {
					s += xs[i]
				}
				return s
			},
			func(a, b float64) float64 { return a + b })
	}
	want := sum(NewPool(1))
	for _, w := range []int{2, 3, 8, 64} {
		if got := sum(NewPool(w)); got != want {
			t.Errorf("workers=%d: sum = %x, want %x (bit-identical)", w, got, want)
		}
	}
}

func TestMapChunksOrder(t *testing.T) {
	n := 3*chunkSize + 1
	parts := MapChunks(NewPool(8), n, func(lo, hi int) int { return lo })
	for c, lo := range parts {
		wantLo, _ := ChunkBounds(c, n)
		if lo != wantLo {
			t.Fatalf("chunk %d mapped lo=%d, want %d", c, lo, wantLo)
		}
	}
}

func TestTasksRunsEachOnce(t *testing.T) {
	const n = 8
	hits := make([]int32, n)
	NewPool(3).Tasks(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestWorkerPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to caller")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	NewPool(4).ForEach(4*chunkSize, func(i int) {
		if i == chunkSize+1 {
			panic("boom")
		}
	})
}

func TestSetWorkersRoundTrip(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	if p := Default(); p.Workers() != 3 {
		t.Errorf("Default().Workers() = %d", p.Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS", Workers())
	}
	if got := SetWorkers(-5); got != 0 {
		t.Errorf("SetWorkers returned prev %d, want 0", got)
	}
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("negative SetWorkers should mean default, got %d", Workers())
	}
}

func TestZeroAndNilSafety(t *testing.T) {
	var p Pool // zero value usable
	ran := false
	p.ForEach(1, func(int) { ran = true })
	if !ran {
		t.Error("zero-value pool did not run")
	}
	p.ForEach(0, func(int) { t.Error("n=0 must not call fn") })
	NewPool(0).ForEachChunk(0, func(_, _ int) { t.Error("n=0 must not call fn") })
}

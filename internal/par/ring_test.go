package par

import (
	"sync"
	"testing"
)

func TestRingRetainsNewestWindow(t *testing.T) {
	r := NewRing[int](3)
	if r.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", r.Cap())
	}
	for i := 1; i <= 5; i++ {
		r.Append(i)
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Errorf("Snapshot = %v, want [3 4 5]", got)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
}

func TestRingUnderCapacity(t *testing.T) {
	r := NewRing[string](8)
	r.Append("a")
	r.Append("b")
	got := r.Snapshot()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Snapshot = %v, want [a b]", got)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestRingDegenerateCapacity(t *testing.T) {
	r := NewRing[int](0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1 (normalised)", r.Cap())
	}
	r.Append(1)
	r.Append(2)
	if got := r.Snapshot(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Snapshot = %v, want [2]", got)
	}
}

// TestRingConcurrentAppend pins the accounting invariant under -race:
// retained + dropped equals the total number of appends.
func TestRingConcurrentAppend(t *testing.T) {
	const (
		goroutines = 8
		perG       = 500
	)
	r := NewRing[int](64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Append(g*perG + i)
				_ = r.Snapshot()
				_ = r.Dropped()
			}
		}(g)
	}
	wg.Wait()
	if got := int64(r.Len()) + r.Dropped(); got != goroutines*perG {
		t.Errorf("retained+dropped = %d, want %d", got, goroutines*perG)
	}
	if r.Len() != 64 {
		t.Errorf("Len = %d, want full ring (64)", r.Len())
	}
}

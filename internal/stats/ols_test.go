package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestOLSRecoversKnownModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{a, b}
		y[i] = 3 + 2*a - 5*b + 0.01*rng.NormFloat64()
	}
	m, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -5}
	for j := range want {
		if math.Abs(m.Coeffs[j]-want[j]) > 0.01 {
			t.Errorf("coeff %d = %v, want %v", j, m.Coeffs[j], want[j])
		}
	}
	if m.R2 < 0.999 {
		t.Errorf("R² = %v", m.R2)
	}
	// Prediction.
	if p := m.Predict([]float64{1, 1}); math.Abs(p-0) > 0.05 {
		t.Errorf("Predict(1,1) = %v, want ≈ 0", p)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("accepted empty data")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("accepted length mismatch")
	}
	// Too few observations.
	if _, err := OLS([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}); err == nil {
		t.Error("accepted n ≤ p")
	}
	// Singular design: duplicated column.
	x := make([][]float64, 10)
	y := make([]float64, 10)
	for i := range x {
		x[i] = []float64{float64(i), float64(i)}
		y[i] = float64(i)
	}
	if _, err := OLS(x, y); err == nil {
		t.Error("accepted singular design")
	}
}

func TestOLSConstantTarget(t *testing.T) {
	x := make([][]float64, 10)
	y := make([]float64, 10)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = 7
	}
	m, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-7) > 1e-9 || math.Abs(m.Coeffs[1]) > 1e-9 {
		t.Errorf("coeffs = %v", m.Coeffs)
	}
	if m.R2 != 0 {
		t.Errorf("R² of constant target = %v, want 0 by convention", m.R2)
	}
}

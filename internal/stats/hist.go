package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width 1-D histogram over [Min, Max). Values outside
// the range are clamped into the first/last bin, so masked data that drifts
// slightly outside the original support still counts.
type Histogram struct {
	Min, Max float64
	Counts   []int64
	N        int64
}

// NewHistogram builds a histogram with the given number of bins. It returns
// an error for invalid ranges or bin counts.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs bins > 0, got %d", bins)
	}
	if !(min < max) {
		return nil, fmt.Errorf("stats: histogram needs min < max, got [%g, %g)", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, bins)}, nil
}

// Bin returns the bin index of v (clamped to the valid range).
func (h *Histogram) Bin(v float64) int {
	b := int(math.Floor((v - h.Min) / (h.Max - h.Min) * float64(len(h.Counts))))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.Counts[h.Bin(v)]++
	h.N++
}

// AddAll records a slice of observations.
func (h *Histogram) AddAll(xs []float64) {
	for _, v := range xs {
		h.Add(v)
	}
}

// Probabilities returns the normalised bin frequencies.
func (h *Histogram) Probabilities() []float64 {
	p := make([]float64, len(h.Counts))
	if h.N == 0 {
		return p
	}
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(h.N)
	}
	return p
}

// Center returns the midpoint value of bin b.
func (h *Histogram) Center(b int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(b)+0.5)*w
}

// MultiHistogram is a fixed-width multidimensional histogram used to detect
// the rare-combination disclosure effect of Domingo-Ferrer, Sebé & Castellà
// (PSD 2004): in high dimension, cells with a single record are "sparse
// cells" whose reconstruction re-discloses the respondent.
type MultiHistogram struct {
	Mins, Maxs []float64
	BinsPerDim int
	Cells      map[string]int64
	N          int64
}

// NewMultiHistogram builds a d-dimensional histogram with binsPerDim bins
// per axis over the given per-dimension ranges.
func NewMultiHistogram(mins, maxs []float64, binsPerDim int) (*MultiHistogram, error) {
	if len(mins) != len(maxs) || len(mins) == 0 {
		return nil, fmt.Errorf("stats: multihistogram dims mismatch: %d vs %d", len(mins), len(maxs))
	}
	if binsPerDim <= 0 {
		return nil, fmt.Errorf("stats: multihistogram needs bins > 0, got %d", binsPerDim)
	}
	for j := range mins {
		if !(mins[j] < maxs[j]) {
			return nil, fmt.Errorf("stats: multihistogram dim %d has empty range [%g, %g)", j, mins[j], maxs[j])
		}
	}
	return &MultiHistogram{
		Mins: append([]float64(nil), mins...), Maxs: append([]float64(nil), maxs...),
		BinsPerDim: binsPerDim, Cells: map[string]int64{},
	}, nil
}

// CellKey returns the cell identifier of a point.
func (h *MultiHistogram) CellKey(p []float64) string {
	key := make([]byte, 0, 4*len(p))
	for j, v := range p {
		b := int(math.Floor((v - h.Mins[j]) / (h.Maxs[j] - h.Mins[j]) * float64(h.BinsPerDim)))
		if b < 0 {
			b = 0
		}
		if b >= h.BinsPerDim {
			b = h.BinsPerDim - 1
		}
		key = append(key, byte(b), byte(b>>8), ',', byte(j))
	}
	return string(key)
}

// Add records one multidimensional observation.
func (h *MultiHistogram) Add(p []float64) {
	h.Cells[h.CellKey(p)]++
	h.N++
}

// SparseCells returns the keys of cells holding at most threshold records —
// the rare attribute combinations whose disclosure matters.
func (h *MultiHistogram) SparseCells(threshold int64) map[string]int64 {
	out := map[string]int64{}
	for k, c := range h.Cells {
		if c <= threshold {
			out[k] = c
		}
	}
	return out
}

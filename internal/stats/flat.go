package stats

import (
	"fmt"
	"math"
)

// Flat is a dense row-major matrix over a single contiguous []float64
// backing array. The analytics hot paths (record linkage, MDAV scans) use
// it instead of [][]float64 so inner loops walk one cache-friendly
// allocation instead of chasing a pointer per row.
type Flat struct {
	data []float64
	rows int
	cols int
}

// NewFlat allocates a zeroed r×c flat matrix.
func NewFlat(r, c int) *Flat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("stats: NewFlat(%d, %d) with negative shape", r, c))
	}
	return &Flat{data: make([]float64, r*c), rows: r, cols: c}
}

// FlatFromRows copies a row-major [][]float64 into a Flat. Every row must
// have the same length.
func FlatFromRows(m [][]float64) *Flat {
	if len(m) == 0 {
		return &Flat{}
	}
	f := NewFlat(len(m), len(m[0]))
	for i, row := range m {
		if len(row) != f.cols {
			panic(fmt.Sprintf("stats: FlatFromRows row %d has %d values, want %d", i, len(row), f.cols))
		}
		copy(f.data[i*f.cols:], row)
	}
	return f
}

// Rows returns the number of rows.
func (f *Flat) Rows() int { return f.rows }

// Cols returns the number of columns.
func (f *Flat) Cols() int { return f.cols }

// Row returns row i as a full-capacity-limited view into the backing
// array: appends to the returned slice cannot clobber the next row.
func (f *Flat) Row(i int) []float64 {
	off := i * f.cols
	return f.data[off : off+f.cols : off+f.cols]
}

// At returns the element at (i, j).
func (f *Flat) At(i, j int) float64 { return f.data[i*f.cols+j] }

// Set stores v at (i, j).
func (f *Flat) Set(i, j int, v float64) { f.data[i*f.cols+j] = v }

// Data exposes the backing array (row-major). Mutating it mutates the
// matrix.
func (f *Flat) Data() []float64 { return f.data }

// ToRows copies the matrix out as a [][]float64 (for callers that still
// speak the slice-of-slices dialect).
func (f *Flat) ToRows() [][]float64 {
	out := make([][]float64, f.rows)
	for i := range out {
		out[i] = append([]float64(nil), f.Row(i)...)
	}
	return out
}

// Clone deep-copies the matrix.
func (f *Flat) Clone() *Flat {
	return &Flat{data: append([]float64(nil), f.data...), rows: f.rows, cols: f.cols}
}

// StandardizeFlat returns (x - mean)/sd per column along with the moments
// used, exactly mirroring Standardize — same summation order, so the two
// agree bit-for-bit — but over a Flat with a single output allocation.
// Zero-variance columns are centred but not scaled.
func StandardizeFlat(f *Flat) (z *Flat, means, sds []float64) {
	if f == nil || f.rows == 0 {
		return &Flat{}, nil, nil
	}
	means = make([]float64, f.cols)
	for i := 0; i < f.rows; i++ {
		row := f.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(f.rows)
	}
	sds = make([]float64, f.cols)
	for i := 0; i < f.rows; i++ {
		row := f.Row(i)
		for j, v := range row {
			d := v - means[j]
			sds[j] += d * d
		}
	}
	for j := range sds {
		sds[j] = math.Sqrt(sds[j] / float64(f.rows))
	}
	z = NewFlat(f.rows, f.cols)
	for i := 0; i < f.rows; i++ {
		src, dst := f.Row(i), z.Row(i)
		for j, v := range src {
			dst[j] = v - means[j]
			if sds[j] > 0 {
				dst[j] /= sds[j]
			}
		}
	}
	return z, means, sds
}

package stats

import (
	"errors"
	"fmt"
	"math"
)

// Small dense linear algebra over [][]float64, sufficient for the masking
// methods (correlated noise needs a Cholesky factor; auditing needs Gaussian
// elimination; record linkage needs matrix-vector products).

// ErrNotSPD is returned by Cholesky for matrices that are not symmetric
// positive definite.
var ErrNotSPD = errors.New("stats: matrix is not symmetric positive definite")

// ErrSingular is returned by Solve for singular systems.
var ErrSingular = errors.New("stats: singular matrix")

// NewMatrix allocates an r×c zero matrix.
func NewMatrix(r, c int) [][]float64 {
	m := make([][]float64, r)
	buf := make([]float64, r*c)
	for i := range m {
		m[i], buf = buf[:c:c], buf[c:]
	}
	return m
}

// CloneMatrix deep-copies a matrix.
func CloneMatrix(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = append([]float64(nil), a[i]...)
	}
	return out
}

// MatMul returns a×b; it panics on shape mismatch (programming error).
func MatMul(a, b [][]float64) [][]float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n, k, m := len(a), len(b), len(b[0])
	if len(a[0]) != k {
		panic(fmt.Sprintf("stats: MatMul shape mismatch %dx%d · %dx%d", n, len(a[0]), k, m))
	}
	out := NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for t := 0; t < k; t++ {
			ait := a[i][t]
			if ait == 0 {
				continue
			}
			bt := b[t]
			oi := out[i]
			for j := 0; j < m; j++ {
				oi[j] += ait * bt[j]
			}
		}
	}
	return out
}

// MatVec returns a·x.
func MatVec(a [][]float64, x []float64) []float64 {
	out := make([]float64, len(a))
	for i, row := range a {
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a [][]float64) [][]float64 {
	if len(a) == 0 {
		return nil
	}
	out := NewMatrix(len(a[0]), len(a))
	for i, row := range a {
		for j, v := range row {
			out[j][i] = v
		}
	}
	return out
}

// Cholesky returns the lower-triangular L with L·Lᵀ = a for a symmetric
// positive definite matrix a.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: Cholesky needs a square matrix, row %d has %d columns", i, len(a[i]))
		}
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotSPD
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// Solve solves a·x = b by Gaussian elimination with partial pivoting.
// a and b are not modified.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: Solve shape mismatch: %d equations, %d rhs", n, len(b))
	}
	// Augmented working copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// GaussianEliminate reduces an augmented system (rows of length cols+1) to
// reduced row echelon form in place and returns the pivot column of each
// row (or -1 for zero rows). It is the engine of the Chin–Ozsoyoglu query
// auditor: a variable (record) is fully disclosed when some reduced row has
// exactly one non-zero coefficient.
func GaussianEliminate(rows [][]float64, cols int) []int {
	const eps = 1e-9
	pivots := make([]int, len(rows))
	for i := range pivots {
		pivots[i] = -1
	}
	r := 0
	for c := 0; c < cols && r < len(rows); c++ {
		// Find pivot.
		piv := -1
		best := eps
		for i := r; i < len(rows); i++ {
			if math.Abs(rows[i][c]) > best {
				best = math.Abs(rows[i][c])
				piv = i
			}
		}
		if piv < 0 {
			continue
		}
		rows[r], rows[piv] = rows[piv], rows[r]
		// Normalise pivot row.
		f := rows[r][c]
		for j := c; j <= cols; j++ {
			rows[r][j] /= f
		}
		// Eliminate everywhere else (full reduction).
		for i := range rows {
			if i == r {
				continue
			}
			g := rows[i][c]
			if math.Abs(g) < eps {
				continue
			}
			for j := c; j <= cols; j++ {
				rows[i][j] -= g * rows[r][j]
			}
		}
		pivots[r] = c
		r++
	}
	return pivots
}

// Identity returns the n×n identity matrix.
func Identity(n int) [][]float64 {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// MaxAbsDiff returns the max absolute elementwise difference of two
// same-shaped matrices.
func MaxAbsDiff(a, b [][]float64) float64 {
	var d float64
	for i := range a {
		for j := range a[i] {
			if v := math.Abs(a[i][j] - b[i][j]); v > d {
				d = v
			}
		}
	}
	return d
}

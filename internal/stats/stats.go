// Package stats provides the descriptive statistics, distribution distances
// and small dense linear algebra that the masking, reconstruction and
// disclosure-risk modules are built on. Go's standard library has no
// statistics package, so this is the "thin dataframe/statistics ecosystem"
// substrate built from scratch.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance (divide by n); NaN for empty input.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// SampleVariance returns the unbiased sample variance (divide by n-1);
// NaN for inputs of length < 2.
func SampleVariance(x []float64) float64 {
	if len(x) < 2 {
		return math.NaN()
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x)-1)
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Covariance returns the population covariance of two equal-length slices.
func Covariance(x, y []float64) float64 {
	if len(x) == 0 || len(x) != len(y) {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var s float64
	for i := range x {
		s += (x[i] - mx) * (y[i] - my)
	}
	return s / float64(len(x))
}

// Correlation returns the Pearson correlation coefficient; NaN if either
// variable is constant.
func Correlation(x, y []float64) float64 {
	sx, sy := StdDev(x), StdDev(y)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(x, y) / (sx * sy)
}

// MinMax returns the extrema of x; (NaN, NaN) for empty input.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of x using linear
// interpolation between order statistics (type-7, the R default).
func Quantile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s) {
		return s[lo]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// Median returns the 0.5-quantile.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// CovarianceMatrix returns the population covariance matrix of row-major
// data (rows = observations, columns = variables).
func CovarianceMatrix(data [][]float64) [][]float64 {
	if len(data) == 0 {
		return nil
	}
	p := len(data[0])
	means := make([]float64, p)
	for _, row := range data {
		for j, v := range row {
			means[j] += v
		}
	}
	n := float64(len(data))
	for j := range means {
		means[j] /= n
	}
	cov := NewMatrix(p, p)
	for _, row := range data {
		for a := 0; a < p; a++ {
			da := row[a] - means[a]
			for b := a; b < p; b++ {
				cov[a][b] += da * (row[b] - means[b])
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			cov[a][b] /= n
			cov[b][a] = cov[a][b]
		}
	}
	return cov
}

// ColumnMeans returns the per-column means of row-major data.
func ColumnMeans(data [][]float64) []float64 {
	if len(data) == 0 {
		return nil
	}
	p := len(data[0])
	means := make([]float64, p)
	for _, row := range data {
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(len(data))
	}
	return means
}

// EuclideanDist returns the Euclidean distance between two vectors.
func EuclideanDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredDist returns the squared Euclidean distance (no sqrt), the
// work-horse of microaggregation inner loops.
func SquaredDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Standardize returns (x - mean)/sd per column, along with the means and
// sds used, so callers can standardise query points consistently. Columns
// with zero variance are left centred but unscaled.
func Standardize(data [][]float64) (z [][]float64, means, sds []float64) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	p := len(data[0])
	means = ColumnMeans(data)
	sds = make([]float64, p)
	for _, row := range data {
		for j, v := range row {
			d := v - means[j]
			sds[j] += d * d
		}
	}
	for j := range sds {
		sds[j] = math.Sqrt(sds[j] / float64(len(data)))
	}
	z = make([][]float64, len(data))
	for i, row := range data {
		zr := make([]float64, p)
		for j, v := range row {
			zr[j] = v - means[j]
			if sds[j] > 0 {
				zr[j] /= sds[j]
			}
		}
		z[i] = zr
	}
	return z, means, sds
}

// KolmogorovSmirnov returns the two-sample KS statistic
// sup_x |F1(x) - F2(x)|.
func KolmogorovSmirnov(x, y []float64) float64 {
	if len(x) == 0 || len(y) == 0 {
		return math.NaN()
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	var d float64
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		vx, vy := xs[i], ys[j]
		// Advance past ties on both sides before comparing the CDFs, so
		// equal values never produce a spurious gap.
		if vx <= vy {
			for i < len(xs) && xs[i] == vx {
				i++
			}
		}
		if vy <= vx {
			for j < len(ys) && ys[j] == vy {
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(len(xs)) - float64(j)/float64(len(ys)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// TotalVariation returns half the L1 distance between two discrete
// distributions given as aligned probability vectors.
func TotalVariation(p, q []float64) float64 {
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// Hellinger returns the Hellinger distance between two aligned discrete
// probability vectors (in [0,1]).
func Hellinger(p, q []float64) float64 {
	var s float64
	for i := range p {
		d := math.Sqrt(p[i]) - math.Sqrt(q[i])
		s += d * d
	}
	return math.Sqrt(s / 2)
}

// Entropy returns the Shannon entropy (bits) of a probability vector,
// treating 0·log 0 as 0.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// Normalize scales a non-negative vector to sum to 1. Vectors summing to 0
// become uniform.
func Normalize(x []float64) []float64 {
	out := make([]float64, len(x))
	var s float64
	for _, v := range x {
		s += v
	}
	if s == 0 {
		for i := range out {
			out[i] = 1 / float64(len(x))
		}
		return out
	}
	for i, v := range x {
		out[i] = v / s
	}
	return out
}

// Rank returns the 0-based ranks of x (ties broken by original index),
// i.e. rank[i] is the position of x[i] in the sorted order.
func Rank(x []float64) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	rank := make([]int, len(x))
	for r, i := range idx {
		rank[i] = r
	}
	return rank
}

package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(x); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := StdDev(x); sd != 2 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
	if sv := SampleVariance(x); !almostEq(sv, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", sv, 32.0/7)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty inputs should yield NaN")
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of singleton should be NaN")
	}
	if !math.IsNaN(Covariance([]float64{1}, []float64{1, 2})) {
		t.Error("Covariance with length mismatch should be NaN")
	}
	mn, mx := MinMax(nil)
	if !math.IsNaN(mn) || !math.IsNaN(mx) {
		t.Error("MinMax(nil) should be NaN, NaN")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if c := Correlation(x, y); !almostEq(c, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", c)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(x, yneg); !almostEq(c, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", c)
	}
	if !math.IsNaN(Correlation(x, []float64{3, 3, 3, 3, 3})) {
		t.Error("Correlation with constant should be NaN")
	}
}

func TestQuantileMedian(t *testing.T) {
	x := []float64{3, 1, 2}
	if m := Median(x); m != 2 {
		t.Errorf("Median = %v, want 2", m)
	}
	if q := Quantile(x, 0); q != 1 {
		t.Errorf("Quantile(0) = %v, want 1", q)
	}
	if q := Quantile(x, 1); q != 3 {
		t.Errorf("Quantile(1) = %v, want 3", q)
	}
	// Interpolation: quartile of {1,2,3,4}.
	if q := Quantile([]float64{1, 2, 3, 4}, 0.25); !almostEq(q, 1.75, 1e-12) {
		t.Errorf("Quantile(0.25) = %v, want 1.75", q)
	}
	// Input must not be mutated.
	if x[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestCovarianceMatrix(t *testing.T) {
	data := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	cov := CovarianceMatrix(data)
	want := [][]float64{{2.0 / 3, 4.0 / 3}, {4.0 / 3, 8.0 / 3}}
	if MaxAbsDiff(cov, want) > 1e-12 {
		t.Errorf("CovarianceMatrix = %v, want %v", cov, want)
	}
	if cov[0][1] != cov[1][0] {
		t.Error("covariance matrix not symmetric")
	}
}

func TestStandardize(t *testing.T) {
	data := [][]float64{{1, 5}, {3, 5}, {5, 5}}
	z, means, sds := Standardize(data)
	if means[0] != 3 || means[1] != 5 {
		t.Errorf("means = %v", means)
	}
	if sds[1] != 0 {
		t.Errorf("constant column sd = %v, want 0", sds[1])
	}
	if !almostEq(Mean([]float64{z[0][0], z[1][0], z[2][0]}), 0, 1e-12) {
		t.Error("standardised column mean != 0")
	}
	if !almostEq(StdDev([]float64{z[0][0], z[1][0], z[2][0]}), 1, 1e-12) {
		t.Error("standardised column sd != 1")
	}
	// Constant column centred to zero but not scaled (no division by 0).
	if z[0][1] != 0 || math.IsNaN(z[0][1]) {
		t.Errorf("constant column standardised to %v", z[0][1])
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(x, x); d != 0 {
		t.Errorf("KS(x,x) = %v, want 0", d)
	}
	y := []float64{11, 12, 13, 14, 15}
	if d := KolmogorovSmirnov(x, y); d != 1 {
		t.Errorf("KS disjoint = %v, want 1", d)
	}
}

func TestDistancesAndEntropy(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	if d := TotalVariation(p, q); d != 0.5 {
		t.Errorf("TV = %v, want 0.5", d)
	}
	if d := Hellinger(p, p); d != 0 {
		t.Errorf("Hellinger(p,p) = %v", d)
	}
	if h := Entropy(p); !almostEq(h, 1, 1e-12) {
		t.Errorf("Entropy = %v, want 1", h)
	}
	if h := Entropy(q); h != 0 {
		t.Errorf("Entropy = %v, want 0", h)
	}
}

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{2, 2})
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Errorf("Normalize = %v", p)
	}
	u := Normalize([]float64{0, 0, 0, 0})
	for _, v := range u {
		if v != 0.25 {
			t.Errorf("Normalize zero vector = %v, want uniform", u)
			break
		}
	}
}

func TestRank(t *testing.T) {
	r := Rank([]float64{30, 10, 20})
	want := []int{2, 0, 1}
	for i := range r {
		if r[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", r, want)
		}
	}
	// Ties: stable by index.
	r = Rank([]float64{5, 5, 1})
	if r[2] != 0 || r[0] != 1 || r[1] != 2 {
		t.Errorf("Rank with ties = %v", r)
	}
}

func TestMatMulTranspose(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := [][]float64{{5, 6}, {7, 8}}
	got := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	if MaxAbsDiff(got, want) != 0 {
		t.Errorf("MatMul = %v", got)
	}
	at := Transpose(a)
	if at[0][1] != 3 || at[1][0] != 2 {
		t.Errorf("Transpose = %v", at)
	}
	if v := MatVec(a, []float64{1, 1}); v[0] != 3 || v[1] != 7 {
		t.Errorf("MatVec = %v", v)
	}
}

func TestCholesky(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	if MaxAbsDiff(MatMul(l, Transpose(l)), a) > 1e-12 {
		t.Errorf("L·Lᵀ != A: L = %v", l)
	}
	if _, err := Cholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Error("Cholesky accepted non-SPD matrix")
	}
}

func TestSolve(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 3, 1e-9) {
		t.Errorf("Solve = %v, want [1 3]", x)
	}
	if _, err := Solve([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); err == nil {
		t.Error("Solve accepted singular system")
	}
	// Inputs unchanged.
	if a[0][0] != 2 {
		t.Error("Solve mutated its input")
	}
}

func TestGaussianEliminateDisclosure(t *testing.T) {
	// Queries: x1+x2 = 10, x2 = 4 → x1 fully determined: after reduction
	// some row must have a single non-zero coefficient at column 0.
	rows := [][]float64{
		{1, 1, 10},
		{0, 1, 4},
	}
	GaussianEliminate(rows, 2)
	found := false
	for _, r := range rows {
		nz := 0
		col := -1
		for c := 0; c < 2; c++ {
			if math.Abs(r[c]) > 1e-9 {
				nz++
				col = c
			}
		}
		if nz == 1 && col == 0 && almostEq(r[2]/r[col], 6, 1e-9) {
			found = true
		}
	}
	if !found {
		t.Errorf("elimination did not disclose x1 = 6: %v", rows)
	}
}

func TestCholeskyPropertyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.IntN(4)
		b := NewMatrix(n, n)
		for i := range b {
			for j := range b[i] {
				b[i][j] = rng.NormFloat64()
			}
		}
		// A = B·Bᵀ + n·I is SPD.
		a := MatMul(b, Transpose(b))
		for i := 0; i < n; i++ {
			a[i][i] += float64(n)
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky on SPD failed: %v", err)
		}
		if MaxAbsDiff(MatMul(l, Transpose(l)), a) > 1e-8 {
			t.Fatalf("trial %d: L·Lᵀ != A", trial)
		}
	}
}

func TestSolveProperty(t *testing.T) {
	// Property: Solve(a, a·x) recovers x for well-conditioned a.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 2 + int(seed%4)
		a := NewMatrix(n, n)
		for i := range a {
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonal dominance
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got, err := Solve(a, MatVec(a, x))
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	h.AddAll([]float64{0, 1.9, 2, 5, 9.99, -3, 42})
	if h.N != 7 {
		t.Errorf("N = %d", h.N)
	}
	if h.Counts[0] != 3 { // 0, 1.9 and clamped -3
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99 and clamped 42
		t.Errorf("bin 4 = %d, want 2", h.Counts[4])
	}
	p := h.Probabilities()
	var s float64
	for _, v := range p {
		s += v
	}
	if !almostEq(s, 1, 1e-12) {
		t.Errorf("probabilities sum to %v", s)
	}
	if c := h.Center(0); c != 1 {
		t.Errorf("Center(0) = %v, want 1", c)
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("NewHistogram accepted empty range")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("NewHistogram accepted 0 bins")
	}
}

func TestMultiHistogramSparseCells(t *testing.T) {
	h, err := NewMultiHistogram([]float64{0, 0}, []float64{10, 10}, 10)
	if err != nil {
		t.Fatalf("NewMultiHistogram: %v", err)
	}
	// Three points in one cell, one isolated point.
	h.Add([]float64{1.1, 1.1})
	h.Add([]float64{1.2, 1.3})
	h.Add([]float64{1.4, 1.2})
	h.Add([]float64{9.5, 9.5})
	sparse := h.SparseCells(1)
	if len(sparse) != 1 {
		t.Errorf("sparse cells = %d, want 1", len(sparse))
	}
	if h.N != 4 {
		t.Errorf("N = %d", h.N)
	}
	if _, err := NewMultiHistogram([]float64{0}, []float64{1, 2}, 4); err == nil {
		t.Error("NewMultiHistogram accepted dim mismatch")
	}
}

func TestEuclidean(t *testing.T) {
	if d := EuclideanDist([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("EuclideanDist = %v, want 5", d)
	}
	if d := SquaredDist([]float64{0, 0}, []float64{3, 4}); d != 25 {
		t.Errorf("SquaredDist = %v, want 25", d)
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1 with eigenvectors along
	// (1,1)/√2 and (1,−1)/√2.
	vals, vecs, err := JacobiEigen([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-9) || !almostEq(vals[1], 1, 1e-9) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// First eigenvector proportional to (1,1).
	if !almostEq(math.Abs(vecs[0][0]), math.Sqrt2/2, 1e-9) ||
		!almostEq(vecs[0][0], vecs[1][0], 1e-9) {
		t.Errorf("first eigenvector = (%v, %v)", vecs[0][0], vecs[1][0])
	}
}

func TestJacobiEigenReconstructs(t *testing.T) {
	// A = V·diag(λ)·Vᵀ for random symmetric matrices.
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.IntN(4)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				a[i][j] = rng.NormFloat64()
				a[j][i] = a[i][j]
			}
		}
		vals, vecs, err := JacobiEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct.
		lam := NewMatrix(n, n)
		for i := range vals {
			lam[i][i] = vals[i]
		}
		recon := MatMul(MatMul(vecs, lam), Transpose(vecs))
		if MaxAbsDiff(recon, a) > 1e-8 {
			t.Fatalf("trial %d: reconstruction error %v", trial, MaxAbsDiff(recon, a))
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
	}
}

func TestJacobiEigenValidation(t *testing.T) {
	if _, _, err := JacobiEigen(nil); err == nil {
		t.Error("accepted empty matrix")
	}
	if _, _, err := JacobiEigen([][]float64{{1, 2}}); err == nil {
		t.Error("accepted non-square matrix")
	}
	if _, _, err := JacobiEigen([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("accepted asymmetric matrix")
	}
}

func TestPrincipalComponentDirection(t *testing.T) {
	// Data stretched along (1,1): the PC must align with it.
	rng := rand.New(rand.NewPCG(7, 8))
	data := make([][]float64, 500)
	for i := range data {
		t1 := rng.NormFloat64() * 10
		t2 := rng.NormFloat64()
		data[i] = []float64{t1 + t2, t1 - t2}
	}
	pc, err := PrincipalComponent(data)
	if err != nil {
		t.Fatal(err)
	}
	// |cos angle to (1,1)/√2| ≈ 1.
	dot := (pc[0] + pc[1]) / math.Sqrt2
	if math.Abs(dot) < 0.99 {
		t.Errorf("PC = %v, not aligned with (1,1)", pc)
	}
	if _, err := PrincipalComponent(nil); err == nil {
		t.Error("accepted empty data")
	}
}

package stats

import (
	"fmt"
	"math"
)

// OLSResult is a fitted ordinary-least-squares linear model
// y = β₀ + β·x.
type OLSResult struct {
	// Coeffs holds β₀ followed by one coefficient per regressor.
	Coeffs []float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
}

// OLS fits y on the columns of x (row-major, rows = observations) with an
// intercept, via the normal equations. It requires more observations than
// regressors and a non-singular design.
func OLS(x [][]float64, y []float64) (*OLSResult, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: OLS needs matching non-empty x and y (%d vs %d)", n, len(y))
	}
	p := len(x[0]) + 1 // regressors + intercept
	if n <= p {
		return nil, fmt.Errorf("stats: OLS needs more observations (%d) than parameters (%d)", n, p)
	}
	// Design matrix with leading 1s; accumulate XᵀX and Xᵀy.
	xtx := NewMatrix(p, p)
	xty := make([]float64, p)
	row := make([]float64, p)
	for i := 0; i < n; i++ {
		row[0] = 1
		copy(row[1:], x[i])
		for a := 0; a < p; a++ {
			xty[a] += row[a] * y[i]
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	coeffs, err := Solve(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("stats: OLS design is singular: %w", err)
	}
	// R².
	my := Mean(y)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		pred := coeffs[0]
		for j, v := range x[i] {
			pred += coeffs[j+1] * v
		}
		d := y[i] - pred
		ssRes += d * d
		t := y[i] - my
		ssTot += t * t
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	if math.IsNaN(r2) {
		r2 = 0
	}
	return &OLSResult{Coeffs: coeffs, R2: r2}, nil
}

// Predict evaluates the fitted model on one observation.
func (m *OLSResult) Predict(x []float64) float64 {
	pred := m.Coeffs[0]
	for j, v := range x {
		pred += m.Coeffs[j+1] * v
	}
	return pred
}

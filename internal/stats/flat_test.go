package stats

import (
	"math/rand/v2"
	"testing"
)

func TestFlatBasics(t *testing.T) {
	f := NewFlat(3, 2)
	if f.Rows() != 3 || f.Cols() != 2 {
		t.Fatalf("shape = %dx%d", f.Rows(), f.Cols())
	}
	f.Set(1, 1, 7)
	if f.At(1, 1) != 7 {
		t.Errorf("At(1,1) = %v", f.At(1, 1))
	}
	if got := f.Row(1); got[1] != 7 {
		t.Errorf("Row(1) = %v", got)
	}
	// Row views alias the backing array.
	f.Row(2)[0] = 5
	if f.At(2, 0) != 5 {
		t.Error("Row view does not alias backing array")
	}
	// Appending to a row view must not clobber the next row.
	row := f.Row(0)
	_ = append(row, 99)
	if f.At(1, 0) != 0 {
		t.Error("append to row view clobbered next row")
	}
	c := f.Clone()
	c.Set(0, 0, -1)
	if f.At(0, 0) == -1 {
		t.Error("Clone shares storage")
	}
}

func TestFlatFromRowsRoundTrip(t *testing.T) {
	m := [][]float64{{1, 2, 3}, {4, 5, 6}}
	f := FlatFromRows(m)
	back := f.ToRows()
	for i := range m {
		for j := range m[i] {
			if back[i][j] != m[i][j] {
				t.Fatalf("round trip differs at (%d,%d)", i, j)
			}
		}
	}
	if e := FlatFromRows(nil); e.Rows() != 0 {
		t.Error("empty input should give empty matrix")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged input accepted")
		}
	}()
	FlatFromRows([][]float64{{1, 2}, {3}})
}

// TestStandardizeFlatMatchesStandardize pins the bit-level agreement the
// linkage rewrite depends on: the flat standardisation must reproduce the
// [][]float64 version exactly, not approximately.
func TestStandardizeFlatMatchesStandardize(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n, p = 257, 5
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, p)
		for j := range m[i] {
			m[i][j] = 100*rng.NormFloat64() + float64(j)
		}
		m[i][p-1] = 42 // constant column: centred, not scaled
	}
	wantZ, wantMeans, wantSDs := Standardize(m)
	z, means, sds := StandardizeFlat(FlatFromRows(m))
	for j := 0; j < p; j++ {
		if means[j] != wantMeans[j] || sds[j] != wantSDs[j] {
			t.Fatalf("moments differ at column %d", j)
		}
	}
	for i := 0; i < n; i++ {
		row := z.Row(i)
		for j := 0; j < p; j++ {
			if row[j] != wantZ[i][j] {
				t.Fatalf("z differs at (%d,%d): %x vs %x", i, j, row[j], wantZ[i][j])
			}
		}
	}
}

package stats

import (
	"fmt"
	"math"
)

// JacobiEigen computes the eigenvalues and eigenvectors of a real symmetric
// matrix by the classical Jacobi rotation method. It returns the
// eigenvalues in descending order with the matching eigenvectors as the
// COLUMNS of vecs (vecs[i][j] is component i of eigenvector j).
func JacobiEigen(a [][]float64) (values []float64, vecs [][]float64, err error) {
	n := len(a)
	if n == 0 {
		return nil, nil, fmt.Errorf("stats: empty matrix")
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("stats: matrix is not square")
		}
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i][j]-a[j][i]) > 1e-9*(1+math.Abs(a[i][j])) {
				return nil, nil, fmt.Errorf("stats: matrix is not symmetric at (%d,%d)", i, j)
			}
		}
	}
	m := CloneMatrix(a)
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Largest off-diagonal magnitude.
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				// Rotation angle.
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to m (both sides) and accumulate in v.
				for i := 0; i < n; i++ {
					mip, miq := m[i][p], m[i][q]
					m[i][p] = c*mip - s*miq
					m[i][q] = s*mip + c*miq
				}
				for j := 0; j < n; j++ {
					mpj, mqj := m[p][j], m[q][j]
					m[p][j] = c*mpj - s*mqj
					m[q][j] = s*mpj + c*mqj
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	// Extract and sort by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	ps := make([]pair, n)
	for i := 0; i < n; i++ {
		ps[i] = pair{m[i][i], i}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ps[j].val > ps[i].val {
				ps[i], ps[j] = ps[j], ps[i]
			}
		}
	}
	values = make([]float64, n)
	vecs = NewMatrix(n, n)
	for k, p := range ps {
		values[k] = p.val
		for i := 0; i < n; i++ {
			vecs[i][k] = v[i][p.idx]
		}
	}
	return values, vecs, nil
}

// PrincipalComponent returns the unit eigenvector of the covariance matrix
// of row-major data with the largest eigenvalue — the direction of maximum
// variance.
func PrincipalComponent(data [][]float64) ([]float64, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("stats: empty data")
	}
	cov := CovarianceMatrix(data)
	_, vecs, err := JacobiEigen(cov)
	if err != nil {
		return nil, err
	}
	p := len(cov)
	pc := make([]float64, p)
	for i := 0; i < p; i++ {
		pc[i] = vecs[i][0]
	}
	return pc, nil
}

package anonymity

import (
	"testing"

	"privacy3d/internal/dataset"
)

func TestEnforcePSensitiveOnMaskedTrial(t *testing.T) {
	// A k-anonymous microaggregated release can still have classes whose
	// AIDS values are constant; enforcement must repair them.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 400, Seed: 21})
	out, merges, err := EnforcePSensitive(d, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	qi := out.QuasiIdentifiers()
	conf := out.ConfidentialAttrs()
	if !IsPSensitiveKAnonymous(out, qi, conf, 3, 2) {
		t.Errorf("result not 2-sensitive 3-anonymous: %s", Analyze(out))
	}
	if merges == 0 {
		t.Error("expected merges on raw data (mostly singleton classes)")
	}
	// Confidential columns untouched.
	for i := 0; i < d.Rows(); i++ {
		if d.Cat(i, d.Index("aids")) != out.Cat(i, out.Index("aids")) {
			t.Fatal("confidential value changed")
		}
	}
	// Original untouched.
	if dataset.EqualValues(d, out) {
		t.Error("enforcement changed nothing")
	}
}

func TestEnforcePSensitiveAlreadySatisfied(t *testing.T) {
	d := dataset.Dataset1() // 3-anonymous, p-sensitivity ≥ 2
	out, merges, err := EnforcePSensitive(d, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if merges != 0 {
		t.Errorf("merges = %d on an already-compliant dataset", merges)
	}
	if !dataset.EqualValues(d, out) {
		t.Error("compliant dataset was modified")
	}
}

func TestEnforcePSensitiveRepairsDataset2(t *testing.T) {
	d := dataset.Dataset2() // k = 1
	out, _, err := EnforcePSensitive(d, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPSensitiveKAnonymous(out, out.QuasiIdentifiers(), out.ConfidentialAttrs(), 3, 2) {
		t.Errorf("Dataset 2 not repaired: %s", Analyze(out))
	}
}

func TestEnforcePSensitiveErrors(t *testing.T) {
	d := dataset.Dataset2()
	if _, _, err := EnforcePSensitive(d, 0, 2); err == nil {
		t.Error("accepted k = 0")
	}
	if _, _, err := EnforcePSensitive(d, 3, 0); err == nil {
		t.Error("accepted p = 0")
	}
	// Impossible p: more distinct values demanded than exist (aids has 2).
	if _, _, err := EnforcePSensitive(d, 3, 5); err == nil {
		t.Error("accepted unachievable p")
	}
	// Categorical quasi-identifiers unsupported.
	attrs := []dataset.Attribute{
		{Name: "city", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal},
		{Name: "x", Role: dataset.Confidential, Kind: dataset.Numeric},
	}
	c := dataset.New(attrs...)
	c.MustAppend("bcn", 1.0)
	if _, _, err := EnforcePSensitive(c, 1, 1); err == nil {
		t.Error("accepted categorical quasi-identifier")
	}
	// No confidential columns.
	nc := dataset.New(dataset.Attribute{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric})
	nc.MustAppend(1.0)
	if _, _, err := EnforcePSensitive(nc, 1, 1); err == nil {
		t.Error("accepted dataset without confidential attributes")
	}
}

package anonymity

import (
	"fmt"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// EnforcePSensitive upgrades a k-anonymous release to p-sensitive
// k-anonymity (Truta & Vinay 2006, the paper's footnote 3): equivalence
// classes whose confidential attributes carry fewer than p distinct values
// are merged with their nearest class (by quasi-identifier centroid in
// standardised space) until every class is both ≥ k in size and
// p-sensitive. Merging recodes the quasi-identifiers of both classes to
// their joint centroid, preserving k-anonymity.
//
// The quasi-identifiers must be numeric (centroid recoding); the dataset is
// not modified — a masked clone is returned along with the number of merge
// operations performed.
func EnforcePSensitive(d *dataset.Dataset, k, p int) (*dataset.Dataset, int, error) {
	if k < 1 || p < 1 {
		return nil, 0, fmt.Errorf("anonymity: need k ≥ 1 and p ≥ 1, got k=%d p=%d", k, p)
	}
	qi := d.QuasiIdentifiers()
	conf := d.ConfidentialAttrs()
	if len(qi) == 0 || len(conf) == 0 {
		return nil, 0, fmt.Errorf("anonymity: dataset needs quasi-identifier and confidential attributes")
	}
	for _, j := range qi {
		if d.Attr(j).Kind != dataset.Numeric {
			return nil, 0, fmt.Errorf("anonymity: EnforcePSensitive requires numeric quasi-identifiers; %q is %v",
				d.Attr(j).Name, d.Attr(j).Kind)
		}
	}
	// Check achievability: the whole dataset must itself be p-sensitive.
	whole := make([]int, d.Rows())
	for i := range whole {
		whole[i] = i
	}
	if distinctWithin(d, whole, conf) < p {
		return nil, 0, fmt.Errorf("anonymity: the dataset has fewer than p=%d distinct confidential values", p)
	}
	out := d.Clone()
	// Standardised space for nearest-class search.
	z, _, _ := stats.Standardize(d.NumericMatrix(qi))
	// Current partition: start from the QI equivalence classes.
	classes := [][]int{}
	for _, ec := range Classes(out, qi) {
		classes = append(classes, ec.Rows)
	}
	merges := 0
	for {
		// Find a violating class (too small or not p-sensitive).
		violating := -1
		for ci, rows := range classes {
			if len(rows) < k || distinctWithin(out, rows, conf) < p {
				violating = ci
				break
			}
		}
		if violating < 0 {
			break
		}
		if len(classes) == 1 {
			return nil, 0, fmt.Errorf("anonymity: cannot reach p-sensitive %d-anonymity (single class left)", k)
		}
		// Merge with the nearest other class.
		vc := centroid(z, classes[violating])
		best, bestD := -1, 0.0
		for ci, rows := range classes {
			if ci == violating {
				continue
			}
			dd := stats.SquaredDist(vc, centroid(z, rows))
			if best < 0 || dd < bestD {
				best, bestD = ci, dd
			}
		}
		merged := append(append([]int{}, classes[violating]...), classes[best]...)
		sort.Ints(merged)
		var next [][]int
		for ci, rows := range classes {
			if ci != violating && ci != best {
				next = append(next, rows)
			}
		}
		classes = append(next, merged)
		merges++
	}
	// Recode each class's quasi-identifiers to the class centroid in the
	// original space.
	raw := d.NumericMatrix(qi)
	for _, rows := range classes {
		c := centroid(raw, rows)
		for _, i := range rows {
			for t, j := range qi {
				out.SetFloat(i, j, c[t])
			}
		}
	}
	return out, merges, nil
}

func distinctWithin(d *dataset.Dataset, rows []int, confCols []int) int {
	min := -1
	for _, conf := range confCols {
		seen := map[string]bool{}
		for _, i := range rows {
			seen[d.KeyString(i, []int{conf})] = true
		}
		if min < 0 || len(seen) < min {
			min = len(seen)
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

func centroid(data [][]float64, rows []int) []float64 {
	c := make([]float64, len(data[0]))
	for _, i := range rows {
		for j, v := range data[i] {
			c[j] += v
		}
	}
	for j := range c {
		c[j] /= float64(len(rows))
	}
	return c
}

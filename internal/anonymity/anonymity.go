// Package anonymity implements the disclosure-protection properties the
// paper's respondent-privacy dimension is measured by: k-anonymity
// (Samarati & Sweeney 1998, Sweeney 2002), p-sensitive k-anonymity
// (Truta & Vinay 2006, the stronger property footnote 3 of the paper calls
// for), l-diversity, and t-closeness as an extension.
//
// All properties are evaluated over the equivalence classes induced by the
// quasi-identifier attributes: the groups of records sharing one
// combination of key-attribute values.
package anonymity

import (
	"fmt"
	"math"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// EquivalenceClass is one group of records sharing quasi-identifier values.
type EquivalenceClass struct {
	// Rows are the record indices in the dataset.
	Rows []int
	// Key is the canonical rendering of the shared quasi-identifier values.
	Key string
}

// Classes partitions the dataset into equivalence classes over the given
// columns (pass d.QuasiIdentifiers() for the standard notion). Classes are
// sorted by key for determinism.
func Classes(d *dataset.Dataset, cols []int) []EquivalenceClass {
	groups := d.GroupBy(cols)
	out := make([]EquivalenceClass, len(groups))
	for g, rows := range groups {
		out[g] = EquivalenceClass{Rows: rows, Key: d.KeyString(rows[0], cols)}
	}
	return out
}

// K returns the anonymity level of the dataset with respect to cols: the
// size of the smallest equivalence class. An empty dataset has K = 0.
func K(d *dataset.Dataset, cols []int) int {
	if d.Rows() == 0 {
		return 0
	}
	min := d.Rows()
	for _, ec := range Classes(d, cols) {
		if len(ec.Rows) < min {
			min = len(ec.Rows)
		}
	}
	return min
}

// IsKAnonymous reports whether every quasi-identifier combination appears at
// least k times.
func IsKAnonymous(d *dataset.Dataset, cols []int, k int) bool {
	if k <= 1 {
		return true
	}
	return K(d, cols) >= k
}

// DistinctValues returns, for each equivalence class, the number of distinct
// values of the confidential column conf.
func DistinctValues(d *dataset.Dataset, cols []int, conf int) []int {
	classes := Classes(d, cols)
	out := make([]int, len(classes))
	for g, ec := range classes {
		seen := map[string]bool{}
		for _, i := range ec.Rows {
			seen[d.KeyString(i, []int{conf})] = true
		}
		out[g] = len(seen)
	}
	return out
}

// PSensitivity returns the p-sensitivity level of the dataset: the minimum,
// over equivalence classes and confidential attributes, of the number of
// distinct confidential values within the class. A k-anonymous dataset with
// PSensitivity ≥ p is p-sensitive k-anonymous (Truta & Vinay 2006): even an
// intruder who locates a respondent's class cannot infer the confidential
// value, because at least p candidates remain.
func PSensitivity(d *dataset.Dataset, cols []int, confCols []int) int {
	if d.Rows() == 0 || len(confCols) == 0 {
		return 0
	}
	min := d.Rows()
	for _, conf := range confCols {
		for _, distinct := range DistinctValues(d, cols, conf) {
			if distinct < min {
				min = distinct
			}
		}
	}
	return min
}

// IsPSensitiveKAnonymous reports whether the dataset satisfies p-sensitive
// k-anonymity with respect to the quasi-identifier columns cols and the
// confidential columns confCols.
func IsPSensitiveKAnonymous(d *dataset.Dataset, cols, confCols []int, k, p int) bool {
	return IsKAnonymous(d, cols, k) && PSensitivity(d, cols, confCols) >= p
}

// LDiversity returns the l-diversity level for one confidential column:
// min over classes of the number of distinct confidential values
// (distinct l-diversity, Machanavajjhala et al.).
func LDiversity(d *dataset.Dataset, cols []int, conf int) int {
	if d.Rows() == 0 {
		return 0
	}
	min := d.Rows()
	for _, distinct := range DistinctValues(d, cols, conf) {
		if distinct < min {
			min = distinct
		}
	}
	return min
}

// EntropyLDiversity returns the entropy l-diversity level: the minimum over
// classes of 2^H(class confidential distribution). A class where one value
// dominates scores close to 1 even if nominally diverse.
func EntropyLDiversity(d *dataset.Dataset, cols []int, conf int) float64 {
	classes := Classes(d, cols)
	if len(classes) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, ec := range classes {
		counts := map[string]float64{}
		for _, i := range ec.Rows {
			counts[d.KeyString(i, []int{conf})]++
		}
		p := make([]float64, 0, len(counts))
		for _, c := range counts {
			p = append(p, c/float64(len(ec.Rows)))
		}
		if l := math.Exp2(stats.Entropy(p)); l < min {
			min = l
		}
	}
	return min
}

// TCloseness returns the t-closeness level of a categorical confidential
// column: the maximum, over equivalence classes, of the total-variation
// distance between the class distribution of the confidential attribute and
// its global distribution. Smaller is better; a dataset satisfies
// t-closeness when the returned value is ≤ t.
func TCloseness(d *dataset.Dataset, cols []int, conf int) float64 {
	if d.Rows() == 0 {
		return 0
	}
	// Global distribution over the category list.
	values := map[string]int{}
	order := []string{}
	for i := 0; i < d.Rows(); i++ {
		v := d.KeyString(i, []int{conf})
		if _, ok := values[v]; !ok {
			values[v] = len(order)
			order = append(order, v)
		}
	}
	global := make([]float64, len(order))
	for i := 0; i < d.Rows(); i++ {
		global[values[d.KeyString(i, []int{conf})]]++
	}
	global = stats.Normalize(global)

	var worst float64
	for _, ec := range Classes(d, cols) {
		local := make([]float64, len(order))
		for _, i := range ec.Rows {
			local[values[d.KeyString(i, []int{conf})]]++
		}
		local = stats.Normalize(local)
		if tv := stats.TotalVariation(local, global); tv > worst {
			worst = tv
		}
	}
	return worst
}

// Report summarises the anonymity properties of a dataset.
type Report struct {
	K              int
	PSensitivity   int
	LDiversityMin  int     // min distinct l-diversity across confidential columns
	TClosenessMax  float64 // max t over confidential columns
	Classes        int
	SingletonRatio float64 // fraction of records in singleton classes (unique respondents)
}

// Analyze computes a full anonymity report over the dataset's declared
// quasi-identifier and confidential columns.
func Analyze(d *dataset.Dataset) Report {
	qi := d.QuasiIdentifiers()
	conf := d.ConfidentialAttrs()
	classes := Classes(d, qi)
	var singles int
	for _, ec := range classes {
		if len(ec.Rows) == 1 {
			singles++
		}
	}
	r := Report{
		K:            K(d, qi),
		PSensitivity: PSensitivity(d, qi, conf),
		Classes:      len(classes),
	}
	if d.Rows() > 0 {
		r.SingletonRatio = float64(singles) / float64(d.Rows())
	}
	lmin := math.MaxInt
	var tmax float64
	for _, c := range conf {
		if l := LDiversity(d, qi, c); l < lmin {
			lmin = l
		}
		if t := TCloseness(d, qi, c); t > tmax {
			tmax = t
		}
	}
	if len(conf) == 0 {
		lmin = 0
	}
	r.LDiversityMin = lmin
	r.TClosenessMax = tmax
	return r
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("k=%d p-sens=%d l-div=%d t-close=%.3f classes=%d singletons=%.1f%%",
		r.K, r.PSensitivity, r.LDiversityMin, r.TClosenessMax, r.Classes, 100*r.SingletonRatio)
}

// UniqueRows returns the indices of records that are unique on cols —
// the respondents at direct re-identification risk.
func UniqueRows(d *dataset.Dataset, cols []int) []int {
	var out []int
	for _, ec := range Classes(d, cols) {
		if len(ec.Rows) == 1 {
			out = append(out, ec.Rows[0])
		}
	}
	sort.Ints(out)
	return out
}

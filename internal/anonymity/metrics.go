package anonymity

import (
	"privacy3d/internal/dataset"
)

// Utility metrics of a k-anonymous partition, from the k-anonymization
// literature: lower is better for both.

// DiscernibilityMetric returns Σ |EC|² over equivalence classes — the
// classic DM cost: each record is charged the size of the class it became
// indistinguishable within. The minimum for an n-record k-anonymous dataset
// is ≈ n·k; the maximum (one class) is n².
func DiscernibilityMetric(d *dataset.Dataset, cols []int) int {
	var dm int
	for _, ec := range Classes(d, cols) {
		dm += len(ec.Rows) * len(ec.Rows)
	}
	return dm
}

// AverageClassSize returns C_avg = n / (number of classes · k) — the
// normalised average equivalence-class size of LeFevre et al.; 1.0 means
// every class is exactly size k.
func AverageClassSize(d *dataset.Dataset, cols []int, k int) float64 {
	if d.Rows() == 0 || k <= 0 {
		return 0
	}
	classes := Classes(d, cols)
	if len(classes) == 0 {
		return 0
	}
	return float64(d.Rows()) / (float64(len(classes)) * float64(k))
}

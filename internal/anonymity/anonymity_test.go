package anonymity

import (
	"testing"

	"privacy3d/internal/dataset"
)

func TestDataset1IsSpontaneously3Anonymous(t *testing.T) {
	// Paper, Section 2: "the dataset turns out to spontaneously satisfy
	// k-anonymity for k = 3 with respect to the key attributes".
	d := dataset.Dataset1()
	qi := d.QuasiIdentifiers()
	if got := K(d, qi); got != 3 {
		t.Errorf("K(Dataset1) = %d, want 3", got)
	}
	if !IsKAnonymous(d, qi, 3) {
		t.Error("Dataset1 should be 3-anonymous")
	}
	if IsKAnonymous(d, qi, 4) {
		t.Error("Dataset1 should not be 4-anonymous")
	}
}

func TestDataset2ViolatesKAnonymity(t *testing.T) {
	// Paper, Section 2: "The new dataset is no longer 3-anonymous with
	// respect to the key attributes (height, weight)".
	d := dataset.Dataset2()
	qi := d.QuasiIdentifiers()
	if got := K(d, qi); got != 1 {
		t.Errorf("K(Dataset2) = %d, want 1", got)
	}
	uniq := UniqueRows(d, qi)
	if len(uniq) == 0 {
		t.Fatal("Dataset2 should contain unique respondents")
	}
	// The small-and-heavy patient (record 0 of the fixture) is unique.
	found := false
	for _, i := range uniq {
		if d.Float(i, 0) < 165 && d.Float(i, 1) > 105 {
			found = true
		}
	}
	if !found {
		t.Error("the height<165 ∧ weight>105 respondent should be unique")
	}
}

func TestKEdgeCases(t *testing.T) {
	empty := dataset.New(dataset.TrialSchema()...)
	if K(empty, empty.QuasiIdentifiers()) != 0 {
		t.Error("K(empty) != 0")
	}
	if !IsKAnonymous(empty, empty.QuasiIdentifiers(), 1) {
		t.Error("k=1 should always hold")
	}
}

func TestClassesPartition(t *testing.T) {
	d := dataset.Dataset1()
	classes := Classes(d, d.QuasiIdentifiers())
	if len(classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(classes))
	}
	total := 0
	keys := map[string]bool{}
	for _, ec := range classes {
		total += len(ec.Rows)
		if keys[ec.Key] {
			t.Errorf("duplicate class key %q", ec.Key)
		}
		keys[ec.Key] = true
	}
	if total != d.Rows() {
		t.Errorf("classes cover %d rows, want %d", total, d.Rows())
	}
}

func TestPSensitivity(t *testing.T) {
	// Footnote 3 of the paper: k-anonymity does not protect respondents
	// when a class shares the confidential value; p-sensitivity counts
	// distinct confidential values per class.
	d := dataset.New(dataset.TrialSchema()...)
	// One class, all three records share blood pressure but AIDS differs.
	d.MustAppend(170.0, 70.0, 140.0, "Y")
	d.MustAppend(170.0, 70.0, 140.0, "N")
	d.MustAppend(170.0, 70.0, 140.0, "N")
	qi := d.QuasiIdentifiers()
	conf := d.ConfidentialAttrs()
	if got := PSensitivity(d, qi, conf); got != 1 {
		t.Errorf("PSensitivity = %d, want 1 (blood pressure constant)", got)
	}
	if IsPSensitiveKAnonymous(d, qi, conf, 3, 2) {
		t.Error("should not be 2-sensitive 3-anonymous")
	}
	if !IsPSensitiveKAnonymous(d, qi, conf, 3, 1) {
		t.Error("should be 1-sensitive 3-anonymous")
	}
}

func TestDataset1PSensitivity(t *testing.T) {
	d := dataset.Dataset1()
	// Every class of the fixture has 3 distinct blood pressures and both
	// AIDS statuses would need p=2; AIDS has at most 2 values so
	// p-sensitivity is ≤ 2.
	p := PSensitivity(d, d.QuasiIdentifiers(), d.ConfidentialAttrs())
	if p < 2 {
		t.Errorf("Dataset1 p-sensitivity = %d, want ≥ 2", p)
	}
}

func TestLDiversity(t *testing.T) {
	d := dataset.Dataset1()
	qi := d.QuasiIdentifiers()
	if l := LDiversity(d, qi, d.Index("blood_pressure")); l != 3 {
		t.Errorf("l-diversity(bp) = %d, want 3", l)
	}
	if l := LDiversity(d, qi, d.Index("aids")); l != 2 {
		t.Errorf("l-diversity(aids) = %d, want 2", l)
	}
}

func TestEntropyLDiversity(t *testing.T) {
	d := dataset.New(dataset.TrialSchema()...)
	// Class with skewed AIDS distribution: 3 N, 1 Y → entropy l < 2.
	d.MustAppend(170.0, 70.0, 120.0, "N")
	d.MustAppend(170.0, 70.0, 121.0, "N")
	d.MustAppend(170.0, 70.0, 122.0, "N")
	d.MustAppend(170.0, 70.0, 123.0, "Y")
	l := EntropyLDiversity(d, d.QuasiIdentifiers(), d.Index("aids"))
	if l <= 1 || l >= 2 {
		t.Errorf("entropy l-diversity = %v, want in (1,2)", l)
	}
	// Balanced class → exactly 2.
	d2 := dataset.New(dataset.TrialSchema()...)
	d2.MustAppend(170.0, 70.0, 120.0, "N")
	d2.MustAppend(170.0, 70.0, 121.0, "Y")
	if l := EntropyLDiversity(d2, d2.QuasiIdentifiers(), d2.Index("aids")); l < 1.999 {
		t.Errorf("balanced entropy l-diversity = %v, want 2", l)
	}
}

func TestTCloseness(t *testing.T) {
	// All classes mirror the global distribution → t = 0.
	d := dataset.New(dataset.TrialSchema()...)
	d.MustAppend(170.0, 70.0, 120.0, "N")
	d.MustAppend(170.0, 70.0, 120.0, "Y")
	d.MustAppend(175.0, 80.0, 120.0, "N")
	d.MustAppend(175.0, 80.0, 120.0, "Y")
	if tc := TCloseness(d, d.QuasiIdentifiers(), d.Index("aids")); tc != 0 {
		t.Errorf("t-closeness = %v, want 0", tc)
	}
	// A class concentrated on one value diverges from a 50/50 global.
	d2 := dataset.New(dataset.TrialSchema()...)
	d2.MustAppend(170.0, 70.0, 120.0, "N")
	d2.MustAppend(170.0, 70.0, 120.0, "N")
	d2.MustAppend(175.0, 80.0, 120.0, "Y")
	d2.MustAppend(175.0, 80.0, 120.0, "Y")
	if tc := TCloseness(d2, d2.QuasiIdentifiers(), d2.Index("aids")); tc != 0.5 {
		t.Errorf("t-closeness = %v, want 0.5", tc)
	}
}

func TestAnalyzeReport(t *testing.T) {
	r := Analyze(dataset.Dataset2())
	if r.K != 1 {
		t.Errorf("report K = %d", r.K)
	}
	if r.SingletonRatio <= 0 {
		t.Error("Dataset2 should have singleton classes")
	}
	if r.Classes < 5 {
		t.Errorf("Dataset2 classes = %d, want several", r.Classes)
	}
	if s := r.String(); s == "" {
		t.Error("empty report string")
	}
	// Empty dataset report is all-zero and does not divide by zero.
	er := Analyze(dataset.New(dataset.TrialSchema()...))
	if er.K != 0 || er.SingletonRatio != 0 {
		t.Errorf("empty report = %+v", er)
	}
}

func TestUniqueRowsSorted(t *testing.T) {
	d := dataset.Dataset2()
	uniq := UniqueRows(d, d.QuasiIdentifiers())
	for i := 1; i < len(uniq); i++ {
		if uniq[i-1] >= uniq[i] {
			t.Fatalf("UniqueRows not sorted: %v", uniq)
		}
	}
}

func TestDiscernibilityMetric(t *testing.T) {
	d := dataset.Dataset1() // 3 classes of 3 → DM = 27
	if dm := DiscernibilityMetric(d, d.QuasiIdentifiers()); dm != 27 {
		t.Errorf("DM(Dataset1) = %d, want 27", dm)
	}
	d2 := dataset.Dataset2()
	// Classes: sizes 1,2,1,2,1,1,1 → DM = 1+4+1+4+1+1+1 = 13.
	if dm := DiscernibilityMetric(d2, d2.QuasiIdentifiers()); dm != 13 {
		t.Errorf("DM(Dataset2) = %d, want 13", dm)
	}
	// Coarser partitions cost more.
	all := DiscernibilityMetric(d, nil) // empty cols → single class
	if all != 81 {
		t.Errorf("DM(single class) = %d, want 81", all)
	}
}

func TestAverageClassSize(t *testing.T) {
	d := dataset.Dataset1()
	if c := AverageClassSize(d, d.QuasiIdentifiers(), 3); c != 1 {
		t.Errorf("C_avg = %v, want 1 (all classes exactly k)", c)
	}
	if c := AverageClassSize(d, nil, 3); c != 3 {
		t.Errorf("C_avg single class = %v, want 3", c)
	}
	empty := dataset.New(dataset.TrialSchema()...)
	if c := AverageClassSize(empty, nil, 3); c != 0 {
		t.Errorf("C_avg empty = %v", c)
	}
}

package smc

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"
)

// Private set intersection (PSI) in the Diffie–Hellman style of Meadows /
// Huberman–Franklin–Hogg: Alice and Bob each hold a private set of strings
// and learn the intersection (and nothing else, under DDH in the random
// oracle model, semi-honest). PSI is the core primitive of crypto PPDM over
// vertically partitioned data — e.g. two hospitals finding common patients
// before a joint study — and complements the horizontal-partition secure
// ID3 protocol in this package.
//
// Protocol: with H hashing into the group, Alice sends {H(a)^α}, Bob
// responds with {H(a)^{αβ}} (re-randomised order would hide positions; the
// simulation keeps order for testability) and sends {H(b)^β}; Alice
// computes {H(b)^{βα}} and intersects the two double-exponentiated sets.

// psiPrime reuses the 768-bit MODP group of the OT implementation.
var psiPrime = otPrime

// hashToGroup maps a string to a group element by hashing and squaring
// (squaring lands in the quadratic-residue subgroup).
func hashToGroup(s string) *big.Int {
	h := sha256.Sum256([]byte(s))
	x := new(big.Int).SetBytes(h[:])
	x.Mod(x, psiPrime)
	if x.Sign() == 0 {
		x.SetInt64(4)
	}
	return x.Mul(x, x).Mod(x, psiPrime)
}

// PSIParty holds one side's secret exponent and set.
type PSIParty struct {
	set      []string
	exponent *big.Int
}

// NewPSIParty creates a party over its private set.
func NewPSIParty(set []string) (*PSIParty, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("smc: PSI set must be non-empty")
	}
	// Exponent in [1, p−2].
	e, err := rand.Int(rand.Reader, new(big.Int).Sub(psiPrime, big.NewInt(2)))
	if err != nil {
		return nil, fmt.Errorf("smc: PSI keygen: %w", err)
	}
	e.Add(e, big.NewInt(1))
	return &PSIParty{set: append([]string(nil), set...), exponent: e}, nil
}

// Blind returns the party's set hashed into the group and raised to its
// secret exponent — the first protocol flow.
func (p *PSIParty) Blind() []*big.Int {
	out := make([]*big.Int, len(p.set))
	for i, s := range p.set {
		out[i] = new(big.Int).Exp(hashToGroup(s), p.exponent, psiPrime)
	}
	return out
}

// Exponentiate raises the peer's blinded elements to this party's secret
// exponent — the second protocol flow.
func (p *PSIParty) Exponentiate(blinded []*big.Int) []*big.Int {
	out := make([]*big.Int, len(blinded))
	for i, x := range blinded {
		out[i] = new(big.Int).Exp(x, p.exponent, psiPrime)
	}
	return out
}

// Intersect runs the full protocol between two parties and returns Alice's
// view of the intersection (the actual strings, since she knows which of
// her elements produced each double-blinded value).
func Intersect(alice, bob *PSIParty) []string {
	// Flow 1: each blinds its own set.
	aBlind := alice.Blind()
	bBlind := bob.Blind()
	// Flow 2: each exponentiates the other's blinded set.
	aDouble := bob.Exponentiate(aBlind)   // H(a)^{αβ}, aligned with alice.set
	bDouble := alice.Exponentiate(bBlind) // H(b)^{βα}
	inB := map[string]bool{}
	for _, x := range bDouble {
		inB[string(x.Bytes())] = true
	}
	var out []string
	for i, x := range aDouble {
		if inB[string(x.Bytes())] {
			out = append(out, alice.set[i])
		}
	}
	return out
}

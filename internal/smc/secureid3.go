package smc

import (
	"fmt"
	"math"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/mining"
)

// SecureID3 builds an ID3 decision tree over horizontally partitioned data
// in the spirit of Lindell & Pinkas (CRYPTO 2000) and the secure-sum-based
// distributed ID3 protocols that followed: each party holds a private subset
// of the records; at every tree node the per-class and per-attribute-value
// counts needed for the information-gain computation are aggregated with the
// SecureSum protocol, so no party reveals its local counts, only the
// aggregate statistics implied by the (public) output tree are learned.
//
// All feature columns and the target must be categorical; the resulting
// tree is identical to centralized ID3 over the union of the partitions
// (verified by the test suite), which is exactly the crypto-PPDM promise:
// same analysis output, no pooling of the data.
//
// The function returns the tree and the network whose transcript records
// every protocol message (for the owner-privacy evaluator).
func SecureID3(parts []*dataset.Dataset, target string, maxDepth int, seed uint64) (*mining.TreeNode, *Network, error) {
	if len(parts) < 2 {
		return nil, nil, fmt.Errorf("smc: secure ID3 needs ≥ 2 parties, got %d", len(parts))
	}
	if maxDepth <= 0 {
		maxDepth = 6
	}
	schema := parts[0].Attrs()
	tj := parts[0].Index(target)
	if tj < 0 {
		return nil, nil, fmt.Errorf("smc: unknown target %q", target)
	}
	for pi, p := range parts {
		if p.Cols() != len(schema) {
			return nil, nil, fmt.Errorf("smc: party %d schema width mismatch", pi)
		}
		for j, a := range p.Attrs() {
			if a.Name != schema[j].Name || a.Kind != schema[j].Kind {
				return nil, nil, fmt.Errorf("smc: party %d schema mismatch at column %d", pi, j)
			}
			if a.Kind == dataset.Numeric {
				return nil, nil, fmt.Errorf("smc: secure ID3 requires categorical attributes; %q is numeric", a.Name)
			}
		}
	}
	nw, err := NewNetwork(len(parts))
	if err != nil {
		return nil, nil, err
	}
	// Public metadata: class and attribute-value domains (union across
	// parties; domain knowledge, not record knowledge).
	classes := domainOf(parts, tj)
	if len(classes) == 0 {
		return nil, nil, fmt.Errorf("smc: no training records")
	}
	domains := map[int][]string{}
	var features []int
	for j := range schema {
		if j == tj {
			continue
		}
		features = append(features, j)
		domains[j] = domainOf(parts, j)
	}
	b := &id3Builder{
		parts: parts, tj: tj, classes: classes, domains: domains,
		nw: nw, seed: seed,
	}
	rowsets := make([][]int, len(parts))
	for pi, p := range parts {
		rows := make([]int, p.Rows())
		for i := range rows {
			rows[i] = i
		}
		rowsets[pi] = rows
	}
	root, err := b.grow(rowsets, features, maxDepth)
	if err != nil {
		return nil, nil, err
	}
	return root, nw, nil
}

type id3Builder struct {
	parts   []*dataset.Dataset
	tj      int
	classes []string
	domains map[int][]string
	nw      *Network
	seed    uint64
	calls   uint64
}

// secureCounts aggregates, via the secure-sum protocol, each party's local
// count vector computed by the local closure.
func (b *id3Builder) secureCounts(width int, local func(party int) []Elem) ([]int64, error) {
	inputs := make([][]Elem, len(b.parts))
	seeds := make([]uint64, len(b.parts))
	for pi := range b.parts {
		inputs[pi] = local(pi)
		if len(inputs[pi]) != width {
			return nil, fmt.Errorf("smc: local count width %d, want %d", len(inputs[pi]), width)
		}
		b.calls++
		seeds[pi] = b.seed ^ (b.calls * 0x9e3779b97f4a7c15) ^ uint64(pi)<<32
	}
	agg, err := SecureSumVector(b.nw, inputs, seeds)
	if err != nil {
		return nil, err
	}
	out := make([]int64, width)
	for i, e := range agg {
		out[i] = DecodeInt(e)
	}
	return out, nil
}

func (b *id3Builder) grow(rowsets [][]int, features []int, depth int) (*mining.TreeNode, error) {
	// Aggregate class counts securely.
	classCounts, err := b.secureCounts(len(b.classes), func(pi int) []Elem {
		v := make([]Elem, len(b.classes))
		p := b.parts[pi]
		for _, i := range rowsets[pi] {
			v[indexOf(b.classes, p.Cat(i, b.tj))]++
		}
		return v
	})
	if err != nil {
		return nil, err
	}
	var total int64
	maj, majC := "", int64(-1)
	nonzero := 0
	for c, cnt := range classCounts {
		total += cnt
		if cnt > 0 {
			nonzero++
		}
		if cnt > majC {
			maj, majC = b.classes[c], cnt
		}
	}
	if total == 0 {
		return &mining.TreeNode{Leaf: true, Class: b.classes[0]}, nil
	}
	if nonzero <= 1 || depth == 0 || len(features) == 0 || total < 4 {
		return &mining.TreeNode{Leaf: true, Class: maj}, nil
	}
	baseH := entropyOf(classCounts, total)
	// Pick the best attribute by aggregated conditional entropy.
	bestGain := 1e-9
	bestAttr := -1
	var bestCounts []int64
	for _, j := range features {
		dom := b.domains[j]
		width := len(dom) * len(b.classes)
		counts, err := b.secureCounts(width, func(pi int) []Elem {
			v := make([]Elem, width)
			p := b.parts[pi]
			for _, i := range rowsets[pi] {
				vi := indexOf(dom, p.Cat(i, j))
				ci := indexOf(b.classes, p.Cat(i, b.tj))
				v[vi*len(b.classes)+ci]++
			}
			return v
		})
		if err != nil {
			return nil, err
		}
		var cond float64
		for vi := range dom {
			var sub int64
			for ci := range b.classes {
				sub += counts[vi*len(b.classes)+ci]
			}
			if sub == 0 {
				continue
			}
			cond += float64(sub) / float64(total) *
				entropyOf(counts[vi*len(b.classes):(vi+1)*len(b.classes)], sub)
		}
		if g := baseH - cond; g > bestGain {
			bestGain, bestAttr, bestCounts = g, j, counts
		}
	}
	if bestAttr < 0 {
		return &mining.TreeNode{Leaf: true, Class: maj}, nil
	}
	node := &mining.TreeNode{
		Attr:     b.parts[0].Attr(bestAttr).Name,
		Default:  maj,
		Branches: map[string]*mining.TreeNode{},
	}
	var rest []int
	for _, j := range features {
		if j != bestAttr {
			rest = append(rest, j)
		}
	}
	dom := b.domains[bestAttr]
	for vi, val := range dom {
		var branchTotal int64
		for ci := range b.classes {
			branchTotal += bestCounts[vi*len(b.classes)+ci]
		}
		if branchTotal == 0 {
			continue
		}
		sub := make([][]int, len(b.parts))
		for pi, p := range b.parts {
			for _, i := range rowsets[pi] {
				if p.Cat(i, bestAttr) == val {
					sub[pi] = append(sub[pi], i)
				}
			}
		}
		child, err := b.grow(sub, rest, depth-1)
		if err != nil {
			return nil, err
		}
		node.Branches[val] = child
	}
	return node, nil
}

func domainOf(parts []*dataset.Dataset, j int) []string {
	seen := map[string]bool{}
	for _, p := range parts {
		for i := 0; i < p.Rows(); i++ {
			seen[p.Cat(i, j)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func indexOf(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func entropyOf(counts []int64, total int64) float64 {
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / float64(total)
			h -= p * math.Log2(p)
		}
	}
	return h
}

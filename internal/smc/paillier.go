package smc

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// Paillier implements the Paillier additively homomorphic cryptosystem used
// by two-party PPDM protocols (secure scalar product, private aggregation).
// Enc(m1)·Enc(m2) = Enc(m1+m2 mod n) and Enc(m)^k = Enc(k·m mod n).

// PaillierPublicKey holds n and the derived constants.
type PaillierPublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // n²
	G  *big.Int // generator, fixed to n+1
}

// PaillierPrivateKey holds the decryption trapdoor.
type PaillierPrivateKey struct {
	PaillierPublicKey
	lambda *big.Int // lcm(p−1, q−1)
	mu     *big.Int // (L(g^lambda mod n²))⁻¹ mod n
}

// GeneratePaillier creates a key pair with the given modulus bit size
// (≥ 256; use ≥ 2048 for real deployments, smaller for tests).
func GeneratePaillier(bits int) (*PaillierPrivateKey, error) {
	if bits < 256 {
		return nil, fmt.Errorf("smc: paillier modulus must be ≥ 256 bits, got %d", bits)
	}
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("smc: paillier keygen: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("smc: paillier keygen: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		n2 := new(big.Int).Mul(n, n)
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), gcd)
		g := new(big.Int).Add(n, big.NewInt(1))
		// mu = (L(g^lambda mod n²))⁻¹ mod n with L(x) = (x−1)/n.
		glambda := new(big.Int).Exp(g, lambda, n2)
		l := paillierL(glambda, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue // degenerate pair, retry
		}
		return &PaillierPrivateKey{
			PaillierPublicKey: PaillierPublicKey{N: n, N2: n2, G: g},
			lambda:            lambda,
			mu:                mu,
		}, nil
	}
}

func paillierL(x, n *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(x, big.NewInt(1)), n)
}

// Encrypt encrypts m ∈ [0, n) with fresh randomness.
func (pk *PaillierPublicKey) Encrypt(m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("smc: paillier plaintext out of range")
	}
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, fmt.Errorf("smc: paillier encrypt: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(big.NewInt(1)) == 0 {
			break
		}
	}
	// c = g^m · r^n mod n²; with g = n+1, g^m = 1 + m·n (mod n²).
	gm := new(big.Int).Mod(new(big.Int).Add(big.NewInt(1), new(big.Int).Mul(m, pk.N)), pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	return new(big.Int).Mod(new(big.Int).Mul(gm, rn), pk.N2), nil
}

// Decrypt recovers the plaintext.
func (sk *PaillierPrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(sk.N2) >= 0 {
		return nil, fmt.Errorf("smc: paillier ciphertext out of range")
	}
	clambda := new(big.Int).Exp(c, sk.lambda, sk.N2)
	l := paillierL(clambda, sk.N)
	return new(big.Int).Mod(new(big.Int).Mul(l, sk.mu), sk.N), nil
}

// AddCipher returns an encryption of the sum of the two plaintexts.
func (pk *PaillierPublicKey) AddCipher(c1, c2 *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(c1, c2), pk.N2)
}

// MulConst returns an encryption of k·m given an encryption of m.
func (pk *PaillierPublicKey) MulConst(c, k *big.Int) *big.Int {
	kk := new(big.Int).Mod(k, pk.N)
	return new(big.Int).Exp(c, kk, pk.N2)
}

// EncodeSigned maps a signed integer into [0, n) (two's-complement style
// around n), so homomorphic sums of moderate magnitude decode correctly.
func (pk *PaillierPublicKey) EncodeSigned(v int64) *big.Int {
	b := big.NewInt(v)
	if v < 0 {
		b.Add(b, pk.N)
	}
	return b
}

// DecodeSigned inverts EncodeSigned for |value| < n/2.
func (pk *PaillierPublicKey) DecodeSigned(m *big.Int) int64 {
	half := new(big.Int).Rsh(pk.N, 1)
	if m.Cmp(half) > 0 {
		return -new(big.Int).Sub(pk.N, m).Int64()
	}
	return m.Int64()
}

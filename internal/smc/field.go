// Package smc is the secure multiparty computation substrate behind the
// paper's cryptographic PPDM dimension ([18,19], Lindell & Pinkas): a prime
// field, additive and Shamir secret sharing, secure sum, the Paillier
// homomorphic cryptosystem, oblivious transfer, a two-party secure scalar
// product, and a secure ID3 protocol over horizontally partitioned data.
//
// All parties run in-process and exchange messages through a recording
// network; the evaluators of internal/core measure owner and user privacy
// from those transcripts only, honouring the semi-honest adversary model.
package smc

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// P is the field modulus, the Mersenne prime 2^61 − 1. It is large enough
// for the aggregate statistics the protocols share (counts and scaled sums)
// and small enough for fast uint64 arithmetic.
const P uint64 = (1 << 61) - 1

// Elem is an element of GF(P), always kept in [0, P).
type Elem uint64

// Reduce maps any uint64 into the field.
func Reduce(x uint64) Elem { return Elem(x % P) }

// Add returns a + b mod P.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b) // cannot overflow: both < 2^61
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Sub returns a − b mod P.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + Elem(P) - b
}

// Neg returns −a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P) - a
}

// Mul returns a·b mod P using 128-bit intermediate arithmetic.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// Reduce 128-bit value mod 2^61−1: x = hi·2^64 + lo.
	// 2^64 ≡ 2^3 (mod 2^61−1), so x ≡ hi·8 + lo (with further folding).
	r := (lo & P) + (lo >> 61) + ((hi << 3) & P) + (hi >> 58)
	r = (r & P) + (r >> 61)
	if r >= P {
		r -= P
	}
	return Elem(r)
}

// Pow returns a^e mod P.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a (a ≠ 0) via Fermat.
func Inv(a Elem) (Elem, error) {
	if a == 0 {
		return 0, fmt.Errorf("smc: zero has no inverse")
	}
	return Pow(a, P-2), nil
}

// RandomElem draws a uniform field element.
func RandomElem(rng *rand.Rand) Elem {
	for {
		v := rng.Uint64() & ((1 << 61) - 1)
		if v < P {
			return Elem(v)
		}
	}
}

// EncodeInt embeds a (possibly negative) integer into the field; values are
// taken mod P with negatives mapped to P − |v|.
func EncodeInt(v int64) Elem {
	if v >= 0 {
		return Reduce(uint64(v))
	}
	return Neg(Reduce(uint64(-v)))
}

// DecodeInt interprets a field element as a signed integer in
// (−P/2, P/2] — the inverse of EncodeInt for values of moderate magnitude.
func DecodeInt(e Elem) int64 {
	if uint64(e) > P/2 {
		return -int64(P - uint64(e))
	}
	return int64(e)
}

package smc

import (
	"testing"
	"testing/quick"

	"privacy3d/internal/dataset"
)

// Algebraic laws of GF(P), checked with testing/quick. These underpin every
// protocol in the package: a single broken law would silently corrupt
// shares.

func randTriple(seed uint64) (a, b, c Elem) {
	rng := dataset.NewRand(seed)
	return RandomElem(rng), RandomElem(rng), RandomElem(rng)
}

func TestFieldAdditionLaws(t *testing.T) {
	f := func(seed uint64) bool {
		a, b, c := randTriple(seed)
		if Add(a, b) != Add(b, a) {
			return false
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Add(a, 0) != a {
			return false
		}
		return Add(a, Neg(a)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFieldMultiplicationLaws(t *testing.T) {
	f := func(seed uint64) bool {
		a, b, c := randTriple(seed)
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		if Mul(a, 1) != a {
			return false
		}
		// Distributivity.
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFieldInverseLaw(t *testing.T) {
	f := func(seed uint64) bool {
		rng := dataset.NewRand(seed)
		a := RandomElem(rng)
		if a == 0 {
			a = 1
		}
		inv, err := Inv(a)
		return err == nil && Mul(a, inv) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSubIsAddNeg(t *testing.T) {
	f := func(seed uint64) bool {
		a, b, _ := randTriple(seed)
		return Sub(a, b) == Add(a, Neg(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAdditiveSharingReconstructsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := dataset.NewRand(seed)
		secret := RandomElem(rng)
		n := 2 + int(seed%6)
		shares, err := AdditiveShare(secret, n, rng)
		return err == nil && AdditiveReconstruct(shares) == secret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSecureSumMatchesPlainSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := dataset.NewRand(seed)
		n := 2 + int(seed%4)
		inputs := make([]Elem, n)
		seeds := make([]uint64, n)
		var want Elem
		for i := range inputs {
			inputs[i] = RandomElem(rng)
			want = Add(want, inputs[i])
			seeds[i] = seed + uint64(i)
		}
		nw, err := NewNetwork(n)
		if err != nil {
			return false
		}
		got, err := SecureSum(nw, inputs, seeds)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package smc

import (
	"fmt"
	"sync"
)

// Message is one point-to-point protocol message. Payloads are field
// elements (the protocols in this package exchange nothing else), so the
// transcript is exactly what a wire eavesdropper — or a semi-honest party
// keeping its view — would record.
type Message struct {
	From, To int
	Round    string
	Payload  []Elem
}

// Network connects n in-process parties with buffered channels and records
// every message in a transcript. It is safe for concurrent use by the
// parties it connects.
type Network struct {
	n     int
	links [][]chan []Elem // links[from][to]
	mu    sync.Mutex
	log   []Message
}

// NewNetwork creates a network for n parties (IDs 0..n-1).
func NewNetwork(n int) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("smc: network needs ≥ 2 parties, got %d", n)
	}
	links := make([][]chan []Elem, n)
	for i := range links {
		links[i] = make([]chan []Elem, n)
		for j := range links[i] {
			if i != j {
				links[i][j] = make(chan []Elem, 64)
			}
		}
	}
	return &Network{n: n, links: links}, nil
}

// Parties returns the number of connected parties.
func (nw *Network) Parties() int { return nw.n }

// Send transmits a payload from one party to another, recording it.
func (nw *Network) Send(from, to int, round string, payload []Elem) error {
	if from == to || from < 0 || to < 0 || from >= nw.n || to >= nw.n {
		return fmt.Errorf("smc: invalid send %d → %d", from, to)
	}
	cp := append([]Elem(nil), payload...)
	nw.mu.Lock()
	nw.log = append(nw.log, Message{From: from, To: to, Round: round, Payload: cp})
	nw.mu.Unlock()
	nw.links[from][to] <- cp
	return nil
}

// Recv blocks until a payload arrives from the given party.
func (nw *Network) Recv(to, from int) ([]Elem, error) {
	if from == to || from < 0 || to < 0 || from >= nw.n || to >= nw.n {
		return nil, fmt.Errorf("smc: invalid recv %d ← %d", to, from)
	}
	return <-nw.links[from][to], nil
}

// Transcript returns a copy of every message sent so far.
func (nw *Network) Transcript() []Message {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([]Message, len(nw.log))
	copy(out, nw.log)
	return out
}

// ViewOf returns the messages party id sent or received — its protocol view,
// the object the semi-honest security argument is about.
func (nw *Network) ViewOf(id int) []Message {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var out []Message
	for _, m := range nw.log {
		if m.From == id || m.To == id {
			out = append(out, m)
		}
	}
	return out
}

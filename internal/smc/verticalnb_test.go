package smc

import (
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/mining"
)

// verticalSplit builds a labeled dataset and splits its feature columns
// between two parties, both keeping the shared label.
func verticalSplit(n int, seed uint64) (full, partA, partB *dataset.Dataset) {
	rng := dataset.NewRand(seed)
	fullAttrs := []dataset.Attribute{
		{Name: "clinical_x", Kind: dataset.Numeric},
		{Name: "clinical_y", Kind: dataset.Numeric},
		{Name: "demo_age", Kind: dataset.Numeric},
		{Name: "demo_region", Kind: dataset.Nominal},
		{Name: "label", Kind: dataset.Nominal},
	}
	full = dataset.New(fullAttrs...)
	partA = dataset.New(fullAttrs[0], fullAttrs[1], fullAttrs[4])
	partB = dataset.New(fullAttrs[2], fullAttrs[3], fullAttrs[4])
	regions := []string{"north", "south"}
	for i := 0; i < n; i++ {
		cx := dataset.Normal(rng, 10, 3)
		cy := dataset.Normal(rng, 5, 2)
		age := dataset.Normal(rng, 45, 12)
		region := regions[rng.IntN(2)]
		score := 0.5*cx + 0.3*cy + 0.1*age
		label := "lo"
		if score+dataset.Normal(rng, 0, 0.6) > 11 {
			label = "hi"
		}
		full.MustAppend(cx, cy, age, region, label)
		partA.MustAppend(cx, cy, label)
		partB.MustAppend(age, region, label)
	}
	return full, partA, partB
}

func TestVerticalNBMatchesJointModel(t *testing.T) {
	full, a, b := verticalSplit(1200, 3)
	parties, err := TrainVerticalNB([]*dataset.Dataset{a, b}, "label")
	if err != nil {
		t.Fatal(err)
	}
	joint, err := mining.TrainNaiveBayes(full, "label")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	const probes = 60
	for row := 0; row < probes; row++ {
		got, err := ClassifyVertical(nw, parties, parties[0].Classes(), row, uint64(row))
		if err != nil {
			t.Fatal(err)
		}
		if got == joint.Predict(full, row) {
			agree++
		}
	}
	// The secure protocol computes the same naive Bayes decision up to
	// fixed-point rounding; demand near-perfect agreement.
	if agree < probes-2 {
		t.Errorf("secure vertical NB agreed with joint model on %d/%d probes", agree, probes)
	}
	if len(nw.Transcript()) == 0 {
		t.Error("no protocol traffic recorded")
	}
}

func TestVerticalNBAccuracy(t *testing.T) {
	_, a, b := verticalSplit(1500, 5)
	test, _, _ := verticalSplit(400, 6)
	parties, err := TrainVerticalNB([]*dataset.Dataset{a, b}, "label")
	if err != nil {
		t.Fatal(err)
	}
	// Classification needs the test features split the same way.
	_, ta, tb := verticalSplit(400, 6)
	testParties := []*VerticalNBParty{
		{nb: parties[0].nb, d: ta},
		{nb: parties[1].nb, d: tb},
	}
	nw, _ := NewNetwork(2)
	hits := 0
	const probes = 80
	tj := test.Index("label")
	for row := 0; row < probes; row++ {
		got, err := ClassifyVertical(nw, testParties, parties[0].Classes(), row, uint64(row)*7)
		if err != nil {
			t.Fatal(err)
		}
		if got == test.Cat(row, tj) {
			hits++
		}
	}
	if float64(hits)/probes < 0.75 {
		t.Errorf("secure vertical NB accuracy = %d/%d, want ≥ 0.75", hits, probes)
	}
}

func TestVerticalNBTranscriptHidesScores(t *testing.T) {
	_, a, b := verticalSplit(500, 9)
	parties, err := TrainVerticalNB([]*dataset.Dataset{a, b}, "label")
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := NewNetwork(2)
	if _, err := ClassifyVertical(nw, parties, parties[0].Classes(), 0, 11); err != nil {
		t.Fatal(err)
	}
	// Share-round payloads must be uniform field elements, not the small
	// fixed-point scores (|score|·2^20 ≲ 2^27 ≪ 2^61).
	small := 0
	total := 0
	for _, m := range nw.Transcript() {
		if m.Round != "share" {
			continue
		}
		for _, e := range m.Payload {
			total++
			if v := DecodeInt(e); v > -(1<<30) && v < 1<<30 {
				small++
			}
		}
	}
	if total == 0 {
		t.Fatal("no share traffic")
	}
	if small > 0 {
		t.Errorf("%d of %d share payloads look like raw scores", small, total)
	}
}

func TestVerticalNBValidation(t *testing.T) {
	_, a, b := verticalSplit(100, 13)
	if _, err := TrainVerticalNB([]*dataset.Dataset{a}, "label"); err == nil {
		t.Error("accepted a single party")
	}
	short := a.Select([]int{0, 1, 2})
	if _, err := TrainVerticalNB([]*dataset.Dataset{short, b}, "label"); err == nil {
		t.Error("accepted misaligned row counts")
	}
	if _, err := TrainVerticalNB([]*dataset.Dataset{a, b}, "nope"); err == nil {
		t.Error("accepted missing target")
	}
	parties, _ := TrainVerticalNB([]*dataset.Dataset{a, b}, "label")
	nw, _ := NewNetwork(3)
	if _, err := ClassifyVertical(nw, parties, parties[0].Classes(), 0, 1); err == nil {
		t.Error("accepted party/network mismatch")
	}
	nw2, _ := NewNetwork(2)
	if _, err := ClassifyVertical(nw2, parties, nil, 0, 1); err == nil {
		t.Error("accepted empty class list")
	}
}

package smc

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// SecureScalarProduct is the standard two-party Paillier protocol for
// vertically partitioned PPDM: Alice holds x, Bob holds y, and the parties
// end with additive shares of ⟨x, y⟩ — Alice learns sA, Bob holds sB with
// sA + sB = ⟨x, y⟩, and neither learns the other's vector.
//
// Flow: Alice sends Enc(x_i); Bob computes Enc(⟨x,y⟩) homomorphically,
// blinds it with a random r (his share is −r), and returns it; Alice
// decrypts her share.
type SecureScalarProduct struct {
	Key *PaillierPrivateKey // Alice's key pair
}

// NewSecureScalarProduct generates a protocol instance with a fresh key of
// the given modulus size.
func NewSecureScalarProduct(bits int) (*SecureScalarProduct, error) {
	key, err := GeneratePaillier(bits)
	if err != nil {
		return nil, err
	}
	return &SecureScalarProduct{Key: key}, nil
}

// Run executes the protocol for integer vectors x (Alice's) and y (Bob's)
// and returns the two output shares. The magnitude of the true scalar
// product must stay below n/4 for correct signed decoding.
func (sp *SecureScalarProduct) Run(x, y []int64) (aliceShare, bobShare int64, err error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, 0, fmt.Errorf("smc: scalar product needs equal non-empty vectors (%d vs %d)", len(x), len(y))
	}
	pk := &sp.Key.PaillierPublicKey
	// Alice → Bob: encryptions of x.
	cx := make([]*big.Int, len(x))
	for i, v := range x {
		c, err := pk.Encrypt(pk.EncodeSigned(v))
		if err != nil {
			return 0, 0, err
		}
		cx[i] = c
	}
	// Bob: Enc(Σ x_i·y_i) = Π Enc(x_i)^{y_i}, blinded with r.
	acc, err := pk.Encrypt(big.NewInt(0))
	if err != nil {
		return 0, 0, err
	}
	for i, c := range cx {
		acc = pk.AddCipher(acc, pk.MulConst(c, big.NewInt(y[i])))
	}
	// Blinding r chosen below 2^62 so both shares fit in int64 while still
	// statistically hiding scalar products of moderate magnitude (callers
	// keep |⟨x,y⟩| ≪ 2^62; the ciphertext modulus is far larger).
	rBound := new(big.Int).Lsh(big.NewInt(1), 62)
	r, err := rand.Int(rand.Reader, rBound)
	if err != nil {
		return 0, 0, fmt.Errorf("smc: scalar product blinding: %w", err)
	}
	cr, err := pk.Encrypt(new(big.Int).Mod(r, pk.N))
	if err != nil {
		return 0, 0, err
	}
	blinded := pk.AddCipher(acc, cr)
	// Alice decrypts s + r; her share is that value, Bob's is −r.
	m, err := sp.Key.Decrypt(blinded)
	if err != nil {
		return 0, 0, err
	}
	// Decode s + r as a signed value. r < n/8 and |s| < n/4 keeps it exact.
	sPlusR := pk.DecodeSigned(m)
	return sPlusR, -r.Int64(), nil
}

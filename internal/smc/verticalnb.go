package smc

import (
	"fmt"
	"math"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/mining"
)

// Vertically partitioned secure classification: two parties hold disjoint
// feature sets of the same respondents (e.g. a hospital holds clinical
// attributes, an insurer holds demographic ones) plus the shared class
// label, and want to classify new records with a joint naive Bayes model
// without exchanging their features. Each party trains a local model on its
// own columns; classification sums per-class log-likelihood shares through
// the secure-sum protocol, so a party learns only the joint argmax, never
// the other party's partial scores (beyond what the output implies).
//
// This is the vertical-partition counterpart of SecureID3 and rounds out
// the crypto-PPDM dimension: [18,19] treat horizontal partitioning; the
// database-community line (Vaidya & Clifton) treats vertical.

// VerticalNBParty is one party's share of the model.
type VerticalNBParty struct {
	nb *mining.NaiveBayes
	d  *dataset.Dataset
}

// scoreScale fixes the fixed-point encoding of log-likelihoods in the field.
const scoreScale = 1 << 20

// TrainVerticalNB trains each party's local model. All parts must carry the
// shared target column and the same number of rows (the same respondents in
// the same order — record alignment is assumed done, e.g. with the PSI
// protocol in this package).
func TrainVerticalNB(parts []*dataset.Dataset, target string) ([]*VerticalNBParty, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("smc: vertical NB needs ≥ 2 parties, got %d", len(parts))
	}
	rows := parts[0].Rows()
	for i, p := range parts {
		if p.Rows() != rows {
			return nil, fmt.Errorf("smc: party %d has %d rows, want %d (records must be aligned)", i, p.Rows(), rows)
		}
		if p.Index(target) < 0 {
			return nil, fmt.Errorf("smc: party %d lacks the shared target %q", i, target)
		}
	}
	out := make([]*VerticalNBParty, len(parts))
	for i, p := range parts {
		nb, err := mining.TrainNaiveBayes(p, target)
		if err != nil {
			return nil, fmt.Errorf("smc: train party %d: %w", i, err)
		}
		out[i] = &VerticalNBParty{nb: nb, d: p}
	}
	return out, nil
}

// ClassifyVertical jointly classifies record row (present at every party)
// over the given network: for each candidate class, the parties secure-sum
// their local log-likelihood shares; the class with the maximal joint score
// wins. The returned transcript-bearing network is the caller's.
func ClassifyVertical(nw *Network, parties []*VerticalNBParty, classes []string, row int, seed uint64) (string, error) {
	if len(parties) != nw.Parties() {
		return "", fmt.Errorf("smc: %d parties but network has %d", len(parties), nw.Parties())
	}
	if len(classes) == 0 {
		return "", fmt.Errorf("smc: no candidate classes")
	}
	best := ""
	bestScore := int64(math.MinInt64)
	ordered := append([]string(nil), classes...)
	sort.Strings(ordered)
	for ci, class := range ordered {
		inputs := make([]Elem, len(parties))
		seeds := make([]uint64, len(parties))
		for pi, party := range parties {
			ll := party.localLogLikelihood(row, class, len(parties))
			// Fixed-point encode; clamp extreme values into the safe
			// integer range.
			v := int64(ll * scoreScale)
			inputs[pi] = EncodeInt(v)
			seeds[pi] = seed ^ uint64(ci+1)<<16 ^ uint64(pi+1)
		}
		total, err := SecureSum(nw, inputs, seeds)
		if err != nil {
			return "", err
		}
		if s := DecodeInt(total); s > bestScore {
			best, bestScore = class, s
		}
	}
	return best, nil
}

// localLogLikelihood computes this party's additive share of the joint
// naive Bayes score: its features' conditional log-likelihoods plus a
// 1/nParties share of the prior, so the joint sum counts the prior once
// (all parties hold the identical label column, hence identical priors).
func (p *VerticalNBParty) localLogLikelihood(row int, class string, nParties int) float64 {
	return p.nb.LogScoreFeaturesOnly(p.d, row, class) + p.nb.LogPrior(class)/float64(nParties)
}

// Classes exposes the party's class labels (identical across parties).
func (p *VerticalNBParty) Classes() []string { return p.nb.Classes() }

package smc

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// Secure comparison — Yao's millionaires' problem — built from 1-out-of-2
// oblivious transfer: Bob prepares, for every possible value a of Alice's
// input over a small domain, the answer bit [a > b]; the table is key-wrapped
// so that Alice can open exactly one row, selected bit-by-bit through ℓ
// oblivious transfers (the standard 1-of-N OT from log N 1-of-2 OTs).
// Alice learns only whether her value exceeds Bob's; Bob learns nothing.

// SecureCompare runs the protocol for a, b in [0, 2^bits). bits ≤ 16 keeps
// the table practical (the construction is exponential in bits by design —
// it trades computation for conceptual simplicity, as in the original Yao
// formulation).
func SecureCompare(a, b uint32, bits int) (aliceGreater bool, err error) {
	if bits < 1 || bits > 16 {
		return false, fmt.Errorf("smc: compare supports 1..16 bits, got %d", bits)
	}
	n := uint32(1) << bits
	if a >= n || b >= n {
		return false, fmt.Errorf("smc: inputs must be below 2^%d", bits)
	}

	// Bob's side: per-bit key pairs and the wrapped truth table.
	type keyPair struct{ k0, k1 []byte }
	keys := make([]keyPair, bits)
	for i := range keys {
		keys[i] = keyPair{randomKey(), randomKey()}
	}
	table := make([][]byte, n)
	for idx := uint32(0); idx < n; idx++ {
		val := byte(0)
		if idx > b {
			val = 1
		}
		// Wrap the answer bit under the keys matching idx's bits.
		pad := byte(0)
		for i := 0; i < bits; i++ {
			k := keys[i].k0
			if idx>>i&1 == 1 {
				k = keys[i].k1
			}
			pad ^= deriveByte(k, idx)
		}
		table[idx] = []byte{val ^ pad}
	}

	// Alice obtains, via one OT per bit, the key matching each bit of a.
	aliceKeys := make([][]byte, bits)
	for i := 0; i < bits; i++ {
		sender := &OTSender{M0: keys[i].k0, M1: keys[i].k1}
		m1, err := sender.OTStart()
		if err != nil {
			return false, err
		}
		choice := int(a >> i & 1)
		m2, st, err := OTChoose(m1, choice)
		if err != nil {
			return false, err
		}
		m3, err := sender.OTTransfer(m1, m2)
		if err != nil {
			return false, err
		}
		aliceKeys[i] = st.OTFinish(m3)
	}

	// Alice opens exactly row a.
	pad := byte(0)
	for i := 0; i < bits; i++ {
		pad ^= deriveByte(aliceKeys[i], a)
	}
	return table[a][0]^pad == 1, nil
}

func randomKey() []byte {
	k := make([]byte, 16)
	if _, err := rand.Read(k); err != nil {
		// crypto/rand failure is unrecoverable process state.
		panic(fmt.Sprintf("smc: randomness unavailable: %v", err))
	}
	return k
}

// deriveByte expands a key and a row index into one pad byte.
func deriveByte(key []byte, row uint32) byte {
	h := sha256.New()
	h.Write(key)
	h.Write([]byte{byte(row), byte(row >> 8), byte(row >> 16), byte(row >> 24)})
	return h.Sum(nil)[0]
}

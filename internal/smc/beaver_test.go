package smc

import (
	"testing"
	"testing/quick"

	"privacy3d/internal/dataset"
)

func TestSecureMultiplyCorrect(t *testing.T) {
	rng := dataset.NewRand(1)
	x := EncodeInt(1234)
	y := EncodeInt(5678)
	const parties = 3
	xs, err := AdditiveShare(x, parties, rng)
	if err != nil {
		t.Fatal(err)
	}
	ys, err := AdditiveShare(y, parties, rng)
	if err != nil {
		t.Fatal(err)
	}
	triples, err := DealBeaverTriples(parties, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := make([]BeaverTriple, parties)
	for p := range tr {
		tr[p] = triples[p][0]
	}
	nw, err := NewNetwork(parties)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := SecureMultiply(nw, xs, ys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := AdditiveReconstruct(zs); got != Mul(x, y) {
		t.Errorf("secure product = %d, want %d", got, Mul(x, y))
	}
}

func TestSecureMultiplyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := dataset.NewRand(seed)
		parties := 2 + int(seed%3)
		x, y := RandomElem(rng), RandomElem(rng)
		xs, err := AdditiveShare(x, parties, rng)
		if err != nil {
			return false
		}
		ys, err := AdditiveShare(y, parties, rng)
		if err != nil {
			return false
		}
		triples, err := DealBeaverTriples(parties, 1, rng)
		if err != nil {
			return false
		}
		tr := make([]BeaverTriple, parties)
		for p := range tr {
			tr[p] = triples[p][0]
		}
		nw, err := NewNetwork(parties)
		if err != nil {
			return false
		}
		zs, err := SecureMultiply(nw, xs, ys, tr)
		return err == nil && AdditiveReconstruct(zs) == Mul(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSecureMultiplyOpeningsAreMasked(t *testing.T) {
	// The opened values d = x−a and e = y−b must not equal the inputs
	// themselves (a, b are uniform). Run once and inspect the transcript.
	rng := dataset.NewRand(9)
	x := EncodeInt(42)
	y := EncodeInt(99)
	xs, _ := AdditiveShare(x, 2, rng)
	ys, _ := AdditiveShare(y, 2, rng)
	triples, _ := DealBeaverTriples(2, 1, rng)
	nw, _ := NewNetwork(2)
	if _, err := SecureMultiply(nw, xs, ys, []BeaverTriple{triples[0][0], triples[1][0]}); err != nil {
		t.Fatal(err)
	}
	for _, m := range nw.Transcript() {
		for _, e := range m.Payload {
			if e == x || e == y {
				t.Error("an unmasked input crossed the wire")
			}
		}
	}
}

func TestBeaverDealValidation(t *testing.T) {
	rng := dataset.NewRand(3)
	if _, err := DealBeaverTriples(1, 1, rng); err == nil {
		t.Error("accepted 1 party")
	}
	if _, err := DealBeaverTriples(2, 0, rng); err == nil {
		t.Error("accepted 0 triples")
	}
	nw, _ := NewNetwork(2)
	if _, err := SecureMultiply(nw, []Elem{1}, []Elem{1, 2}, []BeaverTriple{{}, {}}); err == nil {
		t.Error("accepted mismatched shares")
	}
}

func TestBeaverTriplesConsistent(t *testing.T) {
	rng := dataset.NewRand(7)
	triples, err := DealBeaverTriples(4, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 8; ti++ {
		var a, b, c Elem
		for p := 0; p < 4; p++ {
			a = Add(a, triples[p][ti].A)
			b = Add(b, triples[p][ti].B)
			c = Add(c, triples[p][ti].C)
		}
		if Mul(a, b) != c {
			t.Fatalf("triple %d inconsistent", ti)
		}
	}
}

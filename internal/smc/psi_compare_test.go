package smc

import (
	"sort"
	"testing"

	"privacy3d/internal/dataset"
)

func TestPSIFindsExactIntersection(t *testing.T) {
	alice, err := NewPSIParty([]string{"patient-17", "patient-03", "patient-42", "patient-99"})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewPSIParty([]string{"patient-42", "patient-55", "patient-03"})
	if err != nil {
		t.Fatal(err)
	}
	got := Intersect(alice, bob)
	sort.Strings(got)
	want := []string{"patient-03", "patient-42"}
	if len(got) != len(want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersection = %v, want %v", got, want)
		}
	}
}

func TestPSIDisjointSets(t *testing.T) {
	alice, _ := NewPSIParty([]string{"a", "b"})
	bob, _ := NewPSIParty([]string{"c", "d"})
	if got := Intersect(alice, bob); len(got) != 0 {
		t.Errorf("disjoint intersection = %v", got)
	}
}

func TestPSIBlindedValuesHideInputs(t *testing.T) {
	// The blinded flow must differ between two parties holding the same
	// set (fresh exponents), so observing a flow reveals nothing about
	// membership without the exponent.
	p1, _ := NewPSIParty([]string{"secret"})
	p2, _ := NewPSIParty([]string{"secret"})
	if p1.Blind()[0].Cmp(p2.Blind()[0]) == 0 {
		t.Error("two parties produced identical blinded values for the same input")
	}
}

func TestPSIValidation(t *testing.T) {
	if _, err := NewPSIParty(nil); err == nil {
		t.Error("accepted empty set")
	}
}

func TestSecureCompareExhaustiveSmallDomain(t *testing.T) {
	// 4-bit domain: check every (a, b) pair.
	for a := uint32(0); a < 16; a++ {
		for b := uint32(0); b < 16; b++ {
			got, err := SecureCompare(a, b, 4)
			if err != nil {
				t.Fatalf("compare(%d,%d): %v", a, b, err)
			}
			if got != (a > b) {
				t.Errorf("compare(%d,%d) = %v, want %v", a, b, got, a > b)
			}
		}
	}
}

func TestSecureCompareRandomised(t *testing.T) {
	rng := dataset.NewRand(3)
	for trial := 0; trial < 10; trial++ {
		a := uint32(rng.IntN(1 << 10))
		b := uint32(rng.IntN(1 << 10))
		got, err := SecureCompare(a, b, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got != (a > b) {
			t.Errorf("compare(%d,%d) = %v", a, b, got)
		}
	}
}

func TestSecureCompareValidation(t *testing.T) {
	if _, err := SecureCompare(1, 1, 0); err == nil {
		t.Error("accepted 0 bits")
	}
	if _, err := SecureCompare(1, 1, 20); err == nil {
		t.Error("accepted 20 bits")
	}
	if _, err := SecureCompare(16, 1, 4); err == nil {
		t.Error("accepted out-of-domain input")
	}
}

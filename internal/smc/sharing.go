package smc

import (
	"fmt"
	"math/rand/v2"
)

// AdditiveShare splits secret into n uniformly random additive shares
// summing to the secret mod P.
func AdditiveShare(secret Elem, n int, rng *rand.Rand) ([]Elem, error) {
	if n < 2 {
		return nil, fmt.Errorf("smc: additive sharing needs ≥ 2 shares, got %d", n)
	}
	shares := make([]Elem, n)
	acc := Elem(0)
	for i := 0; i < n-1; i++ {
		shares[i] = RandomElem(rng)
		acc = Add(acc, shares[i])
	}
	shares[n-1] = Sub(secret, acc)
	return shares, nil
}

// AdditiveReconstruct sums shares back into the secret.
func AdditiveReconstruct(shares []Elem) Elem {
	var s Elem
	for _, sh := range shares {
		s = Add(s, sh)
	}
	return s
}

// ShamirShare splits secret into n shares with threshold t (any t shares
// reconstruct; fewer reveal nothing). Share i is (x=i+1, f(i+1)) for a
// random degree-(t−1) polynomial f with f(0) = secret.
func ShamirShare(secret Elem, n, t int, rng *rand.Rand) ([]Elem, error) {
	if t < 1 || t > n {
		return nil, fmt.Errorf("smc: threshold %d out of range [1,%d]", t, n)
	}
	if uint64(n) >= P {
		return nil, fmt.Errorf("smc: too many shares")
	}
	coeffs := make([]Elem, t)
	coeffs[0] = secret
	for i := 1; i < t; i++ {
		coeffs[i] = RandomElem(rng)
	}
	shares := make([]Elem, n)
	for i := 0; i < n; i++ {
		x := Elem(uint64(i + 1))
		// Horner evaluation.
		v := Elem(0)
		for c := t - 1; c >= 0; c-- {
			v = Add(Mul(v, x), coeffs[c])
		}
		shares[i] = v
	}
	return shares, nil
}

// ShamirReconstruct recovers the secret from t shares given by their
// 1-based indices (the x-coordinates) and values.
func ShamirReconstruct(indices []int, values []Elem) (Elem, error) {
	if len(indices) != len(values) || len(indices) == 0 {
		return 0, fmt.Errorf("smc: need equal non-zero numbers of indices and values")
	}
	seen := map[int]bool{}
	for _, ix := range indices {
		if ix < 1 {
			return 0, fmt.Errorf("smc: share index %d must be ≥ 1", ix)
		}
		if seen[ix] {
			return 0, fmt.Errorf("smc: duplicate share index %d", ix)
		}
		seen[ix] = true
	}
	// Lagrange interpolation at x = 0.
	var secret Elem
	for i := range indices {
		xi := Elem(uint64(indices[i]))
		num, den := Elem(1), Elem(1)
		for j := range indices {
			if j == i {
				continue
			}
			xj := Elem(uint64(indices[j]))
			num = Mul(num, Neg(xj))     // (0 − xj)
			den = Mul(den, Sub(xi, xj)) // (xi − xj)
		}
		invDen, err := Inv(den)
		if err != nil {
			return 0, err
		}
		secret = Add(secret, Mul(values[i], Mul(num, invDen)))
	}
	return secret, nil
}

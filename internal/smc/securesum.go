package smc

import (
	"fmt"
	"math/rand/v2"
	"sync"
)

// SecureSum computes the sum of the parties' private inputs using additive
// secret sharing: each party splits its input into one share per party,
// distributes them, locally sums the shares it received, and broadcasts the
// partial sum. Every value on the wire except the final partial sums is
// uniformly random, so no party (and no wire observer) learns anything
// beyond the total — the owner-privacy guarantee the paper ascribes to
// cryptographic PPDM.
//
// inputs[i] is party i's private value. The function runs one goroutine per
// party over the given network and returns the common output. Each party
// seeds its own PRNG from seeds[i] (crypto-grade randomness is not needed
// for the reproducibility experiments, but callers can pass arbitrary
// seeds).
func SecureSum(nw *Network, inputs []Elem, seeds []uint64) (Elem, error) {
	n := nw.Parties()
	if len(inputs) != n || len(seeds) != n {
		return 0, fmt.Errorf("smc: need %d inputs and seeds, got %d and %d", n, len(inputs), len(seeds))
	}
	results := make([]Elem, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = secureSumParty(nw, id, inputs[id], rand.New(rand.NewPCG(seeds[id], 0x5eed)))
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	// All parties obtain the same total; return party 0's.
	for id := 1; id < n; id++ {
		if results[id] != results[0] {
			return 0, fmt.Errorf("smc: parties disagree on the sum")
		}
	}
	return results[0], nil
}

func secureSumParty(nw *Network, id int, input Elem, rng *rand.Rand) (Elem, error) {
	n := nw.Parties()
	shares, err := AdditiveShare(input, n, rng)
	if err != nil {
		return 0, err
	}
	// Distribute shares (keep own).
	for to := 0; to < n; to++ {
		if to == id {
			continue
		}
		if err := nw.Send(id, to, "share", []Elem{shares[to]}); err != nil {
			return 0, err
		}
	}
	partial := shares[id]
	for from := 0; from < n; from++ {
		if from == id {
			continue
		}
		p, err := nw.Recv(id, from)
		if err != nil {
			return 0, err
		}
		if len(p) != 1 {
			return 0, fmt.Errorf("smc: malformed share from %d", from)
		}
		partial = Add(partial, p[0])
	}
	// Broadcast partial sums.
	for to := 0; to < n; to++ {
		if to == id {
			continue
		}
		if err := nw.Send(id, to, "partial", []Elem{partial}); err != nil {
			return 0, err
		}
	}
	total := partial
	for from := 0; from < n; from++ {
		if from == id {
			continue
		}
		p, err := nw.Recv(id, from)
		if err != nil {
			return 0, err
		}
		if len(p) != 1 {
			return 0, fmt.Errorf("smc: malformed partial from %d", from)
		}
		total = Add(total, p[0])
	}
	return total, nil
}

// SecureSumVector runs SecureSum coordinate-wise over vectors of private
// inputs (inputs[i] is party i's vector; all must share one length). It is
// the aggregation primitive secure ID3 uses for per-class count vectors.
func SecureSumVector(nw *Network, inputs [][]Elem, seeds []uint64) ([]Elem, error) {
	n := nw.Parties()
	if len(inputs) != n {
		return nil, fmt.Errorf("smc: need %d input vectors, got %d", n, len(inputs))
	}
	width := len(inputs[0])
	for i, v := range inputs {
		if len(v) != width {
			return nil, fmt.Errorf("smc: party %d vector has %d entries, want %d", i, len(v), width)
		}
	}
	out := make([]Elem, width)
	for c := 0; c < width; c++ {
		col := make([]Elem, n)
		colSeeds := make([]uint64, n)
		for i := range col {
			col[i] = inputs[i][c]
			colSeeds[i] = seeds[i]*1000003 + uint64(c)
		}
		s, err := SecureSum(nw, col, colSeeds)
		if err != nil {
			return nil, err
		}
		out[c] = s
	}
	return out, nil
}

package smc

import (
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/mining"
)

// categoricalPatients builds a categorical-only clinical dataset where the
// outcome depends on two attributes, split horizontally into nParts.
func categoricalPatients(n int, seed uint64, nParts int) (union *dataset.Dataset, parts []*dataset.Dataset) {
	rng := dataset.NewRand(seed)
	attrs := []dataset.Attribute{
		{Name: "smoker", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal},
		{Name: "bmi_band", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal},
		{Name: "age_band", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal},
		{Name: "hypertension", Role: dataset.Confidential, Kind: dataset.Nominal},
	}
	union = dataset.New(attrs...)
	parts = make([]*dataset.Dataset, nParts)
	for p := range parts {
		parts[p] = dataset.New(attrs...)
	}
	bmis := []string{"low", "mid", "high"}
	ages := []string{"young", "mid", "old"}
	for i := 0; i < n; i++ {
		smoker := "no"
		if rng.Float64() < 0.4 {
			smoker = "yes"
		}
		bmi := bmis[rng.IntN(3)]
		age := ages[rng.IntN(3)]
		risk := 0.1
		if smoker == "yes" {
			risk += 0.4
		}
		if bmi == "high" {
			risk += 0.35
		}
		ht := "N"
		if rng.Float64() < risk {
			ht = "Y"
		}
		union.MustAppend(smoker, bmi, age, ht)
		parts[i%nParts].MustAppend(smoker, bmi, age, ht)
	}
	return union, parts
}

func TestSecureID3MatchesCentralized(t *testing.T) {
	// The crypto-PPDM promise: the distributed protocol computes exactly
	// the analysis a trusted third party would, without pooling data.
	union, parts := categoricalPatients(600, 5, 3)
	secure, nw, err := SecureID3(parts, "hypertension", 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	central, err := mining.TrainTree(union, "hypertension", mining.TreeOptions{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Same predictions on every record.
	for i := 0; i < union.Rows(); i++ {
		if secure.Predict(union, i) != central.Predict(union, i) {
			t.Fatalf("prediction mismatch at record %d: secure %q vs central %q",
				i, secure.Predict(union, i), central.Predict(union, i))
		}
	}
	if len(nw.Transcript()) == 0 {
		t.Error("no protocol messages recorded")
	}
}

func TestSecureID3AccuratePredictions(t *testing.T) {
	_, parts := categoricalPatients(900, 7, 3)
	test, _ := categoricalPatients(400, 8, 2)
	secure, _, err := SecureID3(parts, "hypertension", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := secure.Accuracy(test, "hypertension")
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("secure ID3 accuracy = %v, want ≥ 0.6", acc)
	}
}

func TestSecureID3TranscriptSharesAreNotLocalCounts(t *testing.T) {
	// The share-round payloads are uniform field elements, not the small
	// integers local counts would be: overwhelmingly they exceed any
	// realistic count. This is the measurable owner-privacy property.
	_, parts := categoricalPatients(300, 11, 2)
	_, nw, err := SecureID3(parts, "hypertension", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var shareMsgs, smallPayloads int
	for _, m := range nw.Transcript() {
		if m.Round != "share" {
			continue
		}
		for _, e := range m.Payload {
			shareMsgs++
			if uint64(e) < 1000 {
				smallPayloads++
			}
		}
	}
	if shareMsgs == 0 {
		t.Fatal("no share messages found")
	}
	if frac := float64(smallPayloads) / float64(shareMsgs); frac > 0.01 {
		t.Errorf("%.2f%% of share payloads look like raw counts — masking broken", 100*frac)
	}
}

func TestSecureID3Validation(t *testing.T) {
	union, parts := categoricalPatients(50, 13, 2)
	if _, _, err := SecureID3(parts[:1], "hypertension", 4, 1); err == nil {
		t.Error("accepted a single party")
	}
	if _, _, err := SecureID3(parts, "nope", 4, 1); err == nil {
		t.Error("accepted unknown target")
	}
	// Numeric attribute rejected.
	numAttrs := append([]dataset.Attribute{{Name: "x", Kind: dataset.Numeric}}, union.Attrs()...)
	bad1 := dataset.New(numAttrs...)
	bad1.MustAppend(1.0, "no", "low", "young", "N")
	bad2 := dataset.New(numAttrs...)
	bad2.MustAppend(2.0, "yes", "mid", "old", "Y")
	if _, _, err := SecureID3([]*dataset.Dataset{bad1, bad2}, "hypertension", 4, 1); err == nil {
		t.Error("accepted numeric attribute")
	}
	// Schema mismatch.
	other := dataset.New(dataset.Attribute{Name: "z", Kind: dataset.Nominal})
	other.MustAppend("v")
	if _, _, err := SecureID3([]*dataset.Dataset{parts[0], other}, "hypertension", 4, 1); err == nil {
		t.Error("accepted schema mismatch")
	}
}

package smc

import (
	"fmt"
	"math/rand/v2"
	"sync"
)

// Beaver-triple multiplication: with addition of additive shares being
// local, secure multiplication is the missing primitive for evaluating
// arbitrary arithmetic circuits over shared values. A trusted dealer (or an
// offline preprocessing phase) hands each party shares of a random triple
// (a, b, c) with c = a·b; the parties then open d = x−a and e = y−b and
// compute shares of x·y = c + d·b + e·a + d·e locally. The opened values
// are uniformly random, so the transcript leaks nothing about x or y.

// BeaverTriple is one party's share of a multiplication triple.
type BeaverTriple struct {
	A, B, C Elem
}

// DealBeaverTriples plays the trusted dealer: it returns per-party shares
// of n random triples.
func DealBeaverTriples(parties, n int, rng *rand.Rand) ([][]BeaverTriple, error) {
	if parties < 2 {
		return nil, fmt.Errorf("smc: beaver triples need ≥ 2 parties, got %d", parties)
	}
	if n < 1 {
		return nil, fmt.Errorf("smc: need ≥ 1 triple, got %d", n)
	}
	out := make([][]BeaverTriple, parties)
	for p := range out {
		out[p] = make([]BeaverTriple, n)
	}
	for t := 0; t < n; t++ {
		a := RandomElem(rng)
		b := RandomElem(rng)
		c := Mul(a, b)
		as, err := AdditiveShare(a, parties, rng)
		if err != nil {
			return nil, err
		}
		bs, err := AdditiveShare(b, parties, rng)
		if err != nil {
			return nil, err
		}
		cs, err := AdditiveShare(c, parties, rng)
		if err != nil {
			return nil, err
		}
		for p := 0; p < parties; p++ {
			out[p][t] = BeaverTriple{A: as[p], B: bs[p], C: cs[p]}
		}
	}
	return out, nil
}

// SecureMultiply multiplies two additively shared values: party i holds
// xShares[i], yShares[i] and triples[i]; all parties run concurrently over
// the network and each ends with a share of x·y (the function returns the
// shares in party order). Round label "open" carries the masked openings
// d = x−a and e = y−b, which are uniform.
func SecureMultiply(nw *Network, xShares, yShares []Elem, triples []BeaverTriple) ([]Elem, error) {
	n := nw.Parties()
	if len(xShares) != n || len(yShares) != n || len(triples) != n {
		return nil, fmt.Errorf("smc: need %d shares and triples", n)
	}
	out := make([]Elem, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out[id], errs[id] = beaverParty(nw, id, xShares[id], yShares[id], triples[id])
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func beaverParty(nw *Network, id int, x, y Elem, t BeaverTriple) (Elem, error) {
	n := nw.Parties()
	dShare := Sub(x, t.A)
	eShare := Sub(y, t.B)
	// Broadcast local d and e shares; everyone reconstructs d and e.
	for to := 0; to < n; to++ {
		if to == id {
			continue
		}
		if err := nw.Send(id, to, "open", []Elem{dShare, eShare}); err != nil {
			return 0, err
		}
	}
	d, e := dShare, eShare
	for from := 0; from < n; from++ {
		if from == id {
			continue
		}
		p, err := nw.Recv(id, from)
		if err != nil {
			return 0, err
		}
		if len(p) != 2 {
			return 0, fmt.Errorf("smc: malformed opening from party %d", from)
		}
		d = Add(d, p[0])
		e = Add(e, p[1])
	}
	// Share of x·y = c + d·b + e·a (+ d·e once, by party 0).
	z := Add(t.C, Add(Mul(d, t.B), Mul(e, t.A)))
	if id == 0 {
		z = Add(z, Mul(d, e))
	}
	return z, nil
}

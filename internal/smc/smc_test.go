package smc

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"

	"privacy3d/internal/dataset"
)

func TestFieldArithmetic(t *testing.T) {
	if Add(Elem(P-1), 1) != 0 {
		t.Error("Add wraparound failed")
	}
	if Sub(0, 1) != Elem(P-1) {
		t.Error("Sub wraparound failed")
	}
	if Neg(0) != 0 || Neg(1) != Elem(P-1) {
		t.Error("Neg failed")
	}
	if Mul(2, 3) != 6 {
		t.Error("Mul small failed")
	}
	// (P-1)² ≡ 1 (mod P).
	if Mul(Elem(P-1), Elem(P-1)) != 1 {
		t.Error("Mul large failed")
	}
	if Pow(2, 61) != Mul(2, Pow(2, 60)) {
		t.Error("Pow inconsistent")
	}
	inv, err := Inv(12345)
	if err != nil {
		t.Fatal(err)
	}
	if Mul(inv, 12345) != 1 {
		t.Error("Inv failed")
	}
	if _, err := Inv(0); err == nil {
		t.Error("Inv(0) accepted")
	}
}

func TestFieldMulMatchesBigInt(t *testing.T) {
	rng := dataset.NewRand(1)
	pb := new(big.Int).SetUint64(P)
	for i := 0; i < 200; i++ {
		a, b := RandomElem(rng), RandomElem(rng)
		got := Mul(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(uint64(a)), new(big.Int).SetUint64(uint64(b)))
		want.Mod(want, pb)
		if want.Uint64() != uint64(got) {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want.Uint64())
		}
	}
}

func TestEncodeDecodeInt(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 123456789, -987654321} {
		if got := DecodeInt(EncodeInt(v)); got != v {
			t.Errorf("round trip %d → %d", v, got)
		}
	}
}

func TestAdditiveSharing(t *testing.T) {
	rng := dataset.NewRand(2)
	secret := Elem(424242)
	shares, err := AdditiveShare(secret, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if AdditiveReconstruct(shares) != secret {
		t.Error("reconstruction failed")
	}
	// Any 4 shares are uniform-looking: removing one changes the sum.
	if AdditiveReconstruct(shares[:4]) == secret {
		t.Error("partial shares should not reconstruct (overwhelmingly)")
	}
	if _, err := AdditiveShare(secret, 1, rng); err == nil {
		t.Error("accepted n = 1")
	}
}

func TestShamirSharing(t *testing.T) {
	rng := dataset.NewRand(3)
	secret := Elem(31337)
	shares, err := ShamirShare(secret, 6, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Any 3 shares reconstruct.
	got, err := ShamirReconstruct([]int{2, 4, 6}, []Elem{shares[1], shares[3], shares[5]})
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Errorf("reconstructed %d, want %d", got, secret)
	}
	// A different triple too.
	got2, _ := ShamirReconstruct([]int{1, 2, 3}, shares[:3])
	if got2 != secret {
		t.Errorf("reconstructed %d, want %d", got2, secret)
	}
	// Errors.
	if _, err := ShamirShare(secret, 3, 4, rng); err == nil {
		t.Error("accepted t > n")
	}
	if _, err := ShamirReconstruct([]int{1, 1}, shares[:2]); err == nil {
		t.Error("accepted duplicate indices")
	}
	if _, err := ShamirReconstruct([]int{0}, shares[:1]); err == nil {
		t.Error("accepted index 0")
	}
}

func TestShamirThresholdProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := dataset.NewRand(seed)
		secret := RandomElem(rng)
		n := 4 + int(seed%4)
		th := 2 + int(seed%3)
		shares, err := ShamirShare(secret, n, th, rng)
		if err != nil {
			return false
		}
		idx := make([]int, th)
		vals := make([]Elem, th)
		for i := 0; i < th; i++ {
			idx[i] = i + 1
			vals[i] = shares[i]
		}
		got, err := ShamirReconstruct(idx, vals)
		return err == nil && got == secret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSecureSum(t *testing.T) {
	nw, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Elem{EncodeInt(10), EncodeInt(20), EncodeInt(-5), EncodeInt(17)}
	total, err := SecureSum(nw, inputs, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if DecodeInt(total) != 42 {
		t.Errorf("secure sum = %d, want 42", DecodeInt(total))
	}
}

func TestSecureSumTranscriptHidesInputs(t *testing.T) {
	// The transcript must not contain any party's raw input in the share
	// round: all first-round payloads are uniformly random field elements.
	nw, _ := NewNetwork(3)
	secret := Elem(123456789)
	if _, err := SecureSum(nw, []Elem{secret, 1, 2}, []uint64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	for _, m := range nw.Transcript() {
		if m.Round != "share" {
			continue
		}
		for _, e := range m.Payload {
			if e == secret {
				t.Error("a raw input appeared in a share message")
			}
		}
	}
	// Each party's view excludes messages between the other two.
	v0 := nw.ViewOf(0)
	for _, m := range v0 {
		if m.From != 0 && m.To != 0 {
			t.Error("ViewOf(0) leaked a third-party message")
		}
	}
	if len(v0) == 0 {
		t.Error("empty view")
	}
}

func TestSecureSumVector(t *testing.T) {
	nw, _ := NewNetwork(3)
	inputs := [][]Elem{
		{1, 2, 3},
		{10, 20, 30},
		{100, 200, 300},
	}
	out, err := SecureSumVector(nw, inputs, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []Elem{111, 222, 333}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("coordinate %d = %d, want %d", i, out[i], want[i])
		}
	}
	if _, err := SecureSumVector(nw, inputs[:2], []uint64{1, 2, 3}); err == nil {
		t.Error("accepted wrong party count")
	}
	bad := [][]Elem{{1}, {1, 2}, {1}}
	if _, err := SecureSumVector(nw, bad, []uint64{1, 2, 3}); err == nil {
		t.Error("accepted ragged vectors")
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(1); err == nil {
		t.Error("accepted 1-party network")
	}
	nw, _ := NewNetwork(2)
	if err := nw.Send(0, 0, "x", nil); err == nil {
		t.Error("accepted self-send")
	}
	if err := nw.Send(0, 5, "x", nil); err == nil {
		t.Error("accepted out-of-range recipient")
	}
	if _, err := nw.Recv(0, 0); err == nil {
		t.Error("accepted self-recv")
	}
}

func TestPaillierRoundTripAndHomomorphism(t *testing.T) {
	key, err := GeneratePaillier(512)
	if err != nil {
		t.Fatal(err)
	}
	pk := &key.PaillierPublicKey
	m1, m2 := big.NewInt(123456), big.NewInt(654321)
	c1, err := pk.Encrypt(m1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pk.Encrypt(m2)
	if err != nil {
		t.Fatal(err)
	}
	// Decrypt round trip.
	d1, err := key.Decrypt(c1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Cmp(m1) != 0 {
		t.Errorf("decrypt = %v, want %v", d1, m1)
	}
	// Additive homomorphism.
	sum, err := key.Decrypt(pk.AddCipher(c1, c2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 777777 {
		t.Errorf("homomorphic sum = %v, want 777777", sum)
	}
	// Scalar multiplication.
	tripled, err := key.Decrypt(pk.MulConst(c1, big.NewInt(3)))
	if err != nil {
		t.Fatal(err)
	}
	if tripled.Int64() != 370368 {
		t.Errorf("homomorphic 3x = %v", tripled)
	}
	// Semantic security smoke check: same plaintext, different ciphertext.
	c1b, _ := pk.Encrypt(m1)
	if c1.Cmp(c1b) == 0 {
		t.Error("deterministic encryption")
	}
	// Signed encoding.
	if got := pk.DecodeSigned(pk.EncodeSigned(-42)); got != -42 {
		t.Errorf("signed round trip = %d", got)
	}
	// Validation.
	if _, err := pk.Encrypt(big.NewInt(-1)); err == nil {
		t.Error("accepted negative plaintext")
	}
	if _, err := GeneratePaillier(128); err == nil {
		t.Error("accepted tiny modulus")
	}
}

func TestOTTransfersChosenMessageOnly(t *testing.T) {
	sender := &OTSender{M0: []byte("respondent-privacy"), M1: []byte("owner-privacy!!!!!")}
	for choice := 0; choice <= 1; choice++ {
		m1, err := sender.OTStart()
		if err != nil {
			t.Fatal(err)
		}
		m2, st, err := OTChoose(m1, choice)
		if err != nil {
			t.Fatal(err)
		}
		m3, err := sender.OTTransfer(m1, m2)
		if err != nil {
			t.Fatal(err)
		}
		got := st.OTFinish(m3)
		want := sender.M0
		other := sender.M1
		if choice == 1 {
			want, other = sender.M1, sender.M0
		}
		if !bytes.Equal(got, want) {
			t.Errorf("choice %d: got %q, want %q", choice, got, want)
		}
		// Decrypting the other branch with our key must fail.
		var wrong []byte
		if choice == 0 {
			wrong = (&OTReceiverState{choice: 1, k: st.k}).OTFinish(m3)
		} else {
			wrong = (&OTReceiverState{choice: 0, k: st.k}).OTFinish(m3)
		}
		if bytes.Equal(wrong, other) {
			t.Error("receiver decrypted the unchosen message")
		}
	}
	// Validation.
	if _, _, err := OTChoose(&OTMessage1{C: big.NewInt(5)}, 2); err == nil {
		t.Error("accepted choice 2")
	}
	bad := &OTSender{M0: []byte("a"), M1: []byte("toolong")}
	if _, err := bad.OTStart(); err == nil {
		t.Error("accepted unequal message lengths")
	}
}

func TestSecureScalarProduct(t *testing.T) {
	sp, err := NewSecureScalarProduct(512)
	if err != nil {
		t.Fatal(err)
	}
	x := []int64{1, -2, 3, 4}
	y := []int64{5, 6, -7, 8}
	want := int64(1*5 - 2*6 - 3*7 + 4*8)
	a, b, err := sp.Run(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if a+b != want {
		t.Errorf("shares sum to %d, want %d", a+b, want)
	}
	// Neither share alone equals the product (blinded).
	if a == want || b == want {
		t.Error("a share leaked the scalar product")
	}
	if _, _, err := sp.Run([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("accepted mismatched vectors")
	}
	if _, _, err := sp.Run(nil, nil); err == nil {
		t.Error("accepted empty vectors")
	}
}

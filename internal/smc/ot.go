package smc

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"
)

// Bellare–Micali 1-out-of-2 oblivious transfer over a multiplicative group
// mod a well-known prime. The sender holds two messages; the receiver holds
// a choice bit and learns exactly the chosen message, while the sender
// learns nothing about the choice. Oblivious transfer is the foundational
// primitive of the cryptographic PPDM line ([18,19]); it is exercised here
// both standalone and inside the secure-comparison step of the examples.

// otPrime is the 768-bit MODP prime of RFC 2409 (Oakley group 1), with
// generator 2. Safe-prime structure gives a large prime-order subgroup.
var otPrime, _ = new(big.Int).SetString(
	"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"+
		"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"+
		"4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF", 16)

var otGen = big.NewInt(2)

// OTSender holds the sender's two byte-string messages (equal length).
type OTSender struct {
	M0, M1 []byte
}

// OTMessage1 is the sender's first flow: a random group element C.
type OTMessage1 struct{ C *big.Int }

// OTMessage2 is the receiver's flow: its public key PK0 (PK1 = C/PK0).
type OTMessage2 struct{ PK0 *big.Int }

// OTMessage3 is the sender's final flow: two hashed-ElGamal ciphertexts.
type OTMessage3 struct {
	R0, R1 *big.Int
	E0, E1 []byte
}

// OTReceiverState carries the receiver's secret between flows.
type OTReceiverState struct {
	choice int
	k      *big.Int
}

// OTStart begins the protocol on the sender side.
func (s *OTSender) OTStart() (*OTMessage1, error) {
	if len(s.M0) != len(s.M1) {
		return nil, fmt.Errorf("smc: OT messages must have equal length (%d vs %d)", len(s.M0), len(s.M1))
	}
	c, err := randGroupElem()
	if err != nil {
		return nil, err
	}
	return &OTMessage1{C: c}, nil
}

// OTChoose is the receiver's response for the given choice bit (0 or 1).
func OTChoose(m1 *OTMessage1, choice int) (*OTMessage2, *OTReceiverState, error) {
	if choice != 0 && choice != 1 {
		return nil, nil, fmt.Errorf("smc: OT choice must be 0 or 1, got %d", choice)
	}
	k, err := rand.Int(rand.Reader, otPrime)
	if err != nil {
		return nil, nil, fmt.Errorf("smc: OT choose: %w", err)
	}
	pkChosen := new(big.Int).Exp(otGen, k, otPrime)
	var pk0 *big.Int
	if choice == 0 {
		pk0 = pkChosen
	} else {
		// PK0 = C / PK1 so that PK1 = C / PK0 = pkChosen.
		inv := new(big.Int).ModInverse(pkChosen, otPrime)
		pk0 = new(big.Int).Mod(new(big.Int).Mul(m1.C, inv), otPrime)
	}
	return &OTMessage2{PK0: pk0}, &OTReceiverState{choice: choice, k: k}, nil
}

// OTTransfer is the sender's final flow.
func (s *OTSender) OTTransfer(m1 *OTMessage1, m2 *OTMessage2) (*OTMessage3, error) {
	if m2.PK0.Sign() <= 0 || m2.PK0.Cmp(otPrime) >= 0 {
		return nil, fmt.Errorf("smc: OT public key out of range")
	}
	pk0 := m2.PK0
	inv := new(big.Int).ModInverse(pk0, otPrime)
	if inv == nil {
		return nil, fmt.Errorf("smc: OT public key not invertible")
	}
	pk1 := new(big.Int).Mod(new(big.Int).Mul(m1.C, inv), otPrime)
	r0, err := rand.Int(rand.Reader, otPrime)
	if err != nil {
		return nil, fmt.Errorf("smc: OT transfer: %w", err)
	}
	r1, err := rand.Int(rand.Reader, otPrime)
	if err != nil {
		return nil, fmt.Errorf("smc: OT transfer: %w", err)
	}
	g0 := new(big.Int).Exp(otGen, r0, otPrime)
	g1 := new(big.Int).Exp(otGen, r1, otPrime)
	k0 := new(big.Int).Exp(pk0, r0, otPrime)
	k1 := new(big.Int).Exp(pk1, r1, otPrime)
	return &OTMessage3{
		R0: g0, R1: g1,
		E0: xorPad(s.M0, k0),
		E1: xorPad(s.M1, k1),
	}, nil
}

// OTFinish recovers the chosen message on the receiver side.
func (st *OTReceiverState) OTFinish(m3 *OTMessage3) []byte {
	var g *big.Int
	var e []byte
	if st.choice == 0 {
		g, e = m3.R0, m3.E0
	} else {
		g, e = m3.R1, m3.E1
	}
	key := new(big.Int).Exp(g, st.k, otPrime)
	return xorPad(e, key)
}

// xorPad XORs data with an SHA-256-expanded pad derived from the group
// element.
func xorPad(data []byte, key *big.Int) []byte {
	out := make([]byte, len(data))
	seed := key.Bytes()
	var counter [1]byte
	off := 0
	for off < len(data) {
		h := sha256.New()
		h.Write(seed)
		h.Write(counter[:])
		block := h.Sum(nil)
		for _, b := range block {
			if off >= len(data) {
				break
			}
			out[off] = data[off] ^ b
			off++
		}
		counter[0]++
	}
	return out
}

func randGroupElem() (*big.Int, error) {
	for {
		c, err := rand.Int(rand.Reader, otPrime)
		if err != nil {
			return nil, fmt.Errorf("smc: OT randomness: %w", err)
		}
		if c.Sign() > 0 {
			return c, nil
		}
	}
}

package rulehide

import (
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/mining"
)

func basket() []mining.Transaction {
	return []mining.Transaction{
		{"bread", "milk"},
		{"bread", "diapers", "beer", "eggs"},
		{"milk", "diapers", "beer", "cola"},
		{"bread", "milk", "diapers", "beer"},
		{"bread", "milk", "diapers", "cola"},
		{"bread", "diapers", "beer"},
		{"milk", "diapers", "beer"},
	}
}

func TestHideSensitiveRule(t *testing.T) {
	txs := basket()
	s := SensitiveRule{Antecedent: mining.Itemset{"beer"}, Consequent: mining.Itemset{"diapers"}}
	// Rule must be minable before.
	hidden, err := IsHidden(txs, s, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if hidden {
		t.Fatal("beer ⇒ diapers should be minable before sanitisation")
	}
	out, rep, err := Hide(txs, []SensitiveRule{s}, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	hidden, err = IsHidden(out, s, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !hidden {
		t.Error("rule still minable after sanitisation")
	}
	if rep.ItemsRemoved == 0 {
		t.Error("sanitisation should have removed items")
	}
	if len(rep.Hidden) != 1 {
		t.Errorf("hidden rules = %d, want 1", len(rep.Hidden))
	}
	// Input untouched.
	if len(txs[1]) != 4 {
		t.Error("Hide modified its input")
	}
	// Transaction count unchanged (item deletion, not record deletion).
	if len(out) != len(txs) {
		t.Errorf("transactions %d → %d", len(txs), len(out))
	}
}

func TestHideMinimalDistortion(t *testing.T) {
	txs := basket()
	s := SensitiveRule{Antecedent: mining.Itemset{"beer"}, Consequent: mining.Itemset{"diapers"}}
	out, rep2, err := Hide(txs, []SensitiveRule{s}, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Items removed should be small relative to total items.
	total := 0
	for _, tr := range txs {
		total += len(tr)
	}
	if rep2.ItemsRemoved > total/3 {
		t.Errorf("removed %d of %d items — excessive distortion", rep2.ItemsRemoved, total)
	}
	// Non-sensitive structure largely intact: bread⇒milk style rules may
	// persist; at minimum mining still works.
	if _, err := mining.MineRules(out, 2, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestHideAlreadyHiddenRuleIsNoop(t *testing.T) {
	txs := basket()
	s := SensitiveRule{Antecedent: mining.Itemset{"eggs"}, Consequent: mining.Itemset{"cola"}}
	out, rep, err := Hide(txs, []SensitiveRule{s}, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ItemsRemoved != 0 {
		t.Errorf("no-op hide removed %d items", rep.ItemsRemoved)
	}
	for i := range txs {
		if len(out[i]) != len(txs[i]) {
			t.Error("transactions changed for already-hidden rule")
		}
	}
}

func TestHideValidation(t *testing.T) {
	txs := basket()
	if _, _, err := Hide(txs, nil, 0, 0.5); err == nil {
		t.Error("accepted minSupport 0")
	}
	if _, _, err := Hide(txs, nil, 2, 0); err == nil {
		t.Error("accepted minConfidence 0")
	}
	bad := []SensitiveRule{{Antecedent: nil, Consequent: mining.Itemset{"x"}}}
	if _, _, err := Hide(txs, bad, 2, 0.5); err == nil {
		t.Error("accepted empty antecedent")
	}
}

func TestHideMultipleRules(t *testing.T) {
	txs := basket()
	rules := []SensitiveRule{
		{Antecedent: mining.Itemset{"beer"}, Consequent: mining.Itemset{"diapers"}},
		{Antecedent: mining.Itemset{"bread"}, Consequent: mining.Itemset{"milk"}},
	}
	out, rep, err := Hide(txs, rules, 3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Hidden) != 2 {
		t.Fatalf("hidden %d rules, want 2", len(rep.Hidden))
	}
	for _, s := range rules {
		h, err := IsHidden(out, s, 3, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if !h {
			t.Errorf("rule %v=>%v still minable", s.Antecedent, s.Consequent)
		}
	}
}

func TestHideOnSyntheticBaskets(t *testing.T) {
	// Larger randomized workload: plant a strong rule, hide it.
	rng := dataset.NewRand(3)
	var txs []mining.Transaction
	for i := 0; i < 300; i++ {
		tr := mining.Transaction{}
		if rng.Float64() < 0.4 {
			tr = append(tr, "razor", "blades")
		}
		if rng.Float64() < 0.5 {
			tr = append(tr, "soap")
		}
		if rng.Float64() < 0.3 {
			tr = append(tr, "towel")
		}
		if len(tr) == 0 {
			tr = append(tr, "misc")
		}
		txs = append(txs, tr)
	}
	s := SensitiveRule{Antecedent: mining.Itemset{"razor"}, Consequent: mining.Itemset{"blades"}}
	if h, _ := IsHidden(txs, s, 20, 0.8); h {
		t.Fatal("planted rule not minable")
	}
	out, rep, err := Hide(txs, []SensitiveRule{s}, 20, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := IsHidden(out, s, 20, 0.8); !h {
		t.Error("planted rule survived sanitisation")
	}
	if rep.ItemsRemoved == 0 {
		t.Error("expected removals")
	}
}

// Package rulehide implements association-rule hiding in the style of
// Verykios, Elmagarmid, Bertino, Saygin & Dasseni (TKDE 2004), the paper's
// citation [25]: a data owner sanitises a transaction database before
// release so that designated sensitive rules can no longer be mined at the
// given support/confidence thresholds, while distorting the database as
// little as possible. In the three-dimensional framework this is a
// use-specific non-crypto PPDM technology: it protects the owner's
// strategic knowledge (the sensitive rules), at some utility cost to other
// rules (side effects).
package rulehide

import (
	"fmt"
	"sort"

	"privacy3d/internal/mining"
)

// SensitiveRule designates a rule to hide.
type SensitiveRule struct {
	Antecedent mining.Itemset
	Consequent mining.Itemset
}

// Report summarises a sanitisation run.
type Report struct {
	// ItemsRemoved counts item deletions applied to transactions.
	ItemsRemoved int
	// Hidden lists the sensitive rules successfully hidden.
	Hidden []SensitiveRule
	// SideEffects counts non-sensitive rules minable before sanitisation
	// but lost afterwards (at the same thresholds).
	SideEffects int
	// GhostRules counts rules minable only after sanitisation.
	GhostRules int
}

// Hide sanitises the transactions so every sensitive rule falls below
// minSupport (absolute) or minConfidence, by deleting consequent items from
// supporting transactions (the support-reduction strategy of [25]). The
// input is not modified.
func Hide(txs []mining.Transaction, sensitive []SensitiveRule, minSupport int, minConfidence float64) ([]mining.Transaction, Report, error) {
	var rep Report
	if minSupport < 1 {
		return nil, rep, fmt.Errorf("rulehide: minSupport must be ≥ 1, got %d", minSupport)
	}
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, rep, fmt.Errorf("rulehide: minConfidence must be in (0,1], got %g", minConfidence)
	}
	for _, s := range sensitive {
		if len(s.Antecedent) == 0 || len(s.Consequent) == 0 {
			return nil, rep, fmt.Errorf("rulehide: sensitive rule needs non-empty antecedent and consequent")
		}
	}
	before, err := mining.MineRules(txs, minSupport, minConfidence)
	if err != nil {
		return nil, rep, err
	}
	// Working copy as item sets.
	work := make([]map[string]bool, len(txs))
	for i, tr := range txs {
		m := make(map[string]bool, len(tr))
		for _, it := range tr {
			m[it] = true
		}
		work[i] = m
	}
	for _, s := range sensitive {
		for {
			sup, conf := measure(work, s)
			if sup < minSupport || conf < minConfidence {
				rep.Hidden = append(rep.Hidden, s)
				break
			}
			// Choose the shortest supporting transaction (minimum
			// collateral damage) and delete one consequent item.
			victim := -1
			for i, m := range work {
				if supports(m, s.Antecedent) && supports(m, s.Consequent) {
					if victim < 0 || len(m) < len(work[victim]) {
						victim = i
					}
				}
			}
			if victim < 0 {
				// No support left; rule is hidden by definition.
				rep.Hidden = append(rep.Hidden, s)
				break
			}
			// Deterministic choice: lexicographically smallest
			// consequent item present.
			items := append(mining.Itemset(nil), s.Consequent...)
			sort.Strings(items)
			delete(work[victim], items[0])
			rep.ItemsRemoved++
		}
	}
	out := make([]mining.Transaction, len(work))
	for i, m := range work {
		tr := make(mining.Transaction, 0, len(m))
		for it := range m {
			tr = append(tr, it)
		}
		sort.Strings(tr)
		out[i] = tr
	}
	after, err := mining.MineRules(out, minSupport, minConfidence)
	if err != nil {
		return nil, rep, err
	}
	sens := map[string]bool{}
	for _, s := range sensitive {
		sens[ruleKey(s.Antecedent, s.Consequent)] = true
	}
	beforeSet := map[string]bool{}
	for _, r := range before {
		beforeSet[ruleKey(r.Antecedent, r.Consequent)] = true
	}
	afterSet := map[string]bool{}
	for _, r := range after {
		afterSet[ruleKey(r.Antecedent, r.Consequent)] = true
	}
	for k := range beforeSet {
		if !afterSet[k] && !sens[k] {
			rep.SideEffects++
		}
	}
	for k := range afterSet {
		if !beforeSet[k] {
			rep.GhostRules++
		}
	}
	return out, rep, nil
}

// IsHidden reports whether the rule cannot be mined from txs at the given
// thresholds.
func IsHidden(txs []mining.Transaction, s SensitiveRule, minSupport int, minConfidence float64) (bool, error) {
	rules, err := mining.MineRules(txs, minSupport, minConfidence)
	if err != nil {
		return false, err
	}
	key := ruleKey(s.Antecedent, s.Consequent)
	for _, r := range rules {
		if ruleKey(r.Antecedent, r.Consequent) == key {
			return false, nil
		}
	}
	return true, nil
}

func measure(work []map[string]bool, s SensitiveRule) (sup int, conf float64) {
	antSup := 0
	for _, m := range work {
		if supports(m, s.Antecedent) {
			antSup++
			if supports(m, s.Consequent) {
				sup++
			}
		}
	}
	if antSup > 0 {
		conf = float64(sup) / float64(antSup)
	}
	return sup, conf
}

func supports(m map[string]bool, items mining.Itemset) bool {
	for _, it := range items {
		if !m[it] {
			return false
		}
	}
	return true
}

func ruleKey(a, c mining.Itemset) string {
	as := append(mining.Itemset(nil), a...)
	cs := append(mining.Itemset(nil), c...)
	sort.Strings(as)
	sort.Strings(cs)
	return as.Key() + "=>" + cs.Key()
}

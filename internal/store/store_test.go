package store

import (
	"math"
	"math/rand"
	"testing"

	"privacy3d/internal/dataset"
)

// testSchema is deliberately mixed: two numeric columns (one with NaNs and
// duplicates), two categorical ones (one containing the empty string).
func testSchema() []dataset.Attribute {
	return []dataset.Attribute{
		{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		{Name: "y", Role: dataset.Confidential, Kind: dataset.Numeric},
		{Name: "c", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal},
		{Name: "d", Role: dataset.NonConfidential, Kind: dataset.Nominal},
	}
}

// synthRows builds a dataset over testSchema with adversarial values:
// duplicates, zeros, NaNs, empty strings.
func synthRows(rows int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(testSchema()...)
	cvals := []string{"", "a", "b", "c"}
	dvals := []string{"p", "q"}
	for i := 0; i < rows; i++ {
		x := math.Floor(rng.Float64() * 20) // heavy duplication
		if rng.Intn(17) == 0 {
			x = math.NaN()
		}
		y := rng.NormFloat64() * 10
		d.MustAppend(x, y, cvals[rng.Intn(len(cvals))], dvals[rng.Intn(len(dvals))])
	}
	return d
}

// bruteEval is the naive reference evaluator, independent of the compiled
// scan path: straight Go comparisons over the source dataset.
func bruteEval(d *dataset.Dataset, conds []Cond) []bool {
	out := make([]bool, d.Rows())
	for i := range out {
		ok := true
		for _, c := range conds {
			j := d.Index(c.Col)
			if d.Attr(j).Kind == dataset.Numeric {
				v := d.Float(i, j)
				switch c.Op {
				case Lt:
					ok = v < c.V
				case Le:
					ok = v <= c.V
				case Gt:
					ok = v > c.V
				case Ge:
					ok = v >= c.V
				case Eq:
					ok = v == c.V
				case Ne:
					ok = v != c.V
				}
			} else {
				s := d.Cat(i, j)
				if c.Op == Eq {
					ok = s == c.S
				} else {
					ok = s != c.S
				}
			}
			if !ok {
				break
			}
		}
		out[i] = ok
	}
	return out
}

func randConds(rng *rand.Rand) []Cond {
	n := 1 + rng.Intn(3)
	conds := make([]Cond, 0, n)
	for k := 0; k < n; k++ {
		switch rng.Intn(3) {
		case 0:
			conds = append(conds, Cond{Col: "x", Op: Op(rng.Intn(6)), V: math.Floor(rng.Float64() * 22)})
		case 1:
			conds = append(conds, Cond{Col: "y", Op: Op(rng.Intn(4)), V: rng.NormFloat64() * 10})
		default:
			ops := []Op{Eq, Ne}
			vals := []string{"", "a", "b", "c", "zz-not-present"}
			conds = append(conds, Cond{Col: "c", Op: ops[rng.Intn(2)], S: vals[rng.Intn(len(vals))], Str: true})
		}
	}
	return conds
}

// TestEvalMatchesScanAndBrute is the core property test: for random
// predicates over adversarial data (NaNs, duplicates, empty strings,
// partial tail), the indexed path, the compiled scan path, and a naive
// reference all agree bit for bit — and SUM over the bitmap equals the
// sequential reference sum exactly (same float64 order).
func TestEvalMatchesScanAndBrute(t *testing.T) {
	// 1000 rows at segSize 128: 7 sealed segments + 104-row tail.
	d := synthRows(1000, 1)
	s, err := FromDataset(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Rows() != 1000 {
		t.Fatalf("snapshot rows = %d, want 1000", snap.Rows())
	}
	ycol := snap.Index("y")
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		conds := randConds(rng)
		want := bruteEval(d, conds)
		idx, err := snap.Eval(conds)
		if err != nil {
			t.Fatalf("Eval(%v): %v", conds, err)
		}
		scan, err := snap.EvalScan(conds)
		if err != nil {
			t.Fatalf("EvalScan(%v): %v", conds, err)
		}
		var refSum float64
		for i, w := range want {
			if idx.Get(i) != w {
				t.Fatalf("Eval(%v) row %d = %v, want %v", conds, i, idx.Get(i), w)
			}
			if scan.Get(i) != w {
				t.Fatalf("EvalScan(%v) row %d = %v, want %v", conds, i, scan.Get(i), w)
			}
			if w {
				refSum += d.Float(i, ycol)
			}
		}
		if got := snap.Sum(idx, ycol); math.Float64bits(got) != math.Float64bits(refSum) {
			t.Fatalf("Sum(%v) = %x, want %x (byte identity)", conds, math.Float64bits(got), math.Float64bits(refSum))
		}
	}
}

func TestEvalNaNThreshold(t *testing.T) {
	d := synthRows(300, 3)
	s, err := FromDataset(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	for _, op := range []Op{Lt, Le, Gt, Ge, Eq} {
		bm, err := snap.Eval([]Cond{{Col: "x", Op: op, V: math.NaN()}})
		if err != nil {
			t.Fatal(err)
		}
		if bm.Count() != 0 {
			t.Fatalf("x %v NaN matched %d rows, want 0", op, bm.Count())
		}
	}
	bm, err := snap.Eval([]Cond{{Col: "x", Op: Ne, V: math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	if bm.Count() != 300 {
		t.Fatalf("x != NaN matched %d rows, want 300", bm.Count())
	}
}

func TestEmptyConjunctionAndUnknowns(t *testing.T) {
	d := synthRows(100, 4)
	s, err := FromDataset(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	bm, err := snap.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Count() != 100 {
		t.Fatalf("empty conjunction matched %d rows, want all 100", bm.Count())
	}
	// Unknown dictionary value: Eq matches nothing, Ne everything.
	bm, _ = snap.Eval([]Cond{{Col: "c", Op: Eq, S: "never-seen", Str: true}})
	if bm.Count() != 0 {
		t.Fatalf("Eq unknown value matched %d rows", bm.Count())
	}
	bm, _ = snap.Eval([]Cond{{Col: "c", Op: Ne, S: "never-seen", Str: true}})
	if bm.Count() != 100 {
		t.Fatalf("Ne unknown value matched %d rows, want 100", bm.Count())
	}
	// Compile errors.
	for _, bad := range [][]Cond{
		{{Col: "nope", Op: Eq, V: 1}},
		{{Col: "x", Op: Eq, S: "str", Str: true}},
		{{Col: "c", Op: Eq, V: 1}},
		{{Col: "c", Op: Lt, S: "a", Str: true}},
	} {
		if _, err := snap.Eval(bad); err == nil {
			t.Fatalf("Eval(%v) succeeded, want compile error", bad)
		}
	}
}

// TestEmptyStringIsAValue pins the dictionary treating "" as an ordinary
// category: Cond{S: "", Str: true} must match exactly the empty-string rows.
func TestEmptyStringIsAValue(t *testing.T) {
	d := synthRows(500, 5)
	s, err := FromDataset(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	bm, err := snap.Eval([]Cond{{Col: "c", Op: Eq, S: "", Str: true}})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	cj := d.Index("c")
	for i := 0; i < d.Rows(); i++ {
		if d.Cat(i, cj) == "" {
			want++
		}
	}
	if want == 0 {
		t.Fatal("fixture has no empty-string rows; test is vacuous")
	}
	if bm.Count() != want {
		t.Fatalf(`c == "" matched %d rows, want %d`, bm.Count(), want)
	}
}

// TestZoneMapSkipAndAccept drives the numeric zone maps down both fast
// paths: monotonically increasing data makes segment ranges disjoint, so a
// band predicate must skip every segment but the one it covers (and accept
// that one whole), while a constant column exercises the Eq/Ne zone
// decisions. Every answer is cross-checked against the scan path.
func TestZoneMapSkipAndAccept(t *testing.T) {
	attrs := []dataset.Attribute{
		{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		{Name: "k", Role: dataset.Confidential, Kind: dataset.Numeric},
	}
	s, err := New(attrs, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ { // 4 sealed segments, empty tail
		if err := s.Append(float64(i), 7.0); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	cases := []struct {
		conds []Cond
		want  int
	}{
		// Band covering exactly segment 1: zone accept there, skip elsewhere.
		{[]Cond{{Col: "x", Op: Ge, V: 64}, {Col: "x", Op: Lt, V: 128}}, 64},
		// Below/above every zone: all four segments skip.
		{[]Cond{{Col: "x", Op: Lt, V: 0}}, 0},
		{[]Cond{{Col: "x", Op: Ge, V: 256}}, 0},
		{[]Cond{{Col: "x", Op: Gt, V: 255}}, 0},
		// Interval containing every zone: all four segments accept whole.
		{[]Cond{{Col: "x", Op: Le, V: 1000}}, 256},
		// Boundary exclusivity at a zone edge.
		{[]Cond{{Col: "x", Op: Gt, V: 63}, {Col: "x", Op: Le, V: 64}}, 1},
		// Ne outside every zone accepts whole segments.
		{[]Cond{{Col: "x", Op: Ne, V: 300}}, 256},
		// Constant column: Eq in/outside the degenerate [7,7] zone.
		{[]Cond{{Col: "k", Op: Eq, V: 7}}, 256},
		{[]Cond{{Col: "k", Op: Eq, V: 8}}, 0},
		{[]Cond{{Col: "k", Op: Ne, V: 7}}, 0},
	}
	for _, c := range cases {
		idx, err := snap.Eval(c.conds)
		if err != nil {
			t.Fatalf("Eval(%v): %v", c.conds, err)
		}
		if idx.Count() != c.want {
			t.Errorf("Eval(%v) matched %d rows, want %d", c.conds, idx.Count(), c.want)
		}
		scan, err := snap.EvalScan(c.conds)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < snap.Rows(); i++ {
			if idx.Get(i) != scan.Get(i) {
				t.Fatalf("Eval(%v) row %d = %v, scan = %v", c.conds, i, idx.Get(i), scan.Get(i))
			}
		}
	}
}

// TestZoneMapAllNaNSegment pins the degenerate zone: a segment whose numeric
// column is entirely NaN has an empty sorted index, fails every interval and
// comparison, and matches != like the scan path.
func TestZoneMapAllNaNSegment(t *testing.T) {
	attrs := []dataset.Attribute{{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric}}
	s, err := New(attrs, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ { // segment 0 all NaN, segment 1 numeric
		v := math.NaN()
		if i >= 64 {
			v = float64(i)
		}
		if err := s.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	bm, err := snap.Eval([]Cond{{Col: "x", Op: Ge, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if bm.Count() != 64 {
		t.Fatalf("x >= 0 matched %d rows, want 64 (NaN segment must skip)", bm.Count())
	}
	bm, err = snap.Eval([]Cond{{Col: "x", Op: Ne, V: 70}})
	if err != nil {
		t.Fatal(err)
	}
	if bm.Count() != 127 {
		t.Fatalf("x != 70 matched %d rows, want 127 (NaN rows match !=)", bm.Count())
	}
}

// TestZeroValueCondIsEmptyString pins the compile lenience shared with
// sdcquery: a fully zero-valued condition (Str unset, S == "", V == 0)
// against a categorical column is an empty-string comparison, while any
// non-zero V stays a kind-mismatch error.
func TestZeroValueCondIsEmptyString(t *testing.T) {
	d := synthRows(500, 5)
	s, err := FromDataset(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	explicit, err := snap.Eval([]Cond{{Col: "c", Op: Eq, S: "", Str: true}})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := snap.Eval([]Cond{{Col: "c", Op: Eq}})
	if err != nil {
		t.Fatalf("zero-valued categorical cond rejected: %v", err)
	}
	if explicit.Count() == 0 {
		t.Fatal("fixture has no empty-string rows; test is vacuous")
	}
	if zero.Count() != explicit.Count() {
		t.Fatalf("zero-valued cond matched %d rows, explicit empty-string %d", zero.Count(), explicit.Count())
	}
	if _, err := snap.Eval([]Cond{{Col: "c", Op: Eq, V: 2}}); err == nil {
		t.Fatal("non-zero numeric value against categorical column accepted")
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	d := synthRows(700, 6)
	s, err := FromDataset(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Snapshot().Materialize()
	if !dataset.EqualValues(d, got) {
		t.Fatal("Materialize() differs from the source dataset")
	}
}

func TestAppendRowAndAccessors(t *testing.T) {
	s, err := New(testSchema(), 64)
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.Version() // the empty store is already published once
	if s.Rows() != 0 || v0 == 0 {
		t.Fatalf("fresh store rows=%d version=%d", s.Rows(), v0)
	}
	for i := 0; i < 130; i++ { // crosses two seal boundaries
		if err := s.Append(float64(i), float64(-i), "a", "p"); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	// Version is a publish counter, not the row count: one publish per Append.
	if snap.Rows() != 130 || snap.Version() != v0+130 {
		t.Fatalf("rows=%d version=%d, want rows 130 version %d", snap.Rows(), snap.Version(), v0+130)
	}
	xj, cj := snap.Index("x"), snap.Index("c")
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if got := snap.Float(i, xj); got != float64(i) {
			t.Fatalf("Float(%d) = %g, want %d", i, got, i)
		}
		if got := snap.Cat(i, cj); got != "a" {
			t.Fatalf("Cat(%d) = %q, want a", i, got)
		}
	}
	if err := s.Append("not-a-number", 0.0, "a", "p"); err == nil {
		t.Fatal("Append with wrong kind succeeded")
	}
	if err := s.Append(1.0, 2.0, "a"); err == nil {
		t.Fatal("Append with wrong arity succeeded")
	}
}

func TestInvalidSegmentSize(t *testing.T) {
	if _, err := New(testSchema(), 100); err == nil {
		t.Fatal("segment size 100 accepted; must be a multiple of 64")
	}
	s, err := New(testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.SegmentSize() != DefaultSegmentSize {
		t.Fatalf("default segment size = %d", s.SegmentSize())
	}
}

package store

import "math"

// Query planning for the index path. A compiled conjunction often carries
// several range conditions on the same numeric column — a band predicate
// like `x >= v AND x < v+δ` is two half-ranges whose individual matches can
// each cover half the data while their intersection is tiny. Evaluating the
// halves separately would scatter-set millions of bits only to AND most of
// them away again; merging them into one interval first turns the band into
// two binary searches plus a walk over just the intersection's permutation
// range. The scan path is untouched, so the plan's answers stay checkable
// against it bit for bit.

// numInterval is the merged interval of every ordered/equality condition on
// one numeric column. Bounds start at ±Inf inclusive (i.e. unconstrained).
type numInterval struct {
	col            int
	lo, hi         float64
	loIncl, hiIncl bool
}

// applyLo tightens the lower bound: keep the larger, and at a tie the
// strict one (x > v ∧ x >= v  ⇒  x > v).
func (iv *numInterval) applyLo(v float64, incl bool) {
	if v > iv.lo || (v == iv.lo && !incl && iv.loIncl) {
		iv.lo, iv.loIncl = v, incl
	}
}

// applyHi tightens the upper bound symmetrically.
func (iv *numInterval) applyHi(v float64, incl bool) {
	if v < iv.hi || (v == iv.hi && !incl && iv.hiIncl) {
		iv.hi, iv.hiIncl = v, incl
	}
}

// vacuous reports an interval no value can satisfy.
func (iv *numInterval) vacuous() bool {
	return iv.lo > iv.hi || (iv.lo == iv.hi && !(iv.loIncl && iv.hiIncl))
}

// plan is a compiled conjunction regrouped for the index path: one merged
// interval per constrained numeric column, plus the residual conditions
// (categorical, and numeric !=, whose match set is not an interval).
type plan struct {
	ivs  []numInterval
	rest []compiledCond
	// empty marks a conjunction no row can satisfy — contradictory bounds,
	// or an ordered/equality comparison against NaN (false for every value,
	// exactly as the scan path evaluates it).
	empty bool
}

// planConds builds the index-path plan. It only regroups exact set algebra
// — intersection is commutative — so the planned result is identical to
// evaluating the conditions one by one, and to the row-at-a-time scan.
func planConds(cc []compiledCond) *plan {
	p := &plan{}
	byCol := map[int]int{}
	for _, c := range cc {
		if !c.numeric || c.op == Ne {
			p.rest = append(p.rest, c)
			continue
		}
		if math.IsNaN(c.v) {
			p.empty = true
			return p
		}
		k, ok := byCol[c.col]
		if !ok {
			k = len(p.ivs)
			byCol[c.col] = k
			p.ivs = append(p.ivs, numInterval{
				col: c.col,
				lo:  math.Inf(-1), loIncl: true,
				hi: math.Inf(1), hiIncl: true,
			})
		}
		iv := &p.ivs[k]
		switch c.op {
		case Lt:
			iv.applyHi(c.v, false)
		case Le:
			iv.applyHi(c.v, true)
		case Gt:
			iv.applyLo(c.v, false)
		case Ge:
			iv.applyLo(c.v, true)
		case Eq:
			iv.applyLo(c.v, true)
			iv.applyHi(c.v, true)
		}
	}
	for i := range p.ivs {
		if p.ivs[i].vacuous() {
			p.empty = true
			return p
		}
	}
	return p
}

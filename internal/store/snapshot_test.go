package store

import (
	"math"
	"sync"
	"testing"
)

// TestSnapshotStableUnderIngest is the isolation proof the ISSUE requires:
// a snapshot pinned mid-ingest keeps returning byte-identical answers — row
// count, bitmap, COUNT, and SUM — no matter how many rows land after the
// pin, including across seal boundaries. Run under -race this also verifies
// the pin/ingest interplay is data-race free.
func TestSnapshotStableUnderIngest(t *testing.T) {
	s, err := New(testSchema(), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ { // one sealed segment + a 36-row tail
		s.mustAppendRow(t, i)
	}
	snap := s.Snapshot()
	conds := []Cond{{Col: "x", Op: Lt, V: 50}, {Col: "c", Op: Eq, S: "a", Str: true}}
	refBM, err := snap.Eval(conds)
	if err != nil {
		t.Fatal(err)
	}
	refCount := refBM.Count()
	refSum := snap.Sum(refBM, snap.Index("y"))
	refRows := snap.Rows()

	// Hammer ingest while re-asking the pinned snapshot concurrently.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 1500; i++ { // crosses many seal boundaries
			s.mustAppendRow(t, i)
		}
		close(stop)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			bm, err := snap.Eval(conds)
			if err != nil {
				t.Error(err)
				return
			}
			if snap.Rows() != refRows || bm.Count() != refCount {
				t.Errorf("pinned snapshot drifted: rows=%d count=%d, want %d/%d",
					snap.Rows(), bm.Count(), refRows, refCount)
				return
			}
			if got := snap.Sum(bm, snap.Index("y")); math.Float64bits(got) != math.Float64bits(refSum) {
				t.Errorf("pinned SUM drifted: %x, want %x", math.Float64bits(got), math.Float64bits(refSum))
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()

	if s.Rows() != 1500 {
		t.Fatalf("store rows = %d, want 1500", s.Rows())
	}
	// A fresh snapshot sees everything; the pinned one still does not.
	if got := s.Snapshot().Rows(); got != 1500 {
		t.Fatalf("fresh snapshot rows = %d", got)
	}
	if snap.Rows() != refRows {
		t.Fatalf("pinned snapshot rows changed to %d", snap.Rows())
	}
}

// mustAppendRow appends a deterministic row derived from i.
func (s *Store) mustAppendRow(t *testing.T, i int) {
	t.Helper()
	cats := []string{"a", "b", ""}
	if err := s.Append(float64(i%97), float64(i)*0.5, cats[i%3], "p"); err != nil {
		t.Fatal(err)
	}
}

// TestVersionMonotonic pins that Version is a publish counter that moves
// only forward, one step per Append — the property answer-cache and noise
// keys rely on.
func TestVersionMonotonic(t *testing.T) {
	s, err := New(testSchema(), 64)
	if err != nil {
		t.Fatal(err)
	}
	last := s.Version()
	for i := 0; i < 200; i++ {
		s.mustAppendRow(t, i)
		v := s.Version()
		if v != last+1 {
			t.Fatalf("version %d after %d", v, last)
		}
		last = v
	}
}

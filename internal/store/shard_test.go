package store

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
)

// segOrdinal recovers a sealed segment's ordinal from its base row.
func (s *Snapshot) segOrdinal(sg *segment) int { return sg.base / s.store.segSize }

// checkShardDecomposition asserts the snapshot's per-shard lists are a
// partition of its segment list with the deterministic shardOf assignment
// and ascending base order within each shard.
func checkShardDecomposition(t *testing.T, snap *Snapshot) {
	t.Helper()
	seen := make(map[*segment]bool)
	for sh, segs := range snap.byShard {
		lastBase := -1
		for _, sg := range segs {
			if seen[sg] {
				t.Fatalf("segment base %d appears in more than one shard", sg.base)
			}
			seen[sg] = true
			if got := shardOf(snap.segOrdinal(sg), snap.Shards()); got != sh {
				t.Fatalf("segment %d in shard %d, shardOf says %d", snap.segOrdinal(sg), sh, got)
			}
			if sg.base <= lastBase {
				t.Fatalf("shard %d segment bases not ascending: %d after %d", sh, sg.base, lastBase)
			}
			lastBase = sg.base
		}
	}
	if len(seen) != len(snap.segs) {
		t.Fatalf("shards hold %d segments, snapshot has %d", len(seen), len(snap.segs))
	}
	for _, sg := range snap.segs {
		if !seen[sg] {
			t.Fatalf("segment base %d missing from every shard", sg.base)
		}
	}
}

// TestShardAssignmentDeterministic is the property test for the
// segment→shard assignment: every snapshot of a store decomposes its
// segments by the same pure shardOf function, so a segment never moves
// between shards as the store grows, and snapshots pinned before an ingest
// keep their per-shard lists bit-for-bit.
func TestShardAssignmentDeterministic(t *testing.T) {
	s, err := NewSharded(testSchema(), 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	snaps := []*Snapshot{s.Snapshot()}
	for i := 0; i < 40*64; i++ {
		s.mustAppendRow(t, i)
		if i%777 == 0 {
			snaps = append(snaps, s.Snapshot())
		}
	}
	snaps = append(snaps, s.Snapshot())
	assigned := make(map[int]int) // segment ordinal → shard, across all snapshots
	for _, snap := range snaps {
		checkShardDecomposition(t, snap)
		for sh, segs := range snap.byShard {
			for _, sg := range segs {
				ord := snap.segOrdinal(sg)
				if prev, ok := assigned[ord]; ok && prev != sh {
					t.Fatalf("segment %d moved from shard %d to %d across snapshots", ord, prev, sh)
				}
				assigned[ord] = sh
			}
		}
	}
	if len(assigned) != 40 {
		t.Fatalf("saw %d sealed segments, want 40", len(assigned))
	}
	// A pinned snapshot's shard lists are untouched by later ingest.
	early := s.Snapshot()
	wantSegs := len(early.segs)
	for i := 0; i < 10*64; i++ {
		s.mustAppendRow(t, i)
	}
	if len(early.segs) != wantSegs {
		t.Fatalf("pinned snapshot grew from %d to %d segments", wantSegs, len(early.segs))
	}
	checkShardDecomposition(t, early)
	checkShardDecomposition(t, s.Snapshot())

	// A second store with the same shard count assigns identically.
	s2, err := NewSharded(testSchema(), 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40*64; i++ {
		s2.mustAppendRow(t, i)
	}
	for sh, segs := range s2.Snapshot().byShard {
		for _, sg := range segs {
			ord := sg.base / 64
			if assigned[ord] != sh {
				t.Fatalf("store 2 puts segment %d in shard %d, store 1 used %d", ord, sh, assigned[ord])
			}
		}
	}
}

// batchShapes is the query-shape zoo the batched path must agree with the
// single-query path on: unconstrained, selective ranges, NaN comparisons,
// empty-string and unknown-string categories, negations, contradictions.
func batchShapes() [][]Cond {
	return [][]Cond{
		nil, // unconstrained: every row
		{{Col: "x", Op: Ge, V: 5}, {Col: "x", Op: Lt, V: 10}},
		{{Col: "x", Op: Eq, V: math.NaN()}},  // matches nothing
		{{Col: "x", Op: Ne, V: math.NaN()}},  // matches everything, incl. NaN
		{{Col: "c", Op: Eq, S: "a"}},
		{{Col: "c", Op: Eq, Str: true}},      // empty string, present in data
		{{Col: "c", Op: Ne, S: "zzz"}},       // unknown dictionary string
		{{Col: "d", Op: Eq, S: "p"}, {Col: "y", Op: Lt, V: 0}},
		{{Col: "x", Op: Lt, V: 3}, {Col: "x", Op: Gt, V: 17}}, // contradiction
		{{Col: "x", Op: Eq, V: 7}, {Col: "c", Op: Ne, S: "b"}, {Col: "d", Op: Eq, S: "q"}},
	}
}

// sameBits asserts two bitmaps are word-identical.
func sameBits(t *testing.T, label string, got, want *Bitmap) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("%s: rows %d vs %d", label, got.n, want.n)
	}
	for w := range want.words {
		if got.words[w] != want.words[w] {
			t.Fatalf("%s: bitmaps differ at word %d", label, w)
		}
	}
}

// TestEvalBatchMatchesEval pins the batched path to the single-query path:
// for every query shape, at several worker counts, EvalBatch's bitmap is
// word-identical to Eval's, EvalScan's, and the naive reference.
func TestEvalBatchMatchesEval(t *testing.T) {
	d := synthRows(5000, 1)
	s, err := FromDatasetSharded(d, 128, 5)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	shapes := batchShapes()
	for _, w := range []int{1, 2, 8} {
		prev := par.SetWorkers(w)
		bms, err := snap.EvalBatch(shapes)
		if err != nil {
			t.Fatal(err)
		}
		for k, conds := range shapes {
			one, err := snap.Eval(conds)
			if err != nil {
				t.Fatal(err)
			}
			scan, err := snap.EvalScan(conds)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("workers=%d shape=%d", w, k)
			sameBits(t, label+" batch-vs-eval", bms[k], one)
			sameBits(t, label+" batch-vs-scan", bms[k], scan)
			ref := bruteEval(d, conds)
			for i, want := range ref {
				if bms[k].Get(i) != want {
					t.Fatalf("%s: row %d = %v, reference %v", label, i, bms[k].Get(i), want)
				}
			}
		}
		par.SetWorkers(prev)
	}
	// One uncompilable query fails the whole batch, naming its index.
	if _, err := snap.EvalBatch([][]Cond{nil, {{Col: "nope", Op: Eq, V: 1}}}); err == nil {
		t.Fatal("EvalBatch with unknown column succeeded")
	}
}

// TestRepublishSameRowsBumpsVersion is the regression test for version
// aliasing: re-publishing at an unchanged row count must still advance the
// version, or answer-cache and noise keys computed against different
// content would collide.
func TestRepublishSameRowsBumpsVersion(t *testing.T) {
	s, err := New(testSchema(), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.mustAppendRow(t, i)
	}
	before := s.Snapshot()
	s.mu.Lock()
	s.publishLocked() // what a future delete/compact/rebuild path would do
	s.mu.Unlock()
	after := s.Snapshot()
	if after.Rows() != before.Rows() {
		t.Fatalf("row count moved: %d vs %d", after.Rows(), before.Rows())
	}
	if after.Version() <= before.Version() {
		t.Fatalf("version %d did not advance past %d at equal row count", after.Version(), before.Version())
	}
}

// serialMatch is a deliberately serial, accessor-level reference evaluator
// over a pinned snapshot — independent of the compiled scan, the planner
// and the worker pool.
func serialMatch(snap *Snapshot, conds []Cond) []bool {
	out := make([]bool, snap.Rows())
	for i := range out {
		ok := true
		for _, c := range conds {
			j := snap.Index(c.Col)
			if snap.Attrs()[j].Kind == dataset.Numeric {
				v := snap.Float(i, j)
				switch c.Op {
				case Lt:
					ok = v < c.V
				case Le:
					ok = v <= c.V
				case Gt:
					ok = v > c.V
				case Ge:
					ok = v >= c.V
				case Eq:
					ok = v == c.V
				case Ne:
					ok = v != c.V
				}
			} else {
				eq := snap.Cat(i, j) == c.S
				ok = (c.Op == Eq) == eq
			}
			if !ok {
				break
			}
		}
		out[i] = ok
	}
	return out
}

// TestShardedEvalHammer runs concurrent ingest against sharded Eval and
// EvalBatch at workers {1, 2, 8}, asserting every answer is byte-identical
// to a serial accessor-level reference over the same pinned snapshot (and
// that Sum agrees bit-for-bit with a serial ascending-row summation).
// Meant to run under -race.
func TestShardedEvalHammer(t *testing.T) {
	d := synthRows(1000, 2)
	s, err := FromDatasetSharded(d, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	conds := []Cond{{Col: "x", Op: Ge, V: 4}, {Col: "x", Op: Lt, V: 12}}
	conds2 := []Cond{{Col: "c", Op: Ne, S: "a"}, {Col: "y", Op: Ge, V: 0}}
	yj := s.Index("y")
	check := func(snap *Snapshot, bm *Bitmap, cc []Cond, label string) {
		ref := serialMatch(snap, cc)
		for i, want := range ref {
			if bm.Get(i) != want {
				t.Errorf("%s: row %d = %v, serial reference %v", label, i, bm.Get(i), want)
				return
			}
		}
		var want float64
		for i, on := range ref {
			if on {
				want += snap.Float(i, yj)
			}
		}
		if got := snap.Sum(bm, yj); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: Sum %x, serial reference %x", label, math.Float64bits(got), math.Float64bits(want))
		}
	}
	for _, w := range []int{1, 2, 8} {
		prev := par.SetWorkers(w)
		var stop atomic.Bool
		var ingest, readers sync.WaitGroup
		ingest.Add(1)
		go func() {
			defer ingest.Done()
			// Bounded so pinned snapshots stay small enough for the O(rows)
			// serial reference; the stop flag just ends the phase early once
			// every reader is done.
			for i := 0; i < 4000 && !stop.Load(); i++ {
				if err := s.Append(float64(i%20), float64(i)*0.25, "b", "q"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		for g := 0; g < 3; g++ {
			readers.Add(1)
			go func(g int) {
				defer readers.Done()
				for iter := 0; iter < 8; iter++ {
					snap := s.Snapshot()
					bm, err := snap.Eval(conds)
					if err != nil {
						t.Error(err)
						return
					}
					check(snap, bm, conds, fmt.Sprintf("workers=%d g=%d iter=%d eval", w, g, iter))
					bms, err := snap.EvalBatch([][]Cond{conds, conds2})
					if err != nil {
						t.Error(err)
						return
					}
					check(snap, bms[0], conds, fmt.Sprintf("workers=%d g=%d iter=%d batch0", w, g, iter))
					check(snap, bms[1], conds2, fmt.Sprintf("workers=%d g=%d iter=%d batch1", w, g, iter))
				}
			}(g)
		}
		readers.Wait()
		stop.Store(true)
		ingest.Wait()
		par.SetWorkers(prev)
	}
	gets, news := s.ScratchStats()
	if gets == 0 || news == 0 || news > gets {
		t.Fatalf("scratch stats gets=%d news=%d", gets, news)
	}
}

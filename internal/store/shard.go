package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"privacy3d/internal/par"
)

// Sharded scatter-gather execution. Sealed segments are partitioned into
// shards — goroutine-owned groups of segments — and a query scatters one
// task per non-empty shard (plus one for the unindexed tail) instead of one
// task per segment. Each shard task walks its own segments sequentially,
// reusing one pooled scratch window across all of them, so the per-segment
// allocation and per-segment scheduling the flat fan-out paid are gone from
// the hot path.
//
// Determinism. The segment→shard assignment is a pure function of the
// segment's ordinal (shardOf), so it never moves as the store grows: new
// segments hash onto shards, existing ones stay put, and every snapshot
// pins the per-shard segment lists it was published with (copy-on-write at
// seal time, exactly like the flat segment list). Because every segment
// owns a disjoint word-aligned window of the snapshot bitmap, the shards
// write disjoint words and the gathered bitmap is exact — byte-identical to
// the single-threaded single-query path at any worker or shard count.
// Aggregates then run off the bitmap in ascending row order (Sum), so no
// float ever re-associates: the scatter parallelises predicate evaluation,
// never the summation order.

// DefaultShards is the number of segment shards a store partitions sealed
// segments across. Sixteen keeps at least two shards per worker at the
// benchmark's workers=8 sweep, so work stealing can balance uneven shards.
const DefaultShards = 16

// shardOf maps a segment ordinal to its shard: a splitmix64 finalizer over
// the ordinal, reduced modulo the shard count. Pure and stateless, so the
// assignment is identical across snapshots, stores and processes.
func shardOf(seg, shards int) int {
	x := uint64(seg) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// rebuildShardsLocked regroups the sealed segment list into fresh per-shard
// lists (ascending base within each shard, since segments are visited in
// ordinal order). The old lists are never mutated — snapshots pinned before
// a seal keep reading them.
func (s *Store) rebuildShardsLocked() {
	byShard := make([][]*segment, s.shards)
	for i, sg := range s.segs {
		sh := shardOf(i, s.shards)
		byShard[sh] = append(byShard[sh], sg)
	}
	s.byShard = byShard
}

// Shards returns the store's shard count.
func (s *Store) Shards() int { return s.shards }

// Shards returns the shard count of the snapshot's store.
func (s *Snapshot) Shards() int { return s.store.shards }

// getScratch leases a segment-width scratch window from the store's pool;
// putScratch returns it. Scratch is always zeroed before use by the
// evaluation kernels (segment.step), so a dirty reused window is fine.
func (s *Store) getScratch() *[]uint64 {
	s.scratchGets.Add(1)
	return s.scratch.Get().(*[]uint64)
}

func (s *Store) putScratch(ws *[]uint64) { s.scratch.Put(ws) }

// ScratchStats reports the scratch pool's lifetime leases and how many of
// them had to allocate a fresh window (pool miss). The pooled-bitmap hit
// rate gauge is (gets-news)/gets.
func (s *Store) ScratchStats() (gets, news int64) {
	return s.scratchGets.Load(), s.scratchNews.Load()
}

// SegmentEvals reports the cumulative number of sealed segments scheduled
// for evaluation across all Eval/EvalScan/EvalBatch calls — the raw work
// volume the shards carried.
func (s *Store) SegmentEvals() int64 { return s.segEvals.Load() }

// scatter fans perSeg out across the snapshot's shards on the default
// worker pool: one task per non-empty shard, each walking its segments in
// ascending base order with one pooled scratch window, plus one task for
// the unindexed tail. Each segment's decoded data is acquired once around
// the perSeg call — the single point where the resident/spilled tiers
// converge for query execution — so a spilled segment is decoded once per
// shard visit no matter how many conjunctions perSeg evaluates against it.
// The per-shard segment counts are gathered in shard order (par.MapTasks)
// and folded into the store's work counter with a single atomic add — no
// per-segment synchronisation anywhere.
func (s *Snapshot) scatter(perSeg func(sg *segment, d *segData, scratch []uint64), tail func()) {
	active := make([]int, 0, len(s.byShard))
	for i := range s.byShard {
		if len(s.byShard[i]) > 0 {
			active = append(active, i)
		}
	}
	tasks := len(active)
	if s.tailLen > 0 {
		tasks++
	}
	if tasks == 0 {
		return
	}
	counts := par.MapTasks(par.Default(), tasks, func(t int) int {
		if t >= len(active) {
			tail()
			return 0
		}
		segs := s.byShard[active[t]]
		sw := s.store.getScratch()
		for _, sg := range segs {
			d, release := sg.acquire()
			perSeg(sg, d, *sw)
			release()
		}
		s.store.putScratch(sw)
		return len(segs)
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	s.store.segEvals.Add(int64(total))
}

// evalTail scans the unindexed open tail with the compiled conjunction.
func (s *Snapshot) evalTail(cc []compiledCond, bm *Bitmap) {
	base := len(s.segs) * s.store.segSize
	for i := 0; i < s.tailLen; i++ {
		if s.matchTail(cc, i) {
			bm.Set(base + i)
		}
	}
}

// window returns the segment's word-aligned window of the bitmap's words.
func (sg *segment) window(words []uint64) []uint64 {
	return words[sg.base>>6 : (sg.base+sg.n+63)>>6]
}

// Eval answers the conjunction via the segment indexes: the conjunction is
// planned once (range conditions on one column merge into a single
// interval), then the plan scatters across the shards — each shard task
// evaluates its own segments locally (zone-map skip, sorted-index binary
// search, word-parallel intersection) into the segment's disjoint window of
// the snapshot bitmap, reusing one pooled scratch window — and the
// unindexed tail falls back to a compiled scan. The gathered bitmap is
// exact, so the parallelism cannot perturb any answer: byte-identical to
// the single-threaded path at every worker and shard count.
func (s *Snapshot) Eval(conds []Cond) (*Bitmap, error) {
	cc, err := s.compile(conds)
	if err != nil {
		return nil, err
	}
	bm := NewBitmap(s.rows)
	if len(cc) == 0 {
		bm.SetAll()
		return bm, nil
	}
	p := planConds(cc)
	if p.empty {
		return bm, nil
	}
	s.scatter(
		func(sg *segment, d *segData, scratch []uint64) { d.eval(p, sg.window(bm.words), scratch) },
		func() { s.evalTail(cc, bm) },
	)
	return bm, nil
}

// EvalScan answers the conjunction by a compiled row-at-a-time sweep over
// every segment and the tail — the reference path the indexes must stay
// byte-identical to, and the fallback a -scan server runs. It scatters over
// the same shards as Eval, so indexed-vs-scan benchmarks compare index
// structure, not scheduling.
func (s *Snapshot) EvalScan(conds []Cond) (*Bitmap, error) {
	cc, err := s.compile(conds)
	if err != nil {
		return nil, err
	}
	bm := NewBitmap(s.rows)
	if len(cc) == 0 {
		bm.SetAll()
		return bm, nil
	}
	s.scatter(
		func(sg *segment, d *segData, _ []uint64) {
			w := sg.window(bm.words)
			for i := 0; i < sg.n; i++ {
				if matchRow(cc, d.nums, d.cats, i) {
					setBit(w, uint32(i))
				}
			}
		},
		func() { s.evalTail(cc, bm) },
	)
	return bm, nil
}

// EvalBatch evaluates a matrix of conjunctions in one column sweep per
// shard: every shard task visits each of its segments once and tests all
// planned conjunctions against it while the segment's columns and indexes
// are hot — the cache-locality amortisation the PIR AnswerBatch kernel gets
// from answering a query matrix in one database pass, applied to the
// answer-cache miss path. Each query gets its own bitmap, produced by
// exactly the per-segment operations Eval would run for it alone, so every
// batched bitmap is word-identical to the corresponding single-query Eval.
// An uncompilable conjunction fails the whole batch (callers validating
// queries individually should compile them first).
func (s *Snapshot) EvalBatch(batch [][]Cond) ([]*Bitmap, error) {
	out := make([]*Bitmap, len(batch))
	ccs := make([][]compiledCond, len(batch))
	plans := make([]*plan, len(batch))
	active := make([]int, 0, len(batch)) // queries that must visit segments
	for k, conds := range batch {
		cc, err := s.compile(conds)
		if err != nil {
			return nil, fmt.Errorf("store: batch query %d: %w", k, err)
		}
		out[k] = NewBitmap(s.rows)
		if len(cc) == 0 {
			out[k].SetAll()
			continue
		}
		p := planConds(cc)
		if p.empty {
			continue
		}
		ccs[k], plans[k] = cc, p
		active = append(active, k)
	}
	if len(active) == 0 {
		return out, nil
	}
	s.scatter(
		func(sg *segment, d *segData, scratch []uint64) {
			for _, k := range active {
				d.eval(plans[k], sg.window(out[k].words), scratch)
			}
		},
		func() {
			base := len(s.segs) * s.store.segSize
			for i := 0; i < s.tailLen; i++ {
				for _, k := range active {
					if s.matchTail(ccs[k], i) {
						out[k].Set(base + i)
					}
				}
			}
		},
	)
	return out, nil
}

// shardState is the store's sharded-execution state, embedded in Store so
// the constructor can initialise it in one place.
type shardState struct {
	shards  int
	byShard [][]*segment // shard → sealed segments ascending by base; replaced at seal

	scratch     sync.Pool // *[]uint64 of segSize/64 words
	scratchGets atomic.Int64
	scratchNews atomic.Int64
	segEvals    atomic.Int64
}

// initShards sets up the shard state for a store with the given segment
// size. shards ≤ 0 selects DefaultShards.
func (st *shardState) initShards(shards, segSize int) {
	if shards <= 0 {
		shards = DefaultShards
	}
	st.shards = shards
	st.byShard = make([][]*segment, shards)
	words := segSize >> 6
	st.scratch.New = func() any {
		st.scratchNews.Add(1)
		ws := make([]uint64, words)
		return &ws
	}
}

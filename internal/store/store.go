// Package store is the columnar segment engine behind the statistical
// server: an immutable, column-oriented row store with per-segment sorted
// indexes and zone maps, built so a compiled predicate evaluates as index
// range scans intersected into a row bitmap instead of the row-at-a-time
// full-table sweep that capped the server at toy sizes.
//
// Layout. Rows are ingested append-only into fixed-size segments
// (DefaultSegmentSize rows, always a multiple of 64). Numeric attributes
// are contiguous []float64 per segment; categorical attributes are
// dictionary-encoded []uint32 codes against a store-wide append-only
// dictionary. When a segment fills it is sealed: a zone map (min/max) and a
// sorted permutation index are built per numeric column, a code-sorted
// posting index per categorical column, and the segment never changes
// again. The open tail stays unindexed and is evaluated by a compiled scan
// — it is at most one segment of rows.
//
// Snapshots. Because sealed segments are immutable and tail buffers are
// never recycled (sealing allocates fresh ones), a Snapshot is just the
// segment list plus the tail lengths at pin time: zero-copy, always
// consistent, and completely unaffected by concurrent ingest. The
// statistical server pins one Snapshot per query, the auditor reasons over
// the pinned version, and masked releases materialize it — audits see a
// consistent database while ingest continues.
//
// Evaluation. Eval answers a conjunction of conditions with one bitmap per
// snapshot: per segment, each condition resolves to a permutation range
// (binary search over the sorted index, zone map for whole-segment
// skip/accept) whose rows are set in the segment's word-aligned bitmap
// window, and conditions intersect word-parallel (Bitmap). Aggregates then
// run off the bitmap: COUNT is a popcount, SUM/AVG a bitmap-driven sweep
// of the column in ascending row order — the identical float64 summation
// order as the scan path, so indexed answers are byte-identical to it.
// Sealed segments are partitioned into goroutine-owned shards and queries
// scatter one task per shard rather than per segment; see shard.go for the
// execution model and the determinism argument.
//
// Tiers. A store opened with a data directory (Create/Open) is durable and
// two-tiered: sealing also writes the segment — raw columns plus its
// indexes, CRC-checksummed — to disk, and under Options.MemCap decoded
// segments spill out of memory and are re-read on demand through a
// pinned-page LRU pager. Every reader goes through segment.acquire, which
// is tier-blind, so answers are byte-identical wherever the bytes live.
// Durability is manifest-based: immutable data files, atomic-rename
// commits, recovery to the last fully-validated manifest; see manifest.go
// for the file layout and tier.go for Create/Open/recovery.
package store

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"

	"privacy3d/internal/dataset"
)

// DefaultSegmentSize is the number of rows per sealed segment. It must be a
// multiple of 64 so every segment owns a word-aligned window of the
// snapshot bitmap (parallel segment evaluation then writes disjoint words).
const DefaultSegmentSize = 8192

// Op is a comparison operator, ordinal-compatible with sdcquery's.
type Op int

const (
	Lt Op = iota // <
	Le           // <=
	Gt           // >
	Ge           // >=
	Eq           // ==
	Ne           // !=
)

// Cond is one predicate condition: column OP value. Numeric conditions use
// V; string conditions use S with Str set (Str disambiguates the empty
// string from an absent value, the same contract as sdcquery.Cond).
type Cond struct {
	Col string
	Op  Op
	V   float64
	S   string
	Str bool
}

// isStr reports whether the condition carries a string value.
func (c Cond) isStr() bool { return c.Str || c.S != "" }

// compiledCond is a condition resolved against the schema: column index,
// kind, and (for categorical conditions) the dictionary code.
type compiledCond struct {
	col     int
	numeric bool
	op      Op
	v       float64
	code    uint32
	codeOK  bool // S is present in the dictionary; if not, Eq matches nothing and Ne everything
}

// dict is the store-wide string dictionary: append-only, so codes handed to
// sealed segments never change meaning and snapshot readers need no copy.
type dict struct {
	mu    sync.RWMutex
	codes map[string]uint32
	strs  []string
}

func newDict() *dict { return &dict{codes: map[string]uint32{}} }

func (d *dict) lookup(s string) (uint32, bool) {
	d.mu.RLock()
	c, ok := d.codes[s]
	d.mu.RUnlock()
	return c, ok
}

func (d *dict) intern(s string) uint32 {
	d.mu.Lock()
	c, ok := d.codes[s]
	if !ok {
		c = uint32(len(d.strs))
		d.codes[s] = c
		d.strs = append(d.strs, s)
	}
	d.mu.Unlock()
	return c
}

func (d *dict) str(c uint32) string {
	d.mu.RLock()
	s := d.strs[c]
	d.mu.RUnlock()
	return s
}

// Store is the append-only columnar engine. Ingest (Append/AppendDataset)
// is serialized on an internal mutex; Snapshot is a lock-free atomic load
// and may be called from any number of readers while ingest continues.
type Store struct {
	attrs   []dataset.Attribute
	segSize int
	dict    *dict
	tier    *tierState // tier bookkeeping; dir == "" for memory-only stores

	mu       sync.Mutex // serializes ingest, snapshot publication, and commits
	segs     []*segment // sealed, immutable; replaced (never appended in place) on seal
	tailNums [][]float64
	tailCats [][]uint32
	tailLen  int
	version  uint64 // (epoch<<32)|publish counter; bumped by publishLocked
	closed   bool

	// Durable-store state (zero for memory-only stores). epoch counts
	// Open/Create incarnations and occupies the version's high 32 bits, so
	// snapshot versions — and the answer-cache and noise keys derived from
	// them — can never collide across restarts even when a crash discarded
	// unpublished commits.
	epoch         uint64
	manifestSeq   uint64
	lockF         *os.File
	dictF         *os.File
	dictCommitted int   // dictionary entries flushed to DICT
	dictBytes     int64 // committed DICT prefix length
	dictCRC       uint32
	tailKeep      [2]string // tail files referenced by the two kept manifests

	shardState

	snap atomic.Pointer[Snapshot]
}

// New creates an empty store with the given schema and the default shard
// count. segSize ≤ 0 selects DefaultSegmentSize; other values must be
// positive multiples of 64.
func New(attrs []dataset.Attribute, segSize int) (*Store, error) {
	return NewSharded(attrs, segSize, 0)
}

// NewSharded creates an empty store partitioned into the given number of
// segment shards (≤ 0 selects DefaultShards). The shard count is fixed for
// the store's lifetime: segment→shard assignment is deterministic in it.
func NewSharded(attrs []dataset.Attribute, segSize, shards int) (*Store, error) {
	s, err := newStore(attrs, segSize, shards, "", Options{})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	return s, nil
}

// newStore builds a store shell (schema, shard state, tier bookkeeping,
// fresh tail) without publishing a snapshot; Create/Open finish durable
// setup before the first publish.
func newStore(attrs []dataset.Attribute, segSize, shards int, dir string, opts Options) (*Store, error) {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	if segSize%64 != 0 {
		return nil, fmt.Errorf("store: segment size must be a multiple of 64, got %d", segSize)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("store: schema needs at least one attribute")
	}
	if opts.MemCap < 0 {
		return nil, fmt.Errorf("store: negative memory cap %d", opts.MemCap)
	}
	s := &Store{
		attrs:   append([]dataset.Attribute(nil), attrs...),
		segSize: segSize,
		dict:    newDict(),
	}
	s.tier = newTierState(dir, s.attrs, segSize, opts)
	s.initShards(shards, segSize)
	s.freshTail()
	return s, nil
}

// FromDataset builds a store holding a copy of d's rows (column-wise bulk
// ingest; d is not retained).
func FromDataset(d *dataset.Dataset, segSize int) (*Store, error) {
	return FromDatasetSharded(d, segSize, 0)
}

// FromDatasetSharded is FromDataset with an explicit shard count (≤ 0
// selects DefaultShards).
func FromDatasetSharded(d *dataset.Dataset, segSize, shards int) (*Store, error) {
	s, err := NewSharded(d.Attrs(), segSize, shards)
	if err != nil {
		return nil, err
	}
	if err := s.AppendDataset(d); err != nil {
		return nil, err
	}
	return s, nil
}

// freshTail allocates new open-segment buffers. Buffers are never reused
// after sealing — pinned snapshots keep reading the old ones.
func (s *Store) freshTail() {
	s.tailNums = make([][]float64, len(s.attrs))
	s.tailCats = make([][]uint32, len(s.attrs))
	for j, a := range s.attrs {
		if a.Kind == dataset.Numeric {
			s.tailNums[j] = make([]float64, 0, s.segSize)
		} else {
			s.tailCats[j] = make([]uint32, 0, s.segSize)
		}
	}
	s.tailLen = 0
}

// sealLocked freezes the full tail into an indexed immutable segment. A
// durable store also writes the segment's checksummed file (tmp + fsync +
// rename) before the segment becomes visible, so every sealed segment a
// manifest will ever reference is already safely on disk. The segment list
// is replaced, not appended in place, so snapshots holding the old slice
// header are unaffected.
func (s *Store) sealLocked() error {
	d := buildSegData(s.tailNums, s.tailCats)
	sg := &segment{
		base:  len(s.segs) * s.segSize,
		n:     d.n,
		ord:   len(s.segs),
		bytes: d.footprint(),
		tier:  s.tier,
	}
	if s.tier.durable() {
		name := segFileName(sg.ord)
		size, crc, err := writeBlockFile(s.tier.dir, name, segMagic, sg.base, d.n, d.nums, d.cats, d)
		if err != nil {
			return err
		}
		sg.src = &fileSource{t: s.tier, ord: sg.ord, name: name, size: size, crc: crc, decoded: sg.bytes}
	}
	sg.data.Store(d)
	s.tier.noteSealed(sg.bytes)
	segs := make([]*segment, len(s.segs)+1)
	copy(segs, s.segs)
	segs[len(s.segs)] = sg
	s.segs = segs
	s.rebuildShardsLocked()
	s.freshTail()
	return nil
}

// publishLocked installs the current state as the live snapshot and bumps
// the publish counter that becomes the snapshot's version. The counter —
// not the row count — is the version so that two publishes with equal row
// counts but different content (future delete/compact paths, FromDataset
// rebuilds) can never collide on answer-cache or noise keys.
func (s *Store) publishLocked() {
	s.version++
	sn := &Snapshot{
		store:   s,
		segs:    s.segs,
		byShard: s.byShard,
		version: s.version,
		tailLen: s.tailLen,
		rows:    len(s.segs)*s.segSize + s.tailLen,
	}
	sn.tailNums = make([][]float64, len(s.tailNums))
	sn.tailCats = make([][]uint32, len(s.tailCats))
	for j := range s.attrs {
		if s.tailNums[j] != nil {
			sn.tailNums[j] = s.tailNums[j][:s.tailLen]
		}
		if s.tailCats[j] != nil {
			sn.tailCats[j] = s.tailCats[j][:s.tailLen]
		}
	}
	s.snap.Store(sn)
}

// Append ingests one row; vals must match the schema like dataset.Append
// (float64 or int for numeric attributes, string for categorical ones).
func (s *Store) Append(vals ...any) error {
	if len(vals) != len(s.attrs) {
		return fmt.Errorf("store: got %d values for %d attributes", len(vals), len(s.attrs))
	}
	fs := make([]float64, len(vals))
	cs := make([]uint32, len(vals))
	for j, v := range vals {
		if s.attrs[j].Kind == dataset.Numeric {
			switch x := v.(type) {
			case float64:
				fs[j] = x
			case int:
				fs[j] = float64(x)
			default:
				return fmt.Errorf("store: attribute %q is numeric, got %T", s.attrs[j].Name, v)
			}
		} else {
			str, ok := v.(string)
			if !ok {
				return fmt.Errorf("store: attribute %q is categorical, got %T", s.attrs[j].Name, v)
			}
			cs[j] = s.dict.intern(str)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	for j, a := range s.attrs {
		if a.Kind == dataset.Numeric {
			s.tailNums[j] = append(s.tailNums[j], fs[j])
		} else {
			s.tailCats[j] = append(s.tailCats[j], cs[j])
		}
	}
	s.tailLen++
	if s.tailLen == s.segSize {
		if err := s.sealLocked(); err != nil {
			// Roll the row back so the tail stays exactly one short of a
			// seal and the caller can retry.
			for j, a := range s.attrs {
				if a.Kind == dataset.Numeric {
					s.tailNums[j] = s.tailNums[j][:len(s.tailNums[j])-1]
				} else {
					s.tailCats[j] = s.tailCats[j][:len(s.tailCats[j])-1]
				}
			}
			s.tailLen--
			return err
		}
		if err := s.commitSpillLocked(); err != nil {
			// The seal is consistent in memory but not yet durable; the
			// next successful commit (seal or Close) carries it.
			return err
		}
	}
	s.publishLocked()
	return nil
}

// commitSpillLocked commits the current sealed state of a durable store
// and re-balances the resident tier under the memory cap. A no-op for
// memory-only stores.
func (s *Store) commitSpillLocked() error {
	if !s.tier.durable() {
		return nil
	}
	if err := s.commitLocked(); err != nil {
		return err
	}
	s.spillLocked()
	return nil
}

// AppendDataset bulk-ingests every row of d (schema names and kinds must
// match), copying column-wise without per-value boxing. One snapshot is
// published at the end.
func (s *Store) AppendDataset(d *dataset.Dataset) error {
	if d.Cols() != len(s.attrs) {
		return fmt.Errorf("store: dataset has %d columns, store schema %d", d.Cols(), len(s.attrs))
	}
	for j, a := range s.attrs {
		da := d.Attr(j)
		if da.Name != a.Name || da.Kind != a.Kind {
			return fmt.Errorf("store: column %d is %s/%v, store schema %s/%v", j, da.Name, da.Kind, a.Name, a.Kind)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	sealed := false
	for r := 0; r < d.Rows(); {
		take := s.segSize - s.tailLen
		if rem := d.Rows() - r; take > rem {
			take = rem
		}
		for j, a := range s.attrs {
			if a.Kind == dataset.Numeric {
				s.tailNums[j] = append(s.tailNums[j], d.NumColumn(j)[r:r+take]...)
			} else {
				col := d.CatColumn(j)
				for i := r; i < r+take; i++ {
					s.tailCats[j] = append(s.tailCats[j], s.dict.intern(col[i]))
				}
			}
		}
		s.tailLen += take
		r += take
		if s.tailLen == s.segSize {
			if err := s.sealLocked(); err != nil {
				// Publish the consistent prefix (earlier seals + current
				// tail rows minus this failed block stay as a full tail).
				s.publishLocked()
				return err
			}
			sealed = true
		}
	}
	// One commit for the whole bulk ingest, not one per sealed segment.
	if sealed {
		if err := s.commitSpillLocked(); err != nil {
			s.publishLocked()
			return err
		}
	}
	s.publishLocked()
	return nil
}

// Snapshot pins the current version: an immutable view unaffected by any
// ingest that happens after the call. Lock-free.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Rows returns the current row count.
func (s *Store) Rows() int { return s.Snapshot().rows }

// Version returns the current version: a monotonic publish counter bumped
// on every snapshot publication, so it uniquely identifies the visible
// data even across publishes that leave the row count unchanged.
func (s *Store) Version() uint64 { return s.Snapshot().version }

// Attrs returns the schema. The returned slice must not be modified.
func (s *Store) Attrs() []dataset.Attribute { return s.attrs }

// SegmentSize returns the rows per sealed segment.
func (s *Store) SegmentSize() int { return s.segSize }

// Index returns the column index of the named attribute, or -1.
func (s *Store) Index(name string) int {
	for j, a := range s.attrs {
		if a.Name == name {
			return j
		}
	}
	return -1
}

// Snapshot is an immutable view of the store at pin time: the sealed
// segments plus a frozen prefix of the open tail. All methods are safe for
// concurrent use and never observe later ingest.
type Snapshot struct {
	store    *Store
	segs     []*segment
	byShard  [][]*segment // shard → sealed segments, pinned at publish
	version  uint64
	tailNums [][]float64
	tailCats [][]uint32
	tailLen  int
	rows     int
}

// Rows returns the snapshot's row count.
func (s *Snapshot) Rows() int { return s.rows }

// Version identifies the snapshot: the store's publish counter at pin
// time. Answer caches and noise keys embed it so answers computed against
// one version are never served for another — including publishes that kept
// the row count unchanged.
func (s *Snapshot) Version() uint64 { return s.version }

// Attrs returns the schema.
func (s *Snapshot) Attrs() []dataset.Attribute { return s.store.attrs }

// Index returns the column index of the named attribute, or -1.
func (s *Snapshot) Index(name string) int { return s.store.Index(name) }

// compile resolves conditions against the schema. The rules match the
// sdcquery compiled predicate exactly: unknown columns, ordered operators
// on categorical columns, and value/column kind mismatches are errors.
func (s *Snapshot) compile(conds []Cond) ([]compiledCond, error) {
	out := make([]compiledCond, len(conds))
	for i, c := range conds {
		j := s.store.Index(c.Col)
		if j < 0 {
			return nil, fmt.Errorf("store: unknown column %q", c.Col)
		}
		cc := compiledCond{col: j, op: c.Op}
		if c.Op < Lt || c.Op > Ne {
			return nil, fmt.Errorf("store: unknown operator %v", c.Op)
		}
		if s.store.attrs[j].Kind == dataset.Numeric {
			if c.isStr() {
				return nil, fmt.Errorf("store: string value %q for numeric column %q", c.S, c.Col)
			}
			cc.numeric = true
			cc.v = c.V
		} else {
			// Mirrors sdcquery's lenience: a fully zero-valued condition
			// (Str unset, S == "", V == 0) is an empty-string comparison;
			// only V != 0 is a kind mismatch.
			if !c.isStr() && c.V != 0 {
				return nil, fmt.Errorf("store: numeric value %g for categorical column %q", c.V, c.Col)
			}
			if c.Op != Eq && c.Op != Ne {
				return nil, fmt.Errorf("store: operator %v not valid for categorical column %q", c.Op, c.Col)
			}
			cc.code, cc.codeOK = s.store.dict.lookup(c.S)
		}
		out[i] = cc
	}
	return out, nil
}

// matchTail evaluates the compiled conjunction against tail row i.
func (s *Snapshot) matchTail(cc []compiledCond, i int) bool {
	return matchRow(cc, s.tailNums, s.tailCats, i)
}

// matchRow is the compiled row-at-a-time evaluator shared by the tail and
// the scan path. Float comparisons give NaN exactly the semantics the
// index path reproduces (NaN fails everything except !=).
func matchRow(cc []compiledCond, nums [][]float64, cats [][]uint32, i int) bool {
	for _, c := range cc {
		if c.numeric {
			v := nums[c.col][i]
			var ok bool
			switch c.op {
			case Lt:
				ok = v < c.v
			case Le:
				ok = v <= c.v
			case Gt:
				ok = v > c.v
			case Ge:
				ok = v >= c.v
			case Eq:
				ok = v == c.v
			case Ne:
				ok = v != c.v
			}
			if !ok {
				return false
			}
		} else {
			eq := c.codeOK && cats[c.col][i] == c.code
			if (c.op == Eq) != eq {
				return false
			}
		}
	}
	return true
}

// Count returns the number of rows set in bm (popcount).
func (s *Snapshot) Count(bm *Bitmap) int { return bm.Count() }

// Sum adds up column col over the rows of bm in ascending row order — the
// identical float64 summation order as a sequential scan, which is what
// keeps indexed SUM/AVG answers byte-identical to the scan path. Zero
// words contribute nothing to the sum, so they are skipped before any bit
// iteration, and a segment whose whole window is zero is skipped before
// its column is even touched — sparse selections over wide segments pay
// for the rows they select, not for the full sweep. Adding zero terms in
// order and skipping them produce the same float64, so the skips cannot
// change a single byte of the answer. It panics if col is not numeric,
// mirroring dataset.NumColumn.
func (s *Snapshot) Sum(bm *Bitmap, col int) float64 {
	if s.store.attrs[col].Kind != dataset.Numeric {
		panic(fmt.Sprintf("store: attribute %q is not numeric", s.store.attrs[col].Name))
	}
	var sum float64
	for _, sg := range s.segs {
		words := sg.window(bm.words)
		if !anyWord(words) {
			continue
		}
		d, release := sg.acquire()
		colv := d.nums[col]
		for wi, w := range words {
			if w == 0 {
				continue
			}
			base := wi << 6
			for w != 0 {
				sum += colv[base+bits.TrailingZeros64(w)]
				w &= w - 1
			}
		}
		release()
	}
	if s.tailLen > 0 {
		base := len(s.segs) * s.store.segSize
		colv := s.tailNums[col]
		for i := 0; i < s.tailLen; i++ {
			if bm.Get(base + i) {
				sum += colv[i]
			}
		}
	}
	return sum
}

// Float returns the numeric value at (row i, column col). It panics on a
// non-numeric column or out-of-range row, mirroring slice indexing.
func (s *Snapshot) Float(i, col int) float64 {
	if sg := i / s.store.segSize; sg < len(s.segs) {
		d, release := s.segs[sg].acquire()
		v := d.nums[col][i%s.store.segSize]
		release()
		return v
	}
	return s.tailNums[col][i-len(s.segs)*s.store.segSize]
}

// Cat returns the categorical value at (row i, column col).
func (s *Snapshot) Cat(i, col int) string {
	var code uint32
	if sg := i / s.store.segSize; sg < len(s.segs) {
		d, release := s.segs[sg].acquire()
		code = d.cats[col][i%s.store.segSize]
		release()
	} else {
		code = s.tailCats[col][i-len(s.segs)*s.store.segSize]
	}
	return s.store.dict.str(code)
}

// NumRange returns the minimum and maximum of numeric column col over the
// snapshot, skipping NaN values exactly like a plain `v < lo / v > hi`
// sweep would (+Inf, -Inf when no comparable value exists). Sealed
// segments answer straight from their zone maps — the zone map of a
// spilled segment still costs an acquire, but never a column sweep.
func (s *Snapshot) NumRange(col int) (lo, hi float64) {
	if s.store.attrs[col].Kind != dataset.Numeric {
		panic(fmt.Sprintf("store: attribute %q is not numeric", s.store.attrs[col].Name))
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, sg := range s.segs {
		d, release := sg.acquire()
		idx := &d.nidx[col]
		if len(idx.sorted) > 0 {
			if idx.min < lo {
				lo = idx.min
			}
			if idx.max > hi {
				hi = idx.max
			}
		}
		release()
	}
	colv := s.tailNums[col]
	for i := 0; i < s.tailLen; i++ {
		if colv[i] < lo {
			lo = colv[i]
		}
		if colv[i] > hi {
			hi = colv[i]
		}
	}
	return lo, hi
}

// Materialize exports the snapshot as a dataset (column-wise copy,
// dictionary codes decoded). Masked releases run off this, so /protect
// sees exactly the version pinned at request time.
func (s *Snapshot) Materialize() *dataset.Dataset {
	nums := make([][]float64, len(s.store.attrs))
	cats := make([][]string, len(s.store.attrs))
	for j, a := range s.store.attrs {
		if a.Kind == dataset.Numeric {
			nums[j] = make([]float64, 0, s.rows)
		} else {
			cats[j] = make([]string, 0, s.rows)
		}
	}
	// Segment-outer order so each spilled segment is decoded once for all
	// of its columns, not once per column.
	for _, sg := range s.segs {
		d, release := sg.acquire()
		for j, a := range s.store.attrs {
			if a.Kind == dataset.Numeric {
				nums[j] = append(nums[j], d.nums[j]...)
			} else {
				for _, code := range d.cats[j] {
					cats[j] = append(cats[j], s.store.dict.str(code))
				}
			}
		}
		release()
	}
	for j, a := range s.store.attrs {
		if a.Kind == dataset.Numeric {
			nums[j] = append(nums[j], s.tailNums[j]...)
		} else {
			for _, code := range s.tailCats[j] {
				cats[j] = append(cats[j], s.store.dict.str(code))
			}
		}
	}
	d, err := dataset.NewFromColumns(s.store.attrs, s.rows, nums, cats)
	if err != nil {
		// The snapshot's own columns always satisfy NewFromColumns'
		// invariants; a failure here is a store bug.
		panic(fmt.Sprintf("store: materialize: %v", err))
	}
	return d
}

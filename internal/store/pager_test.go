package store

import (
	"bytes"
	"testing"
)

func pagerSource(n int) ([]byte, *bytes.Reader) {
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i * 31)
	}
	return src, bytes.NewReader(src)
}

func TestPagerReadAtCrossesPages(t *testing.T) {
	src, r := pagerSource(1000)
	p := newPager(64, 1<<20)
	for _, span := range []struct{ off, n int }{
		{0, 64}, {60, 10}, {0, 1000}, {999, 1}, {100, 500}, {63, 2},
	} {
		dst := make([]byte, span.n)
		if err := p.readAt(1, r, int64(len(src)), int64(span.off), dst); err != nil {
			t.Fatalf("readAt(%d,%d): %v", span.off, span.n, err)
		}
		if !bytes.Equal(dst, src[span.off:span.off+span.n]) {
			t.Fatalf("readAt(%d,%d) returned wrong bytes", span.off, span.n)
		}
	}
	if err := p.readAt(1, r, int64(len(src)), 990, make([]byte, 20)); err == nil {
		t.Fatalf("read past EOF succeeded")
	}
}

func TestPagerHitsAndLRUEviction(t *testing.T) {
	src, r := pagerSource(1024)
	p := newPager(64, 128) // room for exactly two pages
	lease := func(pageNo uint32) func() {
		t.Helper()
		_, release, err := p.lease(7, pageNo, r, int64(len(src)))
		if err != nil {
			t.Fatalf("lease page %d: %v", pageNo, err)
		}
		return release
	}
	lease(0)()
	lease(1)()
	if s := p.stats(); s.misses != 2 || s.hits != 0 || s.evictions != 0 {
		t.Fatalf("after two cold leases: %+v", s)
	}
	lease(0)() // hit
	if s := p.stats(); s.hits != 1 {
		t.Fatalf("page 0 not served from cache: %+v", s)
	}
	lease(2)() // evicts page 1 (LRU; page 0 was touched more recently)
	if s := p.stats(); s.evictions != 1 {
		t.Fatalf("third page did not evict: %+v", s)
	}
	lease(0)() // still cached
	if s := p.stats(); s.hits != 2 {
		t.Fatalf("LRU evicted the recently used page: %+v", s)
	}
	lease(1)() // miss again
	if s := p.stats(); s.misses != 4 {
		t.Fatalf("evicted page served without a read: %+v", s)
	}
}

func TestPagerPinnedPageSurvivesEviction(t *testing.T) {
	src, r := pagerSource(1024)
	p := newPager(64, 64) // one page of budget
	_, release, err := p.lease(7, 0, r, int64(len(src)))
	if err != nil {
		t.Fatal(err)
	}
	// Fill way past the cap while page 0 stays pinned.
	for pg := uint32(1); pg < 8; pg++ {
		_, rel, err := p.lease(7, pg, r, int64(len(src)))
		if err != nil {
			t.Fatalf("lease %d: %v", pg, err)
		}
		rel()
	}
	misses := p.stats().misses
	_, rel2, err := p.lease(7, 0, r, int64(len(src)))
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if got := p.stats(); got.misses != misses {
		t.Fatalf("pinned page was evicted (misses %d -> %d)", misses, got.misses)
	}
	release()
	// Unpinned now; pressure can evict it.
	for pg := uint32(1); pg < 4; pg++ {
		_, rel, err := p.lease(7, pg, r, int64(len(src)))
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if p.stats().bytes > 64 {
		t.Fatalf("cache stayed over cap with nothing pinned: %d bytes", p.stats().bytes)
	}
}

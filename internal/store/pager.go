package store

import (
	"container/list"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the pager's fixed page size. 64 KiB keeps a whole
// numeric column stripe of an 8192-row segment in one page while staying
// small enough that a byte-capped cache holds pages from many segments.
const DefaultPageSize = 64 << 10

// pageKey addresses one fixed-size page of one backing file.
type pageKey struct {
	file uint32
	page uint32
}

// page is one cached fixed-size slice of a backing file. pins counts
// outstanding leases; a pinned page is never evicted. elem is the page's
// position in the pager's LRU list while unpinned (nil while pinned).
type page struct {
	key  pageKey
	buf  []byte
	pins int
	elem *list.Element
}

// pager is the fixed-page cache between spilled segments and their files:
// every cold read lands in a page, leases pin pages against eviction while
// bytes are being copied out, and unpinned pages age out LRU-wise under a
// byte cap. One pager serves a whole store, so hot segment files share the
// budget and a scan of one cold segment cannot wipe another's hot pages
// beyond the cap's mercy.
type pager struct {
	pageSize int
	capBytes int64

	mu    sync.Mutex
	pages map[pageKey]*page
	lru   *list.List // front = most recently unpinned
	bytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newPager(pageSize int, capBytes int64) *pager {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if capBytes < int64(pageSize) {
		capBytes = int64(pageSize) // always room to pin at least one page
	}
	return &pager{
		pageSize: pageSize,
		capBytes: capBytes,
		pages:    make(map[pageKey]*page),
		lru:      list.New(),
	}
}

// lease pins the page covering byte offset page*pageSize of file, reading
// it through src on a miss. The returned buffer is valid until release is
// called; callers copy out what they need and release promptly. size is
// the file's total length, bounding the final partial page.
func (p *pager) lease(file uint32, pageNo uint32, src io.ReaderAt, size int64) ([]byte, func(), error) {
	key := pageKey{file: file, page: pageNo}
	p.mu.Lock()
	if pg, ok := p.pages[key]; ok {
		p.pin(pg)
		p.mu.Unlock()
		p.hits.Add(1)
		gPagerHits.Add(1)
		return pg.buf, func() { p.release(pg) }, nil
	}
	p.mu.Unlock()
	p.misses.Add(1)
	gPagerMisses.Add(1)

	off := int64(pageNo) * int64(p.pageSize)
	n := int64(p.pageSize)
	if off+n > size {
		n = size - off
	}
	if n <= 0 {
		return nil, nil, fmt.Errorf("pager: page %d beyond file size %d", pageNo, size)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(src, off, n), buf); err != nil {
		return nil, nil, fmt.Errorf("pager: read page %d: %w", pageNo, err)
	}

	p.mu.Lock()
	if pg, ok := p.pages[key]; ok {
		// Lost the fill race; adopt the winner's page and drop our copy.
		p.pin(pg)
		p.mu.Unlock()
		return pg.buf, func() { p.release(pg) }, nil
	}
	pg := &page{key: key, buf: buf, pins: 1}
	p.pages[key] = pg
	p.bytes += int64(len(buf))
	p.evictLocked()
	p.mu.Unlock()
	return pg.buf, func() { p.release(pg) }, nil
}

// pin takes a lease on a cached page, removing it from the LRU while any
// lease is outstanding. Caller holds p.mu.
func (p *pager) pin(pg *page) {
	if pg.elem != nil {
		p.lru.Remove(pg.elem)
		pg.elem = nil
	}
	pg.pins++
}

// release drops one lease; the last release parks the page at the front of
// the LRU and trims the cache back under its cap.
func (p *pager) release(pg *page) {
	p.mu.Lock()
	pg.pins--
	if pg.pins == 0 {
		pg.elem = p.lru.PushFront(pg)
		p.evictLocked()
	}
	p.mu.Unlock()
}

// evictLocked drops least-recently-used unpinned pages until the cache is
// back under capBytes. Pinned pages are untouchable, so a burst of leases
// can exceed the cap transiently; it drains as leases release.
func (p *pager) evictLocked() {
	for p.bytes > p.capBytes {
		back := p.lru.Back()
		if back == nil {
			return // everything over the cap is pinned
		}
		pg := back.Value.(*page)
		p.lru.Remove(back)
		pg.elem = nil
		delete(p.pages, pg.key)
		p.bytes -= int64(len(pg.buf))
		p.evictions.Add(1)
		gPagerEvictions.Add(1)
	}
}

// readAt copies file bytes [off, off+len(dst)) into dst through the page
// cache, pinning each spanned page only for the duration of its copy.
func (p *pager) readAt(file uint32, src io.ReaderAt, size int64, off int64, dst []byte) error {
	if off < 0 || off+int64(len(dst)) > size {
		return fmt.Errorf("pager: read [%d,%d) beyond file size %d", off, off+int64(len(dst)), size)
	}
	for len(dst) > 0 {
		pageNo := uint32(off / int64(p.pageSize))
		buf, release, err := p.lease(file, pageNo, src, size)
		if err != nil {
			return err
		}
		inPage := int(off - int64(pageNo)*int64(p.pageSize))
		n := copy(dst, buf[inPage:])
		release()
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// pagerStats is a point-in-time snapshot of the pager counters.
type pagerStats struct {
	hits, misses, evictions int64
	bytes                   int64
}

func (p *pager) stats() pagerStats {
	p.mu.Lock()
	bytes := p.bytes
	p.mu.Unlock()
	return pagerStats{
		hits:      p.hits.Load(),
		misses:    p.misses.Load(),
		evictions: p.evictions.Load(),
		bytes:     bytes,
	}
}

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"

	"privacy3d/internal/dataset"
)

// Two-tier storage. Every store owns a tierState; a memory-only store
// (New/FromDataset) has dir == "" and keeps every sealed segment resident
// forever, while a durable store (Create/Open) writes each sealed segment
// to its own checksummed file at seal time and may then evict the decoded
// form under a memory cap — the segment stays queryable through its
// SegmentSource, which decodes pages leased from the store's pager.
// Promotion is read-through: an acquire of a spilled segment re-admits it
// to the resident tier whenever the cap has room.

// Process-wide tier gauges, aggregated over every live (un-Closed) store
// so serve binaries can surface them on /metrics without holding a store
// reference. Memory-only stores count toward the resident gauge too — a
// serve process without -datadir reports its whole store resident.
var (
	gSegResident    atomic.Int64
	gSegSpilled     atomic.Int64
	gPagerHits      atomic.Int64
	gPagerMisses    atomic.Int64
	gPagerEvictions atomic.Int64
)

// TierGauges reports the process-wide tier gauges: resident and spilled
// sealed-segment counts across live stores, and cumulative pager hits,
// misses and evictions.
func TierGauges() (resident, spilled, pagerHits, pagerMisses, pagerEvictions int64) {
	return gSegResident.Load(), gSegSpilled.Load(), gPagerHits.Load(),
		gPagerMisses.Load(), gPagerEvictions.Load()
}

// Options configures a durable store.
type Options struct {
	// SegmentSize is the rows per sealed segment (0 selects
	// DefaultSegmentSize on Create; on Open it must match the manifest or
	// be 0).
	SegmentSize int
	// Shards is the segment shard count (0 selects DefaultShards on
	// Create, the manifest's count on Open).
	Shards int
	// MemCap caps the decoded resident bytes of sealed segments; 0 means
	// uncapped (segments are still persisted, never evicted).
	MemCap int64
	// PageBytes caps the pager's page cache; 0 derives it from MemCap
	// (or 64 MiB when MemCap is 0 too).
	PageBytes int64
}

// tierState is the per-store tier bookkeeping shared by its segments.
type tierState struct {
	dir     string // "" for memory-only stores
	memCap  int64
	pg      *pager
	attrs   []dataset.Attribute
	segSize int

	useClock      atomic.Int64 // logical clock stamping acquires (LRU order)
	residentBytes atomic.Int64 // decoded bytes admitted to the resident tier
	residentSegs  atomic.Int64
	spilledSegs   atomic.Int64

	fmu    sync.Mutex
	files  map[int]*os.File // ord → open segment file
	closed bool
}

func newTierState(dir string, attrs []dataset.Attribute, segSize int, opts Options) *tierState {
	pageBytes := opts.PageBytes
	if pageBytes <= 0 {
		if opts.MemCap > 0 {
			pageBytes = opts.MemCap
		} else {
			pageBytes = 64 << 20
		}
	}
	return &tierState{
		dir:     dir,
		memCap:  opts.MemCap,
		pg:      newPager(DefaultPageSize, pageBytes),
		attrs:   attrs,
		segSize: segSize,
		files:   map[int]*os.File{},
	}
}

// durable reports whether the tier has a backing directory.
func (t *tierState) durable() bool { return t.dir != "" }

// admit reserves b decoded bytes of resident budget. With no cap it always
// succeeds; under a cap it fails when the budget is exhausted (but a store
// whose cap is smaller than a single segment may still admit it when
// nothing else is resident, so progress never wedges).
func (t *tierState) admit(b int64) bool {
	if t.memCap <= 0 {
		t.residentBytes.Add(b)
		return true
	}
	for {
		cur := t.residentBytes.Load()
		if cur+b > t.memCap && cur > 0 {
			return false
		}
		if t.residentBytes.CompareAndSwap(cur, cur+b) {
			return true
		}
	}
}

func (t *tierState) unadmit(b int64) { t.residentBytes.Add(-b) }

// noteResident flips a spilled segment's accounting to resident (its bytes
// were already reserved by admit).
func (t *tierState) noteResident(int64) {
	t.residentSegs.Add(1)
	t.spilledSegs.Add(-1)
	gSegResident.Add(1)
	gSegSpilled.Add(-1)
}

// noteSealed accounts a freshly sealed (resident) segment.
func (t *tierState) noteSealed(b int64) {
	t.residentBytes.Add(b)
	t.residentSegs.Add(1)
	gSegResident.Add(1)
}

// noteSpilled flips a resident segment's accounting to spilled.
func (t *tierState) noteSpilled(b int64) {
	t.residentBytes.Add(-b)
	t.residentSegs.Add(-1)
	t.spilledSegs.Add(1)
	gSegResident.Add(-1)
	gSegSpilled.Add(1)
}

// file returns the open handle for segment ord, opening (and caching) it
// on first use.
func (t *tierState) file(ord int, name string) (*os.File, error) {
	t.fmu.Lock()
	defer t.fmu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("store: %s: store is closed", name)
	}
	if f, ok := t.files[ord]; ok {
		return f, nil
	}
	f, err := os.Open(filepath.Join(t.dir, name))
	if err != nil {
		return nil, err
	}
	t.files[ord] = f
	return f, nil
}

// close drops the file handles and retires the store's gauge contribution.
func (t *tierState) close() {
	t.fmu.Lock()
	if !t.closed {
		t.closed = true
		for _, f := range t.files {
			f.Close()
		}
		t.files = nil
		gSegResident.Add(-t.residentSegs.Load())
		gSegSpilled.Add(-t.spilledSegs.Load())
	}
	t.fmu.Unlock()
}

// fileSource is the SegmentSource for a sealed segment persisted in the
// store directory: it decodes the segment file through the store's pager.
type fileSource struct {
	t       *tierState
	ord     int
	name    string
	size    int64
	crc     uint32 // whole-file CRC, as recorded in the manifest
	decoded int64  // decoded footprint, for the resident-tier accounting
}

func (fs *fileSource) Name() string { return fs.name }

func (fs *fileSource) Load() (*segData, error) {
	f, err := fs.t.file(fs.ord, fs.name)
	if err != nil {
		return nil, err
	}
	br := &blockReader{
		src:  f,
		size: fs.size,
		name: fs.name,
		read: func(off int64, dst []byte) error {
			return fs.t.pg.readAt(uint32(fs.ord), f, fs.size, off, dst)
		},
	}
	_, d, err := decodeBlock(br, segMagic, fs.t.attrs, true)
	if err == nil && d.n != fs.t.segSize {
		return nil, fmt.Errorf("store: %s: %d rows, segment size is %d", fs.name, d.n, fs.t.segSize)
	}
	return d, err
}

// TierStats is a point-in-time view of one store's tier state.
type TierStats struct {
	Resident      int   // sealed segments whose decoded form is in memory
	Spilled       int   // sealed segments served through the pager
	ResidentBytes int64 // decoded bytes admitted against MemCap
	PagerHits     int64
	PagerMisses   int64
	PagerEvictions int64
	PagerBytes    int64
}

// TierStats reports the store's tier counters.
func (s *Store) TierStats() TierStats {
	t := s.tier
	ps := t.pg.stats()
	return TierStats{
		Resident:       int(t.residentSegs.Load()),
		Spilled:        int(t.spilledSegs.Load()),
		ResidentBytes:  t.residentBytes.Load(),
		PagerHits:      ps.hits,
		PagerMisses:    ps.misses,
		PagerEvictions: ps.evictions,
		PagerBytes:     ps.bytes,
	}
}

// Exists reports whether dir holds a committed store (any manifest file).
func Exists(dir string) bool {
	seqs, err := listManifests(dir)
	return err == nil && len(seqs) > 0
}

// lockDir takes the directory's exclusive flock. The lock lives on the
// open file description, so it is released by Close, by process exit, and
// by a crash — stale locks cannot wedge a restart.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is locked by another store instance (close it first): %w", dir, err)
	}
	return f, nil
}

// Create initialises a new durable store in dir (created if missing, must
// not already contain a store) and commits an empty manifest so the
// directory is recoverable from the first moment.
func Create(dir string, attrs []dataset.Attribute, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if Exists(dir) {
		return nil, fmt.Errorf("store: %s already contains a store (use Open)", dir)
	}
	lockF, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s, err := newStore(attrs, opts.SegmentSize, opts.Shards, dir, opts)
	if err != nil {
		lockF.Close()
		return nil, err
	}
	s.lockF = lockF
	s.dictF, err = os.OpenFile(filepath.Join(dir, dictFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lockF.Close()
		return nil, err
	}
	s.epoch = 1
	s.version = s.epoch << 32
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.commitLocked(); err != nil {
		s.dictF.Close()
		lockF.Close()
		return nil, err
	}
	s.publishLocked()
	return s, nil
}

// CreateFromDataset is Create followed by a bulk ingest of d's rows.
func CreateFromDataset(dir string, d *dataset.Dataset, opts Options) (*Store, error) {
	s, err := Create(dir, d.Attrs(), opts)
	if err != nil {
		return nil, err
	}
	if err := s.AppendDataset(d); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Open recovers the store committed in dir: it adopts the newest manifest
// whose checksum and every referenced file's checksum verify (deleting
// torn newer ones), loads the committed dictionary prefix and tail, and
// registers every sealed segment as spilled — decoded forms stream back in
// through the pager as queries touch them. The epoch is bumped and
// committed before the store is returned, so snapshot versions from this
// incarnation can never collide with versions any previous incarnation may
// have handed out after its last commit.
func Open(dir string, opts Options) (*Store, error) {
	lockF, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	m, seq, err := recoverManifest(dir)
	if err != nil {
		lockF.Close()
		return nil, err
	}
	if opts.SegmentSize > 0 && opts.SegmentSize != m.SegSize {
		lockF.Close()
		return nil, fmt.Errorf("store: %s has segment size %d, requested %d", dir, m.SegSize, opts.SegmentSize)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = m.Shards
	}
	s, err := newStore(m.Attrs, m.SegSize, shards, dir, opts)
	if err != nil {
		lockF.Close()
		return nil, err
	}
	s.lockF = lockF
	s.manifestSeq = seq
	s.epoch = m.Epoch + 1
	s.version = s.epoch << 32
	fail := func(err error) (*Store, error) {
		s.tier.close()
		lockF.Close()
		return nil, err
	}

	// Dictionary: load the committed prefix, truncate any uncommitted
	// trailing bytes a crashed ingest appended, and keep appending.
	s.dictF, err = os.OpenFile(filepath.Join(dir, dictFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fail(err)
	}
	if err := s.loadDict(m); err != nil {
		s.dictF.Close()
		return fail(err)
	}

	// Sealed segments: handles only, all spilled. Decoded footprints come
	// from the manifest so the memory cap can account a segment it has
	// never decoded.
	segs := make([]*segment, len(m.Segments))
	for i := range m.Segments {
		b := &m.Segments[i]
		sg := &segment{
			base:  i * s.segSize,
			n:     b.Rows,
			ord:   i,
			bytes: b.Decoded,
			tier:  s.tier,
			src:   &fileSource{t: s.tier, ord: i, name: b.File, size: b.Size, crc: b.CRC, decoded: b.Decoded},
		}
		segs[i] = sg
	}
	s.segs = segs
	s.tier.spilledSegs.Store(int64(len(segs)))
	gSegSpilled.Add(int64(len(segs)))

	// Open tail: decoded directly (it is at most one segment of rows).
	if m.Tail != nil {
		if err := s.loadTail(m.Tail); err != nil {
			s.dictF.Close()
			return fail(err)
		}
		s.tailKeep[0] = m.Tail.File
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebuildShardsLocked()
	// Commit the epoch bump immediately (same data, new epoch) so a crash
	// before the next natural commit still leaves the epoch consumed.
	if err := s.commitLocked(); err != nil {
		s.dictF.Close()
		s.tier.close()
		lockF.Close()
		return nil, err
	}
	s.publishLocked()
	return s, nil
}

// loadDict reads the committed dictionary prefix and positions the file
// for appends.
func (s *Store) loadDict(m *manifest) error {
	if m.DictBytes > 0 {
		buf := make([]byte, m.DictBytes)
		if _, err := io.ReadFull(io.NewSectionReader(s.dictF, 0, m.DictBytes), buf); err != nil {
			return fmt.Errorf("store: dictionary: %w", err)
		}
		for len(buf) > 0 {
			n, w := binary.Uvarint(buf)
			if w <= 0 || uint64(len(buf)-w) < n {
				return fmt.Errorf("store: dictionary: corrupt entry at byte %d", m.DictBytes-int64(len(buf)))
			}
			s.dict.intern(string(buf[w : w+int(n)]))
			buf = buf[w+int(n):]
		}
	}
	if len(s.dict.strs) != m.DictLen {
		return fmt.Errorf("store: dictionary has %d committed entries, manifest says %d", len(s.dict.strs), m.DictLen)
	}
	if err := s.dictF.Truncate(m.DictBytes); err != nil {
		return err
	}
	if _, err := s.dictF.Seek(m.DictBytes, io.SeekStart); err != nil {
		return err
	}
	s.dictCommitted = m.DictLen
	s.dictBytes = m.DictBytes
	s.dictCRC = m.DictCRC
	return nil
}

// loadTail decodes the committed tail file into fresh tail buffers.
func (s *Store) loadTail(b *manifestBlock) error {
	f, err := os.Open(filepath.Join(s.tier.dir, b.File))
	if err != nil {
		return err
	}
	defer f.Close()
	br := &blockReader{
		src:  f,
		size: b.Size,
		name: b.File,
		read: func(off int64, dst []byte) error {
			_, err := f.ReadAt(dst, off)
			return err
		},
	}
	_, d, err := decodeBlock(br, tailMagic, s.attrs, false)
	if err != nil {
		return err
	}
	if d.n != b.Rows || d.n > s.segSize {
		return fmt.Errorf("store: %s: %d rows, manifest says %d (segment size %d)", b.File, d.n, b.Rows, s.segSize)
	}
	for j := range s.attrs {
		if d.nums[j] != nil {
			s.tailNums[j] = append(s.tailNums[j], d.nums[j]...)
		}
		if d.cats[j] != nil {
			s.tailCats[j] = append(s.tailCats[j], d.cats[j]...)
		}
	}
	s.tailLen = d.n
	return nil
}

// flushDictLocked appends the uncommitted dictionary entries to DICT and
// fsyncs, maintaining the running committed CRC.
func (s *Store) flushDictLocked() error {
	s.dict.mu.RLock()
	n := len(s.dict.strs)
	var buf []byte
	for _, str := range s.dict.strs[s.dictCommitted:n] {
		buf = binary.AppendUvarint(buf, uint64(len(str)))
		buf = append(buf, str...)
	}
	s.dict.mu.RUnlock()
	if len(buf) == 0 {
		s.dictCommitted = n
		return nil
	}
	if _, err := s.dictF.Write(buf); err != nil {
		return err
	}
	if err := s.dictF.Sync(); err != nil {
		return err
	}
	s.dictCommitted = n
	s.dictBytes += int64(len(buf))
	s.dictCRC = crc32.Update(s.dictCRC, crc32.IEEETable, buf)
	return nil
}

// commitLocked makes the current sealed state (and open tail) durable:
// flush the dictionary, write a fresh tail file when the tail is
// non-empty, and commit a new manifest via atomic rename. Sealed segment
// files were already written (and fsync'd) at seal time. After the commit,
// manifests and tail files superseded twice over are removed — the
// previous commit stays on disk as the fallback recovery point.
func (s *Store) commitLocked() error {
	if err := s.flushDictLocked(); err != nil {
		return err
	}
	seq := s.manifestSeq + 1
	m := &manifest{
		SegSize:   s.segSize,
		Shards:    s.shards,
		Epoch:     s.epoch,
		Version:   s.version,
		Attrs:     s.attrs,
		DictLen:   s.dictCommitted,
		DictBytes: s.dictBytes,
		DictCRC:   s.dictCRC,
	}
	m.Segments = make([]manifestBlock, len(s.segs))
	for i, sg := range s.segs {
		src := sg.src.(*fileSource)
		m.Segments[i] = manifestBlock{File: src.name, Rows: sg.n, Size: src.size, CRC: src.crc, Decoded: src.decoded}
	}
	var tailName string
	if s.tailLen > 0 {
		tailName = tailFileName(seq)
		nums := make([][]float64, len(s.attrs))
		cats := make([][]uint32, len(s.attrs))
		for j := range s.attrs {
			if s.tailNums[j] != nil {
				nums[j] = s.tailNums[j][:s.tailLen]
			}
			if s.tailCats[j] != nil {
				cats[j] = s.tailCats[j][:s.tailLen]
			}
		}
		size, crc, err := writeBlockFile(s.tier.dir, tailName, tailMagic, len(s.segs)*s.segSize, s.tailLen, nums, cats, nil)
		if err != nil {
			return err
		}
		m.Tail = &manifestBlock{File: tailName, Rows: s.tailLen, Size: size, CRC: crc}
	}
	if err := writeManifest(s.tier.dir, seq, m); err != nil {
		return err
	}
	s.manifestSeq = seq
	s.tailKeep[1] = s.tailKeep[0]
	s.tailKeep[0] = tailName
	s.cleanupLocked(seq)
	return nil
}

// cleanupLocked removes manifests and tail files older than the previous
// commit. Best-effort.
func (s *Store) cleanupLocked(seq uint64) {
	seqs, err := listManifests(s.tier.dir)
	if err != nil {
		return
	}
	for _, old := range seqs {
		if old < seq && old != s.prevManifestSeq(seqs, seq) {
			os.Remove(filepath.Join(s.tier.dir, manifestFileName(old)))
		}
	}
	sweepOrphans(s.tier.dir, s.keepFiles(), len(s.segs))
}

// prevManifestSeq returns the newest sequence below seq (the fallback
// commit), or seq itself when none exists.
func (s *Store) prevManifestSeq(seqs []uint64, seq uint64) uint64 {
	best := seq
	for _, c := range seqs {
		if c < seq && (best == seq || c > best) {
			best = c
		}
	}
	return best
}

// keepFiles names the tail files the two retained manifests reference.
func (s *Store) keepFiles() map[string]bool {
	keep := map[string]bool{}
	for _, name := range s.tailKeep {
		if name != "" {
			keep[name] = true
		}
	}
	return keep
}

// Close commits the final state (a durable store's open tail becomes part
// of the committed manifest, so a clean shutdown loses nothing), releases
// the directory lock, and retires the store's gauge contribution. The
// store must not be used afterwards; snapshots still held may keep reading
// resident data but will panic if they touch a spilled segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.tier.durable() {
		err = s.commitLocked()
		if cerr := s.dictF.Close(); err == nil {
			err = cerr
		}
	}
	s.tier.close()
	if s.lockF != nil {
		syscall.Flock(int(s.lockF.Fd()), syscall.LOCK_UN)
		if cerr := s.lockF.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// spillLocked evicts least-recently-used resident segments until the
// decoded resident bytes fit the cap. Only durably persisted segments are
// evictable; in-flight readers keep the immutable segData they acquired.
func (s *Store) spillLocked() {
	t := s.tier
	if !t.durable() || t.memCap <= 0 {
		return
	}
	for t.residentBytes.Load() > t.memCap {
		var victim *segment
		var oldest int64
		for _, sg := range s.segs {
			if sg.src == nil || !sg.resident() {
				continue
			}
			if lu := sg.lastUse.Load(); victim == nil || lu < oldest {
				victim, oldest = sg, lu
			}
		}
		if victim == nil || !victim.evict() {
			return
		}
	}
}

package store

import (
	"math"
	"sort"
)

// A segment is an immutable, fully indexed block of exactly segSize rows.
// Columns are contiguous: numeric attributes as []float64, categorical ones
// dictionary-encoded as []uint32 codes. Each numeric column carries a zone
// map (min/max over the non-NaN values) for whole-segment skipping and a
// sorted permutation index for range conditions; each categorical column a
// code-sorted permutation whose equal ranges are per-code posting lists.
// Once built, a segment is never mutated — the immutability that gives
// snapshots their isolation for free.
type segment struct {
	base int // global row index of the segment's first row
	n    int // rows in the segment (== the store's segSize)
	nums [][]float64
	cats [][]uint32
	nidx []numIndex
	cidx []catIndex
}

// numIndex is the per-segment index of one numeric column.
type numIndex struct {
	// min/max are the zone map over the non-NaN values; meaningless when
	// every value is NaN (perm empty).
	min, max float64
	// perm holds the segment-local rows sorted ascending by value, NaN rows
	// excluded; sorted[k] is the value at perm[k], kept as a contiguous
	// copy so range binary searches don't chase the permutation.
	perm   []uint32
	sorted []float64
	// nan lists the rows whose value is NaN. They fail every comparison
	// except !=, exactly as the row-at-a-time scan path treats them.
	nan []uint32
}

// catIndex is the per-segment index of one categorical column: the
// code-sorted permutation. The equal range of a code inside sorted IS that
// code's posting list (perm[lo:hi] are the rows holding it).
type catIndex struct {
	min, max uint32
	perm     []uint32
	sorted   []uint32
}

// buildSegment indexes one sealed block. nums/cats are the frozen column
// buffers, owned by the segment from here on.
func buildSegment(base int, nums [][]float64, cats [][]uint32) *segment {
	sg := &segment{base: base, nums: nums, cats: cats}
	for _, col := range nums {
		if col != nil {
			sg.n = len(col)
			break
		}
	}
	for _, col := range cats {
		if col != nil {
			sg.n = len(col)
			break
		}
	}
	sg.nidx = make([]numIndex, len(nums))
	sg.cidx = make([]catIndex, len(cats))
	for j, col := range nums {
		if col != nil {
			sg.nidx[j] = buildNumIndex(col)
		}
	}
	for j, col := range cats {
		if col != nil {
			sg.cidx[j] = buildCatIndex(col)
		}
	}
	return sg
}

func buildNumIndex(col []float64) numIndex {
	idx := numIndex{}
	idx.perm = make([]uint32, 0, len(col))
	for i, v := range col {
		if math.IsNaN(v) {
			idx.nan = append(idx.nan, uint32(i))
		} else {
			idx.perm = append(idx.perm, uint32(i))
		}
	}
	sort.Slice(idx.perm, func(a, b int) bool {
		va, vb := col[idx.perm[a]], col[idx.perm[b]]
		if va != vb {
			return va < vb
		}
		// Equal values stay in row order so posting ranges are ascending.
		return idx.perm[a] < idx.perm[b]
	})
	idx.sorted = make([]float64, len(idx.perm))
	for k, r := range idx.perm {
		idx.sorted[k] = col[r]
	}
	if len(idx.sorted) > 0 {
		idx.min, idx.max = idx.sorted[0], idx.sorted[len(idx.sorted)-1]
	}
	return idx
}

func buildCatIndex(col []uint32) catIndex {
	idx := catIndex{perm: make([]uint32, len(col))}
	for i := range col {
		idx.perm[i] = uint32(i)
	}
	sort.Slice(idx.perm, func(a, b int) bool {
		ca, cb := col[idx.perm[a]], col[idx.perm[b]]
		if ca != cb {
			return ca < cb
		}
		return idx.perm[a] < idx.perm[b]
	})
	idx.sorted = make([]uint32, len(col))
	for k, r := range idx.perm {
		idx.sorted[k] = col[r]
	}
	if len(idx.sorted) > 0 {
		idx.min, idx.max = idx.sorted[0], idx.sorted[len(idx.sorted)-1]
	}
	return idx
}

// eval evaluates a planned conjunction over the segment into words, the
// segment's word-aligned window of the snapshot bitmap (len n/64). scratch
// is a caller-owned window of the same length. The result is exactly the
// rows a row-at-a-time scan would match.
func (sg *segment) eval(p *plan, words, scratch []uint64) {
	first := true
	for i := range p.ivs {
		if !sg.step(&first, words, scratch, func(out []uint64) { sg.evalInterval(&p.ivs[i], out) }) {
			return
		}
	}
	for i := range p.rest {
		if !sg.step(&first, words, scratch, func(out []uint64) { sg.evalCond(p.rest[i], out) }) {
			return
		}
	}
	if first {
		setAllWords(words)
	}
}

// step runs one conjunct: the first fills words directly, later ones fill
// scratch and intersect. Returns false once the conjunction is empty, so
// remaining indexes are skipped.
func (sg *segment) step(first *bool, words, scratch []uint64, fill func([]uint64)) bool {
	if *first {
		fill(words)
		*first = false
		return anyWord(words)
	}
	zeroWords(scratch)
	fill(scratch)
	andWords(words, scratch)
	return anyWord(words)
}

// evalInterval fills out with the rows inside one merged interval — a
// single contiguous range of the sorted permutation found by two binary
// searches, however many range conditions produced it. NaN rows are not in
// perm, so they fail the interval exactly as they fail every ordered
// comparison in the scan path.
func (sg *segment) evalInterval(iv *numInterval, out []uint64) {
	idx := &sg.nidx[iv.col]
	if len(idx.sorted) == 0 {
		return // every value NaN; NaN fails every interval
	}
	// Zone-map skip: the interval is disjoint from [min,max], so no row can
	// match — the whole segment is skipped without touching the sorted index.
	if iv.lo > idx.max || (iv.lo == idx.max && !iv.loIncl) ||
		iv.hi < idx.min || (iv.hi == idx.min && !iv.hiIncl) {
		return
	}
	// Zone-map accept: [min,max] lies inside the interval and the segment has
	// no NaN rows, so every row matches — one word fill, no binary searches.
	if len(idx.perm) == sg.n &&
		(iv.lo < idx.min || (iv.lo == idx.min && iv.loIncl)) &&
		(iv.hi > idx.max || (iv.hi == idx.max && iv.hiIncl)) {
		setAllSegment(out, sg.n)
		return
	}
	var lo, hi int
	if iv.loIncl {
		lo = lowerBound(idx.sorted, iv.lo)
	} else {
		lo = upperBound(idx.sorted, iv.lo)
	}
	if iv.hiIncl {
		hi = upperBound(idx.sorted, iv.hi)
	} else {
		hi = lowerBound(idx.sorted, iv.hi)
	}
	for _, r := range idx.perm[lo:hi] {
		setBit(out, r)
	}
}

// evalCond fills out (assumed zero) with the rows matching one condition,
// via the column's index — never a row sweep.
func (sg *segment) evalCond(c compiledCond, out []uint64) {
	if c.numeric {
		sg.evalNum(c, out)
	} else {
		sg.evalCat(c, out)
	}
}

func (sg *segment) evalNum(c compiledCond, out []uint64) {
	idx := &sg.nidx[c.col]
	if math.IsNaN(c.v) {
		// v OP NaN is false for every ordered comparison and for ==;
		// v != NaN is true for every v (including NaN).
		if c.op == Ne {
			setAllSegment(out, sg.n)
		}
		return
	}
	if len(idx.sorted) == 0 {
		// Every value NaN: fails everything except !=.
		if c.op == Ne {
			setAllSegment(out, sg.n)
		}
		return
	}
	// Zone-map skip/accept: when [min,max] puts the whole segment on one
	// side of the comparison, answer without a binary search. Accepting all
	// additionally requires no NaN rows (perm covers the segment); Ne's
	// accept does not, since NaN != v.
	allNonNaN := len(idx.perm) == sg.n
	switch c.op {
	case Lt:
		if c.v <= idx.min {
			return
		}
		if c.v > idx.max && allNonNaN {
			setAllSegment(out, sg.n)
			return
		}
	case Le:
		if c.v < idx.min {
			return
		}
		if c.v >= idx.max && allNonNaN {
			setAllSegment(out, sg.n)
			return
		}
	case Gt:
		if c.v >= idx.max {
			return
		}
		if c.v < idx.min && allNonNaN {
			setAllSegment(out, sg.n)
			return
		}
	case Ge:
		if c.v > idx.max {
			return
		}
		if c.v <= idx.min && allNonNaN {
			setAllSegment(out, sg.n)
			return
		}
	case Eq:
		if c.v < idx.min || c.v > idx.max {
			return
		}
		if c.v == idx.min && c.v == idx.max && allNonNaN {
			setAllSegment(out, sg.n)
			return
		}
	case Ne:
		if c.v < idx.min || c.v > idx.max {
			setAllSegment(out, sg.n)
			return
		}
	}
	// Range [lo, hi) in the sorted permutation holding the matching rows
	// (for the positive operators).
	var lo, hi int
	switch c.op {
	case Lt:
		lo, hi = 0, lowerBound(idx.sorted, c.v)
	case Le:
		lo, hi = 0, upperBound(idx.sorted, c.v)
	case Gt:
		lo, hi = upperBound(idx.sorted, c.v), len(idx.sorted)
	case Ge:
		lo, hi = lowerBound(idx.sorted, c.v), len(idx.sorted)
	case Eq:
		lo, hi = lowerBound(idx.sorted, c.v), upperBound(idx.sorted, c.v)
	case Ne:
		// Everything (NaN rows included: NaN != v) except the equal range.
		setAllSegment(out, sg.n)
		for _, r := range idx.perm[lowerBound(idx.sorted, c.v):upperBound(idx.sorted, c.v)] {
			clearBit(out, r)
		}
		return
	}
	for _, r := range idx.perm[lo:hi] {
		setBit(out, r)
	}
}

func (sg *segment) evalCat(c compiledCond, out []uint64) {
	idx := &sg.cidx[c.col]
	switch c.op {
	case Eq:
		if !c.codeOK || len(idx.sorted) == 0 || c.code < idx.min || c.code > idx.max {
			return // value absent from the dictionary or outside the zone
		}
		for _, r := range idx.perm[lowerBound32(idx.sorted, c.code):upperBound32(idx.sorted, c.code)] {
			setBit(out, r)
		}
	case Ne:
		setAllSegment(out, sg.n)
		if !c.codeOK || len(idx.sorted) == 0 || c.code < idx.min || c.code > idx.max {
			return
		}
		for _, r := range idx.perm[lowerBound32(idx.sorted, c.code):upperBound32(idx.sorted, c.code)] {
			clearBit(out, r)
		}
	}
}

// setAllSegment fills the window's first n bits (n is a multiple of 64 for
// sealed segments, so this is a plain word fill).
func setAllSegment(out []uint64, n int) {
	full := n >> 6
	setAllWords(out[:full])
	if r := uint(n) & 63; r != 0 {
		out[full] |= (1 << r) - 1
	}
}

// lowerBound returns the first index with s[i] >= v.
func lowerBound(s []float64, v float64) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= v })
}

// upperBound returns the first index with s[i] > v.
func upperBound(s []float64, v float64) int {
	return sort.Search(len(s), func(i int) bool { return s[i] > v })
}

func lowerBound32(s []uint32, v uint32) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= v })
}

func upperBound32(s []uint32, v uint32) int {
	return sort.Search(len(s), func(i int) bool { return s[i] > v })
}

package store

import (
	"math"
	"sort"
	"sync/atomic"
)

// A segment is an immutable, fully indexed block of exactly segSize rows.
// The segment value itself is only the handle — global position, row count
// and tier state; the decoded columns and indexes live in a segData that
// the handle either holds resident (the in-memory tier) or reloads on
// demand from its SegmentSource (the spilled tier, backed by the pager and
// the on-disk segment file). Every reader goes through acquire, so the
// evaluation kernels are tier-blind. Once built, a segment's data is never
// mutated — the immutability that gives snapshots their isolation for free.
type segment struct {
	base  int   // global row index of the segment's first row
	n     int   // rows in the segment (== the store's segSize)
	ord   int   // ordinal in the sealed-segment list (names the spill file)
	bytes int64 // decoded footprint of the segData, for the memory cap

	tier *tierState
	src  SegmentSource // durable backing; nil for memory-only segments

	// data is the resident decoded form. Non-nil means the segment is in
	// the resident tier; nil means it is spilled and acquire reloads it
	// through src. Promotion and eviction flip it with CAS, so a reader
	// that loaded a non-nil pointer keeps a consistent immutable view even
	// if the segment is evicted underneath it.
	data atomic.Pointer[segData]

	// lastUse orders eviction: the tier's use clock at the last acquire.
	lastUse atomic.Int64
}

// SegmentSource is the tier read abstraction: where a sealed segment's
// bytes come from when its decoded form is not resident. The only
// implementation today is the pager-backed segment file (fileSource); the
// planner, zone-map pruning, shard scatter-gather and EvalBatch never see
// the difference because they all read columns through segment.acquire.
type SegmentSource interface {
	// Load decodes the segment into its evaluable form. The returned
	// segData is immutable and exactly what buildSegData produced at seal
	// time — byte-identical answers across tiers follow from that.
	Load() (*segData, error)
	// Name identifies the backing (the segment file name) for diagnostics.
	Name() string
}

// noopRelease is the release of a resident acquire (shared to keep the
// fast path allocation-free).
func noopRelease() {}

// acquire returns the segment's decoded data and a release that ends the
// lease. The fast path — resident data — is one atomic load. A spilled
// segment is decoded through its SegmentSource (pager-cached pages, column
// decode, index rebuild) and, when the memory cap has room, promoted back
// into the resident tier so later queries pay nothing. Decode failures
// panic: the manifest verified every committed file at Open, so a failure
// here means the file was corrupted or removed underneath a live store —
// an invariant violation, not a recoverable condition.
func (sg *segment) acquire() (*segData, func()) {
	if sg.tier != nil {
		sg.lastUse.Store(sg.tier.useClock.Add(1))
	}
	if d := sg.data.Load(); d != nil {
		return d, noopRelease
	}
	d, err := sg.src.Load()
	if err != nil {
		panic("store: segment " + sg.src.Name() + " unreadable under a live store: " + err.Error())
	}
	if sg.tier.admit(sg.bytes) {
		if sg.data.CompareAndSwap(nil, d) {
			sg.tier.noteResident(sg.bytes)
		} else {
			sg.tier.unadmit(sg.bytes)
			d = sg.data.Load() // another reader promoted first; share its copy
		}
	}
	return d, noopRelease
}

// evict drops the resident decoded form (the segment must be durably
// persisted). Returns false if the segment was already spilled. In-flight
// readers that acquired before the flip keep their immutable segData.
func (sg *segment) evict() bool {
	d := sg.data.Load()
	if d == nil || sg.src == nil {
		return false
	}
	if !sg.data.CompareAndSwap(d, nil) {
		return false
	}
	sg.tier.noteSpilled(sg.bytes)
	return true
}

// resident reports whether the decoded form is currently in memory.
func (sg *segment) resident() bool { return sg.data.Load() != nil }

// segData is the decoded, evaluable form of one sealed segment: contiguous
// columns (numeric as []float64, categorical as dictionary codes) plus the
// per-column indexes. It is immutable after buildSegData and shared freely
// across goroutines and snapshots.
type segData struct {
	n    int
	nums [][]float64
	cats [][]uint32
	nidx []numIndex
	cidx []catIndex
}

// numIndex is the per-segment index of one numeric column.
type numIndex struct {
	// min/max are the zone map over the non-NaN values; meaningless when
	// every value is NaN (perm empty).
	min, max float64
	// perm holds the segment-local rows sorted ascending by value, NaN rows
	// excluded; sorted[k] is the value at perm[k], kept as a contiguous
	// copy so range binary searches don't chase the permutation.
	perm   []uint32
	sorted []float64
	// nan lists the rows whose value is NaN. They fail every comparison
	// except !=, exactly as the row-at-a-time scan path treats them.
	nan []uint32
}

// catIndex is the per-segment index of one categorical column: the
// code-sorted permutation. The equal range of a code inside sorted IS that
// code's posting list (perm[lo:hi] are the rows holding it).
type catIndex struct {
	min, max uint32
	perm     []uint32
	sorted   []uint32
}

// buildSegData indexes one sealed block. nums/cats are the frozen column
// buffers, owned by the segData from here on. The build is deterministic in
// the column values alone, which is what makes a reload from disk
// indistinguishable from the original resident form.
func buildSegData(nums [][]float64, cats [][]uint32) *segData {
	d := &segData{nums: nums, cats: cats}
	for _, col := range nums {
		if col != nil {
			d.n = len(col)
			break
		}
	}
	for _, col := range cats {
		if col != nil {
			d.n = len(col)
			break
		}
	}
	d.nidx = make([]numIndex, len(nums))
	d.cidx = make([]catIndex, len(cats))
	for j, col := range nums {
		if col != nil {
			d.nidx[j] = buildNumIndex(col)
		}
	}
	for j, col := range cats {
		if col != nil {
			d.cidx[j] = buildCatIndex(col)
		}
	}
	return d
}

// footprint estimates the decoded byte size of the segData (columns plus
// indexes) for the resident-tier memory accounting.
func (d *segData) footprint() int64 {
	var b int64
	for _, col := range d.nums {
		b += int64(len(col)) * 8
	}
	for _, col := range d.cats {
		b += int64(len(col)) * 4
	}
	for _, idx := range d.nidx {
		b += int64(len(idx.perm))*4 + int64(len(idx.sorted))*8 + int64(len(idx.nan))*4
	}
	for _, idx := range d.cidx {
		b += int64(len(idx.perm))*4 + int64(len(idx.sorted))*4
	}
	return b
}

func buildNumIndex(col []float64) numIndex {
	idx := numIndex{}
	idx.perm = make([]uint32, 0, len(col))
	for i, v := range col {
		if math.IsNaN(v) {
			idx.nan = append(idx.nan, uint32(i))
		} else {
			idx.perm = append(idx.perm, uint32(i))
		}
	}
	sort.Slice(idx.perm, func(a, b int) bool {
		va, vb := col[idx.perm[a]], col[idx.perm[b]]
		if va != vb {
			return va < vb
		}
		// Equal values stay in row order so posting ranges are ascending.
		return idx.perm[a] < idx.perm[b]
	})
	idx.sorted = make([]float64, len(idx.perm))
	for k, r := range idx.perm {
		idx.sorted[k] = col[r]
	}
	if len(idx.sorted) > 0 {
		idx.min, idx.max = idx.sorted[0], idx.sorted[len(idx.sorted)-1]
	}
	return idx
}

func buildCatIndex(col []uint32) catIndex {
	idx := catIndex{perm: make([]uint32, len(col))}
	for i := range col {
		idx.perm[i] = uint32(i)
	}
	sort.Slice(idx.perm, func(a, b int) bool {
		ca, cb := col[idx.perm[a]], col[idx.perm[b]]
		if ca != cb {
			return ca < cb
		}
		return idx.perm[a] < idx.perm[b]
	})
	idx.sorted = make([]uint32, len(col))
	for k, r := range idx.perm {
		idx.sorted[k] = col[r]
	}
	if len(idx.sorted) > 0 {
		idx.min, idx.max = idx.sorted[0], idx.sorted[len(idx.sorted)-1]
	}
	return idx
}

// eval evaluates a planned conjunction over the segment into words, the
// segment's word-aligned window of the snapshot bitmap (len n/64). scratch
// is a caller-owned window of the same length. The result is exactly the
// rows a row-at-a-time scan would match.
func (d *segData) eval(p *plan, words, scratch []uint64) {
	first := true
	for i := range p.ivs {
		if !d.step(&first, words, scratch, func(out []uint64) { d.evalInterval(&p.ivs[i], out) }) {
			return
		}
	}
	for i := range p.rest {
		if !d.step(&first, words, scratch, func(out []uint64) { d.evalCond(p.rest[i], out) }) {
			return
		}
	}
	if first {
		setAllWords(words)
	}
}

// step runs one conjunct: the first fills words directly, later ones fill
// scratch and intersect. Returns false once the conjunction is empty, so
// remaining indexes are skipped.
func (d *segData) step(first *bool, words, scratch []uint64, fill func([]uint64)) bool {
	if *first {
		fill(words)
		*first = false
		return anyWord(words)
	}
	zeroWords(scratch)
	fill(scratch)
	andWords(words, scratch)
	return anyWord(words)
}

// evalInterval fills out with the rows inside one merged interval — a
// single contiguous range of the sorted permutation found by two binary
// searches, however many range conditions produced it. NaN rows are not in
// perm, so they fail the interval exactly as they fail every ordered
// comparison in the scan path.
func (d *segData) evalInterval(iv *numInterval, out []uint64) {
	idx := &d.nidx[iv.col]
	if len(idx.sorted) == 0 {
		return // every value NaN; NaN fails every interval
	}
	// Zone-map skip: the interval is disjoint from [min,max], so no row can
	// match — the whole segment is skipped without touching the sorted index.
	if iv.lo > idx.max || (iv.lo == idx.max && !iv.loIncl) ||
		iv.hi < idx.min || (iv.hi == idx.min && !iv.hiIncl) {
		return
	}
	// Zone-map accept: [min,max] lies inside the interval and the segment has
	// no NaN rows, so every row matches — one word fill, no binary searches.
	if len(idx.perm) == d.n &&
		(iv.lo < idx.min || (iv.lo == idx.min && iv.loIncl)) &&
		(iv.hi > idx.max || (iv.hi == idx.max && iv.hiIncl)) {
		setAllSegment(out, d.n)
		return
	}
	var lo, hi int
	if iv.loIncl {
		lo = lowerBound(idx.sorted, iv.lo)
	} else {
		lo = upperBound(idx.sorted, iv.lo)
	}
	if iv.hiIncl {
		hi = upperBound(idx.sorted, iv.hi)
	} else {
		hi = lowerBound(idx.sorted, iv.hi)
	}
	for _, r := range idx.perm[lo:hi] {
		setBit(out, r)
	}
}

// evalCond fills out (assumed zero) with the rows matching one condition,
// via the column's index — never a row sweep.
func (d *segData) evalCond(c compiledCond, out []uint64) {
	if c.numeric {
		d.evalNum(c, out)
	} else {
		d.evalCat(c, out)
	}
}

func (d *segData) evalNum(c compiledCond, out []uint64) {
	idx := &d.nidx[c.col]
	if math.IsNaN(c.v) {
		// v OP NaN is false for every ordered comparison and for ==;
		// v != NaN is true for every v (including NaN).
		if c.op == Ne {
			setAllSegment(out, d.n)
		}
		return
	}
	if len(idx.sorted) == 0 {
		// Every value NaN: fails everything except !=.
		if c.op == Ne {
			setAllSegment(out, d.n)
		}
		return
	}
	// Zone-map skip/accept: when [min,max] puts the whole segment on one
	// side of the comparison, answer without a binary search. Accepting all
	// additionally requires no NaN rows (perm covers the segment); Ne's
	// accept does not, since NaN != v.
	allNonNaN := len(idx.perm) == d.n
	switch c.op {
	case Lt:
		if c.v <= idx.min {
			return
		}
		if c.v > idx.max && allNonNaN {
			setAllSegment(out, d.n)
			return
		}
	case Le:
		if c.v < idx.min {
			return
		}
		if c.v >= idx.max && allNonNaN {
			setAllSegment(out, d.n)
			return
		}
	case Gt:
		if c.v >= idx.max {
			return
		}
		if c.v < idx.min && allNonNaN {
			setAllSegment(out, d.n)
			return
		}
	case Ge:
		if c.v > idx.max {
			return
		}
		if c.v <= idx.min && allNonNaN {
			setAllSegment(out, d.n)
			return
		}
	case Eq:
		if c.v < idx.min || c.v > idx.max {
			return
		}
		if c.v == idx.min && c.v == idx.max && allNonNaN {
			setAllSegment(out, d.n)
			return
		}
	case Ne:
		if c.v < idx.min || c.v > idx.max {
			setAllSegment(out, d.n)
			return
		}
	}
	// Range [lo, hi) in the sorted permutation holding the matching rows
	// (for the positive operators).
	var lo, hi int
	switch c.op {
	case Lt:
		lo, hi = 0, lowerBound(idx.sorted, c.v)
	case Le:
		lo, hi = 0, upperBound(idx.sorted, c.v)
	case Gt:
		lo, hi = upperBound(idx.sorted, c.v), len(idx.sorted)
	case Ge:
		lo, hi = lowerBound(idx.sorted, c.v), len(idx.sorted)
	case Eq:
		lo, hi = lowerBound(idx.sorted, c.v), upperBound(idx.sorted, c.v)
	case Ne:
		// Everything (NaN rows included: NaN != v) except the equal range.
		setAllSegment(out, d.n)
		for _, r := range idx.perm[lowerBound(idx.sorted, c.v):upperBound(idx.sorted, c.v)] {
			clearBit(out, r)
		}
		return
	}
	for _, r := range idx.perm[lo:hi] {
		setBit(out, r)
	}
}

func (d *segData) evalCat(c compiledCond, out []uint64) {
	idx := &d.cidx[c.col]
	switch c.op {
	case Eq:
		if !c.codeOK || len(idx.sorted) == 0 || c.code < idx.min || c.code > idx.max {
			return // value absent from the dictionary or outside the zone
		}
		for _, r := range idx.perm[lowerBound32(idx.sorted, c.code):upperBound32(idx.sorted, c.code)] {
			setBit(out, r)
		}
	case Ne:
		setAllSegment(out, d.n)
		if !c.codeOK || len(idx.sorted) == 0 || c.code < idx.min || c.code > idx.max {
			return
		}
		for _, r := range idx.perm[lowerBound32(idx.sorted, c.code):upperBound32(idx.sorted, c.code)] {
			clearBit(out, r)
		}
	}
}

// setAllSegment fills the window's first n bits (n is a multiple of 64 for
// sealed segments, so this is a plain word fill).
func setAllSegment(out []uint64, n int) {
	full := n >> 6
	setAllWords(out[:full])
	if r := uint(n) & 63; r != 0 {
		out[full] |= (1 << r) - 1
	}
}

// lowerBound returns the first index with s[i] >= v.
func lowerBound(s []float64, v float64) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= v })
}

// upperBound returns the first index with s[i] > v.
func upperBound(s []float64, v float64) int {
	return sort.Search(len(s), func(i int) bool { return s[i] > v })
}

func lowerBound32(s []uint32, v uint32) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= v })
}

func upperBound32(s []uint32, v uint32) int {
	return sort.Search(len(s), func(i int) bool { return s[i] > v })
}

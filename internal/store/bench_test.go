package store

import (
	"testing"

	"privacy3d/internal/dataset"
)

// The Eval/EvalScan benchmarks compare the two storage paths on the same
// selective band — the workload cmd/benchstore gates at full scale. Sizes
// stay modest so `make check`'s -benchtime 1x smoke pass stays cheap.

func benchSnapshot(b *testing.B, rows int) *Snapshot {
	b.Helper()
	d, err := dataset.Synth("trial", rows, 20070923)
	if err != nil {
		b.Fatal(err)
	}
	s, err := FromDataset(d, 0)
	if err != nil {
		b.Fatal(err)
	}
	return s.Snapshot()
}

var benchConds = []Cond{
	{Col: "height", Op: Ge, V: 165},
	{Col: "height", Op: Lt, V: 166},
	{Col: "aids", Op: Eq, S: "Y", Str: true},
}

func BenchmarkEvalIndexed100k(b *testing.B) {
	snap := benchSnapshot(b, 100_000)
	bp := snap.Index("blood_pressure")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm, err := snap.Eval(benchConds)
		if err != nil {
			b.Fatal(err)
		}
		_ = snap.Sum(bm, bp)
	}
}

func BenchmarkEvalScan100k(b *testing.B) {
	snap := benchSnapshot(b, 100_000)
	bp := snap.Index("blood_pressure")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm, err := snap.EvalScan(benchConds)
		if err != nil {
			b.Fatal(err)
		}
		_ = snap.Sum(bm, bp)
	}
}

package store

import (
	"math/bits"
	"testing"

	"privacy3d/internal/dataset"
)

// The Eval/EvalScan benchmarks compare the two storage paths on the same
// selective band — the workload cmd/benchstore gates at full scale. Sizes
// stay modest so `make check`'s -benchtime 1x smoke pass stays cheap.

func benchSnapshot(b *testing.B, rows int) *Snapshot {
	b.Helper()
	d, err := dataset.Synth("trial", rows, 20070923)
	if err != nil {
		b.Fatal(err)
	}
	s, err := FromDataset(d, 0)
	if err != nil {
		b.Fatal(err)
	}
	return s.Snapshot()
}

var benchConds = []Cond{
	{Col: "height", Op: Ge, V: 165},
	{Col: "height", Op: Lt, V: 166},
	{Col: "aids", Op: Eq, S: "Y", Str: true},
}

func BenchmarkEvalIndexed100k(b *testing.B) {
	snap := benchSnapshot(b, 100_000)
	bp := snap.Index("blood_pressure")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm, err := snap.Eval(benchConds)
		if err != nil {
			b.Fatal(err)
		}
		_ = snap.Sum(bm, bp)
	}
}

func BenchmarkEvalScan100k(b *testing.B) {
	snap := benchSnapshot(b, 100_000)
	bp := snap.Index("blood_pressure")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm, err := snap.EvalScan(benchConds)
		if err != nil {
			b.Fatal(err)
		}
		_ = snap.Sum(bm, bp)
	}
}

// BenchmarkEvalBatch8x100k evaluates eight predicates in one sharded column
// sweep; BenchmarkEvalLoop8x100k answers the same eight one Eval at a time —
// the pair quantifies what the batch amortises.
func batchBenchShapes() [][]Cond {
	out := make([][]Cond, 8)
	for k := range out {
		out[k] = []Cond{
			{Col: "height", Op: Ge, V: float64(150 + 4*k)},
			{Col: "height", Op: Lt, V: float64(152 + 4*k)},
			{Col: "aids", Op: Eq, S: "Y", Str: true},
		}
	}
	return out
}

func BenchmarkEvalBatch8x100k(b *testing.B) {
	snap := benchSnapshot(b, 100_000)
	shapes := batchBenchShapes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.EvalBatch(shapes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalLoop8x100k(b *testing.B) {
	snap := benchSnapshot(b, 100_000)
	shapes := batchBenchShapes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, conds := range shapes {
			if _, err := snap.Eval(conds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// sumFullSweep is the pre-optimisation Sum loop (no zero-word or zero-
// segment skipping), kept as the baseline BenchmarkSumSparse* measures the
// popcount-guided skip against. Identical summation order, so both produce
// the same float64 bit pattern.
func sumFullSweep(s *Snapshot, bm *Bitmap, col int) float64 {
	var sum float64
	for _, sg := range s.segs {
		d, release := sg.acquire()
		colv := d.nums[col]
		words := sg.window(bm.words)
		defer release()
		for wi, w := range words {
			base := wi << 6
			for w != 0 {
				sum += colv[base+bits.TrailingZeros64(w)]
				w &= w - 1
			}
		}
	}
	if s.tailLen > 0 {
		base := len(s.segs) * s.store.segSize
		colv := s.tailNums[col]
		for i := 0; i < s.tailLen; i++ {
			if bm.Get(base + i) {
				sum += colv[i]
			}
		}
	}
	return sum
}

// sparseBenchBitmap selects one narrow height band: a handful of rows
// spread over a 100k-row store, leaving almost every bitmap word zero.
func sparseBenchBitmap(b *testing.B, snap *Snapshot) *Bitmap {
	b.Helper()
	bm, err := snap.Eval([]Cond{
		{Col: "height", Op: Ge, V: 190},
		{Col: "height", Op: Lt, V: 190.2},
	})
	if err != nil {
		b.Fatal(err)
	}
	if n := bm.Count(); n == 0 || n > 2000 {
		b.Fatalf("sparse selection has %d rows", n)
	}
	return bm
}

func BenchmarkSumSparse100k(b *testing.B) {
	snap := benchSnapshot(b, 100_000)
	bm := sparseBenchBitmap(b, snap)
	bp := snap.Index("blood_pressure")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = snap.Sum(bm, bp)
	}
}

func BenchmarkSumSparseFullSweep100k(b *testing.B) {
	snap := benchSnapshot(b, 100_000)
	bm := sparseBenchBitmap(b, snap)
	bp := snap.Index("blood_pressure")
	if a, o := snap.Sum(bm, bp), sumFullSweep(snap, bm, bp); a != o {
		b.Fatalf("skip-optimised Sum %g differs from full sweep %g", a, o)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sumFullSweep(snap, bm, bp)
	}
}

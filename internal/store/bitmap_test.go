package store

import (
	"math/rand"
	"testing"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130) // non-word-aligned length exercises the tail mask
	if b.Len() != 130 || b.Count() != 0 || b.Any() {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(63) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Set/Get mismatch")
	}
	if b.Count() != 4 || !b.Any() {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	if got := b.Rows(); len(got) != 4 || got[0] != 0 || got[3] != 129 {
		t.Fatalf("Rows = %v", got)
	}
	b.SetAll()
	if b.Count() != 130 {
		t.Fatalf("SetAll count = %d, want 130 (tail bits must stay clear)", b.Count())
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear left bits set")
	}
}

func TestBitmapCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1000
	a, b := NewBitmap(n), NewBitmap(n)
	av, bv := make([]bool, n), make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			a.Set(i)
			av[i] = true
		}
		if rng.Intn(3) == 0 {
			b.Set(i)
			bv[i] = true
		}
	}
	and := NewBitmap(n)
	copy(and.words, a.words)
	and.And(b)
	andNot := NewBitmap(n)
	copy(andNot.words, a.words)
	andNot.AndNot(b)
	or := NewBitmap(n)
	copy(or.words, a.words)
	or.Or(b)
	for i := 0; i < n; i++ {
		if and.Get(i) != (av[i] && bv[i]) {
			t.Fatalf("And bit %d", i)
		}
		if andNot.Get(i) != (av[i] && !bv[i]) {
			t.Fatalf("AndNot bit %d", i)
		}
		if or.Get(i) != (av[i] || bv[i]) {
			t.Fatalf("Or bit %d", i)
		}
	}
}

func TestBitmapForEachAscending(t *testing.T) {
	b := NewBitmap(500)
	want := []int{0, 1, 64, 127, 128, 300, 499}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

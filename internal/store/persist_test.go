package store

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacy3d/internal/dataset"
)

// persistTestRows is enough rows to seal several segments at the small
// test segment size and leave a non-empty tail.
const (
	persistSegSize  = 256
	persistTestRows = 5*persistSegSize + 77
)

func persistDataset(t *testing.T, rows int) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Synth("trial", rows, 42)
	if err != nil {
		t.Fatalf("Synth: %v", err)
	}
	return d
}

// Queries over the synthetic trial schema: height, weight, qi3, qi4,
// blood_pressure numeric; aids nominal.
var persistQueries = [][]Cond{
	nil,
	{{Col: "height", Op: Ge, V: 150}, {Col: "height", Op: Lt, V: 180}},
	{{Col: "weight", Op: Gt, V: 70}},
	{{Col: "aids", Op: Eq, S: "Y", Str: true}},
	{{Col: "aids", Op: Ne, S: "Y", Str: true}, {Col: "blood_pressure", Op: Le, V: 120}},
}

// queryFingerprint answers every persist query (count + bit-exact sums
// over every numeric column) against the snapshot.
func queryFingerprint(t *testing.T, snap *Snapshot) []uint64 {
	t.Helper()
	var numCols []int
	for j, a := range snap.Attrs() {
		if a.Kind == dataset.Numeric {
			numCols = append(numCols, j)
		}
	}
	var fp []uint64
	for qi, q := range persistQueries {
		bm, err := snap.Eval(q)
		if err != nil {
			t.Fatalf("Eval query %d: %v", qi, err)
		}
		fp = append(fp, uint64(snap.Count(bm)))
		for _, j := range numCols {
			fp = append(fp, math.Float64bits(snap.Sum(bm, j)))
		}
	}
	return fp
}

func fingerprintsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func createPersistStore(t *testing.T, dir string, rows int, opts Options) *Store {
	t.Helper()
	if opts.SegmentSize == 0 {
		opts.SegmentSize = persistSegSize
	}
	d := persistDataset(t, rows)
	s, err := CreateFromDataset(dir, d, opts)
	if err != nil {
		t.Fatalf("CreateFromDataset: %v", err)
	}
	return s
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := createPersistStore(t, dir, persistTestRows, Options{})
	want := queryFingerprint(t, s.Snapshot())
	wantRows := s.Rows()
	wantVersion := s.Version()
	wantMat := s.Snapshot().Materialize()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.Rows() != wantRows {
		t.Fatalf("reopened store has %d rows, want %d", r.Rows(), wantRows)
	}
	if got := queryFingerprint(t, r.Snapshot()); !fingerprintsEqual(got, want) {
		t.Fatalf("reopened answers differ from pre-close answers")
	}
	if r.Version() <= wantVersion {
		t.Fatalf("reopened version %d not past pre-close version %d (epoch must advance)", r.Version(), wantVersion)
	}
	gotMat := r.Snapshot().Materialize()
	for j, a := range wantMat.Attrs() {
		for i := 0; i < wantMat.Rows(); i++ {
			if a.Kind == dataset.Numeric {
				if math.Float64bits(wantMat.Float(i, j)) != math.Float64bits(gotMat.Float(i, j)) {
					t.Fatalf("row %d col %d: %v != %v after reopen", i, j, wantMat.Float(i, j), gotMat.Float(i, j))
				}
			} else if wantMat.Cat(i, j) != gotMat.Cat(i, j) {
				t.Fatalf("row %d col %d: %q != %q after reopen", i, j, wantMat.Cat(i, j), gotMat.Cat(i, j))
			}
		}
	}
}

func TestReopenedStoreKeepsIngesting(t *testing.T) {
	dir := t.TempDir()
	s := createPersistStore(t, dir, persistTestRows, Options{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Appends continue from the recovered tail, sealing across the old
	// boundary and interning new dictionary strings.
	extra := persistDataset(t, persistSegSize)
	if err := r.AppendDataset(extra); err != nil {
		t.Fatalf("AppendDataset after reopen: %v", err)
	}
	if err := r.Append(170.0, 70.0, 50.0, 50.0, 120.0, "reopened-dict-entry"); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	wantRows := persistTestRows + persistSegSize + 1
	if r.Rows() != wantRows {
		t.Fatalf("rows = %d, want %d", r.Rows(), wantRows)
	}
	snap := r.Snapshot()
	if got := snap.Cat(wantRows-1, snap.Index("aids")); got != "reopened-dict-entry" {
		t.Fatalf("aids of appended row = %q", got)
	}
	want := queryFingerprint(t, snap)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	defer r2.Close()
	if r2.Rows() != wantRows {
		t.Fatalf("second reopen rows = %d, want %d", r2.Rows(), wantRows)
	}
	if got := queryFingerprint(t, r2.Snapshot()); !fingerprintsEqual(got, want) {
		t.Fatalf("answers changed across second reopen")
	}
	snap2 := r2.Snapshot()
	if got := snap2.Cat(wantRows-1, snap2.Index("aids")); got != "reopened-dict-entry" {
		t.Fatalf("aids after second reopen = %q", got)
	}
}

func TestSpillUnderMemCapByteIdentical(t *testing.T) {
	dir := t.TempDir()
	d := persistDataset(t, persistTestRows)
	ref, err := FromDataset(d, persistSegSize)
	if err != nil {
		t.Fatalf("FromDataset: %v", err)
	}
	want := queryFingerprint(t, ref.Snapshot())

	// Cap the resident tier below two segments' decoded footprint so most
	// sealed segments are evicted as ingest rolls on.
	s, err := CreateFromDataset(dir, d, Options{SegmentSize: persistSegSize, MemCap: 32 << 10, PageBytes: 16 << 10})
	if err != nil {
		t.Fatalf("CreateFromDataset: %v", err)
	}
	defer s.Close()
	st := s.TierStats()
	if st.Spilled == 0 {
		t.Fatalf("no segments spilled under a %d-byte cap (resident=%d bytes=%d)", 32<<10, st.Resident, st.ResidentBytes)
	}
	if got := queryFingerprint(t, s.Snapshot()); !fingerprintsEqual(got, want) {
		t.Fatalf("spilled answers differ from resident answers")
	}
	st = s.TierStats()
	if st.PagerHits+st.PagerMisses == 0 {
		t.Fatalf("queries over spilled segments never touched the pager")
	}
	// Repeat: answers stay identical while segments promote/evict.
	if got := queryFingerprint(t, s.Snapshot()); !fingerprintsEqual(got, want) {
		t.Fatalf("second spilled pass differs")
	}
}

func TestColdOpenAllSpilledThenPromotes(t *testing.T) {
	dir := t.TempDir()
	s := createPersistStore(t, dir, persistTestRows, Options{})
	want := queryFingerprint(t, s.Snapshot())
	s.Close()

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if st := r.TierStats(); st.Resident != 0 || st.Spilled != 5 {
		t.Fatalf("cold open: resident=%d spilled=%d, want 0/5", st.Resident, st.Spilled)
	}
	if got := queryFingerprint(t, r.Snapshot()); !fingerprintsEqual(got, want) {
		t.Fatalf("cold answers differ")
	}
	// Uncapped store: the queries should have promoted every touched
	// segment back to the resident tier.
	if st := r.TierStats(); st.Resident == 0 {
		t.Fatalf("no segment promoted on an uncapped store")
	}
}

// corruptFile truncates or scribbles over a file to simulate torn writes
// and external corruption.
func corruptFile(t *testing.T, path string, truncateTo int64) {
	t.Helper()
	if truncateTo >= 0 {
		if err := os.Truncate(path, truncateTo); err != nil {
			t.Fatalf("truncate %s: %v", path, err)
		}
		return
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("XXXXXXXX"), 16); err != nil {
		t.Fatalf("scribble %s: %v", path, err)
	}
}

func newestManifest(t *testing.T, dir string) string {
	t.Helper()
	seqs, err := listManifests(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("listManifests: %v (%d found)", err, len(seqs))
	}
	return filepath.Join(dir, manifestFileName(seqs[0]))
}

func TestTruncatedManifestFallsBackToPreviousCommit(t *testing.T) {
	dir := t.TempDir()
	// Sealed-only ingest: commit A holds exactly the sealed segments.
	s := createPersistStore(t, dir, 3*persistSegSize, Options{})
	// Tail-only append, then Close: commit B = A + tail.
	if err := s.Append(170.0, 70.0, 50.0, 50.0, 120.0, "N"); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	corruptFile(t, newestManifest(t, dir), 10) // torn commit B
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn manifest: %v", err)
	}
	defer r.Close()
	if r.Rows() != 3*persistSegSize {
		t.Fatalf("recovered %d rows, want the previous commit's %d", r.Rows(), 3*persistSegSize)
	}
}

func TestTornTailFileFallsBackToPreviousCommit(t *testing.T) {
	dir := t.TempDir()
	s := createPersistStore(t, dir, 3*persistSegSize, Options{})
	if err := s.Append(170.0, 70.0, 50.0, 50.0, 120.0, "N"); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corrupt the tail block file the newest manifest references: its
	// checksum no longer matches, so the commit must be rejected whole.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	torn := false
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tailPrefix) {
			corruptFile(t, filepath.Join(dir, e.Name()), -1)
			torn = true
		}
	}
	if !torn {
		t.Fatalf("no tail file on disk to corrupt")
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer r.Close()
	if r.Rows() != 3*persistSegSize {
		t.Fatalf("recovered %d rows, want the previous commit's %d", r.Rows(), 3*persistSegSize)
	}
}

func TestTornUncommittedSegmentIgnored(t *testing.T) {
	dir := t.TempDir()
	s := createPersistStore(t, dir, 3*persistSegSize, Options{})
	want := queryFingerprint(t, s.Snapshot())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crashed ingest can leave a half-written segment file past the
	// committed list (and a stray tail). Open must ignore and sweep both.
	junkSeg := filepath.Join(dir, segFileName(3))
	if err := os.WriteFile(junkSeg, []byte("P3DSEG01 torn half-written segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	junkTail := filepath.Join(dir, tailFileName(99))
	if err := os.WriteFile(junkTail, []byte("P3DTAIL1 torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with torn uncommitted files: %v", err)
	}
	defer r.Close()
	if r.Rows() != 3*persistSegSize {
		t.Fatalf("rows = %d, want %d", r.Rows(), 3*persistSegSize)
	}
	if got := queryFingerprint(t, r.Snapshot()); !fingerprintsEqual(got, want) {
		t.Fatalf("answers differ after ignoring torn files")
	}
	if _, err := os.Stat(junkSeg); !os.IsNotExist(err) {
		t.Errorf("torn segment file not swept")
	}
	if _, err := os.Stat(junkTail); !os.IsNotExist(err) {
		t.Errorf("torn tail file not swept")
	}
}

func TestDoubleOpenFailsWithLockError(t *testing.T) {
	dir := t.TempDir()
	s := createPersistStore(t, dir, persistSegSize, Options{})
	defer s.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("second Open of a live datadir succeeded")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("double-open error %q does not mention the lock", err)
	}
	// The lock dies with the store: after Close, Open succeeds.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	r.Close()
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	s := createPersistStore(t, dir, persistSegSize, Options{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Create(dir, s.Attrs(), Options{}); err == nil {
		t.Fatalf("Create over an existing store succeeded")
	}
}

func TestOpenRejectsSegmentSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	s := createPersistStore(t, dir, persistSegSize, Options{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := Open(dir, Options{SegmentSize: 2 * persistSegSize}); err == nil {
		t.Fatalf("Open with mismatched segment size succeeded")
	}
}

func TestOpenEmptyDirFails(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Fatalf("Open of an empty directory succeeded")
	}
}

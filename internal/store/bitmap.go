package store

import "math/bits"

// Bitmap is a fixed-length bitset over row indices [0, n), backed by a
// contiguous []uint64 so the combining operations run word-parallel — the
// same idiom as the PIR answer kernel's word-XOR sweep. A compiled
// predicate evaluates to one Bitmap per snapshot; conjunctions intersect
// with And/AndNot over 64 rows per instruction instead of row-at-a-time
// boolean logic.
//
// The word layout is load-bearing for the segment engine: segments are
// SegmentSize rows (a multiple of 64), so every segment owns a disjoint,
// word-aligned window of the snapshot bitmap and parallel per-segment
// evaluation writes to disjoint words with no synchronisation.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an empty bitmap over [0, n).
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of row positions the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the backing words. The final word's bits at positions ≥ n
// are always zero (every mutating method maintains this invariant).
func (b *Bitmap) Words() []uint64 { return b.words }

// Set marks row i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether row i is set.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll marks every row in [0, n), leaving tail bits beyond n clear.
func (b *Bitmap) SetAll() {
	for w := range b.words {
		b.words[w] = ^uint64(0)
	}
	b.clearTail()
}

// Clear resets every row.
func (b *Bitmap) Clear() {
	for w := range b.words {
		b.words[w] = 0
	}
}

// clearTail zeroes the bits of the final word at positions ≥ n.
func (b *Bitmap) clearTail() {
	if r := uint(b.n) & 63; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << r) - 1
	}
}

// And intersects b with o in place. The bitmaps must be the same length.
func (b *Bitmap) And(o *Bitmap) {
	andWords(b.words, o.words)
}

// AndNot removes o's rows from b in place (b &= ^o).
func (b *Bitmap) AndNot(o *Bitmap) {
	for w, v := range o.words {
		b.words[w] &^= v
	}
}

// Or unions o into b in place.
func (b *Bitmap) Or(o *Bitmap) {
	for w, v := range o.words {
		b.words[w] |= v
	}
}

// Count returns the number of set rows via per-word popcount.
func (b *Bitmap) Count() int { return countWords(b.words) }

// Any reports whether at least one row is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Rows returns the set rows in ascending order.
func (b *Bitmap) Rows() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls fn for every set row in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// --- word-window helpers -------------------------------------------------
//
// Per-segment evaluation operates directly on a word-aligned window of the
// snapshot bitmap; these free functions are the word-parallel kernels.

// andWords intersects dst with src word-parallel: dst[w] &= src[w].
func andWords(dst, src []uint64) {
	for w, v := range src {
		dst[w] &= v
	}
}

// setAllWords fills every word with all-ones (callers trim tails).
func setAllWords(ws []uint64) {
	for w := range ws {
		ws[w] = ^uint64(0)
	}
}

// zeroWords clears every word.
func zeroWords(ws []uint64) {
	for w := range ws {
		ws[w] = 0
	}
}

// anyWord reports whether any word is non-zero (conjunction short-circuit).
func anyWord(ws []uint64) bool {
	for _, w := range ws {
		if w != 0 {
			return true
		}
	}
	return false
}

// countWords sums the popcounts of ws.
func countWords(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}

// setBit marks local row r in a word window.
func setBit(ws []uint64, r uint32) { ws[r>>6] |= 1 << (r & 63) }

// clearBit unmarks local row r in a word window.
func clearBit(ws []uint64, r uint32) { ws[r>>6] &^= 1 << (r & 63) }

package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"privacy3d/internal/dataset"
)

// Manifest + commit protocol.
//
// A durable store directory contains:
//
//	LOCK              flock'd for the store's lifetime (double-open guard)
//	DICT              append-only string dictionary (uvarint len + bytes)
//	SEG-0000000N      sealed segment N (segMagic block file, immutable)
//	TAIL-000000000S   open-tail rows at commit S (tailMagic block file)
//	MANIFEST-000000000S  commit S
//
// A manifest file is: 8-byte magic "P3DMAN01", u32 payload length, JSON
// payload, u32 CRC-32 of the payload. Commits write the manifest to a temp
// file, fsync it, atomically rename it to its sequence name, and fsync the
// directory — so a manifest either exists completely or not at all, and
// every file it references was fsync'd before the rename. Recovery (Open)
// walks manifests newest-first and adopts the first one whose own checksum
// AND every referenced file's size+checksum verify; anything newer is a
// torn or corrupted commit and is deleted, and data files no manifest
// references (torn tail of a crashed ingest) are swept. The two newest
// manifests are kept after each commit so external corruption of the
// newest still leaves a valid fallback.
const (
	manifestMagic  = "P3DMAN01"
	manifestPrefix = "MANIFEST-"
	segPrefix      = "SEG-"
	tailPrefix     = "TAIL-"
	dictFileName   = "DICT"
	lockFileName   = "LOCK"
)

// manifestBlock describes one committed block file (sealed segment or
// tail): its name, row count, exact file size, checksum of the whole file,
// and the decoded in-memory footprint (what the resident-tier memory cap
// accounts, unknowable from the file size alone because NaN counts change
// index shapes).
type manifestBlock struct {
	File    string `json:"file"`
	Rows    int    `json:"rows"`
	Size    int64  `json:"size"`
	CRC     uint32 `json:"crc"`
	Decoded int64  `json:"decoded,omitempty"`
}

// manifest is commit S's full description of the durable state.
type manifest struct {
	SegSize   int                 `json:"seg_size"`
	Shards    int                 `json:"shards"`
	Epoch     uint64              `json:"epoch"`
	Version   uint64              `json:"version"` // informational; epoch is what recovery needs
	Attrs     []dataset.Attribute `json:"attrs"`
	DictLen   int                 `json:"dict_len"`   // committed dictionary entries
	DictBytes int64               `json:"dict_bytes"` // committed DICT prefix length
	DictCRC   uint32              `json:"dict_crc"`   // CRC-32 of that prefix
	Segments  []manifestBlock     `json:"segments"`
	Tail      *manifestBlock      `json:"tail,omitempty"`
}

func segFileName(ord int) string { return fmt.Sprintf("%s%08d", segPrefix, ord) }

func tailFileName(seq uint64) string { return fmt.Sprintf("%s%010d", tailPrefix, seq) }

func manifestFileName(seq uint64) string { return fmt.Sprintf("%s%010d", manifestPrefix, seq) }

// manifestSeq parses the sequence number out of a manifest file name.
func manifestSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, manifestPrefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(name, manifestPrefix), 10, 64)
	return n, err == nil
}

// listManifests returns the manifest sequence numbers present in dir,
// newest first.
func listManifests(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := manifestSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] > seqs[b] })
	return seqs, nil
}

// writeManifest commits m as sequence seq: temp write + fsync + atomic
// rename + directory fsync.
func writeManifest(dir string, seq uint64, m *manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(manifestMagic)+8+len(payload))
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	tmp, err := os.CreateTemp(dir, "manifest.tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestFileName(seq))); err != nil {
		return err
	}
	return syncDir(dir)
}

// readManifest parses and checksum-verifies one manifest file.
func readManifest(path string) (*manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(manifestMagic)+8 || string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("store: %s: not a manifest", path)
	}
	n := binary.LittleEndian.Uint32(raw[len(manifestMagic):])
	body := raw[len(manifestMagic)+4:]
	if uint32(len(body)) != n+4 {
		return nil, fmt.Errorf("store: %s: truncated manifest (%d payload bytes, header says %d)", path, len(body)-4, n)
	}
	payload, sum := body[:n], binary.LittleEndian.Uint32(body[n:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("store: %s: manifest checksum mismatch", path)
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return &m, nil
}

// validateManifest verifies every file the manifest references: exact size
// and streaming CRC for each sealed segment and the tail, and the
// committed DICT prefix. A manifest that passes describes state that Open
// can serve verbatim.
func validateManifest(dir string, m *manifest) error {
	for i := range m.Segments {
		b := &m.Segments[i]
		if err := validateBlockFile(dir, b); err != nil {
			return err
		}
	}
	if m.Tail != nil {
		if err := validateBlockFile(dir, m.Tail); err != nil {
			return err
		}
	}
	if m.DictBytes > 0 {
		crc, err := fileCRC(filepath.Join(dir, dictFileName), m.DictBytes)
		if err != nil {
			return fmt.Errorf("store: dictionary: %w", err)
		}
		if crc != m.DictCRC {
			return fmt.Errorf("store: dictionary checksum mismatch over committed prefix")
		}
	}
	return nil
}

func validateBlockFile(dir string, b *manifestBlock) error {
	path := filepath.Join(dir, b.File)
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() != b.Size {
		return fmt.Errorf("store: %s: size %d, manifest says %d", path, fi.Size(), b.Size)
	}
	crc, err := fileCRC(path, -1)
	if err != nil {
		return err
	}
	if crc != b.CRC {
		return fmt.Errorf("store: %s: checksum mismatch", path)
	}
	return nil
}

// recoverManifest picks the newest fully-valid manifest in dir, deleting
// any newer (torn or corrupted) ones so they can never shadow the adopted
// state, and returns its sequence number. An error naming the first
// failure is returned when no manifest validates.
func recoverManifest(dir string) (*manifest, uint64, error) {
	seqs, err := listManifests(dir)
	if err != nil {
		return nil, 0, err
	}
	if len(seqs) == 0 {
		return nil, 0, fmt.Errorf("store: no manifest in %s", dir)
	}
	var firstErr error
	for _, seq := range seqs {
		path := filepath.Join(dir, manifestFileName(seq))
		m, err := readManifest(path)
		if err == nil {
			err = validateManifest(dir, m)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Adopted: anything newer failed validation — remove it so later
		// commits and cleanups reason only about manifests that were ever
		// servable.
		for _, bad := range seqs {
			if bad > seq {
				os.Remove(filepath.Join(dir, manifestFileName(bad)))
			}
		}
		return m, seq, nil
	}
	return nil, 0, fmt.Errorf("store: no valid manifest in %s: %w", dir, firstErr)
}

// sweepOrphans removes data files referenced by neither of the kept
// manifests: segment files at ordinals past the committed list (torn
// seals) and tail files from superseded commits. Best-effort — a failure
// leaves garbage, never breaks state.
func sweepOrphans(dir string, keep map[string]bool, committedSegs int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, tailPrefix):
			if !keep[name] {
				os.Remove(filepath.Join(dir, name))
			}
		case strings.HasPrefix(name, segPrefix):
			if ord, err := strconv.Atoi(strings.TrimPrefix(name, segPrefix)); err == nil && ord >= committedSegs && !keep[name] {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
}

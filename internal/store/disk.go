package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"privacy3d/internal/dataset"
)

// On-disk sealed-segment format (little-endian throughout):
//
//	magic   8B  "P3DSEG01" (tail files use "P3DTAIL1")
//	ncols   u32 column count (must match the schema)
//	rows    u32 rows in the block
//	base    u64 global row index of the first row
//	per column, in schema order:
//	  tag   u8  1 = numeric, 2 = categorical
//	  numeric:     rows × f64 values
//	               permLen u32, then permLen × u32 perm,
//	               permLen × f64 sorted, (rows-permLen) × u32 nan rows
//	  categorical: rows × u32 dictionary codes
//	               rows × u32 perm, rows × u32 sorted
//	crc     u32 CRC-32 (IEEE) over everything before it
//
// The indexes (zone maps fall out of sorted[0]/sorted[permLen-1]) are
// persisted exactly as buildSegData produced them, so a decoded segment is
// bit-for-bit the segData that was sealed — byte-identical answers across
// tiers reduce to that equality. Tail files persist only the raw columns
// (permLen == 0 convention is not used; tails simply carry no index
// sections) because the tail is always evaluated by the compiled scan.
const (
	segMagic  = "P3DSEG01"
	tailMagic = "P3DTAIL1"

	tagNumeric     = 1
	tagCategorical = 2

	blockHeaderSize = 8 + 4 + 4 + 8
)

// crcWriter tees writes into a running CRC-32.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

func (cw *crcWriter) u8(v uint8) error { return cw.bytes([]byte{v}) }

func (cw *crcWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return cw.bytes(b[:])
}

func (cw *crcWriter) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return cw.bytes(b[:])
}

func (cw *crcWriter) bytes(p []byte) error {
	_, err := cw.Write(p)
	return err
}

func (cw *crcWriter) f64s(vals []float64) error {
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if err := cw.bytes(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func (cw *crcWriter) u32s(vals []uint32) error {
	var b [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(b[:], v)
		if err := cw.bytes(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// writeBlockFile writes one sealed segment (withIndexes) or tail block to
// name inside dir via tmp + fsync + atomic rename, returning the final
// size and CRC (of the whole file, footer included, for manifest
// validation). nums/cats are the block's columns in schema order; for
// sealed segments they are the segData's own slices.
func writeBlockFile(dir, name, magic string, base int, rows int, nums [][]float64, cats [][]uint32, idx *segData) (int64, uint32, error) {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return 0, 0, err
	}
	defer os.Remove(tmp.Name())
	cw := &crcWriter{w: bufio.NewWriter(tmp)}
	if err := cw.bytes([]byte(magic)); err != nil {
		return 0, 0, err
	}
	ncols := len(nums)
	if err := cw.u32(uint32(ncols)); err != nil {
		return 0, 0, err
	}
	if err := cw.u32(uint32(rows)); err != nil {
		return 0, 0, err
	}
	if err := cw.u64(uint64(base)); err != nil {
		return 0, 0, err
	}
	for j := 0; j < ncols; j++ {
		switch {
		case nums[j] != nil:
			if err := cw.u8(tagNumeric); err != nil {
				return 0, 0, err
			}
			if err := cw.f64s(nums[j][:rows]); err != nil {
				return 0, 0, err
			}
			if idx != nil {
				ni := &idx.nidx[j]
				if err := cw.u32(uint32(len(ni.perm))); err != nil {
					return 0, 0, err
				}
				if err := cw.u32s(ni.perm); err != nil {
					return 0, 0, err
				}
				if err := cw.f64s(ni.sorted); err != nil {
					return 0, 0, err
				}
				if err := cw.u32s(ni.nan); err != nil {
					return 0, 0, err
				}
			}
		case cats[j] != nil:
			if err := cw.u8(tagCategorical); err != nil {
				return 0, 0, err
			}
			if err := cw.u32s(cats[j][:rows]); err != nil {
				return 0, 0, err
			}
			if idx != nil {
				ci := &idx.cidx[j]
				if err := cw.u32s(ci.perm); err != nil {
					return 0, 0, err
				}
				if err := cw.u32s(ci.sorted); err != nil {
					return 0, 0, err
				}
			}
		default:
			return 0, 0, fmt.Errorf("store: column %d has neither numeric nor categorical data", j)
		}
	}
	bodyCRC := cw.crc
	if err := cw.u32(bodyCRC); err != nil {
		return 0, 0, err
	}
	fileCRC := cw.crc // CRC including the footer, what the manifest records
	if err := cw.w.Flush(); err != nil {
		return 0, 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, 0, err
	}
	size, err := tmp.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, 0, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return 0, 0, err
	}
	if err := syncDir(dir); err != nil {
		return 0, 0, err
	}
	return size, fileCRC, nil
}

// blockReader decodes a block file sequentially through any ReaderAt —
// directly for tails at Open, through the pager for spilled segments.
type blockReader struct {
	src  io.ReaderAt
	size int64
	off  int64
	read func(off int64, dst []byte) error
	name string
}

func (br *blockReader) bytes(dst []byte) error {
	if br.off+int64(len(dst)) > br.size-4 { // never read into the CRC footer
		return fmt.Errorf("store: %s: truncated block (want %d bytes at %d, size %d)", br.name, len(dst), br.off, br.size)
	}
	if err := br.read(br.off, dst); err != nil {
		return err
	}
	br.off += int64(len(dst))
	return nil
}

func (br *blockReader) u8() (uint8, error) {
	var b [1]byte
	err := br.bytes(b[:])
	return b[0], err
}

func (br *blockReader) u32() (uint32, error) {
	var b [4]byte
	err := br.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:]), err
}

func (br *blockReader) u64() (uint64, error) {
	var b [8]byte
	err := br.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:]), err
}

func (br *blockReader) f64s(n int) ([]float64, error) {
	buf := make([]byte, n*8)
	if err := br.bytes(buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

func (br *blockReader) u32s(n int) ([]uint32, error) {
	buf := make([]byte, n*4)
	if err := br.bytes(buf); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	return out, nil
}

// decodeBlock decodes a block file into columns (and, when withIndexes,
// the persisted per-column indexes) against the given schema. It validates
// structure — magic, column count, tags, index lengths — but not the CRC:
// every committed file's checksum was verified when the manifest was
// chosen at Open, and immutable files don't decay between Open and read in
// any failure model short of external corruption, which the structural
// checks turn into an error rather than garbage.
func decodeBlock(br *blockReader, magic string, attrs []dataset.Attribute, withIndexes bool) (base int, d *segData, err error) {
	head := make([]byte, 8)
	if err := br.bytes(head); err != nil {
		return 0, nil, err
	}
	if string(head) != magic {
		return 0, nil, fmt.Errorf("store: %s: bad magic %q (want %q)", br.name, head, magic)
	}
	ncols, err := br.u32()
	if err != nil {
		return 0, nil, err
	}
	if int(ncols) != len(attrs) {
		return 0, nil, fmt.Errorf("store: %s: %d columns, schema has %d", br.name, ncols, len(attrs))
	}
	rows32, err := br.u32()
	if err != nil {
		return 0, nil, err
	}
	rows := int(rows32)
	base64, err := br.u64()
	if err != nil {
		return 0, nil, err
	}
	d = &segData{
		n:    rows,
		nums: make([][]float64, len(attrs)),
		cats: make([][]uint32, len(attrs)),
		nidx: make([]numIndex, len(attrs)),
		cidx: make([]catIndex, len(attrs)),
	}
	for j, a := range attrs {
		tag, err := br.u8()
		if err != nil {
			return 0, nil, err
		}
		wantTag := uint8(tagCategorical)
		if a.Kind == dataset.Numeric {
			wantTag = tagNumeric
		}
		if tag != wantTag {
			return 0, nil, fmt.Errorf("store: %s: column %d tag %d, schema wants %d", br.name, j, tag, wantTag)
		}
		if tag == tagNumeric {
			if d.nums[j], err = br.f64s(rows); err != nil {
				return 0, nil, err
			}
			if !withIndexes {
				continue
			}
			permLen, err := br.u32()
			if err != nil {
				return 0, nil, err
			}
			if int(permLen) > rows {
				return 0, nil, fmt.Errorf("store: %s: column %d perm length %d > rows %d", br.name, j, permLen, rows)
			}
			ni := numIndex{}
			if ni.perm, err = br.u32s(int(permLen)); err != nil {
				return 0, nil, err
			}
			if ni.sorted, err = br.f64s(int(permLen)); err != nil {
				return 0, nil, err
			}
			if ni.nan, err = br.u32s(rows - int(permLen)); err != nil {
				return 0, nil, err
			}
			if len(ni.nan) == 0 {
				ni.nan = nil
			}
			if len(ni.sorted) > 0 {
				ni.min, ni.max = ni.sorted[0], ni.sorted[len(ni.sorted)-1]
			}
			d.nidx[j] = ni
		} else {
			if d.cats[j], err = br.u32s(rows); err != nil {
				return 0, nil, err
			}
			if !withIndexes {
				continue
			}
			ci := catIndex{}
			if ci.perm, err = br.u32s(rows); err != nil {
				return 0, nil, err
			}
			if ci.sorted, err = br.u32s(rows); err != nil {
				return 0, nil, err
			}
			if len(ci.sorted) > 0 {
				ci.min, ci.max = ci.sorted[0], ci.sorted[len(ci.sorted)-1]
			}
			d.cidx[j] = ci
		}
	}
	if br.off != br.size-4 {
		return 0, nil, fmt.Errorf("store: %s: %d trailing bytes after block body", br.name, br.size-4-br.off)
	}
	return int(base64), d, nil
}

// fileCRC computes the CRC-32 (IEEE) of the first limit bytes of the file
// (limit < 0 means the whole file), streaming so Open-time verification of
// large segment files never materializes them.
func fileCRC(path string, limit int64) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var r io.Reader = bufio.NewReaderSize(f, 1<<20)
	if limit >= 0 {
		r = io.LimitReader(r, limit)
	}
	h := crc32.NewIEEE()
	n, err := io.Copy(h, r)
	if err != nil {
		return 0, err
	}
	if limit >= 0 && n != limit {
		return 0, fmt.Errorf("store: %s: %d bytes, want at least %d", path, n, limit)
	}
	return h.Sum32(), nil
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

package store

import (
	"math"
	"testing"
)

// planFor compiles conds against a tiny store and plans them.
func planFor(t *testing.T, conds []Cond) *plan {
	t.Helper()
	s, err := FromDataset(synthRows(10, 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := s.Snapshot().compile(conds)
	if err != nil {
		t.Fatal(err)
	}
	return planConds(cc)
}

func TestPlanMergesBandIntoOneInterval(t *testing.T) {
	p := planFor(t, []Cond{
		{Col: "x", Op: Ge, V: 3},
		{Col: "x", Op: Lt, V: 5},
		{Col: "c", Op: Eq, S: "a", Str: true},
	})
	if len(p.ivs) != 1 || len(p.rest) != 1 || p.empty {
		t.Fatalf("plan = %+v, want one interval + one residual", p)
	}
	iv := p.ivs[0]
	if iv.lo != 3 || !iv.loIncl || iv.hi != 5 || iv.hiIncl {
		t.Fatalf("band merged to [%v,%v] incl=(%v,%v), want [3,5)", iv.lo, iv.hi, iv.loIncl, iv.hiIncl)
	}
}

func TestPlanTieStrictness(t *testing.T) {
	// x > 3 ∧ x >= 3 is x > 3; x <= 5 ∧ x < 5 is x < 5.
	p := planFor(t, []Cond{
		{Col: "x", Op: Gt, V: 3}, {Col: "x", Op: Ge, V: 3},
		{Col: "x", Op: Le, V: 5}, {Col: "x", Op: Lt, V: 5},
	})
	if len(p.ivs) != 1 {
		t.Fatalf("plan = %+v", p)
	}
	iv := p.ivs[0]
	if iv.loIncl || iv.hiIncl || iv.lo != 3 || iv.hi != 5 {
		t.Fatalf("merged to [%v,%v] incl=(%v,%v), want (3,5) exclusive", iv.lo, iv.hi, iv.loIncl, iv.hiIncl)
	}
}

func TestPlanVacuousAndNaNAreEmpty(t *testing.T) {
	cases := [][]Cond{
		{{Col: "x", Op: Gt, V: 5}, {Col: "x", Op: Lt, V: 3}}, // disjoint
		{{Col: "x", Op: Gt, V: 3}, {Col: "x", Op: Le, V: 3}}, // touching, open
		{{Col: "x", Op: Eq, V: 4}, {Col: "x", Op: Eq, V: 5}}, // two equalities
		{{Col: "x", Op: Lt, V: math.NaN()}},                  // ordered vs NaN
		{{Col: "x", Op: Eq, V: math.NaN()}, {Col: "y", Op: Ge, V: 0}},
	}
	for _, conds := range cases {
		if p := planFor(t, conds); !p.empty {
			t.Errorf("plan(%v) = %+v, want empty", conds, p)
		}
	}
	// != NaN matches everything: it must stay a residual, not force empty.
	p := planFor(t, []Cond{{Col: "x", Op: Ne, V: math.NaN()}})
	if p.empty || len(p.rest) != 1 || len(p.ivs) != 0 {
		t.Fatalf("plan(x != NaN) = %+v, want one residual", p)
	}
}

func TestPlanNeStaysResidual(t *testing.T) {
	// A != carves a hole out of an interval: it cannot merge into it.
	p := planFor(t, []Cond{
		{Col: "x", Op: Ge, V: 2},
		{Col: "x", Op: Ne, V: 4},
		{Col: "x", Op: Lt, V: 9},
	})
	if len(p.ivs) != 1 || len(p.rest) != 1 || p.empty {
		t.Fatalf("plan = %+v, want interval [2,9) + residual !=4", p)
	}
	if p.rest[0].op != Ne || p.rest[0].v != 4 {
		t.Fatalf("residual = %+v", p.rest[0])
	}
}

// TestPlannedBandMatchesBrute pins the planner end to end: a band that is
// tiny only as an intersection agrees with the naive evaluator on every
// aggregate bit.
func TestPlannedBandMatchesBrute(t *testing.T) {
	d := synthRows(1000, 99)
	s, err := FromDataset(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	conds := []Cond{
		{Col: "x", Op: Ge, V: 7},
		{Col: "x", Op: Lt, V: 9},
		{Col: "y", Op: Gt, V: -5},
		{Col: "y", Op: Le, V: 12},
	}
	want := bruteEval(d, conds)
	bm, err := snap.Eval(conds)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := snap.EvalScan(conds)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if bm.Get(i) != w || scan.Get(i) != w {
			t.Fatalf("row %d: indexed=%v scan=%v brute=%v", i, bm.Get(i), scan.Get(i), w)
		}
	}
}

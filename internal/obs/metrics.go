// Package obs is the observability-and-robustness layer of the serving
// binaries: a dependency-free metrics registry (atomic counters, bounded
// histograms, callback gauges) with a plain-text /metrics endpoint, HTTP
// middleware for request logging, panic recovery, instrumentation and
// per-request timeouts, and a hardened http.Server with graceful shutdown.
//
// The paper frames privacy mechanisms as systems whose leakage and utility
// must be observable in operation (denial rates, query-log depth, traffic
// volume); this package supplies those signals without pulling in any
// third-party dependency.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"privacy3d/internal/par"
	"privacy3d/internal/store"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket cumulative histogram, safe for concurrent
// Observe. Bounds are upper bucket edges in ascending order; an implicit
// +Inf bucket catches the tail, so memory is bounded regardless of input.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// DefaultLatencyBuckets covers sub-millisecond to multi-second HTTP
// request latencies (seconds).
var DefaultLatencyBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// DefaultKernelBuckets resolves microsecond-scale compute kernels (the PIR
// answer path, the linkage scans): a word-parallel answer over a small
// database completes in tens of microseconds, far below the first HTTP
// bucket, so kernel histograms need their own finer lower edges (seconds).
var DefaultKernelBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1,
}

// DefaultApplyBuckets covers whole-dataset masking runs (the sdc_apply_seconds
// histogram): milliseconds for small tables up to minutes for 50k-row MDAV
// (seconds).
var DefaultApplyBuckets = []float64{
	1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 30, 60, 120,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry holds named counters, histograms and gauges. Metric names may
// carry Prometheus-style labels (see Label); the registry treats the full
// name as an opaque key, so no label parsing is ever needed.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]func() float64{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Safe for concurrent callers.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Gauge registers fn to be sampled at scrape time under name. Registering
// the same name again replaces the callback.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Label renders name{k1="v1",k2="v2"} from alternating key/value pairs, the
// exposition-format convention used throughout the serving layer.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// labeled splits a metric key into its bare name and a "k=v,..." suffix so
// histogram sub-series can graft _bucket/_sum/_count onto the name part.
func labeled(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func bucketSeries(name, labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("%s_bucket{le=%q}", name, le)
	}
	return fmt.Sprintf("%s_bucket{%s,le=%q}", name, labels, le)
}

// WriteTo renders every metric in a stable, sorted plain-text exposition
// format (a Prometheus-compatible subset).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, fn := range r.gauges {
		gauges[k] = fn
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, k := range sortedKeys(counters) {
		fmt.Fprintf(&b, "%s %d\n", k, counters[k])
	}
	for _, k := range sortedKeys(gauges) {
		fmt.Fprintf(&b, "%s %g\n", k, gauges[k]())
	}
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		name, labels := labeled(k)
		var cum int64
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "%s %d\n", bucketSeries(name, labels, fmt.Sprintf("%g", ub)), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(&b, "%s %d\n", bucketSeries(name, labels, "+Inf"), cum)
		fmt.Fprintf(&b, "%s %g\n", series(name+"_sum", labels), h.Sum())
		fmt.Fprintf(&b, "%s %d\n", series(name+"_count", labels), h.Count())
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RegisterParallelism registers the par_workers gauge, reporting the
// effective worker-pool size of the internal/par analytics engine so the
// serving layer's parallelism is visible at GET /metrics.
func RegisterParallelism(r *Registry) {
	r.Gauge("par_workers", func() float64 { return float64(par.Workers()) })
}

// RegisterStoreTiers registers the storage-tier gauges: how many sealed
// segments currently sit in memory versus on disk across the process's
// live stores, and the cumulative pager cache traffic behind the spilled
// tier. A serve process without a data directory reports its whole store
// resident and an idle pager.
func RegisterStoreTiers(r *Registry) {
	gauge := func(pick func(resident, spilled, hits, misses, evictions int64) int64) func() float64 {
		return func() float64 { return float64(pick(store.TierGauges())) }
	}
	r.Gauge("store_segments_resident", gauge(func(resident, _, _, _, _ int64) int64 { return resident }))
	r.Gauge("store_segments_spilled", gauge(func(_, spilled, _, _, _ int64) int64 { return spilled }))
	r.Gauge("store_pager_hits", gauge(func(_, _, hits, _, _ int64) int64 { return hits }))
	r.Gauge("store_pager_misses", gauge(func(_, _, _, misses, _ int64) int64 { return misses }))
	r.Gauge("store_pager_evictions", gauge(func(_, _, _, _, evictions int64) int64 { return evictions }))
}

// Handler serves the registry as GET /metrics plain text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := r.WriteTo(w); err != nil {
			// The connection is gone; nothing useful left to do.
			return
		}
	})
}

package obs

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Server timeouts. ReadHeader guards against slowloris clients, Read/Write
// bound a whole request/response exchange, Idle reaps keep-alive
// connections, and MaxHeaderBytes caps header memory per connection.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 15 * time.Second
	DefaultWriteTimeout      = 30 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
	DefaultMaxHeaderBytes    = 1 << 16
	// DefaultShutdownGrace is how long Serve waits for in-flight requests
	// to drain after a shutdown signal before cutting them off.
	DefaultShutdownGrace = 10 * time.Second
)

// NewServer returns an http.Server with production timeouts set, replacing
// the bare http.ListenAndServe pattern (which has none and can be held open
// forever by a single slow client).
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
		MaxHeaderBytes:    DefaultMaxHeaderBytes,
	}
}

// Serve runs srv on ln (or srv.Addr when ln is nil) until ctx is cancelled,
// then shuts down gracefully: the listener closes immediately, in-flight
// requests get up to grace to finish, and only then are connections cut.
// A clean drain returns nil.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, logger *log.Logger, grace time.Duration) error {
	if grace <= 0 {
		grace = DefaultShutdownGrace
	}
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- srv.Serve(ln)
		} else {
			errc <- srv.ListenAndServe()
		}
	}()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	if logger != nil {
		logger.Printf("shutting down: draining in-flight requests (grace %s)", grace)
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(sctx)
	// Serve/ListenAndServe has returned by now; a non-ErrServerClosed error
	// means serving itself failed just as the signal arrived.
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	if err != nil {
		return err
	}
	if logger != nil {
		logger.Printf("shutdown complete")
	}
	return nil
}

// Run serves srv until SIGINT or SIGTERM, then drains gracefully — the
// standard main-loop of both serving binaries. It returns nil on a clean
// signal-triggered exit, so the process can exit 0.
func Run(srv *http.Server, logger *log.Logger, grace time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return Serve(ctx, srv, nil, logger, grace)
}

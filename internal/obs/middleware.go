package obs

import (
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// Middleware wraps an http.Handler with one cross-cutting concern.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares so that the first argument is the outermost:
// Chain(h, A, B) serves requests as A(B(h)).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusWriter records the status code and body size a handler produced, so
// instrumentation and logging can observe the response without altering it.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush passes through so streaming handlers keep working under the wrap.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func wrap(w http.ResponseWriter) *statusWriter {
	if sw, ok := w.(*statusWriter); ok {
		return sw // already wrapped by an outer middleware
	}
	return &statusWriter{ResponseWriter: w}
}

// Instrument counts requests and observes latency per endpoint and status
// code. Only the given endpoints get their own series; anything else is
// folded into "other" so unknown paths cannot blow up metric cardinality.
func Instrument(reg *Registry, endpoints ...string) Middleware {
	known := make(map[string]bool, len(endpoints))
	for _, e := range endpoints {
		known[e] = true
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			endpoint := r.URL.Path
			if !known[endpoint] {
				endpoint = "other"
			}
			sw := wrap(w)
			start := time.Now()
			next.ServeHTTP(sw, r)
			elapsed := time.Since(start).Seconds()
			status := sw.status
			if status == 0 {
				status = http.StatusOK // handler wrote nothing: implicit 200
			}
			reg.Counter(Label("http_requests_total",
				"endpoint", endpoint, "status", strconv.Itoa(status))).Inc()
			reg.Counter(Label("http_requests_total", "endpoint", endpoint)).Inc()
			reg.Histogram(Label("http_request_seconds", "endpoint", endpoint),
				DefaultLatencyBuckets).Observe(elapsed)
		})
	}
}

// Recover turns a handler panic into a 500 response and a counter bump
// instead of a dead process. It must sit inside Instrument in the chain so
// the 500 is observed, and outside the application handler.
func Recover(reg *Registry, logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := wrap(w)
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if reg != nil {
					reg.Counter(Label("http_panics_total", "endpoint", r.URL.Path)).Inc()
				}
				if logger != nil {
					logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				}
				if sw.status == 0 { // headers not sent yet: we can still answer
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// Timeout attaches a deadline to every request context so in-handler work
// (and anything downstream honouring ctx) is bounded. d <= 0 disables it.
func Timeout(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if d <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// Logging writes one structured line per request: method, path, status,
// response bytes, duration and remote address.
func Logging(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := wrap(w)
			start := time.Now()
			next.ServeHTTP(sw, r)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			logger.Printf("method=%s path=%s status=%d bytes=%d duration=%s remote=%s",
				r.Method, r.URL.Path, status, sw.bytes, time.Since(start).Round(time.Microsecond), r.RemoteAddr)
		})
	}
}

package obs

import (
	"fmt"
	"sync"
	"time"
)

// Token-bucket admission control for the serving front ends. A server whose
// inference controls are cheap enough to answer thousands of queries per
// second still has finite capacity; admission control sheds the excess at
// the door with a 429 + Retry-After instead of letting a hot client queue
// everyone else into timeout. Buckets are per client (the budget principal
// when present, the remote address otherwise), so one greedy client cannot
// starve the rest.

// DefaultMaxClients bounds the per-client bucket map: past it, idle buckets
// are recycled. A bucket is tiny, so the default is generous.
const DefaultMaxClients = 65536

// TokenBuckets tracks one token bucket per client. Each bucket holds up to
// burst tokens and refills at rate tokens/second (lazily, on access — no
// background goroutine); a request costs one token. Safe for concurrent
// use.
type TokenBuckets struct {
	rate       float64
	burst      float64
	maxClients int
	now        func() time.Time // injectable for tests

	mu      sync.Mutex
	clients map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewTokenBuckets builds admission control admitting a sustained rate of
// rate requests/second per client with bursts of up to burst requests.
// burst < 1 defaults to max(2·rate, 1); maxClients < 1 defaults to
// DefaultMaxClients.
func NewTokenBuckets(rate float64, burst, maxClients int) (*TokenBuckets, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("obs: token-bucket rate must be > 0, got %g", rate)
	}
	b := float64(burst)
	if burst < 1 {
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	if maxClients < 1 {
		maxClients = DefaultMaxClients
	}
	return &TokenBuckets{
		rate:       rate,
		burst:      b,
		maxClients: maxClients,
		now:        time.Now,
		clients:    map[string]*tokenBucket{},
	}, nil
}

// Allow reports whether one request from client is admitted now and, when
// it is not, how long the client should wait before retrying (the
// Retry-After value).
func (t *TokenBuckets) Allow(client string) (ok bool, retryAfter time.Duration) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.clients[client]
	if b == nil {
		if len(t.clients) >= t.maxClients {
			t.evictIdleLocked(now)
		}
		b = &tokenBucket{tokens: t.burst, last: now}
		t.clients[client] = b
	} else if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens += el * t.rate
		if b.tokens > t.burst {
			b.tokens = t.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / t.rate * float64(time.Second))
}

// evictIdleLocked reclaims fully-refilled (hence idle ≥ burst/rate seconds)
// buckets; if none are idle it drops one arbitrary bucket so the map stays
// bounded. Dropping a bucket resets the client to a full burst — a small
// admission-control leak under client-count overload, never a memory leak.
func (t *TokenBuckets) evictIdleLocked(now time.Time) {
	for k, b := range t.clients {
		if b.tokens+now.Sub(b.last).Seconds()*t.rate >= t.burst {
			delete(t.clients, k)
		}
	}
	if len(t.clients) >= t.maxClients {
		for k := range t.clients {
			delete(t.clients, k)
			break
		}
	}
}

// Clients reports how many client buckets are currently tracked (a metrics
// gauge feed).
func (t *TokenBuckets) Clients() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.clients)
}

package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTokenBucketsAdmitAndRefill(t *testing.T) {
	tb, err := NewTokenBuckets(10, 2, 0) // 10 req/s, burst 2
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	tb.now = func() time.Time { return now }

	// The burst admits immediately; the next request is throttled with a
	// sensible Retry-After.
	for i := 0; i < 2; i++ {
		if ok, _ := tb.Allow("alice"); !ok {
			t.Fatalf("burst request %d throttled", i)
		}
	}
	ok, retry := tb.Allow("alice")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry <= 0 || retry > 150*time.Millisecond {
		t.Errorf("retry-after = %v, want ≈100ms at 10 req/s", retry)
	}
	// Other clients have their own buckets.
	if ok, _ := tb.Allow("bob"); !ok {
		t.Error("bob throttled by alice's bucket")
	}
	// After the advertised wait, alice is admitted again.
	now = now.Add(retry)
	if ok, _ := tb.Allow("alice"); !ok {
		t.Error("request after Retry-After still throttled")
	}
	// A long idle period refills only to the burst cap.
	now = now.Add(time.Hour)
	admittedAfterIdle := 0
	for i := 0; i < 10; i++ {
		if ok, _ := tb.Allow("alice"); ok {
			admittedAfterIdle++
		}
	}
	if admittedAfterIdle != 2 {
		t.Errorf("idle refill admitted %d, want burst cap 2", admittedAfterIdle)
	}
}

func TestTokenBucketsValidationAndDefaults(t *testing.T) {
	if _, err := NewTokenBuckets(0, 1, 0); err == nil {
		t.Error("accepted rate 0")
	}
	tb, err := NewTokenBuckets(5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.burst != 10 {
		t.Errorf("default burst = %g, want 2·rate = 10", tb.burst)
	}
	if tb.maxClients != DefaultMaxClients {
		t.Errorf("default maxClients = %d", tb.maxClients)
	}
}

func TestTokenBucketsBoundedClients(t *testing.T) {
	tb, err := NewTokenBuckets(1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(2000, 0)
	tb.now = func() time.Time { return now }
	for i := 0; i < 100; i++ {
		tb.Allow(string(rune('a' + i%26)) + string(rune('0'+i/26)))
		now = now.Add(time.Millisecond)
	}
	if n := tb.Clients(); n > 9 { // maxClients + the newly inserted one
		t.Errorf("client map grew to %d with maxClients 8", n)
	}
}

func TestTokenBucketsConcurrent(t *testing.T) {
	tb, err := NewTokenBuckets(1000, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	admitted := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if ok, _ := tb.Allow("shared"); ok {
					admitted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	// 400 requests against burst 100 + a few refilled tokens: the bucket
	// must never admit more than its capacity plus the refill during the
	// test's wall time (well under 1s ⇒ < 100+1000 tokens) and at least the
	// burst.
	if total < 100 || total > 400 {
		t.Errorf("concurrent admits = %d, want within [100, 400]", total)
	}
}

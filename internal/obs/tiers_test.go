package obs

import (
	"strings"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/store"
)

// TestStoreTierGaugesExposition pins the five tier gauges every serve
// binary surfaces at GET /metrics, and that building a store moves the
// resident gauge: a memory-only store counts entirely resident.
func TestStoreTierGaugesExposition(t *testing.T) {
	reg := NewRegistry()
	RegisterStoreTiers(reg)
	d, err := dataset.Synth("trial", 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	before, _, _, _, _ := store.TierGauges()
	st, err := store.FromDataset(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	after, _, _, _, _ := store.TierGauges()
	if after <= before {
		t.Fatalf("resident gauge did not grow: %d -> %d", before, after)
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"store_segments_resident",
		"store_segments_spilled",
		"store_pager_hits",
		"store_pager_misses",
		"store_pager_evictions",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s gauge:\n%s", name, out)
		}
	}
}

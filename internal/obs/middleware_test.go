package obs

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestInstrumentCountsAndBucketsUnknownPaths(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/fail", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	h := Chain(mux, Instrument(reg, "/ok", "/fail"))
	ts := httptest.NewServer(h)
	defer ts.Close()

	for _, path := range []string{"/ok", "/ok", "/fail", "/who-is-this"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	cases := map[string]int64{
		Label("http_requests_total", "endpoint", "/ok"):                    2,
		Label("http_requests_total", "endpoint", "/ok", "status", "200"):   2,
		Label("http_requests_total", "endpoint", "/fail", "status", "400"): 1,
		Label("http_requests_total", "endpoint", "other"):                  1,
		Label("http_requests_total", "endpoint", "other", "status", "404"): 1,
	}
	for name, want := range cases {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Histogram(Label("http_request_seconds", "endpoint", "/ok"), nil).Count(); got != 2 {
		t.Errorf("latency observations = %d, want 2", got)
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	reg := NewRegistry()
	var logged strings.Builder
	logger := log.New(&logged, "", 0)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), Instrument(reg, "/boom"), Recover(reg, logger))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	if got := reg.Counter(Label("http_panics_total", "endpoint", "/boom")).Value(); got != 1 {
		t.Errorf("panic counter = %d", got)
	}
	// Instrument (outside Recover) observed the 500.
	if got := reg.Counter(Label("http_requests_total", "endpoint", "/boom", "status", "500")).Value(); got != 1 {
		t.Errorf("500 counter = %d", got)
	}
	if !strings.Contains(logged.String(), "kaboom") {
		t.Error("panic value not logged")
	}
	// The server survived: a second request still works.
	resp2, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
}

func TestTimeoutSetsDeadline(t *testing.T) {
	var hadDeadline bool
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, hadDeadline = r.Context().Deadline()
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
			t.Error("context never expired")
		}
	}), Timeout(10*time.Millisecond))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hadDeadline {
		t.Error("request context has no deadline")
	}
}

func TestLoggingLine(t *testing.T) {
	var out strings.Builder
	logger := log.New(&out, "", 0)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	}), Logging(logger))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/tea")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := out.String()
	for _, want := range []string{"method=GET", "path=/tea", "status=418", "bytes=15"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
}

package obs

import (
	"strings"
	"testing"

	"privacy3d/internal/par"
)

func TestParWorkersGaugeReportsPoolSize(t *testing.T) {
	reg := NewRegistry()
	RegisterParallelism(reg)
	prev := par.SetWorkers(5)
	defer par.SetWorkers(prev)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "par_workers 5") {
		t.Errorf("exposition missing par_workers gauge:\n%s", b.String())
	}
}

package obs

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestNewServerHasTimeouts(t *testing.T) {
	srv := NewServer(":0", http.NotFoundHandler())
	if srv.ReadTimeout == 0 || srv.WriteTimeout == 0 || srv.IdleTimeout == 0 ||
		srv.ReadHeaderTimeout == 0 || srv.MaxHeaderBytes == 0 {
		t.Errorf("server missing hardening: %+v", srv)
	}
}

// TestGracefulShutdownDrainsInFlight starts a real server, parks a request
// inside a slow handler, cancels the serve context (the SIGTERM path), and
// checks that the in-flight request still completes and Serve returns nil.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln.Addr().String(), h)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(ctx, srv, ln, nil, 5*time.Second) }()

	body := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String())
		if err != nil {
			body <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		body <- string(b)
	}()

	<-entered
	cancel() // SIGTERM equivalent: listener closes, in-flight request drains
	time.Sleep(50 * time.Millisecond)
	close(release)

	if got := <-body; got != "drained" {
		t.Errorf("in-flight request got %q, want %q", got, "drained")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
	// New connections are refused once shutdown began.
	if _, err := http.Get("http://" + ln.Addr().String()); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

func TestServeReturnsListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Second server on the same address must fail immediately.
	srv := NewServer(ln.Addr().String(), http.NotFoundHandler())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := Serve(ctx, srv, nil, nil, time.Second); err == nil {
		t.Error("Serve on an occupied port returned nil")
	}
}

package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("hits").Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	c := reg.Counter("hits")
	c.Add(-5) // negative adds are ignored: counters are monotonic
	if got := c.Value(); got != 8000 {
		t.Errorf("counter after Add(-5) = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// Same name returns the same histogram regardless of bounds argument.
	if reg.Histogram("lat", nil) != h {
		t.Error("Histogram not idempotent by name")
	}
}

func TestLabel(t *testing.T) {
	if got := Label("m"); got != "m" {
		t.Errorf("Label no kv = %q", got)
	}
	if got := Label("m", "a", "1", "b", "x"); got != `m{a="1",b="x"}` {
		t.Errorf("Label = %q", got)
	}
}

func TestWriteToExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Label("reqs", "endpoint", "/q")).Add(3)
	reg.Gauge("depth", func() float64 { return 7 })
	h := reg.Histogram(Label("lat", "endpoint", "/q"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`reqs{endpoint="/q"} 3`,
		`depth 7`,
		`lat_bucket{endpoint="/q",le="0.1"} 1`,
		`lat_bucket{endpoint="/q",le="1"} 2`,
		`lat_bucket{endpoint="/q",le="+Inf"} 3`,
		`lat_sum{endpoint="/q"} 2.55`,
		`lat_count{endpoint="/q"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp2.StatusCode)
	}
}

func TestDefaultKernelBucketsWellFormed(t *testing.T) {
	if len(DefaultKernelBuckets) == 0 {
		t.Fatal("no kernel buckets")
	}
	prev := 0.0
	for i, b := range DefaultKernelBuckets {
		if b <= prev {
			t.Fatalf("bucket %d = %g not strictly increasing after %g", i, b, prev)
		}
		prev = b
	}
	if DefaultKernelBuckets[0] >= DefaultLatencyBuckets[0] {
		t.Error("kernel buckets do not extend below the HTTP latency buckets")
	}
	// A microsecond-scale kernel sample must not land in the catch-all.
	h := newHistogram(DefaultKernelBuckets)
	h.Observe(5e-6)
	if h.counts[len(h.bounds)].Load() != 0 {
		t.Error("5µs sample fell through to the +Inf bucket")
	}
}

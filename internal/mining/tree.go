// Package mining provides the data-mining substrate the PPDM methods are
// evaluated on: ID3-style decision trees (plain, and trained over
// Agrawal–Srikant reconstructed distributions — the designated use of the
// paper's [5]), Apriori association-rule mining (the substrate of rule
// hiding, [25]) and a naive Bayes classifier.
package mining

import (
	"fmt"
	"math"
	"sort"

	"privacy3d/internal/dataset"
)

// TreeNode is a node of a decision tree. Leaves carry a Class; internal
// nodes split on an attribute, either by threshold (numeric) or by value
// (categorical).
type TreeNode struct {
	// Leaf fields.
	Leaf  bool
	Class string
	// Split fields.
	Attr      string
	Threshold float64   // numeric split: left if value <= Threshold
	Left      *TreeNode // numeric branches
	Right     *TreeNode
	Branches  map[string]*TreeNode // categorical branches by value
	// Default handles unseen categorical values at prediction time.
	Default string
}

// TreeOptions bounds tree growth.
type TreeOptions struct {
	MaxDepth   int // default 6
	MinSamples int // default 4: do not split smaller nodes
}

func (o *TreeOptions) normalize() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 6
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 4
	}
}

// TrainTree builds an ID3/C4.5-style decision tree predicting the
// categorical target column from every other column (numeric attributes use
// the best binary threshold split; categorical ones split per value).
func TrainTree(d *dataset.Dataset, target string, opt TreeOptions) (*TreeNode, error) {
	opt.normalize()
	tj := d.Index(target)
	if tj < 0 {
		return nil, fmt.Errorf("mining: unknown target %q", target)
	}
	if d.Attr(tj).Kind == dataset.Numeric {
		return nil, fmt.Errorf("mining: target %q must be categorical", target)
	}
	if d.Rows() == 0 {
		return nil, fmt.Errorf("mining: empty training set")
	}
	rows := make([]int, d.Rows())
	for i := range rows {
		rows[i] = i
	}
	var features []int
	for j := 0; j < d.Cols(); j++ {
		if j != tj {
			features = append(features, j)
		}
	}
	return grow(d, tj, rows, features, opt.MaxDepth, opt.MinSamples), nil
}

func grow(d *dataset.Dataset, tj int, rows, features []int, depth, minSamples int) *TreeNode {
	maj, pure := majorityClass(d, tj, rows)
	if pure || depth == 0 || len(rows) < minSamples || len(features) == 0 {
		return &TreeNode{Leaf: true, Class: maj}
	}
	baseH := classEntropy(d, tj, rows)
	bestGain := 1e-9
	var bestAttr = -1
	var bestThreshold float64
	var bestIsNum bool
	for _, j := range features {
		if d.Attr(j).Kind == dataset.Numeric {
			th, gain := bestNumericSplit(d, tj, j, rows, baseH)
			if gain > bestGain {
				bestGain, bestAttr, bestThreshold, bestIsNum = gain, j, th, true
			}
		} else {
			gain := categoricalGain(d, tj, j, rows, baseH)
			if gain > bestGain {
				bestGain, bestAttr, bestIsNum = gain, j, false
			}
		}
	}
	if bestAttr < 0 {
		return &TreeNode{Leaf: true, Class: maj}
	}
	node := &TreeNode{Attr: d.Attr(bestAttr).Name, Default: maj}
	if bestIsNum {
		node.Threshold = bestThreshold
		var left, right []int
		for _, i := range rows {
			if d.Float(i, bestAttr) <= bestThreshold {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			return &TreeNode{Leaf: true, Class: maj}
		}
		node.Left = grow(d, tj, left, features, depth-1, minSamples)
		node.Right = grow(d, tj, right, features, depth-1, minSamples)
		return node
	}
	node.Branches = map[string]*TreeNode{}
	byVal := map[string][]int{}
	for _, i := range rows {
		v := d.Cat(i, bestAttr)
		byVal[v] = append(byVal[v], i)
	}
	// Categorical attributes are consumed once per path (ID3 style).
	var rest []int
	for _, j := range features {
		if j != bestAttr {
			rest = append(rest, j)
		}
	}
	for v, sub := range byVal {
		node.Branches[v] = grow(d, tj, sub, rest, depth-1, minSamples)
	}
	return node
}

func majorityClass(d *dataset.Dataset, tj int, rows []int) (string, bool) {
	counts := map[string]int{}
	for _, i := range rows {
		counts[d.Cat(i, tj)]++
	}
	keys := make([]string, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	best, bestC := "", -1
	for _, v := range keys {
		if counts[v] > bestC {
			best, bestC = v, counts[v]
		}
	}
	return best, len(counts) <= 1
}

func classEntropy(d *dataset.Dataset, tj int, rows []int) float64 {
	counts := map[string]float64{}
	for _, i := range rows {
		counts[d.Cat(i, tj)]++
	}
	n := float64(len(rows))
	var h float64
	for _, c := range counts {
		p := c / n
		h -= p * math.Log2(p)
	}
	return h
}

func bestNumericSplit(d *dataset.Dataset, tj, j int, rows []int, baseH float64) (threshold, gain float64) {
	type pair struct {
		v float64
		c string
	}
	ps := make([]pair, len(rows))
	for t, i := range rows {
		ps[t] = pair{d.Float(i, j), d.Cat(i, tj)}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].v < ps[b].v })
	total := map[string]float64{}
	for _, p := range ps {
		total[p.c]++
	}
	left := map[string]float64{}
	n := float64(len(ps))
	bestGain := -1.0
	var bestTh float64
	var nl float64
	for t := 0; t < len(ps)-1; t++ {
		left[ps[t].c]++
		nl++
		if ps[t].v == ps[t+1].v {
			continue
		}
		hl, hr := 0.0, 0.0
		for c, cnt := range total {
			l := left[c]
			r := cnt - l
			if l > 0 {
				p := l / nl
				hl -= p * math.Log2(p)
			}
			if r > 0 {
				p := r / (n - nl)
				hr -= p * math.Log2(p)
			}
		}
		g := baseH - (nl/n*hl + (n-nl)/n*hr)
		if g > bestGain {
			bestGain = g
			bestTh = (ps[t].v + ps[t+1].v) / 2
		}
	}
	return bestTh, bestGain
}

func categoricalGain(d *dataset.Dataset, tj, j int, rows []int, baseH float64) float64 {
	byVal := map[string][]int{}
	for _, i := range rows {
		byVal[d.Cat(i, j)] = append(byVal[d.Cat(i, j)], i)
	}
	if len(byVal) < 2 {
		return -1
	}
	n := float64(len(rows))
	var cond float64
	for _, sub := range byVal {
		cond += float64(len(sub)) / n * classEntropy(d, tj, sub)
	}
	return baseH - cond
}

// Predict classifies record i of d.
func (t *TreeNode) Predict(d *dataset.Dataset, i int) string {
	node := t
	for !node.Leaf {
		j := d.Index(node.Attr)
		if j < 0 {
			return node.Default
		}
		if node.Branches != nil {
			next, ok := node.Branches[d.Cat(i, j)]
			if !ok {
				return node.Default
			}
			node = next
			continue
		}
		if d.Float(i, j) <= node.Threshold {
			node = node.Left
		} else {
			node = node.Right
		}
	}
	return node.Class
}

// Accuracy returns the fraction of records of d whose target column the
// tree predicts correctly.
func (t *TreeNode) Accuracy(d *dataset.Dataset, target string) (float64, error) {
	tj := d.Index(target)
	if tj < 0 {
		return 0, fmt.Errorf("mining: unknown target %q", target)
	}
	if d.Rows() == 0 {
		return 0, fmt.Errorf("mining: empty evaluation set")
	}
	var hits float64
	for i := 0; i < d.Rows(); i++ {
		if t.Predict(d, i) == d.Cat(i, tj) {
			hits++
		}
	}
	return hits / float64(d.Rows()), nil
}

// Depth returns the depth of the tree (a single leaf has depth 0).
func (t *TreeNode) Depth() int {
	if t.Leaf {
		return 0
	}
	max := 0
	if t.Left != nil {
		if d := t.Left.Depth(); d > max {
			max = d
		}
	}
	if t.Right != nil {
		if d := t.Right.Depth(); d > max {
			max = d
		}
	}
	for _, b := range t.Branches {
		if d := b.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

package mining

import (
	"fmt"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/noise"
)

// TrainTreeOnReconstructed implements the Agrawal–Srikant (SIGMOD 2000)
// "ByClass" privacy-preserving decision-tree construction: the miner only
// holds noise-added training data, reconstructs the per-class distribution
// of each numeric attribute with the Bayesian EM procedure, replaces each
// class's noisy attribute values by the matching quantiles of the
// reconstructed distribution, and trains an ordinary tree on the corrected
// data. noiseSD values give the (known) noise standard deviation per numeric
// column name.
func TrainTreeOnReconstructed(noisy *dataset.Dataset, target string, noiseSD map[string]float64, bins int, opt TreeOptions) (*TreeNode, error) {
	tj := noisy.Index(target)
	if tj < 0 {
		return nil, fmt.Errorf("mining: unknown target %q", target)
	}
	if noisy.Attr(tj).Kind == dataset.Numeric {
		return nil, fmt.Errorf("mining: target %q must be categorical", target)
	}
	corrected := noisy.Clone()
	// Partition rows by class.
	byClass := map[string][]int{}
	for i := 0; i < noisy.Rows(); i++ {
		c := noisy.Cat(i, tj)
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for j := 0; j < noisy.Cols(); j++ {
		if j == tj || noisy.Attr(j).Kind != dataset.Numeric {
			continue
		}
		sd, ok := noiseSD[noisy.Attr(j).Name]
		if !ok || sd <= 0 {
			continue // attribute released without noise
		}
		// One shared support per attribute: all per-class reconstructions
		// land on the same bin grid, so corrected values cannot
		// fingerprint a class by its private quantile grid.
		col := noisy.NumColumn(j)
		lo, hi := col[0], col[0]
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		lo -= 2 * sd
		hi += 2 * sd
		for _, c := range classes {
			rows := byClass[c]
			if len(rows) < 10 {
				continue // too little data to reconstruct
			}
			w := make([]float64, len(rows))
			for t, i := range rows {
				w[t] = noisy.Float(i, j)
			}
			rec, err := noise.NewReconstructor(bins, sd).ReconstructRange(w, lo, hi)
			if err != nil {
				return nil, fmt.Errorf("mining: reconstruct %q class %q: %w", noisy.Attr(j).Name, c, err)
			}
			// Replace noisy values by reconstructed quantiles, keeping
			// each record's rank within its class.
			order := make([]int, len(rows))
			for t := range order {
				order[t] = t
			}
			sort.SliceStable(order, func(a, b int) bool { return w[order[a]] < w[order[b]] })
			q := quantilesFromDistribution(rec, len(rows))
			for rnk, t := range order {
				corrected.SetFloat(rows[t], j, q[rnk])
			}
		}
	}
	// The corrected records carry marginal information only (within-class
	// ranks come from the noisy data), so an unpruned tree overfits. Hold
	// out 30 % for reduced-error pruning, as AS2000 rely on pruning.
	n := corrected.Rows()
	cut := n * 7 / 10
	if cut < 1 || cut >= n {
		return TrainTree(corrected, target, opt)
	}
	trainRows := make([]int, 0, cut)
	valRows := make([]int, 0, n-cut)
	// Stride split so both parts cover all classes regardless of order.
	for i := 0; i < n; i++ {
		if i%10 < 7 {
			trainRows = append(trainRows, i)
		} else {
			valRows = append(valRows, i)
		}
	}
	tree, err := TrainTree(corrected.Select(trainRows), target, opt)
	if err != nil {
		return nil, err
	}
	return Prune(tree, corrected.Select(valRows), target)
}

// quantilesFromDistribution returns n values spaced at the (r+0.5)/n
// quantiles of the reconstructed distribution.
func quantilesFromDistribution(rec *noise.ReconstructResult, n int) []float64 {
	out := make([]float64, n)
	cum := 0.0
	b := 0
	for r := 0; r < n; r++ {
		p := (float64(r) + 0.5) / float64(n)
		for b < len(rec.Probs)-1 && cum+rec.Probs[b] < p {
			cum += rec.Probs[b]
			b++
		}
		out[r] = rec.Support[b]
	}
	return out
}

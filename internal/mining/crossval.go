package mining

import (
	"fmt"
	"math/rand/v2"

	"privacy3d/internal/dataset"
)

// CrossValidateTree estimates a decision tree's generalisation accuracy by
// k-fold cross validation, the standard protocol for the utility
// comparisons in the PPDM experiments (train on k−1 folds, test on the held
// out one, average).
func CrossValidateTree(d *dataset.Dataset, target string, folds int, opt TreeOptions, rng *rand.Rand) (float64, error) {
	return crossValidate(d, target, folds, rng, func(train *dataset.Dataset) (accuracyScorer, error) {
		return TrainTree(train, target, opt)
	})
}

type accuracyScorer interface {
	Accuracy(*dataset.Dataset, string) (float64, error)
}

func crossValidate(d *dataset.Dataset, target string, folds int, rng *rand.Rand,
	train func(*dataset.Dataset) (accuracyScorer, error)) (float64, error) {
	if d.Index(target) < 0 {
		return 0, fmt.Errorf("mining: unknown target %q", target)
	}
	idx, err := d.Folds(folds, rng)
	if err != nil {
		return 0, err
	}
	var total float64
	for f := range idx {
		var trainRows []int
		for g, rows := range idx {
			if g != f {
				trainRows = append(trainRows, rows...)
			}
		}
		model, err := train(d.Select(trainRows))
		if err != nil {
			return 0, fmt.Errorf("mining: fold %d: %w", f, err)
		}
		acc, err := model.Accuracy(d.Select(idx[f]), target)
		if err != nil {
			return 0, fmt.Errorf("mining: fold %d: %w", f, err)
		}
		total += acc
	}
	return total / float64(folds), nil
}

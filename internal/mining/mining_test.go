package mining

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
)

// labeled builds a classification dataset: class "hi" iff
// 0.6·x1 + 0.4·x2 + ε > threshold, a smooth boundary both classifiers can
// approximate.
func labeled(n int, seed uint64, noiseSD float64) *dataset.Dataset {
	rng := dataset.NewRand(seed)
	attrs := []dataset.Attribute{
		{Name: "x1", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		{Name: "x2", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		{Name: "seg", Role: dataset.NonConfidential, Kind: dataset.Nominal},
		{Name: "class", Role: dataset.Confidential, Kind: dataset.Nominal},
	}
	d := dataset.New(attrs...)
	for i := 0; i < n; i++ {
		x1 := dataset.Normal(rng, 50, 15)
		x2 := dataset.Normal(rng, 30, 10)
		seg := "a"
		if rng.Float64() < 0.5 {
			seg = "b"
		}
		score := 0.6*x1 + 0.4*x2 + dataset.Normal(rng, 0, noiseSD)
		class := "lo"
		if score > 42 {
			class = "hi"
		}
		d.MustAppend(x1, x2, seg, class)
	}
	return d
}

func TestTrainTreeLearnsBoundary(t *testing.T) {
	train := labeled(1500, 1, 2)
	test := labeled(600, 2, 2)
	tree, err := TrainTree(train, "class", TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tree.Accuracy(test, "class")
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("tree accuracy = %v, want ≥ 0.9", acc)
	}
	if tree.Depth() == 0 {
		t.Error("tree degenerated to a leaf")
	}
}

func TestTrainTreeCategoricalSplit(t *testing.T) {
	// Class fully determined by a categorical attribute.
	attrs := []dataset.Attribute{
		{Name: "color", Kind: dataset.Nominal},
		{Name: "class", Kind: dataset.Nominal},
	}
	d := dataset.New(attrs...)
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			d.MustAppend("red", "warm")
		} else {
			d.MustAppend("blue", "cold")
		}
	}
	tree, err := TrainTree(d, "class", TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := tree.Accuracy(d, "class")
	if acc != 1 {
		t.Errorf("deterministic mapping accuracy = %v, want 1", acc)
	}
	// Unseen category falls back to majority default.
	probe := dataset.New(attrs...)
	probe.MustAppend("green", "warm")
	if got := tree.Predict(probe, 0); got != "warm" && got != "cold" {
		t.Errorf("unseen category predicted %q", got)
	}
}

func TestTrainTreeValidation(t *testing.T) {
	d := labeled(50, 3, 1)
	if _, err := TrainTree(d, "nope", TreeOptions{}); err == nil {
		t.Error("accepted unknown target")
	}
	if _, err := TrainTree(d, "x1", TreeOptions{}); err == nil {
		t.Error("accepted numeric target")
	}
	empty := dataset.New(d.Attrs()...)
	if _, err := TrainTree(empty, "class", TreeOptions{}); err == nil {
		t.Error("accepted empty training set")
	}
	if _, err := (&TreeNode{Leaf: true, Class: "x"}).Accuracy(empty, "class"); err == nil {
		t.Error("accepted empty evaluation set")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	train := labeled(800, 5, 5)
	tree, err := TrainTree(train, "class", TreeOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 2 {
		t.Errorf("depth = %d, want ≤ 2", tree.Depth())
	}
}

func TestReconstructedTreeBeatsNaiveNoisyTraining(t *testing.T) {
	// The AS2000 claim the paper leans on: decision trees "properly run on
	// the masked data" after distribution reconstruction. Add heavy noise
	// to the training attributes, then compare a tree trained directly on
	// the noisy data with one trained via reconstruction, both evaluated
	// on clean test data.
	clean := labeled(3000, 7, 1)
	test := labeled(1000, 8, 1)
	rng := dataset.NewRand(9)
	sd1 := 30.0
	sd2 := 20.0
	noisy := clean.Clone()
	for i := 0; i < noisy.Rows(); i++ {
		noisy.SetFloat(i, 0, noisy.Float(i, 0)+sd1*rng.NormFloat64())
		noisy.SetFloat(i, 1, noisy.Float(i, 1)+sd2*rng.NormFloat64())
	}
	naive, err := TrainTree(noisy, "class", TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := TrainTreeOnReconstructed(noisy, "class",
		map[string]float64{"x1": sd1, "x2": sd2}, 30, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	accNaive, _ := naive.Accuracy(test, "class")
	accRec, _ := rec.Accuracy(test, "class")
	if accRec <= accNaive {
		t.Errorf("reconstruction did not help: naive %v vs reconstructed %v", accNaive, accRec)
	}
	if accRec < 0.8 {
		t.Errorf("reconstructed-tree accuracy = %v, want ≥ 0.8", accRec)
	}
}

func TestReconstructedTreeValidation(t *testing.T) {
	d := labeled(50, 11, 1)
	if _, err := TrainTreeOnReconstructed(d, "nope", nil, 10, TreeOptions{}); err == nil {
		t.Error("accepted unknown target")
	}
	if _, err := TrainTreeOnReconstructed(d, "x1", nil, 10, TreeOptions{}); err == nil {
		t.Error("accepted numeric target")
	}
	// Missing noiseSD entries mean "no noise on that column" — allowed.
	if _, err := TrainTreeOnReconstructed(d, "class", map[string]float64{}, 10, TreeOptions{}); err != nil {
		t.Errorf("no-noise training failed: %v", err)
	}
}

func TestAprioriKnownLattice(t *testing.T) {
	txs := []Transaction{
		{"bread", "milk"},
		{"bread", "diapers", "beer", "eggs"},
		{"milk", "diapers", "beer", "cola"},
		{"bread", "milk", "diapers", "beer"},
		{"bread", "milk", "diapers", "cola"},
	}
	freq, err := Apriori(txs, 3)
	if err != nil {
		t.Fatal(err)
	}
	bySet := map[string]int{}
	for _, f := range freq {
		bySet[f.Items.Key()] = f.Support
	}
	checks := map[string]int{
		"bread":           4,
		"milk":            4,
		"diapers":         4,
		"beer":            3,
		"beer\x1fdiapers": 3,
		"bread\x1fmilk":   3,
		"diapers\x1fmilk": 3,
	}
	for k, want := range checks {
		if got := bySet[k]; got != want {
			t.Errorf("support(%q) = %d, want %d", k, got, want)
		}
	}
	if _, ok := bySet["beer\x1fmilk"]; ok {
		t.Error("beer+milk should be infrequent at minsup 3")
	}
	if _, err := Apriori(txs, 0); err == nil {
		t.Error("accepted minSupport 0")
	}
}

func TestMineRules(t *testing.T) {
	txs := []Transaction{
		{"bread", "milk"},
		{"bread", "diapers", "beer", "eggs"},
		{"milk", "diapers", "beer", "cola"},
		{"bread", "milk", "diapers", "beer"},
		{"bread", "milk", "diapers", "cola"},
	}
	rules, err := MineRules(txs, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "beer" &&
			r.Consequent[0] == "diapers" {
			found = true
			if r.Confidence != 1 {
				t.Errorf("conf(beer⇒diapers) = %v, want 1", r.Confidence)
			}
		}
	}
	if !found {
		t.Error("beer ⇒ diapers not mined")
	}
	if _, err := MineRules(txs, 3, 0); err == nil {
		t.Error("accepted minConfidence 0")
	}
	if _, err := MineRules(txs, 3, 1.5); err == nil {
		t.Error("accepted minConfidence > 1")
	}
}

func TestNaiveBayes(t *testing.T) {
	train := labeled(2000, 13, 2)
	test := labeled(800, 14, 2)
	nb, err := TrainNaiveBayes(train, "class")
	if err != nil {
		t.Fatal(err)
	}
	acc, err := nb.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("naive Bayes accuracy = %v, want ≥ 0.85", acc)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	d := labeled(30, 15, 1)
	if _, err := TrainNaiveBayes(d, "nope"); err == nil {
		t.Error("accepted unknown target")
	}
	if _, err := TrainNaiveBayes(d, "x1"); err == nil {
		t.Error("accepted numeric target")
	}
	empty := dataset.New(d.Attrs()...)
	if _, err := TrainNaiveBayes(empty, "class"); err == nil {
		t.Error("accepted empty training set")
	}
}

func TestNaiveBayesHandlesUnseenCategory(t *testing.T) {
	train := labeled(500, 16, 1)
	nb, err := TrainNaiveBayes(train, "class")
	if err != nil {
		t.Fatal(err)
	}
	probe := dataset.New(train.Attrs()...)
	probe.MustAppend(55.0, 32.0, "never-seen", "hi")
	got := nb.Predict(probe, 0)
	if got != "hi" && got != "lo" {
		t.Errorf("prediction %q not a known class", got)
	}
	if math.IsNaN(float64(len(got))) {
		t.Fatal("unreachable")
	}
}

func TestCrossValidateTree(t *testing.T) {
	d := labeled(600, 21, 2)
	acc, err := CrossValidateTree(d, "class", 5, TreeOptions{}, dataset.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 || acc > 1 {
		t.Errorf("cross-validated accuracy = %v", acc)
	}
	if _, err := CrossValidateTree(d, "nope", 5, TreeOptions{}, nil); err == nil {
		t.Error("accepted unknown target")
	}
	if _, err := CrossValidateTree(d, "class", 1, TreeOptions{}, nil); err == nil {
		t.Error("accepted 1 fold")
	}
}

package mining

import (
	"fmt"
	"sort"
	"strings"
)

// Transaction is one market-basket transaction: a set of item names.
type Transaction []string

// Itemset is a sorted list of items treated as a set.
type Itemset []string

// Key returns the canonical string form of the itemset.
func (s Itemset) Key() string { return strings.Join(s, "\x1f") }

// Contains reports whether the transaction holds every item of s.
func contains(tr map[string]bool, s Itemset) bool {
	for _, it := range s {
		if !tr[it] {
			return false
		}
	}
	return true
}

// FrequentItemset pairs an itemset with its support count.
type FrequentItemset struct {
	Items   Itemset
	Support int
}

// Apriori mines all itemsets with support ≥ minSupport (absolute count)
// using the classic level-wise algorithm.
func Apriori(txs []Transaction, minSupport int) ([]FrequentItemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("mining: minSupport must be ≥ 1, got %d", minSupport)
	}
	sets := make([]map[string]bool, len(txs))
	for i, tr := range txs {
		m := make(map[string]bool, len(tr))
		for _, it := range tr {
			m[it] = true
		}
		sets[i] = m
	}
	// L1.
	counts := map[string]int{}
	for _, m := range sets {
		for it := range m {
			counts[it]++
		}
	}
	var level []Itemset
	var out []FrequentItemset
	items := make([]string, 0, len(counts))
	for it := range counts {
		items = append(items, it)
	}
	sort.Strings(items)
	for _, it := range items {
		if counts[it] >= minSupport {
			s := Itemset{it}
			level = append(level, s)
			out = append(out, FrequentItemset{Items: s, Support: counts[it]})
		}
	}
	// Level-wise extension.
	for len(level) > 0 {
		cands := candidates(level)
		var next []Itemset
		for _, c := range cands {
			sup := 0
			for _, m := range sets {
				if contains(m, c) {
					sup++
				}
			}
			if sup >= minSupport {
				next = append(next, c)
				out = append(out, FrequentItemset{Items: c, Support: sup})
			}
		}
		level = next
	}
	return out, nil
}

// candidates joins k-itemsets sharing a (k-1)-prefix, the Apriori-gen step.
func candidates(level []Itemset) []Itemset {
	var out []Itemset
	seen := map[string]bool{}
	for a := 0; a < len(level); a++ {
		for b := a + 1; b < len(level); b++ {
			x, y := level[a], level[b]
			if len(x) != len(y) {
				continue
			}
			join := false
			if len(x) == 1 {
				join = true
			} else {
				join = Itemset(x[:len(x)-1]).Key() == Itemset(y[:len(y)-1]).Key()
			}
			if !join {
				continue
			}
			merged := append(append(Itemset{}, x...), y[len(y)-1])
			sort.Strings(merged)
			if k := merged.Key(); !seen[k] {
				seen[k] = true
				out = append(out, merged)
			}
		}
	}
	return out
}

// Rule is an association rule A ⇒ B with support and confidence.
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	Support    int     // transactions containing A ∪ B
	Confidence float64 // Support / count(A)
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("{%s} => {%s} (sup=%d conf=%.2f)",
		strings.Join(r.Antecedent, ","), strings.Join(r.Consequent, ","), r.Support, r.Confidence)
}

// MineRules derives all association rules with the given minimum support
// (absolute) and confidence from the transactions, with single-item
// consequents (the standard formulation rule hiding targets).
func MineRules(txs []Transaction, minSupport int, minConfidence float64) ([]Rule, error) {
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, fmt.Errorf("mining: minConfidence must be in (0,1], got %g", minConfidence)
	}
	freq, err := Apriori(txs, minSupport)
	if err != nil {
		return nil, err
	}
	supports := map[string]int{}
	for _, f := range freq {
		supports[f.Items.Key()] = f.Support
	}
	var rules []Rule
	for _, f := range freq {
		if len(f.Items) < 2 {
			continue
		}
		for drop := range f.Items {
			ant := make(Itemset, 0, len(f.Items)-1)
			for t, it := range f.Items {
				if t != drop {
					ant = append(ant, it)
				}
			}
			antSup, ok := supports[ant.Key()]
			if !ok || antSup == 0 {
				continue
			}
			conf := float64(f.Support) / float64(antSup)
			if conf >= minConfidence {
				rules = append(rules, Rule{
					Antecedent: ant,
					Consequent: Itemset{f.Items[drop]},
					Support:    f.Support,
					Confidence: conf,
				})
			}
		}
	}
	sort.Slice(rules, func(a, b int) bool {
		if rules[a].Support != rules[b].Support {
			return rules[a].Support > rules[b].Support
		}
		return rules[a].String() < rules[b].String()
	})
	return rules, nil
}

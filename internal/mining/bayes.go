package mining

import (
	"fmt"
	"math"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// NaiveBayes is a Gaussian/categorical naive Bayes classifier: numeric
// attributes are modelled per class as Gaussians, categorical attributes as
// Laplace-smoothed multinomials.
type NaiveBayes struct {
	target  string
	classes []string
	prior   map[string]float64
	// gauss[class][attr] = (mean, sd); cat[class][attr][value] = prob.
	gauss map[string]map[string][2]float64
	cat   map[string]map[string]map[string]float64
	// catDomain[attr] = number of distinct values, for smoothing.
	catDomain map[string]int
}

// TrainNaiveBayes fits the classifier on d for a categorical target.
func TrainNaiveBayes(d *dataset.Dataset, target string) (*NaiveBayes, error) {
	tj := d.Index(target)
	if tj < 0 {
		return nil, fmt.Errorf("mining: unknown target %q", target)
	}
	if d.Attr(tj).Kind == dataset.Numeric {
		return nil, fmt.Errorf("mining: target %q must be categorical", target)
	}
	if d.Rows() == 0 {
		return nil, fmt.Errorf("mining: empty training set")
	}
	nb := &NaiveBayes{
		target:    target,
		prior:     map[string]float64{},
		gauss:     map[string]map[string][2]float64{},
		cat:       map[string]map[string]map[string]float64{},
		catDomain: map[string]int{},
	}
	byClass := map[string][]int{}
	for i := 0; i < d.Rows(); i++ {
		c := d.Cat(i, tj)
		byClass[c] = append(byClass[c], i)
	}
	for c := range byClass {
		nb.classes = append(nb.classes, c)
	}
	sort.Strings(nb.classes)
	// Categorical domains for smoothing.
	for j := 0; j < d.Cols(); j++ {
		if j == tj || d.Attr(j).Kind == dataset.Numeric {
			continue
		}
		vals := map[string]bool{}
		for i := 0; i < d.Rows(); i++ {
			vals[d.Cat(i, j)] = true
		}
		nb.catDomain[d.Attr(j).Name] = len(vals)
	}
	n := float64(d.Rows())
	for _, c := range nb.classes {
		rows := byClass[c]
		nb.prior[c] = float64(len(rows)) / n
		nb.gauss[c] = map[string][2]float64{}
		nb.cat[c] = map[string]map[string]float64{}
		for j := 0; j < d.Cols(); j++ {
			if j == tj {
				continue
			}
			name := d.Attr(j).Name
			if d.Attr(j).Kind == dataset.Numeric {
				xs := make([]float64, len(rows))
				for t, i := range rows {
					xs[t] = d.Float(i, j)
				}
				sd := stats.StdDev(xs)
				if sd < 1e-9 {
					sd = 1e-9
				}
				nb.gauss[c][name] = [2]float64{stats.Mean(xs), sd}
			} else {
				counts := map[string]float64{}
				for _, i := range rows {
					counts[d.Cat(i, j)]++
				}
				probs := map[string]float64{}
				dom := float64(nb.catDomain[name])
				for v, cnt := range counts {
					probs[v] = (cnt + 1) / (float64(len(rows)) + dom)
				}
				nb.cat[c][name] = probs
			}
		}
	}
	return nb, nil
}

// Classes returns the class labels seen at training time, sorted.
func (nb *NaiveBayes) Classes() []string { return append([]string(nil), nb.classes...) }

// LogPrior returns log P(class); unknown classes get a large negative score.
func (nb *NaiveBayes) LogPrior(class string) float64 {
	p, ok := nb.prior[class]
	if !ok || p == 0 {
		return -1e6
	}
	return math.Log(p)
}

// LogScoreFeaturesOnly returns Σ_j log P(feature_j | class) for record i of
// d, excluding the class prior — the additive share a party contributes in
// the vertically partitioned secure classification protocol.
func (nb *NaiveBayes) LogScoreFeaturesOnly(d *dataset.Dataset, i int, class string) float64 {
	var lp float64
	for j := 0; j < d.Cols(); j++ {
		name := d.Attr(j).Name
		if name == nb.target {
			continue
		}
		if d.Attr(j).Kind == dataset.Numeric {
			g, ok := nb.gauss[class][name]
			if !ok {
				continue
			}
			z := (d.Float(i, j) - g[0]) / g[1]
			lp += -z*z/2 - math.Log(g[1])
		} else {
			probs, ok := nb.cat[class][name]
			if !ok {
				continue
			}
			p, seen := probs[d.Cat(i, j)]
			if !seen {
				p = 1 / (float64(nb.catDomain[name]) + 1)
			}
			lp += math.Log(p)
		}
	}
	return lp
}

// Predict classifies record i of d by maximum posterior log-probability.
func (nb *NaiveBayes) Predict(d *dataset.Dataset, i int) string {
	best, bestLP := "", math.Inf(-1)
	for _, c := range nb.classes {
		lp := nb.LogPrior(c) + nb.LogScoreFeaturesOnly(d, i, c)
		if lp > bestLP {
			best, bestLP = c, lp
		}
	}
	return best
}

// Accuracy returns the fraction of records of d classified correctly.
func (nb *NaiveBayes) Accuracy(d *dataset.Dataset) (float64, error) {
	tj := d.Index(nb.target)
	if tj < 0 {
		return 0, fmt.Errorf("mining: evaluation set lacks target %q", nb.target)
	}
	if d.Rows() == 0 {
		return 0, fmt.Errorf("mining: empty evaluation set")
	}
	var hits float64
	for i := 0; i < d.Rows(); i++ {
		if nb.Predict(d, i) == d.Cat(i, tj) {
			hits++
		}
	}
	return hits / float64(d.Rows()), nil
}

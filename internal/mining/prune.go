package mining

import (
	"fmt"

	"privacy3d/internal/dataset"
)

// Prune applies reduced-error pruning: every subtree whose replacement by a
// majority-class leaf does not increase error on the validation set is
// collapsed, bottom-up. AS2000-style training on reconstructed data needs
// this — the corrected records carry only marginal information, so an
// unpruned tree overfits assignment noise.
func Prune(t *TreeNode, val *dataset.Dataset, target string) (*TreeNode, error) {
	tj := val.Index(target)
	if tj < 0 {
		return nil, fmt.Errorf("mining: validation set lacks target %q", target)
	}
	rows := make([]int, val.Rows())
	for i := range rows {
		rows[i] = i
	}
	return pruneNode(t, val, tj, rows), nil
}

func pruneNode(t *TreeNode, val *dataset.Dataset, tj int, rows []int) *TreeNode {
	if t.Leaf {
		return t
	}
	j := val.Index(t.Attr)
	if j < 0 {
		// Attribute absent from validation data: play safe, collapse.
		return &TreeNode{Leaf: true, Class: t.Default}
	}
	// Route validation rows and prune children first.
	if t.Branches != nil {
		byVal := map[string][]int{}
		for _, i := range rows {
			v := val.Cat(i, j)
			byVal[v] = append(byVal[v], i)
		}
		for v, child := range t.Branches {
			t.Branches[v] = pruneNode(child, val, tj, byVal[v])
		}
	} else {
		var left, right []int
		for _, i := range rows {
			if val.Float(i, j) <= t.Threshold {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		t.Left = pruneNode(t.Left, val, tj, left)
		t.Right = pruneNode(t.Right, val, tj, right)
	}
	// Compare subtree errors with a majority leaf on this node's rows.
	subErr := 0
	leafErr := 0
	for _, i := range rows {
		if t.Predict(val, i) != val.Cat(i, tj) {
			subErr++
		}
		if t.Default != val.Cat(i, tj) {
			leafErr++
		}
	}
	if leafErr <= subErr {
		return &TreeNode{Leaf: true, Class: t.Default}
	}
	return t
}

package core

// Table 2 fans the nine technology classes out across the worker pool;
// the measurements must be bit-identical to the sequential per-class loop
// for every worker count, because each class seeds its own PRNGs.

import (
	"reflect"
	"testing"

	"privacy3d/internal/par"
)

func smallEvalConfig() EvalConfig {
	cfg := DefaultEvalConfig()
	cfg.N = 220
	cfg.UserGameTrials = 120
	return cfg
}

func TestTable2IdenticalAcrossWorkers(t *testing.T) {
	ev, err := NewEvaluator(smallEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)

	// Sequential reference: the pre-engine per-class loop.
	par.SetWorkers(1)
	want := make([]Measurement, 0, len(AllClasses()))
	for _, c := range AllClasses() {
		m, err := ev.Evaluate(c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, m)
	}

	for _, w := range []int{1, 2, 8} {
		par.SetWorkers(w)
		got, err := ev.Table2()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Table2 differs from sequential per-class evaluation", w)
			for i := range got {
				if got[i] != want[i] {
					t.Logf("  class %v: got %+v want %+v", got[i].Class, got[i].Scores, want[i].Scores)
				}
			}
		}
	}
}

func TestTable2RowsStayInPaperOrder(t *testing.T) {
	ev, err := NewEvaluator(smallEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	ms, err := ev.Table2()
	if err != nil {
		t.Fatal(err)
	}
	classes := AllClasses()
	if len(ms) != len(classes) {
		t.Fatalf("got %d rows, want %d", len(ms), len(classes))
	}
	for i, m := range ms {
		if m.Class != classes[i] {
			t.Errorf("row %d is %v, want %v", i, m.Class, classes[i])
		}
	}
}

package core

import (
	"testing"
)

func TestRecommendedPipelineSatisfiesAllThreeDimensions(t *testing.T) {
	// The paper's Section 6 conclusion: k-anonymization + PPDM noise + PIR
	// fulfills the three privacy dimensions simultaneously (here: at least
	// "medium" on each).
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.EvaluatePipeline(RecommendedPipeline(3), Medium)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SatisfiesAll {
		t.Errorf("recommended pipeline does not satisfy all dimensions: %+v", rep)
	}
	if rep.Grades.User < High {
		t.Errorf("PIR access should give high user privacy, got %v", rep.Grades.User)
	}
	if rep.InfoLoss <= 0 || rep.InfoLoss > 0.5 {
		t.Errorf("info loss = %v, want small but positive", rep.InfoLoss)
	}
}

func TestPlaintextPipelineFailsUserDimension(t *testing.T) {
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := RecommendedPipeline(3)
	p.ServeViaPIR = false
	rep, err := e.EvaluatePipeline(p, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SatisfiesAll {
		t.Error("plaintext access cannot satisfy the user dimension")
	}
	if rep.Grades.User != None {
		t.Errorf("user grade = %v, want none", rep.Grades.User)
	}
}

func TestPipelineAlternativeComposition(t *testing.T) {
	// An alternative holistic solution: condensation of everything + PIR.
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := Pipeline{
		Name: "condense-all + PIR",
		Stages: []Stage{
			{Method: "condense", Target: "numeric", K: 2},
		},
		ServeViaPIR: true,
	}
	rep, err := e.EvaluatePipeline(p, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SatisfiesAll {
		t.Errorf("condensation+PIR should reach medium on all dimensions: %+v", rep.Scores)
	}
}

func TestPipelineStageErrors(t *testing.T) {
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := Pipeline{Name: "bad", Stages: []Stage{{Method: "zap"}}}
	if _, err := e.EvaluatePipeline(bad, Medium); err == nil {
		t.Error("accepted unknown stage method")
	}
	badTarget := Pipeline{Name: "bad", Stages: []Stage{{Method: "mdav", Target: "moon", K: 3}}}
	if _, err := e.EvaluatePipeline(badTarget, Medium); err == nil {
		t.Error("accepted unknown stage target")
	}
	// Recoding methods break the cell-wise numeric comparison of the attack
	// battery: an error, not the historical panic in the scorer.
	recoding := Pipeline{Name: "bad", Stages: []Stage{{Method: "mondrian"}}}
	if _, err := e.EvaluatePipeline(recoding, Medium); err == nil {
		t.Error("accepted a recoding method on the numeric attack battery")
	}
}

// TestStageLegacyParamMapping pins the legacy-field → registry-parameter
// rules: unset (zero) fields leave the registry defaults in force, so newly
// exposed methods work from pipelines without setting k explicitly, and
// Window fills the rank-swap "p" only — on kanon, whose "p" is the
// unrelated p-sensitivity, a set Window is an error rather than a silent
// parameter hijack.
func TestStageLegacyParamMapping(t *testing.T) {
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := e.Workload()

	// Unset K: mondrian must fall back to the registry default k=3 instead
	// of failing validation with k=0.
	if _, err := (Stage{Method: "mondrian"}).Apply(d, 1); err != nil {
		t.Errorf("mondrian with default k: %v", err)
	}

	// Window on swap still reaches the "p" window parameter.
	if _, err := (Stage{Method: "swap", Window: 5}).Apply(d, 1); err != nil {
		t.Errorf("swap with window: %v", err)
	}

	// Window on kanon must error, not set p-sensitivity.
	if _, err := (Stage{Method: "kanon", Window: 2}).Apply(d, 1); err == nil {
		t.Error("kanon accepted Window as its unrelated p-sensitivity")
	}

	// A set field a method does not declare is an error, not a no-op.
	if _, err := (Stage{Method: "mdav", Amplitude: 0.5}).Apply(d, 1); err == nil {
		t.Error("mdav accepted a noise amplitude")
	}
	if _, err := (Stage{Method: "noise", K: 3}).Apply(d, 1); err == nil {
		t.Error("noise accepted a group size")
	}
}

func TestStageColumnResolution(t *testing.T) {
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := e.Workload()
	qiStage := Stage{Method: "mdav", K: 3}
	cols, err := qiStage.columnsFor(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != len(d.QuasiIdentifiers()) {
		t.Errorf("qi target resolved %d columns", len(cols))
	}
	confStage := Stage{Method: "noise", Target: "confidential"}
	cols, err = confStage.columnsFor(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 { // blood_pressure is the only numeric confidential column
		t.Errorf("confidential target resolved %d columns, want 1", len(cols))
	}
	explicit := Stage{Method: "noise", Columns: []int{0}}
	cols, _ = explicit.columnsFor(d)
	if len(cols) != 1 || cols[0] != 0 {
		t.Errorf("explicit columns = %v", cols)
	}
}

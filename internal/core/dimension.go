// Package core implements the paper's contribution: the three-dimensional
// conceptual framework for database privacy. It defines the three dimensions
// (respondent, owner, user privacy), the eight technology classes of the
// paper's Table 2, and an empirical evaluator that measures each class on
// each dimension by running the corresponding attack simulation against the
// technologies implemented in the sibling packages, then maps measured
// scores onto the paper's qualitative grade scale.
package core

import "fmt"

// Dimension identifies whose privacy is being considered — the paper's
// Section 1 taxonomy.
type Dimension int

const (
	// Respondent privacy: preventing re-identification of the individuals
	// the records refer to.
	Respondent Dimension = iota
	// Owner privacy: the data holder must not give its dataset away when
	// answering analyses.
	Owner
	// User privacy: the queries submitted by a data user stay private.
	User
)

// String names the dimension.
func (d Dimension) String() string {
	switch d {
	case Respondent:
		return "respondent"
	case Owner:
		return "owner"
	case User:
		return "user"
	default:
		return fmt.Sprintf("Dimension(%d)", int(d))
	}
}

// Dimensions lists the three dimensions in paper order.
func Dimensions() []Dimension { return []Dimension{Respondent, Owner, User} }

// Grade is the paper's qualitative scale used in Table 2.
type Grade int

const (
	None Grade = iota
	Low
	Medium
	MediumHigh
	High
)

// String renders the grade as in the paper.
func (g Grade) String() string {
	switch g {
	case None:
		return "none"
	case Low:
		return "low"
	case Medium:
		return "medium"
	case MediumHigh:
		return "medium-high"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Grade(%d)", int(g))
	}
}

// GradeOf buckets a privacy score in [0,1] onto the qualitative scale. The
// thresholds are fixed and documented here once, so every experiment grades
// identically: [0,0.2) none, [0.2,0.4) low, [0.4,0.6) medium,
// [0.6,0.8) medium-high, [0.8,1] high.
func GradeOf(score float64) Grade {
	switch {
	case score < 0.2:
		return None
	case score < 0.4:
		return Low
	case score < 0.6:
		return Medium
	case score < 0.8:
		return MediumHigh
	default:
		return High
	}
}

// Scores holds one measured privacy score per dimension, each in [0,1]
// (1 = perfect privacy on that dimension).
type Scores struct {
	Respondent, Owner, User float64
}

// Grades holds one qualitative grade per dimension.
type Grades struct {
	Respondent, Owner, User Grade
}

// GradesOf buckets all three scores.
func GradesOf(s Scores) Grades {
	return Grades{
		Respondent: GradeOf(s.Respondent),
		Owner:      GradeOf(s.Owner),
		User:       GradeOf(s.User),
	}
}

// Get returns the grade of one dimension.
func (g Grades) Get(d Dimension) Grade {
	switch d {
	case Respondent:
		return g.Respondent
	case Owner:
		return g.Owner
	default:
		return g.User
	}
}

// Get returns the score of one dimension.
func (s Scores) Get(d Dimension) float64 {
	switch d {
	case Respondent:
		return s.Respondent
	case Owner:
		return s.Owner
	default:
		return s.User
	}
}

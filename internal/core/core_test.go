package core

import (
	"testing"

	"privacy3d/internal/dataset"
)

func TestGradeOfThresholds(t *testing.T) {
	cases := []struct {
		score float64
		want  Grade
	}{
		{0, None}, {0.19, None}, {0.2, Low}, {0.39, Low},
		{0.4, Medium}, {0.59, Medium}, {0.6, MediumHigh}, {0.79, MediumHigh},
		{0.8, High}, {1, High},
	}
	for _, c := range cases {
		if got := GradeOf(c.score); got != c.want {
			t.Errorf("GradeOf(%v) = %v, want %v", c.score, got, c.want)
		}
	}
}

func TestDimensionAndGradeStrings(t *testing.T) {
	if Respondent.String() != "respondent" || Owner.String() != "owner" || User.String() != "user" {
		t.Error("dimension names wrong")
	}
	if MediumHigh.String() != "medium-high" {
		t.Errorf("grade name = %q", MediumHigh)
	}
	if len(Dimensions()) != 3 {
		t.Error("Dimensions() must list three")
	}
}

func TestScoresGradesAccessors(t *testing.T) {
	s := Scores{Respondent: 0.1, Owner: 0.5, User: 0.9}
	if s.Get(Respondent) != 0.1 || s.Get(Owner) != 0.5 || s.Get(User) != 0.9 {
		t.Error("Scores.Get wrong")
	}
	g := GradesOf(s)
	if g.Get(Respondent) != None || g.Get(Owner) != Medium || g.Get(User) != High {
		t.Errorf("GradesOf = %+v", g)
	}
}

func TestClassesAndStrings(t *testing.T) {
	cs := Classes()
	if len(cs) != 8 {
		t.Fatalf("Classes() = %d rows, want 8 (Table 2)", len(cs))
	}
	all := AllClasses()
	if len(all) != 9 || all[len(all)-1] != DP {
		t.Fatalf("AllClasses() = %v, want the paper's 8 plus DP", all)
	}
	seen := map[string]bool{}
	for _, c := range all {
		name := c.String()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate class name %q", name)
		}
		seen[name] = true
	}
	if !PIR.HasPIR() || SDC.HasPIR() || !SDCPlusPIR.HasPIR() || CryptoPPDM.HasPIR() || DP.HasPIR() {
		t.Error("HasPIR wrong")
	}
}

func TestPaperTable2Complete(t *testing.T) {
	paper := PaperTable2()
	for _, c := range Classes() {
		if _, ok := paper[c]; !ok {
			t.Errorf("PaperTable2 missing %v", c)
		}
	}
	// The paper does not score DP; the reference table adds it on top.
	if _, ok := paper[DP]; ok {
		t.Error("PaperTable2 must not invent a DP row")
	}
	ref := ReferenceTable2()
	for _, c := range AllClasses() {
		if _, ok := ref[c]; !ok {
			t.Errorf("ReferenceTable2 missing %v", c)
		}
	}
	// Spot-check the printed table.
	if g := paper[CryptoPPDM]; g.Respondent != High || g.Owner != High || g.User != None {
		t.Errorf("CryptoPPDM grades = %+v", g)
	}
	if g := paper[PIR]; g.Respondent != None || g.Owner != None || g.User != High {
		t.Errorf("PIR grades = %+v", g)
	}
}

func TestEvaluatorValidation(t *testing.T) {
	cfg := DefaultEvalConfig()
	cfg.N = 10
	if _, err := NewEvaluator(cfg); err == nil {
		t.Error("accepted tiny population")
	}
	cfg = DefaultEvalConfig()
	cfg.SDCK = 1
	if _, err := NewEvaluator(cfg); err == nil {
		t.Error("accepted k = 1")
	}
	cfg = DefaultEvalConfig()
	cfg.UseSpecificTypes = 99
	if _, err := NewEvaluator(cfg); err == nil {
		t.Error("accepted UseSpecificTypes > AnalysisTypes")
	}
}

// TestTable2MatchesPaper is the headline reproduction: the empirical grades
// of the eight published technology classes coincide with the paper's
// Table 2, and the DP extension row matches this repository's reference
// grades.
func TestTable2MatchesPaper(t *testing.T) {
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := ReferenceTable2()
	ms, err := e.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 9 {
		t.Fatalf("measured %d rows, want the paper's 8 plus DP", len(ms))
	}
	for _, m := range ms {
		want := ref[m.Class]
		if m.Grades != want {
			t.Errorf("%v: measured %+v, reference %+v (scores %+v)", m.Class, m.Grades, want, m.Scores)
		}
	}
}

func TestTable2KeyOrderings(t *testing.T) {
	// Scale-free shape checks that hold regardless of grade thresholds.
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	get := func(c Class) Scores {
		m, err := e.Evaluate(c)
		if err != nil {
			t.Fatal(err)
		}
		return m.Scores
	}
	sdc, crypto, pirS := get(SDC), get(CryptoPPDM), get(PIR)
	noise, generic := get(UseSpecificPPDM), get(GenericPPDM)
	usePIR := get(UseSpecificPPDMPlusPIR)
	if !(crypto.Owner > noise.Owner && noise.Owner > sdc.Owner && sdc.Owner > pirS.Owner) {
		t.Errorf("owner ordering violated: crypto %v > use-specific %v > SDC %v > PIR %v",
			crypto.Owner, noise.Owner, sdc.Owner, pirS.Owner)
	}
	if !(sdc.Respondent > noise.Respondent && sdc.Respondent > pirS.Respondent) {
		t.Error("SDC should lead the masking rows on respondent privacy")
	}
	if crypto.User != 0 || sdc.User != 0 {
		t.Error("non-PIR rows must have zero user privacy")
	}
	if pirS.User < 0.9 {
		t.Errorf("PIR user privacy = %v, want ≈ 1", pirS.User)
	}
	if !(usePIR.User > 0.3 && usePIR.User < pirS.User) {
		t.Errorf("use-specific+PIR user privacy %v should sit between none and PIR's %v", usePIR.User, pirS.User)
	}
	_ = generic
}

func TestEvaluateUnknownClass(t *testing.T) {
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(Class(99)); err == nil {
		t.Error("accepted unknown class")
	}
}

func TestSection2Scenarios(t *testing.T) {
	rs, err := Section2Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("Section 2 has %d scenarios, want 3", len(rs))
	}
	for _, r := range rs {
		if !r.Holds {
			t.Errorf("%s does not hold: %v", r.ID, r.Facts)
		}
		if len(r.Facts) == 0 || r.Claim == "" {
			t.Errorf("%s lacks facts or claim", r.ID)
		}
	}
}

func TestSection3Scenarios(t *testing.T) {
	rs, err := Section3Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("Section 3 has %d scenarios, want 3", len(rs))
	}
	for _, r := range rs {
		if !r.Holds {
			t.Errorf("%s does not hold: %v", r.ID, r.Facts)
		}
	}
}

func TestSection4Scenarios(t *testing.T) {
	rs, err := Section4Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("Section 4 has %d scenarios, want 3", len(rs))
	}
	for _, r := range rs {
		if !r.Holds {
			t.Errorf("%s does not hold: %v", r.ID, r.Facts)
		}
	}
}

func TestUtilityVsDimensionsMonotone(t *testing.T) {
	rows, err := UtilityVsDimensions(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// Information loss rises (weakly) as data-distorting dimensions are
	// added, and the raw release loses nothing.
	if rows[0].InfoLoss != 0 {
		t.Errorf("raw release info loss = %v", rows[0].InfoLoss)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].InfoLoss+1e-9 < rows[i-1].InfoLoss {
			t.Errorf("info loss decreased at stage %d: %v → %v", i, rows[i-1].InfoLoss, rows[i].InfoLoss)
		}
	}
	// The third dimension costs communication, not extra distortion.
	if rows[3].InfoLoss != rows[2].InfoLoss {
		t.Error("PIR stage should not change data utility")
	}
	if rows[3].CommBits == 0 {
		t.Error("PIR stage should report communication cost")
	}
	if _, err := UtilityVsDimensions(1, 1); err == nil {
		t.Error("accepted k = 1")
	}
}

func TestNewEvaluatorForCustomDataset(t *testing.T) {
	// A census-like dataset with a different schema still evaluates; the
	// qualitative orderings hold even off the default workload.
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 800, Dims: 5, Seed: 77, Corr: 0.3})
	ev, err := NewEvaluatorFor(d, DefaultEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	sdc, err := ev.Evaluate(SDC)
	if err != nil {
		t.Fatal(err)
	}
	pirM, err := ev.Evaluate(PIR)
	if err != nil {
		t.Fatal(err)
	}
	crypto, err := ev.Evaluate(CryptoPPDM)
	if err != nil {
		t.Fatal(err)
	}
	if !(crypto.Scores.Owner > sdc.Scores.Owner && sdc.Scores.Owner > pirM.Scores.Owner) {
		t.Errorf("owner ordering violated on custom data: crypto %v, sdc %v, pir %v",
			crypto.Scores.Owner, sdc.Scores.Owner, pirM.Scores.Owner)
	}
	if pirM.Scores.Respondent != 0 || pirM.Scores.User < 0.9 {
		t.Errorf("PIR scores off on custom data: %+v", pirM.Scores)
	}
}

func TestNewEvaluatorForValidation(t *testing.T) {
	cfg := DefaultEvalConfig()
	if _, err := NewEvaluatorFor(nil, cfg); err == nil {
		t.Error("accepted nil dataset")
	}
	small := dataset.SyntheticCensus(dataset.CensusConfig{N: 99, Dims: 4, Seed: 1})
	if _, err := NewEvaluatorFor(small, cfg); err == nil {
		t.Error("accepted tiny dataset")
	}
	// Only one numeric quasi-identifier.
	oneQI := dataset.New(
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Numeric},
	)
	for i := 0; i < 150; i++ {
		oneQI.MustAppend(float64(i), float64(i))
	}
	if _, err := NewEvaluatorFor(oneQI, cfg); err == nil {
		t.Error("accepted a single numeric quasi-identifier")
	}
	// No numeric confidential attribute.
	noConf := dataset.New(
		dataset.Attribute{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "b", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		dataset.Attribute{Name: "c", Role: dataset.Confidential, Kind: dataset.Nominal},
	)
	for i := 0; i < 150; i++ {
		noConf.MustAppend(float64(i), float64(i), "x")
	}
	if _, err := NewEvaluatorFor(noConf, cfg); err == nil {
		t.Error("accepted dataset without numeric confidential attribute")
	}
}

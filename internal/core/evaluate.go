package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"privacy3d/internal/dataset"
	"privacy3d/internal/dp"
	"privacy3d/internal/noise"
	"privacy3d/internal/par"
	"privacy3d/internal/pir"
	"privacy3d/internal/risk"
	"privacy3d/internal/sdc"
	"privacy3d/internal/sdcquery"
	"privacy3d/internal/smc"
	"privacy3d/internal/stats"
)

// EvalConfig parameterises the empirical Table 2 evaluation. The defaults
// (see DefaultEvalConfig) are the calibration used throughout
// EXPERIMENTS.md; the masking parameters are representative settings of
// each technology class, chosen once and applied to every dimension.
type EvalConfig struct {
	// Population size and shape of the synthetic clinical-trial workload.
	N       int
	ExtraQI int
	Seed    uint64

	// SDCK is the microaggregation group size of the SDC row.
	SDCK int
	// NoiseAmplitude is the relative noise of the use-specific PPDM row
	// (Agrawal–Srikant-style noise addition).
	NoiseAmplitude float64
	// CondenseK is the condensation group size of the generic PPDM row.
	CondenseK int

	// BinsPerDim controls the rare-combination disclosure measurement.
	BinsPerDim int

	// DPEpsilon is the per-cell privacy parameter of the DP row (default 1):
	// the release carries Laplace noise with scale (column range)/ε per
	// cell, the local-DP view of the internal/dp mechanism.
	DPEpsilon float64

	// UserGameTrials is the number of rounds of the query-inference game.
	UserGameTrials int
	// AnalysisTypes (M) and UseSpecificTypes (m ≤ M) parameterise the
	// query-intent game that separates use-specific from generic PPDM
	// under PIR.
	AnalysisTypes    int
	UseSpecificTypes int
}

// DefaultEvalConfig returns the calibration used by the experiments.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{
		N: 1500, ExtraQI: 4, Seed: 20070923,
		SDCK: 3, NoiseAmplitude: 0.35, CondenseK: 2,
		BinsPerDim: 3, DPEpsilon: 1,
		UserGameTrials: 400, AnalysisTypes: 16, UseSpecificTypes: 2,
	}
}

// Measurement is the empirical score and grade of one technology class.
type Measurement struct {
	Class  Class
	Scores Scores
	Grades Grades
}

// Evaluator runs the attack simulations behind the Table 2 reproduction.
type Evaluator struct {
	cfg      EvalConfig
	original *dataset.Dataset
	qi       []int
}

// NewEvaluator builds the standard synthetic evaluation workload.
func NewEvaluator(cfg EvalConfig) (*Evaluator, error) {
	if cfg.N < 100 {
		return nil, fmt.Errorf("core: evaluation population must be ≥ 100, got %d", cfg.N)
	}
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: cfg.N, Seed: cfg.Seed, ExtraQI: cfg.ExtraQI})
	return NewEvaluatorFor(d, cfg)
}

// NewEvaluatorFor runs the same three-dimensional attack battery on a
// caller-provided dataset — "where would each technology class land on MY
// data?". The dataset needs at least 100 records, at least two numeric
// quasi-identifiers and at least one numeric confidential attribute.
func NewEvaluatorFor(d *dataset.Dataset, cfg EvalConfig) (*Evaluator, error) {
	if cfg.SDCK < 2 || cfg.CondenseK < 2 {
		return nil, fmt.Errorf("core: group sizes must be ≥ 2")
	}
	if cfg.UseSpecificTypes < 1 || cfg.UseSpecificTypes > cfg.AnalysisTypes {
		return nil, fmt.Errorf("core: need 1 ≤ UseSpecificTypes ≤ AnalysisTypes")
	}
	if cfg.DPEpsilon <= 0 {
		cfg.DPEpsilon = 1
	}
	if d == nil || d.Rows() < 100 {
		return nil, fmt.Errorf("core: evaluation dataset needs ≥ 100 records")
	}
	numericQI := 0
	for _, j := range d.QuasiIdentifiers() {
		if d.Attr(j).Kind == dataset.Numeric {
			numericQI++
		}
	}
	if numericQI < 2 {
		return nil, fmt.Errorf("core: evaluation dataset needs ≥ 2 numeric quasi-identifiers, has %d", numericQI)
	}
	confNumeric := false
	for _, j := range d.ConfidentialAttrs() {
		if d.Attr(j).Kind == dataset.Numeric {
			confNumeric = true
			break
		}
	}
	if !confNumeric {
		return nil, fmt.Errorf("core: evaluation dataset needs a numeric confidential attribute")
	}
	return &Evaluator{cfg: cfg, original: d, qi: d.QuasiIdentifiers()}, nil
}

// Workload exposes the synthetic population (e.g. for reporting).
func (e *Evaluator) Workload() *dataset.Dataset { return e.original }

// Evaluate measures one technology class on the three dimensions.
func (e *Evaluator) Evaluate(c Class) (Measurement, error) {
	return e.EvaluateCtx(context.Background(), c)
}

// EvaluateCtx is Evaluate with cooperative cancellation: the maskings and
// attack scans stop at the next chunk boundary once ctx is done and the
// context's error is returned.
func (e *Evaluator) EvaluateCtx(ctx context.Context, c Class) (Measurement, error) {
	var s Scores
	var err error
	switch c {
	case SDC, SDCPlusPIR:
		s, err = e.scoreRelease(ctx, e.maskSDC)
	case UseSpecificPPDM, UseSpecificPPDMPlusPIR:
		s, err = e.scoreRelease(ctx, e.maskNoise)
	case GenericPPDM, GenericPPDMPlusPIR:
		s, err = e.scoreRelease(ctx, e.maskCondense)
	case PIR:
		s, err = e.scoreRelease(ctx, e.maskIdentity)
	case DP:
		s, err = e.scoreRelease(ctx, e.maskDP)
	case CryptoPPDM:
		s, err = e.scoreCrypto()
	default:
		return Measurement{}, fmt.Errorf("core: unknown technology class %v", c)
	}
	if err != nil {
		return Measurement{}, err
	}
	s.User, err = e.userScore(c)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Class: c, Scores: s, Grades: GradesOf(s)}, nil
}

// Table2 evaluates every implemented class: the paper's eight rows in
// paper order, then the DP extension row. The classes fan out across the
// internal/par worker pool: each Evaluate call is self-contained — every
// masking and attack game seeds its own PRNG from cfg.Seed and the class,
// and the shared workload is read-only — so each class's measurement is
// bit-identical to a sequential run and the rows come back in order
// regardless of the worker count.
func (e *Evaluator) Table2() ([]Measurement, error) {
	return e.Table2Ctx(context.Background())
}

// Table2Ctx is Table2 with cooperative cancellation: classes not yet
// started when ctx is cancelled never run, in-flight attack scans stop at
// their next chunk boundary, and ctx.Err() is returned with no partial
// table.
func (e *Evaluator) Table2Ctx(ctx context.Context) ([]Measurement, error) {
	classes := AllClasses()
	out := make([]Measurement, len(classes))
	errs := make([]error, len(classes))
	if err := par.TasksCtx(ctx, len(classes), func(i int) {
		out[i], errs[i] = e.EvaluateCtx(ctx, classes[i])
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- releases ---------------------------------------------------------

// maskSDC releases the workload through the registry's MDAV method — the
// byte-identical successor of the old direct microagg.Mask call.
func (e *Evaluator) maskSDC(ctx context.Context) (*dataset.Dataset, error) {
	m, _, err := sdc.Apply(ctx, "mdav", e.original, sdc.Params{
		Target: "qi", Values: map[string]float64{"k": float64(e.cfg.SDCK)},
	}, nil)
	return m, err
}

// numericCols returns every numeric column: PPDM maskings perturb the whole
// numeric record (owner-focused protection of the dataset as an asset),
// whereas SDC masks only the quasi-identifiers (respondent-focused).
func (e *Evaluator) numericCols() []int {
	var cols []int
	for j := 0; j < e.original.Cols(); j++ {
		if e.original.Attr(j).Kind == dataset.Numeric {
			cols = append(cols, j)
		}
	}
	return cols
}

func (e *Evaluator) maskNoise(ctx context.Context) (*dataset.Dataset, error) {
	rng := dataset.NewRand(e.cfg.Seed ^ 0xa11ce)
	m, _, err := sdc.Apply(ctx, "noise", e.original, sdc.Params{
		Target: "numeric", Values: map[string]float64{"amp": e.cfg.NoiseAmplitude},
	}, rng)
	return m, err
}

func (e *Evaluator) maskCondense(ctx context.Context) (*dataset.Dataset, error) {
	rng := dataset.NewRand(e.cfg.Seed ^ 0xb0b)
	m, _, err := sdc.Apply(ctx, "condense", e.original, sdc.Params{
		Target: "numeric", Values: map[string]float64{"k": float64(e.cfg.CondenseK)},
	}, rng)
	return m, err
}

func (e *Evaluator) maskIdentity(ctx context.Context) (*dataset.Dataset, error) {
	return e.original.Clone(), nil
}

// maskDP releases the workload under per-cell ε-DP Laplace noise — the
// local-DP view of the internal/dp mechanism, so the record-level release
// attacks (linkage, sparse disclosure, interval recovery) can score the
// same calibrated noise the interactive sdcquery server adds to aggregate
// answers. Each cell's noise has sensitivity equal to its column's range
// (one substitution can move a cell anywhere in the domain) and is keyed
// on (row, column), so the release is deterministic per seed.
func (e *Evaluator) maskDP(ctx context.Context) (*dataset.Dataset, error) {
	m := e.original.Clone()
	for _, j := range e.numericCols() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := dp.ColumnBounds(e.original, j)
		p := dp.NoiseParams{Mechanism: dp.Laplace, Sensitivity: b.Width(), Epsilon: e.cfg.DPEpsilon}
		for i := 0; i < m.Rows(); i++ {
			n, err := dp.Noise(e.cfg.Seed^0xd1f, fmt.Sprintf("%d:%d", i, j), p)
			if err != nil {
				return nil, err
			}
			m.SetFloat(i, j, m.Float(i, j)+n)
		}
	}
	return m, nil
}

// --- respondent and owner scores on a record-level release -------------

// scoreRelease measures respondent and owner privacy of a released dataset.
//
// Respondent privacy = 1 − max(linkage, rare-combination disclosure): the
// stronger of the two re-identification attacks the paper discusses
// (distance-based record linkage with external identified data, and the
// sparse-cell disclosure of [11]).
//
// Owner privacy = 1 − (tight + loose value recovery)/2 over the masked
// attributes: the fraction of the owner's cell values an adversary recovers
// from the release within 1 % (tight) and 25 % (loose) of a standard
// deviation.
func (e *Evaluator) scoreRelease(ctx context.Context, mask func(context.Context) (*dataset.Dataset, error)) (Scores, error) {
	var s Scores
	released, err := mask(ctx)
	if err != nil {
		return s, err
	}
	link, err := risk.DistanceLinkageCtx(ctx, e.original, released, e.qi)
	if err != nil {
		return s, err
	}
	sparseRep, err := noise.SparseDisclosure(
		e.original.NumericMatrix(e.qi), released.NumericMatrix(e.qi), e.cfg.BinsPerDim, 1)
	if err != nil {
		return s, err
	}
	reid := link.Rate
	if sparseRep.DisclosureRate > reid {
		reid = sparseRep.DisclosureRate
	}
	s.Respondent = clamp01(1 - reid)

	numeric := e.numericCols()
	tight, err := risk.IntervalDisclosureCtx(ctx, e.original, released, numeric, 1)
	if err != nil {
		return s, err
	}
	loose, err := risk.IntervalDisclosureCtx(ctx, e.original, released, numeric, 25)
	if err != nil {
		return s, err
	}
	s.Owner = clamp01(1 - (tight+loose)/2)
	return s, nil
}

// scoreCrypto measures respondent and owner privacy of crypto PPDM from the
// protocol transcript of a secure ID3 run over a horizontal partition of the
// workload: nothing record-level is released, and the transcript consists of
// uniformly random shares. Recovery is measured as the fraction of share
// payloads small enough to be raw counts — the only conceivable record-level
// leak in the protocol's message space.
func (e *Evaluator) scoreCrypto() (Scores, error) {
	var s Scores
	parts := e.cryptoPartition(3)
	_, nw, err := smc.SecureID3(parts, "risk_band", 4, e.cfg.Seed)
	if err != nil {
		return s, err
	}
	var payloads, small int
	for _, m := range nw.Transcript() {
		if m.Round != "share" {
			continue
		}
		for _, el := range m.Payload {
			payloads++
			if uint64(el) <= uint64(e.cfg.N) {
				small++
			}
		}
	}
	if payloads == 0 {
		return s, fmt.Errorf("core: empty crypto transcript")
	}
	leak := float64(small) / float64(payloads)
	s.Respondent = clamp01(1 - leak)
	s.Owner = clamp01(1 - leak)
	return s, nil
}

// cryptoPartition discretises the workload into the categorical schema
// secure ID3 requires and splits it across parties: the first two numeric
// quasi-identifiers become quartile bands and the first numeric confidential
// attribute becomes a median-split risk label. This is schema-agnostic so
// NewEvaluatorFor works on any qualifying dataset.
func (e *Evaluator) cryptoPartition(parties int) []*dataset.Dataset {
	var qiNum []int
	for _, j := range e.qi {
		if e.original.Attr(j).Kind == dataset.Numeric {
			qiNum = append(qiNum, j)
		}
	}
	confJ := -1
	for _, j := range e.original.ConfidentialAttrs() {
		if e.original.Attr(j).Kind == dataset.Numeric {
			confJ = j
			break
		}
	}
	a, b := qiNum[0], qiNum[1]
	attrs := []dataset.Attribute{
		{Name: "qi1_band", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal},
		{Name: "qi2_band", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal},
		{Name: "risk_band", Role: dataset.Confidential, Kind: dataset.Nominal},
	}
	parts := make([]*dataset.Dataset, parties)
	for p := range parts {
		parts[p] = dataset.New(attrs...)
	}
	band := quartileBander(e.original.NumColumn(a))
	band2 := quartileBander(e.original.NumColumn(b))
	cut := stats.Quantile(e.original.NumColumn(confJ), 0.75)
	for i := 0; i < e.original.Rows(); i++ {
		risk := "normal"
		if e.original.Float(i, confJ) > cut {
			risk = "elevated"
		}
		parts[i%parties].MustAppend(
			band(e.original.Float(i, a)),
			band2(e.original.Float(i, b)),
			risk,
		)
	}
	return parts
}

// quartileBander maps values to one of four quartile labels.
func quartileBander(col []float64) func(float64) string {
	q1 := stats.Quantile(col, 0.25)
	q2 := stats.Quantile(col, 0.5)
	q3 := stats.Quantile(col, 0.75)
	return func(v float64) string {
		switch {
		case v < q1:
			return "b0"
		case v < q2:
			return "b1"
		case v < q3:
			return "b2"
		default:
			return "b3"
		}
	}
}

// --- user-privacy score -------------------------------------------------

// userScore plays two query-inference games and returns the lower score:
//
// Index game — the user retrieves a secret cell; the server guesses it from
// its own view. Without PIR the server reads the query itself (success 1);
// with PIR each server sees a uniformly random subset vector.
//
// Intent game — the user runs a secret analysis out of M types; a
// use-specific release supports only m ≪ M types, so the server's guess
// succeeds with probability 1/m instead of 1/M — the paper's "some clue on
// the queries made by the user". Crypto PPDM reveals the analysis to every
// party by construction (success 1).
//
// The score is the normalised complement of the server's advantage over
// random guessing: 1 − (success − 1/M)/(1 − 1/M).
func (e *Evaluator) userScore(c Class) (float64, error) {
	idx, err := e.indexGame(c)
	if err != nil {
		return 0, err
	}
	intent := e.intentGame(c)
	if intent < idx {
		return intent, nil
	}
	return idx, nil
}

func (e *Evaluator) indexGame(c Class) (float64, error) {
	const blocks = 64
	trials := e.cfg.UserGameTrials
	rng := rand.New(rand.NewPCG(e.cfg.Seed^0x5151, 7))
	success := 0
	if c == CryptoPPDM {
		// The joint computation is known to every party.
		return advantageScore(1, blocks), nil
	}
	if !c.HasPIR() {
		// Plaintext interactive queries: the owner logs the query and
		// reads the target off it — reproduce with the sdcquery server.
		srv, err := sdcquery.NewServer(e.original, sdcquery.Config{Protection: sdcquery.NoProtection})
		if err != nil {
			return 0, err
		}
		qiName := e.original.Attr(e.qi[0]).Name
		for t := 0; t < trials; t++ {
			secret := rng.IntN(blocks)
			q := sdcquery.Query{Agg: sdcquery.Count, Where: sdcquery.Predicate{
				{Col: qiName, Op: sdcquery.Ge, V: float64(secret)},
			}}
			if _, err := srv.Ask(q); err != nil {
				return 0, err
			}
			log := srv.Log()
			seen := int(log[len(log)-1].Where[0].V)
			if seen == secret {
				success++
			}
		}
		return advantageScore(float64(success)/float64(trials), blocks), nil
	}
	// PIR rows: two replicated servers; the adversary is server 0 and
	// guesses uniformly among the set bits of the subset it received.
	blockData := make([][]byte, blocks)
	for i := range blockData {
		blockData[i] = []byte{byte(i)}
	}
	s0, err := pir.NewITServer(blockData)
	if err != nil {
		return 0, err
	}
	s1, err := pir.NewITServer(blockData)
	if err != nil {
		return 0, err
	}
	client, err := pir.NewITClient([]*pir.ITServer{s0, s1}, e.cfg.Seed^0xc11e)
	if err != nil {
		return 0, err
	}
	for t := 0; t < trials; t++ {
		secret := rng.IntN(blocks)
		if _, err := client.Retrieve(secret); err != nil {
			return 0, err
		}
		log := s0.QueryLog()
		v := log[len(log)-1]
		var set []int
		for i := 0; i < blocks; i++ {
			if v[i>>3]>>(i&7)&1 == 1 {
				set = append(set, i)
			}
		}
		var guess int
		if len(set) == 0 {
			guess = rng.IntN(blocks)
		} else {
			guess = set[rng.IntN(len(set))]
		}
		if guess == secret {
			success++
		}
	}
	return advantageScore(float64(success)/float64(trials), blocks), nil
}

func (e *Evaluator) intentGame(c Class) float64 {
	m := e.cfg.AnalysisTypes
	switch c {
	case CryptoPPDM:
		return advantageScore(1, e.cfg.AnalysisTypes)
	case UseSpecificPPDM, UseSpecificPPDMPlusPIR:
		m = e.cfg.UseSpecificTypes
	}
	if !c.HasPIR() && c != CryptoPPDM {
		// Queries are visible anyway; the index game already returns 0.
		return advantageScore(1, e.cfg.AnalysisTypes)
	}
	// The user draws an analysis uniformly from the m supported types; the
	// server guesses uniformly within the supported set.
	rng := rand.New(rand.NewPCG(e.cfg.Seed^uint64(c)<<8, 13))
	success := 0
	for t := 0; t < e.cfg.UserGameTrials; t++ {
		secret := rng.IntN(m)
		if rng.IntN(m) == secret {
			success++
		}
	}
	return advantageScore(float64(success)/float64(e.cfg.UserGameTrials), e.cfg.AnalysisTypes)
}

// advantageScore converts a guessing success rate into a privacy score:
// 1 − normalised advantage over the 1/M random-guess baseline.
func advantageScore(success float64, m int) float64 {
	base := 1 / float64(m)
	adv := (success - base) / (1 - base)
	return clamp01(1 - adv)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

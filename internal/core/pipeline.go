package core

import (
	"context"
	"fmt"

	"privacy3d/internal/dataset"
	"privacy3d/internal/risk"
	"privacy3d/internal/sdc"
)

// Pipeline composes masking stages and an access mode into a candidate
// holistic solution, addressing the paper's closing research question:
// "Future research should explore other possible solutions satisfying the
// privacy of respondents, owners and users." A pipeline is evaluated on the
// same three-dimensional attack battery as the Table 2 classes, so
// alternative compositions can be compared like-for-like.
type Pipeline struct {
	// Name labels the pipeline in reports.
	Name string
	// Stages are applied in order to the dataset.
	Stages []Stage
	// ServeViaPIR selects private (PIR) instead of plaintext query access.
	ServeViaPIR bool
}

// Stage is one masking step of a pipeline.
type Stage struct {
	// Method names any method of the internal/sdc registry ("mdav",
	// "condense", "noise", "corrnoise", "swap", "pram", ...; see sdc.Names).
	Method string
	// Target selects the columns to mask: "qi" (default), "confidential"
	// (numeric confidential attributes), "numeric" (all numeric columns) or
	// "categorical". Columns overrides Target when non-nil.
	Target  string
	Columns []int
	// K is the group size for grouping methods (the registry's "k" param).
	// Zero means unset: the registry default applies.
	K int
	// Amplitude is the relative noise level for noise/corrnoise ("amp").
	// Zero means unset: the registry default applies.
	Amplitude float64
	// Window is the rank-swap window percentage — the "swap" method's "p"
	// parameter only; setting it on any other method is an error (kanon's
	// "p" is the unrelated p-sensitivity, reachable via Extra).
	Window float64
	// Extra carries additional registry parameters by name (e.g. "gamma"
	// for vmdav, "change" for pram); entries override the legacy fields.
	Extra map[string]float64
}

// columnsFor resolves the stage's target columns on d.
func (st Stage) columnsFor(d *dataset.Dataset) ([]int, error) {
	if st.Columns != nil {
		return st.Columns, nil
	}
	numericOf := func(role dataset.Role, any bool) []int {
		var cols []int
		for j := 0; j < d.Cols(); j++ {
			if d.Attr(j).Kind != dataset.Numeric {
				continue
			}
			if any || d.Attr(j).Role == role {
				cols = append(cols, j)
			}
		}
		return cols
	}
	switch st.Target {
	case "", "qi":
		return d.QuasiIdentifiers(), nil
	case "confidential":
		return numericOf(dataset.Confidential, false), nil
	case "numeric":
		return numericOf(0, true), nil
	default:
		return nil, fmt.Errorf("core: unknown stage target %q", st.Target)
	}
}

// params assembles the stage's sdc parameter values. A legacy typed field
// is forwarded only when explicitly set (non-zero), so the registry
// defaults stay reachable from pipelines, and only to a parameter with the
// same meaning: the mapping is keyed by method where a bare name is
// ambiguous — Window is the rank-swap window and fills "p" on the "swap"
// method only, never kanon's unrelated p-sensitivity "p". A set field that
// does not apply to the method is an error, not a silent no-op. Extra
// entries override by name.
func (st Stage) params(schema sdc.Schema) (sdc.Params, error) {
	declared := map[string]bool{}
	for _, spec := range schema.Params {
		declared[spec.Name] = true
	}
	vals := map[string]float64{}
	if st.K != 0 {
		if !declared["k"] {
			return sdc.Params{}, fmt.Errorf("method %q takes no group size k", schema.Name)
		}
		vals["k"] = float64(st.K)
	}
	if st.Amplitude != 0 {
		if !declared["amp"] {
			return sdc.Params{}, fmt.Errorf("method %q takes no noise amplitude", schema.Name)
		}
		vals["amp"] = st.Amplitude
	}
	if st.Window != 0 {
		if schema.Name != "swap" {
			return sdc.Params{}, fmt.Errorf("window is the rank-swap window and applies to method \"swap\" only, not %q", schema.Name)
		}
		vals["p"] = st.Window
	}
	for name, v := range st.Extra {
		vals[name] = v
	}
	return sdc.Params{Columns: st.Columns, Target: st.Target, Values: vals}, nil
}

// Apply runs the stage on d with the given seed.
func (st Stage) Apply(d *dataset.Dataset, seed uint64) (*dataset.Dataset, error) {
	return st.ApplyCtx(context.Background(), d, seed)
}

// ApplyCtx runs the stage through the sdc registry with cooperative
// cancellation. At a given seed the release is byte-identical to the old
// hand-written method switch: the registry adapters consume the stage rng
// in the same order as the direct calls they replaced.
func (st Stage) ApplyCtx(ctx context.Context, d *dataset.Dataset, seed uint64) (*dataset.Dataset, error) {
	m, err := sdc.Lookup(st.Method)
	if err != nil {
		return nil, fmt.Errorf("core: pipeline stage: %w", err)
	}
	p, err := st.params(m.Params())
	if err != nil {
		return nil, fmt.Errorf("core: pipeline stage %s: %w", st.Method, err)
	}
	out, _, err := m.Apply(ctx, d, p, dataset.NewRand(seed))
	return out, err
}

// PipelineReport is the three-dimensional evaluation of a pipeline plus its
// utility cost.
type PipelineReport struct {
	Name     string
	Scores   Scores
	Grades   Grades
	InfoLoss float64
	// SatisfiesAll reports whether every dimension reaches at least the
	// given target grade (see EvaluatePipeline's target parameter).
	SatisfiesAll bool
}

// EvaluatePipeline runs the pipeline on the evaluator's workload, measures
// the three dimensions with the standard attack battery, and checks whether
// all of them reach the target grade.
func (e *Evaluator) EvaluatePipeline(p Pipeline, target Grade) (PipelineReport, error) {
	return e.EvaluatePipelineCtx(context.Background(), p, target)
}

// EvaluatePipelineCtx is EvaluatePipeline with cooperative cancellation of
// the stage maskings and the attack battery.
func (e *Evaluator) EvaluatePipelineCtx(ctx context.Context, p Pipeline, target Grade) (PipelineReport, error) {
	var rep PipelineReport
	rep.Name = p.Name
	released := e.original.Clone()
	var err error
	for i, st := range p.Stages {
		// The attack battery and the info-loss measure compare the release
		// to the original cell-by-cell numerically; a recoding method
		// (intervals, suppression) breaks that comparison, so reject it here
		// with an error instead of letting the scorer panic downstream.
		if m, lerr := sdc.Lookup(st.Method); lerr == nil && m.Params().Recodes {
			return rep, fmt.Errorf("core: pipeline %q stage %d: method %q recodes values to interval labels and cannot be evaluated on the numeric attack battery", p.Name, i, st.Method)
		}
		released, err = st.ApplyCtx(ctx, released, e.cfg.Seed^uint64(i+1)*0x9e37)
		if err != nil {
			return rep, fmt.Errorf("core: pipeline %q stage %d: %w", p.Name, i, err)
		}
	}
	s, err := e.scoreRelease(ctx, func(context.Context) (*dataset.Dataset, error) { return released, nil })
	if err != nil {
		return rep, err
	}
	// User privacy depends only on the access mode.
	cls := SDC
	if p.ServeViaPIR {
		cls = SDCPlusPIR
	}
	s.User, err = e.userScore(cls)
	if err != nil {
		return rep, err
	}
	rep.Scores = s
	rep.Grades = GradesOf(s)
	il, err := risk.MeasureInfoLoss(e.original, released, e.numericCols())
	if err != nil {
		return rep, err
	}
	rep.InfoLoss = il.Overall()
	rep.SatisfiesAll = rep.Grades.Respondent >= target &&
		rep.Grades.Owner >= target && rep.Grades.User >= target
	return rep, nil
}

// RecommendedPipeline returns the paper's Section 6 recipe as a Pipeline:
// k-anonymization of the quasi-identifiers via microaggregation, PPDM noise
// on the confidential numeric attributes, and PIR for query access.
func RecommendedPipeline(k int) Pipeline {
	return Pipeline{
		Name: fmt.Sprintf("k-anonymize(k=%d) + noise + PIR (paper §6)", k),
		Stages: []Stage{
			{Method: "mdav", Target: "qi", K: k},
			{Method: "noise", Target: "confidential", Amplitude: 0.35},
		},
		ServeViaPIR: true,
	}
}

package core

import "fmt"

// Class is one of the eight technology classes scored in the paper's
// Table 2.
type Class int

const (
	// SDC is statistical disclosure control by data masking ([17,26]).
	SDC Class = iota
	// UseSpecificPPDM is non-cryptographic PPDM designed for one analysis
	// class, e.g. noise addition for decision trees ([5]) or rule hiding
	// ([25]).
	UseSpecificPPDM
	// GenericPPDM is non-cryptographic PPDM supporting broad analyses,
	// e.g. condensation/k-anonymization ([1,2]).
	GenericPPDM
	// CryptoPPDM is secure-multiparty-computation PPDM ([18,19]).
	CryptoPPDM
	// PIR is private information retrieval on its own ([8]).
	PIR
	// SDCPlusPIR serves SDC-masked data through PIR.
	SDCPlusPIR
	// UseSpecificPPDMPlusPIR serves use-specific-PPDM data through PIR.
	UseSpecificPPDMPlusPIR
	// GenericPPDMPlusPIR serves generic-PPDM data through PIR.
	GenericPPDMPlusPIR
	// DP is differential privacy as an inference control: aggregate answers
	// (equivalently, a local-DP release of the cells) carry Laplace noise
	// calibrated to ε. It post-dates the paper's Table 2 — Dwork's
	// calibrated-noise mechanism was contemporary work — and is evaluated
	// here as the ninth row; its reference grades come from this
	// repository's own calibration (ReferenceTable2), not from the paper.
	DP
)

// Classes lists the Table 2 rows in paper order — exactly the eight classes
// the paper scores. The evaluation additionally covers DP; use AllClasses
// for every implemented row.
func Classes() []Class {
	return []Class{SDC, UseSpecificPPDM, GenericPPDM, CryptoPPDM, PIR,
		SDCPlusPIR, UseSpecificPPDMPlusPIR, GenericPPDMPlusPIR}
}

// AllClasses lists every technology class the evaluator implements: the
// paper's eight Table 2 rows followed by the DP extension row.
func AllClasses() []Class {
	return append(Classes(), DP)
}

// String names the class as in Table 2.
func (c Class) String() string {
	switch c {
	case SDC:
		return "SDC"
	case UseSpecificPPDM:
		return "Use-specific non-crypto PPDM"
	case GenericPPDM:
		return "Generic non-crypto PPDM"
	case CryptoPPDM:
		return "Crypto PPDM"
	case PIR:
		return "PIR"
	case SDCPlusPIR:
		return "SDC + PIR"
	case UseSpecificPPDMPlusPIR:
		return "Use-specific non-crypto PPDM + PIR"
	case GenericPPDMPlusPIR:
		return "Generic non-crypto PPDM + PIR"
	case DP:
		return "Differential privacy"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// HasPIR reports whether the class serves its release through PIR.
func (c Class) HasPIR() bool {
	switch c {
	case PIR, SDCPlusPIR, UseSpecificPPDMPlusPIR, GenericPPDMPlusPIR:
		return true
	}
	return false
}

// PaperTable2 returns the qualitative grades the paper assigns in Table 2.
// This is the ground truth the empirical evaluation is compared against.
func PaperTable2() map[Class]Grades {
	return map[Class]Grades{
		SDC:                    {Respondent: MediumHigh, Owner: Medium, User: None},
		UseSpecificPPDM:        {Respondent: Medium, Owner: MediumHigh, User: None},
		GenericPPDM:            {Respondent: Medium, Owner: MediumHigh, User: None},
		CryptoPPDM:             {Respondent: High, Owner: High, User: None},
		PIR:                    {Respondent: None, Owner: None, User: High},
		SDCPlusPIR:             {Respondent: MediumHigh, Owner: Medium, User: High},
		UseSpecificPPDMPlusPIR: {Respondent: Medium, Owner: MediumHigh, User: Medium},
		GenericPPDMPlusPIR:     {Respondent: Medium, Owner: MediumHigh, User: High},
	}
}

// ReferenceTable2 returns the expected grades of every implemented class:
// the paper's Table 2 for the eight published rows, extended with this
// repository's reference grades for the DP row. At the default calibration
// (per-cell ε = 1 Laplace noise spanning each attribute's range) the DP
// release defeats both re-identification attacks and cell-value recovery —
// respondent and owner privacy High — while the interactive query channel
// is plaintext, so user privacy is None, exactly like the other non-PIR
// rows. The DP grades are measured by this repository's evaluation, not
// published in the paper; tablegen marks the row accordingly.
func ReferenceTable2() map[Class]Grades {
	ref := PaperTable2()
	ref[DP] = Grades{Respondent: High, Owner: High, User: None}
	return ref
}

// Note: the paper writes "medium-high" for SDC respondent privacy as a
// range "medium-high"; we encode the ranges by their single tabulated
// grades exactly as printed in Table 2 of the paper.

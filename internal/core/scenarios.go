package core

import (
	"fmt"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/dataset"
	"privacy3d/internal/microagg"
	"privacy3d/internal/noise"
	"privacy3d/internal/pir"
	"privacy3d/internal/risk"
	"privacy3d/internal/sdcquery"
	"privacy3d/internal/smc"
)

// QuadrantResult is one worked independence scenario from Sections 2–4 of
// the paper, with the measured facts supporting it.
type QuadrantResult struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "S2a").
	ID string
	// Claim is the paper's statement the scenario demonstrates.
	Claim string
	// Facts are the measured quantities, already rendered.
	Facts []string
	// Holds reports whether the measurements support the claim.
	Holds bool
}

func fact(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Section2Scenarios demonstrates the independence of respondent and owner
// privacy (paper Section 2): each quadrant realised by a concrete
// technology and measured.
func Section2Scenarios() ([]QuadrantResult, error) {
	var out []QuadrantResult

	// S2a — respondent privacy without owner privacy: publishing the
	// spontaneously 3-anonymous Dataset 1 raw.
	d1 := dataset.Dataset1()
	k := anonymity.K(d1, d1.QuasiIdentifiers())
	rec, err := risk.IntervalDisclosure(d1, d1.Clone(), d1.QuasiIdentifiers(), 1)
	if err != nil {
		return nil, err
	}
	out = append(out, QuadrantResult{
		ID:    "S2a",
		Claim: "publishing Dataset 1 raw preserves respondent privacy (3-anonymous) but violates owner privacy (exact data given away)",
		Facts: []string{
			fact("k-anonymity of Dataset 1 = %d", k),
			fact("owner value recovery from release = %.0f%%", 100*rec),
		},
		Holds: k >= 3 && rec == 1,
	})

	// S2b — both: adequately masked release (MDAV k=3).
	trial := dataset.SyntheticTrial(dataset.TrialConfig{N: 600, Seed: 2007})
	masked, res, err := microagg.Mask(trial, microagg.NewOptions(3))
	if err != nil {
		return nil, err
	}
	link, err := risk.DistanceLinkage(trial, masked, trial.QuasiIdentifiers())
	if err != nil {
		return nil, err
	}
	recM, err := risk.IntervalDisclosure(trial, masked, trial.QuasiIdentifiers(), 1)
	if err != nil {
		return nil, err
	}
	kM := anonymity.K(masked, masked.QuasiIdentifiers())
	out = append(out, QuadrantResult{
		ID:    "S2b",
		Claim: "masking before release (microaggregation k=3) yields respondent AND owner privacy at bounded utility cost",
		Facts: []string{
			fact("masked k-anonymity = %d, linkage rate = %.3f (≤ 1/3)", kM, link.Rate),
			fact("owner exact-value recovery = %.1f%%", 100*recM),
			fact("information loss (SSE/SST) = %.3f", res.IL()),
		},
		Holds: kM >= 3 && link.Rate <= 1.0/3+0.01 && recM < 0.5 && res.IL() < 0.5,
	})

	// S2c — owner privacy without respondent privacy: lightly noised
	// high-dimensional data where rare combinations are re-disclosed
	// (the [11] effect), yet exact values are not recoverable.
	wide := dataset.SyntheticCensus(dataset.CensusConfig{N: 800, Dims: 8, Seed: 11})
	cols := make([]int, 8)
	for j := range cols {
		cols[j] = j
	}
	noisy, err := noise.AddUncorrelated(wide, cols, 0.05, dataset.NewRand(13))
	if err != nil {
		return nil, err
	}
	sparse, err := noise.SparseDisclosure(wide.NumericMatrix(cols), noisy.NumericMatrix(cols), 4, 1)
	if err != nil {
		return nil, err
	}
	recN, err := risk.IntervalDisclosure(wide, noisy, cols, 1)
	if err != nil {
		return nil, err
	}
	out = append(out, QuadrantResult{
		ID:    "S2c",
		Claim: "high-dimensional noise-masked data keeps owner privacy (values perturbed) while violating respondent privacy through rare-combination disclosure [11]",
		Facts: []string{
			fact("rare-combination disclosure rate = %.1f%% of records", 100*sparse.DisclosureRate),
			fact("owner exact-value recovery = %.1f%%", 100*recN),
		},
		Holds: sparse.DisclosureRate > 0.3 && recN < 0.5,
	})
	return out, nil
}

// Section3Scenarios demonstrates the independence of respondent and user
// privacy (paper Section 3).
func Section3Scenarios() ([]QuadrantResult, error) {
	var out []QuadrantResult

	// S3a — respondent privacy without user privacy: an audited
	// interactive statistical database. The tracker attack is blocked,
	// but the server has logged every query.
	srv, err := sdcquery.NewServer(dataset.Dataset2(), sdcquery.Config{Protection: sdcquery.Auditing})
	if err != nil {
		return nil, err
	}
	tr := sdcquery.NewTracker(srv,
		sdcquery.Predicate{{Col: "height", Op: sdcquery.Lt, V: 176}},
		sdcquery.Cond{Col: "weight", Op: sdcquery.Gt, V: 105})
	_, attackErr := tr.Infer("blood_pressure")
	logged := len(srv.Log())
	out = append(out, QuadrantResult{
		ID:    "S3a",
		Claim: "query auditing protects respondents (tracker blocked) but the owner sees every query — no user privacy",
		Facts: []string{
			fact("tracker attack denied: %v", attackErr != nil),
			fact("queries visible to the owner: %d of %d submitted", logged, logged),
		},
		Holds: attackErr != nil && logged > 0,
	})

	// S3b — both: k-anonymized records served through PIR.
	trial := dataset.SyntheticTrial(dataset.TrialConfig{N: 400, Seed: 3})
	masked, _, err := microagg.Mask(trial, microagg.NewOptions(3))
	if err != nil {
		return nil, err
	}
	link, err := risk.DistanceLinkage(trial, masked, trial.QuasiIdentifiers())
	if err != nil {
		return nil, err
	}
	// Serve the masked records through 2-server IT-PIR and retrieve one.
	blocks := make([][]byte, masked.Rows())
	for i := range blocks {
		blocks[i] = []byte(fmt.Sprintf("%6.1f %6.1f", masked.Float(i, 0), masked.Float(i, 1)))
	}
	s0, err := pir.NewITServer(blocks)
	if err != nil {
		return nil, err
	}
	s1, err := pir.NewITServer(blocks)
	if err != nil {
		return nil, err
	}
	client, err := pir.NewITClient([]*pir.ITServer{s0, s1}, 17)
	if err != nil {
		return nil, err
	}
	if _, err := client.Retrieve(42); err != nil {
		return nil, err
	}
	// The server's view is a subset vector, not the index.
	view := s0.QueryLog()[0]
	popcount := 0
	for i := 0; i < masked.Rows(); i++ {
		if view[i>>3]>>(i&7)&1 == 1 {
			popcount++
		}
	}
	out = append(out, QuadrantResult{
		ID:    "S3b",
		Claim: "k-anonymized data behind PIR gives respondent privacy (linkage ≤ 1/k) and user privacy (server sees a random subset)",
		Facts: []string{
			fact("linkage rate on masked data = %.3f", link.Rate),
			fact("server view = subset of %d blocks (≈ n/2 = %d), independent of the target", popcount, masked.Rows()/2),
		},
		Holds: link.Rate <= 1.0/3+0.01 && popcount > masked.Rows()/4 && popcount < 3*masked.Rows()/4,
	})

	// S3c — user privacy without respondent privacy: the paper's PIR
	// attack on Dataset 2.
	d2 := dataset.Dataset2()
	var xEdges, yEdges []float64
	for e := 150.0; e <= 190; e += 5 {
		xEdges = append(xEdges, e)
	}
	for e := 60.0; e <= 115; e += 5 {
		yEdges = append(yEdges, e)
	}
	db, err := pir.BuildStatDB(d2, "height", "weight", "blood_pressure", xEdges, yEdges, 2)
	if err != nil {
		return nil, err
	}
	res, err := db.RangeStats(150, 165, 105, 115, 23)
	if err != nil {
		return nil, err
	}
	avg, err := res.Avg()
	if err != nil {
		return nil, err
	}
	out = append(out, QuadrantResult{
		ID:    "S3c",
		Claim: "PIR over unmasked Dataset 2: COUNT=1 and AVG=146 re-identify the hypertensive respondent while the servers learn nothing of the query",
		Facts: []string{
			fact("COUNT(height<165 ∧ weight>105) = %.0f", res.Count),
			fact("AVG(blood_pressure) = %.0f mmHg", avg),
			fact("PIR cells retrieved privately: %d", res.CellsRetrieved),
		},
		Holds: res.Count == 1 && avg == 146,
	})
	return out, nil
}

// Section4Scenarios demonstrates the independence of owner and user privacy
// (paper Section 4).
func Section4Scenarios() ([]QuadrantResult, error) {
	var out []QuadrantResult

	// S4a — owner privacy without user privacy: crypto PPDM. The secure
	// ID3 transcript hides the parties' data, but the computed analysis is
	// known to all parties.
	e, err := NewEvaluator(DefaultEvalConfig())
	if err != nil {
		return nil, err
	}
	parts := e.cryptoPartition(3)
	tree, nw, err := smc.SecureID3(parts, "risk_band", 4, 77)
	if err != nil {
		return nil, err
	}
	var payloads, small int
	for _, m := range nw.Transcript() {
		if m.Round != "share" {
			continue
		}
		for _, el := range m.Payload {
			payloads++
			if uint64(el) <= uint64(e.cfg.N) {
				small++
			}
		}
	}
	out = append(out, QuadrantResult{
		ID:    "S4a",
		Claim: "crypto PPDM (secure ID3): transcripts leak nothing record-level, but every party knows the joint analysis — owner privacy without user privacy",
		Facts: []string{
			fact("share payloads that could be raw counts: %d of %d (%.2f%%)", small, payloads, 100*float64(small)/float64(payloads)),
			fact("analysis output (tree of depth %d) known to all %d parties", tree.Depth(), len(parts)),
		},
		Holds: float64(small)/float64(payloads) < 0.01 && tree != nil,
	})

	// S4b — owner and user privacy: non-crypto PPDM release behind PIR.
	trial := dataset.SyntheticTrial(dataset.TrialConfig{N: 400, Seed: 5})
	numeric := []int{0, 1, 2}
	condensed, err := microagg.Condense(trial, numeric, 2, dataset.NewRand(31))
	if err != nil {
		return nil, err
	}
	rec, err := risk.IntervalDisclosure(trial, condensed, numeric, 1)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, condensed.Rows())
	for i := range blocks {
		blocks[i] = []byte(fmt.Sprintf("%8.2f", condensed.Float(i, 0)))
	}
	s0, _ := pir.NewITServer(blocks)
	s1, _ := pir.NewITServer(blocks)
	client, err := pir.NewITClient([]*pir.ITServer{s0, s1}, 37)
	if err != nil {
		return nil, err
	}
	if _, err := client.Retrieve(7); err != nil {
		return nil, err
	}
	out = append(out, QuadrantResult{
		ID:    "S4b",
		Claim: "non-crypto PPDM (condensation) is non-interactive, so PIR composes with it: owner privacy and user privacy together",
		Facts: []string{
			fact("owner exact-value recovery from condensed release = %.1f%%", 100*rec),
			fact("PIR retrieval served; server saw a random subset vector"),
		},
		Holds: rec < 0.5 && len(s0.QueryLog()) == 1,
	})

	// S4c — user privacy without owner privacy: PIR on raw data.
	rawRec := 1.0 // the user can retrieve every original record exactly
	out = append(out, QuadrantResult{
		ID:    "S4c",
		Claim: "unrestricted PIR on original data: ideal for public non-confidential databases — full user privacy, no owner privacy",
		Facts: []string{
			fact("owner value recovery: %.0f%% (trivially, every block retrievable)", 100*rawRec),
		},
		Holds: true,
	})
	return out, nil
}

// UtilityRow is one row of the E-X1 experiment: information loss as more
// privacy dimensions are switched on.
type UtilityRow struct {
	Setting  string
	Dims     int     // number of privacy dimensions protected
	InfoLoss float64 // overall information loss of the released data
	CommBits int     // user-side communication per lookup (PIR overhead)
}

// UtilityVsDimensions measures the paper's Section 6 question: "the impact
// on data utility of offering the three dimensions of privacy". Protection
// stages: raw release → respondent (k-anon masking) → respondent+owner
// (k-anon + noise on confidential attributes) → all three (same release
// behind PIR, adding communication overhead instead of data distortion).
func UtilityVsDimensions(k int, seed uint64) ([]UtilityRow, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: k must be ≥ 2, got %d", k)
	}
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 600, Seed: seed})
	numeric := []int{d.Index("height"), d.Index("weight"), d.Index("blood_pressure")}
	measure := func(rel *dataset.Dataset) (float64, error) {
		il, err := risk.MeasureInfoLoss(d, rel, numeric)
		if err != nil {
			return 0, err
		}
		return il.Overall(), nil
	}
	var rows []UtilityRow
	raw, err := measure(d.Clone())
	if err != nil {
		return nil, err
	}
	rows = append(rows, UtilityRow{Setting: "raw release", Dims: 0, InfoLoss: raw})

	masked, _, err := microagg.Mask(d, microagg.NewOptions(k))
	if err != nil {
		return nil, err
	}
	ilR, err := measure(masked)
	if err != nil {
		return nil, err
	}
	rows = append(rows, UtilityRow{Setting: fmt.Sprintf("respondent (MDAV k=%d)", k), Dims: 1, InfoLoss: ilR})

	ro, err := noise.AddUncorrelated(masked, []int{d.Index("blood_pressure")}, 0.35, dataset.NewRand(seed^1))
	if err != nil {
		return nil, err
	}
	ilRO, err := measure(ro)
	if err != nil {
		return nil, err
	}
	rows = append(rows, UtilityRow{Setting: "respondent+owner (+noise on confidential)", Dims: 2, InfoLoss: ilRO})

	// Adding user privacy does not distort data further; it costs
	// communication. Build the PIR service and account its cost.
	blocks := make([][]byte, ro.Rows())
	for i := range blocks {
		blocks[i] = []byte(fmt.Sprintf("%6.1f %6.1f %6.1f", ro.Float(i, 0), ro.Float(i, 1), ro.Float(i, 2)))
	}
	s0, err := pir.NewITServer(blocks)
	if err != nil {
		return nil, err
	}
	s1, err := pir.NewITServer(blocks)
	if err != nil {
		return nil, err
	}
	client, err := pir.NewITClient([]*pir.ITServer{s0, s1}, seed^2)
	if err != nil {
		return nil, err
	}
	rows = append(rows, UtilityRow{
		Setting:  "respondent+owner+user (same release behind PIR)",
		Dims:     3,
		InfoLoss: ilRO,
		CommBits: client.CommunicationBits(),
	})
	return rows, nil
}

// Package sdc is the unified protection-method registry of the masking
// layer: every disclosure-limitation technology of the repository —
// microaggregation, noise addition, rank swapping, PRAM, global recoding,
// Mondrian, k-anonymity enforcement and randomized response — is exposed
// behind one Method interface with a self-describing parameter schema, a
// uniform Report, and cooperative context cancellation.
//
// The paper's Table 2 treats the technology classes as interchangeable
// points on a privacy/utility frontier; this package is that abstraction in
// code. The CLI (`privacy3d mask`, `privacy3d schema -methods`), the
// pipeline engine, the Table 2 evaluator and the POST /protect endpoint all
// dispatch through Lookup/Apply, so the set of supported methods, their
// help text and their parameter lists cannot drift apart — they are all
// generated from the same registry.
//
// Determinism contract: an adapter consumes its *rand.Rand in exactly the
// same order as the direct package call it wraps, so Apply at a given seed
// is byte-identical to the pre-registry call path and to itself at any
// worker-pool size.
package sdc

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privacy3d/internal/dataset"
	"privacy3d/internal/obs"
)

// ParamSpec describes one tunable parameter of a method.
type ParamSpec struct {
	// Name is the key under which the parameter is passed in Params.Values
	// (and on the CLI as -set name=value).
	Name string `json:"name"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
	// Default is the value used when the caller does not set the parameter.
	Default float64 `json:"default"`
	// Integer marks parameters that are semantically integers (group sizes,
	// suppression budgets); values are rounded via int() truncation.
	Integer bool `json:"integer,omitempty"`
}

// Schema is a method's self-description: everything the CLI help, the
// /protect endpoint and the docs tables need to present the method without
// hand-written per-method text.
type Schema struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Class is the Table 2 technology class the method belongs to
	// (e.g. "SDC masking", "PPDM noise").
	Class string `json:"class"`
	// Doc is a one-line description of the method.
	Doc string `json:"doc"`
	// Randomized methods consume a PRNG and require a non-nil rng.
	Randomized bool `json:"randomized,omitempty"`
	// Recodes marks methods whose output is not cell-by-cell numerically
	// comparable to the input (quasi-identifiers recoded to interval labels
	// or rows suppressed), so numeric risk/utility assessment against the
	// original does not apply.
	Recodes bool `json:"recodes,omitempty"`
	// DefaultTarget is the column target used when Params.Target is empty:
	// "qi", "confidential", "numeric" or "categorical".
	DefaultTarget string `json:"default_target"`
	// Params lists the method's tunable parameters.
	Params []ParamSpec `json:"params,omitempty"`
}

// param returns the spec for name, if declared.
func (s Schema) param(name string) (ParamSpec, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSpec{}, false
}

// Params is the uniform configuration accepted by every method.
type Params struct {
	// Columns explicitly selects the columns to protect; when nil, Target
	// resolves the column set on the dataset.
	Columns []int `json:"columns,omitempty"`
	// Target selects columns by role/kind: "qi" (quasi-identifiers),
	// "confidential" (numeric confidential), "numeric" (all numeric),
	// "categorical" (all non-numeric). Empty means the method's
	// DefaultTarget.
	Target string `json:"target,omitempty"`
	// Values holds named parameter overrides; unset parameters fall back to
	// the schema defaults. Unknown keys are rejected.
	Values map[string]float64 `json:"values,omitempty"`
}

// value resolves parameter name against the schema defaults.
func (p Params) value(s Schema, name string) float64 {
	if v, ok := p.Values[name]; ok {
		return v
	}
	spec, _ := s.param(name)
	return spec.Default
}

// intValue resolves an integer-valued parameter.
func (p Params) intValue(s Schema, name string) int {
	return int(p.value(s, name))
}

// Report is the uniform outcome description of a masking run, replacing the
// per-method result types (microagg.Result, suppression counts, merge
// counts) with one serialisable shape.
type Report struct {
	// Method is the registry name of the method that produced the release.
	Method string `json:"method"`
	// Seed is the PRNG seed when the run came through ApplySeed.
	Seed uint64 `json:"seed,omitempty"`
	// Rows is the number of records in the release (may be smaller than the
	// input under suppression).
	Rows int `json:"rows"`
	// Columns are the column indices that were protected.
	Columns []int `json:"columns"`
	// GroupSizes are the sizes of the aggregation groups, for grouping
	// methods.
	GroupSizes []int `json:"group_sizes,omitempty"`
	// InfoLoss is the method's native information-loss measure (SSE/SST for
	// microaggregation, normalised range spread for Mondrian); only
	// meaningful when InfoLossValid.
	InfoLoss      float64 `json:"info_loss,omitempty"`
	InfoLossValid bool    `json:"info_loss_valid,omitempty"`
	// Suppressed is the number of records removed by local suppression.
	Suppressed int `json:"suppressed,omitempty"`
	// Extra carries method-specific scalars (lattice height, class merges).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Method is one registered protection technology.
type Method interface {
	// Name returns the registry key.
	Name() string
	// Params returns the self-describing schema.
	Params() Schema
	// Apply protects dataset d and returns the release plus a Report.
	// Cancellation of ctx stops pool-backed methods at the next chunk
	// boundary with ctx.Err(). rng must be non-nil for randomized methods
	// and is consumed deterministically.
	Apply(ctx context.Context, d *dataset.Dataset, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error)
}

// method is the concrete adapter: schema plus a run function receiving the
// resolved column set.
type method struct {
	schema Schema
	run    func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error)
}

func (m *method) Name() string   { return m.schema.Name }
func (m *method) Params() Schema { return m.schema }

// Apply validates the call uniformly — context liveness, known parameter
// names, the nil-rng footgun for randomized methods, a non-empty column
// set — then runs the adapter and stamps the invariant Report fields.
func (m *method) Apply(ctx context.Context, d *dataset.Dataset, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
	start := time.Now()
	out, rep, err := m.apply(ctx, d, p, rng)
	observeApply(m.schema.Name, time.Since(start), err)
	return out, rep, err
}

func (m *method) apply(ctx context.Context, d *dataset.Dataset, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, Report{}, err
	}
	if d == nil {
		return nil, Report{}, fmt.Errorf("sdc: %s: nil dataset", m.schema.Name)
	}
	for name := range p.Values {
		if _, ok := m.schema.param(name); !ok {
			return nil, Report{}, fmt.Errorf("sdc: %s: unknown parameter %q (parameters: %s)",
				m.schema.Name, name, paramNames(m.schema))
		}
	}
	if m.schema.Randomized && rng == nil {
		return nil, Report{}, fmt.Errorf("sdc: %s is randomized and requires a non-nil rng (use ApplySeed or dataset.NewRand)", m.schema.Name)
	}
	cols, err := ResolveColumns(d, p, m.schema)
	if err != nil {
		return nil, Report{}, fmt.Errorf("sdc: %s: %w", m.schema.Name, err)
	}
	out, rep, err := m.run(ctx, d, cols, p, rng)
	if err != nil {
		return nil, Report{}, err
	}
	rep.Method = m.schema.Name
	rep.Rows = out.Rows()
	rep.Columns = cols
	return out, rep, nil
}

// paramNames renders the schema's parameter names for error messages.
func paramNames(s Schema) string {
	if len(s.Params) == 0 {
		return "none"
	}
	names := make([]string, len(s.Params))
	for i, p := range s.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// ResolveColumns resolves the column set of a call: explicit Params.Columns
// win; otherwise the target (Params.Target, falling back to the schema's
// DefaultTarget) selects columns by role and kind. An empty resolution is
// an error — silently masking nothing would be a privacy bug.
func ResolveColumns(d *dataset.Dataset, p Params, s Schema) ([]int, error) {
	if p.Columns != nil {
		if len(p.Columns) == 0 {
			return nil, fmt.Errorf("empty column selection")
		}
		for _, j := range p.Columns {
			if j < 0 || j >= d.Cols() {
				return nil, fmt.Errorf("column index %d out of range [0,%d)", j, d.Cols())
			}
		}
		return p.Columns, nil
	}
	target := p.Target
	if target == "" {
		target = s.DefaultTarget
	}
	var cols []int
	switch target {
	case "", "qi":
		cols = d.QuasiIdentifiers()
	case "confidential":
		for j := 0; j < d.Cols(); j++ {
			if d.Attr(j).Kind == dataset.Numeric && d.Attr(j).Role == dataset.Confidential {
				cols = append(cols, j)
			}
		}
	case "numeric":
		for j := 0; j < d.Cols(); j++ {
			if d.Attr(j).Kind == dataset.Numeric {
				cols = append(cols, j)
			}
		}
	case "categorical":
		for j := 0; j < d.Cols(); j++ {
			if d.Attr(j).Kind != dataset.Numeric {
				cols = append(cols, j)
			}
		}
	default:
		return nil, fmt.Errorf("unknown target %q (want qi, confidential, numeric or categorical)", target)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("target %q resolves to no columns", target)
	}
	return cols, nil
}

// --- registry -----------------------------------------------------------

var (
	regMu    sync.RWMutex
	registry = map[string]Method{}
)

// Register adds a method under its schema name. Registering a duplicate
// name panics: two methods answering to one name is a programming error the
// process must not survive silently.
func Register(m Method) {
	regMu.Lock()
	defer regMu.Unlock()
	name := m.Name()
	if name == "" {
		panic("sdc: Register with empty method name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sdc: duplicate method %q", name))
	}
	registry[name] = m
}

// register is the internal helper building a method from schema + run.
func register(schema Schema, run func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error)) {
	Register(&method{schema: schema, run: run})
}

// Lookup returns the method registered under name.
func Lookup(name string) (Method, error) {
	regMu.RLock()
	m := registry[name]
	regMu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("sdc: unknown method %q (want %s)", name, strings.Join(Names(), ", "))
	}
	return m, nil
}

// List returns every registered method, sorted by name.
func List() []Method {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Method, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the sorted registry keys — the single source of the CLI
// method list, its help text and the docs tables.
func Names() []string {
	ms := List()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	return names
}

// Apply looks name up and applies it — the front door used by the CLI, the
// pipeline engine and the /protect endpoint.
func Apply(ctx context.Context, name string, d *dataset.Dataset, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
	m, err := Lookup(name)
	if err != nil {
		return nil, Report{}, err
	}
	return m.Apply(ctx, d, p, rng)
}

// ApplySeed is Apply with a fresh deterministic PRNG from seed, stamped
// into the Report — the reproducible entry point of the CLI and servers.
func ApplySeed(ctx context.Context, name string, d *dataset.Dataset, p Params, seed uint64) (*dataset.Dataset, Report, error) {
	out, rep, err := Apply(ctx, name, d, p, dataset.NewRand(seed))
	if err != nil {
		return nil, rep, err
	}
	rep.Seed = seed
	return out, rep, nil
}

// --- observability ------------------------------------------------------

// metricsReg is the obs registry Apply reports into, when serving.
var metricsReg atomic.Pointer[obs.Registry]

// Instrument routes per-method apply metrics into reg: a
// sdc_apply_total{method,outcome} counter and a sdc_apply_seconds{method}
// latency histogram. Passing nil detaches.
func Instrument(reg *obs.Registry) {
	metricsReg.Store(reg)
}

func observeApply(name string, elapsed time.Duration, err error) {
	reg := metricsReg.Load()
	if reg == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		outcome = "error"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			outcome = "canceled"
		}
	}
	reg.Counter(obs.Label("sdc_apply_total", "method", name, "outcome", outcome)).Inc()
	if err == nil {
		reg.Histogram(obs.Label("sdc_apply_seconds", "method", name), obs.DefaultApplyBuckets).
			Observe(elapsed.Seconds())
	}
}

// --- docs ---------------------------------------------------------------

// MarkdownTable renders the registry as a GitHub-flavoured markdown table —
// the generated "Protection methods" section of README/EXPERIMENTS and the
// `privacy3d schema -methods` output; the make lint golden test pins all
// three to this one function.
func MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| Method | Class | Target | Randomized | Parameters | Description |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, m := range List() {
		s := m.Params()
		params := make([]string, len(s.Params))
		for i, p := range s.Params {
			params[i] = fmt.Sprintf("%s=%g", p.Name, p.Default)
		}
		paramCell := strings.Join(params, ", ")
		if paramCell == "" {
			paramCell = "—"
		}
		rand := "no"
		if s.Randomized {
			rand = "yes"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %s |\n",
			s.Name, s.Class, s.DefaultTarget, rand, paramCell, s.Doc)
	}
	return b.String()
}

package sdc

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/dataset"
	"privacy3d/internal/generalize"
	"privacy3d/internal/microagg"
	"privacy3d/internal/noise"
	"privacy3d/internal/randresp"
	"privacy3d/internal/swap"
)

// groupSizes flattens a partition into its size vector.
func groupSizes(groups [][]int) []int {
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g)
	}
	return sizes
}

// The built-in methods. Registration order is irrelevant — List sorts by
// name — but each adapter must consume its rng in exactly the order of the
// direct call it replaces (the byte-identity contract in the package doc).
func init() {
	register(Schema{
		Name: "mdav", Class: "SDC microaggregation",
		Doc:           "MDAV fixed-size microaggregation: records replaced by their group centroid (k-anonymous QIs)",
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "k", Doc: "minimum group size", Default: 3, Integer: true},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		out, res, err := microagg.MaskCtx(ctx, d, microagg.Options{
			K: p.intValue(schemaOf("mdav"), "k"), Columns: cols, Standardize: true,
		})
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{GroupSizes: groupSizes(res.Groups), InfoLoss: res.IL(), InfoLossValid: true}, nil
	})

	register(Schema{
		Name: "vmdav", Class: "SDC microaggregation",
		Doc:           "V-MDAV variable-group-size microaggregation: groups grow up to 2k-1 in dense regions",
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "k", Doc: "minimum group size", Default: 3, Integer: true},
			{Name: "gamma", Doc: "group-extension eagerness (0 never extends)", Default: 0.2},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		s := schemaOf("vmdav")
		out, res, err := microagg.MaskVariable(d, microagg.Options{
			K: p.intValue(s, "k"), Columns: cols, Standardize: true,
		}, p.value(s, "gamma"))
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{GroupSizes: groupSizes(res.Groups), InfoLoss: res.IL(), InfoLossValid: true}, nil
	})

	register(Schema{
		Name: "univariate", Class: "SDC microaggregation",
		Doc:           "projection microaggregation: optimal Hansen-Mukherjee partition along the first principal component",
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "k", Doc: "minimum group size", Default: 3, Integer: true},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		out, res, err := microagg.MaskProjection(d, microagg.Options{
			K: p.intValue(schemaOf("univariate"), "k"), Columns: cols, Standardize: true,
		})
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{GroupSizes: groupSizes(res.Groups), InfoLoss: res.IL(), InfoLossValid: true}, nil
	})

	register(Schema{
		Name: "condense", Class: "generic PPDM",
		Doc:           "condensation: per-group synthetic records preserving means and covariances (Aggarwal-Yu)",
		Randomized:    true,
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "k", Doc: "condensation group size", Default: 3, Integer: true},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		out, err := microagg.CondenseCtx(ctx, d, cols, p.intValue(schemaOf("condense"), "k"), rng)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{}, nil
	})

	register(Schema{
		Name: "noise", Class: "use-specific PPDM",
		Doc:           "uncorrelated Gaussian noise addition (Agrawal-Srikant style)",
		Randomized:    true,
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "amp", Doc: "noise amplitude relative to each column's std dev", Default: 0.35},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		out, err := noise.AddUncorrelated(d, cols, p.value(schemaOf("noise"), "amp"), rng)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{}, nil
	})

	register(Schema{
		Name: "corrnoise", Class: "use-specific PPDM",
		Doc:           "correlated noise addition preserving the covariance structure",
		Randomized:    true,
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "amp", Doc: "noise amplitude relative to each column's std dev", Default: 0.35},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		out, err := noise.AddCorrelated(d, cols, p.value(schemaOf("corrnoise"), "amp"), rng)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{}, nil
	})

	register(Schema{
		Name: "multnoise", Class: "use-specific PPDM",
		Doc:           "multiplicative lognormal noise: each value scaled by exp(N(0,sigma))",
		Randomized:    true,
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "sigma", Doc: "std dev of the log-scale factor", Default: 0.1},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		out, err := noise.AddMultiplicative(d, cols, p.value(schemaOf("multnoise"), "sigma"), rng)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{}, nil
	})

	register(Schema{
		Name: "swap", Class: "SDC masking",
		Doc:           "rank swapping: values exchanged within a p% rank window per column",
		Randomized:    true,
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "p", Doc: "swap window as a percentage of the rank range", Default: 5},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		out, err := swap.RankSwap(d, cols, p.value(schemaOf("swap"), "p"), rng)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{}, nil
	})

	register(Schema{
		Name: "pram", Class: "SDC masking",
		Doc:           "invariant PRAM: categorical values resampled from the empirical marginal with a change probability",
		Randomized:    true,
		DefaultTarget: "categorical",
		Params: []ParamSpec{
			{Name: "change", Doc: "per-cell change probability", Default: 0.2},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		change := p.value(schemaOf("pram"), "change")
		// Columns are post-randomized in ascending index order so the rng
		// stream — and hence the release — is deterministic.
		ordered := append([]int(nil), cols...)
		sort.Ints(ordered)
		out := d
		for _, col := range ordered {
			var err error
			out, err = swap.PRAM(out, col, change, rng)
			if err != nil {
				return nil, Report{}, err
			}
		}
		return out, Report{}, nil
	})

	register(Schema{
		Name: "recode", Class: "k-anonymity",
		Doc:           "global recoding + local suppression over a generalization lattice (Samarati minimal height)",
		Recodes:       true,
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "k", Doc: "anonymity parameter", Default: 3, Integer: true},
			{Name: "maxsup", Doc: "suppression budget in records", Default: 10, Integer: true},
			{Name: "levels", Doc: "interval levels of the auto-built numeric hierarchies", Default: 3, Integer: true},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		s := schemaOf("recode")
		hier, err := autoHierarchies(d, cols, p.intValue(s, "levels"))
		if err != nil {
			return nil, Report{}, err
		}
		out, res, err := generalize.Anonymize(d, cols, hier, p.intValue(s, "k"), p.intValue(s, "maxsup"))
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{
			Suppressed: res.Suppressed,
			Extra:      map[string]float64{"lattice_height": float64(res.Height)},
		}, nil
	})

	register(Schema{
		Name: "mondrian", Class: "k-anonymity",
		Doc:           "Mondrian multidimensional partitioning: numeric QIs recoded to per-partition interval labels",
		Recodes:       true,
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "k", Doc: "anonymity parameter", Default: 3, Integer: true},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		out, groups, err := generalize.MondrianMask(d, cols, p.intValue(schemaOf("mondrian"), "k"))
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{
			GroupSizes:    groupSizes(groups),
			InfoLoss:      generalize.MondrianIL(d.NumericMatrix(cols), groups),
			InfoLossValid: true,
		}, nil
	})

	register(Schema{
		Name: "kanon", Class: "k-anonymity",
		Doc:           "p-sensitive k-anonymity enforcement: small or insensitive classes merged to their nearest class centroid",
		DefaultTarget: "qi",
		Params: []ParamSpec{
			{Name: "k", Doc: "anonymity parameter", Default: 3, Integer: true},
			{Name: "p", Doc: "required distinct confidential values per class", Default: 1, Integer: true},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		s := schemaOf("kanon")
		out, merges, err := anonymity.EnforcePSensitive(d, p.intValue(s, "k"), p.intValue(s, "p"))
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Extra: map[string]float64{"merges": float64(merges)}}, nil
	})

	register(Schema{
		Name: "randresp", Class: "randomized response",
		Doc:           "Warner randomized response on binary categorical columns: each answer kept with probability truth",
		Randomized:    true,
		DefaultTarget: "categorical",
		Params: []ParamSpec{
			{Name: "truth", Doc: "probability of reporting the true value", Default: 0.9},
		},
	}, func(ctx context.Context, d *dataset.Dataset, cols []int, p Params, rng *rand.Rand) (*dataset.Dataset, Report, error) {
		w, err := randresp.NewWarner(p.value(schemaOf("randresp"), "truth"))
		if err != nil {
			return nil, Report{}, err
		}
		out := d.Clone()
		ordered := append([]int(nil), cols...)
		sort.Ints(ordered)
		for _, col := range ordered {
			if d.Attr(col).Kind == dataset.Numeric {
				return nil, Report{}, fmt.Errorf("sdc: randresp applies to categorical columns; %q is numeric", d.Attr(col).Name)
			}
			vals := d.CatColumn(col)
			domain := distinct(vals)
			if len(domain) != 2 {
				return nil, Report{}, fmt.Errorf("sdc: randresp needs a binary column; %q has %d distinct values", d.Attr(col).Name, len(domain))
			}
			truth := make([]bool, len(vals))
			for i, v := range vals {
				truth[i] = v == domain[1]
			}
			resp := w.Randomize(truth, rng)
			for i, r := range resp {
				if r {
					out.SetCat(i, col, domain[1])
				} else {
					out.SetCat(i, col, domain[0])
				}
			}
		}
		return out, Report{}, nil
	})
}

// schemaOf fetches a registered schema by name; it exists so adapters can
// resolve their own defaults without capturing the Schema literal twice.
func schemaOf(name string) Schema {
	m, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return m.Params()
}

// distinct returns the sorted distinct values of a string column.
func distinct(vals []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// autoHierarchies builds a numeric interval hierarchy per column: intervals
// align at the column minimum with a base width of 1/8 of the span, doubling
// per level — a schema-free default good enough for lattice search on
// arbitrary numeric quasi-identifiers.
func autoHierarchies(d *dataset.Dataset, cols []int, levels int) (map[int]*generalize.Hierarchy, error) {
	hier := make(map[int]*generalize.Hierarchy, len(cols))
	for _, j := range cols {
		if d.Attr(j).Kind != dataset.Numeric {
			return nil, fmt.Errorf("sdc: recode auto-hierarchies require numeric columns; %q is %v",
				d.Attr(j).Name, d.Attr(j).Kind)
		}
		col := d.NumColumn(j)
		if len(col) == 0 {
			return nil, fmt.Errorf("sdc: recode on empty dataset")
		}
		min, max := col[0], col[0]
		for _, v := range col {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		base := (max - min) / 8
		if base <= 0 {
			base = 1
		}
		h, err := generalize.NewNumericHierarchy(d.Attr(j).Name, min, base, levels)
		if err != nil {
			return nil, err
		}
		hier[j] = h
	}
	return hier, nil
}

package sdc

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"privacy3d/internal/dataset"
	"privacy3d/internal/obs"
	"privacy3d/internal/par"
)

func trial(n int) *dataset.Dataset {
	return dataset.SyntheticTrial(dataset.TrialConfig{N: n, Seed: 11, ExtraQI: 2})
}

// maskCSV runs one registered method end to end and returns the released
// CSV bytes, so releases can be compared for byte-identity.
func maskCSV(t *testing.T, name string, seed uint64) []byte {
	t.Helper()
	masked, _, err := ApplySeed(context.Background(), name, trial(300), Params{}, seed)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var buf bytes.Buffer
	if err := masked.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEveryMethodReachable is the registry's core contract: all eight
// technology classes of the paper are reachable via Lookup(name).Apply, each
// returns a well-formed release plus a stamped report.
func TestEveryMethodReachable(t *testing.T) {
	d := trial(120)
	for _, name := range Names() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		masked, rep, err := m.Apply(context.Background(), d, Params{}, dataset.NewRand(42))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if masked == nil {
			t.Fatalf("%s: nil release", name)
		}
		// Recoding methods may suppress records within their budget; every
		// suppressed record must be accounted for in the report.
		if masked.Rows()+rep.Suppressed != d.Rows() {
			t.Fatalf("%s: %d released + %d suppressed != %d input rows",
				name, masked.Rows(), rep.Suppressed, d.Rows())
		}
		if rep.Method != name || rep.Rows != masked.Rows() || len(rep.Columns) == 0 {
			t.Errorf("%s: report %+v not stamped", name, rep)
		}
	}
}

// TestByteIdenticalAcrossWorkers pins the determinism contract on every
// registered method: the released CSV must be byte-identical whether the
// worker pool runs 1, 2 or 8 goroutines.
func TestByteIdenticalAcrossWorkers(t *testing.T) {
	for _, name := range Names() {
		var want []byte
		for _, workers := range []int{1, 2, 8} {
			prev := par.SetWorkers(workers)
			got := maskCSV(t, name, 7)
			par.SetWorkers(prev)
			if want == nil {
				want = got
			} else if !bytes.Equal(want, got) {
				t.Errorf("%s: release differs at %d workers", name, workers)
			}
		}
	}
}

// TestNilRngRejected checks the explicit failure mode of satellite 2: every
// randomized method refuses a nil rng with a clear error, while the
// deterministic methods accept one.
func TestNilRngRejected(t *testing.T) {
	d := trial(60)
	for _, m := range List() {
		s := m.Params()
		_, _, err := Apply(context.Background(), s.Name, d, Params{}, nil)
		if s.Randomized {
			if err == nil || !strings.Contains(err.Error(), "rng") {
				t.Errorf("%s: randomized method with nil rng: err = %v", s.Name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: deterministic method rejected nil rng: %v", s.Name, err)
		}
	}
}

func TestUnknownMethodAndParamErrors(t *testing.T) {
	d := trial(60)
	if _, err := Lookup("zap"); err == nil || !strings.Contains(err.Error(), "mdav") {
		t.Errorf("Lookup(zap) = %v; want error listing registered names", err)
	}
	_, _, err := Apply(context.Background(), "mdav", d, Params{Values: map[string]float64{"zap": 1}}, nil)
	if err == nil || !strings.Contains(err.Error(), "zap") || !strings.Contains(err.Error(), "k") {
		t.Errorf("unknown param: err = %v; want error naming the bad and accepted params", err)
	}
	if _, _, err := Apply(context.Background(), "mdav", nil, Params{}, nil); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, _, err := Apply(context.Background(), "mdav", d, Params{Target: "moon"}, nil); err == nil {
		t.Error("unknown target accepted")
	}
	if _, _, err := Apply(context.Background(), "mdav", d, Params{Columns: []int{99}}, nil); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestSeedStampedAndReproducible(t *testing.T) {
	a := maskCSV(t, "noise", 5)
	b := maskCSV(t, "noise", 5)
	c := maskCSV(t, "noise", 6)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different releases")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced the same release")
	}
	_, rep, err := ApplySeed(context.Background(), "noise", trial(60), Params{}, 5)
	if err != nil || rep.Seed != 5 {
		t.Errorf("rep.Seed = %d, err = %v", rep.Seed, err)
	}
}

// TestCancelPreApply: a context cancelled before Apply is even entered must
// fail fast without touching the data.
func TestCancelPreApply(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Apply(ctx, "mdav", trial(60), Params{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
}

// TestCancelMidMDAV is the acceptance check of the issue: cancelling the
// context while MDAV churns through a 50k-row census file returns promptly
// with context.Canceled and leaks no pool goroutines.
func TestCancelMidMDAV(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-row masking run")
	}
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 50000, Dims: 6, Seed: 3, Corr: 0.3})
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, _, err := Apply(ctx, "mdav", d, Params{Target: "numeric"}, nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the masking get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v; want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the masking run")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; want within a chunk boundary", elapsed)
	}
	// The pool goroutines must have drained; allow scheduler slack.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
}

// TestMarkdownTable sanity-checks the generated documentation table that
// README/EXPERIMENTS embed and the CLI lint test pins.
func TestMarkdownTable(t *testing.T) {
	table := MarkdownTable()
	for _, name := range Names() {
		if !strings.Contains(table, "| `"+name+"` |") {
			t.Errorf("table missing method %s", name)
		}
	}
	if !strings.Contains(table, "k=3") || !strings.Contains(table, "amp=0.35") {
		t.Error("table missing parameter defaults")
	}
}

func TestInstrumentCountsOutcomes(t *testing.T) {
	// Instrument is process-global; detach afterwards so other tests stay
	// unobserved.
	reg := obs.NewRegistry()
	Instrument(reg)
	t.Cleanup(func() { Instrument(nil) })
	d := trial(60)
	if _, _, err := Apply(context.Background(), "mdav", d, Params{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Apply(context.Background(), "noise", d, Params{}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	Apply(ctx, "mdav", d, Params{}, nil)
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{
		`sdc_apply_total{method="mdav",outcome="ok"} 1`,
		`sdc_apply_total{method="noise",outcome="error"} 1`,
		`sdc_apply_total{method="mdav",outcome="canceled"} 1`,
		`sdc_apply_seconds_count{method="mdav"} 1`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}

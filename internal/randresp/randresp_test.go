package randresp

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
)

func TestWarnerValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1, 0.5} {
		if _, err := NewWarner(p); err == nil {
			t.Errorf("NewWarner(%v) accepted", p)
		}
	}
	if _, err := NewWarner(0.8); err != nil {
		t.Errorf("NewWarner(0.8): %v", err)
	}
}

func TestWarnerUnbiasedEstimate(t *testing.T) {
	rng := dataset.NewRand(42)
	w, _ := NewWarner(0.75)
	n := 50000
	truth := make([]bool, n)
	for i := range truth {
		truth[i] = rng.Float64() < 0.3
	}
	resp := w.Randomize(truth, rng)
	// Responses themselves must be biased away from 0.3…
	var rawYes float64
	for _, v := range resp {
		if v {
			rawYes++
		}
	}
	raw := rawYes / float64(n)
	if math.Abs(raw-0.3) < 0.05 {
		t.Errorf("raw responses too close to truth: %v", raw)
	}
	// …but the estimator recovers it.
	if est := w.EstimateProportion(resp); math.Abs(est-0.3) > 0.02 {
		t.Errorf("estimate = %v, want ≈ 0.3", est)
	}
}

func TestWarnerPrivacyLevel(t *testing.T) {
	w, _ := NewWarner(0.9)
	if w.PrivacyLevel() != 0.9 {
		t.Errorf("PrivacyLevel = %v", w.PrivacyLevel())
	}
	w2, _ := NewWarner(0.1)
	if w2.PrivacyLevel() != 0.9 {
		t.Errorf("PrivacyLevel(0.1) = %v (symmetry)", w2.PrivacyLevel())
	}
}

func TestWarnerEstimateClamps(t *testing.T) {
	w, _ := NewWarner(0.9)
	allYes := []bool{true, true, true, true}
	if est := w.EstimateProportion(allYes); est != 1 {
		t.Errorf("estimate = %v, want clamp to 1", est)
	}
	if est := w.EstimateProportion(nil); est != 0 {
		t.Errorf("empty responses estimate = %v", est)
	}
}

func TestMultiAttributeRecoversJointPattern(t *testing.T) {
	rng := dataset.NewRand(7)
	m, err := NewMultiAttribute(0.8)
	if err != nil {
		t.Fatal(err)
	}
	n := 60000
	truth := make([][]bool, n)
	pattern := []bool{true, false, true}
	planted := 0.2
	for i := range truth {
		if rng.Float64() < planted {
			truth[i] = []bool{true, false, true}
			continue
		}
		truth[i] = []bool{rng.Float64() < 0.5, true, rng.Float64() < 0.5}
	}
	resp := m.Randomize(truth, rng)
	est, err := m.EstimatePatternProportion(resp, pattern)
	if err != nil {
		t.Fatal(err)
	}
	// True pattern proportion: planted + background hits (background has
	// second bit true, so never matches the pattern).
	if math.Abs(est-planted) > 0.02 {
		t.Errorf("pattern estimate = %v, want ≈ %v", est, planted)
	}
}

func TestMultiAttributeErrors(t *testing.T) {
	if _, err := NewMultiAttribute(0.5); err == nil {
		t.Error("accepted p = 0.5")
	}
	m, _ := NewMultiAttribute(0.8)
	if _, err := m.EstimatePatternProportion(nil, []bool{true}); err == nil {
		t.Error("accepted empty responses")
	}
	if _, err := m.EstimatePatternProportion([][]bool{{true, false}}, []bool{true}); err == nil {
		t.Error("accepted width mismatch")
	}
}

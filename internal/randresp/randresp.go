// Package randresp implements randomized-response protocols: Warner's
// classic single-attribute scheme and the multi-attribute scheme of
// Du & Zhan (KDD 2003), the paper's citation [13]. The paper's footnote 1
// observes that although [13] claims respondent privacy, the randomizing
// device realistically sits with the data owner — so in the
// three-dimensional framework randomized response is scored as an
// owner-privacy (PPDM) technology.
package randresp

import (
	"fmt"
	"math/rand/v2"
)

// Warner is Warner's randomized response for one binary attribute: with
// probability P the respondent answers truthfully, with probability 1-P they
// answer the opposite. P must be in (0,1) and ≠ 0.5 (at 0.5 the answers
// carry no information).
type Warner struct {
	P float64
}

// NewWarner validates and returns a Warner scheme.
func NewWarner(p float64) (*Warner, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("randresp: truth probability must be in (0,1), got %g", p)
	}
	if p == 0.5 {
		return nil, fmt.Errorf("randresp: truth probability 0.5 makes responses uninformative")
	}
	return &Warner{P: p}, nil
}

// Randomize perturbs a slice of binary answers.
func (w *Warner) Randomize(truth []bool, rng *rand.Rand) []bool {
	out := make([]bool, len(truth))
	for i, v := range truth {
		if rng.Float64() < w.P {
			out[i] = v
		} else {
			out[i] = !v
		}
	}
	return out
}

// EstimateProportion returns the unbiased estimate of the true proportion of
// "true" answers from randomized responses: π̂ = (λ + P − 1)/(2P − 1) where λ
// is the observed proportion. The estimate is clamped to [0,1].
func (w *Warner) EstimateProportion(responses []bool) float64 {
	if len(responses) == 0 {
		return 0
	}
	var yes float64
	for _, v := range responses {
		if v {
			yes++
		}
	}
	lambda := yes / float64(len(responses))
	pi := (lambda + w.P - 1) / (2*w.P - 1)
	if pi < 0 {
		return 0
	}
	if pi > 1 {
		return 1
	}
	return pi
}

// PrivacyLevel returns the respondent's plausible deniability: the posterior
// probability that a respondent's true value equals their reported value,
// assuming a uniform prior. 0.5 is perfect deniability, 1 is none.
func (w *Warner) PrivacyLevel() float64 {
	if w.P >= 0.5 {
		return w.P
	}
	return 1 - w.P
}

// MultiAttribute is the Du–Zhan extension: each respondent's whole binary
// attribute vector is either reported truthfully (probability P) or fully
// complemented (probability 1−P). Joint proportions of attribute patterns
// remain estimable, which is what their privacy-preserving decision-tree
// construction needs.
type MultiAttribute struct {
	W Warner
}

// NewMultiAttribute validates and returns the scheme.
func NewMultiAttribute(p float64) (*MultiAttribute, error) {
	w, err := NewWarner(p)
	if err != nil {
		return nil, err
	}
	return &MultiAttribute{W: *w}, nil
}

// Randomize perturbs a matrix of binary records (rows = respondents).
func (m *MultiAttribute) Randomize(truth [][]bool, rng *rand.Rand) [][]bool {
	out := make([][]bool, len(truth))
	for i, row := range truth {
		r := make([]bool, len(row))
		flip := rng.Float64() >= m.W.P
		for j, v := range row {
			if flip {
				r[j] = !v
			} else {
				r[j] = v
			}
		}
		out[i] = r
	}
	return out
}

// EstimatePatternProportion estimates the true proportion of records
// matching the given full pattern from randomized records: with the
// whole-vector scheme, P(observe pattern) = P·π(pattern) + (1−P)·π(¬pattern),
// and P(observe ¬pattern) = P·π(¬pattern) + (1−P)·π(pattern) restricted to
// the two complementary patterns. Solving with the observed frequencies of
// pattern and its complement gives the unbiased estimator below.
func (m *MultiAttribute) EstimatePatternProportion(responses [][]bool, pattern []bool) (float64, error) {
	if len(responses) == 0 {
		return 0, fmt.Errorf("randresp: no responses")
	}
	comp := make([]bool, len(pattern))
	for i, v := range pattern {
		comp[i] = !v
	}
	var obsPat, obsComp float64
	for _, row := range responses {
		if len(row) != len(pattern) {
			return 0, fmt.Errorf("randresp: response width %d != pattern width %d", len(row), len(pattern))
		}
		if equalBool(row, pattern) {
			obsPat++
		} else if equalBool(row, comp) {
			obsComp++
		}
	}
	n := float64(len(responses))
	lam := obsPat / n
	mu := obsComp / n
	p := m.W.P
	// lam = p·π + (1−p)·ρ ; mu = p·ρ + (1−p)·π  ⇒ π = (p·lam − (1−p)·mu)/(2p−1).
	pi := (p*lam - (1-p)*mu) / (2*p - 1)
	if pi < 0 {
		pi = 0
	}
	if pi > 1 {
		pi = 1
	}
	return pi, nil
}

func equalBool(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package hippocratic

import (
	"strings"
	"testing"
	"time"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/dataset"
)

func testRules() []Rule {
	return []Rule{
		{Attribute: "height", Purpose: "treatment", Retention: 365 * 24 * time.Hour},
		{Attribute: "weight", Purpose: "treatment", Retention: 365 * 24 * time.Hour},
		{Attribute: "blood_pressure", Purpose: "treatment", Retention: 365 * 24 * time.Hour},
		{Attribute: "height", Purpose: "research", Retention: 90 * 24 * time.Hour},
		{Attribute: "weight", Purpose: "research", Retention: 90 * 24 * time.Hour},
		{Attribute: "blood_pressure", Purpose: "research", Retention: 90 * 24 * time.Hour},
		{Attribute: "aids", Purpose: "research", Retention: 90 * 24 * time.Hour},
		{Attribute: "aids", Purpose: "treatment", Recipients: []string{"dr-house"}, Retention: 365 * 24 * time.Hour},
	}
}

func fixedClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(nil, nil); err == nil {
		t.Error("accepted nil dataset")
	}
	d := dataset.Dataset2()
	if _, err := NewStore(d, []Rule{{Attribute: "nope", Purpose: "x"}}); err == nil {
		t.Error("accepted rule for unknown attribute")
	}
	if _, err := NewStore(d, []Rule{{Attribute: "height"}}); err == nil {
		t.Error("accepted rule without purpose")
	}
}

func TestPurposeLimitation(t *testing.T) {
	s, err := NewStore(dataset.Dataset2(), testRules())
	if err != nil {
		t.Fatal(err)
	}
	s.ConsentAll("treatment")
	// AIDS status is not permitted for an undeclared purpose.
	if _, err := s.Access("nurse", "marketing", []string{"height"}); err == nil {
		t.Error("undeclared purpose allowed")
	}
	// Recipient restriction on aids/treatment.
	if _, err := s.Access("nurse", "treatment", []string{"aids"}); err == nil {
		t.Error("unauthorised recipient allowed")
	}
	if _, err := s.Access("dr-house", "treatment", []string{"aids"}); err != nil {
		t.Errorf("authorised recipient denied: %v", err)
	}
	// Unknown attribute and empty request.
	if _, err := s.Access("nurse", "treatment", []string{"ghost"}); err == nil {
		t.Error("unknown attribute allowed")
	}
	if _, err := s.Access("nurse", "treatment", nil); err == nil {
		t.Error("empty request allowed")
	}
}

func TestConsentFiltering(t *testing.T) {
	s, err := NewStore(dataset.Dataset2(), testRules())
	if err != nil {
		t.Fatal(err)
	}
	// Only rows 0..3 consent to research.
	for i := 0; i < 4; i++ {
		if err := s.Consent(i, "research", true); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Access("analyst", "research", []string{"height", "blood_pressure"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 4 {
		t.Errorf("access returned %d rows, want 4 consenting", out.Rows())
	}
	if out.Cols() != 2 {
		t.Errorf("access returned %d columns, want 2", out.Cols())
	}
	// Withdrawal is honoured.
	if err := s.Consent(0, "research", false); err != nil {
		t.Fatal(err)
	}
	out, _ = s.Access("analyst", "research", []string{"height"})
	if out.Rows() != 3 {
		t.Errorf("after withdrawal: %d rows, want 3", out.Rows())
	}
	if err := s.Consent(99, "research", true); err == nil {
		t.Error("accepted out-of-range row")
	}
}

func TestRetention(t *testing.T) {
	now := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	clock := now
	s, err := NewStore(dataset.Dataset2(), testRules(), WithClock(func() time.Time { return clock }))
	if err != nil {
		t.Fatal(err)
	}
	s.ConsentAll("research")
	s.ConsentAll("treatment")
	// Within retention: all rows visible.
	out, err := s.Access("analyst", "research", []string{"height"})
	if err != nil || out.Rows() != 9 {
		t.Fatalf("fresh access: %d rows, err %v", out.Rows(), err)
	}
	// 91 days later the research purpose (90-day retention) sees nothing,
	// while treatment (365-day) still works.
	clock = now.Add(91 * 24 * time.Hour)
	out, err = s.Access("analyst", "research", []string{"height"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 0 {
		t.Errorf("expired research access returned %d rows", out.Rows())
	}
	out, err = s.Access("nurse", "treatment", []string{"height"})
	if err != nil || out.Rows() != 9 {
		t.Errorf("treatment access within retention: %d rows, err %v", out.Rows(), err)
	}
	// After the longest retention, the sweep purges physically.
	clock = now.Add(400 * 24 * time.Hour)
	purged := s.RetentionSweep()
	if purged != 9 || s.Rows() != 0 {
		t.Errorf("sweep purged %d, store has %d rows", purged, s.Rows())
	}
	// Sweeping again is a no-op.
	if s.RetentionSweep() != 0 {
		t.Error("second sweep purged records")
	}
}

func TestAuditTrailComplete(t *testing.T) {
	s, err := NewStore(dataset.Dataset2(), testRules())
	if err != nil {
		t.Fatal(err)
	}
	s.ConsentAll("treatment")
	s.Access("nurse", "treatment", []string{"height"})  //nolint:errcheck
	s.Access("nurse", "marketing", []string{"height"})  //nolint:errcheck
	s.Access("dr-house", "treatment", []string{"aids"}) //nolint:errcheck
	audit := s.Audit()
	if len(audit) != 3 {
		t.Fatalf("audit has %d entries, want 3", len(audit))
	}
	if audit[0].Denied || audit[0].Rows != 9 {
		t.Errorf("first access audited wrong: %+v", audit[0])
	}
	if !audit[1].Denied || !strings.Contains(audit[1].Reason, "marketing") {
		t.Errorf("denial audited wrong: %+v", audit[1])
	}
	if audit[2].Recipient != "dr-house" {
		t.Errorf("recipient audited wrong: %+v", audit[2])
	}
}

func TestAnalyticsReleaseIntegratesBothMaskings(t *testing.T) {
	// The paper's claim about hippocratic databases: k-anonymization for
	// respondent privacy plus noise PPDM for owner privacy, in one release.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 300, Seed: 31})
	rules := []Rule{
		{Attribute: "height", Purpose: "research"},
		{Attribute: "weight", Purpose: "research"},
		{Attribute: "blood_pressure", Purpose: "research"},
		{Attribute: "aids", Purpose: "research"},
	}
	s, err := NewStore(d, rules)
	if err != nil {
		t.Fatal(err)
	}
	s.ConsentAll("research")
	rel, err := s.AnalyticsRelease("analyst", "research", 3, 0.35, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := anonymity.K(rel, rel.QuasiIdentifiers()); got < 3 {
		t.Errorf("release k = %d, want ≥ 3", got)
	}
	// Blood pressure must be perturbed (owner privacy): exact matches with
	// any original value become rare.
	bp := rel.Index("blood_pressure")
	orig := map[float64]bool{}
	for i := 0; i < d.Rows(); i++ {
		orig[d.Float(i, d.Index("blood_pressure"))] = true
	}
	exact := 0
	for i := 0; i < rel.Rows(); i++ {
		if orig[rel.Float(i, bp)] {
			exact++
		}
	}
	if float64(exact)/float64(rel.Rows()) > 0.05 {
		t.Errorf("%d of %d released blood pressures are exact originals", exact, rel.Rows())
	}
	// Access was audited.
	if len(s.Audit()) == 0 {
		t.Error("analytics release not audited")
	}
}

func TestAnalyticsReleaseNeedsConsentMass(t *testing.T) {
	s, err := NewStore(dataset.Dataset2(), testRules())
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 consenting records but k = 3.
	s.Consent(0, "research", true) //nolint:errcheck
	s.Consent(1, "research", true) //nolint:errcheck
	if _, err := s.AnalyticsRelease("analyst", "research", 3, 0.3, 1); err == nil {
		t.Error("release with insufficient consenting records allowed")
	}
}

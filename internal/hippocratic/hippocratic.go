// Package hippocratic implements the enforceable core of hippocratic
// databases (Agrawal, Kiernan, Srikant & Xu, VLDB 2002; Agrawal, Grandison,
// Johnson & Kiernan, CACM 2007 — the paper's citations [4] and [3]): a
// data store that carries purpose metadata, per-respondent consent, limited
// disclosure and retention, and a complete access audit trail — and that
// produces analysis releases through the k-anonymization + noise-PPDM
// combination the paper credits hippocratic databases with ("a real-world
// technology integrating k-anonymization for respondent privacy and PPDM
// based on noise addition for owner privacy").
package hippocratic

import (
	"fmt"
	"sort"
	"time"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/dataset"
	"privacy3d/internal/microagg"
	"privacy3d/internal/noise"
)

// Purpose names a declared data-use purpose ("treatment", "research", …).
type Purpose string

// Rule permits access to one attribute for one purpose by a set of
// recipients, with a retention limit counted from each record's collection
// time.
type Rule struct {
	Attribute  string
	Purpose    Purpose
	Recipients []string // empty means any authenticated recipient
	Retention  time.Duration
}

// AccessRecord is one entry of the audit trail.
type AccessRecord struct {
	Time      time.Time
	Recipient string
	Purpose   Purpose
	Attrs     []string
	Rows      int
	Denied    bool
	Reason    string
}

// Store is a purpose-aware wrapper around a dataset.
type Store struct {
	d         *dataset.Dataset
	rules     map[string]map[Purpose]Rule // attribute → purpose → rule
	consent   []map[Purpose]bool          // per record
	collected []time.Time                 // per record
	audit     []AccessRecord
	now       func() time.Time
}

// Option configures a Store.
type Option func(*Store)

// WithClock overrides the store's clock (tests, replay).
func WithClock(now func() time.Time) Option {
	return func(s *Store) { s.now = now }
}

// NewStore wraps a dataset. Every record starts with no consent for any
// purpose and a collection time of now.
func NewStore(d *dataset.Dataset, rules []Rule, opts ...Option) (*Store, error) {
	if d == nil || d.Rows() == 0 {
		return nil, fmt.Errorf("hippocratic: store needs a non-empty dataset")
	}
	s := &Store{
		d:     d.Clone(),
		rules: map[string]map[Purpose]Rule{},
		now:   time.Now,
	}
	for _, opt := range opts {
		opt(s)
	}
	for _, r := range rules {
		if d.Index(r.Attribute) < 0 {
			return nil, fmt.Errorf("hippocratic: rule references unknown attribute %q", r.Attribute)
		}
		if r.Purpose == "" {
			return nil, fmt.Errorf("hippocratic: rule for %q lacks a purpose", r.Attribute)
		}
		if s.rules[r.Attribute] == nil {
			s.rules[r.Attribute] = map[Purpose]Rule{}
		}
		s.rules[r.Attribute][r.Purpose] = r
	}
	s.consent = make([]map[Purpose]bool, d.Rows())
	s.collected = make([]time.Time, d.Rows())
	start := s.now()
	for i := range s.consent {
		s.consent[i] = map[Purpose]bool{}
		s.collected[i] = start
	}
	return s, nil
}

// Consent records respondent row's consent (or withdrawal) for a purpose.
func (s *Store) Consent(row int, p Purpose, granted bool) error {
	if row < 0 || row >= len(s.consent) {
		return fmt.Errorf("hippocratic: row %d out of range", row)
	}
	s.consent[row][p] = granted
	return nil
}

// ConsentAll grants a purpose for every respondent (opt-out style setups).
func (s *Store) ConsentAll(p Purpose) {
	for i := range s.consent {
		s.consent[i][p] = true
	}
}

// Audit returns a copy of the access trail.
func (s *Store) Audit() []AccessRecord {
	return append([]AccessRecord(nil), s.audit...)
}

// Rows returns the number of stored records (retention-expired rows
// included until swept).
func (s *Store) Rows() int { return s.d.Rows() }

// Access returns the requested attributes for every record that (a) has
// consented to the purpose, (b) is within retention for every requested
// attribute. It denies outright when any requested attribute is not
// permitted for the purpose (limited disclosure), or the recipient is not
// authorised. All outcomes are audited.
func (s *Store) Access(recipient string, p Purpose, attrs []string) (*dataset.Dataset, error) {
	deny := func(reason string) error {
		s.audit = append(s.audit, AccessRecord{
			Time: s.now(), Recipient: recipient, Purpose: p,
			Attrs: attrs, Denied: true, Reason: reason,
		})
		return fmt.Errorf("hippocratic: %s", reason)
	}
	if len(attrs) == 0 {
		return nil, deny("no attributes requested")
	}
	cols := make([]int, len(attrs))
	retention := make([]time.Duration, len(attrs))
	for k, name := range attrs {
		j := s.d.Index(name)
		if j < 0 {
			return nil, deny(fmt.Sprintf("unknown attribute %q", name))
		}
		rule, ok := s.rules[name][p]
		if !ok {
			return nil, deny(fmt.Sprintf("attribute %q not permitted for purpose %q", name, p))
		}
		if len(rule.Recipients) > 0 && !contains(rule.Recipients, recipient) {
			return nil, deny(fmt.Sprintf("recipient %q not authorised for %q/%q", recipient, name, p))
		}
		cols[k] = j
		retention[k] = rule.Retention
	}
	now := s.now()
	var rows []int
	for i := 0; i < s.d.Rows(); i++ {
		if !s.consent[i][p] {
			continue
		}
		ok := true
		for _, ret := range retention {
			if ret > 0 && now.Sub(s.collected[i]) > ret {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, i)
		}
	}
	out := s.d.Select(rows).Project(cols)
	s.audit = append(s.audit, AccessRecord{
		Time: now, Recipient: recipient, Purpose: p,
		Attrs: attrs, Rows: out.Rows(),
	})
	return out, nil
}

// RetentionSweep deletes every record whose longest permitted retention has
// elapsed — limited retention as a hard guarantee rather than a filter. It
// returns the number of purged records.
func (s *Store) RetentionSweep() int {
	now := s.now()
	var keep []int
	for i := 0; i < s.d.Rows(); i++ {
		if now.Sub(s.collected[i]) <= s.maxRetention() {
			keep = append(keep, i)
		}
	}
	purged := s.d.Rows() - len(keep)
	if purged == 0 {
		return 0
	}
	s.d = s.d.Select(keep)
	consent := make([]map[Purpose]bool, len(keep))
	collected := make([]time.Time, len(keep))
	for t, i := range keep {
		consent[t] = s.consent[i]
		collected[t] = s.collected[i]
	}
	s.consent = consent
	s.collected = collected
	return purged
}

func (s *Store) maxRetention() time.Duration {
	var max time.Duration
	for _, byPurpose := range s.rules {
		for _, r := range byPurpose {
			if r.Retention > max {
				max = r.Retention
			}
		}
	}
	if max == 0 {
		return 1<<63 - 1 // no retention limit declared
	}
	return max
}

// AnalyticsRelease produces the privacy-preserving research release the
// paper attributes to hippocratic databases: records consenting to the
// purpose are k-anonymized on their quasi-identifiers (respondent privacy)
// and the numeric confidential attributes are noise-masked (owner privacy).
// The release carries ≥ k-anonymity by construction; the access is audited.
func (s *Store) AnalyticsRelease(recipient string, p Purpose, k int, noiseAmplitude float64, seed uint64) (*dataset.Dataset, error) {
	var attrs []string
	for j := 0; j < s.d.Cols(); j++ {
		a := s.d.Attr(j)
		if a.Role == dataset.QuasiIdentifier || a.Role == dataset.Confidential {
			attrs = append(attrs, a.Name)
		}
	}
	sort.Strings(attrs)
	sub, err := s.Access(recipient, p, attrs)
	if err != nil {
		return nil, err
	}
	if sub.Rows() < k {
		return nil, fmt.Errorf("hippocratic: only %d consenting records, need ≥ k=%d", sub.Rows(), k)
	}
	masked, _, err := microagg.Mask(sub, microagg.NewOptions(k))
	if err != nil {
		return nil, err
	}
	var confNumeric []int
	for j := 0; j < masked.Cols(); j++ {
		if masked.Attr(j).Role == dataset.Confidential && masked.Attr(j).Kind == dataset.Numeric {
			confNumeric = append(confNumeric, j)
		}
	}
	if len(confNumeric) > 0 && noiseAmplitude > 0 {
		masked, err = noise.AddUncorrelated(masked, confNumeric, noiseAmplitude, dataset.NewRand(seed))
		if err != nil {
			return nil, err
		}
	}
	if got := anonymity.K(masked, masked.QuasiIdentifiers()); got < k {
		return nil, fmt.Errorf("hippocratic: release is only %d-anonymous, wanted %d", got, k)
	}
	return masked, nil
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

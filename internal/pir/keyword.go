package pir

import (
	"fmt"
	"sort"
)

// Keyword PIR (Chor, Gilboa & Naor style, simplified): the server publishes
// the sorted key directory as public metadata; the client maps its keyword
// to an index locally and retrieves the value block by index PIR. The
// servers never see the keyword, only the index-PIR query vectors.

// KeywordDB prepares a replicated keyword→value database for k IT-PIR
// servers. Values are padded to a common block size.
type KeywordDB struct {
	keys    []string
	servers []*ITServer
}

// NewKeywordDB builds the directory and k replicated servers.
func NewKeywordDB(entries map[string][]byte, numServers int) (*KeywordDB, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("pir: empty keyword database")
	}
	if numServers < 2 {
		return nil, fmt.Errorf("pir: need ≥ 2 servers, got %d", numServers)
	}
	keys := make([]string, 0, len(entries))
	maxLen := 0
	for k, v := range entries {
		keys = append(keys, k)
		if len(v) > maxLen {
			maxLen = len(v)
		}
	}
	sort.Strings(keys)
	if maxLen == 0 {
		maxLen = 1
	}
	// Block layout: 2-byte length prefix + padded value.
	blocks := make([][]byte, len(keys))
	for i, k := range keys {
		v := entries[k]
		if len(v) > 0xffff {
			return nil, fmt.Errorf("pir: value for %q exceeds 65535 bytes", k)
		}
		b := make([]byte, 2+maxLen)
		b[0] = byte(len(v))
		b[1] = byte(len(v) >> 8)
		copy(b[2:], v)
		blocks[i] = b
	}
	servers := make([]*ITServer, numServers)
	for s := range servers {
		srv, err := NewITServer(blocks)
		if err != nil {
			return nil, err
		}
		servers[s] = srv
	}
	return &KeywordDB{keys: keys, servers: servers}, nil
}

// Directory returns the public sorted key list.
func (db *KeywordDB) Directory() []string { return append([]string(nil), db.keys...) }

// Servers exposes the underlying IT-PIR servers (e.g. to read query logs).
func (db *KeywordDB) Servers() []*ITServer { return db.servers }

// Lookup privately retrieves the value for key. ok is false when the key is
// not in the directory — determined locally, with no query sent at all.
func (db *KeywordDB) Lookup(key string, seed uint64) (value []byte, ok bool, err error) {
	i := sort.SearchStrings(db.keys, key)
	if i >= len(db.keys) || db.keys[i] != key {
		return nil, false, nil
	}
	client, err := NewITClient(db.servers, seed)
	if err != nil {
		return nil, false, err
	}
	block, err := client.Retrieve(i)
	if err != nil {
		return nil, false, err
	}
	return decodeValueBlock(block)
}

// LookupMany privately retrieves several keys in one batched round: keys
// missing from the directory are resolved locally (no query sent), and the
// present ones go through ITClient.RetrieveBatch so their retrievals run
// concurrently on the worker pool. found[i] reports whether keys[i] was in
// the directory.
func (db *KeywordDB) LookupMany(keys []string, seed uint64) (values [][]byte, found []bool, err error) {
	values = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	var indices []int
	var at []int // position in keys of each batched index
	for i, key := range keys {
		j := sort.SearchStrings(db.keys, key)
		if j >= len(db.keys) || db.keys[j] != key {
			continue
		}
		found[i] = true
		indices = append(indices, j)
		at = append(at, i)
	}
	if len(indices) == 0 {
		return values, found, nil
	}
	client, err := NewITClient(db.servers, seed)
	if err != nil {
		return nil, nil, err
	}
	blocks, err := client.RetrieveBatch(indices)
	if err != nil {
		return nil, nil, err
	}
	for b, block := range blocks {
		v, _, err := decodeValueBlock(block)
		if err != nil {
			return nil, nil, err
		}
		values[at[b]] = v
	}
	return values, found, nil
}

// decodeValueBlock strips the 2-byte length prefix off a retrieved block.
func decodeValueBlock(block []byte) ([]byte, bool, error) {
	n := int(block[0]) | int(block[1])<<8
	if n > len(block)-2 {
		return nil, false, fmt.Errorf("pir: corrupt block length %d", n)
	}
	return append([]byte(nil), block[2:2+n]...), true, nil
}

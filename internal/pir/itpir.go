// Package pir implements private information retrieval, the technology of
// the paper's user-privacy dimension ([8], Chor, Goldreich, Kushilevitz &
// Sudan): the multi-server information-theoretic XOR scheme, a single-server
// computational scheme based on quadratic residuosity (Kushilevitz &
// Ostrovsky), keyword PIR on top of either, and a PIR-backed statistical
// query layer that reproduces the paper's Section 3 attack scenario.
//
// Every server records the query vectors it receives; the user-privacy
// evaluator inspects those logs to verify that a server's view is
// statistically independent of the retrieved index. The logs are bounded
// ring buffers (newest-window retention) so a long-running replica cannot
// grow without bound; retained and dropped counts are exposed for /metrics.
//
// The answer path is the hot loop of the whole stack — PIR servers touch
// the entire database on every query by design — so ITServer packs the
// database into uint64 words at construction and fans block ranges out
// over the internal/par worker pool. XOR is exact and associative, and the
// in-order reduction over fixed-size chunks makes every answer
// byte-identical at any worker count (cmd/benchpir gates on this).
package pir

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"privacy3d/internal/par"
)

// DefaultQueryLogCap bounds each server's query log: the newest window a
// replica retains for the user-privacy evaluator. Old entries beyond the
// cap are dropped (and counted) instead of accumulating until OOM.
const DefaultQueryLogCap = 4096

// ITServer is one server of the information-theoretic scheme. All servers
// hold the same replicated database of equal-size blocks, packed as uint64
// words for the XOR kernel. Answer and QueryLog are safe for concurrent
// use (the HTTP transport serves requests concurrently).
type ITServer struct {
	numBlocks int
	blockSize int
	wpb       int      // words per block (blockSize rounded up to 8 bytes)
	words     []uint64 // numBlocks × wpb, row-major, zero-padded tails

	// queryLog records the subset vectors received (one bit per block),
	// bounded to the newest DefaultQueryLogCap entries.
	queryLog *par.Ring[[]byte]

	answers    atomic.Int64 // total Answer calls served
	wordsXORed atomic.Int64 // total uint64 XOR operations performed
}

// NewITServer creates a server over the given block database. Blocks must
// be non-empty and equally sized.
func NewITServer(blocks [][]byte) (*ITServer, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("pir: empty database")
	}
	size := len(blocks[0])
	if size == 0 {
		return nil, fmt.Errorf("pir: zero-size blocks")
	}
	for i, b := range blocks {
		if len(b) != size {
			return nil, fmt.Errorf("pir: block %d has %d bytes, want %d", i, len(b), size)
		}
	}
	wpb := (size + 7) / 8
	s := &ITServer{
		numBlocks: len(blocks),
		blockSize: size,
		wpb:       wpb,
		words:     make([]uint64, len(blocks)*wpb),
		queryLog:  par.NewRing[[]byte](DefaultQueryLogCap),
	}
	for i, b := range blocks {
		packWords(s.words[i*wpb:(i+1)*wpb], b)
	}
	return s, nil
}

// packWords packs b little-endian into dst (len(dst) = ceil(len(b)/8)),
// zero-padding the final partial word.
func packWords(dst []uint64, b []byte) {
	full := len(b) / 8
	for w := 0; w < full; w++ {
		dst[w] = binary.LittleEndian.Uint64(b[w*8:])
	}
	if rem := len(b) % 8; rem > 0 {
		var buf [8]byte
		copy(buf[:], b[full*8:])
		dst[full] = binary.LittleEndian.Uint64(buf[:])
	}
}

// unpackWords writes the first len(dst) bytes of the little-endian word
// sequence src into dst.
func unpackWords(dst []byte, src []uint64) {
	full := len(dst) / 8
	for w := 0; w < full; w++ {
		binary.LittleEndian.PutUint64(dst[w*8:], src[w])
	}
	if rem := len(dst) % 8; rem > 0 {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], src[full])
		copy(dst[full*8:], buf[:rem])
	}
}

// Blocks returns the number of database blocks.
func (s *ITServer) Blocks() int { return s.numBlocks }

// BlockSize returns the size of each block in bytes.
func (s *ITServer) BlockSize() int { return s.blockSize }

// Block returns a copy of block i (the packed words are authoritative).
func (s *ITServer) Block(i int) []byte {
	out := make([]byte, s.blockSize)
	unpackWords(out, s.words[i*s.wpb:(i+1)*s.wpb])
	return out
}

// checkSubset validates a subset vector's width and rejects set bits
// beyond the block count: a malformed query must fail loudly rather than
// masquerade as a valid one (the tail bits would silently be ignored).
func (s *ITServer) checkSubset(subset []byte) error {
	vecLen := (s.numBlocks + 7) / 8
	if len(subset) != vecLen {
		return fmt.Errorf("pir: subset vector has %d bytes, want %d", len(subset), vecLen)
	}
	if tail := s.numBlocks % 8; tail != 0 {
		if extra := subset[vecLen-1] >> tail; extra != 0 {
			return fmt.Errorf("pir: subset vector has bits set beyond block %d (tail byte %#02x)",
				s.numBlocks-1, subset[vecLen-1])
		}
	}
	return nil
}

// Answer XORs together the blocks selected by the subset bit vector
// (subset[i>>3]>>(i&7)&1 selects block i) and logs the query. The XOR runs
// as a word-parallel kernel on the internal/par pool: block ranges are
// mapped to per-chunk partial accumulators which are folded in chunk
// order, so the answer is byte-identical at any worker count.
func (s *ITServer) Answer(subset []byte) ([]byte, error) {
	if err := s.checkSubset(subset); err != nil {
		return nil, err
	}
	// The log append is outside the kernel's critical path: a bounded ring
	// with its own short lock, never the XOR loop.
	s.queryLog.Append(append([]byte(nil), subset...))
	s.answers.Add(1)

	wpb := s.wpb
	acc := par.MapReduce(par.Default(), s.numBlocks, nil,
		func(lo, hi int) []uint64 {
			var part []uint64
			var xored int64
			for b := lo; b < hi; b++ {
				if subset[b>>3]>>(b&7)&1 == 0 {
					continue
				}
				if part == nil {
					part = make([]uint64, wpb)
				}
				row := s.words[b*wpb : (b+1)*wpb]
				for w, v := range row {
					part[w] ^= v
				}
				xored += int64(wpb)
			}
			if xored > 0 {
				s.wordsXORed.Add(xored)
			}
			return part
		},
		func(acc, part []uint64) []uint64 {
			if part == nil {
				return acc
			}
			if acc == nil {
				return part // freshly allocated per chunk: safe to adopt
			}
			for w, v := range part {
				acc[w] ^= v
			}
			return acc
		})

	out := make([]byte, s.blockSize)
	if acc != nil {
		unpackWords(out, acc)
	}
	return out, nil
}

// AnswerBatch answers m subset queries in ONE pass over the database: each
// block row is loaded once and XORed into every selected per-query
// accumulator, instead of m separate passes re-streaming the whole word
// array through the cache. XOR is exact and associative, so each returned
// answer is byte-identical to Answer on the same subset, at any worker
// count. Every query in the batch is logged and counted individually; a
// malformed subset fails the whole batch before any work or logging.
func (s *ITServer) AnswerBatch(subsets [][]byte) ([][]byte, error) {
	for i, sub := range subsets {
		if err := s.checkSubset(sub); err != nil {
			return nil, fmt.Errorf("pir: batch query %d: %w", i, err)
		}
	}
	if len(subsets) == 0 {
		return nil, nil
	}
	for _, sub := range subsets {
		s.queryLog.Append(append([]byte(nil), sub...))
	}
	s.answers.Add(int64(len(subsets)))

	wpb, m := s.wpb, len(subsets)
	acc := par.MapReduce(par.Default(), s.numBlocks, nil,
		func(lo, hi int) [][]uint64 {
			var part [][]uint64
			var xored int64
			for b := lo; b < hi; b++ {
				row := s.words[b*wpb : (b+1)*wpb]
				for q := 0; q < m; q++ {
					if subsets[q][b>>3]>>(b&7)&1 == 0 {
						continue
					}
					if part == nil {
						part = make([][]uint64, m)
					}
					if part[q] == nil {
						part[q] = make([]uint64, wpb)
					}
					dst := part[q]
					for w, v := range row {
						dst[w] ^= v
					}
					xored += int64(wpb)
				}
			}
			if xored > 0 {
				s.wordsXORed.Add(xored)
			}
			return part
		},
		func(acc, part [][]uint64) [][]uint64 {
			if part == nil {
				return acc
			}
			if acc == nil {
				return part // freshly allocated per chunk: safe to adopt
			}
			for q := range part {
				switch {
				case part[q] == nil:
				case acc[q] == nil:
					acc[q] = part[q]
				default:
					dst := acc[q]
					for w, v := range part[q] {
						dst[w] ^= v
					}
				}
			}
			return acc
		})

	out := make([][]byte, m)
	for q := range out {
		out[q] = make([]byte, s.blockSize)
		if acc != nil && acc[q] != nil {
			unpackWords(out[q], acc[q])
		}
	}
	return out, nil
}

// QueryLog returns a copy of the retained subset vectors this server has
// observed (oldest first) — its window onto all users' activity.
func (s *ITServer) QueryLog() [][]byte {
	return s.queryLog.Snapshot()
}

// QueryLogStats reports the bounded log's state: entries retained,
// entries dropped (overwritten) since construction, and the cap.
func (s *ITServer) QueryLogStats() (retained int, dropped int64, capacity int) {
	return s.queryLog.Len(), s.queryLog.Dropped(), s.queryLog.Cap()
}

// SetQueryLogCap replaces the query log with an empty ring of the given
// capacity. Call it before serving traffic; it discards the current log.
func (s *ITServer) SetQueryLogCap(n int) {
	s.queryLog = par.NewRing[[]byte](n)
}

// Answers returns the number of Answer calls served.
func (s *ITServer) Answers() int64 { return s.answers.Load() }

// WordsXORed returns the total uint64 XOR operations performed by the
// answer kernel — the engine's unit of useful work.
func (s *ITServer) WordsXORed() int64 { return s.wordsXORed.Load() }

// ITClient retrieves blocks privately from k ≥ 2 non-colluding replicated
// servers. It is safe for concurrent use: the query-randomness stream is
// serialized under a mutex, and replica fan-out is concurrent.
type ITClient struct {
	servers []*ITServer
	mu      sync.Mutex
	rng     *rand.Rand
}

// NewITClient wires a client to its servers.
func NewITClient(servers []*ITServer, seed uint64) (*ITClient, error) {
	if len(servers) < 2 {
		return nil, fmt.Errorf("pir: information-theoretic PIR needs ≥ 2 servers, got %d", len(servers))
	}
	n, bs := servers[0].Blocks(), servers[0].BlockSize()
	for i, s := range servers {
		if s.Blocks() != n || s.BlockSize() != bs {
			return nil, fmt.Errorf("pir: server %d database shape differs", i)
		}
	}
	return &ITClient{servers: servers, rng: rand.New(rand.NewPCG(seed, seed^0xdeadbeef))}, nil
}

// subsetQueries builds the k per-server subset vectors hiding index:
// k−1 uniformly random subsets plus one correcting their XOR to {index}.
// randByte draws the next byte of query randomness.
func subsetQueries(k, n, index int, randByte func() byte) [][]byte {
	vecLen := (n + 7) / 8
	subsets := make([][]byte, k)
	last := make([]byte, vecLen)
	for s := 0; s < k-1; s++ {
		v := make([]byte, vecLen)
		for j := range v {
			v[j] = randByte()
		}
		// Mask tail bits beyond n: servers reject vectors selecting
		// nonexistent blocks.
		if n%8 != 0 {
			v[vecLen-1] &= byte(1<<(n%8)) - 1
		}
		subsets[s] = v
		for j := range last {
			last[j] ^= v[j]
		}
	}
	last[index>>3] ^= 1 << (index & 7)
	subsets[k-1] = last
	return subsets
}

// queriesFor draws one retrieval's worth of subsets from the client's
// randomness stream (serialized so concurrent retrievals stay well-defined).
func (c *ITClient) queriesFor(index int) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return subsetQueries(len(c.servers), c.servers[0].Blocks(), index, func() byte {
		return byte(c.rng.Uint64())
	})
}

// Retrieve privately fetches block index: the client sends k−1 uniformly
// random subsets and one subset correcting their XOR to {index}; the XOR of
// all answers is the block. Each individual server sees a uniformly random
// subset regardless of index. All replicas are queried concurrently.
func (c *ITClient) Retrieve(index int) ([]byte, error) {
	n := c.servers[0].Blocks()
	if index < 0 || index >= n {
		return nil, fmt.Errorf("pir: index %d out of range [0,%d)", index, n)
	}
	subsets := c.queriesFor(index)
	k := len(c.servers)
	answers := make([][]byte, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for s := range c.servers {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			answers[s], errs[s] = c.servers[s].Answer(subsets[s])
		}(s)
	}
	wg.Wait()
	out := make([]byte, c.servers[0].BlockSize())
	for s := range c.servers {
		if errs[s] != nil {
			return nil, fmt.Errorf("pir: server %d: %w", s, errs[s])
		}
		for j := range out {
			out[j] ^= answers[s][j]
		}
	}
	return out, nil
}

// RetrieveBatch privately fetches the given block indices — the batched
// path the Section 3 RangeStats scenario uses instead of paying per-cell
// sequential round trips. Each server receives its whole column of subset
// vectors as ONE AnswerBatch call, so the replica streams its database once
// for the entire batch instead of once per index. The query randomness is
// drawn sequentially in index order, and per-index answers are XOR-folded
// in server order, so results are identical to len(indices) sequential
// Retrieve calls at any worker count.
func (c *ITClient) RetrieveBatch(indices []int) ([][]byte, error) {
	n := c.servers[0].Blocks()
	for _, idx := range indices {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("pir: index %d out of range [0,%d)", idx, n)
		}
	}
	if len(indices) == 0 {
		return nil, nil
	}
	k := len(c.servers)
	perServer := make([][][]byte, k)
	for s := range perServer {
		perServer[s] = make([][]byte, len(indices))
	}
	for i, idx := range indices {
		qs := c.queriesFor(idx)
		for s := 0; s < k; s++ {
			perServer[s][i] = qs[s]
		}
	}
	answers := make([][][]byte, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for s := range c.servers {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			answers[s], errs[s] = c.servers[s].AnswerBatch(perServer[s])
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pir: server %d: %w", s, err)
		}
	}
	out := make([][]byte, len(indices))
	bs := c.servers[0].BlockSize()
	for i := range indices {
		b := make([]byte, bs)
		for s := 0; s < k; s++ {
			for j := range b {
				b[j] ^= answers[s][i][j]
			}
		}
		out[i] = b
	}
	return out, nil
}

// CommunicationBits returns the total client↔server communication of one
// retrieval in bits: k subset vectors up, k blocks down.
func (c *ITClient) CommunicationBits() int {
	n := c.servers[0].Blocks()
	return len(c.servers) * (((n + 7) / 8 * 8) + c.servers[0].BlockSize()*8)
}

// Package pir implements private information retrieval, the technology of
// the paper's user-privacy dimension ([8], Chor, Goldreich, Kushilevitz &
// Sudan): the multi-server information-theoretic XOR scheme, a single-server
// computational scheme based on quadratic residuosity (Kushilevitz &
// Ostrovsky), keyword PIR on top of either, and a PIR-backed statistical
// query layer that reproduces the paper's Section 3 attack scenario.
//
// Every server records the query vectors it receives; the user-privacy
// evaluator inspects those logs to verify that a server's view is
// statistically independent of the retrieved index.
package pir

import (
	"fmt"
	"math/rand/v2"
	"sync"
)

// ITServer is one server of the information-theoretic scheme. All servers
// hold the same replicated database of equal-size blocks. Answer and
// QueryLog are safe for concurrent use (the HTTP transport serves requests
// concurrently).
type ITServer struct {
	blocks [][]byte
	mu     sync.Mutex
	// queryLog records every subset vector received (one bit per block).
	queryLog [][]byte
}

// NewITServer creates a server over the given block database. Blocks must
// be non-empty and equally sized.
func NewITServer(blocks [][]byte) (*ITServer, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("pir: empty database")
	}
	size := len(blocks[0])
	if size == 0 {
		return nil, fmt.Errorf("pir: zero-size blocks")
	}
	for i, b := range blocks {
		if len(b) != size {
			return nil, fmt.Errorf("pir: block %d has %d bytes, want %d", i, len(b), size)
		}
	}
	cp := make([][]byte, len(blocks))
	for i, b := range blocks {
		cp[i] = append([]byte(nil), b...)
	}
	return &ITServer{blocks: cp}, nil
}

// Blocks returns the number of database blocks.
func (s *ITServer) Blocks() int { return len(s.blocks) }

// BlockSize returns the size of each block in bytes.
func (s *ITServer) BlockSize() int { return len(s.blocks[0]) }

// Answer XORs together the blocks selected by the subset bit vector
// (subset[i>>3]>>(i&7)&1 selects block i) and logs the query.
func (s *ITServer) Answer(subset []byte) ([]byte, error) {
	if len(subset) != (len(s.blocks)+7)/8 {
		return nil, fmt.Errorf("pir: subset vector has %d bytes, want %d", len(subset), (len(s.blocks)+7)/8)
	}
	s.mu.Lock()
	s.queryLog = append(s.queryLog, append([]byte(nil), subset...))
	s.mu.Unlock()
	out := make([]byte, len(s.blocks[0]))
	for i, b := range s.blocks {
		if subset[i>>3]>>(i&7)&1 == 1 {
			for j := range out {
				out[j] ^= b[j]
			}
		}
	}
	return out, nil
}

// QueryLog returns a copy of the subset vectors this server has observed —
// its entire view of all users' activity.
func (s *ITServer) QueryLog() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.queryLog...)
}

// ITClient retrieves blocks privately from k ≥ 2 non-colluding replicated
// servers.
type ITClient struct {
	servers []*ITServer
	rng     *rand.Rand
}

// NewITClient wires a client to its servers.
func NewITClient(servers []*ITServer, seed uint64) (*ITClient, error) {
	if len(servers) < 2 {
		return nil, fmt.Errorf("pir: information-theoretic PIR needs ≥ 2 servers, got %d", len(servers))
	}
	n, bs := servers[0].Blocks(), servers[0].BlockSize()
	for i, s := range servers {
		if s.Blocks() != n || s.BlockSize() != bs {
			return nil, fmt.Errorf("pir: server %d database shape differs", i)
		}
	}
	return &ITClient{servers: servers, rng: rand.New(rand.NewPCG(seed, seed^0xdeadbeef))}, nil
}

// Retrieve privately fetches block index: the client sends k−1 uniformly
// random subsets and one subset correcting their XOR to {index}; the XOR of
// all answers is the block. Each individual server sees a uniformly random
// subset regardless of index.
func (c *ITClient) Retrieve(index int) ([]byte, error) {
	n := c.servers[0].Blocks()
	if index < 0 || index >= n {
		return nil, fmt.Errorf("pir: index %d out of range [0,%d)", index, n)
	}
	vecLen := (n + 7) / 8
	k := len(c.servers)
	subsets := make([][]byte, k)
	last := make([]byte, vecLen)
	for s := 0; s < k-1; s++ {
		v := make([]byte, vecLen)
		for j := range v {
			v[j] = byte(c.rng.Uint64())
		}
		// Mask tail bits beyond n for cleanliness.
		if n%8 != 0 {
			v[vecLen-1] &= byte(1<<(n%8)) - 1
		}
		subsets[s] = v
		for j := range last {
			last[j] ^= v[j]
		}
	}
	last[index>>3] ^= 1 << (index & 7)
	subsets[k-1] = last
	out := make([]byte, c.servers[0].BlockSize())
	for s, srv := range c.servers {
		ans, err := srv.Answer(subsets[s])
		if err != nil {
			return nil, fmt.Errorf("pir: server %d: %w", s, err)
		}
		for j := range out {
			out[j] ^= ans[j]
		}
	}
	return out, nil
}

// CommunicationBits returns the total client↔server communication of one
// retrieval in bits: k subset vectors up, k blocks down.
func (c *ITClient) CommunicationBits() int {
	n := c.servers[0].Blocks()
	return len(c.servers) * (((n + 7) / 8 * 8) + c.servers[0].BlockSize()*8)
}

package pir

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
)

// newSubsetRNG derives a per-retrieval PRNG so repeated retrievals use
// fresh, reproducible subsets.
func newSubsetRNG(seed, counter uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, counter*0x9e3779b97f4a7c15+1))
}

// HTTP transport for the information-theoretic PIR scheme, so the
// replicated servers can run as separate processes (or hosts, which is what
// non-collusion requires in a real deployment). The wire format is JSON:
// POST /pir with {"subset": base64}, responding {"block": base64}.
//
// Errors are JSON objects {"error": "..."} with a correct status code:
// 400 for malformed input, 405 for a wrong method on a known path (with an
// Allow header), 404 for an unknown path.

// HTTPServer adapts an ITServer to net/http.
type HTTPServer struct {
	srv *ITServer
}

// NewHTTPServer wraps an IT-PIR server for HTTP serving.
func NewHTTPServer(srv *ITServer) *HTTPServer { return &HTTPServer{srv: srv} }

type pirRequest struct {
	Subset []byte `json:"subset"`
}

type pirResponse struct {
	Block []byte `json:"block"`
}

type pirMeta struct {
	Blocks    int `json:"blocks"`
	BlockSize int `json:"block_size"`
}

type pirError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a flat struct to a ResponseWriter cannot fail in a way the
	// handler can still report; ignore the error deliberately.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, pirError{Error: msg})
}

// ServeHTTP handles POST /pir (answer a subset query) and GET /meta
// (public database shape). Route on path first so a wrong method on a
// known path is a 405, not a 404.
func (h *HTTPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/meta":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Sprintf("method %s not allowed; use GET", r.Method))
			return
		}
		writeJSON(w, http.StatusOK, pirMeta{Blocks: h.srv.Blocks(), BlockSize: h.srv.BlockSize()})
	case "/pir":
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed,
				fmt.Sprintf("method %s not allowed; use POST", r.Method))
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<22))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		var req pirRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "malformed PIR request: "+err.Error())
			return
		}
		block, err := h.srv.Answer(req.Subset)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, pirResponse{Block: block})
	default:
		writeError(w, http.StatusNotFound, "unknown path "+r.URL.Path)
	}
}

// HTTPClient retrieves blocks privately from replicated HTTP PIR servers.
// It is safe for concurrent use; each Retrieve queries all replicas
// concurrently, so the round trip costs one slowest-replica latency
// instead of the sum over replicas.
type HTTPClient struct {
	urls      []string
	client    *http.Client
	blocks    int
	blockSize int
	seed      uint64
	retrieves atomic.Uint64
}

// NewHTTPClient connects to k ≥ 2 server base URLs and fetches the database
// shape from the first one (public metadata; all replicas must agree).
func NewHTTPClient(urls []string, client *http.Client, seed uint64) (*HTTPClient, error) {
	if len(urls) < 2 {
		return nil, fmt.Errorf("pir: HTTP PIR needs ≥ 2 server URLs, got %d", len(urls))
	}
	if client == nil {
		client = http.DefaultClient
	}
	c := &HTTPClient{urls: urls, client: client, seed: seed}
	for i, u := range urls {
		resp, err := client.Get(u + "/meta")
		if err != nil {
			return nil, fmt.Errorf("pir: fetch meta from server %d: %w", i, err)
		}
		var meta pirMeta
		err = json.NewDecoder(resp.Body).Decode(&meta)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("pir: decode meta from server %d: %w", i, err)
		}
		if i == 0 {
			c.blocks, c.blockSize = meta.Blocks, meta.BlockSize
			continue
		}
		if meta.Blocks != c.blocks || meta.BlockSize != c.blockSize {
			return nil, fmt.Errorf("pir: server %d shape %d×%d disagrees with %d×%d",
				i, meta.Blocks, meta.BlockSize, c.blocks, c.blockSize)
		}
	}
	if c.blocks == 0 {
		return nil, fmt.Errorf("pir: servers report an empty database")
	}
	return c, nil
}

// Blocks returns the database size.
func (c *HTTPClient) Blocks() int { return c.blocks }

// Retrieve privately fetches a block over HTTP, mirroring ITClient.Retrieve.
// All replicas are queried concurrently; answers are XOR-folded in server
// order once every response has arrived.
func (c *HTTPClient) Retrieve(index int) ([]byte, error) {
	if index < 0 || index >= c.blocks {
		return nil, fmt.Errorf("pir: index %d out of range [0,%d)", index, c.blocks)
	}
	rng := newSubsetRNG(c.seed, c.retrieves.Add(1))
	k := len(c.urls)
	subsets := subsetQueries(k, c.blocks, index, func() byte { return byte(rng.Uint64()) })

	answers := make([][]byte, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for s := range c.urls {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			answers[s], errs[s] = c.query(s, subsets[s])
		}(s)
	}
	wg.Wait()
	out := make([]byte, c.blockSize)
	for s := range c.urls {
		if errs[s] != nil {
			return nil, errs[s]
		}
		for j := range out {
			out[j] ^= answers[s][j]
		}
	}
	return out, nil
}

// query POSTs one subset vector to replica s and returns its answer block.
func (c *HTTPClient) query(s int, subset []byte) ([]byte, error) {
	body, err := json.Marshal(pirRequest{Subset: subset})
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Post(c.urls[s]+"/pir", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("pir: query server %d: %w", s, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("pir: server %d returned %s: %s", s, resp.Status, msg)
	}
	var pr pirResponse
	err = json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("pir: decode answer from server %d: %w", s, err)
	}
	if len(pr.Block) != c.blockSize {
		return nil, fmt.Errorf("pir: server %d answered %d bytes, want %d", s, len(pr.Block), c.blockSize)
	}
	return pr.Block, nil
}

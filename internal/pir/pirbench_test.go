package pir

import (
	"math/big"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
)

// The full-scale perf gate lives in cmd/benchpir (≥ 64 MiB database,
// BENCH_pir.json); these small benchmarks exist so `make check`'s
// -benchtime 1x pass keeps the kernels compiling and running on every
// change.

func benchDB(b *testing.B, n, size int) ([][]byte, *ITServer, []byte) {
	b.Helper()
	blocks := testBlocks(n, size, 97)
	srv, err := NewITServer(blocks)
	if err != nil {
		b.Fatal(err)
	}
	subset := randomSubset(n, dataset.NewRand(101))
	return blocks, srv, subset
}

// BenchmarkITAnswerWord times the word-packed parallel XOR kernel.
func BenchmarkITAnswerWord(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(benchName(w), func(b *testing.B) {
			defer par.SetWorkers(par.SetWorkers(w))
			_, srv, subset := benchDB(b, 2048, 256)
			b.SetBytes(2048 * 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Answer(subset); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	return "workers=" + string(rune('0'+workers))
}

// BenchmarkITAnswerBytewise times the seed's byte-at-a-time reference
// kernel on the same workload, the baseline the word kernel is gated
// against in cmd/benchpir.
func BenchmarkITAnswerBytewise(b *testing.B) {
	blocks, _, subset := benchDB(b, 2048, 256)
	b.SetBytes(2048 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bytewiseAnswer(blocks, subset)
	}
}

// BenchmarkCPIRAnswer times the per-row parallel modular-product kernel.
func BenchmarkCPIRAnswer(b *testing.B) {
	rng := dataset.NewRand(103)
	bits := make([]bool, 1<<12)
	for i := range bits {
		bits[i] = rng.Uint64()&1 == 1
	}
	srv, err := NewCPIRServer(bits)
	if err != nil {
		b.Fatal(err)
	}
	_, cols := srv.Shape()
	n := new(big.Int).Lsh(big.NewInt(1), 512)
	n.Sub(n, big.NewInt(569)) // fixed odd modulus
	query := make([]*big.Int, cols)
	for c := range query {
		v := make([]byte, 64)
		for j := range v {
			v[j] = byte(rng.Uint64())
		}
		query[c] = new(big.Int).Mod(new(big.Int).SetBytes(v), n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Answer(query, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeStatsBatch times the end-to-end Section 3 COUNT/AVG
// scenario on the batched concurrent client.
func BenchmarkRangeStatsBatch(b *testing.B) {
	d := dataset.Dataset2()
	x, y := trialGrid()
	db, err := BuildStatDB(d, "height", "weight", "blood_pressure", x, y, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.RangeStats(150, 190, 60, 115, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

package pir

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"privacy3d/internal/par"
)

// Single-server computational PIR following Kushilevitz & Ostrovsky (1997):
// the database is an s×t bit matrix; the client sends one group element per
// column, quadratic residues everywhere except a quadratic non-residue at
// the target column; the server returns one element per row,
// z_r = Π_c x_c^{M[r][c]} mod N; the client, knowing the factorization,
// tests the residuosity of z at the target row — z is a non-residue exactly
// when the target bit is 1. Communication O((s+t)·|N|) ≪ database size.

// CPIRServer holds the public bit matrix. Answer and QueryLog are safe for
// concurrent use.
type CPIRServer struct {
	rows, cols int
	bits       [][]bool
	// queryLog records the column-vector queries received, bounded to the
	// newest DefaultQueryLogCap entries.
	queryLog *par.Ring[[]*big.Int]
}

// NewCPIRServer builds a server over data laid out row-major as bits. The
// matrix shape is chosen near-square for balanced communication.
func NewCPIRServer(bits []bool) (*CPIRServer, error) {
	if len(bits) == 0 {
		return nil, fmt.Errorf("pir: empty bit database")
	}
	cols := 1
	for cols*cols < len(bits) {
		cols++
	}
	rows := (len(bits) + cols - 1) / cols
	m := make([][]bool, rows)
	for r := range m {
		m[r] = make([]bool, cols)
		for c := range m[r] {
			if idx := r*cols + c; idx < len(bits) {
				m[r][c] = bits[idx]
			}
		}
	}
	return &CPIRServer{rows: rows, cols: cols, bits: m,
		queryLog: par.NewRing[[]*big.Int](DefaultQueryLogCap)}, nil
}

// Shape returns the matrix dimensions.
func (s *CPIRServer) Shape() (rows, cols int) { return s.rows, s.cols }

// Answer computes the per-row products for a column query modulo n. Rows
// are independent modular products, so they fan out over the internal/par
// pool one task per row; each out[r] is written by exactly one worker,
// making the result trivially identical at any worker count.
func (s *CPIRServer) Answer(query []*big.Int, n *big.Int) ([]*big.Int, error) {
	if len(query) != s.cols {
		return nil, fmt.Errorf("pir: query has %d columns, want %d", len(query), s.cols)
	}
	s.queryLog.Append(append([]*big.Int(nil), query...))
	out := make([]*big.Int, s.rows)
	par.Tasks(s.rows, func(r int) {
		z := big.NewInt(1)
		for c := 0; c < s.cols; c++ {
			if s.bits[r][c] {
				z.Mul(z, query[c])
				z.Mod(z, n)
			}
		}
		out[r] = z
	})
	return out, nil
}

// QueryLog returns a copy of the retained queries the server has seen.
func (s *CPIRServer) QueryLog() [][]*big.Int {
	return s.queryLog.Snapshot()
}

// QueryLogStats reports the bounded log's retained, dropped and cap counts.
func (s *CPIRServer) QueryLogStats() (retained int, dropped int64, capacity int) {
	return s.queryLog.Len(), s.queryLog.Dropped(), s.queryLog.Cap()
}

// CPIRClient holds the trapdoor (factorization of N).
type CPIRClient struct {
	N, p, q *big.Int
}

// NewCPIRClient generates a Blum-like modulus of the given size (≥ 256 bits;
// small sizes for tests only).
func NewCPIRClient(bits int) (*CPIRClient, error) {
	if bits < 256 {
		return nil, fmt.Errorf("pir: modulus must be ≥ 256 bits, got %d", bits)
	}
	p, err := rand.Prime(rand.Reader, bits/2)
	if err != nil {
		return nil, fmt.Errorf("pir: keygen: %w", err)
	}
	q, err := rand.Prime(rand.Reader, bits/2)
	if err != nil {
		return nil, fmt.Errorf("pir: keygen: %w", err)
	}
	for p.Cmp(q) == 0 {
		q, err = rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("pir: keygen: %w", err)
		}
	}
	return &CPIRClient{N: new(big.Int).Mul(p, q), p: p, q: q}, nil
}

// isQR reports whether z is a quadratic residue modulo N (using the
// factorization). gcd(z, N) = 1 is assumed for honest executions.
func (c *CPIRClient) isQR(z *big.Int) bool {
	return big.Jacobi(z, c.p) == 1 && big.Jacobi(z, c.q) == 1
}

// randomQR returns a uniformly random quadratic residue mod N.
func (c *CPIRClient) randomQR() (*big.Int, error) {
	for {
		r, err := rand.Int(rand.Reader, c.N)
		if err != nil {
			return nil, fmt.Errorf("pir: randomness: %w", err)
		}
		if r.Sign() == 0 || new(big.Int).GCD(nil, nil, r, c.N).Cmp(big.NewInt(1)) != 0 {
			continue
		}
		return r.Mul(r, r).Mod(r, c.N), nil
	}
}

// randomQNR returns a random non-residue with Jacobi symbol +1 (so it is
// indistinguishable from a residue without the factorization).
func (c *CPIRClient) randomQNR() (*big.Int, error) {
	for {
		r, err := rand.Int(rand.Reader, c.N)
		if err != nil {
			return nil, fmt.Errorf("pir: randomness: %w", err)
		}
		if r.Sign() == 0 || new(big.Int).GCD(nil, nil, r, c.N).Cmp(big.NewInt(1)) != 0 {
			continue
		}
		if big.Jacobi(r, c.p) == -1 && big.Jacobi(r, c.q) == -1 {
			return r, nil
		}
	}
}

// RetrieveBit privately fetches bit (row, col) from the server.
func (c *CPIRClient) RetrieveBit(srv *CPIRServer, row, col int) (bool, error) {
	rows, cols := srv.Shape()
	if row < 0 || row >= rows || col < 0 || col >= cols {
		return false, fmt.Errorf("pir: position (%d,%d) out of %dx%d matrix", row, col, rows, cols)
	}
	query := make([]*big.Int, cols)
	for j := 0; j < cols; j++ {
		var err error
		if j == col {
			query[j], err = c.randomQNR()
		} else {
			query[j], err = c.randomQR()
		}
		if err != nil {
			return false, err
		}
	}
	answers, err := srv.Answer(query, c.N)
	if err != nil {
		return false, err
	}
	// Product of residues is a residue; it is a non-residue iff the QNR
	// factor appears an odd number of times, i.e. iff M[row][col] = 1.
	return !c.isQR(answers[row]), nil
}

// RetrieveByte fetches 8 consecutive bits starting at bit offset (one PIR
// query per bit — the textbook scheme; batching is an optimisation outside
// the scope of this reproduction).
func (c *CPIRClient) RetrieveByte(srv *CPIRServer, bitOffset int) (byte, error) {
	_, cols := srv.Shape()
	var out byte
	for b := 0; b < 8; b++ {
		idx := bitOffset + b
		bit, err := c.RetrieveBit(srv, idx/cols, idx%cols)
		if err != nil {
			return 0, err
		}
		if bit {
			out |= 1 << b
		}
	}
	return out, nil
}

// BytesToBits expands a byte slice into its little-endian bit sequence.
func BytesToBits(data []byte) []bool {
	bits := make([]bool, len(data)*8)
	for i, by := range data {
		for b := 0; b < 8; b++ {
			bits[i*8+b] = by>>b&1 == 1
		}
	}
	return bits
}

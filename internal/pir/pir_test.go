package pir

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"privacy3d/internal/dataset"
)

func testBlocks(n, size int, seed uint64) [][]byte {
	rng := dataset.NewRand(seed)
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, size)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		blocks[i] = b
	}
	return blocks
}

func TestITPIRCorrectness(t *testing.T) {
	blocks := testBlocks(33, 16, 1)
	for _, k := range []int{2, 3, 5} {
		servers := make([]*ITServer, k)
		for s := range servers {
			srv, err := NewITServer(blocks)
			if err != nil {
				t.Fatal(err)
			}
			servers[s] = srv
		}
		client, err := NewITClient(servers, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range []int{0, 1, 16, 31, 32} {
			got, err := client.Retrieve(idx)
			if err != nil {
				t.Fatalf("k=%d Retrieve(%d): %v", k, idx, err)
			}
			if !bytes.Equal(got, blocks[idx]) {
				t.Errorf("k=%d: block %d mismatch", k, idx)
			}
		}
		if _, err := client.Retrieve(-1); err == nil {
			t.Error("accepted negative index")
		}
		if _, err := client.Retrieve(33); err == nil {
			t.Error("accepted out-of-range index")
		}
	}
}

func TestITPIRPropertyAllIndices(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%20)
		blocks := testBlocks(n, 8, seed)
		s1, _ := NewITServer(blocks)
		s2, _ := NewITServer(blocks)
		client, err := NewITClient([]*ITServer{s1, s2}, seed^42)
		if err != nil {
			return false
		}
		for idx := 0; idx < n; idx++ {
			got, err := client.Retrieve(idx)
			if err != nil || !bytes.Equal(got, blocks[idx]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestITPIRServerViewIndependentOfIndex(t *testing.T) {
	// Each server's received subset is uniformly random: retrieving
	// different indices must produce statistically indistinguishable
	// per-bit frequencies in a single server's log.
	blocks := testBlocks(64, 4, 3)
	s1, _ := NewITServer(blocks)
	s2, _ := NewITServer(blocks)
	client, _ := NewITClient([]*ITServer{s1, s2}, 11)
	const reps = 2000
	for r := 0; r < reps; r++ {
		if _, err := client.Retrieve(r % 2); err != nil { // alternate 0 and 1
			t.Fatal(err)
		}
	}
	log := s1.QueryLog()
	// Bit 0 of the subset should be ~uniform regardless of the target.
	var bit0For0, bit0For1 int
	for i, v := range log {
		if v[0]&1 == 1 {
			if i%2 == 0 {
				bit0For0++
			} else {
				bit0For1++
			}
		}
	}
	n := reps / 2
	for name, c := range map[string]int{"target0": bit0For0, "target1": bit0For1} {
		frac := float64(c) / float64(n)
		if frac < 0.4 || frac > 0.6 {
			t.Errorf("%s: subset bit frequency %v, want ≈ 0.5 (server view must be uniform)", name, frac)
		}
	}
}

func TestITServerValidation(t *testing.T) {
	if _, err := NewITServer(nil); err == nil {
		t.Error("accepted empty database")
	}
	if _, err := NewITServer([][]byte{{}}); err == nil {
		t.Error("accepted zero-size blocks")
	}
	if _, err := NewITServer([][]byte{{1}, {1, 2}}); err == nil {
		t.Error("accepted ragged blocks")
	}
	srv, _ := NewITServer([][]byte{{1}, {2}})
	if _, err := srv.Answer([]byte{0, 0}); err == nil {
		t.Error("accepted wrong subset length")
	}
	if _, err := NewITClient([]*ITServer{srv}, 1); err == nil {
		t.Error("accepted a single server")
	}
}

func TestCPIRRetrievesBits(t *testing.T) {
	payload := []byte("PIR")
	bits := BytesToBits(payload)
	srv, err := NewCPIRServer(bits)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewCPIRClient(512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(payload); i++ {
		got, err := client.RetrieveByte(srv, i*8)
		if err != nil {
			t.Fatal(err)
		}
		if got != payload[i] {
			t.Errorf("byte %d = %q, want %q", i, got, payload[i])
		}
	}
	if _, err := client.RetrieveBit(srv, -1, 0); err == nil {
		t.Error("accepted out-of-range position")
	}
	if _, err := NewCPIRServer(nil); err == nil {
		t.Error("accepted empty database")
	}
	if _, err := NewCPIRClient(64); err == nil {
		t.Error("accepted tiny modulus")
	}
}

func TestCPIRCommunicationSublinear(t *testing.T) {
	// The whole point of PIR vs trivial download: per-bit communication is
	// O(sqrt(n)) group elements, far below n bits for large n.
	bits := make([]bool, 1<<12)
	srv, err := NewCPIRServer(bits)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := srv.Shape()
	if rows*cols < len(bits) {
		t.Fatalf("matrix %dx%d too small for %d bits", rows, cols, len(bits))
	}
	if rows > 70 || cols > 70 {
		t.Errorf("matrix %dx%d not near-square for 4096 bits", rows, cols)
	}
}

func TestKeywordPIR(t *testing.T) {
	entries := map[string][]byte{
		"hypertension": []byte("ICD-10 I10"),
		"aids":         []byte("ICD-10 B24"),
		"flu":          []byte("ICD-10 J11"),
	}
	db, err := NewKeywordDB(entries, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Lookup("hypertension", 5)
	if err != nil || !ok {
		t.Fatalf("Lookup: ok=%v err=%v", ok, err)
	}
	if string(v) != "ICD-10 I10" {
		t.Errorf("value = %q", v)
	}
	// Missing key: resolved locally, no query sent.
	before := len(db.Servers()[0].QueryLog())
	_, ok, err = db.Lookup("cancer", 6)
	if err != nil || ok {
		t.Errorf("missing key: ok=%v err=%v", ok, err)
	}
	if len(db.Servers()[0].QueryLog()) != before {
		t.Error("missing-key lookup sent a query")
	}
	dir := db.Directory()
	if len(dir) != 3 || dir[0] != "aids" {
		t.Errorf("directory = %v", dir)
	}
	if _, err := NewKeywordDB(nil, 2); err == nil {
		t.Error("accepted empty entries")
	}
	if _, err := NewKeywordDB(entries, 1); err == nil {
		t.Error("accepted one server")
	}
}

// trialGrid is the public 5-unit grid covering Dataset 2's support.
func trialGrid() (x, y []float64) {
	for e := 150.0; e <= 190; e += 5 {
		x = append(x, e)
	}
	for e := 60.0; e <= 115; e += 5 {
		y = append(y, e)
	}
	return x, y
}

func TestStatPIRReproducesPaperAttack(t *testing.T) {
	// Section 3 of the paper: via PIR the user evaluates
	//   SELECT COUNT(*)              WHERE height < 165 AND weight > 105
	//   SELECT AVG(blood_pressure)   WHERE height < 165 AND weight > 105
	// learning that a single respondent matches, with blood pressure 146,
	// while the servers learn nothing about the region queried.
	d := dataset.Dataset2()
	x, y := trialGrid()
	db, err := BuildStatDB(d, "height", "weight", "blood_pressure", x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.RangeStats(150, 165, 105, 115, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("COUNT = %v, want 1", res.Count)
	}
	avg, err := res.Avg()
	if err != nil {
		t.Fatal(err)
	}
	if avg != 146 {
		t.Errorf("AVG = %v, want 146", avg)
	}
	if res.CellsRetrieved == 0 {
		t.Error("no PIR retrievals recorded")
	}
	// The servers saw only uniform subset vectors; count them.
	if got := len(db.Servers()[0].QueryLog()); got != res.CellsRetrieved {
		t.Errorf("server log has %d queries, want %d", got, res.CellsRetrieved)
	}
}

func TestStatPIRFullPopulation(t *testing.T) {
	d := dataset.Dataset2()
	x, y := trialGrid()
	db, err := BuildStatDB(d, "height", "weight", "blood_pressure", x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.RangeStats(150, 190, 60, 115, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 9 {
		t.Errorf("full-grid COUNT = %v, want 9", res.Count)
	}
	var wantSum float64
	for i := 0; i < d.Rows(); i++ {
		wantSum += d.Float(i, 2)
	}
	if res.Sum != wantSum {
		t.Errorf("full-grid SUM = %v, want %v", res.Sum, wantSum)
	}
}

func TestStatPIRValidation(t *testing.T) {
	d := dataset.Dataset2()
	x, y := trialGrid()
	if _, err := BuildStatDB(d, "nope", "weight", "blood_pressure", x, y, 2); err == nil {
		t.Error("accepted unknown attribute")
	}
	if _, err := BuildStatDB(d, "height", "weight", "blood_pressure", []float64{1}, y, 2); err == nil {
		t.Error("accepted single-edge axis")
	}
	if _, err := BuildStatDB(d, "height", "weight", "blood_pressure", []float64{2, 1}, y, 2); err == nil {
		t.Error("accepted unsorted edges")
	}
	db, err := BuildStatDB(d, "height", "weight", "blood_pressure", x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RangeStats(151, 165, 105, 115, 1); err == nil {
		t.Error("accepted non-grid-aligned bound")
	}
	if _, err := db.RangeStats(165, 165, 105, 115, 1); err == nil {
		t.Error("accepted empty rectangle")
	}
	var empty StatResult
	if _, err := empty.Avg(); err == nil {
		t.Error("AVG over empty region accepted")
	}
}

func TestITPIRCommunicationAccounting(t *testing.T) {
	blocks := testBlocks(128, 32, 2)
	s1, _ := NewITServer(blocks)
	s2, _ := NewITServer(blocks)
	client, _ := NewITClient([]*ITServer{s1, s2}, 3)
	bits := client.CommunicationBits()
	want := 2 * (128 + 32*8)
	if bits != want {
		t.Errorf("CommunicationBits = %d, want %d", bits, want)
	}
	// Sanity statement used in E-X4: for this shape, PIR communication is
	// below trivial download (n·blocksize bits).
	trivial := 128 * 32 * 8
	if bits >= trivial {
		t.Errorf("PIR communication %d not below trivial download %d", bits, trivial)
	}
	_ = fmt.Sprintf("%d", bits)
}

func TestITServerConcurrentAnswer(t *testing.T) {
	// HTTP replicas answer concurrently; the server must be race-free.
	blocks := testBlocks(64, 8, 11)
	srv, err := NewITServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	subset := make([]byte, 8)
	subset[0] = 0xff
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := srv.Answer(subset); err != nil {
					done <- err
					return
				}
				_ = srv.QueryLog()
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(srv.QueryLog()); got != 400 {
		t.Errorf("query log has %d entries, want 400", got)
	}
}

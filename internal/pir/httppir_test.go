package pir

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newHTTPPair(t *testing.T, blocks [][]byte) (urls []string, servers []*ITServer, cleanup func()) {
	t.Helper()
	var close1, close2 func()
	s1, err := NewITServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewITServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	h1 := httptest.NewServer(NewHTTPServer(s1))
	h2 := httptest.NewServer(NewHTTPServer(s2))
	close1, close2 = h1.Close, h2.Close
	return []string{h1.URL, h2.URL}, []*ITServer{s1, s2}, func() { close1(); close2() }
}

func TestHTTPPIRRoundTrip(t *testing.T) {
	blocks := testBlocks(40, 24, 4)
	urls, _, cleanup := newHTTPPair(t, blocks)
	defer cleanup()
	client, err := NewHTTPClient(urls, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if client.Blocks() != 40 {
		t.Errorf("Blocks = %d", client.Blocks())
	}
	for _, idx := range []int{0, 13, 39} {
		got, err := client.Retrieve(idx)
		if err != nil {
			t.Fatalf("Retrieve(%d): %v", idx, err)
		}
		if !bytes.Equal(got, blocks[idx]) {
			t.Errorf("block %d mismatch over HTTP", idx)
		}
	}
	if _, err := client.Retrieve(40); err == nil {
		t.Error("accepted out-of-range index")
	}
}

func TestHTTPPIRServerSeesOnlySubsets(t *testing.T) {
	blocks := testBlocks(32, 8, 5)
	urls, servers, cleanup := newHTTPPair(t, blocks)
	defer cleanup()
	client, err := NewHTTPClient(urls, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Retrieve(17); err != nil {
		t.Fatal(err)
	}
	// Each underlying server logged exactly one subset vector of the
	// right width — nothing else crossed the wire.
	for i, s := range servers {
		log := s.QueryLog()
		if len(log) != 1 {
			t.Errorf("server %d logged %d queries", i, len(log))
		}
		if len(log[0]) != 4 {
			t.Errorf("server %d subset width %d bytes, want 4", i, len(log[0]))
		}
	}
}

func TestHTTPPIRValidation(t *testing.T) {
	blocks := testBlocks(8, 4, 6)
	urls, _, cleanup := newHTTPPair(t, blocks)
	defer cleanup()
	if _, err := NewHTTPClient(urls[:1], nil, 1); err == nil {
		t.Error("accepted a single URL")
	}
	// Mismatched replicas are rejected at connect time.
	other, err := NewITServer(testBlocks(9, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	h3 := httptest.NewServer(NewHTTPServer(other))
	defer h3.Close()
	if _, err := NewHTTPClient([]string{urls[0], h3.URL}, nil, 1); err == nil {
		t.Error("accepted replicas with different shapes")
	}
	// Unreachable server.
	if _, err := NewHTTPClient([]string{urls[0], "http://127.0.0.1:1"}, nil, 1); err == nil {
		t.Error("accepted unreachable server")
	}
}

// TestHTTPServerStatusAndContentType pins the routing contract: JSON error
// bodies, 400 for bad input, 405 (with Allow) for a wrong method on a known
// path, 404 only for unknown paths.
func TestHTTPServerStatusAndContentType(t *testing.T) {
	srv, err := NewITServer(testBlocks(8, 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	h := httptest.NewServer(NewHTTPServer(srv))
	defer h.Close()

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantAllow  string
	}{
		{"meta", "GET", "/meta", "", 200, ""},
		{"pir ok", "POST", "/pir", `{"subset":"AA=="}`, 200, ""},
		{"meta wrong method", "POST", "/meta", "{}", 405, "GET"},
		{"pir wrong method", "GET", "/pir", "", 405, "POST"},
		{"pir malformed", "POST", "/pir", "{", 400, ""},
		{"pir wrong width", "POST", "/pir", `{"subset":"AAAA"}`, 400, ""},
		{"unknown path", "GET", "/nope", "", 404, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, h.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if tc.wantAllow != "" && resp.Header.Get("Allow") != tc.wantAllow {
				t.Errorf("Allow = %q, want %q", resp.Header.Get("Allow"), tc.wantAllow)
			}
			if tc.wantStatus >= 400 {
				var e struct {
					Error string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
					t.Errorf("error body not {\"error\": ...}: decode err %v", err)
				}
			}
		})
	}
}

func TestHTTPServerRejectsBadRequests(t *testing.T) {
	blocks := testBlocks(8, 4, 8)
	srv, _ := NewITServer(blocks)
	h := httptest.NewServer(NewHTTPServer(srv))
	defer h.Close()
	// Wrong path.
	resp, err := http.Get(h.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err = http.Post(h.URL+"/pir", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d", resp.StatusCode)
	}
	// Wrong subset width.
	resp, err = http.Post(h.URL+"/pir", "application/json", strings.NewReader(`{"subset":"AAAA"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong width = %d", resp.StatusCode)
	}
}

package pir

import (
	"bytes"
	"fmt"
	"math/big"
	"math/rand/v2"
	"sync"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
)

// bytewiseAnswer is the seed's byte-at-a-time reference kernel, kept here
// as the ground truth the word-packed parallel kernel must match
// bit-for-bit (cmd/benchpir times the same loop as its baseline).
func bytewiseAnswer(blocks [][]byte, subset []byte) []byte {
	out := make([]byte, len(blocks[0]))
	for i, b := range blocks {
		if subset[i>>3]>>(i&7)&1 == 1 {
			for j := range out {
				out[j] ^= b[j]
			}
		}
	}
	return out
}

// randomSubset draws a subset vector over n blocks with tail bits masked.
func randomSubset(n int, rng *rand.Rand) []byte {
	v := make([]byte, (n+7)/8)
	for j := range v {
		v[j] = byte(rng.Uint64())
	}
	if n%8 != 0 {
		v[len(v)-1] &= byte(1<<(n%8)) - 1
	}
	return v
}

// TestITAnswerMatchesBytewiseReference is the property test of the word
// kernel: on block sizes and block counts that are NOT multiples of 8
// (partial tail words, partial tail subset bytes), the packed kernel must
// match the byte-wise reference bit-for-bit at every worker count.
func TestITAnswerMatchesBytewiseReference(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(0))
	shapes := []struct{ n, size int }{
		{1, 1}, {7, 3}, {13, 13}, {37, 5}, {64, 8}, {100, 17},
		{513, 9}, {1025, 31}, // > one 512-index chunk, odd sizes
	}
	for _, sh := range shapes {
		blocks := testBlocks(sh.n, sh.size, uint64(sh.n*1000+sh.size))
		srv, err := NewITServer(blocks)
		if err != nil {
			t.Fatal(err)
		}
		rng := dataset.NewRand(uint64(sh.n) ^ 0xabc)
		for trial := 0; trial < 8; trial++ {
			subset := randomSubset(sh.n, rng)
			want := bytewiseAnswer(blocks, subset)
			for _, w := range []int{1, 2, 8} {
				par.SetWorkers(w)
				got, err := srv.Answer(subset)
				if err != nil {
					t.Fatalf("n=%d size=%d workers=%d: %v", sh.n, sh.size, w, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("n=%d size=%d workers=%d trial=%d: word kernel differs from byte-wise reference",
						sh.n, sh.size, w, trial)
				}
			}
		}
	}
}

// TestITAnswerBatchMatchesAnswer is the identity gate of the one-pass
// batched kernel: on odd shapes (partial tail words and subset bytes),
// AnswerBatch must return, per query, exactly the bytes Answer returns —
// at every worker count — while counting each query individually.
func TestITAnswerBatchMatchesAnswer(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(0))
	shapes := []struct{ n, size int }{
		{1, 1}, {13, 13}, {100, 17}, {1025, 31},
	}
	for _, sh := range shapes {
		blocks := testBlocks(sh.n, sh.size, uint64(sh.n*7777+sh.size))
		srv, err := NewITServer(blocks)
		if err != nil {
			t.Fatal(err)
		}
		rng := dataset.NewRand(uint64(sh.n) ^ 0xbadc)
		subsets := make([][]byte, 9)
		for i := range subsets {
			subsets[i] = randomSubset(sh.n, rng)
		}
		subsets[3] = make([]byte, (sh.n+7)/8) // include an empty subset
		want := make([][]byte, len(subsets))
		for i, sub := range subsets {
			if want[i], err = srv.Answer(sub); err != nil {
				t.Fatal(err)
			}
		}
		for _, w := range []int{1, 2, 8} {
			par.SetWorkers(w)
			before := srv.Answers()
			got, err := srv.AnswerBatch(subsets)
			if err != nil {
				t.Fatalf("n=%d size=%d workers=%d: %v", sh.n, sh.size, w, err)
			}
			for i := range subsets {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("n=%d size=%d workers=%d: batch answer %d differs from Answer", sh.n, sh.size, w, i)
				}
			}
			if srv.Answers() != before+int64(len(subsets)) {
				t.Errorf("batch counted %d answers, want %d", srv.Answers()-before, len(subsets))
			}
		}
	}
	// A malformed subset anywhere fails the whole batch before logging.
	srv, err := NewITServer(testBlocks(37, 4, 99))
	if err != nil {
		t.Fatal(err)
	}
	retainedBefore, _, _ := srv.QueryLogStats()
	bad := make([]byte, 5)
	bad[4] |= 1 << 6 // bit 38 of a 37-block database
	if _, err := srv.AnswerBatch([][]byte{make([]byte, 5), bad}); err == nil {
		t.Error("batch accepted a subset with tail bits set")
	}
	if retained, _, _ := srv.QueryLogStats(); retained != retainedBefore {
		t.Error("failed batch left queries in the log")
	}
	// The empty batch is a no-op.
	if out, err := srv.AnswerBatch(nil); err != nil || out != nil {
		t.Errorf("empty batch = %v, %v", out, err)
	}
}

// TestITAnswerRejectsTailBits pins the malformed-query contract: a subset
// vector with bits set beyond the block count must be rejected, not
// silently answered as if the tail were clear.
func TestITAnswerRejectsTailBits(t *testing.T) {
	srv, err := NewITServer(testBlocks(37, 4, 21))
	if err != nil {
		t.Fatal(err)
	}
	subset := make([]byte, 5)
	subset[0] = 1
	if _, err := srv.Answer(subset); err != nil {
		t.Fatalf("clean subset rejected: %v", err)
	}
	subset[4] |= 1 << 6 // bit 38 of a 37-block database
	if _, err := srv.Answer(subset); err == nil {
		t.Error("accepted subset with bits set beyond the block count")
	}
	// A full-width database has no tail bits to reject.
	srv8, err := NewITServer(testBlocks(8, 4, 22))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv8.Answer([]byte{0xff}); err != nil {
		t.Errorf("full final byte rejected on 8-block database: %v", err)
	}
}

// TestITServerQueryLogBounded pins the ring-buffer retention: the log
// keeps the newest DefaultQueryLogCap window and accounts for every drop.
func TestITServerQueryLogBounded(t *testing.T) {
	srv, err := NewITServer(testBlocks(16, 4, 23))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetQueryLogCap(10)
	total := 25
	for i := 0; i < total; i++ {
		subset := []byte{byte(i), 0}
		if _, err := srv.Answer(subset); err != nil {
			t.Fatal(err)
		}
	}
	retained, dropped, capacity := srv.QueryLogStats()
	if capacity != 10 || retained != 10 || dropped != int64(total-10) {
		t.Errorf("QueryLogStats = (%d, %d, %d), want (10, 15, 10)", retained, dropped, capacity)
	}
	log := srv.QueryLog()
	if len(log) != 10 {
		t.Fatalf("QueryLog has %d entries, want 10", len(log))
	}
	// Newest window, oldest first.
	for i, v := range log {
		if v[0] != byte(total-10+i) {
			t.Fatalf("log[%d][0] = %d, want %d (newest window)", i, v[0], total-10+i)
		}
	}
	if srv.Answers() != int64(total) {
		t.Errorf("Answers = %d, want %d", srv.Answers(), total)
	}
}

// TestITServerParallelHammer drives Answer and QueryLog from many
// goroutines with a multi-worker kernel underneath — the -race test of the
// lock-free word kernel plus the ring-buffered log.
func TestITServerParallelHammer(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(4))
	blocks := testBlocks(700, 24, 29)
	srv, err := NewITServer(blocks)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetQueryLogCap(64) // force drops under load
	const goroutines, iters = 8, 25
	want := make([][]byte, goroutines)
	subsets := make([][]byte, goroutines)
	rng := dataset.NewRand(31)
	for g := range subsets {
		subsets[g] = randomSubset(700, rng)
		want[g] = bytewiseAnswer(blocks, subsets[g])
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, err := srv.Answer(subsets[g])
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(got, want[g]) {
					errs[g] = fmt.Errorf("goroutine %d iter %d: wrong answer", g, i)
					return
				}
				_ = srv.QueryLog()
				_, _, _ = srv.QueryLogStats()
				_ = srv.WordsXORed()
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	retained, dropped, _ := srv.QueryLogStats()
	if int64(retained)+dropped != goroutines*iters {
		t.Errorf("retained %d + dropped %d != %d answers", retained, dropped, goroutines*iters)
	}
	if srv.WordsXORed() == 0 {
		t.Error("WordsXORed stayed 0 across answering load")
	}
}

// TestRetrieveBatchMatchesSequential pins the batched client: the batch
// must return exactly the requested blocks, identically at every worker
// count, and consume the same per-index randomness as sequential Retrieve.
func TestRetrieveBatchMatchesSequential(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(0))
	blocks := testBlocks(90, 11, 41)
	indices := []int{0, 89, 17, 17, 42, 3}
	var want [][]byte
	{
		s1, _ := NewITServer(blocks)
		s2, _ := NewITServer(blocks)
		client, err := NewITClient([]*ITServer{s1, s2}, 77)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range indices {
			b, err := client.Retrieve(idx)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, b)
		}
	}
	for _, w := range []int{1, 2, 8} {
		par.SetWorkers(w)
		s1, _ := NewITServer(blocks)
		s2, _ := NewITServer(blocks)
		client, err := NewITClient([]*ITServer{s1, s2}, 77)
		if err != nil {
			t.Fatal(err)
		}
		got, err := client.RetrieveBatch(indices)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range indices {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d: batch result %d differs from sequential Retrieve", w, i)
			}
			if !bytes.Equal(got[i], blocks[indices[i]]) {
				t.Fatalf("workers=%d: batch result %d is not block %d", w, i, indices[i])
			}
		}
		if len(s1.QueryLog()) != len(indices) {
			t.Errorf("workers=%d: server 0 logged %d queries, want %d", w, len(s1.QueryLog()), len(indices))
		}
	}
	// Out-of-range indices are rejected before any query is sent.
	s1, _ := NewITServer(blocks)
	s2, _ := NewITServer(blocks)
	client, _ := NewITClient([]*ITServer{s1, s2}, 5)
	if _, err := client.RetrieveBatch([]int{0, 90}); err == nil {
		t.Error("accepted out-of-range batch index")
	}
	if len(s1.QueryLog()) != 0 {
		t.Error("rejected batch still sent queries")
	}
}

// TestCPIRAnswerDeterministicAcrossWorkers pins the per-row parallel CPIR
// kernel: identical products at every worker count, and a bounded log.
func TestCPIRAnswerDeterministicAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(0))
	rng := dataset.NewRand(53)
	bits := make([]bool, 700) // 27×27 near-square, partial last row
	for i := range bits {
		bits[i] = rng.Uint64()&1 == 1
	}
	srv, err := NewCPIRServer(bits)
	if err != nil {
		t.Fatal(err)
	}
	_, cols := srv.Shape()
	n := big.NewInt(0).SetUint64(2*3*5*7*11*13*17*19*23 + 2) // any odd-ish modulus works for the kernel
	query := make([]*big.Int, cols)
	for c := range query {
		query[c] = big.NewInt(int64(2 + rng.Uint64()%1000))
	}
	var want []*big.Int
	for _, w := range []int{1, 2, 8} {
		par.SetWorkers(w)
		got, err := srv.Answer(query, n)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if w == 1 {
			want = got
			continue
		}
		for r := range got {
			if got[r].Cmp(want[r]) != 0 {
				t.Fatalf("workers=%d: row %d product differs from sequential", w, r)
			}
		}
	}
	retained, dropped, capacity := srv.QueryLogStats()
	if retained != 3 || dropped != 0 || capacity != DefaultQueryLogCap {
		t.Errorf("QueryLogStats = (%d, %d, %d), want (3, 0, %d)", retained, dropped, capacity, DefaultQueryLogCap)
	}
}

// TestKeywordLookupMany pins the batched keyword path: present keys come
// back correct, missing keys resolve locally without sending queries.
func TestKeywordLookupMany(t *testing.T) {
	entries := map[string][]byte{
		"hypertension": []byte("ICD-10 I10"),
		"aids":         []byte("ICD-10 B24"),
		"flu":          []byte("ICD-10 J11"),
	}
	db, err := NewKeywordDB(entries, 2)
	if err != nil {
		t.Fatal(err)
	}
	values, found, err := db.LookupMany([]string{"flu", "cancer", "aids"}, 61)
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || found[1] || !found[2] {
		t.Fatalf("found = %v, want [true false true]", found)
	}
	if string(values[0]) != "ICD-10 J11" || string(values[2]) != "ICD-10 B24" {
		t.Errorf("values = %q", values)
	}
	if got := len(db.Servers()[0].QueryLog()); got != 2 {
		t.Errorf("server logged %d queries, want 2 (missing key resolved locally)", got)
	}
}

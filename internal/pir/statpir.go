package pir

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"privacy3d/internal/dataset"
)

// StatDB is the PIR-backed statistical database of the paper's Section 3
// scenario ("assuming PIR protocols existed for those query types"): the
// owner publishes a public two-dimensional bucketing grid over two numeric
// attributes and serves, through replicated IT-PIR servers, one block per
// grid cell holding (COUNT, SUM(target)) of the records in that cell. A
// user can then evaluate COUNT and AVG over any grid-aligned rectangle by
// privately retrieving the covered cells — the servers never learn which
// region was queried. This realises user privacy; whether it violates
// respondent privacy depends solely on the data, which is exactly the
// paper's point.
type StatDB struct {
	xEdges, yEdges []float64
	servers        []*ITServer
}

const statBlockSize = 12 // uint32 count + float64 sum

// BuildStatDB aggregates dataset d on the grid defined by the sorted edge
// vectors (cells are [e_i, e_{i+1})) and replicates the cell table across
// numServers IT-PIR servers. Records outside the grid are ignored.
func BuildStatDB(d *dataset.Dataset, xAttr, yAttr, targetAttr string, xEdges, yEdges []float64, numServers int) (*StatDB, error) {
	xj, yj, tj := d.Index(xAttr), d.Index(yAttr), d.Index(targetAttr)
	if xj < 0 || yj < 0 || tj < 0 {
		return nil, fmt.Errorf("pir: unknown attribute among %q, %q, %q", xAttr, yAttr, targetAttr)
	}
	if len(xEdges) < 2 || len(yEdges) < 2 {
		return nil, fmt.Errorf("pir: each grid axis needs ≥ 2 edges")
	}
	if !sort.Float64sAreSorted(xEdges) || !sort.Float64sAreSorted(yEdges) {
		return nil, fmt.Errorf("pir: grid edges must be sorted")
	}
	nx, ny := len(xEdges)-1, len(yEdges)-1
	counts := make([]uint32, nx*ny)
	sums := make([]float64, nx*ny)
	for i := 0; i < d.Rows(); i++ {
		xi := cellOf(xEdges, d.Float(i, xj))
		yi := cellOf(yEdges, d.Float(i, yj))
		if xi < 0 || yi < 0 {
			continue
		}
		counts[xi*ny+yi]++
		sums[xi*ny+yi] += d.Float(i, tj)
	}
	blocks := make([][]byte, nx*ny)
	for c := range blocks {
		b := make([]byte, statBlockSize)
		binary.LittleEndian.PutUint32(b, counts[c])
		binary.LittleEndian.PutUint64(b[4:], math.Float64bits(sums[c]))
		blocks[c] = b
	}
	servers := make([]*ITServer, numServers)
	for s := range servers {
		srv, err := NewITServer(blocks)
		if err != nil {
			return nil, err
		}
		servers[s] = srv
	}
	return &StatDB{
		xEdges:  append([]float64(nil), xEdges...),
		yEdges:  append([]float64(nil), yEdges...),
		servers: servers,
	}, nil
}

func cellOf(edges []float64, v float64) int {
	if v < edges[0] || v >= edges[len(edges)-1] {
		return -1
	}
	// Rightmost edge ≤ v.
	i := sort.SearchFloat64s(edges, v)
	if i < len(edges) && edges[i] == v {
		return i
	}
	return i - 1
}

// Servers exposes the replicated servers (for query-log inspection).
func (db *StatDB) Servers() []*ITServer { return db.servers }

// Grid returns the public grid edges.
func (db *StatDB) Grid() (x, y []float64) {
	return append([]float64(nil), db.xEdges...), append([]float64(nil), db.yEdges...)
}

// StatResult is the outcome of a private range-statistics query.
type StatResult struct {
	Count float64
	Sum   float64
	// CellsRetrieved is the number of PIR retrievals spent.
	CellsRetrieved int
}

// Avg returns Sum/Count, or an error for an empty region.
func (r StatResult) Avg() (float64, error) {
	if r.Count == 0 {
		return 0, fmt.Errorf("pir: AVG over empty region")
	}
	return r.Sum / r.Count, nil
}

// RangeStats privately evaluates COUNT and SUM over the grid-aligned
// rectangle [xLo, xHi) × [yLo, yHi). The bounds must coincide with grid
// edges; otherwise an error is returned (a client rounding silently would
// misreport the predicate it evaluated).
func (db *StatDB) RangeStats(xLo, xHi, yLo, yHi float64, seed uint64) (StatResult, error) {
	var res StatResult
	x0, err := edgeIndex(db.xEdges, xLo)
	if err != nil {
		return res, err
	}
	x1, err := edgeIndex(db.xEdges, xHi)
	if err != nil {
		return res, err
	}
	y0, err := edgeIndex(db.yEdges, yLo)
	if err != nil {
		return res, err
	}
	y1, err := edgeIndex(db.yEdges, yHi)
	if err != nil {
		return res, err
	}
	if x0 >= x1 || y0 >= y1 {
		return res, fmt.Errorf("pir: empty rectangle")
	}
	client, err := NewITClient(db.servers, seed)
	if err != nil {
		return res, err
	}
	// Batch every covered cell through one concurrent retrieval instead of
	// paying k×cells sequential answer latencies; the fold below runs in
	// cell order, so Count and Sum are bit-identical to the sequential
	// loop at any worker count.
	ny := len(db.yEdges) - 1
	indices := make([]int, 0, (x1-x0)*(y1-y0))
	for xi := x0; xi < x1; xi++ {
		for yi := y0; yi < y1; yi++ {
			indices = append(indices, xi*ny+yi)
		}
	}
	blocks, err := client.RetrieveBatch(indices)
	if err != nil {
		return res, err
	}
	for _, block := range blocks {
		res.CellsRetrieved++
		res.Count += float64(binary.LittleEndian.Uint32(block))
		res.Sum += math.Float64frombits(binary.LittleEndian.Uint64(block[4:]))
	}
	return res, nil
}

func edgeIndex(edges []float64, v float64) (int, error) {
	i := sort.SearchFloat64s(edges, v)
	if i >= len(edges) || edges[i] != v {
		return 0, fmt.Errorf("pir: bound %g is not a grid edge", v)
	}
	return i, nil
}

package dp

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
)

func TestSensitivityRules(t *testing.T) {
	b := Bounds{Lo: -10, Hi: 30}
	if s, err := Sensitivity(Count, Bounds{}, 0); err != nil || s != 1 {
		t.Errorf("count sensitivity = %g, %v", s, err)
	}
	if s, err := Sensitivity(Sum, b, 5); err != nil || s != 30 {
		t.Errorf("sum sensitivity = %g, %v (want max(|-10|,|30|)=30)", s, err)
	}
	if s, err := Sensitivity(Mean, b, 8); err != nil || s != 5 {
		t.Errorf("mean sensitivity = %g, %v (want 40/8=5)", s, err)
	}
	// n < 1 clamps to 1 instead of dividing by zero.
	if s, err := Sensitivity(Mean, b, 0); err != nil || s != 40 {
		t.Errorf("mean sensitivity at n=0 = %g, %v", s, err)
	}
	for _, bad := range []Bounds{
		{Lo: math.Inf(-1), Hi: 1},
		{Lo: 0, Hi: math.NaN()},
		{Lo: 2, Hi: 1},
	} {
		if _, err := Sensitivity(Sum, bad, 1); err == nil {
			t.Errorf("Sensitivity accepted bounds %+v", bad)
		}
	}
}

func TestScaleCalibration(t *testing.T) {
	if s, err := (NoiseParams{Mechanism: Laplace, Sensitivity: 4, Epsilon: 2}).Scale(); err != nil || s != 2 {
		t.Errorf("laplace scale = %g, %v (want Δ/ε = 2)", s, err)
	}
	want := 4 * math.Sqrt(2*math.Log(1.25/1e-5)) / 2
	if s, err := (NoiseParams{Mechanism: Gaussian, Sensitivity: 4, Epsilon: 2, Delta: 1e-5}).Scale(); err != nil || math.Abs(s-want) > 1e-12 {
		t.Errorf("gaussian sigma = %g, %v (want %g)", s, err, want)
	}
	for _, bad := range []NoiseParams{
		{Mechanism: Laplace, Sensitivity: 1, Epsilon: 0},
		{Mechanism: Laplace, Sensitivity: -1, Epsilon: 1},
		{Mechanism: Gaussian, Sensitivity: 1, Epsilon: 1, Delta: 0},
		{Mechanism: Gaussian, Sensitivity: 1, Epsilon: 1, Delta: 1},
	} {
		if _, err := bad.Scale(); err == nil {
			t.Errorf("Scale accepted %+v", bad)
		}
	}
}

// TestInverseCDFs pins the samplers to their analytic quantiles and checks
// the endpoints stay finite (rand.Float64 can return exactly 0).
func TestInverseCDFs(t *testing.T) {
	if v := LaplaceInv(0.5, 3); v != 0 {
		t.Errorf("LaplaceInv median = %g", v)
	}
	// P(X ≤ b·ln 2) = 0.75 for Laplace(b).
	if v := LaplaceInv(0.75, 1); math.Abs(v-math.Ln2) > 1e-12 {
		t.Errorf("LaplaceInv(0.75, 1) = %g, want ln 2", v)
	}
	if v := LaplaceInv(0.25, 1); math.Abs(v+math.Ln2) > 1e-12 {
		t.Errorf("LaplaceInv(0.25, 1) = %g, want −ln 2", v)
	}
	if v := GaussianInv(0.5, 2); v != 0 {
		t.Errorf("GaussianInv median = %g", v)
	}
	// Φ⁻¹(0.975) ≈ 1.959964 for the standard normal.
	if v := GaussianInv(0.975, 1); math.Abs(v-1.9599639845400545) > 1e-9 {
		t.Errorf("GaussianInv(0.975, 1) = %g", v)
	}
	for _, u := range []float64{0, 1e-320, 1, math.Nextafter(1, 0)} {
		if v := LaplaceInv(u, 1); math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("LaplaceInv(%g) = %g, want finite", u, v)
		}
		if v := GaussianInv(u, 1); math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("GaussianInv(%g) = %g, want finite", u, v)
		}
	}
}

// TestNoiseDeterministicPerKey is the seeding contract: noise is a pure
// function of (seed, key, params) — identical on repetition, different
// across keys and seeds.
func TestNoiseDeterministicPerKey(t *testing.T) {
	p := NoiseParams{Mechanism: Laplace, Sensitivity: 1, Epsilon: 0.5}
	a, err := Noise(7, "alice\x00SELECT COUNT(*) WHERE TRUE", p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Noise(7, "alice\x00SELECT COUNT(*) WHERE TRUE", p)
	if a != b {
		t.Errorf("same (seed,key) drew %g then %g", a, b)
	}
	c, _ := Noise(7, "bob\x00SELECT COUNT(*) WHERE TRUE", p)
	d, _ := Noise(8, "alice\x00SELECT COUNT(*) WHERE TRUE", p)
	if a == c || a == d {
		t.Errorf("noise not keyed: alice/seed7=%g bob=%g seed8=%g", a, c, d)
	}
	if _, err := Noise(7, "k", NoiseParams{Mechanism: Laplace, Sensitivity: 1, Epsilon: 0}); err == nil {
		t.Error("Noise accepted epsilon = 0")
	}
}

// TestNoiseDistributionMoments sanity-checks the samplers statistically:
// over many keys the empirical standard deviation must approach the
// calibrated scale's (√2·b for Laplace, σ for Gaussian).
func TestNoiseDistributionMoments(t *testing.T) {
	const n = 20000
	lap := NoiseParams{Mechanism: Laplace, Sensitivity: 2, Epsilon: 1}   // b = 2, sd = 2√2
	gau := NoiseParams{Mechanism: Gaussian, Sensitivity: 1, Epsilon: 1, Delta: 1e-5} // σ ≈ 4.84
	var sumL, sumL2, sumG, sumG2 float64
	for i := 0; i < n; i++ {
		key := string(rune(i)) + "/moment"
		l, err := Noise(42, key, lap)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Noise(42, key, gau)
		if err != nil {
			t.Fatal(err)
		}
		sumL += l
		sumL2 += l * l
		sumG += g
		sumG2 += g * g
	}
	sdL := math.Sqrt(sumL2/n - (sumL/n)*(sumL/n))
	if want := 2 * math.Sqrt2; math.Abs(sdL-want)/want > 0.05 {
		t.Errorf("laplace empirical sd = %g, want ≈ %g", sdL, want)
	}
	sigma, _ := gau.Scale()
	sdG := math.Sqrt(sumG2/n - (sumG/n)*(sumG/n))
	if math.Abs(sdG-sigma)/sigma > 0.05 {
		t.Errorf("gaussian empirical sd = %g, want ≈ %g", sdG, sigma)
	}
	if math.Abs(sumL/n) > 0.1 || math.Abs(sumG/n)/sigma > 0.05 {
		t.Errorf("noise not centred: laplace mean %g, gaussian mean %g", sumL/n, sumG/n)
	}
}

func TestColumnBounds(t *testing.T) {
	d := dataset.New(
		dataset.Attribute{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
	)
	for _, v := range []float64{3, -1, 7, 2} {
		d.MustAppend(v)
	}
	if b := ColumnBounds(d, 0); b.Lo != -1 || b.Hi != 7 {
		t.Errorf("ColumnBounds = %+v", b)
	}
}

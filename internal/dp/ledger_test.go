package dp

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLedgerChargeAndRemaining(t *testing.T) {
	l, err := NewLedger(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Budget() != 1.0 || l.Remaining("alice", "d") != 1.0 {
		t.Fatal("fresh ledger state wrong")
	}
	rem, err := l.Charge("alice", "d", 0.25)
	if err != nil || rem != 0.75 {
		t.Fatalf("Charge = %g, %v", rem, err)
	}
	if l.Spent("alice", "d") != 0.25 {
		t.Errorf("Spent = %g", l.Spent("alice", "d"))
	}
	// Budgets are per (principal, dataset): neither bob nor another
	// dataset is affected.
	if l.Remaining("bob", "d") != 1.0 || l.Remaining("alice", "other") != 1.0 {
		t.Error("charge leaked across principals or datasets")
	}
	// Overdraw refuses, debits nothing, and carries the remaining hint.
	if _, err := l.Charge("alice", "d", 0.8); err == nil {
		t.Fatal("accepted overdraw")
	} else {
		var be *BudgetError
		if !errors.As(err, &be) || !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("overdraw error %T %v, want *BudgetError wrapping ErrBudgetExhausted", err, err)
		}
		if be.Remaining != 0.75 || be.Requested != 0.8 || be.Principal != "alice" {
			t.Errorf("BudgetError = %+v", be)
		}
	}
	if l.Remaining("alice", "d") != 0.75 {
		t.Error("refused charge must not debit")
	}
	// Exact exhaustion is allowed; the next charge is not.
	if rem, err := l.Charge("alice", "d", 0.75); err != nil || rem != 0 {
		t.Fatalf("exact exhaustion = %g, %v", rem, err)
	}
	if _, err := l.Charge("alice", "d", 1e-9); !errors.Is(err, ErrBudgetExhausted) {
		t.Error("post-exhaustion charge accepted")
	}
}

func TestLedgerValidation(t *testing.T) {
	if _, err := NewLedger(0); err == nil {
		t.Error("accepted zero budget")
	}
	if _, err := NewLedger(math.NaN()); err == nil {
		t.Error("accepted NaN budget")
	}
	l, _ := NewLedger(1)
	if _, err := l.Charge("", "d", 0.1); !errors.Is(err, ErrNoPrincipal) {
		t.Errorf("empty principal error = %v", err)
	}
	if _, err := l.Charge("alice", "d", 0); err == nil {
		t.Error("accepted zero charge")
	}
	if _, err := l.Charge("alice", "d", -1); err == nil {
		t.Error("accepted negative charge")
	}
}

// TestLedgerConcurrentDebitsNeverOverspend is the contention hammer the
// issue requires: many goroutines race check-and-debit against ONE
// principal's budget. Run under -race (make check does). Invariants:
// the successful charges sum to at most the budget (no overspend) and every
// successful charge is accounted (no debit lost) — the ledger's final
// spent figure equals the sum the winners observed.
func TestLedgerConcurrentDebitsNeverOverspend(t *testing.T) {
	const (
		goroutines = 32
		perG       = 200
		eps        = 0.01
		budget     = 7.0 // 700 grants out of 6400 attempts
	)
	l, err := NewLedger(budget)
	if err != nil {
		t.Fatal(err)
	}
	var granted, refused atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := l.Charge("alice", "d", eps); err == nil {
					granted.Add(1)
				} else if errors.Is(err, ErrBudgetExhausted) {
					refused.Add(1)
				} else {
					t.Errorf("unexpected charge error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	spent := l.Spent("alice", "d")
	if spent > budget {
		t.Fatalf("overspend: %g > budget %g", spent, budget)
	}
	wantSpent := float64(granted.Load()) * eps
	if math.Abs(spent-wantSpent) > 1e-9 {
		t.Fatalf("lost or duplicated debits: ledger spent %g, winners charged %g", spent, wantSpent)
	}
	if granted.Load()+refused.Load() != goroutines*perG {
		t.Fatalf("accounting hole: %d granted + %d refused != %d attempts",
			granted.Load(), refused.Load(), goroutines*perG)
	}
	// Demand far exceeded supply, so the budget must be exhausted to
	// within one quantum.
	if l.Remaining("alice", "d") >= eps {
		t.Errorf("budget not drained under contention: %g remaining", l.Remaining("alice", "d"))
	}
}

// TestLedgerConcurrentManyPrincipals exercises the stripes: distinct
// principals debit concurrently and each account stays exact.
func TestLedgerConcurrentManyPrincipals(t *testing.T) {
	const principals = 128
	l, err := NewLedger(1.0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < principals; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			name := "user-" + string(rune('a'+p%26)) + string(rune('0'+p/26))
			for i := 0; i < 10; i++ {
				if _, err := l.Charge(name, "d", 0.05); err != nil {
					t.Errorf("principal %s charge %d: %v", name, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < principals; p++ {
		name := "user-" + string(rune('a'+p%26)) + string(rune('0'+p/26))
		if got := l.Spent(name, "d"); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("principal %s spent %g, want 0.5", name, got)
		}
	}
	if got := len(l.Principals("d")); got != principals {
		t.Errorf("Principals lists %d, want %d", got, principals)
	}
	if got := len(l.Principals("other")); got != 0 {
		t.Errorf("Principals(other) = %d, want 0", got)
	}
}

package dp

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ErrBudgetExhausted is the sentinel matched (via errors.Is) by every
// budget-refusal the Ledger issues. The concrete error is a *BudgetError
// carrying the principal and the remaining ε, so callers can surface
// "remaining budget" hints without string-matching.
var ErrBudgetExhausted = errors.New("dp: epsilon budget exhausted")

// ErrNoPrincipal reports a debit attempt with an empty principal: budget
// accounting is per principal, so an unidentified caller cannot be charged
// — and therefore cannot be answered.
var ErrNoPrincipal = errors.New("dp: no principal identified for budget accounting")

// BudgetError is the typed refusal of a check-and-debit whose charge would
// overdraw the principal's budget. It wraps ErrBudgetExhausted.
type BudgetError struct {
	Principal string
	Dataset   string
	Requested float64 // the ε the query needed
	Remaining float64 // the ε still unspent
}

// Error renders the refusal with the hint callers surface to users.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("dp: principal %q has ε=%g remaining on dataset %q, query needs ε=%g",
		e.Principal, e.Remaining, e.Dataset, e.Requested)
}

// Unwrap makes errors.Is(err, ErrBudgetExhausted) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExhausted }

// ledgerShards is the stripe count of a Ledger. Budget state is a hash map
// guarded per stripe, so check-and-debit for distinct principals contends
// only 1/ledgerShards of the time; 64 stripes keep the hot path essentially
// uncontended at realistic core counts while costing ~4 KiB per ledger.
const ledgerShards = 64

// Ledger is the sharded per-(principal, dataset) ε-budget account book of
// a DP query server. Every answered query debits its ε cost atomically:
// the check (enough budget?) and the debit happen under one stripe lock,
// so concurrent queries can never jointly overspend a budget, and a
// refused query debits nothing.
//
// A Ledger is safe for concurrent use and is lock-striped: keys are
// distributed over 64 independently locked stripes, so budget accounting
// for millions of distinct principals does not serialize the server the
// way a single mutex (or the query-log lock) would.
type Ledger struct {
	budget float64
	shards [ledgerShards]ledgerShard
}

type ledgerShard struct {
	mu    sync.Mutex
	spent map[string]float64
}

// NewLedger creates a ledger granting every (principal, dataset) pair the
// same total ε budget. budget must be > 0.
func NewLedger(budget float64) (*Ledger, error) {
	if !(budget > 0) {
		return nil, fmt.Errorf("dp: ledger budget must be > 0, got %g", budget)
	}
	l := &Ledger{budget: budget}
	for i := range l.shards {
		l.shards[i].spent = map[string]float64{}
	}
	return l, nil
}

// Budget returns the per-principal total ε.
func (l *Ledger) Budget() float64 { return l.budget }

// key canonically joins principal and dataset; NUL never occurs in either
// (HTTP headers and flag values cannot carry it), so the join is unambiguous.
func key(principal, dataset string) string { return principal + "\x00" + dataset }

func (l *Ledger) shard(k string) *ledgerShard {
	h := fnv.New64a()
	h.Write([]byte(k))
	return &l.shards[h.Sum64()%ledgerShards]
}

// Charge atomically checks and debits eps from the (principal, dataset)
// budget. On success it returns the ε remaining after the debit. When the
// charge would overdraw the budget it debits nothing and returns a
// *BudgetError (errors.Is ErrBudgetExhausted); an empty principal returns
// ErrNoPrincipal; eps must be > 0.
func (l *Ledger) Charge(principal, dataset string, eps float64) (float64, error) {
	if principal == "" {
		return 0, ErrNoPrincipal
	}
	if !(eps > 0) {
		return 0, fmt.Errorf("dp: charge must be > 0, got %g", eps)
	}
	k := key(principal, dataset)
	s := l.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	spent := s.spent[k]
	// The comparison tolerates no floating slack: a budget of 1.0 admits
	// exactly ten ε=0.1 charges only if the running sum stays ≤ budget,
	// which accumulated rounding can break either way; what the ledger
	// guarantees is spent ≤ budget, never overspend.
	if spent+eps > l.budget {
		return 0, &BudgetError{Principal: principal, Dataset: dataset,
			Requested: eps, Remaining: l.budget - spent}
	}
	spent += eps
	s.spent[k] = spent
	return l.budget - spent, nil
}

// Remaining returns the unspent ε of (principal, dataset). A principal the
// ledger has never charged has the full budget remaining.
func (l *Ledger) Remaining(principal, dataset string) float64 {
	k := key(principal, dataset)
	s := l.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return l.budget - s.spent[k]
}

// Spent returns the ε already debited from (principal, dataset).
func (l *Ledger) Spent(principal, dataset string) float64 {
	return l.budget - l.Remaining(principal, dataset)
}

// Principals returns every principal the ledger has charged on the given
// dataset, sorted — the metrics layer registers one remaining-ε gauge per
// entry. The snapshot is taken stripe by stripe; it is consistent per
// stripe, which is all a scrape needs.
func (l *Ledger) Principals(dataset string) []string {
	suffix := "\x00" + dataset
	var out []string
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for k := range s.spent {
			if len(k) >= len(suffix) && k[len(k)-len(suffix):] == suffix {
				out = append(out, k[:len(k)-len(suffix)])
			}
		}
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

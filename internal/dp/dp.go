// Package dp implements differential privacy as an inference control for
// interactive statistical databases — the third classical family of the
// paper's Section 3 ("perturbing ... the answers to certain queries"),
// here with the modern calibrated-noise semantics: an answer to an
// aggregate query is released with Laplace or Gaussian noise scaled to the
// query's sensitivity, and every release debits a per-principal ε budget
// (Wang et al. ground the ε semantics via identifiability and
// mutual-information privacy; Sankar et al. the privacy/utility
// accounting).
//
// Everything is deterministic by construction: noise is drawn by inverse
// transform sampling over the repository's seeded PCG rng plumbing
// (dataset.NewRand), and the uniform variate is derived from a hash of
// (seed, noise key) rather than from a shared stream — so the same seed
// reproduces byte-identical perturbed answers regardless of request
// interleaving or worker count. The budget Ledger is lock-striped so
// concurrent check-and-debit from many principals does not serialize the
// server.
package dp

import (
	"fmt"
	"hash/fnv"
	"math"

	"privacy3d/internal/dataset"
)

// Mechanism selects the noise distribution of a release.
type Mechanism int

const (
	// Laplace is the ε-DP Laplace mechanism: noise ~ Lap(Δ/ε).
	Laplace Mechanism = iota
	// Gaussian is the (ε,δ)-DP Gaussian mechanism:
	// noise ~ N(0, σ²) with σ = Δ·√(2·ln(1.25/δ))/ε.
	Gaussian
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case Laplace:
		return "laplace"
	case Gaussian:
		return "gaussian"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Aggregate is a query aggregate the sensitivity rules cover.
type Aggregate int

const (
	// Count is COUNT(*): adding or removing one record changes the answer
	// by at most 1.
	Count Aggregate = iota
	// Sum is SUM(attr) over an attribute bounded to [Lo, Hi]: one record
	// contributes at most max(|Lo|, |Hi|).
	Sum
	// Mean is AVG(attr) over an attribute bounded to [Lo, Hi] and a query
	// set of n records: one substitution moves the mean by at most
	// (Hi−Lo)/n.
	Mean
)

// String names the aggregate.
func (a Aggregate) String() string {
	switch a {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Mean:
		return "mean"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Bounds is the public value domain of one attribute. DP sensitivity is
// only finite for bounded attributes; the bounds must be treated as domain
// knowledge (schema metadata), not recomputed from live data per query —
// the server derives them once at construction.
type Bounds struct {
	Lo, Hi float64
}

// Valid reports whether the bounds describe a non-empty interval.
func (b Bounds) Valid() bool {
	return !math.IsNaN(b.Lo) && !math.IsNaN(b.Hi) &&
		!math.IsInf(b.Lo, 0) && !math.IsInf(b.Hi, 0) && b.Lo <= b.Hi
}

// Width returns Hi − Lo.
func (b Bounds) Width() float64 { return b.Hi - b.Lo }

// Sensitivity derives the L1 sensitivity Δ of an aggregate over an
// attribute bounded to b, for a query set of n records:
//
//	count: Δ = 1
//	sum:   Δ = max(|Lo|, |Hi|)
//	mean:  Δ = (Hi − Lo)/max(n, 1)
//
// The mean rule is the bounded-mean sensitivity at the released query-set
// size; the query-set size itself is treated as public (it is separately
// obtainable through a COUNT release), which is the standard practical
// compromise documented in DESIGN.md.
func Sensitivity(a Aggregate, b Bounds, n int) (float64, error) {
	if a == Count {
		return 1, nil
	}
	if !b.Valid() {
		return 0, fmt.Errorf("dp: %s needs finite attribute bounds, got [%g, %g]", a, b.Lo, b.Hi)
	}
	switch a {
	case Sum:
		return math.Max(math.Abs(b.Lo), math.Abs(b.Hi)), nil
	case Mean:
		if n < 1 {
			n = 1
		}
		return b.Width() / float64(n), nil
	default:
		return 0, fmt.Errorf("dp: unknown aggregate %v", a)
	}
}

// ColumnBounds derives the public bounds of numeric column j of d. This is
// meant to run once, against the dataset the owner decides to serve — the
// bounds become fixed schema metadata for the lifetime of the server, so
// they do not leak per-query information.
func ColumnBounds(d *dataset.Dataset, j int) Bounds {
	b := Bounds{Lo: math.Inf(1), Hi: math.Inf(-1)}
	for i := 0; i < d.Rows(); i++ {
		v := d.Float(i, j)
		if v < b.Lo {
			b.Lo = v
		}
		if v > b.Hi {
			b.Hi = v
		}
	}
	return b
}

// --- calibrated noise ----------------------------------------------------

// NoiseParams calibrates one release: mechanism, sensitivity and the
// privacy parameters.
type NoiseParams struct {
	Mechanism   Mechanism
	Sensitivity float64
	Epsilon     float64
	Delta       float64 // only used by Gaussian
}

// Scale returns the noise scale of the calibrated mechanism: the Laplace
// scale b = Δ/ε, or the Gaussian σ = Δ·√(2·ln(1.25/δ))/ε.
func (p NoiseParams) Scale() (float64, error) {
	if p.Epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be > 0, got %g", p.Epsilon)
	}
	if p.Sensitivity < 0 || math.IsNaN(p.Sensitivity) || math.IsInf(p.Sensitivity, 0) {
		return 0, fmt.Errorf("dp: sensitivity must be finite and ≥ 0, got %g", p.Sensitivity)
	}
	switch p.Mechanism {
	case Laplace:
		return p.Sensitivity / p.Epsilon, nil
	case Gaussian:
		if p.Delta <= 0 || p.Delta >= 1 {
			return 0, fmt.Errorf("dp: gaussian mechanism needs 0 < delta < 1, got %g", p.Delta)
		}
		return p.Sensitivity * math.Sqrt(2*math.Log(1.25/p.Delta)) / p.Epsilon, nil
	default:
		return 0, fmt.Errorf("dp: unknown mechanism %v", p.Mechanism)
	}
}

// LaplaceInv is the inverse CDF of the zero-mean Laplace distribution with
// scale b, evaluated at u ∈ (0,1). Inverse transform sampling through this
// function is what keeps releases reproducible: the noise is a pure
// function of the uniform variate.
func LaplaceInv(u, b float64) float64 {
	u = clampOpen01(u) - 0.5
	return -b * math.Copysign(math.Log(1-2*math.Abs(u)), -u)
}

// GaussianInv is the inverse CDF of the zero-mean normal distribution with
// standard deviation sigma, evaluated at u ∈ (0,1).
func GaussianInv(u, sigma float64) float64 {
	return sigma * math.Sqrt2 * math.Erfinv(2*clampOpen01(u)-1)
}

// clampOpen01 nudges u off the endpoints so the inverse CDFs stay finite:
// rand.Float64 can return exactly 0, whose preimage is ±∞. The margin is
// 1e-15 — not smaller — because 1−2|u−1/2| cancels catastrophically near
// the endpoints (1−2·(1/2−1e-300) rounds to exactly 1, then to log(0));
// the cost is truncating the noise tail at ≈ 34 scale units, far beyond
// any answer magnitude the mechanisms calibrate for.
func clampOpen01(u float64) float64 {
	const margin = 1e-15
	if u < margin {
		return margin
	}
	if u > 1-margin {
		return 1 - margin
	}
	return u
}

// Noise draws the calibrated noise for one release, keyed on (seed, key).
// The key must canonically identify the release — the server uses
// "principal\x00query" — so that the same (seed, principal, query) triple
// always yields the same perturbed answer: repeating a query re-releases
// the identical value (averaging attacks gain nothing) and answers are
// byte-identical across request interleavings and worker counts.
func Noise(seed uint64, key string, p NoiseParams) (float64, error) {
	scale, err := p.Scale()
	if err != nil {
		return 0, err
	}
	u := uniform(seed, key)
	switch p.Mechanism {
	case Gaussian:
		return GaussianInv(u, scale), nil
	default:
		return LaplaceInv(u, scale), nil
	}
}

// uniform derives the release's uniform variate: the (seed, key) pair is
// hashed into a fresh PCG stream (the repository's standard rng plumbing)
// and the first draw is taken. A fresh stream per key — rather than one
// shared stream — is the seeding contract that makes answers independent
// of request order.
func uniform(seed uint64, key string) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return dataset.NewRand(seed ^ h.Sum64()).Float64()
}

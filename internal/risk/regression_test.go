package risk

import (
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/microagg"
	"privacy3d/internal/noise"
)

func TestRegressionUtilityIdentity(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 400, Seed: 5})
	qi := d.QuasiIdentifiers()
	bp := d.Index("blood_pressure")
	u, err := MeasureRegressionUtility(d, d.Clone(), qi, bp)
	if err != nil {
		t.Fatal(err)
	}
	if u.CoefDistance != 0 {
		t.Errorf("identity coefficient distance = %v", u.CoefDistance)
	}
	if u.R2Original != u.R2Masked {
		t.Error("identity should preserve R²")
	}
}

func TestRegressionUtilityOrdersMaskings(t *testing.T) {
	// Microaggregation (k=3) preserves the regression structure far better
	// than heavy noise.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 600, Seed: 7})
	qi := d.QuasiIdentifiers()
	bp := d.Index("blood_pressure")
	masked, _, err := microagg.Mask(d, microagg.NewOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := noise.AddUncorrelated(d, qi, 2.0, dataset.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	um, err := MeasureRegressionUtility(d, masked, qi, bp)
	if err != nil {
		t.Fatal(err)
	}
	un, err := MeasureRegressionUtility(d, noisy, qi, bp)
	if err != nil {
		t.Fatal(err)
	}
	if um.CoefDistance >= un.CoefDistance {
		t.Errorf("microaggregation coef distance %v should beat heavy noise %v",
			um.CoefDistance, un.CoefDistance)
	}
	// Heavy noise attenuates the slope → R² collapses.
	if un.R2Masked >= um.R2Masked {
		t.Errorf("noisy R² %v should be below microaggregated R² %v", un.R2Masked, um.R2Masked)
	}
}

func TestRegressionUtilityValidation(t *testing.T) {
	d := dataset.Dataset1()
	if _, err := MeasureRegressionUtility(d, d.Select([]int{0}), []int{0}, 2); err == nil {
		t.Error("accepted row mismatch")
	}
	if _, err := MeasureRegressionUtility(d, d, nil, 2); err == nil {
		t.Error("accepted no regressors")
	}
}

package risk

import (
	"fmt"
	"math"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
	"privacy3d/internal/stats"
)

// Probabilistic record linkage in the Fellegi–Sunter tradition: the intruder
// compares every (original, masked) record pair on per-attribute agreement,
// fits the match/non-match mixture with EM (without using the true
// correspondence), and links each original record to the masked record with
// the highest match weight. It complements DistanceLinkage: distance-based
// linkage is the geometric attack, probabilistic linkage the statistical
// one; SDC evaluation practice reports the stronger of the two.
//
// The n² agreement scan, the EM expectation step and the final linking pass
// all run on the internal/par pool, chunked over original records. EM
// partial sums are reduced in fixed chunk order, so the fitted mixture —
// and therefore the report — is bit-identical for every worker count.

// ProbLinkageConfig parameterises ProbabilisticLinkage.
type ProbLinkageConfig struct {
	// Tolerance is the per-attribute agreement threshold in standard
	// deviations of the original column (default 0.1).
	Tolerance float64
	// MaxIter bounds the EM iterations (default 50).
	MaxIter int
}

// emPartial accumulates one chunk's expectation-step sums.
type emPartial struct {
	sumG, sumU     float64
	gAgree, uAgree []float64
}

// ProbabilisticLinkage runs the attack over the given numeric columns.
// It returns the same report shape as DistanceLinkage.
func ProbabilisticLinkage(original, masked *dataset.Dataset, cols []int, cfg ProbLinkageConfig) (LinkageReport, error) {
	var rep LinkageReport
	if original.Rows() != masked.Rows() || original.Rows() == 0 {
		return rep, fmt.Errorf("risk: datasets must be non-empty with equal rows")
	}
	if len(cols) == 0 {
		return rep, fmt.Errorf("risk: no linkage columns")
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	n := original.Rows()
	p := len(cols)
	o := original.NumericFlat(cols)
	m := masked.NumericFlat(cols)
	tol := make([]float64, p)
	for k, c := range cols {
		sd := stats.StdDev(original.NumColumn(c))
		if sd == 0 {
			sd = 1
		}
		tol[k] = cfg.Tolerance * sd
	}
	// Agreement patterns for all pairs, packed as bit masks (p ≤ 32).
	if p > 32 {
		return rep, fmt.Errorf("risk: probabilistic linkage supports ≤ 32 columns, got %d", p)
	}
	pool := par.Default()
	agree := make([]uint32, n*n)
	mData := m.Data()
	pool.ForEachChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			oi := o.Row(i)
			out := agree[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				mj := mData[j*p : j*p+p]
				var mask uint32
				for k := 0; k < p; k++ {
					if math.Abs(oi[k]-mj[k]) <= tol[k] {
						mask |= 1 << k
					}
				}
				out[j] = mask
			}
		}
	})
	// EM over the mixture of match / non-match pair classes. The E-step
	// fans out over chunks of original records (n pairs each); partials
	// merge in chunk order for determinism.
	mProb := make([]float64, p) // P(agree_k | match)
	uProb := make([]float64, p) // P(agree_k | non-match)
	for k := 0; k < p; k++ {
		mProb[k] = 0.9
		uProb[k] = 0.1
	}
	lambda := 1 / float64(n) // prior match prevalence: n matches among n² pairs
	total := float64(len(agree))
	for iter := 0; iter < cfg.MaxIter; iter++ {
		parts := par.MapChunks(pool, n, func(lo, hi int) emPartial {
			pt := emPartial{gAgree: make([]float64, p), uAgree: make([]float64, p)}
			for _, mask := range agree[lo*n : hi*n] {
				pm, pu := lambda, 1-lambda
				for k := 0; k < p; k++ {
					if mask>>k&1 == 1 {
						pm *= mProb[k]
						pu *= uProb[k]
					} else {
						pm *= 1 - mProb[k]
						pu *= 1 - uProb[k]
					}
				}
				g := pm / (pm + pu + 1e-300)
				pt.sumG += g
				pt.sumU += 1 - g
				for k := 0; k < p; k++ {
					if mask>>k&1 == 1 {
						pt.gAgree[k] += g
						pt.uAgree[k] += 1 - g
					}
				}
			}
			return pt
		})
		var sumG, sumU float64
		gSumAgree := make([]float64, p)
		uSumAgree := make([]float64, p)
		for _, pt := range parts {
			sumG += pt.sumG
			sumU += pt.sumU
			for k := 0; k < p; k++ {
				gSumAgree[k] += pt.gAgree[k]
				uSumAgree[k] += pt.uAgree[k]
			}
		}
		newLambda := sumG / total
		moved := math.Abs(newLambda - lambda)
		lambda = clampProb(newLambda)
		for k := 0; k < p; k++ {
			nm := clampProb(gSumAgree[k] / (sumG + 1e-300))
			nu := clampProb(uSumAgree[k] / (sumU + 1e-300))
			moved += math.Abs(nm-mProb[k]) + math.Abs(nu-uProb[k])
			mProb[k], uProb[k] = nm, nu
		}
		if moved < 1e-6 {
			break
		}
	}
	// Link: per original record, pick the masked record(s) with max weight.
	weights := make([]float64, p*2)
	for k := 0; k < p; k++ {
		weights[2*k] = math.Log((mProb[k] + 1e-12) / (uProb[k] + 1e-12))           // agree
		weights[2*k+1] = math.Log((1 - mProb[k] + 1e-12) / (1 - uProb[k] + 1e-12)) // disagree
	}
	const eps = 1e-9
	contrib := make([]float64, n)
	pool.ForEachChunk(n, func(lo, hi int) {
		ties := make([]int, 0, 32) // per-chunk buffer, reused across records
		for i := lo; i < hi; i++ {
			row := agree[i*n : (i+1)*n]
			best := math.Inf(-1)
			ties = ties[:0]
			for j, mask := range row {
				var w float64
				for k := 0; k < p; k++ {
					if mask>>k&1 == 1 {
						w += weights[2*k]
					} else {
						w += weights[2*k+1]
					}
				}
				switch {
				case w > best+eps:
					best = w
					ties = ties[:0]
					ties = append(ties, j)
				case w >= best-eps:
					ties = append(ties, j)
				}
			}
			for _, j := range ties {
				if j == i {
					contrib[i] = 1 / float64(len(ties))
				}
			}
		}
	})
	for _, c := range contrib {
		rep.Linked += c
	}
	rep.Attacked = n
	rep.Rate = rep.Linked / float64(rep.Attacked)
	return rep, nil
}

func clampProb(v float64) float64 {
	const lo, hi = 1e-6, 1 - 1e-6
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

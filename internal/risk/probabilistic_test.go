package risk

import (
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/noise"
)

func TestProbabilisticLinkageIdentity(t *testing.T) {
	// Four quasi-identifiers and a tight tolerance: full-agreement ties
	// between distinct respondents are essentially impossible, so the
	// unmasked release links perfectly.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 120, Seed: 2, ExtraQI: 2})
	rep, err := ProbabilisticLinkage(d, d.Clone(), d.QuasiIdentifiers(), ProbLinkageConfig{Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rate < 0.95 {
		t.Errorf("identity-mask probabilistic linkage = %v, want ≈ 1", rep.Rate)
	}
}

func TestProbabilisticLinkageDegradesWithNoise(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 150, Seed: 3, ExtraQI: 2})
	cols := d.QuasiIdentifiers()
	rate := func(amp float64) float64 {
		m, err := noise.AddUncorrelated(d, cols, amp, dataset.NewRand(5))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ProbabilisticLinkage(d, m, cols, ProbLinkageConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Rate
	}
	light, heavy := rate(0.02), rate(2.0)
	if heavy >= light {
		t.Errorf("probabilistic linkage should fall with noise: %v (light) vs %v (heavy)", light, heavy)
	}
	if light < 0.5 {
		t.Errorf("light-noise linkage = %v, want high", light)
	}
}

func TestProbabilisticLinkageFindsLinksDistanceMisses(t *testing.T) {
	// One column is wrecked with enormous noise while the others stay
	// clean. EM should learn that the wrecked column has u ≈ m (no
	// discriminating power) and still link via the clean columns.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 100, Seed: 7, ExtraQI: 2})
	cols := d.QuasiIdentifiers()
	m, err := noise.AddUncorrelated(d, cols[:1], 50, dataset.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProbabilisticLinkage(d, m, cols, ProbLinkageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rate < 0.8 {
		t.Errorf("probabilistic linkage = %v despite 3 clean columns", rep.Rate)
	}
}

func TestProbabilisticLinkageValidation(t *testing.T) {
	d := dataset.Dataset1()
	if _, err := ProbabilisticLinkage(d, d.Select([]int{0}), d.QuasiIdentifiers(), ProbLinkageConfig{}); err == nil {
		t.Error("accepted row mismatch")
	}
	if _, err := ProbabilisticLinkage(d, d, nil, ProbLinkageConfig{}); err == nil {
		t.Error("accepted empty columns")
	}
	wide := make([]int, 33)
	if _, err := ProbabilisticLinkage(d, d, wide, ProbLinkageConfig{}); err == nil {
		t.Error("accepted > 32 columns")
	}
}

// Package risk implements the disclosure-risk and information-loss metrics
// used to score maskings empirically: distance-based record linkage,
// interval disclosure, and the IL1s / moment-based information-loss measures
// of the SDC literature (Domingo-Ferrer & Torra; Hundepool et al., the
// paper's [17]). The three-dimensional evaluator in internal/core is built
// on these measurements.
package risk

import (
	"fmt"
	"math"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// LinkageReport is the outcome of a distance-based record-linkage attack.
type LinkageReport struct {
	// Linked is the expected number of correct original→masked matches,
	// counting a match among t equidistant candidates as 1/t (the
	// intruder guesses uniformly among ties).
	Linked float64
	// Rate is Linked / number of attacked records.
	Rate float64
	// Attacked is the number of records attacked.
	Attacked int
}

// DistanceLinkage runs the standard distance-based record-linkage attack of
// the SDC evaluation framework: the intruder holds the original
// quasi-identifier values (external identified data) and links each original
// record to the nearest masked record in standardised space. A link is
// correct when the true counterpart is among the nearest candidates; ties
// count fractionally.
//
// original and masked must have the same rows in the same order, and cols
// must be numeric in both.
func DistanceLinkage(original, masked *dataset.Dataset, cols []int) (LinkageReport, error) {
	var rep LinkageReport
	if original.Rows() != masked.Rows() {
		return rep, fmt.Errorf("risk: original has %d rows, masked %d", original.Rows(), masked.Rows())
	}
	if original.Rows() == 0 {
		return rep, fmt.Errorf("risk: empty dataset")
	}
	if len(cols) == 0 {
		return rep, fmt.Errorf("risk: no linkage columns")
	}
	o := original.NumericMatrix(cols)
	m := masked.NumericMatrix(cols)
	// Standardise both on the original's moments so distances are
	// comparable across attributes.
	_, means, sds := stats.Standardize(o)
	std := func(row []float64) []float64 {
		z := make([]float64, len(row))
		for j, v := range row {
			z[j] = v - means[j]
			if sds[j] > 0 {
				z[j] /= sds[j]
			}
		}
		return z
	}
	zm := make([][]float64, len(m))
	for i, row := range m {
		zm[i] = std(row)
	}
	const eps = 1e-12
	for i, row := range o {
		zo := std(row)
		best := math.Inf(1)
		var ties []int
		for t, cand := range zm {
			d := stats.SquaredDist(zo, cand)
			switch {
			case d < best-eps:
				best = d
				ties = ties[:0]
				ties = append(ties, t)
			case d <= best+eps:
				ties = append(ties, t)
			}
		}
		for _, t := range ties {
			if t == i {
				rep.Linked += 1 / float64(len(ties))
			}
		}
		rep.Attacked++
	}
	rep.Rate = rep.Linked / float64(rep.Attacked)
	return rep, nil
}

// IntervalDisclosure returns the fraction of masked numeric values that fall
// within ±p percent of the original value — the "interval disclosure" risk
// measure: even without an exact link, a narrow interval around the released
// value discloses the original.
func IntervalDisclosure(original, masked *dataset.Dataset, cols []int, p float64) (float64, error) {
	if original.Rows() != masked.Rows() || original.Rows() == 0 {
		return 0, fmt.Errorf("risk: datasets must be non-empty with equal rows")
	}
	if p <= 0 {
		return 0, fmt.Errorf("risk: interval width must be > 0, got %g", p)
	}
	var hits, total float64
	for _, j := range cols {
		oc := original.NumColumn(j)
		mc := masked.NumColumn(j)
		sd := stats.StdDev(oc)
		for i := range oc {
			// Interval of half-width p% of the attribute spread.
			if math.Abs(mc[i]-oc[i]) <= p/100*sd {
				hits++
			}
			total++
		}
	}
	return hits / total, nil
}

// MeanRecordDistance returns the average standardised Euclidean distance
// between each original record and its masked counterpart over cols — a raw
// measure of how far the released records sit from the owner's true data
// (large distance = the owner has given little away).
func MeanRecordDistance(original, masked *dataset.Dataset, cols []int) (float64, error) {
	if original.Rows() != masked.Rows() || original.Rows() == 0 {
		return 0, fmt.Errorf("risk: datasets must be non-empty with equal rows")
	}
	o := original.NumericMatrix(cols)
	m := masked.NumericMatrix(cols)
	sds := make([]float64, len(cols))
	for j, c := range cols {
		sds[j] = stats.StdDev(original.NumColumn(c))
	}
	var s float64
	for i := range o {
		var d float64
		for j := range cols {
			diff := o[i][j] - m[i][j]
			if sds[j] > 0 {
				diff /= sds[j]
			}
			d += diff * diff
		}
		s += math.Sqrt(d)
	}
	return s / float64(len(o)), nil
}

// Package risk implements the disclosure-risk and information-loss metrics
// used to score maskings empirically: distance-based record linkage,
// interval disclosure, and the IL1s / moment-based information-loss measures
// of the SDC literature (Domingo-Ferrer & Torra; Hundepool et al., the
// paper's [17]). The three-dimensional evaluator in internal/core is built
// on these measurements.
//
// The O(n²) attack kernels run on the internal/par worker pool over flat
// row-major matrices (stats.Flat). Per-record contributions are written to
// index-owned slots and folded sequentially, so every report is
// bit-identical for any worker count — including workers=1, which is the
// sequential reference the property tests compare against.
package risk

import (
	"context"
	"fmt"
	"math"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
	"privacy3d/internal/stats"
)

// LinkageReport is the outcome of a distance-based record-linkage attack.
type LinkageReport struct {
	// Linked is the expected number of correct original→masked matches,
	// counting a match among t equidistant candidates as 1/t (the
	// intruder guesses uniformly among ties).
	Linked float64
	// Rate is Linked / number of attacked records.
	Rate float64
	// Attacked is the number of records attacked.
	Attacked int
}

// DistanceLinkage runs the standard distance-based record-linkage attack of
// the SDC evaluation framework: the intruder holds the original
// quasi-identifier values (external identified data) and links each original
// record to the nearest masked record in standardised space. A link is
// correct when the true counterpart is among the nearest candidates; ties
// count fractionally.
//
// original and masked must have the same rows in the same order, and cols
// must be numeric in both. Original records are attacked in parallel on the
// package-wide worker pool; each worker keeps a private tie buffer and
// writes only its own records' match contributions, which are then summed
// in record order, so the report does not depend on the worker count.
func DistanceLinkage(original, masked *dataset.Dataset, cols []int) (LinkageReport, error) {
	return DistanceLinkageCtx(context.Background(), original, masked, cols)
}

// DistanceLinkageCtx is DistanceLinkage with cooperative cancellation: once
// ctx is done no further chunk of original records is attacked and ctx.Err()
// is returned — the hook that lets a dropped HTTP client stop an in-flight
// O(n²) linkage scan.
func DistanceLinkageCtx(ctx context.Context, original, masked *dataset.Dataset, cols []int) (LinkageReport, error) {
	var rep LinkageReport
	if original.Rows() != masked.Rows() {
		return rep, fmt.Errorf("risk: original has %d rows, masked %d", original.Rows(), masked.Rows())
	}
	if original.Rows() == 0 {
		return rep, fmt.Errorf("risk: empty dataset")
	}
	if len(cols) == 0 {
		return rep, fmt.Errorf("risk: no linkage columns")
	}
	o := original.NumericFlat(cols)
	m := masked.NumericFlat(cols)
	// Standardise both on the original's moments so distances are
	// comparable across attributes.
	zo, means, sds := stats.StandardizeFlat(o)
	pool := par.Default()
	zm := stats.NewFlat(m.Rows(), m.Cols())
	if err := pool.ForEachChunkCtx(ctx, m.Rows(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src, dst := m.Row(i), zm.Row(i)
			for j, v := range src {
				dst[j] = v - means[j]
				if sds[j] > 0 {
					dst[j] /= sds[j]
				}
			}
		}
	}); err != nil {
		return rep, err
	}
	const eps = 1e-12
	n := o.Rows()
	p := zm.Cols()
	zmData := zm.Data()
	// contrib[i] is record i's expected correct-match mass (0 or 1/ties).
	contrib := make([]float64, n)
	if err := pool.ForEachChunkCtx(ctx, n, func(lo, hi int) {
		// One tie buffer per chunk, reused across its records — the inner
		// loop never allocates.
		ties := make([]int, 0, 32)
		for i := lo; i < hi; i++ {
			zr := zo.Row(i)
			best := math.Inf(1)
			ties = ties[:0]
			for t := 0; t < n; t++ {
				cand := zmData[t*p : t*p+p]
				var d float64
				for j, v := range zr {
					diff := v - cand[j]
					d += diff * diff
				}
				switch {
				case d < best-eps:
					best = d
					ties = ties[:0]
					ties = append(ties, t)
				case d <= best+eps:
					ties = append(ties, t)
				}
			}
			for _, t := range ties {
				if t == i {
					contrib[i] = 1 / float64(len(ties))
				}
			}
		}
	}); err != nil {
		return rep, err
	}
	for _, c := range contrib {
		rep.Linked += c
	}
	rep.Attacked = n
	rep.Rate = rep.Linked / float64(rep.Attacked)
	return rep, nil
}

// IntervalDisclosure returns the fraction of masked numeric values that fall
// within ±p percent of the original value — the "interval disclosure" risk
// measure: even without an exact link, a narrow interval around the released
// value discloses the original. Columns are scanned in parallel chunks; the
// per-chunk hit counts are integers, so the result is exact and
// worker-count independent.
func IntervalDisclosure(original, masked *dataset.Dataset, cols []int, p float64) (float64, error) {
	return IntervalDisclosureCtx(context.Background(), original, masked, cols, p)
}

// IntervalDisclosureCtx is IntervalDisclosure with cooperative cancellation
// at chunk granularity; on cancellation it returns ctx.Err() with no partial
// rate.
func IntervalDisclosureCtx(ctx context.Context, original, masked *dataset.Dataset, cols []int, p float64) (float64, error) {
	if original.Rows() != masked.Rows() || original.Rows() == 0 {
		return 0, fmt.Errorf("risk: datasets must be non-empty with equal rows")
	}
	if p <= 0 {
		return 0, fmt.Errorf("risk: interval width must be > 0, got %g", p)
	}
	pool := par.Default()
	var hits, total float64
	for _, j := range cols {
		oc := original.NumColumn(j)
		mc := masked.NumColumn(j)
		sd := stats.StdDev(oc)
		width := p / 100 * sd
		counts, err := par.MapChunksCtx(ctx, pool, len(oc), func(lo, hi int) int {
			c := 0
			for i := lo; i < hi; i++ {
				// Interval of half-width p% of the attribute spread.
				if math.Abs(mc[i]-oc[i]) <= width {
					c++
				}
			}
			return c
		})
		if err != nil {
			return 0, err
		}
		for _, c := range counts {
			hits += float64(c)
		}
		total += float64(len(oc))
	}
	return hits / total, nil
}

// MeanRecordDistance returns the average standardised Euclidean distance
// between each original record and its masked counterpart over cols — a raw
// measure of how far the released records sit from the owner's true data
// (large distance = the owner has given little away).
func MeanRecordDistance(original, masked *dataset.Dataset, cols []int) (float64, error) {
	if original.Rows() != masked.Rows() || original.Rows() == 0 {
		return 0, fmt.Errorf("risk: datasets must be non-empty with equal rows")
	}
	o := original.NumericFlat(cols)
	m := masked.NumericFlat(cols)
	sds := make([]float64, len(cols))
	for j, c := range cols {
		sds[j] = stats.StdDev(original.NumColumn(c))
	}
	var s float64
	for i := 0; i < o.Rows(); i++ {
		or, mr := o.Row(i), m.Row(i)
		var d float64
		for j := range cols {
			diff := or[j] - mr[j]
			if sds[j] > 0 {
				diff /= sds[j]
			}
			d += diff * diff
		}
		s += math.Sqrt(d)
	}
	return s / float64(o.Rows()), nil
}

package risk

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/microagg"
	"privacy3d/internal/noise"
	"privacy3d/internal/swap"
)

func TestLinkageIdentityMaskIsFullyLinked(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 120, Seed: 1})
	rep, err := DistanceLinkage(d, d.Clone(), d.QuasiIdentifiers())
	if err != nil {
		t.Fatal(err)
	}
	// With continuous synthetic data ties are essentially absent, so every
	// record links to itself.
	if rep.Rate < 0.99 {
		t.Errorf("identity mask linkage = %v, want ≈ 1", rep.Rate)
	}
	if rep.Attacked != d.Rows() {
		t.Errorf("attacked %d of %d", rep.Attacked, d.Rows())
	}
}

func TestLinkageMicroaggregationBoundedByK(t *testing.T) {
	// Centroid-masked data leaves ≥ k equidistant candidates per original
	// record, so expected linkage ≤ 1/k.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 300, Seed: 2})
	k := 5
	masked, _, err := microagg.Mask(d, microagg.NewOptions(k))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DistanceLinkage(d, masked, d.QuasiIdentifiers())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rate > 1/float64(k)+0.01 {
		t.Errorf("linkage after %d-anonymisation = %v, want ≤ 1/%d", k, rep.Rate, k)
	}
	if rep.Rate <= 0 {
		t.Error("linkage should remain positive (ties include the target)")
	}
}

func TestLinkageDecreasesWithNoise(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 250, Seed: 3})
	cols := d.QuasiIdentifiers()
	rate := func(amp float64) float64 {
		m, err := noise.AddUncorrelated(d, cols, amp, dataset.NewRand(4))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := DistanceLinkage(d, m, cols)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Rate
	}
	low, high := rate(0.05), rate(2.0)
	if high >= low {
		t.Errorf("linkage should drop with noise: %v (low) vs %v (high)", low, high)
	}
}

func TestLinkageErrors(t *testing.T) {
	d := dataset.Dataset1()
	short := d.Select([]int{0, 1})
	if _, err := DistanceLinkage(d, short, d.QuasiIdentifiers()); err == nil {
		t.Error("accepted row mismatch")
	}
	empty := dataset.New(dataset.TrialSchema()...)
	if _, err := DistanceLinkage(empty, empty, empty.QuasiIdentifiers()); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := DistanceLinkage(d, d, nil); err == nil {
		t.Error("accepted empty column list")
	}
}

func TestIntervalDisclosure(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 200, Seed: 5})
	cols := d.QuasiIdentifiers()
	full, err := IntervalDisclosure(d, d.Clone(), cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full != 1 {
		t.Errorf("identity interval disclosure = %v, want 1", full)
	}
	m, err := noise.AddUncorrelated(d, cols, 3, dataset.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := IntervalDisclosure(d, m, cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	if noisy >= full {
		t.Errorf("interval disclosure should drop under noise: %v", noisy)
	}
	if _, err := IntervalDisclosure(d, m, cols, 0); err == nil {
		t.Error("accepted p = 0")
	}
}

func TestMeanRecordDistance(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 150, Seed: 7})
	cols := d.QuasiIdentifiers()
	zero, err := MeanRecordDistance(d, d.Clone(), cols)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("identity distance = %v, want 0", zero)
	}
	m, _ := noise.AddUncorrelated(d, cols, 1, dataset.NewRand(8))
	far, err := MeanRecordDistance(d, m, cols)
	if err != nil {
		t.Fatal(err)
	}
	if far <= 0 {
		t.Errorf("noisy distance = %v, want > 0", far)
	}
}

func TestInfoLossIdentityIsZero(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 100, Seed: 9})
	il, err := MeasureInfoLoss(d, d.Clone(), d.QuasiIdentifiers())
	if err != nil {
		t.Fatal(err)
	}
	if il.Overall() != 0 {
		t.Errorf("identity info loss = %+v", il)
	}
}

func TestInfoLossOrdersMaskings(t *testing.T) {
	// Rank swapping with a small window preserves marginals exactly
	// (KS = 0, mean/var delta = 0); heavy noise does not. Info loss must
	// rank them accordingly.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 400, Seed: 10})
	cols := d.QuasiIdentifiers()
	sw, err := swap.RankSwap(d, cols, 2, dataset.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	ns, err := noise.AddUncorrelated(d, cols, 2, dataset.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	ilSwap, err := MeasureInfoLoss(d, sw, cols)
	if err != nil {
		t.Fatal(err)
	}
	ilNoise, err := MeasureInfoLoss(d, ns, cols)
	if err != nil {
		t.Fatal(err)
	}
	if ilSwap.KSDist != 0 {
		t.Errorf("rank swap KS = %v, want 0 (marginals preserved)", ilSwap.KSDist)
	}
	if ilSwap.Overall() >= ilNoise.Overall() {
		t.Errorf("rank swap loss %v should be below heavy-noise loss %v", ilSwap.Overall(), ilNoise.Overall())
	}
}

func TestInfoLossErrors(t *testing.T) {
	d := dataset.Dataset1()
	if _, err := MeasureInfoLoss(d, d.Select([]int{0}), d.QuasiIdentifiers()); err == nil {
		t.Error("accepted row mismatch")
	}
	if _, err := MeasureInfoLoss(d, d, nil); err == nil {
		t.Error("accepted empty columns")
	}
}

func TestScore(t *testing.T) {
	if s := Score(0, 0); s != 0 {
		t.Errorf("Score(0,0) = %v", s)
	}
	if s := Score(1, 1); s != 1 {
		t.Errorf("Score(1,1) = %v", s)
	}
	if s := Score(2, -1); s != 0.5 {
		t.Errorf("Score clamps: got %v, want 0.5", s)
	}
	if math.Abs(Score(0.4, 0.6)-0.5) > 1e-12 {
		t.Error("Score should average risk and loss")
	}
}

func TestRiskUtilityTradeoffAcrossK(t *testing.T) {
	// The fundamental SDC trade-off on which experiment E-X2 rests:
	// larger k lowers linkage risk and raises information loss.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 300, Seed: 12})
	cols := d.QuasiIdentifiers()
	var prevRisk, prevLoss float64
	for idx, k := range []int{2, 8, 25} {
		m, _, err := microagg.Mask(d, microagg.NewOptions(k))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := DistanceLinkage(d, m, cols)
		if err != nil {
			t.Fatal(err)
		}
		il, err := MeasureInfoLoss(d, m, cols)
		if err != nil {
			t.Fatal(err)
		}
		if idx > 0 {
			if rep.Rate > prevRisk+1e-9 {
				t.Errorf("k=%d: risk rose from %v to %v", k, prevRisk, rep.Rate)
			}
			if il.Overall() < prevLoss-1e-9 {
				t.Errorf("k=%d: loss fell from %v to %v", k, prevLoss, il.Overall())
			}
		}
		prevRisk, prevLoss = rep.Rate, il.Overall()
	}
}

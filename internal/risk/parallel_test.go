package risk

// Property tests of the parallel analytics engine: every attack kernel
// must produce *bit-identical* reports (==, not approximately equal) for
// worker counts 1, 2 and 8. workers=1 is the sequential reference — the
// pool degenerates to an in-order loop — so equality across the set proves
// the parallel decomposition is observationally invisible. make check runs
// these under -race, which additionally proves the chunked writes never
// alias.

import (
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/noise"
	"privacy3d/internal/par"
)

var workerCounts = []int{1, 2, 8}

// withWorkers runs fn under each worker count, restoring the default after.
func withWorkers(t *testing.T, fn func(workers int)) {
	t.Helper()
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)
	for _, w := range workerCounts {
		par.SetWorkers(w)
		fn(w)
	}
}

func noisyPair(t *testing.T, n int) (*dataset.Dataset, *dataset.Dataset, []int) {
	t.Helper()
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: n, Seed: 41, ExtraQI: 2})
	m, err := noise.AddUncorrelated(d, d.QuasiIdentifiers(), 0.3, dataset.NewRand(43))
	if err != nil {
		t.Fatal(err)
	}
	return d, m, d.QuasiIdentifiers()
}

func TestDistanceLinkageBitIdenticalAcrossWorkers(t *testing.T) {
	// Sized past one par chunk so several chunks are actually in flight.
	d, m, cols := noisyPair(t, 1200)
	var want LinkageReport
	withWorkers(t, func(w int) {
		got, err := DistanceLinkage(d, m, cols)
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			want = got
			return
		}
		if got != want {
			t.Errorf("workers=%d: report %+v differs from sequential %+v", w, got, want)
		}
	})
	if want.Attacked != d.Rows() {
		t.Errorf("attacked %d of %d", want.Attacked, d.Rows())
	}
}

func TestProbabilisticLinkageBitIdenticalAcrossWorkers(t *testing.T) {
	d, m, cols := noisyPair(t, 700)
	var want LinkageReport
	withWorkers(t, func(w int) {
		got, err := ProbabilisticLinkage(d, m, cols, ProbLinkageConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			want = got
			return
		}
		if got != want {
			t.Errorf("workers=%d: report %+v differs from sequential %+v", w, got, want)
		}
	})
}

func TestIntervalDisclosureBitIdenticalAcrossWorkers(t *testing.T) {
	d, m, cols := noisyPair(t, 1500)
	for _, p := range []float64{1, 25} {
		var want float64
		withWorkers(t, func(w int) {
			got, err := IntervalDisclosure(d, m, cols, p)
			if err != nil {
				t.Fatal(err)
			}
			if w == 1 {
				want = got
				return
			}
			if got != want {
				t.Errorf("workers=%d p=%g: %x differs from sequential %x", w, p, got, want)
			}
		})
	}
}

// TestDistanceLinkageMatchesSeedSemantics pins that the flat-matrix rewrite
// preserved the original pointer-chasing implementation's exact tie
// accounting on a crafted instance: two masked records equidistant from
// each original record must each count as half a link.
func TestDistanceLinkageTieAccounting(t *testing.T) {
	attrs := []dataset.Attribute{
		{Name: "x", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		{Name: "y", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
	}
	orig := dataset.New(attrs...)
	masked := dataset.New(attrs...)
	// Originals at ±1 on x; both masked records collapse to the centroid,
	// so each original sees a 2-way tie containing its counterpart.
	orig.MustAppend(-1.0, 0.0)
	orig.MustAppend(1.0, 0.0)
	masked.MustAppend(0.0, 0.0)
	masked.MustAppend(0.0, 0.0)
	rep, err := DistanceLinkage(orig, masked, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Linked != 1 || rep.Rate != 0.5 {
		t.Errorf("tie accounting: Linked=%v Rate=%v, want 1 and 0.5", rep.Linked, rep.Rate)
	}
}

package risk

import (
	"fmt"
	"math"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// RegressionUtility measures analytical validity the way data users
// experience it: fit the same linear regression (target on regressors) on
// the original and on the masked release and compare. Good maskings keep
// the fitted coefficients and explanatory power close; this is the
// "designated user analyses" utility notion of the paper's Section 2.
type RegressionUtility struct {
	// CoefDistance is the Euclidean distance between coefficient vectors,
	// normalised by the original coefficient norm.
	CoefDistance float64
	// R2Original and R2Masked are the fits' explanatory powers.
	R2Original, R2Masked float64
}

// MeasureRegressionUtility fits target ~ regressors on both datasets.
func MeasureRegressionUtility(original, masked *dataset.Dataset, regressors []int, target int) (RegressionUtility, error) {
	var out RegressionUtility
	if original.Rows() != masked.Rows() || original.Rows() == 0 {
		return out, fmt.Errorf("risk: datasets must be non-empty with equal rows")
	}
	if len(regressors) == 0 {
		return out, fmt.Errorf("risk: no regressors")
	}
	fit := func(d *dataset.Dataset) (*stats.OLSResult, error) {
		return stats.OLS(d.NumericMatrix(regressors), d.NumColumn(target))
	}
	mo, err := fit(original)
	if err != nil {
		return out, err
	}
	mm, err := fit(masked)
	if err != nil {
		return out, err
	}
	var dist, norm float64
	for j := range mo.Coeffs {
		d := mo.Coeffs[j] - mm.Coeffs[j]
		dist += d * d
		norm += mo.Coeffs[j] * mo.Coeffs[j]
	}
	out.CoefDistance = math.Sqrt(dist)
	if norm > 0 {
		out.CoefDistance /= math.Sqrt(norm)
	}
	out.R2Original = mo.R2
	out.R2Masked = mm.R2
	return out, nil
}

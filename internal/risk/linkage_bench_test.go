package risk

// Benchmarks of the engine's hot paths across worker counts. make check
// runs these once (-benchtime 1x) so the benchmark code cannot bit-rot;
// make bench / cmd/benchlinkage is the large-scale gate.

import (
	"fmt"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/noise"
	"privacy3d/internal/par"
)

func benchPair(b *testing.B, n int) (*dataset.Dataset, *dataset.Dataset, []int) {
	b.Helper()
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: n, Seed: 11, ExtraQI: 2})
	m, err := noise.AddUncorrelated(d, d.QuasiIdentifiers(), 0.2, dataset.NewRand(13))
	if err != nil {
		b.Fatal(err)
	}
	return d, m, d.QuasiIdentifiers()
}

func BenchmarkDistanceLinkage(b *testing.B) {
	d, m, cols := benchPair(b, 2000)
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			par.SetWorkers(w)
			var rate float64
			for i := 0; i < b.N; i++ {
				rep, err := DistanceLinkage(d, m, cols)
				if err != nil {
					b.Fatal(err)
				}
				rate = rep.Rate
			}
			b.ReportMetric(rate, "linkage-rate")
		})
	}
}

func BenchmarkIntervalDisclosure(b *testing.B) {
	d, m, cols := benchPair(b, 5000)
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			par.SetWorkers(w)
			for i := 0; i < b.N; i++ {
				if _, err := IntervalDisclosure(d, m, cols, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package risk

import (
	"fmt"
	"strings"

	"privacy3d/internal/dataset"
	"privacy3d/internal/noise"
)

// Assessment is the complete disclosure-risk / data-utility report of a
// masked release, combining every attack and loss measure in this package —
// the one-call answer to "is this release safe enough and useful enough?".
type Assessment struct {
	// DistanceLinkage and ProbabilisticLinkage are the two
	// re-identification attacks (rates in [0,1]).
	DistanceLinkage      float64
	ProbabilisticLinkage float64
	// RareDisclosure is the rare-combination (sparse-cell) disclosure rate.
	RareDisclosure float64
	// TightRecovery and LooseRecovery are the value-recovery rates within
	// ±1 % and ±25 % of a standard deviation.
	TightRecovery, LooseRecovery float64
	// Loss is the information-loss battery; Overall() summarises it.
	Loss InfoLoss
	// Score is the combined risk/utility score (lower is better):
	// 0.5·max(linkage attacks, rare disclosure) + 0.5·Loss.Overall().
	Score float64
}

// AssessConfig tunes the assessment.
type AssessConfig struct {
	// BinsPerDim for the rare-combination measurement (default 3).
	BinsPerDim int
	// SkipProbabilistic disables the O(n²) Fellegi–Sunter attack (useful
	// above a few thousand records).
	SkipProbabilistic bool
}

// Assess runs the full battery over the given numeric columns.
func Assess(original, masked *dataset.Dataset, cols []int, cfg AssessConfig) (Assessment, error) {
	var a Assessment
	if cfg.BinsPerDim <= 0 {
		cfg.BinsPerDim = 3
	}
	link, err := DistanceLinkage(original, masked, cols)
	if err != nil {
		return a, err
	}
	a.DistanceLinkage = link.Rate
	if !cfg.SkipProbabilistic && len(cols) <= 32 {
		pl, err := ProbabilisticLinkage(original, masked, cols, ProbLinkageConfig{})
		if err != nil {
			return a, err
		}
		a.ProbabilisticLinkage = pl.Rate
	}
	sparse, err := noise.SparseDisclosure(
		original.NumericMatrix(cols), masked.NumericMatrix(cols), cfg.BinsPerDim, 1)
	if err != nil {
		return a, err
	}
	a.RareDisclosure = sparse.DisclosureRate
	a.TightRecovery, err = IntervalDisclosure(original, masked, cols, 1)
	if err != nil {
		return a, err
	}
	a.LooseRecovery, err = IntervalDisclosure(original, masked, cols, 25)
	if err != nil {
		return a, err
	}
	a.Loss, err = MeasureInfoLoss(original, masked, cols)
	if err != nil {
		return a, err
	}
	risk := a.DistanceLinkage
	if a.ProbabilisticLinkage > risk {
		risk = a.ProbabilisticLinkage
	}
	if a.RareDisclosure > risk {
		risk = a.RareDisclosure
	}
	a.Score = Score(risk, a.Loss.Overall())
	return a, nil
}

// String renders the assessment as a compact multi-line report.
func (a Assessment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "re-identification: distance %.3f, probabilistic %.3f, rare-combination %.3f\n",
		a.DistanceLinkage, a.ProbabilisticLinkage, a.RareDisclosure)
	fmt.Fprintf(&b, "value recovery:    ±1%% sd %.3f, ±25%% sd %.3f\n", a.TightRecovery, a.LooseRecovery)
	fmt.Fprintf(&b, "information loss:  %.4f (IL1s %.3f, KS %.3f, corrΔ %.3f)\n",
		a.Loss.Overall(), a.Loss.IL1s, a.Loss.KSDist, a.Loss.CorrDelta)
	fmt.Fprintf(&b, "combined score:    %.4f (lower is better)", a.Score)
	return b.String()
}

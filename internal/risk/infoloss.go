package risk

import (
	"fmt"
	"math"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// InfoLoss aggregates the standard information-loss components for numeric
// maskings. All components are normalised to [0,1] (clamped), so they can be
// averaged and traded off against disclosure risk on the same scale, as in
// the score of Domingo-Ferrer & Torra.
type InfoLoss struct {
	// IL1s is the mean per-cell absolute discrepancy |x−x′| / (√2·S_j).
	IL1s float64
	// MeanDelta is the mean relative drift of column means.
	MeanDelta float64
	// VarDelta is the mean relative drift of column variances.
	VarDelta float64
	// CorrDelta is the mean absolute drift of pairwise correlations.
	CorrDelta float64
	// KSDist is the mean per-column two-sample Kolmogorov–Smirnov
	// statistic between original and masked marginals.
	KSDist float64
}

// Overall returns the average of the five components — the single
// information-loss figure reported by the experiments.
func (il InfoLoss) Overall() float64 {
	return (il.IL1s + il.MeanDelta + il.VarDelta + il.CorrDelta + il.KSDist) / 5
}

// MeasureInfoLoss compares original and masked datasets over the given
// numeric columns.
func MeasureInfoLoss(original, masked *dataset.Dataset, cols []int) (InfoLoss, error) {
	var il InfoLoss
	if original.Rows() != masked.Rows() || original.Rows() == 0 {
		return il, fmt.Errorf("risk: datasets must be non-empty with equal rows")
	}
	if len(cols) == 0 {
		return il, fmt.Errorf("risk: no columns to measure")
	}
	n := float64(original.Rows())
	var il1, meanD, varD, ks float64
	for _, j := range cols {
		oc := original.NumColumn(j)
		mc := masked.NumColumn(j)
		sd := stats.StdDev(oc)
		if sd > 0 {
			var s float64
			for i := range oc {
				s += math.Abs(oc[i] - mc[i])
			}
			il1 += clamp01(s / n / (math.Sqrt2 * sd))
		}
		om, mm := stats.Mean(oc), stats.Mean(mc)
		if sd > 0 {
			meanD += clamp01(math.Abs(om-mm) / sd)
		}
		ov, mv := stats.Variance(oc), stats.Variance(mc)
		if ov > 0 {
			varD += clamp01(math.Abs(ov-mv) / ov)
		}
		ks += stats.KolmogorovSmirnov(oc, mc)
	}
	p := float64(len(cols))
	il.IL1s = il1 / p
	il.MeanDelta = meanD / p
	il.VarDelta = varD / p
	il.KSDist = ks / p
	// Pairwise correlation drift.
	if len(cols) >= 2 {
		var s float64
		var pairs int
		for a := 0; a < len(cols); a++ {
			for b := a + 1; b < len(cols); b++ {
				ro := stats.Correlation(original.NumColumn(cols[a]), original.NumColumn(cols[b]))
				rm := stats.Correlation(masked.NumColumn(cols[a]), masked.NumColumn(cols[b]))
				if math.IsNaN(ro) || math.IsNaN(rm) {
					continue
				}
				s += clamp01(math.Abs(ro - rm))
				pairs++
			}
		}
		if pairs > 0 {
			il.CorrDelta = s / float64(pairs)
		}
	}
	return il, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Score combines disclosure risk and information loss with equal weights,
// the overall masking-quality score of the SDC evaluation tradition
// (lower is better).
func Score(disclosureRisk, infoLoss float64) float64 {
	return 0.5*clamp01(disclosureRisk) + 0.5*clamp01(infoLoss)
}

package risk

import (
	"strings"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/microagg"
)

func TestAssessIdentityRelease(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 150, Seed: 3, ExtraQI: 2})
	a, err := Assess(d, d.Clone(), d.QuasiIdentifiers(), AssessConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.DistanceLinkage < 0.99 || a.TightRecovery != 1 {
		t.Errorf("identity release under-reported: %+v", a)
	}
	if a.Loss.Overall() != 0 {
		t.Errorf("identity info loss = %v", a.Loss.Overall())
	}
	if a.Score < 0.49 {
		t.Errorf("identity score = %v, want ≈ 0.5 (max risk, zero loss)", a.Score)
	}
	if s := a.String(); !strings.Contains(s, "combined score") {
		t.Errorf("report malformed:\n%s", s)
	}
}

func TestAssessMaskedReleaseScoresBetter(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 200, Seed: 5})
	masked, _, err := microagg.Mask(d, microagg.NewOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Assess(d, d.Clone(), d.QuasiIdentifiers(), AssessConfig{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := Assess(d, masked, d.QuasiIdentifiers(), AssessConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if good.Score >= raw.Score {
		t.Errorf("masked score %v not better than raw %v", good.Score, raw.Score)
	}
	if good.DistanceLinkage > 1.0/3+0.01 {
		t.Errorf("masked linkage %v above 1/k", good.DistanceLinkage)
	}
}

func TestAssessSkipProbabilistic(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 120, Seed: 7})
	a, err := Assess(d, d.Clone(), d.QuasiIdentifiers(), AssessConfig{SkipProbabilistic: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.ProbabilisticLinkage != 0 {
		t.Errorf("probabilistic linkage ran despite skip: %v", a.ProbabilisticLinkage)
	}
}

func TestAssessValidation(t *testing.T) {
	d := dataset.Dataset1()
	if _, err := Assess(d, d.Select([]int{0}), d.QuasiIdentifiers(), AssessConfig{}); err == nil {
		t.Error("accepted row mismatch")
	}
}

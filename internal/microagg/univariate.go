package microagg

import (
	"sort"
)

// OptimalUnivariateGroups computes the optimal (minimum-SSE) univariate
// microaggregation partition of x with group sizes in [k, 2k-1], using the
// Hansen–Mukherjee shortest-path dynamic program over the sorted values.
// It returns groups of original indices.
func OptimalUnivariateGroups(x []float64, k int) ([][]int, error) {
	n := len(x)
	if err := validateK(n, k); err != nil {
		return nil, err
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	sorted := make([]float64, n)
	for r, i := range idx {
		sorted[r] = x[i]
	}
	// Prefix sums for O(1) group SSE.
	pre := make([]float64, n+1)
	pre2 := make([]float64, n+1)
	for i, v := range sorted {
		pre[i+1] = pre[i] + v
		pre2[i+1] = pre2[i] + v*v
	}
	sse := func(a, b int) float64 { // records a..b-1 of sorted order
		m := float64(b - a)
		s := pre[b] - pre[a]
		return (pre2[b] - pre2[a]) - s*s/m
	}
	const inf = 1e308
	cost := make([]float64, n+1)
	prev := make([]int, n+1)
	for i := 1; i <= n; i++ {
		cost[i] = inf
		prev[i] = -1
	}
	for i := 0; i <= n; i++ {
		if cost[i] == inf && i != 0 {
			continue
		}
		for size := k; size <= 2*k-1 && i+size <= n; size++ {
			j := i + size
			// Disallow leaving a tail shorter than k.
			if n-j != 0 && n-j < k {
				continue
			}
			if c := cost[i] + sse(i, j); c < cost[j] {
				cost[j] = c
				prev[j] = i
			}
		}
	}
	if prev[n] == -1 && n != 0 {
		// Should not happen for n ≥ k, but guard against logic drift.
		return nil, errNoPartition(n, k)
	}
	// Backtrack into groups of original indices.
	var bounds []int
	for j := n; j > 0; j = prev[j] {
		bounds = append(bounds, j)
	}
	sort.Ints(bounds)
	groups := make([][]int, 0, len(bounds))
	start := 0
	for _, b := range bounds {
		g := make([]int, 0, b-start)
		for r := start; r < b; r++ {
			g = append(g, idx[r])
		}
		sort.Ints(g)
		groups = append(groups, g)
		start = b
	}
	return groups, nil
}

type errNoPartitionT struct{ n, k int }

func (e errNoPartitionT) Error() string {
	return "microagg: no feasible univariate partition"
}

func errNoPartition(n, k int) error { return errNoPartitionT{n, k} }

// UnivariateSSE returns the within-group SSE of a partition of x.
func UnivariateSSE(x []float64, groups [][]int) float64 {
	var total float64
	for _, g := range groups {
		var mean float64
		for _, i := range g {
			mean += x[i]
		}
		mean /= float64(len(g))
		for _, i := range g {
			d := x[i] - mean
			total += d * d
		}
	}
	return total
}

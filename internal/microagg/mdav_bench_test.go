package microagg

import (
	"fmt"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
)

// BenchmarkMDAVGroupsFlat times the engine-native MDAV partition across
// worker counts (make check runs it once so it cannot bit-rot).
func BenchmarkMDAVGroupsFlat(b *testing.B) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 3000, Seed: 31, ExtraQI: 2})
	f := d.NumericFlat(d.QuasiIdentifiers())
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			par.SetWorkers(w)
			for i := 0; i < b.N; i++ {
				if _, err := MDAVGroupsFlat(f, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package microagg

import (
	"testing"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/dataset"
)

func TestVMDAVGroupsInvariants(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 211, Seed: 13})
	data := d.NumericMatrix(d.QuasiIdentifiers())
	for _, gamma := range []float64{0, 0.2, 1.0} {
		groups, err := VMDAVGroups(data, 3, gamma)
		if err != nil {
			t.Fatalf("gamma=%v: %v", gamma, err)
		}
		seen := map[int]bool{}
		for _, g := range groups {
			if len(g) < 3 {
				t.Errorf("gamma=%v: group of size %d < k", gamma, len(g))
			}
			for _, i := range g {
				if seen[i] {
					t.Fatalf("record %d in two groups", i)
				}
				seen[i] = true
			}
		}
		if len(seen) != len(data) {
			t.Errorf("gamma=%v: covered %d of %d", gamma, len(seen), len(data))
		}
	}
	if _, err := VMDAVGroups(data[:2], 3, 0.2); err == nil {
		t.Error("accepted n < k")
	}
	// Negative gamma is clamped, not rejected.
	if _, err := VMDAVGroups(data, 3, -1); err != nil {
		t.Errorf("negative gamma: %v", err)
	}
}

func TestMaskVariableYieldsKAnonymity(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 300, Seed: 17})
	masked, res, err := MaskVariable(d, NewOptions(4), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := anonymity.K(masked, masked.QuasiIdentifiers()); got < 4 {
		t.Errorf("V-MDAV masked k = %d, want ≥ 4", got)
	}
	if il := res.IL(); il <= 0 || il >= 1 {
		t.Errorf("IL = %v", il)
	}
}

func TestVMDAVAbsorbsStragglers(t *testing.T) {
	// Two tight, well-separated clusters where the small cluster leaves a
	// sub-k tail after one full group: variable-size grouping absorbs the
	// stragglers into same-cluster groups instead of pairing them with the
	// far cluster, so within-group SSE stays at cluster scale.
	rng := dataset.NewRand(5)
	var data [][]float64
	for i := 0; i < 40; i++ {
		data = append(data, []float64{dataset.Normal(rng, 0, 0.3), dataset.Normal(rng, 0, 0.3)})
	}
	for i := 0; i < 10; i++ {
		data = append(data, []float64{dataset.Normal(rng, 50, 0.3), dataset.Normal(rng, 50, 0.3)})
	}
	k := 5
	variable, err := VMDAVGroups(data, k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sseOf := func(groups [][]int) float64 {
		var sse float64
		for _, g := range groups {
			c := centroidOf(data, g)
			for _, i := range g {
				dx := data[i][0] - c[0]
				dy := data[i][1] - c[1]
				sse += dx*dx + dy*dy
			}
		}
		return sse
	}
	if vs := sseOf(variable); vs > 100 {
		t.Errorf("V-MDAV SSE = %v — it built a cross-cluster group", vs)
	}
	// No group mixes clusters.
	for _, g := range variable {
		nA := 0
		for _, i := range g {
			if i < 40 {
				nA++
			}
		}
		if nA != 0 && nA != len(g) {
			t.Errorf("mixed group: %v", g)
		}
	}
}

func TestMaskVariableNoColumns(t *testing.T) {
	d := dataset.New(dataset.Attribute{Name: "x", Role: dataset.Confidential, Kind: dataset.Numeric})
	d.MustAppend(1.0)
	if _, _, err := MaskVariable(d, NewOptions(2), 0.2); err == nil {
		t.Error("accepted dataset without quasi-identifiers")
	}
}

func TestMaskProjectionYieldsKAnonymity(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 240, Seed: 19})
	masked, res, err := MaskProjection(d, NewOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := anonymity.K(masked, masked.QuasiIdentifiers()); got < 3 {
		t.Errorf("projection masked k = %d, want ≥ 3", got)
	}
	if il := res.IL(); il <= 0 || il >= 1 {
		t.Errorf("IL = %v", il)
	}
}

func TestProjectionOptimalOnCollinearData(t *testing.T) {
	// Exactly collinear data is genuinely one-dimensional: the projected
	// partition is the provably optimal one, so it cannot lose more than
	// the MDAV heuristic there. (On merely-correlated data the residual
	// perpendicular spread favours MDAV — the regime boundary the
	// microaggregation literature reports.)
	rng := dataset.NewRand(23)
	attrs := []dataset.Attribute{
		{Name: "a", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
		{Name: "b", Role: dataset.QuasiIdentifier, Kind: dataset.Numeric},
	}
	d := dataset.New(attrs...)
	for i := 0; i < 200; i++ {
		x := rng.NormFloat64() * 10
		d.MustAppend(x, 2*x+5)
	}
	opt := NewOptions(4)
	_, resProj, err := MaskProjection(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, resMDAV, err := Mask(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resProj.IL() > resMDAV.IL()+1e-9 {
		t.Errorf("projection IL %v worse than MDAV IL %v on collinear data",
			resProj.IL(), resMDAV.IL())
	}
}

func TestProjectionGroupsValidation(t *testing.T) {
	if _, err := ProjectionGroups([][]float64{{1, 2}}, 3); err == nil {
		t.Error("accepted n < k")
	}
}

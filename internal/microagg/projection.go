package microagg

import (
	"fmt"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// Projection-based microaggregation (the single-axis variant studied by
// Domingo-Ferrer & Mateo-Sanz 2002, [10] in the paper): the records are
// projected onto the first principal component of the standardised data,
// partitioned *optimally* along that axis with the Hansen–Mukherjee dynamic
// program, and each multivariate group is replaced by its centroid. On
// strongly correlated data the one-dimensional optimal partition can beat
// the MDAV heuristic; on isotropic data MDAV usually wins — the trade-off
// the literature reports, and an easy A/B via the shared Result type.
func ProjectionGroups(data [][]float64, k int) ([][]int, error) {
	if err := validateK(len(data), k); err != nil {
		return nil, err
	}
	pc, err := stats.PrincipalComponent(data)
	if err != nil {
		return nil, fmt.Errorf("microagg: principal component: %w", err)
	}
	scores := make([]float64, len(data))
	means := stats.ColumnMeans(data)
	for i, row := range data {
		var s float64
		for j, v := range row {
			s += (v - means[j]) * pc[j]
		}
		scores[i] = s
	}
	return OptimalUnivariateGroups(scores, k)
}

// MaskProjection microaggregates the selected columns with projection
// grouping, mirroring Mask.
func MaskProjection(d *dataset.Dataset, opt Options) (*dataset.Dataset, Result, error) {
	cols := opt.Columns
	if cols == nil {
		cols = d.QuasiIdentifiers()
	}
	if len(cols) == 0 {
		return nil, Result{}, fmt.Errorf("microagg: no columns to mask")
	}
	raw := d.NumericMatrix(cols)
	space := raw
	if opt.Standardize {
		space, _, _ = stats.Standardize(raw)
	}
	groups, err := ProjectionGroups(space, opt.K)
	if err != nil {
		return nil, Result{}, err
	}
	return aggregate(d, cols, raw, space, groups)
}

package microagg

import (
	"fmt"
	"sort"

	"privacy3d/internal/dataset"
)

// Categorical microaggregation (Domingo-Ferrer & Torra 2005, [12] in the
// paper): ordinal attributes aggregate to the group median category,
// nominal attributes to the group mode. Distances: ordinal = rank distance
// over the declared category order; nominal = 0/1.

// MaskCategorical microaggregates a single categorical column of d with
// minimum group size k, grouping records by categorical distance, and
// returns the masked clone. Numeric columns are untouched.
func MaskCategorical(d *dataset.Dataset, col, k int) (*dataset.Dataset, error) {
	if err := validateK(d.Rows(), k); err != nil {
		return nil, err
	}
	a := d.Attr(col)
	if a.Kind == dataset.Numeric {
		return nil, fmt.Errorf("microagg: column %q is numeric; use Mask", a.Name)
	}
	vals := d.CatColumn(col)
	out := d.Clone()
	switch a.Kind {
	case dataset.Ordinal:
		rank, order, err := ordinalRanks(a, vals)
		if err != nil {
			return nil, err
		}
		// Sort records by rank; fixed-size groups along the order; the
		// remainder merges into the last group (size ≤ 2k-1).
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(x, y int) bool { return rank[idx[x]] < rank[idx[y]] })
		for start := 0; start < len(idx); {
			end := start + k
			if len(idx)-end < k {
				end = len(idx)
			}
			g := idx[start:end]
			// Median rank of the group.
			rs := make([]int, len(g))
			for t, i := range g {
				rs[t] = rank[i]
			}
			sort.Ints(rs)
			med := rs[len(rs)/2]
			for _, i := range g {
				out.SetCat(i, col, order[med])
			}
			start = end
		}
	default: // Nominal: group equal values; small value-classes merge into a rest group mapped to the global mode.
		counts := map[string]int{}
		for _, v := range vals {
			counts[v]++
		}
		mode := globalMode(counts)
		for i, v := range vals {
			if counts[v] < k {
				out.SetCat(i, col, mode)
			}
		}
	}
	return out, nil
}

func ordinalRanks(a dataset.Attribute, vals []string) (rank []int, order []string, err error) {
	order = a.Categories
	if len(order) == 0 {
		// Derive the order from sorted distinct values.
		seen := map[string]bool{}
		for _, v := range vals {
			if !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
		sort.Strings(order)
	}
	pos := make(map[string]int, len(order))
	for r, v := range order {
		pos[v] = r
	}
	rank = make([]int, len(vals))
	for i, v := range vals {
		r, ok := pos[v]
		if !ok {
			return nil, nil, fmt.Errorf("microagg: value %q not in category order of %q", v, a.Name)
		}
		rank[i] = r
	}
	return rank, order, nil
}

func globalMode(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Strings(keys) // deterministic tie-break
	best, bestC := "", -1
	for _, v := range keys {
		if counts[v] > bestC {
			best, bestC = v, counts[v]
		}
	}
	return best
}

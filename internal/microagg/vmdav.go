package microagg

import (
	"fmt"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// VMDAVGroups implements V-MDAV (Solanas & Martínez-Ballesté), the
// variable-group-size variant of MDAV: after forming each k-record group
// around the farthest-from-centroid record, nearby unassigned records are
// absorbed into the group (up to size 2k−1) when they are closer to the
// group than to the rest of the data, scaled by gamma. Variable group sizes
// track local density and typically lose less information on clustered
// data than fixed-size MDAV.
//
// gamma ≥ 0 controls extension eagerness; gamma = 0 reduces to never
// extending (fixed-size groups except the tail), a common default is 0.2.
func VMDAVGroups(data [][]float64, k int, gamma float64) ([][]int, error) {
	if err := validateK(len(data), k); err != nil {
		return nil, err
	}
	if gamma < 0 {
		gamma = 0
	}
	unassigned := map[int]bool{}
	for i := range data {
		unassigned[i] = true
	}
	// Typical nearest-neighbour spacing (squared): isolated seeds whose
	// nearest neighbour lies far beyond it would force cross-cluster
	// groups; they are deferred and attached to the closest finished group
	// instead.
	medNN := medianNearestNeighbor(data)
	const stragglerFactor = 25 // 5× the typical spacing, squared
	var stragglers []int
	var groups [][]int
	for len(unassigned) >= k {
		rows := keysOf(unassigned)
		centroid := centroidOf(data, rows)
		// Seed: farthest unassigned record from the global centroid.
		seed := farthest(data, rows, centroid)
		if len(rows) > 1 && medNN > 0 &&
			minDistToOthers(data, rows, seed) > stragglerFactor*medNN {
			stragglers = append(stragglers, seed)
			delete(unassigned, seed)
			continue
		}
		// Take the k-1 nearest unassigned records to the seed.
		group, _ := takeNearest(data, rows, data[seed], k, seed)
		for _, i := range group {
			delete(unassigned, i)
		}
		// Extension phase: absorb close records while |group| < 2k-1. A
		// candidate joins when it is much closer to the group than to the
		// remaining data (the V-MDAV rule, d_in < γ·d_out) or when it lies
		// within the group's own spread — the latter absorbs straggler
		// pairs whose mutual proximity would otherwise suppress d_out.
		for len(group) < 2*k-1 && len(unassigned) > 0 {
			rest := keysOf(unassigned)
			gc := centroidOf(data, group)
			intraMax := 0.0
			for _, i := range group {
				if d := stats.SquaredDist(data[i], gc); d > intraMax {
					intraMax = d
				}
			}
			// Candidate: nearest unassigned record to the group centroid.
			cand, dIn := nearest(data, rest, gc)
			// Distance from candidate to its nearest other unassigned
			// record.
			dOut := minDistToOthers(data, rest, cand)
			if dIn < gamma*dOut || dIn <= 2*intraMax {
				group = append(group, cand)
				delete(unassigned, cand)
				continue
			}
			break
		}
		sort.Ints(group)
		groups = append(groups, group)
	}
	// Tail: attach leftovers and deferred stragglers to their nearest
	// group's centroid. At least one group always exists because n ≥ k and
	// at most n−1 records can be deferred before a full group forms.
	leftovers := append(keysOf(unassigned), stragglers...)
	if len(leftovers) > 0 {
		if len(groups) == 0 {
			// Degenerate case (every record isolated): one group of all.
			sort.Ints(leftovers)
			return [][]int{leftovers}, nil
		}
		centroids := make([][]float64, len(groups))
		for g, rows := range groups {
			centroids[g] = centroidOf(data, rows)
		}
		for _, i := range leftovers {
			best, bestD := 0, stats.SquaredDist(data[i], centroids[0])
			for g := 1; g < len(centroids); g++ {
				if d := stats.SquaredDist(data[i], centroids[g]); d < bestD {
					best, bestD = g, d
				}
			}
			groups[best] = append(groups[best], i)
			sort.Ints(groups[best])
		}
	}
	return groups, nil
}

// centroidOf averages the given rows of a [][]float64 matrix — the
// sequential helper for the small candidate sets V-MDAV and aggregate work
// over (the parallel flat path uses centroidFlat instead).
func centroidOf(data [][]float64, rows []int) []float64 {
	p := len(data[0])
	c := make([]float64, p)
	for _, i := range rows {
		for j, v := range data[i] {
			c[j] += v
		}
	}
	for j := range c {
		c[j] /= float64(len(rows))
	}
	return c
}

// farthest returns the row index most distant from the query point, first
// index winning ties.
func farthest(data [][]float64, rows []int, from []float64) int {
	best, bestD := rows[0], -1.0
	for _, i := range rows {
		if d := stats.SquaredDist(data[i], from); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// takeNearest removes the k records nearest to center (anchor first if
// provided) from rows, returning the group and the remaining rows.
func takeNearest(data [][]float64, rows []int, center []float64, k, anchor int) (group, rest []int) {
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, 0, len(rows))
	for _, i := range rows {
		d := stats.SquaredDist(data[i], center)
		if i == anchor {
			d = -1 // anchor always first
		}
		cands = append(cands, cand{i, d})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].idx < cands[b].idx
	})
	group = make([]int, 0, k)
	for _, c := range cands[:k] {
		group = append(group, c.idx)
	}
	rest = make([]int, 0, len(rows)-k)
	for _, c := range cands[k:] {
		rest = append(rest, c.idx)
	}
	sort.Ints(group)
	sort.Ints(rest)
	return group, rest
}

// medianNearestNeighbor returns the median squared nearest-neighbour
// distance of the data (0 for fewer than 2 records).
func medianNearestNeighbor(data [][]float64) float64 {
	if len(data) < 2 {
		return 0
	}
	nn := make([]float64, len(data))
	for i := range data {
		best := -1.0
		for j := range data {
			if i == j {
				continue
			}
			d := stats.SquaredDist(data[i], data[j])
			if best < 0 || d < best {
				best = d
			}
		}
		nn[i] = best
	}
	sort.Float64s(nn)
	return nn[len(nn)/2]
}

func keysOf(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func nearest(data [][]float64, rows []int, from []float64) (idx int, dist float64) {
	idx, dist = rows[0], stats.SquaredDist(data[rows[0]], from)
	for _, i := range rows[1:] {
		if d := stats.SquaredDist(data[i], from); d < dist {
			idx, dist = i, d
		}
	}
	return idx, dist
}

func minDistToOthers(data [][]float64, rows []int, self int) float64 {
	best := -1.0
	for _, i := range rows {
		if i == self {
			continue
		}
		d := stats.SquaredDist(data[i], data[self])
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// MaskVariable microaggregates the selected columns with V-MDAV grouping,
// mirroring Mask but with variable group sizes driven by gamma.
func MaskVariable(d *dataset.Dataset, opt Options, gamma float64) (*dataset.Dataset, Result, error) {
	cols := opt.Columns
	if cols == nil {
		cols = d.QuasiIdentifiers()
	}
	if len(cols) == 0 {
		return nil, Result{}, fmt.Errorf("microagg: no columns to mask")
	}
	raw := d.NumericMatrix(cols)
	space := raw
	if opt.Standardize {
		space, _, _ = stats.Standardize(raw)
	}
	groups, err := VMDAVGroups(space, opt.K, gamma)
	if err != nil {
		return nil, Result{}, err
	}
	return aggregate(d, cols, raw, space, groups)
}

package microagg

// The MDAV partition must be exactly identical — same groups, same order —
// for every worker count; see internal/risk/parallel_test.go for the
// engine-wide determinism contract these tests instantiate.

import (
	"reflect"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
)

func TestMDAVGroupsIdenticalAcrossWorkers(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 1100, Seed: 19, ExtraQI: 2})
	data := d.NumericMatrix(d.QuasiIdentifiers())
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)
	for _, k := range []int{3, 7} {
		var want [][]int
		for _, w := range []int{1, 2, 8} {
			par.SetWorkers(w)
			groups, err := MDAVGroups(data, k)
			if err != nil {
				t.Fatal(err)
			}
			if !GroupSizesValid(groups, k) {
				t.Fatalf("workers=%d k=%d: invalid group sizes", w, k)
			}
			if w == 1 {
				want = groups
				continue
			}
			if !reflect.DeepEqual(groups, want) {
				t.Errorf("workers=%d k=%d: partition differs from sequential", w, k)
			}
		}
	}
}

func TestMaskResultIdenticalAcrossWorkers(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 900, Seed: 23})
	prev := par.SetWorkers(0)
	defer par.SetWorkers(prev)
	var wantSSE, wantSST float64
	var want *dataset.Dataset
	for _, w := range []int{1, 2, 8} {
		par.SetWorkers(w)
		masked, res, err := Mask(d, NewOptions(4))
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			wantSSE, wantSST, want = res.SSE, res.SST, masked
			continue
		}
		if res.SSE != wantSSE || res.SST != wantSST {
			t.Errorf("workers=%d: SSE/SST %x/%x differ from sequential %x/%x",
				w, res.SSE, res.SST, wantSSE, wantSST)
		}
		if !dataset.EqualValues(masked, want) {
			t.Errorf("workers=%d: masked release differs from sequential", w)
		}
	}
}

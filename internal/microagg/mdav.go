// Package microagg implements microaggregation-based masking: MDAV
// multivariate microaggregation (Domingo-Ferrer & Mateo-Sanz 2002,
// Domingo-Ferrer & Torra 2005), optimal univariate microaggregation via
// shortest-path dynamic programming (Hansen & Mukherjee), condensation
// (Aggarwal & Yu 2004) and categorical microaggregation. Microaggregation
// with minimum group size k over the quasi-identifiers yields k-anonymity
// ([12] in the paper), which is why the paper singles it out as the masking
// family that satisfies respondent and owner privacy simultaneously.
package microagg

import (
	"context"
	"fmt"
	"sort"

	"privacy3d/internal/dataset"
	"privacy3d/internal/par"
	"privacy3d/internal/stats"
)

// validateK checks the group-size parameter against the data size.
func validateK(n, k int) error {
	if k < 2 {
		return fmt.Errorf("microagg: group size k must be ≥ 2, got %d", k)
	}
	if n < k {
		return fmt.Errorf("microagg: dataset has %d records, need at least k=%d", n, k)
	}
	return nil
}

// MDAVGroups partitions the rows of a numeric matrix into groups of size k
// (the final group may hold up to 2k-1 records) using the Maximum Distance
// to Average Vector heuristic. Data is used as given; callers who want
// scale-invariant groups should standardise first (see Mask).
func MDAVGroups(data [][]float64, k int) ([][]int, error) {
	return MDAVGroupsFlat(stats.FlatFromRows(data), k)
}

// MDAVGroupsFlat is MDAVGroups over a flat row-major matrix — the native
// form of the engine.
func MDAVGroupsFlat(f *stats.Flat, k int) ([][]int, error) {
	return MDAVGroupsFlatCtx(context.Background(), f, k)
}

// MDAVGroupsFlatCtx partitions the rows of a flat row-major matrix with the
// MDAV heuristic. Its centroid, farthest-record and nearest-k scans run
// chunked on the internal/par pool; chunk partials merge in fixed chunk
// order, so the partition is identical for every worker count. Cancelling
// ctx stops the run at the next chunk boundary and returns ctx.Err().
func MDAVGroupsFlatCtx(ctx context.Context, f *stats.Flat, k int) ([][]int, error) {
	if err := validateK(f.Rows(), k); err != nil {
		return nil, err
	}
	pool := par.Default()
	remaining := make([]int, f.Rows())
	for i := range remaining {
		remaining[i] = i
	}
	// One candidate scratch buffer for every takeNearest call in the run,
	// and one membership array for the O(1) was-s-consumed-into-g1 check.
	scratch := make([]cand, f.Rows())
	inG1 := make([]bool, f.Rows())
	var groups [][]int
	for len(remaining) >= 3*k {
		centroid, err := centroidFlat(ctx, pool, f, remaining)
		if err != nil {
			return nil, err
		}
		// r: most distant record from the centroid.
		r, err := farthestFlat(ctx, pool, f, remaining, centroid)
		if err != nil {
			return nil, err
		}
		// s: most distant record from r.
		s, err := farthestFlat(ctx, pool, f, remaining, f.Row(r))
		if err != nil {
			return nil, err
		}
		g1, rest, err := takeNearestFlat(ctx, pool, f, remaining, f.Row(r), k, r, scratch)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g1)
		// s may have been consumed into g1; if so pick the farthest
		// remaining record from the old centroid instead. g1 plus rest
		// partition remaining, so membership in g1 answers "is s gone".
		for _, i := range g1 {
			inG1[i] = true
		}
		sIdx, consumed := s, inG1[s]
		for _, i := range g1 {
			inG1[i] = false
		}
		if consumed {
			if len(rest) == 0 {
				break
			}
			sIdx, err = farthestFlat(ctx, pool, f, rest, centroid)
			if err != nil {
				return nil, err
			}
		}
		g2, rest2, err := takeNearestFlat(ctx, pool, f, rest, f.Row(sIdx), k, sIdx, scratch)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g2)
		remaining = rest2
	}
	if len(remaining) >= 2*k {
		centroid, err := centroidFlat(ctx, pool, f, remaining)
		if err != nil {
			return nil, err
		}
		r, err := farthestFlat(ctx, pool, f, remaining, centroid)
		if err != nil {
			return nil, err
		}
		g1, rest, err := takeNearestFlat(ctx, pool, f, remaining, f.Row(r), k, r, scratch)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g1)
		remaining = rest
	}
	if len(remaining) > 0 {
		groups = append(groups, append([]int(nil), remaining...))
	}
	return groups, nil
}

// centroidFlat averages the given rows. Chunk partial sums fold in chunk
// order, keeping the result worker-count independent.
func centroidFlat(ctx context.Context, pool *par.Pool, f *stats.Flat, rows []int) ([]float64, error) {
	p := f.Cols()
	parts, err := par.MapChunksCtx(ctx, pool, len(rows), func(lo, hi int) []float64 {
		sum := make([]float64, p)
		for _, i := range rows[lo:hi] {
			row := f.Row(i)
			for j, v := range row {
				sum[j] += v
			}
		}
		return sum
	})
	if err != nil {
		return nil, err
	}
	c := make([]float64, p)
	for _, part := range parts {
		for j, v := range part {
			c[j] += v
		}
	}
	for j := range c {
		c[j] /= float64(len(rows))
	}
	return c, nil
}

// argMax is one chunk's farthest-record scan result.
type argMax struct {
	idx int
	d   float64
}

// farthestFlat returns the row index most distant from the query point,
// first index winning ties — exactly the sequential scan's answer, because
// chunk partials are compared strictly-greater in chunk order.
func farthestFlat(ctx context.Context, pool *par.Pool, f *stats.Flat, rows []int, from []float64) (int, error) {
	parts, err := par.MapChunksCtx(ctx, pool, len(rows), func(lo, hi int) argMax {
		best := argMax{idx: rows[lo], d: -1}
		for _, i := range rows[lo:hi] {
			if d := stats.SquaredDist(f.Row(i), from); d > best.d {
				best = argMax{idx: i, d: d}
			}
		}
		return best
	})
	if err != nil {
		return 0, err
	}
	best := argMax{idx: rows[0], d: -1}
	for _, part := range parts {
		if part.d > best.d {
			best = part
		}
	}
	return best.idx, nil
}

type cand struct {
	idx int
	d   float64
}

// takeNearestFlat removes the k records nearest to center (anchor first if
// provided) from rows, returning the group and the remaining rows. The
// distance fill runs in parallel into the caller's scratch buffer; the sort
// breaks distance ties by index, so the split is deterministic.
func takeNearestFlat(ctx context.Context, pool *par.Pool, f *stats.Flat, rows []int, center []float64, k, anchor int, scratch []cand) (group, rest []int, err error) {
	cands := scratch[:len(rows)]
	if err := pool.ForEachChunkCtx(ctx, len(rows), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			i := rows[t]
			d := stats.SquaredDist(f.Row(i), center)
			if i == anchor {
				d = -1 // anchor always first
			}
			cands[t] = cand{i, d}
		}
	}); err != nil {
		return nil, nil, err
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].idx < cands[b].idx
	})
	group = make([]int, 0, k)
	for _, c := range cands[:k] {
		group = append(group, c.idx)
	}
	rest = make([]int, 0, len(rows)-k)
	for _, c := range cands[k:] {
		rest = append(rest, c.idx)
	}
	sort.Ints(group)
	sort.Ints(rest)
	return group, rest, nil
}

// Result describes a microaggregation masking run.
type Result struct {
	// Groups holds the record partition used for aggregation.
	Groups [][]int
	// SSE is the within-group sum of squared errors in the (standardised,
	// if requested) masking space — the information-loss objective
	// microaggregation minimises.
	SSE float64
	// SST is the total sum of squares in the same space; IL = SSE/SST is
	// the normalised information-loss measure reported in the
	// microaggregation literature.
	SST float64
}

// IL returns the normalised information loss SSE/SST in [0,1].
func (r Result) IL() float64 {
	if r.SST == 0 {
		return 0
	}
	return r.SSE / r.SST
}

// Options configures Mask.
type Options struct {
	// K is the minimum group size (k ≥ 2).
	K int
	// Columns to microaggregate; defaults to the dataset's
	// quasi-identifiers.
	Columns []int
	// Standardize groups on z-scores so attributes with large scales do
	// not dominate distances (the standard practice). Default true via
	// NewOptions.
	Standardize bool
}

// NewOptions returns Options with the conventional defaults.
func NewOptions(k int) Options { return Options{K: k, Standardize: true} }

// Mask microaggregates the selected numeric columns of d in place on a
// clone: every record's values are replaced by its group centroid. Because
// every group has ≥ k records, the masked columns are k-anonymous.
func Mask(d *dataset.Dataset, opt Options) (*dataset.Dataset, Result, error) {
	return MaskCtx(context.Background(), d, opt)
}

// MaskCtx is Mask with cooperative cancellation: the MDAV grouping scans
// stop at the next chunk boundary once ctx is done and ctx.Err() is
// returned.
func MaskCtx(ctx context.Context, d *dataset.Dataset, opt Options) (*dataset.Dataset, Result, error) {
	cols := opt.Columns
	if cols == nil {
		cols = d.QuasiIdentifiers()
	}
	if len(cols) == 0 {
		return nil, Result{}, fmt.Errorf("microagg: no columns to mask")
	}
	raw := d.NumericMatrix(cols)
	space := raw
	if opt.Standardize {
		space, _, _ = stats.Standardize(raw)
	}
	groups, err := MDAVGroupsFlatCtx(ctx, stats.FlatFromRows(space), opt.K)
	if err != nil {
		return nil, Result{}, err
	}
	return aggregate(d, cols, raw, space, groups)
}

// aggregate replaces each record's masked-column values with its group
// centroid (in the original space) and computes SSE/SST in the masking
// space.
func aggregate(d *dataset.Dataset, cols []int, raw, space [][]float64, groups [][]int) (*dataset.Dataset, Result, error) {
	out := d.Clone()
	res := Result{Groups: groups}
	grand := centroidOf(space, allRows(len(space)))
	for _, i := range allRows(len(space)) {
		res.SST += stats.SquaredDist(space[i], grand)
	}
	for _, g := range groups {
		cRaw := centroidOf(raw, g)
		cSpace := centroidOf(space, g)
		for _, i := range g {
			res.SSE += stats.SquaredDist(space[i], cSpace)
			for kk, j := range cols {
				out.SetFloat(i, j, cRaw[kk])
			}
		}
	}
	return out, res, nil
}

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// GroupSizesValid reports whether every group has between k and 2k-1
// members — the defining invariant of fixed-size microaggregation
// heuristics (the last group may reach 2k-1).
func GroupSizesValid(groups [][]int, k int) bool {
	for _, g := range groups {
		if len(g) < k || len(g) > 2*k-1 {
			return false
		}
	}
	return true
}

package microagg

import (
	"math"
	"testing"
	"testing/quick"

	"privacy3d/internal/anonymity"
	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

func TestMDAVGroupsInvariants(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 237, Seed: 5})
	data := d.NumericMatrix(d.QuasiIdentifiers())
	for _, k := range []int{2, 3, 4, 5, 10} {
		groups, err := MDAVGroups(data, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !GroupSizesValid(groups, k) {
			sizes := make([]int, len(groups))
			for i, g := range groups {
				sizes[i] = len(g)
			}
			t.Errorf("k=%d: invalid group sizes %v", k, sizes)
		}
		seen := map[int]bool{}
		total := 0
		for _, g := range groups {
			for _, i := range g {
				if seen[i] {
					t.Fatalf("k=%d: record %d in two groups", k, i)
				}
				seen[i] = true
				total++
			}
		}
		if total != len(data) {
			t.Errorf("k=%d: partition covers %d of %d records", k, total, len(data))
		}
	}
}

func TestMDAVErrors(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}}
	if _, err := MDAVGroups(data, 1); err == nil {
		t.Error("accepted k=1")
	}
	if _, err := MDAVGroups(data, 3); err == nil {
		t.Error("accepted k > n")
	}
}

func TestMaskYieldsKAnonymity(t *testing.T) {
	// Paper, Section 2: "microaggregation/condensation with minimum group
	// size k on the key attributes guarantees k-anonymity".
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 500, Seed: 11})
	for _, k := range []int{3, 5} {
		masked, res, err := Mask(d, NewOptions(k))
		if err != nil {
			t.Fatalf("Mask k=%d: %v", k, err)
		}
		if got := anonymity.K(masked, masked.QuasiIdentifiers()); got < k {
			t.Errorf("masked anonymity = %d, want ≥ %d", got, k)
		}
		if il := res.IL(); il <= 0 || il >= 1 {
			t.Errorf("k=%d IL = %v, want in (0,1)", k, il)
		}
		// Confidential columns untouched.
		for i := 0; i < d.Rows(); i++ {
			if d.Float(i, d.Index("blood_pressure")) != masked.Float(i, masked.Index("blood_pressure")) {
				t.Fatal("Mask modified a confidential column")
			}
		}
		// Original untouched.
		if dataset.EqualValues(d, masked) {
			t.Error("masking changed nothing")
		}
	}
}

func TestMaskPreservesMeans(t *testing.T) {
	// Centroid replacement preserves column means exactly.
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 300, Seed: 3})
	masked, _, err := Mask(d, NewOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range d.QuasiIdentifiers() {
		mo := stats.Mean(d.NumColumn(j))
		mm := stats.Mean(masked.NumColumn(j))
		if math.Abs(mo-mm) > 1e-9 {
			t.Errorf("column %d mean drifted: %v → %v", j, mo, mm)
		}
	}
}

func TestILIncreasesWithK(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 400, Dims: 4, Seed: 17, Corr: 0.4})
	var prev float64
	for _, k := range []int{2, 5, 20} {
		_, res, err := Mask(d, Options{K: k, Columns: []int{0, 1, 2, 3}, Standardize: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.IL() < prev {
			t.Errorf("IL not monotone: k=%d IL=%v < previous %v", k, res.IL(), prev)
		}
		prev = res.IL()
	}
}

func TestMaskNoColumns(t *testing.T) {
	d := dataset.New(dataset.Attribute{Name: "x", Role: dataset.Confidential, Kind: dataset.Numeric})
	d.MustAppend(1.0)
	if _, _, err := Mask(d, NewOptions(2)); err == nil {
		t.Error("Mask accepted dataset without quasi-identifiers")
	}
}

func TestOptimalUnivariateBeatsOrEqualsMDAV(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 150, Seed: 23})
	x := d.NumColumn(0)
	k := 3
	opt, err := OptimalUnivariateGroups(x, k)
	if err != nil {
		t.Fatal(err)
	}
	if !GroupSizesValid(opt, k) {
		t.Error("optimal groups violate size bounds")
	}
	// Compare with MDAV on the 1-D data.
	col := make([][]float64, len(x))
	for i, v := range x {
		col[i] = []float64{v}
	}
	heur, err := MDAVGroups(col, k)
	if err != nil {
		t.Fatal(err)
	}
	if o, h := UnivariateSSE(x, opt), UnivariateSSE(x, heur); o > h+1e-9 {
		t.Errorf("optimal SSE %v > heuristic SSE %v", o, h)
	}
}

func TestOptimalUnivariateKnownCase(t *testing.T) {
	// Two well-separated clusters of 3: optimal partition is obvious.
	x := []float64{0, 1, 2, 100, 101, 102}
	groups, err := OptimalUnivariateGroups(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if got := UnivariateSSE(x, groups); math.Abs(got-4) > 1e-12 {
		t.Errorf("SSE = %v, want 4", got)
	}
}

func TestOptimalUnivariatePartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := dataset.SyntheticTrial(dataset.TrialConfig{N: 40 + int(seed%30), Seed: seed})
		x := d.NumColumn(1)
		groups, err := OptimalUnivariateGroups(x, 2+int(seed%3))
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, g := range groups {
			for _, i := range g {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == len(x) && GroupSizesValid(groups, 2+int(seed%3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCondensePreservesMomentsAndAnonymity(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 600, Dims: 3, Seed: 31, Corr: 0.6})
	rng := dataset.NewRand(99)
	cols := []int{0, 1, 2}
	masked, err := Condense(d, cols, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Means approximately preserved.
	for _, j := range cols {
		mo, mm := stats.Mean(d.NumColumn(j)), stats.Mean(masked.NumColumn(j))
		if math.Abs(mo-mm)/math.Abs(mo) > 0.05 {
			t.Errorf("column %d mean drifted too much: %v → %v", j, mo, mm)
		}
	}
	// Covariance structure approximately preserved (the Aggarwal–Yu
	// property the paper relies on for utility).
	co := stats.CovarianceMatrix(d.NumericMatrix(cols))
	cm := stats.CovarianceMatrix(masked.NumericMatrix(cols))
	for a := range co {
		for b := range co[a] {
			denom := math.Max(math.Abs(co[a][b]), 1)
			if math.Abs(co[a][b]-cm[a][b])/denom > 0.35 {
				t.Errorf("cov[%d][%d] drifted: %v → %v", a, b, co[a][b], cm[a][b])
			}
		}
	}
	// Synthetic records differ from originals (owner privacy).
	if dataset.EqualValues(d, masked) {
		t.Error("condensation returned the original data")
	}
}

func TestCondenseErrors(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 10, Dims: 2, Seed: 1})
	if _, err := Condense(d, []int{0, 1}, 50, dataset.NewRand(1)); err == nil {
		t.Error("Condense accepted k > n")
	}
	e := dataset.New(dataset.Attribute{Name: "x", Role: dataset.Confidential, Kind: dataset.Numeric})
	if _, err := Condense(e, nil, 2, dataset.NewRand(1)); err == nil {
		t.Error("Condense accepted dataset without quasi-identifiers")
	}
}

func TestMaskCategoricalNominal(t *testing.T) {
	attrs := []dataset.Attribute{
		{Name: "city", Role: dataset.QuasiIdentifier, Kind: dataset.Nominal},
	}
	d := dataset.New(attrs...)
	for i := 0; i < 5; i++ {
		d.MustAppend("barcelona")
	}
	for i := 0; i < 4; i++ {
		d.MustAppend("tarragona")
	}
	d.MustAppend("girona") // unique value: must be recoded
	out, err := MaskCategorical(d, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := anonymity.K(out, []int{0}); got < 3 {
		t.Errorf("masked nominal k = %d, want ≥ 3", got)
	}
	if out.Cat(9, 0) != "barcelona" {
		t.Errorf("rare value recoded to %q, want global mode", out.Cat(9, 0))
	}
}

func TestMaskCategoricalOrdinal(t *testing.T) {
	attrs := []dataset.Attribute{
		{Name: "edu", Role: dataset.QuasiIdentifier, Kind: dataset.Ordinal,
			Categories: []string{"primary", "secondary", "bachelor", "master", "phd"}},
	}
	d := dataset.New(attrs...)
	for _, v := range []string{"primary", "primary", "secondary", "master", "phd", "phd", "bachelor"} {
		d.MustAppend(v)
	}
	out, err := MaskCategorical(d, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := anonymity.K(out, []int{0}); got < 3 {
		t.Errorf("masked ordinal k = %d, want ≥ 3", got)
	}
	// Values must come from the declared category set.
	valid := map[string]bool{"primary": true, "secondary": true, "bachelor": true, "master": true, "phd": true}
	for i := 0; i < out.Rows(); i++ {
		if !valid[out.Cat(i, 0)] {
			t.Errorf("masked value %q not a category", out.Cat(i, 0))
		}
	}
}

func TestMaskCategoricalErrors(t *testing.T) {
	d := dataset.Dataset1()
	if _, err := MaskCategorical(d, d.Index("height"), 3); err == nil {
		t.Error("accepted numeric column")
	}
	small := dataset.New(dataset.Attribute{Name: "c", Kind: dataset.Nominal})
	small.MustAppend("x")
	if _, err := MaskCategorical(small, 0, 3); err == nil {
		t.Error("accepted k > n")
	}
}

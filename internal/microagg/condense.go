package microagg

import (
	"context"
	"fmt"
	"math/rand/v2"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// Condense implements condensation à la Aggarwal & Yu (EDBT 2004), the
// PPDM masking the paper cites as [1]: records are grouped (here with MDAV,
// of which condensation is a special case per the paper's own remark), and
// each group is replaced by synthetic records drawn to preserve the group's
// first- and second-order statistics (means and covariances). Because every
// group has ≥ k members, the synthetic quasi-identifiers are ambiguous among
// k respondents, giving k-anonymity-style respondent protection, while the
// preserved covariance structure keeps the data useful for mining — the
// owner-privacy/utility combination of Section 2 of the paper.
func Condense(d *dataset.Dataset, cols []int, k int, rng *rand.Rand) (*dataset.Dataset, error) {
	return CondenseCtx(context.Background(), d, cols, k, rng)
}

// CondenseCtx is Condense with cooperative cancellation of the underlying
// MDAV grouping scans.
func CondenseCtx(ctx context.Context, d *dataset.Dataset, cols []int, k int, rng *rand.Rand) (*dataset.Dataset, error) {
	if cols == nil {
		cols = d.QuasiIdentifiers()
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("microagg: no columns to condense")
	}
	raw := d.NumericMatrix(cols)
	space, _, _ := stats.Standardize(raw)
	groups, err := MDAVGroupsFlatCtx(ctx, stats.FlatFromRows(space), k)
	if err != nil {
		return nil, err
	}
	out := d.Clone()
	for _, g := range groups {
		sub := make([][]float64, len(g))
		for t, i := range g {
			sub[t] = raw[i]
		}
		mean := stats.ColumnMeans(sub)
		cov := stats.CovarianceMatrix(sub)
		// Regularise so Cholesky succeeds on tiny/degenerate groups.
		for j := range cov {
			cov[j][j] += 1e-9
		}
		l, err := stats.Cholesky(cov)
		if err != nil {
			// Degenerate group: fall back to the centroid (plain
			// microaggregation for this group).
			for _, i := range g {
				for kk, j := range cols {
					out.SetFloat(i, j, mean[kk])
				}
			}
			continue
		}
		for _, i := range g {
			z := make([]float64, len(cols))
			for t := range z {
				z[t] = rng.NormFloat64()
			}
			s := stats.MatVec(l, z)
			for kk, j := range cols {
				out.SetFloat(i, j, mean[kk]+s[kk])
			}
		}
	}
	return out, nil
}

// Package swap implements data-swapping maskings: rank swapping for numeric
// attributes and PRAM (post-randomization) for categorical ones. Both are
// classical SDC masking methods from the Hundepool et al. handbook and
// Willenborg & DeWaal, the paper's citations [17] and [26].
package swap

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"privacy3d/internal/dataset"
)

// RankSwap masks the given numeric columns by rank swapping: values are
// sorted, and each value is swapped with a partner whose rank differs by at
// most p percent of n. Marginal distributions are preserved exactly (the
// multiset of values never changes) while the link between records and
// values is broken.
func RankSwap(d *dataset.Dataset, cols []int, p float64, rng *rand.Rand) (*dataset.Dataset, error) {
	if p <= 0 || p > 100 {
		return nil, fmt.Errorf("swap: swap range p must be in (0,100], got %g", p)
	}
	out := d.Clone()
	n := d.Rows()
	window := int(float64(n) * p / 100)
	if window < 1 {
		window = 1
	}
	for _, j := range cols {
		col := out.NumColumn(j)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return col[idx[a]] < col[idx[b]] })
		swapped := make([]bool, n)
		for r := 0; r < n; r++ {
			if swapped[idx[r]] {
				continue
			}
			// Pick a partner within the rank window among unswapped ranks.
			hi := r + window
			if hi >= n {
				hi = n - 1
			}
			var cands []int
			for s := r + 1; s <= hi; s++ {
				if !swapped[idx[s]] {
					cands = append(cands, s)
				}
			}
			if len(cands) == 0 {
				continue
			}
			s := cands[rng.IntN(len(cands))]
			col[idx[r]], col[idx[s]] = col[idx[s]], col[idx[r]]
			swapped[idx[r]], swapped[idx[s]] = true, true
		}
	}
	return out, nil
}

// PRAM post-randomizes a categorical column: each value is replaced,
// independently with probability change, by a value drawn from the column's
// empirical distribution. The transition matrix is thus
// P = (1-change)·I + change·Π with Π the marginal — the "invariant PRAM"
// choice that keeps the expected marginal distribution unchanged.
func PRAM(d *dataset.Dataset, col int, change float64, rng *rand.Rand) (*dataset.Dataset, error) {
	if change < 0 || change > 1 {
		return nil, fmt.Errorf("swap: change probability must be in [0,1], got %g", change)
	}
	if d.Attr(col).Kind == dataset.Numeric {
		return nil, fmt.Errorf("swap: PRAM applies to categorical columns; %q is numeric", d.Attr(col).Name)
	}
	vals := d.CatColumn(col)
	if len(vals) == 0 {
		return d.Clone(), nil
	}
	// Empirical marginal for resampling.
	pool := append([]string(nil), vals...)
	out := d.Clone()
	oc := out.CatColumn(col)
	for i := range oc {
		if rng.Float64() < change {
			oc[i] = pool[rng.IntN(len(pool))]
		}
	}
	return out, nil
}

// SameMultiset reports whether two float slices hold identical multisets —
// the invariant rank swapping must preserve.
func SameMultiset(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

package swap

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

func TestRankSwapPreservesMarginals(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 400, Seed: 3})
	cols := d.QuasiIdentifiers()
	m, err := RankSwap(d, cols, 5, dataset.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range cols {
		if !SameMultiset(d.NumColumn(j), m.NumColumn(j)) {
			t.Errorf("column %d multiset changed", j)
		}
	}
	if dataset.EqualValues(d, m) {
		t.Error("rank swap changed nothing")
	}
}

func TestRankSwapWindowBoundsDisplacement(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 1000, Dims: 1, Seed: 7})
	m, err := RankSwap(d, []int{0}, 2, dataset.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	// Each record's new rank must be within the window of its old rank.
	oldRank := stats.Rank(d.NumColumn(0))
	newRank := stats.Rank(m.NumColumn(0))
	window := 1000 * 2 / 100
	for i := range oldRank {
		if diff := int(math.Abs(float64(oldRank[i] - newRank[i]))); diff > window+1 {
			t.Fatalf("record %d moved %d ranks, window %d", i, diff, window)
		}
	}
}

func TestRankSwapSmallerWindowLowerDistortion(t *testing.T) {
	d := dataset.SyntheticCensus(dataset.CensusConfig{N: 600, Dims: 1, Seed: 11})
	dist := func(p float64) float64 {
		m, err := RankSwap(d, []int{0}, p, dataset.NewRand(5))
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := 0; i < d.Rows(); i++ {
			s += math.Abs(d.Float(i, 0) - m.Float(i, 0))
		}
		return s
	}
	if dist(1) >= dist(25) {
		t.Error("small swap window should distort less than large window")
	}
}

func TestRankSwapErrors(t *testing.T) {
	d := dataset.Dataset1()
	if _, err := RankSwap(d, []int{0}, 0, dataset.NewRand(1)); err == nil {
		t.Error("accepted p = 0")
	}
	if _, err := RankSwap(d, []int{0}, 101, dataset.NewRand(1)); err == nil {
		t.Error("accepted p > 100")
	}
}

func TestPRAMKeepsMarginalApprox(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 5000, Seed: 13})
	col := d.Index("aids")
	m, err := PRAM(d, col, 0.3, dataset.NewRand(17))
	if err != nil {
		t.Fatal(err)
	}
	frac := func(ds *dataset.Dataset) float64 {
		c := 0
		for i := 0; i < ds.Rows(); i++ {
			if ds.Cat(i, col) == "Y" {
				c++
			}
		}
		return float64(c) / float64(ds.Rows())
	}
	if math.Abs(frac(d)-frac(m)) > 0.02 {
		t.Errorf("PRAM marginal drifted: %v → %v", frac(d), frac(m))
	}
	// Some values must actually change.
	changed := 0
	for i := 0; i < d.Rows(); i++ {
		if d.Cat(i, col) != m.Cat(i, col) {
			changed++
		}
	}
	if changed == 0 {
		t.Error("PRAM changed nothing at change=0.3")
	}
}

func TestPRAMEdgeCases(t *testing.T) {
	d := dataset.Dataset1()
	col := d.Index("aids")
	same, err := PRAM(d, col, 0, dataset.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if !dataset.EqualValues(d, same) {
		t.Error("change=0 altered data")
	}
	if _, err := PRAM(d, col, 1.5, dataset.NewRand(1)); err == nil {
		t.Error("accepted change > 1")
	}
	if _, err := PRAM(d, d.Index("height"), 0.5, dataset.NewRand(1)); err == nil {
		t.Error("accepted numeric column")
	}
	empty := dataset.New(dataset.Attribute{Name: "c", Kind: dataset.Nominal})
	if _, err := PRAM(empty, 0, 0.5, dataset.NewRand(1)); err != nil {
		t.Errorf("empty dataset: %v", err)
	}
}

func TestSameMultiset(t *testing.T) {
	if !SameMultiset([]float64{1, 2, 2}, []float64{2, 1, 2}) {
		t.Error("permutation not recognised")
	}
	if SameMultiset([]float64{1, 2}, []float64{1, 3}) {
		t.Error("different multisets reported equal")
	}
	if SameMultiset([]float64{1}, []float64{1, 1}) {
		t.Error("length mismatch reported equal")
	}
}

package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Synthetic data generators. The paper's scenarios involve patient microdata
// (clinical trials), census-like multi-attribute microdata, and Internet
// search-engine query logs (the AOL incident); these generators produce the
// closest synthetic equivalents with controllable size, dimensionality and
// seed, so every experiment is deterministic.

// NewRand returns the deterministic PRNG used throughout the repository.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Normal draws a normal variate with the given mean and standard deviation.
func Normal(rng *rand.Rand, mean, sd float64) float64 {
	return mean + sd*rng.NormFloat64()
}

// TrialConfig parameterises SyntheticTrial.
type TrialConfig struct {
	N    int    // number of patients
	Seed uint64 // PRNG seed
	// ExtraQI adds this many additional numeric quasi-identifier columns
	// (age, income, …) to raise dimensionality; see experiment E-X3.
	ExtraQI int
}

// SyntheticTrial generates a clinical-trial dataset with the same schema
// roles as Table 1: numeric quasi-identifiers (height, weight, plus optional
// extras), a numeric confidential attribute (systolic blood pressure,
// correlated with weight as in real hypertension cohorts), and a nominal
// confidential attribute (AIDS status, rare).
func SyntheticTrial(cfg TrialConfig) *Dataset {
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	rng := NewRand(cfg.Seed)
	attrs := []Attribute{
		{Name: "height", Role: QuasiIdentifier, Kind: Numeric},
		{Name: "weight", Role: QuasiIdentifier, Kind: Numeric},
	}
	for e := 0; e < cfg.ExtraQI; e++ {
		attrs = append(attrs, Attribute{Name: fmt.Sprintf("qi%d", e+3), Role: QuasiIdentifier, Kind: Numeric})
	}
	attrs = append(attrs,
		Attribute{Name: "blood_pressure", Role: Confidential, Kind: Numeric},
		Attribute{Name: "aids", Role: Confidential, Kind: Nominal, Categories: []string{"N", "Y"}},
	)
	d := New(attrs...)
	for i := 0; i < cfg.N; i++ {
		h := Normal(rng, 170, 9)
		// Weight correlates with height (BMI around 25 with spread).
		bmi := Normal(rng, 25.5, 3.5)
		w := bmi * (h / 100) * (h / 100)
		vals := []any{round1(h), round1(w)}
		for e := 0; e < cfg.ExtraQI; e++ {
			vals = append(vals, round1(Normal(rng, 50, 15)))
		}
		// Hypertensive cohort: systolic pressure elevated, correlated
		// with weight.
		bp := Normal(rng, 120+0.35*(w-70), 9)
		aids := "N"
		if rng.Float64() < 0.08 {
			aids = "Y"
		}
		vals = append(vals, round1(bp), aids)
		d.MustAppend(vals...)
	}
	return d
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }

// Synth is the size-parameterised front door to the synthetic generators,
// used by the CLI synth subcommand and the benchmark harness. kind is
// "trial" (clinical-trial schema, 4 numeric quasi-identifiers) or "census"
// (all-numeric census-like file, 6 columns). rows must be positive.
func Synth(kind string, rows int, seed uint64) (*Dataset, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("dataset: synthetic row count must be > 0, got %d", rows)
	}
	switch kind {
	case "trial":
		return SyntheticTrial(TrialConfig{N: rows, Seed: seed, ExtraQI: 2}), nil
	case "census":
		return SyntheticCensus(CensusConfig{N: rows, Dims: 6, Seed: seed, Corr: 0.3}), nil
	default:
		return nil, fmt.Errorf("dataset: unknown synthetic kind %q (want trial or census)", kind)
	}
}

// CensusConfig parameterises SyntheticCensus.
type CensusConfig struct {
	N    int
	Dims int // number of numeric attributes (>= 2)
	Seed uint64
	// Corr in [0,1) introduces pairwise correlation between consecutive
	// attributes via a shared latent factor.
	Corr float64
}

// SyntheticCensus generates an all-numeric microdata file of Dims columns,
// the standard workload of microaggregation/noise-addition papers
// (Domingo-Ferrer & Mateo-Sanz 2002 use similar census-like numeric files).
// The first half of the columns are quasi-identifiers, the rest confidential.
func SyntheticCensus(cfg CensusConfig) *Dataset {
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	if cfg.Dims < 2 {
		cfg.Dims = 2
	}
	rng := NewRand(cfg.Seed)
	attrs := make([]Attribute, cfg.Dims)
	for j := range attrs {
		role := QuasiIdentifier
		if j >= cfg.Dims/2 {
			role = Confidential
		}
		attrs[j] = Attribute{Name: fmt.Sprintf("v%d", j+1), Role: role, Kind: Numeric}
	}
	d := New(attrs...)
	for i := 0; i < cfg.N; i++ {
		latent := rng.NormFloat64()
		vals := make([]any, cfg.Dims)
		for j := 0; j < cfg.Dims; j++ {
			mean := 100 * float64(j+1)
			sd := 10 * float64(j+1)
			z := math.Sqrt(1-cfg.Corr*cfg.Corr)*rng.NormFloat64() + cfg.Corr*latent
			vals[j] = mean + sd*z
		}
		d.MustAppend(vals...)
	}
	return d
}

// QueryLogConfig parameterises SyntheticQueryLog.
type QueryLogConfig struct {
	Users   int
	Queries int // total queries
	Topics  int // distinct query strings, Zipf-distributed popularity
	Seed    uint64
}

// QueryLogEntry is one entry of a synthetic search-engine query log — the
// artefact whose disclosure (AOL, August 2006) motivates the paper's user
// privacy dimension.
type QueryLogEntry struct {
	User  int
	Query string
}

// SyntheticQueryLog generates a query log where users issue Zipf-distributed
// queries with per-user topical bias, so that an observer of the raw log can
// profile users — the situation PIR is meant to prevent.
func SyntheticQueryLog(cfg QueryLogConfig) []QueryLogEntry {
	if cfg.Users <= 0 {
		cfg.Users = 50
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 1000
	}
	if cfg.Topics <= 0 {
		cfg.Topics = 200
	}
	rng := NewRand(cfg.Seed)
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(cfg.Topics-1))
	// Each user favours a small set of topics.
	favs := make([][]int, cfg.Users)
	for u := range favs {
		n := 3 + rng.IntN(5)
		favs[u] = make([]int, n)
		for k := range favs[u] {
			favs[u][k] = int(zipf.Uint64())
		}
	}
	log := make([]QueryLogEntry, cfg.Queries)
	for q := range log {
		u := rng.IntN(cfg.Users)
		var topic int
		if rng.Float64() < 0.6 {
			topic = favs[u][rng.IntN(len(favs[u]))]
		} else {
			topic = int(zipf.Uint64())
		}
		log[q] = QueryLogEntry{User: u, Query: fmt.Sprintf("topic-%03d", topic)}
	}
	return log
}

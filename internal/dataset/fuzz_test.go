package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV drives the CSV reader with arbitrary input: it must never
// panic, and anything it accepts must round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := Dataset2().WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("height,weight,blood_pressure,aids\n1,2,3,Y\n")
	f.Add("height,weight\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input), TrialSchema())
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := d.WriteCSV(&out); err != nil {
			t.Fatalf("accepted input failed to serialise: %v", err)
		}
		back, err := ReadCSV(&out, TrialSchema())
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !EqualValues(d, back) {
			t.Fatal("round trip changed values")
		}
	})
}

// Package dataset provides the tabular data model shared by every privacy
// technology in this repository: attribute roles (identifier,
// quasi-identifier, confidential, non-confidential), typed columns, views,
// and the toy fixtures from Table 1 of Domingo-Ferrer (SDM 2007).
//
// The model is deliberately simple — a column-oriented table of float64 and
// string columns — because every statistical disclosure control and
// privacy-preserving data mining method in the paper operates on flat
// microdata files.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"privacy3d/internal/stats"
)

// Role classifies an attribute by its disclosure function, following the
// terminology of Samarati (2001) and Dalenius (1986) used in the paper.
type Role int

const (
	// Identifier attributes unambiguously identify a respondent (name,
	// social security number). They must be suppressed before release.
	Identifier Role = iota
	// QuasiIdentifier ("key") attributes identify a respondent with some
	// ambiguity when combined (height, weight, ZIP code, birth date).
	QuasiIdentifier
	// Confidential attributes carry the sensitive information the intruder
	// wants to learn (blood pressure, AIDS status, salary).
	Confidential
	// NonConfidential attributes are neither identifying nor sensitive.
	NonConfidential
)

// String returns the conventional SDC name of the role.
func (r Role) String() string {
	switch r {
	case Identifier:
		return "identifier"
	case QuasiIdentifier:
		return "quasi-identifier"
	case Confidential:
		return "confidential"
	case NonConfidential:
		return "non-confidential"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Kind is the value domain of an attribute.
type Kind int

const (
	// Numeric attributes take real values and support arithmetic.
	Numeric Kind = iota
	// Ordinal attributes are categorical with a total order (education
	// level). Values are stored as strings; the order is the order in
	// which categories are declared on the Attribute.
	Ordinal
	// Nominal attributes are categorical without an order (diagnosis).
	Nominal
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Ordinal:
		return "ordinal"
	case Nominal:
		return "nominal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a Dataset.
type Attribute struct {
	Name string
	Role Role
	Kind Kind
	// Categories fixes the ordered domain of an Ordinal attribute. It is
	// optional for Nominal attributes and ignored for Numeric ones.
	Categories []string
}

// Dataset is a column-oriented table of microdata. Numeric attributes are
// stored in float64 columns, categorical ones in string columns; exactly one
// of the two is non-nil per attribute. A Dataset is not safe for concurrent
// mutation.
type Dataset struct {
	attrs []Attribute
	nums  [][]float64 // nums[j] non-nil iff attrs[j].Kind == Numeric
	cats  [][]string  // cats[j] non-nil iff attrs[j].Kind != Numeric
	rows  int
}

// New creates an empty dataset with the given schema.
func New(attrs ...Attribute) *Dataset {
	d := &Dataset{attrs: append([]Attribute(nil), attrs...)}
	d.nums = make([][]float64, len(attrs))
	d.cats = make([][]string, len(attrs))
	for j, a := range attrs {
		if a.Kind == Numeric {
			d.nums[j] = []float64{}
		} else {
			d.cats[j] = []string{}
		}
	}
	return d
}

// NewFromColumns builds a dataset directly from column slices — the bulk
// import path used by the columnar store when materializing a snapshot.
// nums[j] must be non-nil (length rows) exactly when attrs[j] is Numeric,
// cats[j] exactly otherwise. The columns are adopted, not copied: the
// caller must not mutate them afterwards.
func NewFromColumns(attrs []Attribute, rows int, nums [][]float64, cats [][]string) (*Dataset, error) {
	if len(nums) != len(attrs) || len(cats) != len(attrs) {
		return nil, fmt.Errorf("dataset: got %d/%d columns for %d attributes", len(nums), len(cats), len(attrs))
	}
	d := &Dataset{attrs: append([]Attribute(nil), attrs...), rows: rows}
	d.nums = make([][]float64, len(attrs))
	d.cats = make([][]string, len(attrs))
	for j, a := range attrs {
		if a.Kind == Numeric {
			if nums[j] == nil || len(nums[j]) != rows {
				return nil, fmt.Errorf("dataset: numeric column %q has %d values for %d rows", a.Name, len(nums[j]), rows)
			}
			d.nums[j] = nums[j]
		} else {
			if cats[j] == nil || len(cats[j]) != rows {
				return nil, fmt.Errorf("dataset: categorical column %q has %d values for %d rows", a.Name, len(cats[j]), rows)
			}
			d.cats[j] = cats[j]
		}
	}
	return d, nil
}

// Rows returns the number of records.
func (d *Dataset) Rows() int { return d.rows }

// Cols returns the number of attributes.
func (d *Dataset) Cols() int { return len(d.attrs) }

// Attrs returns the schema. The returned slice must not be modified.
func (d *Dataset) Attrs() []Attribute { return d.attrs }

// Attr returns the attribute at column j.
func (d *Dataset) Attr(j int) Attribute { return d.attrs[j] }

// Index returns the column index of the named attribute, or -1.
func (d *Dataset) Index(name string) int {
	for j, a := range d.attrs {
		if a.Name == name {
			return j
		}
	}
	return -1
}

// ColumnsByRole returns the indices of all attributes with the given role.
func (d *Dataset) ColumnsByRole(r Role) []int {
	var idx []int
	for j, a := range d.attrs {
		if a.Role == r {
			idx = append(idx, j)
		}
	}
	return idx
}

// QuasiIdentifiers returns the indices of the quasi-identifier attributes.
func (d *Dataset) QuasiIdentifiers() []int { return d.ColumnsByRole(QuasiIdentifier) }

// ConfidentialAttrs returns the indices of the confidential attributes.
func (d *Dataset) ConfidentialAttrs() []int { return d.ColumnsByRole(Confidential) }

// ErrSchema reports a value/schema mismatch when appending records.
var ErrSchema = errors.New("dataset: value does not match schema")

// Append adds one record. vals must have one entry per attribute: float64
// (or int) for numeric attributes, string for categorical ones.
func (d *Dataset) Append(vals ...any) error {
	if len(vals) != len(d.attrs) {
		return fmt.Errorf("%w: got %d values for %d attributes", ErrSchema, len(vals), len(d.attrs))
	}
	// Validate before mutating so a failed append leaves d unchanged.
	fs := make([]float64, len(vals))
	ss := make([]string, len(vals))
	for j, v := range vals {
		if d.attrs[j].Kind == Numeric {
			switch x := v.(type) {
			case float64:
				fs[j] = x
			case int:
				fs[j] = float64(x)
			default:
				return fmt.Errorf("%w: attribute %q is numeric, got %T", ErrSchema, d.attrs[j].Name, v)
			}
		} else {
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("%w: attribute %q is categorical, got %T", ErrSchema, d.attrs[j].Name, v)
			}
			ss[j] = s
		}
	}
	for j := range d.attrs {
		if d.attrs[j].Kind == Numeric {
			d.nums[j] = append(d.nums[j], fs[j])
		} else {
			d.cats[j] = append(d.cats[j], ss[j])
		}
	}
	d.rows++
	return nil
}

// MustAppend is Append that panics on schema mismatch. Intended for fixtures
// and tests where the schema is statically known.
func (d *Dataset) MustAppend(vals ...any) {
	if err := d.Append(vals...); err != nil {
		panic(err)
	}
}

// Float returns the numeric value at (row i, column j).
// It panics if the column is not numeric, mirroring slice indexing.
func (d *Dataset) Float(i, j int) float64 {
	if d.nums[j] == nil {
		panic(fmt.Sprintf("dataset: attribute %q is not numeric", d.attrs[j].Name))
	}
	return d.nums[j][i]
}

// SetFloat updates the numeric value at (row i, column j).
func (d *Dataset) SetFloat(i, j int, v float64) {
	if d.nums[j] == nil {
		panic(fmt.Sprintf("dataset: attribute %q is not numeric", d.attrs[j].Name))
	}
	d.nums[j][i] = v
}

// Cat returns the categorical value at (row i, column j).
func (d *Dataset) Cat(i, j int) string {
	if d.cats[j] == nil {
		panic(fmt.Sprintf("dataset: attribute %q is not categorical", d.attrs[j].Name))
	}
	return d.cats[j][i]
}

// SetCat updates the categorical value at (row i, column j).
func (d *Dataset) SetCat(i, j int, v string) {
	if d.cats[j] == nil {
		panic(fmt.Sprintf("dataset: attribute %q is not categorical", d.attrs[j].Name))
	}
	d.cats[j][i] = v
}

// Value returns the value at (row i, column j) as float64 or string.
func (d *Dataset) Value(i, j int) any {
	if d.nums[j] != nil {
		return d.nums[j][i]
	}
	return d.cats[j][i]
}

// NumColumn returns the backing slice of a numeric column. Mutating the
// returned slice mutates the dataset.
func (d *Dataset) NumColumn(j int) []float64 {
	if d.nums[j] == nil {
		panic(fmt.Sprintf("dataset: attribute %q is not numeric", d.attrs[j].Name))
	}
	return d.nums[j]
}

// CatColumn returns the backing slice of a categorical column.
func (d *Dataset) CatColumn(j int) []string {
	if d.cats[j] == nil {
		panic(fmt.Sprintf("dataset: attribute %q is not categorical", d.attrs[j].Name))
	}
	return d.cats[j]
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	c := New(d.attrs...)
	c.rows = d.rows
	for j := range d.attrs {
		if d.nums[j] != nil {
			c.nums[j] = append([]float64(nil), d.nums[j]...)
		} else {
			c.cats[j] = append([]string(nil), d.cats[j]...)
		}
	}
	return c
}

// Select returns a new dataset with only the given rows (in order, repeats
// allowed). Row indices out of range panic, mirroring slice indexing.
func (d *Dataset) Select(rows []int) *Dataset {
	c := New(d.attrs...)
	for _, i := range rows {
		vals := make([]any, len(d.attrs))
		for j := range d.attrs {
			vals[j] = d.Value(i, j)
		}
		c.MustAppend(vals...)
	}
	return c
}

// Project returns a new dataset with only the given columns.
func (d *Dataset) Project(cols []int) *Dataset {
	attrs := make([]Attribute, len(cols))
	for k, j := range cols {
		attrs[k] = d.attrs[j]
	}
	c := New(attrs...)
	c.rows = d.rows
	for k, j := range cols {
		if d.nums[j] != nil {
			c.nums[k] = append([]float64(nil), d.nums[j]...)
		} else {
			c.cats[k] = append([]string(nil), d.cats[j]...)
		}
	}
	return c
}

// DropRole returns a copy of the dataset without attributes of the given
// role. It is typically used to strip Identifier columns before release.
func (d *Dataset) DropRole(r Role) *Dataset {
	var keep []int
	for j, a := range d.attrs {
		if a.Role != r {
			keep = append(keep, j)
		}
	}
	return d.Project(keep)
}

// NumericMatrix extracts the given numeric columns as a row-major matrix.
func (d *Dataset) NumericMatrix(cols []int) [][]float64 {
	m := make([][]float64, d.rows)
	for i := range m {
		row := make([]float64, len(cols))
		for k, j := range cols {
			row[k] = d.Float(i, j)
		}
		m[i] = row
	}
	return m
}

// NumericFlat extracts the given numeric columns as a flat row-major
// matrix backed by one contiguous allocation — the representation the
// linkage/MDAV hot paths scan, where per-row pointer chasing would
// dominate the O(n²) inner loops.
func (d *Dataset) NumericFlat(cols []int) *stats.Flat {
	f := stats.NewFlat(d.rows, len(cols))
	for k, j := range cols {
		col := d.NumColumn(j)
		for i, v := range col {
			f.Set(i, k, v)
		}
	}
	return f
}

// SetNumericMatrix writes a row-major matrix back into the given numeric
// columns. The matrix must have Rows() rows and len(cols) columns.
func (d *Dataset) SetNumericMatrix(cols []int, m [][]float64) error {
	if len(m) != d.rows {
		return fmt.Errorf("dataset: matrix has %d rows, dataset has %d", len(m), d.rows)
	}
	for i, row := range m {
		if len(row) != len(cols) {
			return fmt.Errorf("dataset: matrix row %d has %d values for %d columns", i, len(row), len(cols))
		}
		for k, j := range cols {
			d.SetFloat(i, j, row[k])
		}
	}
	return nil
}

// KeyString renders the values of the given columns at row i as a canonical
// string, usable as a map key for grouping (equivalence classes).
func (d *Dataset) KeyString(i int, cols []int) string {
	var b strings.Builder
	for k, j := range cols {
		if k > 0 {
			b.WriteByte('\x1f') // unit separator: cannot appear in data
		}
		if d.nums[j] != nil {
			// Canonical float formatting; -0 normalised to 0 so that
			// equal-valued keys always collide.
			v := d.nums[j][i]
			if v == 0 {
				v = 0
			}
			fmt.Fprintf(&b, "%g", v)
		} else {
			b.WriteString(d.cats[j][i])
		}
	}
	return b.String()
}

// GroupBy partitions row indices by their KeyString over cols. Groups are
// returned sorted by key for determinism.
func (d *Dataset) GroupBy(cols []int) [][]int {
	byKey := map[string][]int{}
	for i := 0; i < d.rows; i++ {
		k := d.KeyString(i, cols)
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	groups := make([][]int, len(keys))
	for g, k := range keys {
		groups[g] = byKey[k]
	}
	return groups
}

// EqualValues reports whether two datasets have the same schema names/kinds
// and identical cell values (floats compared exactly; NaN equals NaN).
func EqualValues(a, b *Dataset) bool {
	if a.rows != b.rows || len(a.attrs) != len(b.attrs) {
		return false
	}
	for j := range a.attrs {
		if a.attrs[j].Name != b.attrs[j].Name || a.attrs[j].Kind != b.attrs[j].Kind {
			return false
		}
	}
	for j := range a.attrs {
		if a.nums[j] != nil {
			for i := 0; i < a.rows; i++ {
				x, y := a.nums[j][i], b.nums[j][i]
				if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
					return false
				}
			}
		} else {
			for i := 0; i < a.rows; i++ {
				if a.cats[j][i] != b.cats[j][i] {
					return false
				}
			}
		}
	}
	return true
}

// String renders a small dataset as an aligned text table (for examples and
// debugging; not intended for large data).
func (d *Dataset) String() string {
	var b strings.Builder
	widths := make([]int, len(d.attrs))
	cells := make([][]string, d.rows+1)
	header := make([]string, len(d.attrs))
	for j, a := range d.attrs {
		header[j] = a.Name
		widths[j] = len(a.Name)
	}
	cells[0] = header
	for i := 0; i < d.rows; i++ {
		row := make([]string, len(d.attrs))
		for j := range d.attrs {
			var s string
			if d.nums[j] != nil {
				s = trimFloat(d.nums[j][i])
			} else {
				s = d.cats[j][i]
			}
			row[j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
		cells[i+1] = row
	}
	for _, row := range cells {
		for j, s := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			for p := len(s); p < widths[j]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

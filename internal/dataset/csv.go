package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row. Numeric cells are written
// with %g formatting; categorical cells verbatim.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(d.attrs))
	for j, a := range d.attrs {
		header[j] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	rec := make([]string, len(d.attrs))
	for i := 0; i < d.rows; i++ {
		for j := range d.attrs {
			if d.nums[j] != nil {
				rec[j] = strconv.FormatFloat(d.nums[j][i], 'g', -1, 64)
			} else {
				rec[j] = d.cats[j][i]
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads records into a dataset with the given schema. The first CSV
// row must be a header whose names match the schema in order.
func ReadCSV(r io.Reader, attrs []Attribute) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(attrs)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	for j, a := range attrs {
		if header[j] != a.Name {
			return nil, fmt.Errorf("dataset: csv header %q does not match attribute %q", header[j], a.Name)
		}
	}
	d := New(attrs...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		vals := make([]any, len(attrs))
		for j, a := range attrs {
			if a.Kind == Numeric {
				v, err := strconv.ParseFloat(rec[j], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: csv line %d, attribute %q: %w", line, a.Name, err)
				}
				vals[j] = v
			} else {
				vals[j] = rec[j]
			}
		}
		if err := d.Append(vals...); err != nil {
			return nil, err
		}
	}
	return d, nil
}

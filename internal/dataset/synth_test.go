package dataset

import "testing"

// TestSynthRowsValidation is the table-driven gate on the size knob the
// CLI synth subcommand exposes: non-positive row counts and unknown kinds
// must be rejected, valid requests must honour the exact size.
func TestSynthRowsValidation(t *testing.T) {
	tests := []struct {
		name    string
		kind    string
		rows    int
		wantErr bool
	}{
		{"trial ok", "trial", 50, false},
		{"census ok", "census", 120, false},
		{"single row", "trial", 1, false},
		{"zero rows", "trial", 0, true},
		{"negative rows", "trial", -7, true},
		{"zero rows census", "census", 0, true},
		{"unknown kind", "galaxy", 10, true},
		{"unknown kind bad rows", "galaxy", -1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := Synth(tt.kind, tt.rows, 5)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Synth(%q, %d) accepted", tt.kind, tt.rows)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if d.Rows() != tt.rows {
				t.Errorf("Rows() = %d, want %d", d.Rows(), tt.rows)
			}
		})
	}
}

// TestSynthDeterministicAndShaped pins what the benchmark harness assumes:
// same seed same data, and the trial kind carries ≥ 2 numeric
// quasi-identifiers (the linkage attack surface).
func TestSynthDeterministicAndShaped(t *testing.T) {
	a, err := Synth("trial", 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth("trial", 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualValues(a, b) {
		t.Error("same seed produced different data")
	}
	if len(a.QuasiIdentifiers()) < 2 {
		t.Errorf("trial kind has %d quasi-identifiers, want ≥ 2", len(a.QuasiIdentifiers()))
	}
	c, err := Synth("trial", 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if EqualValues(a, c) {
		t.Error("different seeds produced identical data")
	}
}

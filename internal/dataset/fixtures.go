package dataset

// This file encodes the two toy patient datasets of Table 1 in
// Domingo-Ferrer (SDM 2007). Both share the same schema: the records were
// obtained in a clinical trial of a hypertension drug, direct identifiers
// have already been suppressed, (height, weight) are the quasi-identifier
// ("key") attributes and (blood pressure, AIDS) are confidential.
//
// Dataset 1 (Table 1, left) spontaneously satisfies 3-anonymity with respect
// to (height, weight). Dataset 2 (Table 1, right) does not: it contains
// unique quasi-identifier combinations, among them a single individual
// shorter than 165 cm and heavier than 105 kg whose systolic blood pressure
// is 146 mmHg — the respondent re-identified by the paper's PIR attack in
// Section 3.

// TrialSchema returns the attribute schema of the Table 1 patient datasets.
func TrialSchema() []Attribute {
	return []Attribute{
		{Name: "height", Role: QuasiIdentifier, Kind: Numeric},
		{Name: "weight", Role: QuasiIdentifier, Kind: Numeric},
		{Name: "blood_pressure", Role: Confidential, Kind: Numeric},
		{Name: "aids", Role: Confidential, Kind: Nominal, Categories: []string{"N", "Y"}},
	}
}

// Dataset1 returns patient data set no. 1 (Table 1, left): nine records,
// three distinct (height, weight) combinations each shared by three
// patients, hence spontaneously 3-anonymous on the quasi-identifiers.
//
// The published table reproduces only the properties of the records (the
// scanned text does not preserve the cell values); the values below realise
// exactly the structure the paper states: 3 groups × 3 records, with the
// confidential attributes varying inside each group.
func Dataset1() *Dataset {
	d := New(TrialSchema()...)
	rows := []struct {
		h, w, bp float64
		aids     string
	}{
		{170, 70, 135, "Y"},
		{170, 70, 142, "N"},
		{170, 70, 128, "N"},
		{175, 80, 151, "N"},
		{175, 80, 139, "Y"},
		{175, 80, 144, "N"},
		{180, 95, 147, "N"},
		{180, 95, 160, "Y"},
		{180, 95, 141, "N"},
	}
	for _, r := range rows {
		d.MustAppend(r.h, r.w, r.bp, r.aids)
	}
	return d
}

// Dataset2 returns patient data set no. 2 (Table 1, right): nine records
// that are NOT 3-anonymous on (height, weight). It contains exactly one
// individual with height < 165 and weight > 105, whose systolic blood
// pressure is 146 mmHg — the value returned by the paper's second PIR query.
func Dataset2() *Dataset {
	d := New(TrialSchema()...)
	rows := []struct {
		h, w, bp float64
		aids     string
	}{
		{160, 108, 146, "N"}, // the unique small-and-heavy respondent
		{170, 70, 135, "Y"},
		{170, 70, 142, "N"},
		{172, 74, 128, "N"},
		{175, 80, 151, "N"},
		{175, 80, 139, "Y"},
		{178, 86, 144, "N"},
		{180, 95, 147, "Y"},
		{182, 98, 141, "N"},
	}
	for _, r := range rows {
		d.MustAppend(r.h, r.w, r.bp, r.aids)
	}
	return d
}

package dataset

import (
	"fmt"
	"math/rand/v2"
)

// Shuffle returns a copy of d with rows in uniformly random order.
func (d *Dataset) Shuffle(rng *rand.Rand) *Dataset {
	rows := make([]int, d.Rows())
	for i := range rows {
		rows[i] = i
	}
	rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	return d.Select(rows)
}

// Split partitions d into a training and a test set, with the first
// fraction of rows (after shuffling with rng, if non-nil) going to train.
// fraction must lie strictly between 0 and 1, and both sides must end up
// non-empty.
func (d *Dataset) Split(fraction float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if !(fraction > 0 && fraction < 1) {
		return nil, nil, fmt.Errorf("dataset: split fraction must be in (0,1), got %g", fraction)
	}
	src := d
	if rng != nil {
		src = d.Shuffle(rng)
	}
	cut := int(float64(src.Rows()) * fraction)
	if cut == 0 || cut == src.Rows() {
		return nil, nil, fmt.Errorf("dataset: split of %d rows at %g leaves an empty side", d.Rows(), fraction)
	}
	trainRows := make([]int, cut)
	testRows := make([]int, src.Rows()-cut)
	for i := range trainRows {
		trainRows[i] = i
	}
	for i := range testRows {
		testRows[i] = cut + i
	}
	return src.Select(trainRows), src.Select(testRows), nil
}

// Folds partitions row indices into k near-equal folds for cross
// validation, shuffled by rng when non-nil.
func (d *Dataset) Folds(k int, rng *rand.Rand) ([][]int, error) {
	if k < 2 || k > d.Rows() {
		return nil, fmt.Errorf("dataset: need 2 ≤ k ≤ rows (%d), got %d", d.Rows(), k)
	}
	rows := make([]int, d.Rows())
	for i := range rows {
		rows[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	}
	folds := make([][]int, k)
	for i, r := range rows {
		folds[i%k] = append(folds[i%k], r)
	}
	return folds, nil
}

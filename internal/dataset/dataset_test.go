package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() []Attribute {
	return []Attribute{
		{Name: "x", Role: QuasiIdentifier, Kind: Numeric},
		{Name: "y", Role: Confidential, Kind: Numeric},
		{Name: "c", Role: Confidential, Kind: Nominal},
	}
}

func TestAppendAndAccess(t *testing.T) {
	d := New(testSchema()...)
	if err := d.Append(1.5, 2, "a"); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := d.Append(3, 4.25, "b"); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if d.Rows() != 2 || d.Cols() != 3 {
		t.Fatalf("Rows/Cols = %d/%d, want 2/3", d.Rows(), d.Cols())
	}
	if got := d.Float(0, 0); got != 1.5 {
		t.Errorf("Float(0,0) = %v, want 1.5", got)
	}
	if got := d.Float(1, 1); got != 4.25 {
		t.Errorf("Float(1,1) = %v, want 4.25", got)
	}
	if got := d.Cat(1, 2); got != "b" {
		t.Errorf("Cat(1,2) = %q, want b", got)
	}
	if got := d.Value(0, 2); got != "a" {
		t.Errorf("Value(0,2) = %v, want a", got)
	}
	if got := d.Value(0, 0); got != 1.5 {
		t.Errorf("Value(0,0) = %v, want 1.5", got)
	}
}

func TestAppendSchemaMismatch(t *testing.T) {
	d := New(testSchema()...)
	cases := [][]any{
		{1.0, 2.0},           // too few
		{1.0, 2.0, "a", "b"}, // too many
		{"oops", 2.0, "a"},   // wrong type numeric
		{1.0, 2.0, 42},       // wrong type categorical
	}
	for _, vals := range cases {
		if err := d.Append(vals...); err == nil {
			t.Errorf("Append(%v) succeeded, want error", vals)
		}
	}
	if d.Rows() != 0 {
		t.Errorf("failed appends mutated dataset: Rows = %d", d.Rows())
	}
}

func TestRolesAndIndex(t *testing.T) {
	d := Dataset1()
	if qi := d.QuasiIdentifiers(); len(qi) != 2 || qi[0] != 0 || qi[1] != 1 {
		t.Errorf("QuasiIdentifiers = %v, want [0 1]", qi)
	}
	if cf := d.ConfidentialAttrs(); len(cf) != 2 || cf[0] != 2 || cf[1] != 3 {
		t.Errorf("ConfidentialAttrs = %v, want [2 3]", cf)
	}
	if j := d.Index("weight"); j != 1 {
		t.Errorf("Index(weight) = %d, want 1", j)
	}
	if j := d.Index("nope"); j != -1 {
		t.Errorf("Index(nope) = %d, want -1", j)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := Dataset1()
	c := d.Clone()
	if !EqualValues(d, c) {
		t.Fatal("clone differs from original")
	}
	c.SetFloat(0, 0, -1)
	c.SetCat(0, 3, "Z")
	if d.Float(0, 0) == -1 || d.Cat(0, 3) == "Z" {
		t.Error("mutating clone changed original")
	}
}

func TestSelectProject(t *testing.T) {
	d := Dataset2()
	s := d.Select([]int{0, 0, 8})
	if s.Rows() != 3 {
		t.Fatalf("Select rows = %d, want 3", s.Rows())
	}
	if s.Float(0, 2) != 146 || s.Float(1, 2) != 146 {
		t.Errorf("selected rows lost values: %v %v", s.Float(0, 2), s.Float(1, 2))
	}
	p := d.Project([]int{1, 3})
	if p.Cols() != 2 || p.Attr(0).Name != "weight" || p.Attr(1).Name != "aids" {
		t.Errorf("Project schema wrong: %+v", p.Attrs())
	}
	if p.Rows() != d.Rows() {
		t.Errorf("Project rows = %d, want %d", p.Rows(), d.Rows())
	}
	if p.Float(0, 0) != 108 {
		t.Errorf("projected value = %v, want 108", p.Float(0, 0))
	}
}

func TestDropRole(t *testing.T) {
	attrs := append([]Attribute{{Name: "name", Role: Identifier, Kind: Nominal}}, TrialSchema()...)
	d := New(attrs...)
	d.MustAppend("alice", 170.0, 70.0, 135.0, "N")
	r := d.DropRole(Identifier)
	if r.Cols() != 4 || r.Index("name") != -1 {
		t.Errorf("DropRole kept identifier: %+v", r.Attrs())
	}
	if r.Float(0, 0) != 170 {
		t.Errorf("DropRole lost values")
	}
}

func TestGroupBy(t *testing.T) {
	d := Dataset1()
	groups := d.GroupBy(d.QuasiIdentifiers())
	if len(groups) != 3 {
		t.Fatalf("GroupBy: %d groups, want 3", len(groups))
	}
	for _, g := range groups {
		if len(g) != 3 {
			t.Errorf("group size %d, want 3", len(g))
		}
	}
	d2 := Dataset2()
	groups2 := d2.GroupBy(d2.QuasiIdentifiers())
	min := d2.Rows()
	for _, g := range groups2 {
		if len(g) < min {
			min = len(g)
		}
	}
	if min != 1 {
		t.Errorf("Dataset2 min group = %d, want 1 (not k-anonymous)", min)
	}
}

func TestGroupByCoversAllRows(t *testing.T) {
	d := SyntheticTrial(TrialConfig{N: 200, Seed: 7})
	groups := d.GroupBy(d.QuasiIdentifiers())
	seen := map[int]bool{}
	for _, g := range groups {
		for _, i := range g {
			if seen[i] {
				t.Fatalf("row %d appears in two groups", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != d.Rows() {
		t.Errorf("groups cover %d rows, want %d", len(seen), d.Rows())
	}
}

func TestNumericMatrixRoundTrip(t *testing.T) {
	d := Dataset1()
	cols := d.QuasiIdentifiers()
	m := d.NumericMatrix(cols)
	for i := range m {
		for k := range m[i] {
			m[i][k] += 1
		}
	}
	if err := d.SetNumericMatrix(cols, m); err != nil {
		t.Fatalf("SetNumericMatrix: %v", err)
	}
	if d.Float(0, 0) != 171 {
		t.Errorf("write-back failed: %v", d.Float(0, 0))
	}
	if err := d.SetNumericMatrix(cols, m[:2]); err == nil {
		t.Error("SetNumericMatrix accepted wrong row count")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Dataset2()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, TrialSchema())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !EqualValues(d, got) {
		t.Error("CSV round trip changed values")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), TrialSchema()); err == nil {
		t.Error("ReadCSV accepted wrong header")
	}
	bad := "height,weight,blood_pressure,aids\nxx,70,120,N\n"
	if _, err := ReadCSV(strings.NewReader(bad), TrialSchema()); err == nil {
		t.Error("ReadCSV accepted non-numeric cell")
	}
}

func TestTable1Fixtures(t *testing.T) {
	d1, d2 := Dataset1(), Dataset2()
	if d1.Rows() != 9 || d2.Rows() != 9 {
		t.Fatalf("fixtures must have 9 records each, got %d and %d", d1.Rows(), d2.Rows())
	}
	// Dataset 2 has exactly one record with height<165 and weight>105,
	// with blood pressure 146 (the paper's PIR attack target).
	var hits []int
	for i := 0; i < d2.Rows(); i++ {
		if d2.Float(i, 0) < 165 && d2.Float(i, 1) > 105 {
			hits = append(hits, i)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("Dataset2: %d records with height<165 ∧ weight>105, want 1", len(hits))
	}
	if bp := d2.Float(hits[0], 2); bp != 146 {
		t.Errorf("target blood pressure = %v, want 146", bp)
	}
}

func TestKeyStringSeparatorSafety(t *testing.T) {
	// Two rows whose concatenated values collide without a separator must
	// get distinct keys.
	d := New(
		Attribute{Name: "a", Kind: Nominal},
		Attribute{Name: "b", Kind: Nominal},
	)
	d.MustAppend("ab", "c")
	d.MustAppend("a", "bc")
	if d.KeyString(0, []int{0, 1}) == d.KeyString(1, []int{0, 1}) {
		t.Error("KeyString collides across different rows")
	}
}

func TestKeyStringNegativeZero(t *testing.T) {
	d := New(Attribute{Name: "a", Kind: Numeric})
	d.MustAppend(0.0)
	d.MustAppend(math.Copysign(0, -1))
	if d.KeyString(0, []int{0}) != d.KeyString(1, []int{0}) {
		t.Error("KeyString distinguishes 0 and -0")
	}
}

func TestStringRendering(t *testing.T) {
	s := Dataset1().String()
	if !strings.Contains(s, "height") || !strings.Contains(s, "170") {
		t.Errorf("String() missing content:\n%s", s)
	}
}

func TestSyntheticTrialShape(t *testing.T) {
	d := SyntheticTrial(TrialConfig{N: 500, Seed: 1, ExtraQI: 2})
	if d.Rows() != 500 {
		t.Fatalf("rows = %d", d.Rows())
	}
	if got := len(d.QuasiIdentifiers()); got != 4 {
		t.Errorf("QIs = %d, want 4", got)
	}
	// Determinism: same seed, same data.
	e := SyntheticTrial(TrialConfig{N: 500, Seed: 1, ExtraQI: 2})
	if !EqualValues(d, e) {
		t.Error("SyntheticTrial is not deterministic for a fixed seed")
	}
	f := SyntheticTrial(TrialConfig{N: 500, Seed: 2, ExtraQI: 2})
	if EqualValues(d, f) {
		t.Error("different seeds produced identical data")
	}
}

func TestSyntheticCensusCorrelation(t *testing.T) {
	d := SyntheticCensus(CensusConfig{N: 4000, Dims: 4, Seed: 3, Corr: 0.9})
	// Columns should be positively correlated through the latent factor.
	x, y := d.NumColumn(0), d.NumColumn(1)
	var sx, sy, sxy, sxx, syy float64
	n := float64(len(x))
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	for i := range x {
		sxy += (x[i] - mx) * (y[i] - my)
		sxx += (x[i] - mx) * (x[i] - mx)
		syy += (y[i] - my) * (y[i] - my)
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r < 0.5 {
		t.Errorf("latent-factor correlation = %.3f, want > 0.5", r)
	}
}

func TestSyntheticQueryLog(t *testing.T) {
	log := SyntheticQueryLog(QueryLogConfig{Users: 10, Queries: 300, Topics: 50, Seed: 9})
	if len(log) != 300 {
		t.Fatalf("len = %d", len(log))
	}
	users := map[int]bool{}
	for _, e := range log {
		if e.User < 0 || e.User >= 10 {
			t.Fatalf("user %d out of range", e.User)
		}
		users[e.User] = true
		if !strings.HasPrefix(e.Query, "topic-") {
			t.Fatalf("query %q malformed", e.Query)
		}
	}
	if len(users) < 5 {
		t.Errorf("only %d distinct users in log", len(users))
	}
}

func TestSelectRoundTripProperty(t *testing.T) {
	// Property: selecting all rows in order is identity.
	f := func(seed uint64) bool {
		d := SyntheticTrial(TrialConfig{N: 50, Seed: seed % 1000})
		rows := make([]int, d.Rows())
		for i := range rows {
			rows[i] = i
		}
		return EqualValues(d, d.Select(rows))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestShuffleAndSplit(t *testing.T) {
	d := SyntheticTrial(TrialConfig{N: 100, Seed: 8})
	sh := d.Shuffle(NewRand(1))
	if sh.Rows() != d.Rows() {
		t.Fatalf("shuffle changed row count")
	}
	if EqualValues(d, sh) {
		t.Error("shuffle left order unchanged (astronomically unlikely)")
	}
	// Same multiset of records: sort both by a key column and compare.
	train, test, err := d.Split(0.7, NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if train.Rows() != 70 || test.Rows() != 30 {
		t.Errorf("split sizes = %d/%d", train.Rows(), test.Rows())
	}
	if _, _, err := d.Split(0, nil); err == nil {
		t.Error("accepted fraction 0")
	}
	if _, _, err := d.Split(1, nil); err == nil {
		t.Error("accepted fraction 1")
	}
	tiny := d.Select([]int{0})
	if _, _, err := tiny.Split(0.5, nil); err == nil {
		t.Error("accepted split leaving an empty side")
	}
	// Deterministic split without rng keeps order.
	tr2, _, err := d.Split(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Float(0, 0) != d.Float(0, 0) {
		t.Error("nil-rng split should preserve order")
	}
}

func TestFolds(t *testing.T) {
	d := SyntheticTrial(TrialConfig{N: 53, Seed: 9})
	folds, err := d.Folds(5, NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) < 10 || len(f) > 11 {
			t.Errorf("fold size %d not near-equal", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Fatalf("row %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 53 {
		t.Errorf("folds cover %d of 53 rows", len(seen))
	}
	if _, err := d.Folds(1, nil); err == nil {
		t.Error("accepted k = 1")
	}
	if _, err := d.Folds(54, nil); err == nil {
		t.Error("accepted k > rows")
	}
}

// Package sdcquery implements the interactive statistical database of the
// paper's Section 3: users submit statistical queries (COUNT, SUM, AVG with
// predicates) and the data owner applies an inference-control strategy —
// query-set-size restriction, Chin–Ozsoyoglu auditing ([7]), output
// perturbation (Duncan & Mukherjee, [14]), interval camouflage (Gopal,
// Garfinkel & Goes, [16]), Denning's random sample queries, overlap
// restriction, or differential privacy (calibrated Laplace/Gaussian noise
// with a per-principal ε-budget ledger; see Protection and internal/dp).
// The server records every query it sees, which is precisely why this
// architecture offers no user privacy: "All SDC methods for interactive
// statistical databases assume that the data owner ... exactly knows the
// queries submitted by users."
//
// Queries are submitted with Server.Ask, or Server.AskAs when the caller
// has a budget-accounting identity — DifferentialPrivacy requires one and
// refuses anonymous queries with dp.ErrNoPrincipal; once a principal's ε
// budget is spent further queries fail with an error wrapping
// dp.ErrBudgetExhausted and release nothing.
//
// NewHandler exposes the server over HTTP. The untrusted-user surface
// (POST /query, POST /sql) goes through the configured inference control
// and, under DifferentialPrivacy, identifies callers by the
// X-Privacy3D-Principal header (429 with the remaining ε once the budget
// is spent). POST /protect — a seeded masked release of the served
// microdata — is an owner-only operation gated by the HandlerConfig
// bearer token and disabled entirely without one, and every release has
// Identifier-role columns stripped first: direct identifiers never ship,
// whatever masking method the owner picks.
//
// The package also implements the Schlörer tracker attack ([22]) that makes
// size restriction alone insufficient.
package sdcquery

import (
	"fmt"
	"strings"

	"privacy3d/internal/dataset"
)

// Op is a comparison operator in a query predicate.
type Op int

const (
	Lt Op = iota // <
	Le           // <=
	Gt           // >
	Ge           // >=
	Eq           // ==
	Ne           // !=
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "!="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Negate returns the complementary operator (¬(x < v) ≡ x >= v, …), the
// property the individual tracker attack exploits to express set
// differences with pure conjunctions.
func (o Op) Negate() Op {
	switch o {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	case Eq:
		return Ne
	default:
		return Eq
	}
}

// Cond is one atomic condition: column OP value. For numeric columns V is
// used; for categorical columns S is used (with Str set) and only Eq/Ne are
// meaningful.
type Cond struct {
	Col string
	Op  Op
	V   float64
	S   string
	// Str marks the condition as a string comparison even when S is the
	// empty string. Without it `c = ""` and `c = 0` are indistinguishable
	// and would render to the same canonical string — which is the answer
	// cache and camouflage key, so the ambiguity was a correctness bug,
	// not a cosmetic one. A non-empty S implies a string comparison whether
	// or not Str is set, keeping hand-built literals working; and for
	// backward compatibility Compile still accepts a fully zero-valued
	// comparison (Str unset, S == "", V == 0) against a categorical column
	// as an empty-string comparison — only V != 0 is a kind mismatch. Note
	// that such a condition renders numerically (`c = 0`), so set Str when
	// an empty-string match is intended.
	Str bool
}

// IsString reports whether the condition carries a string value (S), as
// opposed to a numeric one (V).
func (c Cond) IsString() bool { return c.Str || c.S != "" }

// Negate returns the logical complement of the condition.
func (c Cond) Negate() Cond {
	c.Op = c.Op.Negate()
	return c
}

// String renders the condition kind-explicitly: string values are always
// quoted (including the empty string), numeric values never are, so two
// distinct conditions can never share a rendering.
func (c Cond) String() string {
	if c.IsString() {
		return fmt.Sprintf("%s %s %q", c.Col, c.Op, c.S)
	}
	return fmt.Sprintf("%s %s %g", c.Col, c.Op, c.V)
}

// Predicate is a conjunction of conditions; the empty predicate matches
// every record.
type Predicate []Cond

// String renders the predicate.
func (p Predicate) String() string {
	if len(p) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// And returns p extended with extra conditions.
func (p Predicate) And(conds ...Cond) Predicate {
	out := make(Predicate, 0, len(p)+len(conds))
	out = append(out, p...)
	out = append(out, conds...)
	return out
}

// compiledCond is one condition with its column index and kind resolved.
type compiledCond struct {
	col     int
	numeric bool
	op      Op
	v       float64
	s       string
}

// CompiledPredicate is a Predicate resolved once against a schema: column
// indices, kinds, and operator validity are checked up front, so per-row
// matching is pure comparisons — no map lookups, no error paths. The seed
// Predicate.Match re-resolved every column for every row of every
// condition, which dominated the scan cost on wide predicates.
type CompiledPredicate struct {
	conds []compiledCond
}

// Compile resolves the predicate against a schema. Unknown columns,
// ordered operators on categorical columns, and value/column kind
// mismatches are reported here, once, instead of per row.
func (p Predicate) Compile(attrs []dataset.Attribute) (*CompiledPredicate, error) {
	cc := make([]compiledCond, len(p))
	for i, c := range p {
		j := attrIndex(attrs, c.Col)
		if j < 0 {
			return nil, fmt.Errorf("sdcquery: unknown column %q", c.Col)
		}
		out := compiledCond{col: j, op: c.Op}
		if attrs[j].Kind == dataset.Numeric {
			if c.IsString() {
				return nil, fmt.Errorf("sdcquery: string value %q for numeric column %q", c.S, c.Col)
			}
			out.numeric = true
			out.v = c.V
		} else {
			if c.Op != Eq && c.Op != Ne {
				return nil, fmt.Errorf("sdcquery: operator %s not valid for categorical column %q", c.Op, c.Col)
			}
			if !c.IsString() && c.V != 0 {
				return nil, fmt.Errorf("sdcquery: numeric value %g for categorical column %q", c.V, c.Col)
			}
			// A fully zero-valued Cond (Str unset, S=="", V==0) compiles as
			// an empty-string comparison — the behavior hand-built literals
			// had before Str existed.
			out.s = c.S
		}
		cc[i] = out
	}
	return &CompiledPredicate{conds: cc}, nil
}

// Match reports whether record i of d satisfies the compiled predicate.
// d must have the schema the predicate was compiled against.
func (cp *CompiledPredicate) Match(d *dataset.Dataset, i int) bool {
	for _, c := range cp.conds {
		var ok bool
		if c.numeric {
			v := d.Float(i, c.col)
			switch c.op {
			case Lt:
				ok = v < c.v
			case Le:
				ok = v <= c.v
			case Gt:
				ok = v > c.v
			case Ge:
				ok = v >= c.v
			case Eq:
				ok = v == c.v
			case Ne:
				ok = v != c.v
			}
		} else {
			ok = (d.Cat(i, c.col) == c.s) == (c.op == Eq)
		}
		if !ok {
			return false
		}
	}
	return true
}

// attrIndex returns the column index of name in attrs, or -1.
func attrIndex(attrs []dataset.Attribute, name string) int {
	for j, a := range attrs {
		if a.Name == name {
			return j
		}
	}
	return -1
}

// Match reports whether record i of d satisfies the predicate. Unknown
// columns or operator/kind mismatches yield an error. For repeated calls
// compile once with Compile and use CompiledPredicate.Match.
func (p Predicate) Match(d *dataset.Dataset, i int) (bool, error) {
	cp, err := p.Compile(d.Attrs())
	if err != nil {
		return false, err
	}
	return cp.Match(d, i), nil
}

// QuerySet returns the indices of records matching the predicate. The
// predicate is compiled once; the sweep is per-row comparisons only.
func (p Predicate) QuerySet(d *dataset.Dataset) ([]int, error) {
	cp, err := p.Compile(d.Attrs())
	if err != nil {
		return nil, err
	}
	var rows []int
	for i := 0; i < d.Rows(); i++ {
		if cp.Match(d, i) {
			rows = append(rows, i)
		}
	}
	return rows, nil
}

// Agg is the aggregate function of a statistical query.
type Agg int

const (
	Count Agg = iota
	Sum
	Avg
)

// String renders the aggregate name.
func (a Agg) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Query is one statistical query: Agg(Attr) WHERE Where. COUNT ignores Attr.
type Query struct {
	Agg   Agg
	Attr  string
	Where Predicate
}

// String renders the query in SQL-ish form (used as the canonical key for
// logging and camouflage determinism).
func (q Query) String() string {
	attr := q.Attr
	if q.Agg == Count {
		attr = "*"
	}
	return fmt.Sprintf("SELECT %s(%s) WHERE %s", q.Agg, attr, q.Where)
}

// aggColumn validates the query's aggregate against the schema and returns
// the column index to sum, or -1 for COUNT (which reads no column). The
// server's bitmap path and Query.Evaluate share this validation, so both
// report identical errors.
func aggColumn(attrs []dataset.Attribute, q Query) (int, error) {
	if q.Agg == Count {
		return -1, nil
	}
	if q.Agg != Sum && q.Agg != Avg {
		return 0, fmt.Errorf("sdcquery: unsupported aggregate %v", q.Agg)
	}
	j := attrIndex(attrs, q.Attr)
	if j < 0 {
		return 0, fmt.Errorf("sdcquery: unknown attribute %q", q.Attr)
	}
	if attrs[j].Kind != dataset.Numeric {
		return 0, fmt.Errorf("sdcquery: %s over non-numeric attribute %q", q.Agg, q.Attr)
	}
	return j, nil
}

// finishAgg turns the accumulated (count, sum) of a sweep into the query's
// answer — the single aggregate finisher shared by Query.Evaluate and the
// server's bitmap path, so every evaluator agrees byte for byte.
func finishAgg(agg Agg, count int, sum float64) (float64, error) {
	switch agg {
	case Count:
		return float64(count), nil
	case Sum:
		return sum, nil
	case Avg:
		if count == 0 {
			return 0, fmt.Errorf("sdcquery: AVG over empty query set")
		}
		return sum / float64(count), nil
	default:
		return 0, fmt.Errorf("sdcquery: unsupported aggregate %v", agg)
	}
}

// Evaluate computes the true (unprotected) answer of the query on d in one
// compiled sweep: the predicate is compiled once, and count and sum
// accumulate together row by row. The seed ran two passes — QuerySet
// building an index slice, then a re-walk summing it — with the predicate
// re-resolving columns per row; library callers and the server's scan
// fallback now share this single evaluator.
func (q Query) Evaluate(d *dataset.Dataset) (float64, error) {
	cp, err := q.Where.Compile(d.Attrs())
	if err != nil {
		return 0, err
	}
	j, err := aggColumn(d.Attrs(), q)
	if err != nil {
		return 0, err
	}
	var count int
	var sum float64
	for i := 0; i < d.Rows(); i++ {
		if !cp.Match(d, i) {
			continue
		}
		count++
		if j >= 0 {
			sum += d.Float(i, j)
		}
	}
	return finishAgg(q.Agg, count, sum)
}

// Package sdcquery implements the interactive statistical database of the
// paper's Section 3: users submit statistical queries (COUNT, SUM, AVG with
// predicates) and the data owner applies an inference-control strategy —
// query-set-size restriction, Chin–Ozsoyoglu auditing ([7]), output
// perturbation (Duncan & Mukherjee, [14]), interval camouflage (Gopal,
// Garfinkel & Goes, [16]), Denning's random sample queries, overlap
// restriction, or differential privacy (calibrated Laplace/Gaussian noise
// with a per-principal ε-budget ledger; see Protection and internal/dp).
// The server records every query it sees, which is precisely why this
// architecture offers no user privacy: "All SDC methods for interactive
// statistical databases assume that the data owner ... exactly knows the
// queries submitted by users."
//
// Queries are submitted with Server.Ask, or Server.AskAs when the caller
// has a budget-accounting identity — DifferentialPrivacy requires one and
// refuses anonymous queries with dp.ErrNoPrincipal; once a principal's ε
// budget is spent further queries fail with an error wrapping
// dp.ErrBudgetExhausted and release nothing.
//
// NewHandler exposes the server over HTTP. The untrusted-user surface
// (POST /query, POST /sql) goes through the configured inference control
// and, under DifferentialPrivacy, identifies callers by the
// X-Privacy3D-Principal header (429 with the remaining ε once the budget
// is spent). POST /protect — a seeded masked release of the served
// microdata — is an owner-only operation gated by the HandlerConfig
// bearer token and disabled entirely without one, and every release has
// Identifier-role columns stripped first: direct identifiers never ship,
// whatever masking method the owner picks.
//
// The package also implements the Schlörer tracker attack ([22]) that makes
// size restriction alone insufficient.
package sdcquery

import (
	"fmt"
	"strings"

	"privacy3d/internal/dataset"
)

// Op is a comparison operator in a query predicate.
type Op int

const (
	Lt Op = iota // <
	Le           // <=
	Gt           // >
	Ge           // >=
	Eq           // ==
	Ne           // !=
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "!="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Negate returns the complementary operator (¬(x < v) ≡ x >= v, …), the
// property the individual tracker attack exploits to express set
// differences with pure conjunctions.
func (o Op) Negate() Op {
	switch o {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	case Eq:
		return Ne
	default:
		return Eq
	}
}

// Cond is one atomic condition: column OP value. For numeric columns V is
// used; for categorical columns S is used and only Eq/Ne are meaningful.
type Cond struct {
	Col string
	Op  Op
	V   float64
	S   string
}

// Negate returns the logical complement of the condition.
func (c Cond) Negate() Cond {
	c.Op = c.Op.Negate()
	return c
}

// String renders the condition.
func (c Cond) String() string {
	if c.S != "" {
		return fmt.Sprintf("%s %s %q", c.Col, c.Op, c.S)
	}
	return fmt.Sprintf("%s %s %g", c.Col, c.Op, c.V)
}

// Predicate is a conjunction of conditions; the empty predicate matches
// every record.
type Predicate []Cond

// String renders the predicate.
func (p Predicate) String() string {
	if len(p) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// And returns p extended with extra conditions.
func (p Predicate) And(conds ...Cond) Predicate {
	out := make(Predicate, 0, len(p)+len(conds))
	out = append(out, p...)
	out = append(out, conds...)
	return out
}

// Match reports whether record i of d satisfies the predicate. Unknown
// columns or operator/kind mismatches yield an error.
func (p Predicate) Match(d *dataset.Dataset, i int) (bool, error) {
	for _, c := range p {
		j := d.Index(c.Col)
		if j < 0 {
			return false, fmt.Errorf("sdcquery: unknown column %q", c.Col)
		}
		if d.Attr(j).Kind == dataset.Numeric {
			v := d.Float(i, j)
			ok := false
			switch c.Op {
			case Lt:
				ok = v < c.V
			case Le:
				ok = v <= c.V
			case Gt:
				ok = v > c.V
			case Ge:
				ok = v >= c.V
			case Eq:
				ok = v == c.V
			case Ne:
				ok = v != c.V
			}
			if !ok {
				return false, nil
			}
		} else {
			s := d.Cat(i, j)
			var ok bool
			switch c.Op {
			case Eq:
				ok = s == c.S
			case Ne:
				ok = s != c.S
			default:
				return false, fmt.Errorf("sdcquery: operator %s not valid for categorical column %q", c.Op, c.Col)
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

// QuerySet returns the indices of records matching the predicate.
func (p Predicate) QuerySet(d *dataset.Dataset) ([]int, error) {
	var rows []int
	for i := 0; i < d.Rows(); i++ {
		ok, err := p.Match(d, i)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, i)
		}
	}
	return rows, nil
}

// Agg is the aggregate function of a statistical query.
type Agg int

const (
	Count Agg = iota
	Sum
	Avg
)

// String renders the aggregate name.
func (a Agg) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Query is one statistical query: Agg(Attr) WHERE Where. COUNT ignores Attr.
type Query struct {
	Agg   Agg
	Attr  string
	Where Predicate
}

// String renders the query in SQL-ish form (used as the canonical key for
// logging and camouflage determinism).
func (q Query) String() string {
	attr := q.Attr
	if q.Agg == Count {
		attr = "*"
	}
	return fmt.Sprintf("SELECT %s(%s) WHERE %s", q.Agg, attr, q.Where)
}

// Evaluate computes the true (unprotected) answer of the query on d.
func (q Query) Evaluate(d *dataset.Dataset) (float64, error) {
	rows, err := q.Where.QuerySet(d)
	if err != nil {
		return 0, err
	}
	if q.Agg == Count {
		return float64(len(rows)), nil
	}
	j := d.Index(q.Attr)
	if j < 0 {
		return 0, fmt.Errorf("sdcquery: unknown attribute %q", q.Attr)
	}
	if d.Attr(j).Kind != dataset.Numeric {
		return 0, fmt.Errorf("sdcquery: %s over non-numeric attribute %q", q.Agg, q.Attr)
	}
	var s float64
	for _, i := range rows {
		s += d.Float(i, j)
	}
	switch q.Agg {
	case Sum:
		return s, nil
	case Avg:
		if len(rows) == 0 {
			return 0, fmt.Errorf("sdcquery: AVG over empty query set")
		}
		return s / float64(len(rows)), nil
	default:
		return 0, fmt.Errorf("sdcquery: unsupported aggregate %v", q.Agg)
	}
}

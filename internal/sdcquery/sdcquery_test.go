package sdcquery

import (
	"math"
	"strings"
	"testing"

	"privacy3d/internal/dataset"
)

// smallHeavy is the predicate of the paper's Section 3 PIR attack:
// height < 165 AND weight > 105 isolates one record of Dataset 2.
func smallHeavy() Predicate {
	return Predicate{
		{Col: "height", Op: Lt, V: 165},
		{Col: "weight", Op: Gt, V: 105},
	}
}

func TestPredicateMatch(t *testing.T) {
	d := dataset.Dataset2()
	rows, err := smallHeavy().QuerySet(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("query set = %v, want exactly 1 record", rows)
	}
	if d.Float(rows[0], d.Index("blood_pressure")) != 146 {
		t.Errorf("target blood pressure = %v, want 146", d.Float(rows[0], 2))
	}
	// Empty predicate matches everything.
	all, err := Predicate{}.QuerySet(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != d.Rows() {
		t.Errorf("TRUE predicate matched %d of %d", len(all), d.Rows())
	}
}

func TestPredicateCategoricalAndErrors(t *testing.T) {
	d := dataset.Dataset2()
	p := Predicate{{Col: "aids", Op: Eq, S: "Y"}}
	rows, err := p.QuerySet(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("aids=Y matched %d, want 3", len(rows))
	}
	if _, err := (Predicate{{Col: "nope", Op: Eq, V: 1}}).QuerySet(d); err == nil {
		t.Error("accepted unknown column")
	}
	if _, err := (Predicate{{Col: "aids", Op: Lt, S: "Y"}}).QuerySet(d); err == nil {
		t.Error("accepted < on categorical column")
	}
}

func TestOpNegate(t *testing.T) {
	cases := map[Op]Op{Lt: Ge, Le: Gt, Gt: Le, Ge: Lt, Eq: Ne, Ne: Eq}
	for op, want := range cases {
		if got := op.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
	}
}

func TestQueryEvaluate(t *testing.T) {
	d := dataset.Dataset2()
	count, err := Query{Agg: Count, Where: smallHeavy()}.Evaluate(d)
	if err != nil || count != 1 {
		t.Errorf("COUNT = %v (err %v), want 1", count, err)
	}
	avg, err := Query{Agg: Avg, Attr: "blood_pressure", Where: smallHeavy()}.Evaluate(d)
	if err != nil || avg != 146 {
		t.Errorf("AVG = %v (err %v), want 146", avg, err)
	}
	sum, err := Query{Agg: Sum, Attr: "blood_pressure", Where: Predicate{}}.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < d.Rows(); i++ {
		want += d.Float(i, 2)
	}
	if sum != want {
		t.Errorf("SUM = %v, want %v", sum, want)
	}
	if _, err := (Query{Agg: Sum, Attr: "aids", Where: Predicate{}}).Evaluate(d); err == nil {
		t.Error("accepted SUM over categorical attribute")
	}
	if _, err := (Query{Agg: Avg, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Lt, V: 0}}}).Evaluate(d); err == nil {
		t.Error("accepted AVG over empty set")
	}
	if _, err := (Query{Agg: Sum, Attr: "nope", Where: Predicate{}}).Evaluate(d); err == nil {
		t.Error("accepted unknown attribute")
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Agg: Avg, Attr: "blood_pressure", Where: smallHeavy()}
	s := q.String()
	if !strings.Contains(s, "AVG(blood_pressure)") || !strings.Contains(s, "height < 165") {
		t.Errorf("String = %q", s)
	}
}

func TestServerLogsEverything(t *testing.T) {
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	qs := []Query{
		{Agg: Count, Where: smallHeavy()},
		{Agg: Avg, Attr: "blood_pressure", Where: smallHeavy()},
	}
	for _, q := range qs {
		if _, err := srv.Ask(q); err != nil {
			t.Fatal(err)
		}
	}
	if len(srv.Log()) != 2 {
		t.Fatalf("log length = %d", len(srv.Log()))
	}
	if srv.Log()[1].Agg != Avg {
		t.Error("log order wrong")
	}
}

func TestNoProtectionReproducesPaperAttack(t *testing.T) {
	// Section 3 of the paper: the two statistical queries isolate the
	// unique small-and-heavy respondent and return blood pressure 146.
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: NoProtection})
	c, err := srv.Ask(Query{Agg: Count, Where: smallHeavy()})
	if err != nil || c.Denied {
		t.Fatalf("COUNT denied or failed: %+v %v", c, err)
	}
	if c.Value != 1 {
		t.Fatalf("COUNT = %v, want 1", c.Value)
	}
	a, err := srv.Ask(Query{Agg: Avg, Attr: "blood_pressure", Where: smallHeavy()})
	if err != nil || a.Denied {
		t.Fatalf("AVG denied or failed: %+v %v", a, err)
	}
	if a.Value != 146 {
		t.Errorf("AVG = %v, want 146 (the re-identified hypertensive patient)", a.Value)
	}
}

func TestSizeRestrictionBlocksSmallSets(t *testing.T) {
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: SizeRestriction, MinSetSize: 3})
	a, err := srv.Ask(Query{Agg: Count, Where: smallHeavy()})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Denied {
		t.Error("singleton query set should be denied")
	}
	// Large-but-not-complement-revealing set passes.
	big, err := srv.Ask(Query{Agg: Count, Where: Predicate{{Col: "height", Op: Gt, V: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	// COUNT over all rows has complement size 0 < 3 → denied too
	// (the complete set reveals the complement trivially).
	if !big.Denied {
		t.Error("all-records query should be denied under two-sided size restriction")
	}
	mid, err := srv.Ask(Query{Agg: Count, Where: Predicate{{Col: "height", Op: Ge, V: 175}}})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Denied {
		t.Errorf("mid-size query denied: %s", mid.Reason)
	}
	if mid.Value != 5 {
		t.Errorf("COUNT(height ≥ 175) = %v, want 5", mid.Value)
	}
}

func TestTrackerDefeatsSizeRestriction(t *testing.T) {
	// The individual tracker expresses the restricted predicate A ∧ B as a
	// difference of two allowed queries and recovers the target's blood
	// pressure exactly — size restriction alone is not enough ([22]).
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: SizeRestriction, MinSetSize: 3})
	tr := NewTracker(srv, Predicate{{Col: "height", Op: Lt, V: 176}}, Cond{Col: "weight", Op: Gt, V: 105})
	res, err := tr.Infer("blood_pressure")
	if err != nil {
		t.Fatalf("tracker blocked: %v", err)
	}
	if res.Count != 1 {
		t.Fatalf("tracker count = %v, want 1", res.Count)
	}
	if res.Sum != 146 {
		t.Errorf("tracker inferred %v, want 146", res.Sum)
	}
	if res.Queries != 4 {
		t.Errorf("tracker used %d queries, want 4", res.Queries)
	}
}

func TestAuditingBlocksTracker(t *testing.T) {
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: Auditing})
	tr := NewTracker(srv, Predicate{{Col: "height", Op: Lt, V: 176}}, Cond{Col: "weight", Op: Gt, V: 105})
	if _, err := tr.Infer("blood_pressure"); err == nil {
		t.Error("auditing should deny one of the tracker's queries")
	}
}

func TestAuditingAllowsSafeQueries(t *testing.T) {
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: Auditing})
	a, err := srv.Ask(Query{Agg: Sum, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Ge, V: 175}}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Denied {
		t.Errorf("safe sum denied: %s", a.Reason)
	}
	b, err := srv.Ask(Query{Agg: Sum, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Lt, V: 175}}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Denied {
		t.Errorf("disjoint sum denied: %s", b.Reason)
	}
}

func TestAuditingBlocksSingletonAvg(t *testing.T) {
	// AVG over a singleton is an immediate disclosure; auditing must deny.
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: Auditing})
	a, err := srv.Ask(Query{Agg: Avg, Attr: "blood_pressure", Where: smallHeavy()})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Denied {
		t.Error("singleton AVG should be denied by auditing")
	}
}

func TestAuditingBlocksDifferenceAttackOnSums(t *testing.T) {
	// SUM(height<176) then SUM(height<176 ∧ weight≤105): the difference
	// isolates the target. The second query must be denied.
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: Auditing})
	q1 := Query{Agg: Sum, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Lt, V: 176}}}
	a1, err := srv.Ask(q1)
	if err != nil || a1.Denied {
		t.Fatalf("first sum: %+v %v", a1, err)
	}
	q2 := Query{Agg: Sum, Attr: "blood_pressure",
		Where: Predicate{{Col: "height", Op: Lt, V: 176}, {Col: "weight", Op: Le, V: 105}}}
	a2, err := srv.Ask(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Denied {
		t.Error("difference attack second query should be denied")
	}
}

func TestPerturbationAddsNoiseButTracksTruth(t *testing.T) {
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: Perturbation, NoiseSD: 2, Seed: 7})
	q := Query{Agg: Sum, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Ge, V: 175}}}
	truth, _ := q.Evaluate(dataset.Dataset2())
	var deviations int
	for i := 0; i < 20; i++ {
		a, err := srv.Ask(q)
		if err != nil || a.Denied {
			t.Fatalf("perturbed query failed: %+v %v", a, err)
		}
		if a.Value != truth {
			deviations++
		}
		if math.Abs(a.Value-truth) > 60 {
			t.Errorf("perturbation too large: %v vs %v", a.Value, truth)
		}
	}
	if deviations == 0 {
		t.Error("perturbation never changed the answer")
	}
}

func TestCamouflageIntervalContainsTruth(t *testing.T) {
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: Camouflage, CamouflageWidth: 0.05})
	q := Query{Agg: Avg, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Ge, V: 175}}}
	truth, _ := q.Evaluate(dataset.Dataset2())
	a, err := srv.Ask(q)
	if err != nil || a.Denied || !a.Interval {
		t.Fatalf("camouflage answer: %+v %v", a, err)
	}
	if truth < a.Lo || truth > a.Hi {
		t.Errorf("interval [%v,%v] misses truth %v", a.Lo, a.Hi, truth)
	}
	if a.Lo == truth || a.Hi == truth || (a.Lo+a.Hi)/2 == truth {
		t.Error("interval should not pinpoint the truth")
	}
	// Determinism: repeating the query yields the identical interval
	// (no averaging attack).
	b, _ := srv.Ask(q)
	if b.Lo != a.Lo || b.Hi != a.Hi {
		t.Error("camouflage interval not deterministic per query")
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil, Config{}); err == nil {
		t.Error("accepted nil dataset")
	}
	empty := dataset.New(dataset.TrialSchema()...)
	if _, err := NewServer(empty, Config{}); err == nil {
		t.Error("accepted empty dataset")
	}
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: NoProtection})
	if _, err := srv.Ask(Query{Agg: Sum, Attr: "aids", Where: Predicate{}}); err == nil {
		t.Error("accepted invalid query")
	}
}

package sdcquery

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privacy3d/internal/dataset"
)

func newTestHTTP(t *testing.T, prot Protection) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: prot})
	if err != nil {
		t.Fatal(err)
	}
	h := httptest.NewServer(NewHTTPHandler(srv))
	t.Cleanup(h.Close)
	return h, srv
}

func postJSON(t *testing.T, url string, body string) AnswerJSON {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var a AnswerJSON
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestHTTPQueryEndpoint(t *testing.T) {
	h, _ := newTestHTTP(t, NoProtection)
	a := postJSON(t, h.URL+"/query", `{
		"agg": "AVG", "attr": "blood_pressure",
		"where": [
			{"col": "height", "op": "<", "v": 165},
			{"col": "weight", "op": ">", "v": 105}
		]}`)
	if a.Denied || a.Value != 146 {
		t.Errorf("answer = %+v, want 146", a)
	}
}

func TestHTTPSQLEndpoint(t *testing.T) {
	h, _ := newTestHTTP(t, NoProtection)
	a := postJSON(t, h.URL+"/sql",
		"SELECT COUNT(*) WHERE height < 165 AND weight > 105")
	if a.Denied || a.Value != 1 {
		t.Errorf("answer = %+v, want COUNT 1", a)
	}
}

func TestHTTPDenialPropagates(t *testing.T) {
	h, _ := newTestHTTP(t, Auditing)
	a := postJSON(t, h.URL+"/sql",
		"SELECT AVG(blood_pressure) WHERE height < 165 AND weight > 105")
	if !a.Denied {
		t.Error("singleton AVG should be denied under auditing")
	}
	if a.Reason == "" {
		t.Error("denial lacks a reason")
	}
}

func TestHTTPLogShowsEverything(t *testing.T) {
	h, srv := newTestHTTP(t, NoProtection)
	postJSON(t, h.URL+"/sql", "SELECT COUNT(*) WHERE height < 170")
	postJSON(t, h.URL+"/sql", "SELECT COUNT(*) WHERE height >= 170")
	resp, err := http.Get(h.URL + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, "height < 170") || !strings.Contains(out, "height >= 170") {
		t.Errorf("log missing queries:\n%s", out)
	}
	if len(srv.Log()) != 2 {
		t.Errorf("server log has %d entries", len(srv.Log()))
	}
}

func TestHTTPBadRequests(t *testing.T) {
	h, _ := newTestHTTP(t, NoProtection)
	// Malformed JSON.
	resp, err := http.Post(h.URL+"/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", resp.StatusCode)
	}
	// Unknown aggregate.
	resp, err = http.Post(h.URL+"/query", "application/json", strings.NewReader(`{"agg":"MEDIAN"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown aggregate status = %d", resp.StatusCode)
	}
	// Bad SQL.
	resp, err = http.Post(h.URL+"/sql", "text/plain", strings.NewReader("DROP TABLE patients"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad SQL status = %d", resp.StatusCode)
	}
	// Unknown path.
	resp, err = http.Get(h.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

package sdcquery

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/obs"
)

func newTestHTTP(t *testing.T, prot Protection) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: prot})
	if err != nil {
		t.Fatal(err)
	}
	h := httptest.NewServer(NewHTTPHandler(srv))
	t.Cleanup(h.Close)
	return h, srv
}

func postJSON(t *testing.T, url string, body string) AnswerJSON {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var a AnswerJSON
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestHTTPQueryEndpoint(t *testing.T) {
	h, _ := newTestHTTP(t, NoProtection)
	a := postJSON(t, h.URL+"/query", `{
		"agg": "AVG", "attr": "blood_pressure",
		"where": [
			{"col": "height", "op": "<", "v": 165},
			{"col": "weight", "op": ">", "v": 105}
		]}`)
	if a.Denied || a.Value != 146 {
		t.Errorf("answer = %+v, want 146", a)
	}
}

func TestHTTPSQLEndpoint(t *testing.T) {
	h, _ := newTestHTTP(t, NoProtection)
	a := postJSON(t, h.URL+"/sql",
		"SELECT COUNT(*) WHERE height < 165 AND weight > 105")
	if a.Denied || a.Value != 1 {
		t.Errorf("answer = %+v, want COUNT 1", a)
	}
}

func TestHTTPDenialPropagates(t *testing.T) {
	h, _ := newTestHTTP(t, Auditing)
	a := postJSON(t, h.URL+"/sql",
		"SELECT AVG(blood_pressure) WHERE height < 165 AND weight > 105")
	if !a.Denied {
		t.Error("singleton AVG should be denied under auditing")
	}
	if a.Reason == "" {
		t.Error("denial lacks a reason")
	}
}

func TestHTTPLogShowsEverything(t *testing.T) {
	h, srv := newTestHTTP(t, NoProtection)
	postJSON(t, h.URL+"/sql", "SELECT COUNT(*) WHERE height < 170")
	postJSON(t, h.URL+"/sql", "SELECT COUNT(*) WHERE height >= 170")
	resp, err := http.Get(h.URL + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, "height < 170") || !strings.Contains(out, "height >= 170") {
		t.Errorf("log missing queries:\n%s", out)
	}
	if len(srv.Log()) != 2 {
		t.Errorf("server log has %d entries", len(srv.Log()))
	}
}

// TestZeroValueAnswerRoundTrips is the regression test for the omitempty
// bug: a COUNT of 0 must serialize as an explicit "value":0, not vanish
// from the JSON object.
func TestZeroValueAnswerRoundTrips(t *testing.T) {
	raw, err := json.Marshal(AnswerJSON{Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"value":0`) {
		t.Errorf("zero answer serialized as %s — value field missing", raw)
	}

	h, _ := newTestHTTP(t, NoProtection)
	resp, err := http.Post(h.URL+"/query", "application/json",
		strings.NewReader(`{"agg":"COUNT","where":[{"col":"height","op":"<","v":-1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	if !strings.Contains(string(body), `"value":0`) {
		t.Errorf(`empty COUNT answered %s, want explicit "value":0`, body)
	}
	var fields map[string]any
	if err := json.Unmarshal(body, &fields); err != nil {
		t.Fatal(err)
	}
	if v, ok := fields["value"]; !ok || v != 0.0 {
		t.Errorf("value field = %v (present %v), want 0", v, ok)
	}
}

// TestHTTPStatusAndContentType pins every handler's status code and
// Content-Type: JSON errors with correct 400/404/405, Allow on 405.
func TestHTTPStatusAndContentType(t *testing.T) {
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	h := httptest.NewServer(NewObservedHandler(srv, reg))
	defer h.Close()

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCT     string
		wantAllow  string
	}{
		{"valid query", "POST", "/query", `{"agg":"COUNT","where":[]}`, 200, "application/json", ""},
		{"valid sql", "POST", "/sql", "SELECT COUNT(*) WHERE height < 180", 200, "application/json", ""},
		{"malformed json", "POST", "/query", "{", 400, "application/json", ""},
		{"unknown aggregate", "POST", "/query", `{"agg":"MEDIAN"}`, 400, "application/json", ""},
		{"bad sql", "POST", "/sql", "DROP TABLE patients", 400, "application/json", ""},
		{"query wrong method", "GET", "/query", "", 405, "application/json", "POST"},
		{"sql wrong method", "PUT", "/sql", "x", 405, "application/json", "POST"},
		{"log wrong method", "POST", "/log", "", 405, "application/json", "GET"},
		{"unknown path", "GET", "/nope", "", 404, "application/json", ""},
		{"log", "GET", "/log", "", 200, "text/plain; charset=utf-8", ""},
		{"metrics", "GET", "/metrics", "", 200, "text/plain; charset=utf-8", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, h.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
				t.Errorf("Content-Type = %q, want %q", ct, tc.wantCT)
			}
			if tc.wantAllow != "" && resp.Header.Get("Allow") != tc.wantAllow {
				t.Errorf("Allow = %q, want %q", resp.Header.Get("Allow"), tc.wantAllow)
			}
			if tc.wantStatus >= 400 {
				var e struct {
					Error string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
					t.Errorf("error body not {\"error\": ...}: decode err %v", err)
				}
			}
		})
	}
}

// TestHTTPServeConcurrentReconciles is the end-to-end exercise of serve
// semantics under concurrency (run with -race): N goroutines mix /query,
// /sql, /log and /metrics through the full middleware chain, then the
// query log and the metrics counters must reconcile exactly — every
// answered or denied request appears exactly once in both.
func TestHTTPServeConcurrentReconciles(t *testing.T) {
	srv, err := NewServer(dataset.SyntheticTrial(dataset.TrialConfig{N: 200, Seed: 1}),
		Config{Protection: SizeRestriction})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	handler := obs.Chain(NewObservedHandler(srv, reg),
		obs.Instrument(reg, "/query", "/sql", "/log", "/metrics"),
		obs.Recover(reg, nil),
	)
	h := httptest.NewServer(handler)
	defer h.Close()

	const workers, iters = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				threshold := 140 + (w*iters+i)%60
				resp, err := http.Post(h.URL+"/query", "application/json",
					strings.NewReader(fmt.Sprintf(
						`{"agg":"COUNT","where":[{"col":"height","op":">=","v":%d}]}`, threshold)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				resp, err = http.Post(h.URL+"/sql", "text/plain",
					strings.NewReader(fmt.Sprintf("SELECT AVG(height) WHERE height < %d", threshold)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if i%5 == 0 {
					for _, path := range []string{"/log", "/metrics"} {
						resp, err := http.Get(h.URL + path)
						if err != nil {
							t.Error(err)
							return
						}
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	const posts = workers * iters * 2
	answered := reg.Counter(obs.Label("sdcquery_answers_total", "outcome", "answered")).Value()
	denied := reg.Counter(obs.Label("sdcquery_answers_total", "outcome", "denied")).Value()
	interval := reg.Counter(obs.Label("sdcquery_answers_total", "outcome", "interval")).Value()
	errored := reg.Counter(obs.Label("sdcquery_answers_total", "outcome", "error")).Value()
	if answered+denied+interval+errored != posts {
		t.Errorf("outcomes %d+%d+%d+%d != %d posted queries",
			answered, denied, interval, errored, posts)
	}
	if errored != 0 || interval != 0 {
		t.Errorf("unexpected outcomes under size restriction: interval=%d error=%d", interval, errored)
	}
	if denied == 0 {
		t.Error("size restriction never denied — thresholds too lax to exercise both outcomes")
	}
	if got := srv.LogDepth(); got != posts {
		t.Errorf("query log depth = %d, want %d (every request logged exactly once)", got, posts)
	}
	for _, ep := range []string{"/query", "/sql"} {
		want := int64(posts / 2)
		if got := reg.Counter(obs.Label("http_requests_total", "endpoint", ep)).Value(); got != want {
			t.Errorf("http_requests_total %s = %d, want %d", ep, got, want)
		}
	}

	// The scrape view agrees with the in-memory counters.
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf(`sdcquery_answers_total{outcome="answered"} %d`, answered),
		fmt.Sprintf(`sdcquery_answers_total{outcome="denied"} %d`, denied),
		fmt.Sprintf("sdcquery_log_depth %d", posts),
	} {
		if !strings.Contains(string(scrape), want+"\n") {
			t.Errorf("metrics scrape missing %q:\n%s", want, scrape)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	h, _ := newTestHTTP(t, NoProtection)
	// Malformed JSON.
	resp, err := http.Post(h.URL+"/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", resp.StatusCode)
	}
	// Unknown aggregate.
	resp, err = http.Post(h.URL+"/query", "application/json", strings.NewReader(`{"agg":"MEDIAN"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown aggregate status = %d", resp.StatusCode)
	}
	// Bad SQL.
	resp, err = http.Post(h.URL+"/sql", "text/plain", strings.NewReader("DROP TABLE patients"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad SQL status = %d", resp.StatusCode)
	}
	// Unknown path.
	resp, err = http.Get(h.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

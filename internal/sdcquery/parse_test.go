package sdcquery

import (
	"strings"
	"testing"

	"privacy3d/internal/dataset"
)

func TestParseQueryPaperExamples(t *testing.T) {
	// The two queries of the paper's Section 3, verbatim.
	q1, err := ParseQuery("SELECT COUNT(*) FROM Dataset2 WHERE height < 165 AND weight > 105")
	if err != nil {
		t.Fatal(err)
	}
	if q1.Agg != Count || len(q1.Where) != 2 {
		t.Fatalf("parsed %+v", q1)
	}
	q2, err := ParseQuery("SELECT AVG(blood_pressure) FROM Dataset2 WHERE height < 165 AND weight > 105")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Agg != Avg || q2.Attr != "blood_pressure" {
		t.Fatalf("parsed %+v", q2)
	}
	// Evaluating them reproduces the attack numbers.
	d := dataset.Dataset2()
	c, err := q1.Evaluate(d)
	if err != nil || c != 1 {
		t.Errorf("COUNT = %v (err %v)", c, err)
	}
	a, err := q2.Evaluate(d)
	if err != nil || a != 146 {
		t.Errorf("AVG = %v (err %v)", a, err)
	}
}

func TestParseQueryForms(t *testing.T) {
	cases := []struct {
		in   string
		agg  Agg
		attr string
		n    int // conditions
	}{
		{"COUNT(*)", Count, "", 0},
		{"count(*) where x = 1", Count, "", 1},
		{"SUM(salary) WHERE dept = 'research' AND age >= 40", Sum, "salary", 2},
		{"select avg(bp) from t", Avg, "bp", 0},
		{`AVG(x) WHERE name != "bob"`, Avg, "x", 1},
		{"COUNT(*) WHERE aids = Y", Count, "", 1},
		{"SUM(x) WHERE v <> 3", Sum, "x", 1},
		{"SUM(x) WHERE v <= -2.5e3", Sum, "x", 1},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", c.in, err)
			continue
		}
		if q.Agg != c.agg || q.Attr != c.attr || len(q.Where) != c.n {
			t.Errorf("ParseQuery(%q) = %+v", c.in, q)
		}
	}
}

func TestParseQueryValues(t *testing.T) {
	q, err := ParseQuery("SUM(x) WHERE v <= -2.5e3 AND w = 'a b'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].V != -2500 {
		t.Errorf("numeric value = %v", q.Where[0].V)
	}
	if q.Where[1].S != "a b" {
		t.Errorf("string value = %q", q.Where[1].S)
	}
	if q.Where[1].Op != Eq {
		t.Errorf("op = %v", q.Where[1].Op)
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"SELECT MEDIAN(x)",
		"AVG(*)",
		"SUM(x",
		"SUM(x) WHERE",
		"SUM(x) WHERE a <",
		"SUM(x) WHERE a ~ 3",
		"SUM(x) WHERE a = 'unterminated",
		"COUNT(*) garbage",
		"SUM(x) WHERE a = 3 AND",
		"SELECT",
	}
	for _, in := range bad {
		if _, err := ParseQuery(in); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", in)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// Query.String() output is itself parseable (modulo the SELECT prefix
	// convention), keeping logs replayable.
	orig := Query{Agg: Avg, Attr: "blood_pressure", Where: Predicate{
		{Col: "height", Op: Lt, V: 165},
		{Col: "aids", Op: Eq, S: "Y"},
	}}
	parsed, err := ParseQuery(orig.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", orig.String(), err)
	}
	if parsed.Agg != orig.Agg || parsed.Attr != orig.Attr || len(parsed.Where) != 2 {
		t.Errorf("round trip: %+v", parsed)
	}
	if parsed.Where[1].S != "Y" {
		t.Errorf("categorical condition lost: %+v", parsed.Where[1])
	}
}

func TestParseQuotedAndBareStringsSetStr(t *testing.T) {
	// Every string-literal form — single-quoted, double-quoted, bare word —
	// must mark the condition as a string comparison, so the canonical
	// rendering is kind-explicit even for the empty string.
	cases := []struct {
		in   string
		s    string
		want string // canonical rendering of the condition
	}{
		{`COUNT(*) WHERE tag = 'a b'`, "a b", `tag = "a b"`},
		{`COUNT(*) WHERE tag = "x"`, "x", `tag = "x"`},
		{`COUNT(*) WHERE aids = Y`, "Y", `aids = "Y"`},
		{`COUNT(*) WHERE tag = ''`, "", `tag = ""`},
		{`COUNT(*) WHERE tag != ""`, "", `tag != ""`},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", c.in, err)
			continue
		}
		cond := q.Where[0]
		if !cond.Str || cond.S != c.s {
			t.Errorf("ParseQuery(%q) cond = %+v, want Str=true S=%q", c.in, cond, c.s)
		}
		if got := cond.String(); got != c.want {
			t.Errorf("ParseQuery(%q) renders %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseEmptyStringRoundTrip(t *testing.T) {
	// The empty-string literal survives String() → ParseQuery() → String()
	// unchanged and never degrades into a numeric condition — the exact
	// ambiguity the Str flag exists to kill.
	orig, err := ParseQuery(`COUNT(*) WHERE tag = ''`)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseQuery(orig.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", orig.String(), err)
	}
	if reparsed.String() != orig.String() {
		t.Fatalf("round trip drifted: %q -> %q", orig.String(), reparsed.String())
	}
	if !reparsed.Where[0].Str || reparsed.Where[0].S != "" {
		t.Fatalf("empty-string literal degraded to %+v", reparsed.Where[0])
	}
	numeric := Query{Agg: Count, Where: Predicate{{Col: "tag", Op: Eq, V: 0}}}
	if orig.String() == numeric.String() {
		t.Fatalf("empty-string query renders like the numeric-0 query: %q", orig.String())
	}
}

func TestParsedKindMismatchesCaughtAtCompile(t *testing.T) {
	// Parsing is schema-free, so kind mismatches surface at compile time —
	// with the parsed condition carrying enough information (Str) for the
	// error to be unambiguous in both directions.
	d := dataset.Dataset2() // height numeric, aids categorical
	cases := []struct {
		in   string
		want string
	}{
		{`COUNT(*) WHERE height = 'tall'`, "string value"},
		{`COUNT(*) WHERE height = ''`, "string value"},
		{`COUNT(*) WHERE aids = 3`, "numeric value"},
		{`COUNT(*) WHERE aids < 'Y'`, "not valid for categorical"},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", c.in, err)
			continue
		}
		_, err = q.Where.Compile(d.Attrs())
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(parse(%q)) err = %v, want %q", c.in, err, c.want)
		}
	}
}

func FuzzParseQuery(f *testing.F) {
	f.Add("SELECT COUNT(*) WHERE height < 165 AND weight > 105")
	f.Add("SUM(x) WHERE a = 'b'")
	f.Add("AVG(")
	f.Add("'")
	f.Fuzz(func(t *testing.T, input string) {
		// Must never panic; errors are fine.
		q, err := ParseQuery(input)
		if err == nil {
			// A successfully parsed query must render and reparse.
			if _, err := ParseQuery(q.String()); err != nil {
				t.Skip() // string rendering of odd identifiers may not reparse
			}
		}
	})
}

package sdcquery

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
)

func TestRandomSampleApproximatesAggregates(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 2000, Seed: 3})
	srv, err := NewServer(d, Config{Protection: RandomSample, SampleRate: 0.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Agg: Count, Where: Predicate{{Col: "height", Op: Ge, V: 170}}}
	truth, err := q.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	a, err := srv.Ask(q)
	if err != nil || a.Denied {
		t.Fatalf("sampled query: %+v %v", a, err)
	}
	if rel := math.Abs(a.Value-truth) / truth; rel > 0.1 {
		t.Errorf("sampled COUNT %v vs truth %v (rel err %.3f)", a.Value, truth, rel)
	}
	// AVG within a few percent.
	qa := Query{Agg: Avg, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Ge, V: 170}}}
	truthA, _ := qa.Evaluate(d)
	aa, err := srv.Ask(qa)
	if err != nil || aa.Denied {
		t.Fatalf("sampled AVG: %+v %v", aa, err)
	}
	if math.Abs(aa.Value-truthA)/truthA > 0.05 {
		t.Errorf("sampled AVG %v vs truth %v", aa.Value, truthA)
	}
}

func TestRandomSampleIsDeterministicPerQuery(t *testing.T) {
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: RandomSample, Seed: 5})
	q := Query{Agg: Sum, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Ge, V: 170}}}
	a1, err := srv.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := srv.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Value != a2.Value {
		t.Error("repeating the query changed the sampled answer (averaging attack possible)")
	}
}

func TestRandomSampleBreaksTrackerExactness(t *testing.T) {
	// Denning's point: the tracker still runs, but its differenced answers
	// come from independent samples, so the inferred "value" is no longer
	// the target's exact blood pressure with certainty. With n=9 the
	// variance is visible; we check the inferred count is corrupted or the
	// sum is off for at least one of several server seeds.
	exact := 0
	const trials = 12
	for seed := uint64(0); seed < trials; seed++ {
		srv, err := NewServer(dataset.Dataset2(), Config{Protection: RandomSample, SampleRate: 0.7, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTracker(srv,
			Predicate{{Col: "height", Op: Lt, V: 176}},
			Cond{Col: "weight", Op: Gt, V: 105})
		res, err := tr.Infer("blood_pressure")
		if err != nil {
			continue // denial also counts as protection
		}
		if res.Count == 1 && res.Sum == 146 {
			exact++
		}
	}
	if exact > trials/2 {
		t.Errorf("tracker recovered the exact value in %d/%d runs — sampling not protective", exact, trials)
	}
}

func TestRandomSampleEmptyAvgDenied(t *testing.T) {
	srv, _ := NewServer(dataset.Dataset2(), Config{Protection: RandomSample, SampleRate: 0.5, Seed: 1})
	// A query set that samples to empty: use an empty query set outright.
	a, err := srv.Ask(Query{Agg: Avg, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Lt, V: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Denied {
		t.Error("AVG over empty sample should be denied")
	}
	if _, err := srv.Ask(Query{Agg: Sum, Attr: "aids", Where: Predicate{}}); err == nil {
		t.Error("accepted SUM over categorical attribute")
	}
}

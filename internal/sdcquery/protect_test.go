package sdcquery

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privacy3d/internal/dataset"
)

const testOwnerToken = "test-owner-token"

// newOwnerHTTP builds a test server whose /protect endpoint is enabled with
// testOwnerToken, serving d.
func newOwnerHTTP(t *testing.T, d *dataset.Dataset) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := NewServer(d, Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	h := httptest.NewServer(NewHandler(srv, HandlerConfig{OwnerToken: testOwnerToken}))
	t.Cleanup(h.Close)
	return h, srv
}

func postProtect(t *testing.T, url, token, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/protect", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestProtectEndpoint(t *testing.T) {
	h, srv := newOwnerHTTP(t, dataset.Dataset2())
	resp, body := postProtect(t, h.URL, testOwnerToken, `{"method":"mdav","seed":7,"params":{"k":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var pr ProtectResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Report.Method != "mdav" || pr.Report.Seed != 7 || pr.Report.Rows != srv.Rows() {
		t.Errorf("report = %+v", pr.Report)
	}
	if !pr.Report.InfoLossValid {
		t.Error("mdav report missing information loss")
	}
	lines := strings.Split(strings.TrimSpace(pr.CSV), "\n")
	if len(lines) != srv.Rows()+1 {
		t.Errorf("CSV has %d lines, want header + %d rows", len(lines), srv.Rows())
	}

	// The same request must yield the same bytes: the seed pins the release.
	_, again := postProtect(t, h.URL, testOwnerToken, `{"method":"mdav","seed":7,"params":{"k":2}}`)
	if string(body) != string(again) {
		t.Error("identical protect requests produced different releases")
	}
}

// TestProtectRequiresOwnerToken pins the authorization gate: /protect hands
// out record-level microdata, so without the owner's bearer token it must
// refuse — and when the server is built without a token at all, the
// endpoint is disabled outright for every caller.
func TestProtectRequiresOwnerToken(t *testing.T) {
	h, _ := newOwnerHTTP(t, dataset.Dataset2())
	for _, tc := range []struct {
		name, token string
	}{
		{"missing token", ""},
		{"wrong token", "not-the-owner"},
	} {
		resp, body := postProtect(t, h.URL, tc.token, `{"method":"mdav","seed":7}`)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s: status %s, want 401; body %s", tc.name, resp.Status, body)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Errorf("%s: missing WWW-Authenticate challenge", tc.name)
		}
		if strings.Contains(string(body), "csv") {
			t.Errorf("%s: unauthorized response leaked a release: %s", tc.name, body)
		}
	}

	// No token configured (the NewHTTPHandler / NewObservedHandler default):
	// the endpoint is disabled even with a guessed credential.
	hOff, _ := newTestHTTP(t, NoProtection)
	resp, body := postProtect(t, hOff.URL, testOwnerToken, `{"method":"mdav","seed":7}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("tokenless server: status %s, want 403; body %s", resp.Status, body)
	}
}

// TestProtectStripsIdentifiers pins the release hygiene rule: identifier
// columns (which the masking methods never target) must not ship in the
// released CSV linked to the other attributes.
func TestProtectStripsIdentifiers(t *testing.T) {
	attrs := append([]dataset.Attribute{{Name: "name", Role: dataset.Identifier, Kind: dataset.Nominal}},
		dataset.TrialSchema()...)
	d := dataset.New(attrs...)
	d.MustAppend("alice", 160.0, 108.0, 146.0, "N")
	d.MustAppend("bob", 170.0, 70.0, 135.0, "Y")
	d.MustAppend("carol", 172.0, 74.0, 128.0, "N")

	h, _ := newOwnerHTTP(t, d)
	resp, body := postProtect(t, h.URL, testOwnerToken, `{"method":"mdav","seed":1,"params":{"k":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var pr ProtectResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pr.CSV, "name") || strings.Contains(pr.CSV, "alice") {
		t.Errorf("release still carries the identifier column:\n%s", pr.CSV)
	}
	// Report column indices address the identifier-free released schema.
	for _, j := range pr.Report.Columns {
		if j >= len(dataset.TrialSchema()) {
			t.Errorf("report column %d out of range of the released schema", j)
		}
	}
}

func TestProtectEndpointErrors(t *testing.T) {
	h, _ := newOwnerHTTP(t, dataset.Dataset2())
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown method", `{"method":"zap","seed":1}`},
		{"unknown param", `{"method":"mdav","seed":1,"params":{"zap":1}}`},
		{"malformed JSON", `{"method":`},
	} {
		resp, body := postProtect(t, h.URL, testOwnerToken, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, body %s", tc.name, resp.Status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", tc.name, body)
		}
	}
	resp, err := http.Get(h.URL + "/protect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /protect: status %s, Allow %q", resp.Status, resp.Header.Get("Allow"))
	}
}

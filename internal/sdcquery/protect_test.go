package sdcquery

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func postProtect(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/protect", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestProtectEndpoint(t *testing.T) {
	h, srv := newTestHTTP(t, NoProtection)
	resp, body := postProtect(t, h.URL, `{"method":"mdav","seed":7,"params":{"k":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var pr ProtectResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Report.Method != "mdav" || pr.Report.Seed != 7 || pr.Report.Rows != srv.Rows() {
		t.Errorf("report = %+v", pr.Report)
	}
	if !pr.Report.InfoLossValid {
		t.Error("mdav report missing information loss")
	}
	lines := strings.Split(strings.TrimSpace(pr.CSV), "\n")
	if len(lines) != srv.Rows()+1 {
		t.Errorf("CSV has %d lines, want header + %d rows", len(lines), srv.Rows())
	}

	// The same request must yield the same bytes: the seed pins the release.
	_, again := postProtect(t, h.URL, `{"method":"mdav","seed":7,"params":{"k":2}}`)
	if string(body) != string(again) {
		t.Error("identical protect requests produced different releases")
	}
}

func TestProtectEndpointErrors(t *testing.T) {
	h, _ := newTestHTTP(t, NoProtection)
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown method", `{"method":"zap","seed":1}`},
		{"unknown param", `{"method":"mdav","seed":1,"params":{"zap":1}}`},
		{"malformed JSON", `{"method":`},
	} {
		resp, body := postProtect(t, h.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, body %s", tc.name, resp.Status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", tc.name, body)
		}
	}
	resp, err := http.Get(h.URL + "/protect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /protect: status %s, Allow %q", resp.Status, resp.Header.Get("Allow"))
	}
}

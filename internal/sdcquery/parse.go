package sdcquery

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseQuery parses the SQL-ish statistical query dialect the paper writes
// its examples in:
//
//	SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105
//	SELECT AVG(blood_pressure) WHERE height < 165
//	SUM(salary) WHERE dept = 'research' AND age >= 40
//
// Grammar (case-insensitive keywords):
//
//	query  := [SELECT] agg '(' attr | '*' ')' [FROM ident] [WHERE conds]
//	conds  := cond (AND cond)*
//	cond   := ident op (number | string)
//	op     := '<' | '<=' | '>' | '>=' | '=' | '==' | '!=' | '<>'
//
// String literals use single or double quotes. The FROM clause is accepted
// and ignored (the server is bound to one table).
func ParseQuery(input string) (Query, error) {
	p := &parser{toks: lex(input)}
	q, err := p.parseQuery()
	if err != nil {
		return Query{}, fmt.Errorf("sdcquery: parse %q: %w", input, err)
	}
	return q, nil
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp
	tokLParen
	tokRParen
	tokStar
	tokEOF
	tokError
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*"})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(s) && (s[j] == '=' || (c == '<' && s[j] == '>')) {
				j++
			}
			toks = append(toks, token{tokOp, s[i:j]})
			i = j
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(s) && s[j] != quote {
				j++
			}
			if j >= len(s) {
				toks = append(toks, token{tokError, "unterminated string"})
				return toks
			}
			toks = append(toks, token{tokString, s[i+1 : j]})
			i = j + 1
		case c == '-' || c == '.' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(s) && (s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				s[j] == '+' || s[j] == '-' || (s[j] >= '0' && s[j] <= '9')) {
				// Allow +/- only right after an exponent marker.
				if (s[j] == '+' || s[j] == '-') && !(s[j-1] == 'e' || s[j-1] == 'E') {
					break
				}
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(s) && (s[j] == '_' || unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j]))) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		default:
			toks = append(toks, token{tokError, fmt.Sprintf("unexpected character %q", c)})
			return toks
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind == tokError {
		return t, fmt.Errorf("%s", t.text)
	}
	if t.kind != kind {
		return t, fmt.Errorf("expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) parseQuery() (Query, error) {
	var q Query
	t, err := p.expect(tokIdent, "SELECT or aggregate")
	if err != nil {
		return q, err
	}
	if strings.EqualFold(t.text, "select") {
		t, err = p.expect(tokIdent, "aggregate")
		if err != nil {
			return q, err
		}
	}
	switch strings.ToUpper(t.text) {
	case "COUNT":
		q.Agg = Count
	case "SUM":
		q.Agg = Sum
	case "AVG":
		q.Agg = Avg
	default:
		return q, fmt.Errorf("unknown aggregate %q", t.text)
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return q, err
	}
	arg := p.next()
	switch arg.kind {
	case tokStar:
		if q.Agg != Count {
			return q, fmt.Errorf("%v requires an attribute, not '*'", q.Agg)
		}
	case tokIdent:
		q.Attr = arg.text
	default:
		return q, fmt.Errorf("expected attribute or '*', got %q", arg.text)
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return q, err
	}
	// Optional FROM ident (ignored).
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "from") {
		p.next()
		if _, err := p.expect(tokIdent, "table name"); err != nil {
			return q, err
		}
	}
	// Optional WHERE.
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "where") {
		p.next()
		for {
			cond, err := p.parseCond()
			if err != nil {
				return q, err
			}
			q.Where = append(q.Where, cond)
			t := p.peek()
			if t.kind == tokIdent && strings.EqualFold(t.text, "and") {
				p.next()
				continue
			}
			break
		}
	}
	if t := p.next(); t.kind != tokEOF {
		return q, fmt.Errorf("unexpected trailing input %q", t.text)
	}
	return q, nil
}

func (p *parser) parseCond() (Cond, error) {
	var c Cond
	col, err := p.expect(tokIdent, "column name")
	if err != nil {
		return c, err
	}
	c.Col = col.text
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return c, err
	}
	switch opTok.text {
	case "<":
		c.Op = Lt
	case "<=":
		c.Op = Le
	case ">":
		c.Op = Gt
	case ">=":
		c.Op = Ge
	case "=", "==":
		c.Op = Eq
	case "!=", "<>":
		c.Op = Ne
	default:
		return c, fmt.Errorf("unknown operator %q", opTok.text)
	}
	v := p.next()
	switch v.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(v.text, 64)
		if err != nil {
			return c, fmt.Errorf("bad number %q: %w", v.text, err)
		}
		c.V = f
	case tokString:
		// Str makes the empty-string literal ('') distinct from any numeric
		// value in the condition's canonical rendering.
		c.S, c.Str = v.text, true
	case tokIdent:
		// Bare words compare as strings (aids = Y).
		c.S, c.Str = v.text, true
	default:
		return c, fmt.Errorf("expected value, got %q", v.text)
	}
	return c, nil
}

package sdcquery

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"privacy3d/internal/dataset"
)

// batchTestQueries is a mixed workload: distinct shapes, exact repeats
// (cache hits), broad and narrow sets, every aggregate.
func batchTestQueries() []Query {
	qs := []Query{
		{Agg: Count, Where: Predicate{{Col: "height", Op: Ge, V: 150}}},
		{Agg: Sum, Attr: "blood_pressure", Where: Predicate{{Col: "height", Op: Ge, V: 160}, {Col: "height", Op: Lt, V: 170}}},
		{Agg: Avg, Attr: "height", Where: Predicate{{Col: "aids", Op: Eq, S: "Y"}}},
		{Agg: Count, Where: Predicate{{Col: "height", Op: Lt, V: 100}}}, // empty set
		{Agg: Count, Where: nil}, // unconstrained
		{Agg: Avg, Attr: "blood_pressure", Where: Predicate{{Col: "aids", Op: Ne, S: "Y"}}},
	}
	return append(qs, qs[0], qs[2]) // exact repeats
}

// sameAnswer compares two answers byte for byte (float fields via their
// bit patterns).
func sameAnswer(a, b Answer) bool {
	return a.Denied == b.Denied && a.Reason == b.Reason &&
		math.Float64bits(a.Value) == math.Float64bits(b.Value) &&
		math.Float64bits(a.Lo) == math.Float64bits(b.Lo) &&
		math.Float64bits(a.Hi) == math.Float64bits(b.Hi) &&
		a.Interval == b.Interval && a.Budgeted == b.Budgeted &&
		math.Float64bits(a.Epsilon) == math.Float64bits(b.Epsilon) &&
		math.Float64bits(a.EpsilonRemaining) == math.Float64bits(b.EpsilonRemaining)
}

// TestAskBatchMatchesAskAs pins the batch contract: for every protection,
// AskBatch against one server produces byte-identical answers to a serial
// AskAs loop against an identically configured twin — including the
// stateful protections, whose history must advance in batch order, and
// differential privacy, whose ε accounting must debit identically.
func TestAskBatchMatchesAskAs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"none", Config{Protection: NoProtection}},
		{"size", Config{Protection: SizeRestriction, MinSetSize: 3}},
		{"auditing", Config{Protection: Auditing}},
		{"perturbation", Config{Protection: Perturbation, Seed: 7}},
		{"camouflage", Config{Protection: Camouflage, Seed: 7}},
		{"overlap", Config{Protection: OverlapRestriction}},
		{"sample", Config{Protection: RandomSample, Seed: 7}},
		{"dp", Config{Protection: DifferentialPrivacy, Seed: 7, Epsilon: 0.5, EpsilonBudget: 100}},
		{"scan", Config{Protection: NoProtection, ForceScan: true}},
		{"sharded3", Config{Protection: NoProtection, Shards: 3, SegmentSize: 64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := dataset.SyntheticTrial(dataset.TrialConfig{N: 500, Seed: 11})
			serial, err := NewServer(d, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := NewServer(d, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			principal := ""
			if tc.cfg.Protection == DifferentialPrivacy {
				principal = "alice"
			}
			qs := batchTestQueries()
			want := make([]Answer, len(qs))
			wantErr := make([]error, len(qs))
			for i, q := range qs {
				want[i], wantErr[i] = serial.AskAs(principal, q)
			}
			got, errs := batched.AskBatch(principal, qs)
			for i := range qs {
				if (errs[i] == nil) != (wantErr[i] == nil) {
					t.Fatalf("query %d: batch err %v, serial err %v", i, errs[i], wantErr[i])
				}
				if errs[i] != nil {
					if errs[i].Error() != wantErr[i].Error() {
						t.Fatalf("query %d: batch err %q, serial err %q", i, errs[i], wantErr[i])
					}
					continue
				}
				if !sameAnswer(got[i], want[i]) {
					t.Fatalf("query %d: batch answer %+v, serial answer %+v", i, got[i], want[i])
				}
			}
			if got := batched.LogDepth(); got != len(qs) {
				t.Fatalf("batch logged %d queries, want %d", got, len(qs))
			}
			if batches, queries := batched.BatchStats(); batches != 1 || queries != int64(len(qs)) {
				t.Fatalf("BatchStats = (%d, %d), want (1, %d)", batches, queries, len(qs))
			}
			if tc.cfg.Protection == DifferentialPrivacy {
				sr, _ := serial.BudgetRemaining(principal)
				br, _ := batched.BudgetRemaining(principal)
				if math.Float64bits(sr) != math.Float64bits(br) {
					t.Fatalf("batch debited to %g, serial to %g", br, sr)
				}
			}
		})
	}
}

// TestAskBatchPartialFailure pins per-item degradation: a malformed query
// gets its error while its neighbours answer, and the error text matches
// the serial path's.
func TestAskBatchPartialFailure(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 100, Seed: 5})
	srv, err := NewServer(d, Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	bad := Query{Agg: Count, Where: Predicate{{Col: "no_such_column", Op: Eq, V: 1}}}
	good := Query{Agg: Count, Where: Predicate{{Col: "height", Op: Ge, V: 150}}}
	answers, errs := srv.AskBatch("", []Query{good, bad, good})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good queries failed: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("bad query succeeded")
	}
	if _, serialErr := srv.Ask(bad); serialErr == nil || serialErr.Error() != errs[1].Error() {
		t.Fatalf("batch error %q, serial error %q", errs[1], serialErr)
	}
	if answers[0].Value != answers[2].Value {
		t.Fatalf("repeated good query answered differently: %g vs %g", answers[0].Value, answers[2].Value)
	}
}

// TestAskBatchNoPrincipalDP pins that an unidentified DP batch fails every
// item with ErrNoPrincipal before any evaluation or ε accounting.
func TestAskBatchNoPrincipalDP(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 100, Seed: 5})
	srv, err := NewServer(d, Config{Protection: DifferentialPrivacy})
	if err != nil {
		t.Fatal(err)
	}
	_, errs := srv.AskBatch("", batchTestQueries())
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "principal") {
			t.Fatalf("query %d: err %v, want no-principal", i, err)
		}
	}
}

// TestAskBatchConcurrentIngest hammers AskBatch against concurrent Ingest
// and concurrent single-query traffic (run with -race). Each batch pins one
// snapshot, so within a batch the unconstrained COUNT can never regress
// below the dataset's initial size.
func TestAskBatchConcurrentIngest(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 200, Seed: 9})
	srv, err := NewServer(d, Config{Protection: NoProtection, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	all := Query{Agg: Count, Where: nil}
	band := Query{Agg: Count, Where: Predicate{{Col: "height", Op: Ge, V: 150}}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		row := make([]any, d.Cols())
		for j := range row {
			row[j] = d.Value(0, j)
		}
		for i := 0; i < 300; i++ {
			if err := srv.Ingest(row...); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				answers, errs := srv.AskBatch("", []Query{all, band, all})
				for k, err := range errs {
					if err != nil {
						t.Errorf("batch query %d: %v", k, err)
						return
					}
				}
				if answers[0].Value != answers[2].Value {
					t.Errorf("one batch saw two versions: %g vs %g", answers[0].Value, answers[2].Value)
					return
				}
				if answers[0].Value < 200 {
					t.Errorf("unconstrained COUNT %g below initial size", answers[0].Value)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestQueryBatchHTTP drives POST /querybatch end to end: per-item answers
// and errors in request order, agreement with the single-query endpoint,
// and the batch-width cap.
func TestQueryBatchHTTP(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 300, Seed: 13})
	srv, err := NewServer(d, Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(srv, HandlerConfig{BatchMax: 4})
	post := func(t *testing.T, body string) (*httptest.ResponseRecorder, BatchResponseJSON) {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/querybatch", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		var resp BatchResponseJSON
		if rr.Code == http.StatusOK {
			if err := json.NewDecoder(rr.Body).Decode(&resp); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
		return rr, resp
	}

	rr, resp := post(t, `{"queries":[
		{"agg":"COUNT","where":[{"col":"height","op":">=","v":150}]},
		{"agg":"FROB"},
		{"agg":"SUM","attr":"blood_pressure","where":[{"col":"no_such","op":"=","v":1}]},
		{"agg":"COUNT","where":[{"col":"height","op":">=","v":150}]}]}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body)
	}
	if len(resp.Answers) != 4 {
		t.Fatalf("got %d answers, want 4", len(resp.Answers))
	}
	if resp.Answers[0].Error != "" || resp.Answers[3].Error != "" {
		t.Fatalf("good queries errored: %q, %q", resp.Answers[0].Error, resp.Answers[3].Error)
	}
	if !strings.Contains(resp.Answers[1].Error, "FROB") {
		t.Fatalf("conversion error lost: %+v", resp.Answers[1])
	}
	if !strings.Contains(resp.Answers[2].Error, "no_such") {
		t.Fatalf("evaluation error lost: %+v", resp.Answers[2])
	}
	if resp.Answers[0].Value != resp.Answers[3].Value {
		t.Fatalf("repeat answered differently: %g vs %g", resp.Answers[0].Value, resp.Answers[3].Value)
	}
	// Agreement with the single-query endpoint.
	sq := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"agg":"COUNT","where":[{"col":"height","op":">=","v":150}]}`))
	srr := httptest.NewRecorder()
	h.ServeHTTP(srr, sq)
	var single AnswerJSON
	if err := json.NewDecoder(srr.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	if single.Value != resp.Answers[0].Value {
		t.Fatalf("/querybatch %g disagrees with /query %g", resp.Answers[0].Value, single.Value)
	}

	// Cap and empty-batch validation.
	var many bytes.Buffer
	many.WriteString(`{"queries":[`)
	for i := 0; i < 5; i++ {
		if i > 0 {
			many.WriteString(",")
		}
		fmt.Fprintf(&many, `{"agg":"COUNT"}`)
	}
	many.WriteString(`]}`)
	if rr, _ := post(t, many.String()); rr.Code != http.StatusBadRequest {
		t.Fatalf("over-cap batch: status %d", rr.Code)
	}
	if rr, _ := post(t, `{"queries":[]}`); rr.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", rr.Code)
	}
	if rr, _ := post(t, `not json`); rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d", rr.Code)
	}
}

// TestQueryBatchHTTPDisabled pins that BatchMax < 0 turns the endpoint off.
func TestQueryBatchHTTPDisabled(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 50, Seed: 3})
	srv, err := NewServer(d, Config{Protection: NoProtection})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(srv, HandlerConfig{BatchMax: -1})
	req := httptest.NewRequest(http.MethodPost, "/querybatch", strings.NewReader(`{"queries":[{"agg":"COUNT"}]}`))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusForbidden {
		t.Fatalf("disabled endpoint: status %d", rr.Code)
	}
}

package sdcquery

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"privacy3d/internal/dataset"
	"privacy3d/internal/dp"
	"privacy3d/internal/noise"
	"privacy3d/internal/par"
	"privacy3d/internal/stats"
	"privacy3d/internal/store"
)

// Protection selects the inference-control strategy of a Server. The three
// non-trivial strategies correspond to the paper's "perturbing, restricting
// or replacing by intervals the answers to certain queries" ([7,14,16]).
type Protection int

const (
	// NoProtection answers every query exactly (the raw search-engine-like
	// database with neither respondent nor user privacy).
	NoProtection Protection = iota
	// SizeRestriction denies queries whose query set has fewer than
	// MinSetSize or more than n-MinSetSize records.
	SizeRestriction
	// Auditing tracks answered queries and denies any query whose answer,
	// combined with the history, would fully determine one record's
	// confidential value (Chin & Ozsoyoglu 1982).
	Auditing
	// Perturbation answers with additive noise (Duncan & Mukherjee 2000).
	// The noise is derived statelessly from (Seed, canonical query), so a
	// repeated query re-releases the identical perturbed value — averaging
	// repetitions gains nothing — and perturbed answers need no shared rng
	// on the hot path.
	Perturbation
	// Camouflage answers with an interval guaranteed to contain the true
	// value (CVC, Gopal et al. 2002).
	Camouflage
	// OverlapRestriction denies queries overlapping a previously answered
	// query set in more than MaxOverlap records (Dobkin, Jones & Lipton
	// 1979), on top of the MinSetSize bound.
	OverlapRestriction
	// RandomSample answers each query over a query-keyed pseudo-random
	// subsample of the query set (Denning 1980): difference attacks stop
	// working because the two differenced queries draw different samples,
	// while aggregate answers stay approximately right (scaled back up).
	RandomSample
	// DifferentialPrivacy answers with Laplace (or Gaussian, when
	// Config.Delta > 0) noise calibrated to the query's sensitivity, and
	// debits a per-principal ε budget on every fresh answer. Queries must
	// carry a principal (AskAs / the X-Privacy3D-Principal header); once a
	// principal's ε is spent, further queries are refused with a typed
	// budget-exhausted error. Unlike the heuristic Perturbation mode, the
	// noise scale follows the DP calibration Δ/ε and the same seed
	// reproduces byte-identical answers at any concurrency level. A
	// repeated identical (principal, query) is served from the answer
	// cache as a re-release of the identical value and debits ε exactly
	// once — re-releasing what the principal already holds leaks nothing
	// new, so charging it again was pure loss (the seed double-debited).
	DifferentialPrivacy
)

// String names the protection.
func (p Protection) String() string {
	switch p {
	case NoProtection:
		return "none"
	case SizeRestriction:
		return "size-restriction"
	case Auditing:
		return "auditing"
	case Perturbation:
		return "perturbation"
	case Camouflage:
		return "camouflage"
	case OverlapRestriction:
		return "overlap-restriction"
	case RandomSample:
		return "random-sample"
	case DifferentialPrivacy:
		return "differential-privacy"
	default:
		return fmt.Sprintf("Protection(%d)", int(p))
	}
}

// protectionsByName is the single source of truth for the short -protect
// flag names: the CLI parser, its help text, the error messages and the
// rendered ProtectionTable all derive from it, so they cannot drift apart
// (they did once; the lint golden test now pins them). Flags lists the
// extra CLI flags a mode consumes; Doc is the one-line description of the
// generated table.
var protectionsByName = []struct {
	Name  string
	P     Protection
	Flags string
	Doc   string
}{
	{"none", NoProtection, "",
		"answers every query exactly (no respondent or user privacy)"},
	{"size", SizeRestriction, "-minsize",
		"denies queries whose query set is smaller than minsize or larger than n−minsize"},
	{"auditing", Auditing, "-minsize",
		"denies any query that, combined with the answered history, would determine one record's confidential value"},
	{"perturbation", Perturbation, "",
		"adds heuristic Laplace noise of fixed standard deviation to every answer"},
	{"camouflage", Camouflage, "",
		"answers with an interval guaranteed to contain the true value"},
	{"overlap", OverlapRestriction, "-minsize",
		"denies queries overlapping a previously answered query set in more than one record"},
	{"sample", RandomSample, "",
		"answers over a query-keyed pseudo-random subsample, defeating difference attacks"},
	{"dp", DifferentialPrivacy, "-epsilon, -delta, -budget, -principal",
		"adds Laplace (or Gaussian when δ>0) noise calibrated to the query's sensitivity and debits a per-principal ε budget; see DESIGN.md §Inference control"},
}

// ProtectionTable renders the -protect modes as a GitHub-flavoured markdown
// table — the README "Query protections" section and the lint golden file
// (cmd/privacy3d/testdata/protections.golden) are both this one output, so
// the docs cannot drift from the parser.
func ProtectionTable() string {
	var b strings.Builder
	b.WriteString("| `-protect` | Protection | Extra flags | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, p := range protectionsByName {
		flags := p.Flags
		if flags == "" {
			flags = "—"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", p.Name, p.P, flags, p.Doc)
	}
	return b.String()
}

// ProtectionNames lists every accepted short protection name, in canonical
// order.
func ProtectionNames() []string {
	names := make([]string, len(protectionsByName))
	for i, p := range protectionsByName {
		names[i] = p.Name
	}
	return names
}

// ParseProtection resolves a short protection name ("size", "auditing", …).
func ParseProtection(name string) (Protection, error) {
	for _, p := range protectionsByName {
		if p.Name == name {
			return p.P, nil
		}
	}
	return 0, fmt.Errorf("sdcquery: unknown protection %q (want %s)", name, strings.Join(ProtectionNames(), ", "))
}

// Answer is the server's response to a query.
type Answer struct {
	// Denied reports that the protection refused the query; Reason says why.
	Denied bool
	Reason string
	// Value is the (possibly perturbed) point answer when not denied and
	// not camouflaged.
	Value float64
	// Lo/Hi bound the answer under Camouflage (Lo ≤ true ≤ Hi).
	Lo, Hi float64
	// Interval reports that Lo/Hi carry the answer.
	Interval bool
	// Budgeted reports that this answer was released under
	// DifferentialPrivacy and is budget-accounted: Epsilon is the ε the
	// release cost (charged once, at first release — a cache-served
	// repeat is a re-release and costs nothing) and EpsilonRemaining the
	// principal's unspent ε after accounting.
	Budgeted         bool
	Epsilon          float64
	EpsilonRemaining float64
}

// Serving-layer defaults. Both logs and caches are bounded by default: a
// server meant to survive sustained traffic must not hold state that grows
// linearly with the query stream.
const (
	// DefaultQueryLogCap bounds Server's query log to the newest window
	// (mirrors pir.DefaultQueryLogCap).
	DefaultQueryLogCap = 4096
	// DefaultAnswerCacheCap bounds the answer cache.
	DefaultAnswerCacheCap = 4096
	// DefaultMaxTrackedQueries caps the overlap controller's answered-set
	// history.
	DefaultMaxTrackedQueries = 65536
)

// Config parameterises a Server.
type Config struct {
	Protection Protection
	// MinSetSize is the query-set-size threshold for SizeRestriction
	// (default 3, also used by Auditing as a first filter if > 0).
	MinSetSize int
	// NoiseSD is the absolute standard deviation of Laplace perturbation
	// noise (default: 1).
	NoiseSD float64
	// CamouflageWidth is the half-width of camouflage intervals as a
	// fraction of the answer magnitude (default 0.1).
	CamouflageWidth float64
	// MaxOverlap bounds pairwise query-set intersections under
	// OverlapRestriction (default 1).
	MaxOverlap int
	// SampleRate is the inclusion probability of RandomSample
	// (default 0.8).
	SampleRate float64
	// Seed drives the perturbation noise. Under Perturbation and
	// DifferentialPrivacy it is the root of the reproducibility contract:
	// the released noise is a pure function of (Seed, [principal,]
	// canonical query string), so the same seed yields byte-identical
	// perturbed answers at any worker count and request interleaving.
	Seed uint64

	// Epsilon is the per-query privacy cost ε of DifferentialPrivacy
	// (default 0.5). Each freshly answered query debits this much from
	// the asking principal's budget; cache-served repeats debit nothing.
	Epsilon float64
	// Delta selects the mechanism of DifferentialPrivacy: 0 (default)
	// uses the ε-DP Laplace mechanism; 0 < Delta < 1 uses the (ε,δ)-DP
	// Gaussian mechanism with σ = Δ·√(2·ln(1.25/δ))/ε.
	Delta float64
	// EpsilonBudget is the total ε each (principal, dataset) pair may
	// spend under DifferentialPrivacy (default 10). Once spent, further
	// queries are refused with an error wrapping dp.ErrBudgetExhausted.
	EpsilonBudget float64
	// DatasetID names the served dataset in the budget ledger key
	// (default "served"); distinct IDs keep budgets separate when one
	// ledger fronts several releases.
	DatasetID string

	// QueryLogCap bounds the query log to the newest entries (default
	// DefaultQueryLogCap). The owner's view becomes a sliding window;
	// LogStats reports exactly how much older history was shed. Ignored
	// when UnboundedQueryLog is set.
	QueryLogCap int
	// UnboundedQueryLog opts into the original append-only full-log
	// semantics — the user-privacy evaluator's literal "the owner sees
	// every query" reading. A server under sustained load must leave
	// this off: an unbounded log grows until the process OOMs.
	UnboundedQueryLog bool
	// AnswerCacheCap bounds the answer cache (default
	// DefaultAnswerCacheCap entries; negative disables caching). The
	// cache serves repeated (principal, canonical query) shapes without
	// re-scanning the dataset; under DifferentialPrivacy it also makes a
	// repeat a free re-release instead of a second ε debit.
	AnswerCacheCap int
	// MaxTrackedQueries caps the overlap controller's answered-set
	// history (default DefaultMaxTrackedQueries). When the cap is
	// reached, further new query sets are denied — deny-when-full:
	// forgetting answered sets would re-admit exactly the difference
	// attacks overlap control exists to stop, so the controller
	// sacrifices availability, never the overlap bound. Only
	// OverlapRestriction reads this.
	MaxTrackedQueries int

	// SegmentSize is the rows-per-segment of the columnar store backing
	// the server (default store.DefaultSegmentSize; must be a positive
	// multiple of 64). Smaller segments seal — and therefore index —
	// ingested rows sooner at the cost of more per-segment overhead.
	SegmentSize int
	// ForceScan answers predicates by the compiled row-at-a-time scan
	// instead of the segment indexes. Answers are byte-identical either
	// way (cmd/benchstore gates on it); the switch exists for A/B
	// benchmarking and as an escape hatch.
	ForceScan bool
	// Shards is the number of goroutine-owned segment shards queries
	// scatter across in the columnar store (default store.DefaultShards).
	// Answers are byte-identical at any shard count; the knob trades
	// scheduling granularity against per-shard locality.
	Shards int
	// DataDir makes the backing store durable: sealed segments spill to
	// checksummed files under this directory behind a manifest, so the
	// served data survives restarts (store.Open + NewServerFromStore
	// recovers it). Empty keeps the store memory-only. NewServer creates a
	// fresh store here and fails if the directory already holds one.
	DataDir string
	// MemCap caps the decoded resident bytes of sealed segments when
	// DataDir is set (0 = uncapped): segments beyond the cap are evicted
	// after being persisted and read back through the pager on demand,
	// letting the served dataset exceed RAM. Answers are byte-identical
	// across tiers.
	MemCap int64
}

// Server is an interactively queryable statistical database. It records
// every query submitted — the total absence of user privacy that Section 3
// of the paper builds on. The log is a bounded newest-window ring by
// default (Config.QueryLogCap, drops counted); the evaluator's full-log
// semantics are an explicit opt-in (Config.UnboundedQueryLog).
//
// Server is safe for concurrent use, and the hot path is built for
// sustained load: the stateless protections (none, size restriction,
// perturbation, camouflage, random sample, differential privacy) evaluate
// the query set and compute their answer without taking any server-wide
// lock — the dataset is immutable, perturbation/camouflage/sample/dp noise
// is a pure function of (Seed, [principal,] query), the query-log append is
// an O(1) bounded-ring operation, and dp budget accounting runs on the
// lock-striped dp.Ledger. Only the stateful protections (auditing, overlap
// control) serialize, on their own mutex, and only around their
// check-and-commit — never around the full-table scan. Repeated
// (principal, query) shapes are served from a bounded answer cache without
// re-scanning at all.
type Server struct {
	// st is the columnar segment store the server answers from; every
	// query pins one store.Snapshot, so concurrent Ingest never changes
	// an in-flight answer's (or audit's) view of the data. d retains the
	// construction-time dataset only so Dataset() can hand it back
	// without materializing while nothing has been ingested.
	st          *store.Store
	d           *dataset.Dataset
	baseVersion uint64
	cfg         Config

	// Query log: the bounded ring is the default; the unbounded slice
	// (logMu-guarded) is the explicit evaluator opt-in.
	logRing *par.Ring[Query]
	logMu   sync.Mutex
	fullLog []Query

	// cache serves repeated (principal, query) shapes; nil when disabled.
	cache *answerCache

	// The stateful protections are serialized by stateMu, separately from
	// the lock-free stateless read path.
	stateMu sync.Mutex
	audn    *auditor
	overlap *OverlapController

	// DifferentialPrivacy state: the ε-budget ledger and the public
	// per-attribute bounds the sensitivity rules use. Both are fixed at
	// construction and internally synchronised (ledger) or immutable
	// (bounds), so the DP path reads them without locking. dpFlight
	// serializes identical in-flight (principal, query) first releases on
	// a striped lock so a concurrent duplicate cannot double-debit ε.
	ledger   *dp.Ledger
	bounds   map[string]dp.Bounds
	dpFlight [64]sync.Mutex

	// Batch telemetry: AskBatch submissions and the queries they carried
	// (batchQueries/batches is the mean batch width the metrics export).
	batches      atomic.Int64
	batchQueries atomic.Int64
}

// NewServer wraps a dataset in a protected query interface. With
// cfg.DataDir set, the backing columnar store is created durable in that
// directory (which must not already contain a store — recover an existing
// one with store.Open + NewServerFromStore instead).
func NewServer(d *dataset.Dataset, cfg Config) (*Server, error) {
	if d == nil || d.Rows() == 0 {
		return nil, fmt.Errorf("sdcquery: server needs a non-empty dataset")
	}
	var (
		st  *store.Store
		err error
	)
	if cfg.DataDir != "" {
		st, err = store.CreateFromDataset(cfg.DataDir, d, store.Options{
			SegmentSize: cfg.SegmentSize,
			Shards:      cfg.Shards,
			MemCap:      cfg.MemCap,
		})
	} else {
		st, err = store.FromDatasetSharded(d, cfg.SegmentSize, cfg.Shards)
	}
	if err != nil {
		return nil, err
	}
	s, err := NewServerFromStore(st, cfg)
	if err != nil {
		if cfg.DataDir != "" {
			st.Close()
		}
		return nil, err
	}
	// Retain the construction-time dataset so Dataset() can hand it back
	// without materializing while nothing has been ingested.
	s.d = d
	return s, nil
}

// NewServerFromStore serves an existing columnar store — the recovery
// path: store.Open(datadir) hands back the last committed sealed state and
// this wraps it in the same protected query interface NewServer builds.
// The server takes ownership of the store; Close releases it.
func NewServerFromStore(st *store.Store, cfg Config) (*Server, error) {
	if st == nil || st.Rows() == 0 {
		return nil, fmt.Errorf("sdcquery: server needs a non-empty store")
	}
	if cfg.MinSetSize <= 0 {
		cfg.MinSetSize = 3
	}
	if cfg.NoiseSD <= 0 {
		cfg.NoiseSD = 1
	}
	if cfg.CamouflageWidth <= 0 {
		cfg.CamouflageWidth = 0.1
	}
	if cfg.MaxOverlap <= 0 {
		cfg.MaxOverlap = 1
	}
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		cfg.SampleRate = 0.8
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.5
	}
	if cfg.Delta < 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("sdcquery: delta must be in [0, 1), got %g", cfg.Delta)
	}
	if cfg.EpsilonBudget <= 0 {
		cfg.EpsilonBudget = 10
	}
	if cfg.DatasetID == "" {
		cfg.DatasetID = "served"
	}
	if cfg.QueryLogCap <= 0 {
		cfg.QueryLogCap = DefaultQueryLogCap
	}
	if cfg.AnswerCacheCap == 0 {
		cfg.AnswerCacheCap = DefaultAnswerCacheCap
	}
	if cfg.MaxTrackedQueries <= 0 {
		cfg.MaxTrackedQueries = DefaultMaxTrackedQueries
	}
	// A two-sided size restriction needs room for an admissible set size:
	// with fewer than 2·MinSetSize rows every possible query set is either
	// below MinSetSize or above Rows−MinSetSize, so the server would deny
	// every query it will ever see. That is a configuration error, not a
	// server.
	if cfg.Protection == SizeRestriction && st.Rows() < 2*cfg.MinSetSize {
		return nil, fmt.Errorf("sdcquery: size restriction with minsize %d can never answer over %d rows (every query set size falls outside [%d,%d]); lower minsize or serve more rows",
			cfg.MinSetSize, st.Rows(), cfg.MinSetSize, st.Rows()-cfg.MinSetSize)
	}
	oc, err := NewOverlapController(cfg.MinSetSize, cfg.MaxOverlap, cfg.MaxTrackedQueries)
	if err != nil {
		return nil, err
	}
	s := &Server{
		st:          st,
		baseVersion: st.Version(),
		cfg:         cfg,
		audn:        newAuditor(),
		overlap:     oc,
	}
	if !cfg.UnboundedQueryLog {
		s.logRing = par.NewRing[Query](cfg.QueryLogCap)
	}
	if cfg.AnswerCacheCap > 0 {
		s.cache = newAnswerCache(cfg.AnswerCacheCap)
	}
	if cfg.Protection == DifferentialPrivacy {
		if s.ledger, err = dp.NewLedger(cfg.EpsilonBudget); err != nil {
			return nil, err
		}
		// The bounds of each numeric attribute become fixed public
		// metadata for the server's lifetime — the sensitivity of SUM and
		// AVG is derived from them, never from the live query set's
		// values, so the noise scale leaks nothing per query. The snapshot
		// answers min/max from the per-segment zone maps, identical to a
		// row sweep over the column.
		snap := st.Snapshot()
		s.bounds = make(map[string]dp.Bounds)
		for j, a := range st.Attrs() {
			if a.Kind == dataset.Numeric {
				lo, hi := snap.NumRange(j)
				s.bounds[a.Name] = dp.Bounds{Lo: lo, Hi: hi}
			}
		}
	}
	return s, nil
}

// Close releases the backing store: a durable store commits its final
// state (including the open tail) and drops its directory lock. The
// server must not answer queries afterwards.
func (s *Server) Close() error { return s.st.Close() }

// logQuery records q in the owner's log: an O(1) ring append on the
// bounded default, a slice append under logMu on the unbounded opt-in.
func (s *Server) logQuery(q Query) {
	if s.logRing != nil {
		s.logRing.Append(q)
		return
	}
	s.logMu.Lock()
	s.fullLog = append(s.fullLog, q)
	s.logMu.Unlock()
}

// Log returns a copy of the queries the server retains, in submission
// order. The user-privacy evaluator reads this: for a plaintext statistical
// server the log IS the user's query stream. Under the default bounded log
// it is the newest Config.QueryLogCap window; LogStats reports how much
// older history was dropped.
func (s *Server) Log() []Query {
	if s.logRing != nil {
		return s.logRing.Snapshot()
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return append([]Query(nil), s.fullLog...)
}

// LogDepth returns the number of retained queries without copying the log —
// cheap enough to sample on every metrics scrape.
func (s *Server) LogDepth() int {
	if s.logRing != nil {
		return s.logRing.Len()
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return len(s.fullLog)
}

// LogStats reports the query log's state: entries retained, entries
// dropped (overwritten) since construction, and the retention cap.
// capacity is 0 under the unbounded opt-in, where nothing is ever dropped.
func (s *Server) LogStats() (retained int, dropped int64, capacity int) {
	if s.logRing != nil {
		return s.logRing.Len(), s.logRing.Dropped(), s.logRing.Cap()
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return len(s.fullLog), 0, 0
}

// CacheStats reports the answer cache's lifetime hits and misses and its
// current entry count; ok is false when caching is disabled.
func (s *Server) CacheStats() (hits, misses int64, entries int, ok bool) {
	if s.cache == nil {
		return 0, 0, 0, false
	}
	hits, misses, entries = s.cache.stats()
	return hits, misses, entries, true
}

// OverlapStats reports the overlap controller's answered-history size and
// its cap (the Config.MaxTrackedQueries bound).
func (s *Server) OverlapStats() (tracked, capacity int) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.overlap.Stats()
}

// Rows exposes the current database size (public metadata). It grows as
// rows are ingested.
func (s *Server) Rows() int { return s.st.Rows() }

// Version identifies the currently visible data (the store's monotonic
// publish counter). Answer-cache and noise keys embed it, so answers
// computed against one version are never served for another.
func (s *Server) Version() uint64 { return s.st.Version() }

// Shards reports the columnar store's segment-shard count.
func (s *Server) Shards() int { return s.st.Shards() }

// ScratchStats reports the store's pooled-scratch leases and pool misses;
// the metrics layer derives the pooled-bitmap hit rate from them.
func (s *Server) ScratchStats() (gets, news int64) { return s.st.ScratchStats() }

// BatchStats reports how many AskBatch submissions the server has seen and
// how many queries they carried in total.
func (s *Server) BatchStats() (batches, queries int64) {
	return s.batches.Load(), s.batchQueries.Load()
}

// Dataset exposes the served microdata — the owner-side handle the
// /protect endpoint masks releases from. It pins the current snapshot:
// while nothing has been ingested this is the construction-time dataset
// itself; afterwards it is a fresh materialization of the pinned version,
// so a masking run is never affected by ingest that lands mid-release.
// The returned dataset must be treated as read-only.
func (s *Server) Dataset() *dataset.Dataset {
	snap := s.st.Snapshot()
	if s.d != nil && snap.Version() == s.baseVersion {
		return s.d
	}
	return snap.Materialize()
}

// Ingest appends one record to the served microdata (same value contract
// as dataset.Append). In-flight queries, audits and releases pinned an
// earlier snapshot and are unaffected; the next query sees the new row.
//
// Under DifferentialPrivacy the per-attribute sensitivity bounds remain
// the fixed public metadata captured at construction — by design the noise
// scale never tracks the live data, so ingested values outside the
// original bounds are the owner's responsibility (deriving new bounds from
// ingested values would leak them).
func (s *Server) Ingest(vals ...any) error { return s.st.Append(vals...) }

// Ask submits an anonymous query. Every query is logged before protection
// runs: the owner sees denied queries too. Under DifferentialPrivacy an
// anonymous query cannot be budget-accounted and fails with
// dp.ErrNoPrincipal — use AskAs.
func (s *Server) Ask(q Query) (Answer, error) { return s.AskAs("", q) }

// AskAs submits a query on behalf of a principal (the budget-accounting
// identity under DifferentialPrivacy; ignored by the other protections).
// Every query is logged before protection runs: the owner sees denied
// queries too.
//
// Repeated (principal, canonical query) shapes are served from the bounded
// answer cache: a hit releases exactly the bytes the uncached serial path
// would have released — every cached protection answers a repeat as a pure
// function of (principal, query) — without re-scanning the dataset. Under
// DifferentialPrivacy a hit is a re-release of a value the principal
// already holds and therefore debits no additional ε (only
// EpsilonRemaining is refreshed to the current ledger state). Overlap
// restriction is never cached: its repeat-denials depend on the answered
// history, so a cached answer would diverge from the serial path.
func (s *Server) AskAs(principal string, q Query) (Answer, error) {
	s.logQuery(q)
	// Pin the snapshot first: the cache key embeds its version, so a hit
	// can only ever serve an answer computed against this exact view —
	// ingest between requests changes the key, never a cached answer.
	snap := s.st.Snapshot()
	key, cacheable := s.cacheKey(principal, snap.Version(), q)
	return s.askOne(principal, snap, q, key, cacheable, nil)
}

// askOne is the post-log tail shared by AskAs and AskBatch: cache probe,
// protection dispatch, cache fill. bm, when non-nil, is the query set
// already evaluated against snap (AskBatch precomputes it in one sharded
// sweep); a nil bm evaluates inside the protection path exactly as before.
func (s *Server) askOne(principal string, snap *store.Snapshot, q Query, key string, cacheable bool, bm *store.Bitmap) (Answer, error) {
	if cacheable && s.cfg.Protection == DifferentialPrivacy {
		// Under DP the cache IS the accounting dedup, so two concurrent
		// identical first requests must not both miss and both charge:
		// identical keys serialize on a lock stripe, and the second
		// arrival finds the cache filled. The stateless protections skip
		// this — a duplicated computation there is byte-identical and
		// side-effect-free, so their fast path stays lock-free.
		m := &s.dpFlight[fnvStripe(key, uint64(len(s.dpFlight)))]
		m.Lock()
		defer m.Unlock()
	}
	if cacheable {
		if a, ok := s.cache.get(key); ok {
			if a.Budgeted {
				a.EpsilonRemaining = s.ledger.Remaining(principal, s.cfg.DatasetID)
			}
			return a, nil
		}
	}
	a, err := s.answer(principal, snap, q, bm)
	if err != nil {
		return a, err
	}
	if cacheable {
		s.cache.put(key, a)
	}
	return a, nil
}

// AskBatch submits several queries on behalf of one principal and answers
// them in submission order. Every query is logged (denied and failed ones
// too) and the whole batch pins ONE snapshot, so the batch answers a single
// consistent version. The point of the entry is the miss path: the query
// sets of every answer-cache miss are evaluated together in one sharded
// column sweep (store.Snapshot.EvalBatch) — each segment's columns and
// indexes are loaded once and tested against every missed predicate — and
// the per-query protection logic then runs in order on the precomputed
// bitmaps. Each answer is byte-identical to what the equivalent serial
// AskAs loop would have produced: the stateful protections (auditing,
// overlap restriction) commit their state per answer in batch order, and
// the noise/cache keys depend only on (version, principal, query).
//
// errs[i] reports the i'th query's failure; one malformed query never
// sinks the rest of the batch.
func (s *Server) AskBatch(principal string, qs []Query) (answers []Answer, errs []error) {
	answers = make([]Answer, len(qs))
	errs = make([]error, len(qs))
	if len(qs) == 0 {
		return answers, errs
	}
	s.batches.Add(1)
	s.batchQueries.Add(int64(len(qs)))
	for _, q := range qs {
		s.logQuery(q)
	}
	snap := s.st.Snapshot()
	if s.cfg.Protection == DifferentialPrivacy && principal == "" {
		// Same precedence as the serial path: the principal check precedes
		// any evaluation, so nothing is computed for a caller who cannot be
		// budget-accounted.
		for i := range qs {
			errs[i] = fmt.Errorf("sdcquery: differential privacy needs a principal for budget accounting: %w", dp.ErrNoPrincipal)
		}
		return answers, errs
	}
	keys := make([]string, len(qs))
	cacheable := make([]bool, len(qs))
	hit := make([]bool, len(qs))
	hitA := make([]Answer, len(qs))
	for i, q := range qs {
		keys[i], cacheable[i] = s.cacheKey(principal, snap.Version(), q)
		if !cacheable[i] {
			continue
		}
		// For the stateless protections this probe is authoritative (cached
		// answers are immutable pure functions of the key). Under DP it is
		// only a skip-the-eval hint: the authoritative re-check runs under
		// the flight stripe in askOne, so a racing eviction costs at worst
		// one single-query evaluation, never a double ε debit.
		if a, ok := s.cache.get(keys[i]); ok {
			hit[i], hitA[i] = true, a
		}
	}
	// Evaluate every miss in one sharded sweep. Queries that fail predicate
	// compilation get their error now and are excluded — EvalBatch itself
	// fails whole batches, so it only ever sees pre-validated conjunctions.
	missIdx := make([]int, 0, len(qs))
	batch := make([][]store.Cond, 0, len(qs))
	for i, q := range qs {
		if hit[i] {
			continue
		}
		conds, err := s.storeConds(snap, q.Where)
		if err != nil {
			errs[i] = err
			continue
		}
		missIdx = append(missIdx, i)
		batch = append(batch, conds)
	}
	bms := make(map[int]*store.Bitmap, len(missIdx))
	if len(batch) > 0 {
		var evaled []*store.Bitmap
		var err error
		if s.cfg.ForceScan {
			evaled = make([]*store.Bitmap, len(batch))
			for k, conds := range batch {
				if evaled[k], err = snap.EvalScan(conds); err != nil {
					break
				}
			}
		} else {
			evaled, err = snap.EvalBatch(batch)
		}
		if err != nil {
			// Unreachable for pre-compiled conjunctions; fail the affected
			// queries rather than the process if it ever happens.
			for _, i := range missIdx {
				errs[i] = err
			}
			return answers, errs
		}
		for k, i := range missIdx {
			bms[i] = evaled[k]
		}
	}
	// Answer in submission order so the stateful protections mutate their
	// history exactly like the equivalent serial AskAs loop.
	for i, q := range qs {
		if errs[i] != nil {
			continue
		}
		if hit[i] {
			a := hitA[i]
			if a.Budgeted {
				a.EpsilonRemaining = s.ledger.Remaining(principal, s.cfg.DatasetID)
			}
			answers[i] = a
			continue
		}
		answers[i], errs[i] = s.askOne(principal, snap, q, keys[i], cacheable[i], bms[i])
	}
	return answers, errs
}

// fnvStripe maps a key to one of n lock stripes via FNV-1a.
func fnvStripe(key string, n uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64() % n
}

// cacheKey returns the answer-cache key of (principal, version, q) and
// whether the configured protection admits caching at all. The snapshot
// version joins every key — an answer computed against one version of the
// growing store must never be served for another. The principal joins only
// under DifferentialPrivacy — the one protection whose answers depend on
// who asks; every other protection shares hits across principals.
func (s *Server) cacheKey(principal string, version uint64, q Query) (string, bool) {
	if s.cache == nil || s.cfg.Protection == OverlapRestriction {
		return "", false
	}
	v := strconv.FormatUint(version, 10)
	if s.cfg.Protection == DifferentialPrivacy {
		return v + "\x00" + principal + "\x00" + q.String(), true
	}
	return v + "\x00" + q.String(), true
}

// answer runs the configured protection against the pinned snapshot. The
// query-set evaluation — index range scans intersected into a bitmap —
// always runs outside any server-wide lock (the snapshot is immutable);
// only the stateful protections then serialize, on stateMu, around their
// atomic check-and-commit. bm, when non-nil, is the already-evaluated
// query set (the batched miss path); protection dispatch is identical
// either way, so a precomputed bitmap cannot change a single answer byte.
func (s *Server) answer(principal string, snap *store.Snapshot, q Query, bm *store.Bitmap) (Answer, error) {
	if s.cfg.Protection == DifferentialPrivacy && principal == "" {
		// Checked before any evaluation, matching the historical precedence:
		// an unidentified DP caller learns nothing, not even whether the
		// predicate compiles.
		return Answer{}, fmt.Errorf("sdcquery: differential privacy needs a principal for budget accounting: %w", dp.ErrNoPrincipal)
	}
	if bm == nil {
		var err error
		if bm, err = s.eval(snap, q.Where); err != nil {
			return Answer{}, err
		}
	}
	if s.cfg.Protection == DifferentialPrivacy {
		return s.dpAnswer(principal, snap, q, bm)
	}
	n := bm.Count()
	switch s.cfg.Protection {
	case NoProtection:
		return s.exact(snap, q, bm, n)
	case SizeRestriction:
		if n < s.cfg.MinSetSize || n > snap.Rows()-s.cfg.MinSetSize {
			return Answer{Denied: true, Reason: fmt.Sprintf("query set size %d outside [%d,%d]",
				n, s.cfg.MinSetSize, snap.Rows()-s.cfg.MinSetSize)}, nil
		}
		return s.exact(snap, q, bm, n)
	case Auditing:
		return s.audited(snap, q, bm, n)
	case Perturbation:
		a, err := s.exact(snap, q, bm, n)
		if err != nil || a.Denied {
			return a, err
		}
		a.Value += s.perturbNoise(snap.Version(), q)
		return a, nil
	case Camouflage:
		a, err := s.exact(snap, q, bm, n)
		if err != nil || a.Denied {
			return a, err
		}
		return s.camouflage(snap.Version(), q, a.Value), nil
	case OverlapRestriction:
		rows := bm.Rows()
		s.stateMu.Lock()
		ok, reason := s.overlap.Admit(rows)
		s.stateMu.Unlock()
		if !ok {
			return Answer{Denied: true, Reason: "overlap control: " + reason}, nil
		}
		return s.exact(snap, q, bm, n)
	case RandomSample:
		return s.sampled(snap, q, bm)
	default:
		return Answer{}, fmt.Errorf("sdcquery: unknown protection %v", s.cfg.Protection)
	}
}

// storeConds validates the predicate against the schema and lowers it to
// store conditions. Validation runs through Predicate.Compile so the error
// text matches the library evaluator byte for byte, and the conditions are
// built from the compiled form, not the raw one: Compile has already
// resolved each condition's kind (including the lenient
// zero-valued-Cond-as-empty-string case), so the store sees exactly the
// comparison the library evaluator will run.
func (s *Server) storeConds(snap *store.Snapshot, p Predicate) ([]store.Cond, error) {
	attrs := snap.Attrs()
	cp, err := p.Compile(attrs)
	if err != nil {
		return nil, err
	}
	conds := make([]store.Cond, len(cp.conds))
	for i, c := range cp.conds {
		conds[i] = store.Cond{Col: attrs[c.col].Name, Op: store.Op(c.op), V: c.v, S: c.s, Str: !c.numeric}
	}
	return conds, nil
}

// eval answers the predicate over the snapshot as a row bitmap — via the
// sharded segment indexes by default, via the compiled scan under
// Config.ForceScan.
func (s *Server) eval(snap *store.Snapshot, p Predicate) (*store.Bitmap, error) {
	conds, err := s.storeConds(snap, p)
	if err != nil {
		return nil, err
	}
	if s.cfg.ForceScan {
		return snap.EvalScan(conds)
	}
	return snap.Eval(conds)
}

// evalBitmap computes the true aggregate over an evaluated query set:
// COUNT is the bitmap's popcount (already taken by the caller), SUM/AVG a
// bitmap-driven column sweep in ascending row order — the identical float64
// summation order as the scan paths, so every evaluator agrees byte for
// byte. Validation and finishing are shared with Query.Evaluate
// (aggColumn, finishAgg).
func (s *Server) evalBitmap(snap *store.Snapshot, q Query, bm *store.Bitmap, n int) (float64, error) {
	j, err := aggColumn(snap.Attrs(), q)
	if err != nil {
		return 0, err
	}
	var sum float64
	if j >= 0 {
		sum = snap.Sum(bm, j)
	}
	return finishAgg(q.Agg, n, sum)
}

func (s *Server) exact(snap *store.Snapshot, q Query, bm *store.Bitmap, n int) (Answer, error) {
	v, err := s.evalBitmap(snap, q, bm, n)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Value: v}, nil
}

// noiseKey renders the derivation key shared by every stateless noise
// mechanism: the pinned snapshot version, the principal (empty outside DP),
// and the canonical query, mirroring cacheKey. Repeats within one data
// version re-release identically (no averaging attack); each version draws
// independently (differencing across an Ingest cancels nothing).
func noiseKey(version uint64, principal string, q Query) string {
	return strconv.FormatUint(version, 10) + "\x00" + principal + "\x00" + q.String()
}

// perturbNoise derives the Perturbation mode's Laplace noise statelessly
// from (Seed, snapshot version, canonical query). The shared-rng design
// this replaces serialized every perturbed answer behind one mutex AND let
// users average the noise out by repeating a query; the query-keyed
// derivation fixes both, following the same determinism contract as
// camouflage, random sample and dp. The version joins the key for the same
// reason as in dpAnswer: with a draw shared across versions, querying
// before and after an Ingest would disclose the ingested rows' exact
// aggregate contribution as the noiseless difference of the two answers.
func (s *Server) perturbNoise(version uint64, q Query) float64 {
	h := fnv.New64a()
	h.Write([]byte(noiseKey(version, "", q)))
	k := h.Sum64()
	rng := rand.New(rand.NewPCG(s.cfg.Seed^k, k*0x9e3779b97f4a7c15+1))
	return noise.Laplace(rng, s.cfg.NoiseSD)
}

// --- differential privacy ------------------------------------------------

// dpAnswer releases the evaluated query set bm under the calibrated-noise
// mechanism and debits the principal's ε budget (answer has already
// rejected unidentified callers). The order matters for both privacy and
// accounting: the true answer and its sensitivity are computed first (no
// side effects), then the ledger check-and-debit runs atomically — a
// refused query releases nothing and costs nothing — and only a granted
// charge proceeds to noise derivation. Errors wrap dp.ErrBudgetExhausted
// (ε spent) and carry no information about the data.
func (s *Server) dpAnswer(principal string, snap *store.Snapshot, q Query, bm *store.Bitmap) (Answer, error) {
	n := bm.Count()
	var agg dp.Aggregate
	var bounds dp.Bounds
	var v float64
	switch q.Agg {
	case Count:
		agg = dp.Count
		v = float64(n)
	case Sum, Avg:
		j, err := aggColumn(snap.Attrs(), q)
		if err != nil {
			return Answer{}, err
		}
		bounds = s.bounds[q.Attr]
		if q.Agg == Avg && n == 0 {
			// AVG over an empty set has no true value to perturb; deny
			// like the other protections rather than invent one. No ε is
			// charged.
			return Answer{Denied: true, Reason: "differential privacy: empty query set"}, nil
		}
		sum := snap.Sum(bm, j)
		if q.Agg == Sum {
			agg = dp.Sum
			v = sum
		} else {
			agg = dp.Mean
			v = sum / float64(n)
		}
	default:
		return Answer{}, fmt.Errorf("sdcquery: unsupported aggregate %v", q.Agg)
	}
	sens, err := dp.Sensitivity(agg, bounds, n)
	if err != nil {
		return Answer{}, err
	}
	remaining, err := s.ledger.Charge(principal, s.cfg.DatasetID, s.cfg.Epsilon)
	if err != nil {
		return Answer{}, fmt.Errorf("sdcquery: %w", err)
	}
	mech := dp.Laplace
	if s.cfg.Delta > 0 {
		mech = dp.Gaussian
	}
	// The noise key is (version, principal, canonical query), mirroring
	// cacheKey: repeating a query at one data version re-releases the
	// identical perturbed value — averaging attacks gain nothing — and the
	// answer stream is byte-identical for any request interleaving or
	// worker count. The answer cache exploits exactly this: a repeat is
	// served from the cache as a free re-release, so ε is debited once per
	// distinct (principal, query), not once per request. The version MUST
	// join the key: were the draw shared across versions, asking before and
	// after an Ingest would release v1+nz and v2+nz, and v2−v1 — the exact
	// aggregate contribution of the ingested rows — would difference out
	// with zero noise.
	nz, err := dp.Noise(s.cfg.Seed, noiseKey(snap.Version(), principal, q), dp.NoiseParams{
		Mechanism: mech, Sensitivity: sens, Epsilon: s.cfg.Epsilon, Delta: s.cfg.Delta,
	})
	if err != nil {
		return Answer{}, err
	}
	return Answer{
		Value:            v + nz,
		Budgeted:         true,
		Epsilon:          s.cfg.Epsilon,
		EpsilonRemaining: remaining,
	}, nil
}

// BudgetRemaining reports the principal's unspent ε and whether the server
// runs budget accounting at all (only DifferentialPrivacy does). The
// metrics layer samples this per principal at scrape time.
func (s *Server) BudgetRemaining(principal string) (float64, bool) {
	if s.ledger == nil {
		return 0, false
	}
	return s.ledger.Remaining(principal, s.cfg.DatasetID), true
}

// BudgetPrincipals lists every principal the budget ledger has charged, in
// sorted order; nil when the server does not run DifferentialPrivacy.
func (s *Server) BudgetPrincipals() []string {
	if s.ledger == nil {
		return nil
	}
	return s.ledger.Principals(s.cfg.DatasetID)
}

// camouflage returns an interval that contains the true value but whose
// midpoint is a deterministic, (version, query)-keyed offset from it, so
// repeating the query gains the user nothing and the exact value is never
// released. The snapshot version joins the offset key like every other
// noise derivation: a version-independent offset would let the interval
// midpoints before and after an Ingest difference to the ingested rows'
// exact aggregate contribution.
func (s *Server) camouflage(version uint64, q Query, v float64) Answer {
	w := s.cfg.CamouflageWidth * maxAbs(v, 1)
	h := fnv.New64a()
	h.Write([]byte(noiseKey(version, "", q)))
	// Deterministic offset in [-w/2, w/2].
	off := (float64(h.Sum64()%1_000_003)/1_000_003 - 0.5) * w
	return Answer{Interval: true, Lo: v + off - w, Hi: v + off + w}
}

func maxAbs(v, floor float64) float64 {
	if v < 0 {
		v = -v
	}
	if v < floor {
		return floor
	}
	return v
}

// sampled answers a query from a pseudo-random subsample of its query set,
// following Denning's random sample queries: the inclusion coin of record i
// is keyed on BOTH the query and the record, so overlapping queries draw
// independent samples and difference attacks no longer telescope — while
// repeating the same query returns the same answer (no averaging attack)
// and every aggregate remains an unbiased scaled estimate.
func (s *Server) sampled(snap *store.Snapshot, q Query, bm *store.Bitmap) (Answer, error) {
	j, err := aggColumn(snap.Attrs(), q)
	if err != nil {
		return Answer{}, err
	}
	qh := fnv.New64a()
	qh.Write([]byte(q.String()))
	qkey := qh.Sum64() ^ s.cfg.Seed
	// One ascending pass over the bitmap draws the per-record inclusion
	// coins and accumulates count and sum together — same visit order and
	// float64 summation order as the seed's row-slice loop.
	var included int
	var sum float64
	bm.ForEach(func(i int) {
		h := (uint64(i) + 0x9e3779b97f4a7c15) * 0xff51afd7ed558ccd
		h ^= qkey
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 33
		if float64(h%1_000_003)/1_000_003 < s.cfg.SampleRate {
			included++
			if j >= 0 {
				sum += snap.Float(i, j)
			}
		}
	})
	switch q.Agg {
	case Count:
		return Answer{Value: float64(included) / s.cfg.SampleRate}, nil
	case Sum:
		return Answer{Value: sum / s.cfg.SampleRate}, nil
	case Avg:
		if included == 0 {
			return Answer{Denied: true, Reason: "random sample: empty sample"}, nil
		}
		return Answer{Value: sum / float64(included)}, nil
	default:
		return Answer{}, fmt.Errorf("sdcquery: unsupported aggregate %v", q.Agg)
	}
}

// audited runs the Chin–Ozsoyoglu check: the query is answered only if the
// linear system of all answered SUM/AVG/COUNT queries, extended with this
// one, still leaves every record's confidential value undetermined. The
// aggregate and the indicator vector are computed before the lock — over
// the pinned snapshot, so an audit in flight reasons about one consistent
// version even while ingest continues; only the atomic would-disclose
// check plus commit serialize on stateMu.
func (s *Server) audited(snap *store.Snapshot, q Query, bm *store.Bitmap, n int) (Answer, error) {
	v, err := s.evalBitmap(snap, q, bm, n)
	if err != nil {
		return Answer{}, err
	}
	indicator := make([]float64, snap.Rows())
	bm.ForEach(func(i int) { indicator[i] = 1 })
	key := q.Attr
	switch q.Agg {
	case Count:
		// COUNT discloses membership cardinality, not values; track it
		// under a reserved key so COUNT+AVG combinations are caught via
		// the derived SUM below.
		key = "*count*"
	case Avg:
		// AVG(set) with known |set| is SUM(set); audit the sum.
		v = v * float64(n)
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.audn.wouldDisclose(key, indicator, v) {
		return Answer{Denied: true, Reason: "auditing: answering would disclose an individual value"}, nil
	}
	s.audn.commit(key, indicator, v)
	if q.Agg == Avg {
		return Answer{Value: v / float64(n)}, nil
	}
	return Answer{Value: v}, nil
}

// auditor keeps, per audited attribute, the linear system of answered
// queries: each row is the query-set indicator vector with the answer as the
// right-hand side. A record's value is disclosed when reduced row echelon
// form contains a row with exactly one non-zero coefficient.
//
// The database grows under ingest, so indicator vectors of different
// lengths coexist: a query answered when the store held n₀ rows simply has
// zero coefficients for every row ingested later (those rows were not in
// its query set by construction), so older vectors are zero-padded to the
// current width at elimination time.
type auditor struct {
	systems map[string][]auditRow
}

// auditRow is one answered query: its indicator vector (at the length of
// the database when it was answered) and its answer.
type auditRow struct {
	ind []float64
	ans float64
}

func newAuditor() *auditor {
	return &auditor{systems: map[string][]auditRow{}}
}

func (a *auditor) wouldDisclose(attr string, indicator []float64, answer float64) bool {
	n := len(indicator)
	for _, r := range a.systems[attr] {
		if len(r.ind) > n {
			n = len(r.ind)
		}
	}
	rows := make([][]float64, 0, len(a.systems[attr])+1)
	for _, r := range a.systems[attr] {
		rows = append(rows, augmentTo(r.ind, r.ans, n))
	}
	rows = append(rows, augmentTo(indicator, answer, n))
	return disclosesAny(rows, n)
}

func (a *auditor) commit(attr string, indicator []float64, answer float64) {
	a.systems[attr] = append(a.systems[attr], auditRow{ind: indicator, ans: answer})
}

// augmentTo builds the width-n augmented row [ind… 0… | ans], zero-padding
// indicators recorded when the database was smaller.
func augmentTo(ind []float64, ans float64, n int) []float64 {
	row := make([]float64, n+1)
	copy(row, ind)
	row[n] = ans
	return row
}

func disclosesAny(rows [][]float64, n int) bool {
	stats.GaussianEliminate(rows, n)
	const eps = 1e-9
	for _, r := range rows {
		nz := 0
		for c := 0; c < n; c++ {
			if r[c] > eps || r[c] < -eps {
				nz++
				if nz > 1 {
					break
				}
			}
		}
		if nz == 1 {
			return true
		}
	}
	return false
}

package sdcquery

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"strings"
	"sync"

	"privacy3d/internal/dataset"
	"privacy3d/internal/noise"
	"privacy3d/internal/stats"
)

// Protection selects the inference-control strategy of a Server. The three
// non-trivial strategies correspond to the paper's "perturbing, restricting
// or replacing by intervals the answers to certain queries" ([7,14,16]).
type Protection int

const (
	// NoProtection answers every query exactly (the raw search-engine-like
	// database with neither respondent nor user privacy).
	NoProtection Protection = iota
	// SizeRestriction denies queries whose query set has fewer than
	// MinSetSize or more than n-MinSetSize records.
	SizeRestriction
	// Auditing tracks answered queries and denies any query whose answer,
	// combined with the history, would fully determine one record's
	// confidential value (Chin & Ozsoyoglu 1982).
	Auditing
	// Perturbation answers with additive noise (Duncan & Mukherjee 2000).
	Perturbation
	// Camouflage answers with an interval guaranteed to contain the true
	// value (CVC, Gopal et al. 2002).
	Camouflage
	// OverlapRestriction denies queries overlapping a previously answered
	// query set in more than MaxOverlap records (Dobkin, Jones & Lipton
	// 1979), on top of the MinSetSize bound.
	OverlapRestriction
	// RandomSample answers each query over a query-keyed pseudo-random
	// subsample of the query set (Denning 1980): difference attacks stop
	// working because the two differenced queries draw different samples,
	// while aggregate answers stay approximately right (scaled back up).
	RandomSample
)

// String names the protection.
func (p Protection) String() string {
	switch p {
	case NoProtection:
		return "none"
	case SizeRestriction:
		return "size-restriction"
	case Auditing:
		return "auditing"
	case Perturbation:
		return "perturbation"
	case Camouflage:
		return "camouflage"
	case OverlapRestriction:
		return "overlap-restriction"
	case RandomSample:
		return "random-sample"
	default:
		return fmt.Sprintf("Protection(%d)", int(p))
	}
}

// protectionsByName is the single source of truth for the short -protect
// flag names: the CLI parser, its help text and the error messages all
// derive from it, so they cannot drift apart (they did once; the lint
// golden test now pins them).
var protectionsByName = []struct {
	Name string
	P    Protection
}{
	{"none", NoProtection},
	{"size", SizeRestriction},
	{"auditing", Auditing},
	{"perturbation", Perturbation},
	{"camouflage", Camouflage},
	{"overlap", OverlapRestriction},
	{"sample", RandomSample},
}

// ProtectionNames lists every accepted short protection name, in canonical
// order.
func ProtectionNames() []string {
	names := make([]string, len(protectionsByName))
	for i, p := range protectionsByName {
		names[i] = p.Name
	}
	return names
}

// ParseProtection resolves a short protection name ("size", "auditing", …).
func ParseProtection(name string) (Protection, error) {
	for _, p := range protectionsByName {
		if p.Name == name {
			return p.P, nil
		}
	}
	return 0, fmt.Errorf("sdcquery: unknown protection %q (want %s)", name, strings.Join(ProtectionNames(), ", "))
}

// Answer is the server's response to a query.
type Answer struct {
	// Denied reports that the protection refused the query; Reason says why.
	Denied bool
	Reason string
	// Value is the (possibly perturbed) point answer when not denied and
	// not camouflaged.
	Value float64
	// Lo/Hi bound the answer under Camouflage (Lo ≤ true ≤ Hi).
	Lo, Hi float64
	// Interval reports that Lo/Hi carry the answer.
	Interval bool
}

// Config parameterises a Server.
type Config struct {
	Protection Protection
	// MinSetSize is the query-set-size threshold for SizeRestriction
	// (default 3, also used by Auditing as a first filter if > 0).
	MinSetSize int
	// NoiseSD is the absolute standard deviation of Laplace perturbation
	// noise (default: 1).
	NoiseSD float64
	// CamouflageWidth is the half-width of camouflage intervals as a
	// fraction of the answer magnitude (default 0.1).
	CamouflageWidth float64
	// MaxOverlap bounds pairwise query-set intersections under
	// OverlapRestriction (default 1).
	MaxOverlap int
	// SampleRate is the inclusion probability of RandomSample
	// (default 0.8).
	SampleRate float64
	// Seed drives the perturbation noise.
	Seed uint64
}

// Server is an interactively queryable statistical database. It records
// every query submitted — the total absence of user privacy that Section 3
// of the paper builds on.
// Server is safe for concurrent use: Ask and Log are serialised by an
// internal mutex (the HTTP front end serves requests concurrently).
type Server struct {
	mu      sync.Mutex
	d       *dataset.Dataset
	cfg     Config
	rng     *rand.Rand
	log     []Query
	audn    *auditor
	overlap *OverlapController
}

// NewServer wraps a dataset in a protected query interface.
func NewServer(d *dataset.Dataset, cfg Config) (*Server, error) {
	if d == nil || d.Rows() == 0 {
		return nil, fmt.Errorf("sdcquery: server needs a non-empty dataset")
	}
	if cfg.MinSetSize <= 0 {
		cfg.MinSetSize = 3
	}
	if cfg.NoiseSD <= 0 {
		cfg.NoiseSD = 1
	}
	if cfg.CamouflageWidth <= 0 {
		cfg.CamouflageWidth = 0.1
	}
	if cfg.MaxOverlap <= 0 {
		cfg.MaxOverlap = 1
	}
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		cfg.SampleRate = 0.8
	}
	oc, err := NewOverlapController(cfg.MinSetSize, cfg.MaxOverlap)
	if err != nil {
		return nil, err
	}
	return &Server{
		d:       d,
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xa5a5a5a5)),
		audn:    newAuditor(d.Rows()),
		overlap: oc,
	}, nil
}

// Log returns a copy of the queries the server has observed, in submission
// order. The user-privacy evaluator reads this: for a plaintext statistical
// server the log IS the user's query stream.
func (s *Server) Log() []Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Query(nil), s.log...)
}

// LogDepth returns the number of logged queries without copying the log —
// cheap enough to sample on every metrics scrape.
func (s *Server) LogDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// Rows exposes the database size (public metadata).
func (s *Server) Rows() int { return s.d.Rows() }

// Dataset exposes the served microdata — the owner-side handle the
// /protect endpoint masks releases from. The returned dataset must be
// treated as read-only.
func (s *Server) Dataset() *dataset.Dataset { return s.d }

// Ask submits a query. Every query is logged before protection runs: the
// owner sees denied queries too.
func (s *Server) Ask(q Query) (Answer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = append(s.log, q)
	rows, err := q.Where.QuerySet(s.d)
	if err != nil {
		return Answer{}, err
	}
	switch s.cfg.Protection {
	case NoProtection:
		return s.exact(q)
	case SizeRestriction:
		if len(rows) < s.cfg.MinSetSize || len(rows) > s.d.Rows()-s.cfg.MinSetSize {
			return Answer{Denied: true, Reason: fmt.Sprintf("query set size %d outside [%d,%d]",
				len(rows), s.cfg.MinSetSize, s.d.Rows()-s.cfg.MinSetSize)}, nil
		}
		return s.exact(q)
	case Auditing:
		return s.audited(q, rows)
	case Perturbation:
		a, err := s.exact(q)
		if err != nil || a.Denied {
			return a, err
		}
		a.Value += noise.Laplace(s.rng, s.cfg.NoiseSD)
		return a, nil
	case Camouflage:
		a, err := s.exact(q)
		if err != nil || a.Denied {
			return a, err
		}
		return s.camouflage(q, a.Value), nil
	case OverlapRestriction:
		if ok, reason := s.overlap.Admit(rows); !ok {
			return Answer{Denied: true, Reason: "overlap control: " + reason}, nil
		}
		return s.exact(q)
	case RandomSample:
		return s.sampled(q, rows)
	default:
		return Answer{}, fmt.Errorf("sdcquery: unknown protection %v", s.cfg.Protection)
	}
}

func (s *Server) exact(q Query) (Answer, error) {
	v, err := q.Evaluate(s.d)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Value: v}, nil
}

// camouflage returns an interval that contains the true value but whose
// midpoint is a deterministic, query-keyed offset from it, so repeating the
// query gains the user nothing and the exact value is never released.
func (s *Server) camouflage(q Query, v float64) Answer {
	w := s.cfg.CamouflageWidth * maxAbs(v, 1)
	h := fnv.New64a()
	h.Write([]byte(q.String()))
	// Deterministic offset in [-w/2, w/2].
	off := (float64(h.Sum64()%1_000_003)/1_000_003 - 0.5) * w
	return Answer{Interval: true, Lo: v + off - w, Hi: v + off + w}
}

func maxAbs(v, floor float64) float64 {
	if v < 0 {
		v = -v
	}
	if v < floor {
		return floor
	}
	return v
}

// sampled answers a query from a pseudo-random subsample of its query set,
// following Denning's random sample queries: the inclusion coin of record i
// is keyed on BOTH the query and the record, so overlapping queries draw
// independent samples and difference attacks no longer telescope — while
// repeating the same query returns the same answer (no averaging attack)
// and every aggregate remains an unbiased scaled estimate.
func (s *Server) sampled(q Query, rows []int) (Answer, error) {
	qh := fnv.New64a()
	qh.Write([]byte(q.String()))
	qkey := qh.Sum64() ^ s.cfg.Seed
	included := rows[:0:0]
	for _, i := range rows {
		h := (uint64(i) + 0x9e3779b97f4a7c15) * 0xff51afd7ed558ccd
		h ^= qkey
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 33
		if float64(h%1_000_003)/1_000_003 < s.cfg.SampleRate {
			included = append(included, i)
		}
	}
	j := -1
	if q.Agg != Count {
		j = s.d.Index(q.Attr)
		if j < 0 {
			return Answer{}, fmt.Errorf("sdcquery: unknown attribute %q", q.Attr)
		}
		if s.d.Attr(j).Kind != dataset.Numeric {
			return Answer{}, fmt.Errorf("sdcquery: %s over non-numeric attribute %q", q.Agg, q.Attr)
		}
	}
	switch q.Agg {
	case Count:
		return Answer{Value: float64(len(included)) / s.cfg.SampleRate}, nil
	case Sum:
		var sum float64
		for _, i := range included {
			sum += s.d.Float(i, j)
		}
		return Answer{Value: sum / s.cfg.SampleRate}, nil
	case Avg:
		if len(included) == 0 {
			return Answer{Denied: true, Reason: "random sample: empty sample"}, nil
		}
		var sum float64
		for _, i := range included {
			sum += s.d.Float(i, j)
		}
		return Answer{Value: sum / float64(len(included))}, nil
	default:
		return Answer{}, fmt.Errorf("sdcquery: unsupported aggregate %v", q.Agg)
	}
}

// audited runs the Chin–Ozsoyoglu check: the query is answered only if the
// linear system of all answered SUM/AVG/COUNT queries, extended with this
// one, still leaves every record's confidential value undetermined.
func (s *Server) audited(q Query, rows []int) (Answer, error) {
	v, err := q.Evaluate(s.d)
	if err != nil {
		return Answer{}, err
	}
	indicator := make([]float64, s.d.Rows())
	for _, i := range rows {
		indicator[i] = 1
	}
	key := q.Attr
	switch q.Agg {
	case Count:
		// COUNT discloses membership cardinality, not values; track it
		// under a reserved key so COUNT+AVG combinations are caught via
		// the derived SUM below.
		key = "*count*"
	case Avg:
		// AVG(set) with known |set| is SUM(set); audit the sum.
		v = v * float64(len(rows))
	}
	if s.audn.wouldDisclose(key, indicator, v) {
		return Answer{Denied: true, Reason: "auditing: answering would disclose an individual value"}, nil
	}
	s.audn.commit(key, indicator, v)
	if q.Agg == Avg {
		if len(rows) == 0 {
			return Answer{Denied: true, Reason: "auditing: empty query set"}, nil
		}
		return Answer{Value: v / float64(len(rows))}, nil
	}
	return Answer{Value: v}, nil
}

// auditor keeps, per audited attribute, the linear system of answered
// queries: each row is the query-set indicator vector with the answer as the
// right-hand side. A record's value is disclosed when reduced row echelon
// form contains a row with exactly one non-zero coefficient.
type auditor struct {
	n       int
	systems map[string][][]float64
}

func newAuditor(n int) *auditor {
	return &auditor{n: n, systems: map[string][][]float64{}}
}

func (a *auditor) wouldDisclose(attr string, indicator []float64, answer float64) bool {
	rows := cloneSystem(a.systems[attr])
	rows = append(rows, augment(indicator, answer))
	return disclosesAny(rows, a.n)
}

func (a *auditor) commit(attr string, indicator []float64, answer float64) {
	a.systems[attr] = append(a.systems[attr], augment(indicator, answer))
}

func augment(indicator []float64, answer float64) []float64 {
	row := make([]float64, len(indicator)+1)
	copy(row, indicator)
	row[len(indicator)] = answer
	return row
}

func cloneSystem(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

func disclosesAny(rows [][]float64, n int) bool {
	stats.GaussianEliminate(rows, n)
	const eps = 1e-9
	for _, r := range rows {
		nz := 0
		for c := 0; c < n; c++ {
			if r[c] > eps || r[c] < -eps {
				nz++
				if nz > 1 {
					break
				}
			}
		}
		if nz == 1 {
			return true
		}
	}
	return false
}

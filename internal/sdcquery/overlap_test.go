package sdcquery

import (
	"math/rand/v2"
	"testing"

	"privacy3d/internal/dataset"
)

func TestOverlapControllerBasics(t *testing.T) {
	oc, err := NewOverlapController(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := oc.Admit([]int{1, 2, 3}); !ok {
		t.Fatal("first query should be admitted")
	}
	// Disjoint set: fine.
	if ok, _ := oc.Admit([]int{4, 5, 6}); !ok {
		t.Error("disjoint query denied")
	}
	// Overlap of exactly 1: allowed at MaxOverlap 1.
	if ok, _ := oc.Admit([]int{3, 7, 8}); !ok {
		t.Error("overlap-1 query denied with MaxOverlap 1")
	}
	// Overlap of 2 with the first: denied.
	if ok, reason := oc.Admit([]int{1, 2, 9}); ok {
		t.Error("overlap-2 query admitted")
	} else if reason == "" {
		t.Error("denial without reason")
	}
	// Too small: denied and not remembered.
	before := oc.Answered()
	if ok, _ := oc.Admit([]int{42}); ok {
		t.Error("undersized query admitted")
	}
	if oc.Answered() != before {
		t.Error("denied query was remembered")
	}
}

func TestOverlapControllerValidation(t *testing.T) {
	if _, err := NewOverlapController(0, 1, 0); err == nil {
		t.Error("accepted minSetSize 0")
	}
	if _, err := NewOverlapController(1, -1, 0); err == nil {
		t.Error("accepted negative overlap")
	}
}

func TestOverlapControllerDenyWhenFull(t *testing.T) {
	oc, err := NewOverlapController(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := oc.Admit([]int{1}); !ok {
		t.Fatal("first admit failed")
	}
	if ok, _ := oc.Admit([]int{2}); !ok {
		t.Fatal("second admit failed")
	}
	ok, reason := oc.Admit([]int{3})
	if ok {
		t.Error("admit beyond maxTracked succeeded")
	}
	if reason == "" {
		t.Error("full-history denial without reason")
	}
	if tracked, capacity := oc.Stats(); tracked != 2 || capacity != 2 {
		t.Errorf("Stats() = (%d, %d), want (2, 2)", tracked, capacity)
	}
	// Denied-when-full queries are not remembered.
	if oc.Answered() != 2 {
		t.Errorf("Answered() = %d after full denial, want 2", oc.Answered())
	}
}

// TestOverlapIndexMatchesReference drives the inverted-index Admit and an
// exhaustive sortedOverlap reference over the same random workload and
// requires identical admit/deny decisions at every step.
func TestOverlapIndexMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	const universe = 40
	oc, err := NewOverlapController(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var answered [][]int
	refAdmit := func(rows []int) bool {
		for _, prev := range answered {
			if sortedOverlap(prev, rows) > 2 {
				return false
			}
		}
		answered = append(answered, append([]int(nil), rows...))
		return true
	}
	for step := 0; step < 500; step++ {
		var rows []int
		for r := 0; r < universe; r++ {
			if rng.IntN(8) == 0 {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			rows = []int{rng.IntN(universe)}
		}
		got, _ := oc.Admit(rows)
		want := refAdmit(rows)
		if got != want {
			t.Fatalf("step %d: indexed Admit(%v) = %v, reference = %v", step, rows, got, want)
		}
	}
	if oc.Answered() != len(answered) {
		t.Errorf("Answered() = %d, reference tracked %d", oc.Answered(), len(answered))
	}
}

func TestSortedOverlap(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2, 3}, []int{2, 3, 4}, 2},
		{[]int{}, []int{1}, 0},
		{[]int{5}, []int{5}, 1},
		{[]int{1, 3, 5}, []int{2, 4, 6}, 0},
	}
	for _, c := range cases {
		if got := sortedOverlap(c.a, c.b); got != c.want {
			t.Errorf("sortedOverlap(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOverlapRestrictionBlocksTracker(t *testing.T) {
	// The tracker's padded queries A and A∧¬B overlap in |A∧¬B| records —
	// far above any small MaxOverlap — so overlap control stops the attack
	// at its second query.
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: OverlapRestriction, MinSetSize: 2, MaxOverlap: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(srv,
		Predicate{{Col: "height", Op: Lt, V: 176}},
		Cond{Col: "weight", Op: Gt, V: 105})
	if _, err := tr.Infer("blood_pressure"); err == nil {
		t.Error("overlap restriction failed to block the tracker")
	}
}

func TestOverlapRestrictionAllowsDisjointWorkload(t *testing.T) {
	srv, err := NewServer(dataset.Dataset2(), Config{Protection: OverlapRestriction, MinSetSize: 2, MaxOverlap: 0})
	if err != nil {
		t.Fatal(err)
	}
	a, err := srv.Ask(Query{Agg: Count, Where: Predicate{{Col: "height", Op: Lt, V: 175}}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Denied {
		t.Fatalf("first query denied: %s", a.Reason)
	}
	b, err := srv.Ask(Query{Agg: Count, Where: Predicate{{Col: "height", Op: Ge, V: 175}}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Denied {
		t.Errorf("disjoint query denied: %s", b.Reason)
	}
	if a.Value+b.Value != 9 {
		t.Errorf("counts %v + %v != 9", a.Value, b.Value)
	}
}

package sdcquery

import (
	"fmt"
)

// Tracker implements Schlörer's individual tracker attack ([22] in the
// paper): a target respondent is pinned down by a predicate C = A ∧ B whose
// query set is too small to be answered under size restriction, but the
// padded queries A and A ∧ ¬B are both large enough. Then
//
//	COUNT(C) = COUNT(A) − COUNT(A ∧ ¬B)
//	SUM(C)   = SUM(A)   − SUM(A ∧ ¬B)
//
// and with COUNT(C) = 1 the target's confidential value is SUM(C). The
// attack defeats pure query-set-size restriction; the auditing protection
// catches it because the two answered sums linearly determine one record.
type Tracker struct {
	srv *Server
	// A is the padding predicate; B the narrowing condition.
	A Predicate
	B Cond
}

// NewTracker prepares an individual tracker for target predicate A ∧ B.
func NewTracker(srv *Server, a Predicate, b Cond) *Tracker {
	return &Tracker{srv: srv, A: a, B: b}
}

// TrackerResult reports the values inferred by the attack.
type TrackerResult struct {
	// Count is the inferred COUNT of the restricted predicate A ∧ B.
	Count float64
	// Sum is the inferred SUM(attr) over A ∧ B; with Count == 1 it is the
	// target's confidential value.
	Sum float64
	// Queries is the number of queries spent.
	Queries int
}

// Infer runs the attack against attribute attr. It returns an error if any
// of the padded queries is denied — i.e. the protection withstood the
// tracker.
func (t *Tracker) Infer(attr string) (TrackerResult, error) {
	var res TrackerResult
	notB := t.B.Negate()
	ask := func(q Query) (float64, error) {
		res.Queries++
		a, err := t.srv.Ask(q)
		if err != nil {
			return 0, err
		}
		if a.Denied {
			return 0, fmt.Errorf("sdcquery: tracker query denied: %s (%s)", q, a.Reason)
		}
		if a.Interval {
			// Camouflage answers: use the midpoint estimate.
			return (a.Lo + a.Hi) / 2, nil
		}
		return a.Value, nil
	}
	cA, err := ask(Query{Agg: Count, Where: t.A})
	if err != nil {
		return res, err
	}
	cANotB, err := ask(Query{Agg: Count, Where: t.A.And(notB)})
	if err != nil {
		return res, err
	}
	sA, err := ask(Query{Agg: Sum, Attr: attr, Where: t.A})
	if err != nil {
		return res, err
	}
	sANotB, err := ask(Query{Agg: Sum, Attr: attr, Where: t.A.And(notB)})
	if err != nil {
		return res, err
	}
	res.Count = cA - cANotB
	res.Sum = sA - sANotB
	return res, nil
}

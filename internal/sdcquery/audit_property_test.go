package sdcquery

import (
	"math"
	"testing"

	"privacy3d/internal/dataset"
	"privacy3d/internal/stats"
)

// Property test of the auditor's safety invariant: whatever sequence of
// random statistical queries is answered, the system of answered queries
// never determines a single record's confidential value. This is the
// Chin–Ozsoyoglu guarantee the tracker tests exercise only pointwise.

func TestAuditingNeverDisclosesUnderRandomWorkload(t *testing.T) {
	d := dataset.SyntheticTrial(dataset.TrialConfig{N: 40, Seed: 19})
	for trial := 0; trial < 10; trial++ {
		srv, err := NewServer(d, Config{Protection: Auditing, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		rng := dataset.NewRand(uint64(trial) * 7)
		// Record the answered sums to rebuild the adversary's system.
		var answered [][]float64
		for q := 0; q < 40; q++ {
			// Random conjunctive predicate over the quasi-identifiers.
			var pred Predicate
			if rng.Float64() < 0.8 {
				pred = append(pred, Cond{Col: "height", Op: randOp(rng), V: 150 + 40*rng.Float64()})
			}
			if rng.Float64() < 0.8 {
				pred = append(pred, Cond{Col: "weight", Op: randOp(rng), V: 50 + 60*rng.Float64()})
			}
			query := Query{Agg: Sum, Attr: "blood_pressure", Where: pred}
			a, err := srv.Ask(query)
			if err != nil {
				t.Fatal(err)
			}
			if a.Denied {
				continue
			}
			rows, err := pred.QuerySet(d)
			if err != nil {
				t.Fatal(err)
			}
			indicator := make([]float64, d.Rows()+1)
			for _, i := range rows {
				indicator[i] = 1
			}
			indicator[d.Rows()] = a.Value
			answered = append(answered, indicator)
		}
		if len(answered) == 0 {
			continue
		}
		// Adversary's best effort: full Gaussian elimination. No row may
		// end up with a single non-zero coefficient.
		stats.GaussianEliminate(answered, d.Rows())
		for _, r := range answered {
			nz := 0
			for c := 0; c < d.Rows(); c++ {
				if math.Abs(r[c]) > 1e-9 {
					nz++
					if nz > 1 {
						break
					}
				}
			}
			if nz == 1 {
				t.Fatalf("trial %d: an answered-query combination discloses a record", trial)
			}
		}
	}
}

func randOp(rng interface{ IntN(int) int }) Op {
	switch rng.IntN(4) {
	case 0:
		return Lt
	case 1:
		return Le
	case 2:
		return Gt
	default:
		return Ge
	}
}

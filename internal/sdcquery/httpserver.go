package sdcquery

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// HTTP front end for the protected statistical database, so the "owner sees
// every query" property of Section 3 is tangible: the /log endpoint IS the
// owner's complete view of the users' activity.
//
//	POST /query  — structured JSON query
//	POST /sql    — raw query text in the paper's dialect
//	GET  /log    — the owner's query log

// QueryJSON is the structured wire format of /query.
type QueryJSON struct {
	Agg   string     `json:"agg"`  // COUNT, SUM or AVG
	Attr  string     `json:"attr"` // ignored for COUNT
	Where []CondJSON `json:"where"`
}

// CondJSON is one predicate condition on the wire.
type CondJSON struct {
	Col string  `json:"col"`
	Op  string  `json:"op"` // <, <=, >, >=, =, !=
	V   float64 `json:"v"`
	S   string  `json:"s"`
}

// AnswerJSON is the response of /query and /sql.
type AnswerJSON struct {
	Denied   bool    `json:"denied,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Lo       float64 `json:"lo,omitempty"`
	Hi       float64 `json:"hi,omitempty"`
	Interval bool    `json:"interval,omitempty"`
}

// ToQuery converts the wire format into a Query.
func (q QueryJSON) ToQuery() (Query, error) {
	var out Query
	switch q.Agg {
	case "COUNT":
		out.Agg = Count
	case "SUM":
		out.Agg = Sum
	case "AVG":
		out.Agg = Avg
	default:
		return out, fmt.Errorf("sdcquery: unknown aggregate %q", q.Agg)
	}
	out.Attr = q.Attr
	for _, c := range q.Where {
		var op Op
		switch c.Op {
		case "<":
			op = Lt
		case "<=":
			op = Le
		case ">":
			op = Gt
		case ">=":
			op = Ge
		case "=", "==":
			op = Eq
		case "!=":
			op = Ne
		default:
			return out, fmt.Errorf("sdcquery: unknown operator %q", c.Op)
		}
		out.Where = append(out.Where, Cond{Col: c.Col, Op: op, V: c.V, S: c.S})
	}
	return out, nil
}

// NewHTTPHandler wraps a Server in the HTTP API.
func NewHTTPHandler(srv *Server) http.Handler {
	mux := http.NewServeMux()
	answer := func(w http.ResponseWriter, q Query) {
		a, err := srv.Ask(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		// Encoding a flat struct to a ResponseWriter cannot fail in a way
		// the handler can still report; ignore the error deliberately.
		_ = json.NewEncoder(w).Encode(AnswerJSON{
			Denied: a.Denied, Reason: a.Reason, Value: a.Value,
			Lo: a.Lo, Hi: a.Hi, Interval: a.Interval,
		})
	}
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var qj QueryJSON
		if err := json.NewDecoder(r.Body).Decode(&qj); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q, err := qj.ToQuery()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		answer(w, q)
	})
	mux.HandleFunc("POST /sql", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q, err := ParseQuery(string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		answer(w, q)
	})
	mux.HandleFunc("GET /log", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for i, q := range srv.Log() {
			fmt.Fprintf(w, "%4d  %s\n", i+1, q)
		}
	})
	return mux
}
